package repro

// Micro-benchmarks for the substrates: simulator event throughput, link
// packet processing, policy inference, and trainer updates. These bound
// how much emulation a wall-clock second buys, which matters when scaling
// the figure experiments.

import (
	"math/rand"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/nn"
	"repro/internal/rl"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

func BenchmarkSimulatorEvents(b *testing.B) {
	b.ReportAllocs()
	s := sim.New(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(0.001, tick)
		}
	}
	s.After(0, tick)
	b.ResetTimer()
	s.Run(1e18)
}

func BenchmarkLinkPacketForwarding(b *testing.B) {
	b.ReportAllocs()
	s := sim.New(1)
	l := netem.NewLink(s, "l", netem.LinkConfig{RateBps: 1e12, Delay: 0.001, QueueBytes: 1 << 30})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		netem.SendOver(&netem.Packet{Size: 1500}, []netem.Hop{l}, func(*netem.Packet) {}, nil)
		if i%1024 == 0 {
			s.Run(s.Now() + 1)
		}
	}
	s.Run(s.Now() + 10)
}

// BenchmarkFlowSecond measures wall time per simulated second of one Cubic
// flow saturating 100 Mbps (≈8.3k packets of events).
func BenchmarkFlowSecond(b *testing.B) {
	b.ReportAllocs()
	s := sim.New(1)
	d := netem.NewDumbbell(s, netem.DumbbellConfig{
		RateBps: 100e6, BaseRTT: 0.030, QueueBytes: netem.BDPBytes(100e6, 0.030),
	})
	f := transport.NewFlow(s, transport.FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc.MustNew("cubic")})
	f.Start()
	s.Run(2) // warm past slow start
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(s.Now() + 1)
	}
}

// BenchmarkFlowSecondTelemetry is BenchmarkFlowSecond with every layer
// instrumented; the delta against the plain benchmark is the real hot-path
// cost of enabled telemetry (a handful of atomic adds per packet).
func BenchmarkFlowSecondTelemetry(b *testing.B) {
	b.ReportAllocs()
	reg := telemetry.NewRegistry()
	s := sim.New(1)
	s.Instrument(reg)
	d := netem.NewDumbbell(s, netem.DumbbellConfig{
		RateBps: 100e6, BaseRTT: 0.030, QueueBytes: netem.BDPBytes(100e6, 0.030),
	})
	d.Bottleneck.Metrics = netem.NewLinkMetrics(reg)
	f := transport.NewFlow(s, transport.FlowConfig{
		ID: 0, Path: d.FlowPath(0), CC: cc.MustNew("cubic"),
		Metrics: transport.NewMetrics(reg),
	})
	f.Start()
	s.Run(2) // warm past slow start
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(s.Now() + 1)
	}
}

func BenchmarkReferencePolicyInference(b *testing.B) {
	b.ReportAllocs()
	cfg := core.DefaultConfig()
	p := core.NewReferencePolicy(cfg)
	state := make([]float64, cfg.StateDim())
	for i := range state {
		state[i] = 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Action(state)
	}
}

func BenchmarkMLPPolicyInference(b *testing.B) {
	b.ReportAllocs()
	cfg := core.DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	net := nn.NewMLP(rng, nn.ReLU, nn.Tanh, cfg.StateDim(), 256, 128, 64, 1)
	p := &core.MLPPolicy{Net: net}
	state := make([]float64, cfg.StateDim())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Action(state)
	}
}

// BenchmarkQuantizedPolicyInference is the fixed-point counterpart of
// BenchmarkMLPPolicyInference on the identical network shape — the pair
// behind the speedup table in DESIGN.md §12.
func BenchmarkQuantizedPolicyInference(b *testing.B) {
	b.ReportAllocs()
	cfg := core.DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	net := nn.NewMLP(rng, nn.ReLU, nn.Tanh, cfg.StateDim(), 256, 128, 64, 1)
	p, err := core.QuantizeMLPPolicy(&core.MLPPolicy{Net: net}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	state := make([]float64, cfg.StateDim())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Action(state)
	}
}

func BenchmarkTD3Update(b *testing.B) {
	b.ReportAllocs()
	cfg := rl.DefaultConfig(40, core.GlobalFeatureDim, 1)
	cfg.Batch = 192
	tr := rl.NewTrainer(cfg, 1)
	rb := rl.NewReplayBuffer(10000)
	rng := rand.New(rand.NewSource(1))
	mk := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	for i := 0; i < 2000; i++ {
		rb.Add(rl.Transition{
			Global: mk(core.GlobalFeatureDim), State: mk(40), Action: mk(1),
			Reward: rng.Float64(), NextGlobal: mk(core.GlobalFeatureDim), NextState: mk(40),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Update(rb)
	}
}

// BenchmarkAstraeaThreeFlowScenario is the canonical Fig. 6 workload as a
// single number: wall time to simulate the 3-flow staggered run.
func BenchmarkAstraeaThreeFlowScenario(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runner.MustRun(runner.Scenario{
			Seed: 1, RateBps: 100e6, BaseRTT: 0.030, QueueBDP: 1, Duration: 30,
			Flows: []runner.FlowSpec{
				{Scheme: "astraea", Start: 0},
				{Scheme: "astraea", Start: 5},
				{Scheme: "astraea", Start: 10},
			},
		})
	}
}
