// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation via `go test -bench=.`. Each benchmark runs the
// corresponding experiment at reduced scale (1 trial, shortened durations)
// and reports simulated-seconds-per-wall-second alongside the standard
// metrics; run cmd/figures for paper-scale output.
package repro

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/experiments"
	"repro/internal/runner"
)

// benchOpts keeps each figure benchmark to a few seconds. Set REPRO_WORKERS
// to compare worker-pool sizes (e.g. REPRO_WORKERS=1 for the serial
// baseline); unset or 0 uses GOMAXPROCS.
func benchOpts() experiments.Opts {
	o := experiments.Opts{Trials: 1, TimeScale: 0.15}
	if v := os.Getenv("REPRO_WORKERS"); v != "" {
		if w, err := strconv.Atoi(v); err == nil {
			o.Workers = w
		}
	}
	return o
}

func benchTables(b *testing.B, fn func(experiments.Opts) []*experiments.Table) {
	b.ReportAllocs()
	simStart := runner.SimSeconds()
	for i := 0; i < b.N; i++ {
		tables := fn(benchOpts())
		if len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
		for _, t := range tables {
			if len(t.Rows) == 0 {
				b.Fatalf("%s produced no rows", t.ID)
			}
		}
	}
	if wall := b.Elapsed().Seconds(); wall > 0 {
		b.ReportMetric((runner.SimSeconds()-simStart)/wall, "simsec/wallsec")
	}
}

func one(fn func(experiments.Opts) *experiments.Table) func(experiments.Opts) []*experiments.Table {
	return func(o experiments.Opts) []*experiments.Table {
		return []*experiments.Table{fn(o)}
	}
}

func BenchmarkTable1(b *testing.B)        { benchTables(b, one(experiments.ExpTable1)) }
func BenchmarkFigure1a(b *testing.B)      { benchTables(b, one(experiments.ExpFigure1a)) }
func BenchmarkFigure1b(b *testing.B)      { benchTables(b, one(experiments.ExpFigure1b)) }
func BenchmarkFigure2(b *testing.B)       { benchTables(b, experiments.ExpFigure2) }
func BenchmarkFigure4(b *testing.B)       { benchTables(b, one(experiments.ExpFigure4)) }
func BenchmarkFigure6(b *testing.B)       { benchTables(b, experiments.ExpFigure6) }
func BenchmarkFigure7(b *testing.B)       { benchTables(b, one(experiments.ExpFigure7)) }
func BenchmarkFigure8(b *testing.B)       { benchTables(b, one(experiments.ExpFigure8)) }
func BenchmarkFigure9(b *testing.B)       { benchTables(b, one(experiments.ExpFigure9)) }
func BenchmarkFigure10(b *testing.B)      { benchTables(b, one(experiments.ExpFigure10)) }
func BenchmarkFigure10Large(b *testing.B) { benchTables(b, one(experiments.ExpFigure10Large)) }
func BenchmarkFigure11(b *testing.B)      { benchTables(b, one(experiments.ExpFigure11)) }
func BenchmarkFigure12(b *testing.B)      { benchTables(b, one(experiments.ExpFigure12)) }
func BenchmarkFigure13(b *testing.B)      { benchTables(b, experiments.ExpFigure13) }
func BenchmarkFigure14(b *testing.B)      { benchTables(b, one(experiments.ExpFigure14)) }
func BenchmarkFigure15(b *testing.B)      { benchTables(b, experiments.ExpFigure15) }
func BenchmarkFigure16(b *testing.B)      { benchTables(b, experiments.ExpFigure16) }
func BenchmarkFigure17(b *testing.B)      { benchTables(b, one(experiments.ExpFigure17)) }
func BenchmarkFigure18(b *testing.B)      { benchTables(b, one(experiments.ExpFigure18)) }
func BenchmarkFigure19(b *testing.B)      { benchTables(b, experiments.ExpFigure19) }
func BenchmarkFigure20(b *testing.B)      { benchTables(b, one(experiments.ExpFigure20)) }
func BenchmarkFigure21(b *testing.B)      { benchTables(b, one(experiments.ExpFigure21)) }
func BenchmarkFigure22(b *testing.B)      { benchTables(b, one(experiments.ExpFigure22)) }

// Ablation benches for the design choices DESIGN.md §4 calls out.
func BenchmarkAblationAlpha(b *testing.B)   { benchTables(b, one(experiments.ExpAblationAlpha)) }
func BenchmarkAblationDrain(b *testing.B)   { benchTables(b, one(experiments.ExpAblationDrain)) }
func BenchmarkAblationHistory(b *testing.B) { benchTables(b, one(experiments.ExpAblationHistory)) }

// Extensions beyond the paper: pairwise scheme-coexistence matrix and the
// k-hop parking-lot fairness sweep.
func BenchmarkCoexistence(b *testing.B) { benchTables(b, one(experiments.ExpCoexistenceMatrix)) }
func BenchmarkParkingLot(b *testing.B)  { benchTables(b, one(experiments.ExpParkingLot)) }
