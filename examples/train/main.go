// Train: a miniature end-to-end run of the multi-agent training pipeline
// (§3.4): sample episodes from the Table 3 distribution, collect multi-flow
// experience, update the TD3/MADDPG networks, and watch the global reward
// trend. A full training run takes far longer; this demonstrates the
// machinery improving the policy from scratch.
//
//	go run ./examples/train
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/env"
)

func main() {
	cfg := core.DefaultConfig()
	dist := env.DefaultTrainingDistribution()
	dist.MaxFlows = 3 // keep the demo cheap

	learner := env.NewLearner(cfg, dist, 1)
	fmt.Println("episode   avgReward   thr     fair    stab    criticLoss")
	const episodes = 8
	for i := 0; i < episodes; i++ {
		res := learner.RunEpisodeAndTrain()
		fmt.Printf("%7d   %+.5f   %.3f   %.4f  %.4f  %.5f\n",
			i, res.AvgReward, res.Components.Thr,
			res.Components.Fair, res.Components.Stab,
			learner.Trainer.LastCriticLoss)
	}

	first := learner.RewardHistory[0]
	last := learner.RewardHistory[len(learner.RewardHistory)-1]
	fmt.Printf("\nreward moved from %+.5f to %+.5f over %d episodes\n", first, last, episodes)
	fmt.Println("(production training runs thousands of episodes across parallel")
	fmt.Println(" environment instances; see cmd/astraea-train)")
}
