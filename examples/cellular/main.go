// Cellular: Astraea over a rapidly-varying synthetic LTE link (the Fig. 13
// scenario). Prints how closely the sending rate tracks the changing
// capacity and the latency cost.
//
//	go run ./examples/cellular
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/runner"
	"repro/internal/trace"
)

func main() {
	const dur = 60.0
	rng := rand.New(rand.NewSource(42))
	lte := trace.Cellular(trace.DefaultCellular(), dur, rng)

	for _, scheme := range []string{"astraea", "vivace"} {
		res, err := runner.Run(runner.Scenario{
			Seed:       42,
			RateBps:    lte.RateAt(0),
			BaseRTT:    0.040,
			QueueBytes: 8_000_000, // deep buffer, as in the paper
			Duration:   dur,
			Trace:      lte,
			Flows:      []runner.FlowSpec{{Scheme: scheme}},
		})
		if err != nil {
			log.Fatal(err)
		}
		fr := res.Flows[0]
		fmt.Printf("=== %s over LTE trace (mean capacity %.1f Mbps) ===\n", scheme, lte.Mean()/1e6)
		fmt.Printf("utilization %.1f%%, avg RTT %.0f ms (base 40), loss %.2f%%\n\n",
			res.Utilization*100, fr.AvgRTT*1000, fr.LossRate*100)
		fmt.Println("time  capacity  achieved   rtt")
		for tm := 5.0; tm < dur; tm += 10 {
			fmt.Printf("%4.0fs %7.1f %8.1f %6.0fms\n",
				tm, lte.RateAt(tm)/1e6, fr.Tput.At(tm)/1e6, fr.RTT.At(tm)*1000)
		}
		fmt.Println()
	}
	fmt.Println("Astraea tracks capacity changes with bounded latency; Vivace's")
	fmt.Println("probe-and-decide control lags the link and inflates delay.")
}
