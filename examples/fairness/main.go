// Fairness: the paper's headline scenario (Fig. 6) — three flows started
// 40 s apart on a 100 Mbps / 30 ms / 1 BDP bottleneck — run side by side
// for Astraea and Cubic, printing the convergence behaviour and Jain
// indices.
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"log"

	"repro/internal/metrics"
	"repro/internal/runner"
)

func main() {
	for _, scheme := range []string{"astraea", "cubic"} {
		res, err := runner.Run(runner.Scenario{
			Seed:     7,
			RateBps:  100e6,
			BaseRTT:  0.030,
			QueueBDP: 1,
			Duration: 200,
			Flows: []runner.FlowSpec{
				{Scheme: scheme, Start: 0, Duration: 120},
				{Scheme: scheme, Start: 40, Duration: 120},
				{Scheme: scheme, Start: 80, Duration: 120},
			},
		})
		if err != nil {
			log.Fatal(err)
		}

		var series []*metrics.Timeseries
		for _, fr := range res.Flows {
			series = append(series, fr.Tput)
		}
		jains := metrics.JainOverTime(series, 1e6)

		fmt.Printf("=== %s ===\n", scheme)
		fmt.Printf("mean Jain index while ≥2 flows active: %.4f\n", metrics.Mean(jains))
		fmt.Printf("link utilization: %.1f%%\n\n", res.Utilization*100)
		fmt.Println("time    flow1    flow2    flow3   (Mbps)")
		for _, tm := range []float64{20, 60, 100, 110, 130, 170} {
			fmt.Printf("%4.0fs %8.1f %8.1f %8.1f\n", tm,
				res.Flows[0].Tput.At(tm)/1e6,
				res.Flows[1].Tput.At(tm)/1e6,
				res.Flows[2].Tput.At(tm)/1e6)
		}
		fmt.Println()
	}
	fmt.Println("Astraea should show near-equal sharing at every stage; Cubic oscillates")
	fmt.Println("and splits bandwidth unevenly over long stretches.")
}
