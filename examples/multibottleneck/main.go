// Multibottleneck: the Fig. 11 topology — flow set 1 crosses only Link1
// (100 Mbps); flow set 2 crosses Link1 then Link2 (20 Mbps). With few FS-1
// flows the sets have different bottlenecks and the allocation should be
// max-min; with many FS-1 flows Link1 becomes the common bottleneck and
// everyone converges to an equal share.
//
//	go run ./examples/multibottleneck
package main

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/transport"
)

func main() {
	for _, n1 := range []int{4, 12} {
		const n2 = 2
		const dur = 60.0
		s := sim.New(11)
		mb := netem.NewMultiBottleneck(s, 100e6, 20e6, 0.030,
			netem.BDPBytes(100e6, 0.030)*2, netem.BDPBytes(20e6, 0.030)*2)

		bytes := make([]int64, n1+n2)
		launch := func(id int, path *netem.Path) {
			f := transport.NewFlow(s, transport.FlowConfig{
				ID: id, Path: path, CC: cc.MustNew("astraea"),
			})
			idx := id
			f.OnAckHook = func(e transport.AckEvent) {
				if e.Now > dur/2 {
					bytes[idx] += int64(e.Bytes)
				}
			}
			f.Start()
		}
		for i := 0; i < n1; i++ {
			launch(i, mb.PathSet1())
		}
		for i := 0; i < n2; i++ {
			launch(n1+i, mb.PathSet2())
		}
		s.Run(dur)

		mbpsOf := func(b int64) float64 { return float64(b) * 8 / (dur / 2) / 1e6 }
		var fs1, fs2 float64
		for i := 0; i < n1; i++ {
			fs1 += mbpsOf(bytes[i])
		}
		for i := 0; i < n2; i++ {
			fs2 += mbpsOf(bytes[n1+i])
		}
		fmt.Printf("FS-1 = %d flows over Link1 only; FS-2 = %d flows over Link1+Link2\n", n1, n2)
		fmt.Printf("  FS-1 per-flow: %.1f Mbps   FS-2 per-flow: %.1f Mbps\n", fs1/float64(n1), fs2/float64(n2))
		if 100.0/float64(n1+n2) > 10 {
			fmt.Printf("  ideal (max-min): FS-1 %.1f, FS-2 10.0 (Link2-bound)\n\n", 80.0/float64(n1))
		} else {
			fmt.Printf("  ideal (shared Link1): %.1f each\n\n", 100.0/float64(n1+n2))
		}
	}
}
