// Quickstart: run one Astraea flow over an emulated 100 Mbps / 30 ms
// bottleneck for 20 seconds and print what it achieved.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/runner"
)

func main() {
	res, err := runner.Run(runner.Scenario{
		Seed:     1,
		RateBps:  100e6, // 100 Mbps bottleneck
		BaseRTT:  0.030, // 30 ms
		QueueBDP: 1,     // 1 bandwidth-delay product of buffer
		Duration: 20,
		Flows:    []runner.FlowSpec{{Scheme: "astraea"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fr := res.Flows[0]
	fmt.Printf("Astraea on 100 Mbps / 30 ms for 20 s:\n")
	fmt.Printf("  link utilization: %.1f%%\n", res.Utilization*100)
	fmt.Printf("  average RTT:      %.1f ms (base 30.0)\n", fr.AvgRTT*1000)
	fmt.Printf("  loss rate:        %.3f%%\n", fr.LossRate*100)
	fmt.Println("\nThroughput over time:")
	for i := 0; i < len(fr.Tput.Values); i += 20 {
		fmt.Printf("  t=%4.1fs  %6.1f Mbps\n", float64(i)*fr.Tput.Interval, fr.Tput.Values[i]/1e6)
	}
}
