package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netem"
	"repro/internal/telemetry"
)

// The batch engine fans independent scenarios across a worker pool. Each
// scenario builds its own Simulator, topology and flows from its seed, so a
// worker goroutine shares no mutable state with any other; results are
// written into a slot indexed by submission position, which makes batch
// output byte-identical to a serial loop regardless of completion order.

// simMillis accumulates simulated virtual time completed by Run across the
// whole process, in milliseconds. Benchmarks read it through SimSeconds to
// report simulated-seconds-per-wall-second.
var simMillis atomic.Int64

// SimSeconds returns the total simulated time executed by Run since process
// start. Sample it before and after a workload to compute simulated-seconds
// per wall-second.
func SimSeconds() float64 { return float64(simMillis.Load()) / 1000 }

// Workers resolves a worker-count setting: values <= 0 select
// GOMAXPROCS, and the count is clamped to n so tiny batches do not spawn
// idle goroutines.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// RunBatch executes every scenario, fanning them across workers goroutines
// (workers <= 0 selects GOMAXPROCS), and returns results in submission
// order. If any scenario fails, the first error by submission index is
// returned alongside the partial results (failed slots are nil).
func RunBatch(scenarios []Scenario, workers int) ([]*Result, error) {
	results := make([]*Result, len(scenarios))
	err := ForEach(len(scenarios), workers, func(i int) error {
		r, err := Run(scenarios[i])
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	return results, err
}

// MustRunBatch panics on error; for experiments with static scenario grids.
func MustRunBatch(scenarios []Scenario, workers int) []*Result {
	rs, err := RunBatch(scenarios, workers)
	if err != nil {
		panic(err)
	}
	return rs
}

// RunBatchCtx is RunBatch with cancellation: once ctx is done, no new
// scenarios are started (in-flight ones finish) and ctx.Err is reported if
// no scenario error preceded it. Skipped slots are nil.
func RunBatchCtx(ctx context.Context, scenarios []Scenario, workers int) ([]*Result, error) {
	results := make([]*Result, len(scenarios))
	err := ForEachCtx(ctx, len(scenarios), workers, func(i int) error {
		r, err := Run(scenarios[i])
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	return results, err
}

// RunBatchObserved is RunBatchCtx with live batch telemetry on reg (nil reg
// degrades to RunBatchCtx). Two kinds of metrics are produced:
//
//   - Batch progress, written directly to reg as scenarios start and
//     finish: started/completed counters, an in-flight gauge, a wall-time
//     histogram, and per-worker scenario/sim-time counters
//     (runner_worker_<i>_*) exposing each pool worker's throughput. These
//     are live — a /metrics scrape mid-batch shows current progress — but
//     per-worker attribution depends on scheduling, so only the totals are
//     deterministic.
//
//   - Per-layer scenario metrics (sim/netem/transport): each scenario runs
//     against its own private registry, so parallel workers never contend
//     on hot-path counters, then the private registries are merged into reg
//     in submission order once the batch completes. Merging is commutative
//     (counters and histograms add), so the merged totals are identical for
//     any worker count.
//
// Scenario results remain byte-identical to RunBatch for any worker count,
// with or without reg.
func RunBatchObserved(ctx context.Context, scenarios []Scenario, workers int, reg *telemetry.Registry) ([]*Result, error) {
	if reg == nil {
		return RunBatchCtx(ctx, scenarios, workers)
	}
	n := len(scenarios)
	w := Workers(workers, n)
	started := reg.Counter("runner_scenarios_started_total", "scenarios claimed by a worker")
	completed := reg.Counter("runner_scenarios_completed_total", "scenarios finished (including failures)")
	inflight := reg.Gauge("runner_batch_inflight", "scenarios currently executing")
	reg.Gauge("runner_batch_workers", "resolved worker-pool size of the latest batch").Set(float64(w))
	submitted := reg.Counter("runner_scenarios_submitted_total", "scenarios submitted to batches")
	submitted.Add(int64(n))
	wall := reg.Histogram("runner_scenario_wall_seconds", "wall-clock time per scenario",
		telemetry.ExponentialBuckets(0.001, 2, 18)) // 1 ms .. ~2 min
	perWorkerScen := make([]*telemetry.Counter, w)
	perWorkerSim := make([]*telemetry.Counter, w)
	for i := 0; i < w; i++ {
		perWorkerScen[i] = reg.Counter(fmt.Sprintf("runner_worker_%d_scenarios_total", i),
			"scenarios completed by this pool worker")
		perWorkerSim[i] = reg.Counter(fmt.Sprintf("runner_worker_%d_sim_milliseconds_total", i),
			"simulated time executed by this pool worker")
	}

	children := make([]*telemetry.Registry, n)
	results := make([]*Result, n)
	err := ForEachWorkerCtx(ctx, n, w, func(worker, i int) error {
		started.Inc()
		inflight.Add(1)
		begin := time.Now()
		sc := scenarios[i]
		sc.Telemetry = telemetry.NewRegistry()
		r, runErr := Run(sc)
		wall.Observe(time.Since(begin).Seconds())
		inflight.Add(-1)
		completed.Inc()
		perWorkerScen[worker].Inc()
		if runErr != nil {
			// A failed Run executed little or none of the scenario's virtual
			// time; crediting the full duration would inflate this worker's
			// throughput counter.
			return runErr
		}
		perWorkerSim[worker].Add(int64(sc.Duration * 1000))
		results[i] = r
		children[i] = sc.Telemetry
		return nil
	})
	for _, child := range children {
		if child != nil {
			reg.Merge(child.Snapshot())
		}
	}
	return results, err
}

// InstrumentProcess registers the process-wide metrics that cannot live in
// a per-run registry because the state they read is shared by every
// scenario in the process: packet-pool heap allocations (the pool is one
// sync.Pool) and the total simulated time executed by Run. Binaries call
// this once on their top-level registry; values are sampled lazily at
// snapshot/scrape time.
func InstrumentProcess(reg *telemetry.Registry) {
	reg.GaugeFunc("netem_packet_pool_allocs", "packets heap-allocated because the pool had no recycled one",
		func() float64 { return float64(netem.PacketPoolAllocs()) })
	reg.GaugeFunc("runner_sim_seconds", "total simulated time executed by Run since process start", SimSeconds)
	reg.GaugeFunc("process_gomaxprocs", "GOMAXPROCS at scrape time",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
}

// ForEach runs fn(0..n-1) across a pool of workers goroutines and returns
// the error from the lowest index that failed (all indices are still
// attempted). It is the building block for experiment sweeps whose jobs are
// not plain Scenarios (hand-built topologies, multi-bottleneck runs).
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach with cancellation: once ctx is done no new indices
// are claimed. Claimed indices run to completion. Returns the error from
// the lowest failed index, or ctx.Err if the batch was cut short without an
// fn error.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	return ForEachWorkerCtx(ctx, n, workers, func(_, i int) error { return fn(i) })
}

// ForEachWorkerCtx is ForEachCtx exposing the worker identity: fn receives
// (worker, index) where worker ∈ [0, Workers(workers, n)). Worker-to-index
// assignment is scheduling-dependent; use it only for observability (e.g.
// per-worker throughput counters), never to influence results.
func ForEachWorkerCtx(ctx context.Context, n, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)
	if workers == 1 {
		// Inline serial path: no goroutines, no synchronization.
		var firstErr error
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			if err := fn(0, i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return firstErr
		}
		return ctx.Err()
	}

	var (
		next   atomic.Int64
		errMu  sync.Mutex
		errIdx = n
		runErr error
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(worker, i); err != nil {
					errMu.Lock()
					if i < errIdx {
						errIdx, runErr = i, err
					}
					errMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if runErr != nil {
		return runErr
	}
	return ctx.Err()
}
