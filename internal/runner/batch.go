package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// The batch engine fans independent scenarios across a worker pool. Each
// scenario builds its own Simulator, topology and flows from its seed, so a
// worker goroutine shares no mutable state with any other; results are
// written into a slot indexed by submission position, which makes batch
// output byte-identical to a serial loop regardless of completion order.

// simMillis accumulates simulated virtual time completed by Run across the
// whole process, in milliseconds. Benchmarks read it through SimSeconds to
// report simulated-seconds-per-wall-second.
var simMillis atomic.Int64

// SimSeconds returns the total simulated time executed by Run since process
// start. Sample it before and after a workload to compute simulated-seconds
// per wall-second.
func SimSeconds() float64 { return float64(simMillis.Load()) / 1000 }

// Workers resolves a worker-count setting: values <= 0 select
// GOMAXPROCS, and the count is clamped to n so tiny batches do not spawn
// idle goroutines.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// RunBatch executes every scenario, fanning them across workers goroutines
// (workers <= 0 selects GOMAXPROCS), and returns results in submission
// order. If any scenario fails, the first error by submission index is
// returned alongside the partial results (failed slots are nil).
func RunBatch(scenarios []Scenario, workers int) ([]*Result, error) {
	results := make([]*Result, len(scenarios))
	err := ForEach(len(scenarios), workers, func(i int) error {
		r, err := Run(scenarios[i])
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	return results, err
}

// MustRunBatch panics on error; for experiments with static scenario grids.
func MustRunBatch(scenarios []Scenario, workers int) []*Result {
	rs, err := RunBatch(scenarios, workers)
	if err != nil {
		panic(err)
	}
	return rs
}

// RunBatchCtx is RunBatch with cancellation: once ctx is done, no new
// scenarios are started (in-flight ones finish) and ctx.Err is reported if
// no scenario error preceded it. Skipped slots are nil.
func RunBatchCtx(ctx context.Context, scenarios []Scenario, workers int) ([]*Result, error) {
	results := make([]*Result, len(scenarios))
	err := ForEachCtx(ctx, len(scenarios), workers, func(i int) error {
		r, err := Run(scenarios[i])
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	return results, err
}

// ForEach runs fn(0..n-1) across a pool of workers goroutines and returns
// the error from the lowest index that failed (all indices are still
// attempted). It is the building block for experiment sweeps whose jobs are
// not plain Scenarios (hand-built topologies, multi-bottleneck runs).
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach with cancellation: once ctx is done no new indices
// are claimed. Claimed indices run to completion. Returns the error from
// the lowest failed index, or ctx.Err if the batch was cut short without an
// fn error.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)
	if workers == 1 {
		// Inline serial path: no goroutines, no synchronization.
		var firstErr error
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return firstErr
		}
		return ctx.Err()
	}

	var (
		next   atomic.Int64
		errMu  sync.Mutex
		errIdx = n
		runErr error
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if i < errIdx {
						errIdx, runErr = i, err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if runErr != nil {
		return runErr
	}
	return ctx.Err()
}
