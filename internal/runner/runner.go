// Package runner executes emulation scenarios: it wires flows with their
// congestion controllers onto a topology, records per-flow throughput and
// RTT timeseries, and summarizes link statistics. Experiments, examples and
// tests all drive the simulator through this package.
package runner

import (
	"fmt"
	"math"

	"repro/internal/cc"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/transport"
)

// FlowSpec configures one flow of a scenario.
type FlowSpec struct {
	// Scheme names a registered CC algorithm; ignored when CC is set.
	Scheme string
	// CC overrides Scheme with a pre-built controller (used for Astraea
	// agents that share a policy or service).
	CC transport.CongestionControl
	// Start and Duration in seconds; zero duration runs to the end.
	Start    float64
	Duration float64
	// ExtraDelay adds one-way delay to this flow's path (RTT heterogeneity).
	ExtraDelay float64
}

// Scenario describes a dumbbell experiment.
type Scenario struct {
	Seed       int64
	RateBps    float64
	BaseRTT    float64
	QueueBytes int     // absolute; if zero, QueueBDP applies
	QueueBDP   float64 // buffer as a multiple of BDP (rate × BaseRTT)
	LossProb   float64
	Duration   float64
	// SampleInterval for recorded timeseries; defaults to 100 ms.
	SampleInterval float64
	Flows          []FlowSpec
	// Discipline selects the bottleneck queueing policy (nil = droptail).
	Discipline netem.QueueDiscipline
	// Trace, when set, drives the bottleneck capacity over time (looped).
	Trace *trace.Trace
	// CrossBps injects Poisson background traffic at this average load.
	CrossBps float64
	// Jitter adds uniform random forward-path delay in [0, Jitter).
	Jitter float64
	// OnFlowCreated, when set, observes each flow as it is wired up
	// (before Start), letting callers attach tracers or extra hooks.
	OnFlowCreated func(i int, f *transport.Flow)
	// Probe, when set, observes the simulator and topology right after
	// construction, before any flow is created or any event runs. It exists
	// for observers that attach to the running simulation — the invariant
	// checker in internal/check installs its sim.AfterEvent hook here.
	// Probes must not schedule events or draw from the simulator's RNG.
	Probe func(s *sim.Simulator, d *netem.Dumbbell)
	// Telemetry, when set, receives runtime metrics from every layer the
	// scenario builds: simulator event-loop counters, bottleneck-link
	// enqueue/drop counters, and transport send/loss/RTT instruments.
	// Instrumentation never changes event order or RNG draws, so results
	// are byte-identical with or without it. The registry is usually
	// private to this run (see RunBatchObserved); sharing one across
	// concurrent runs is safe but makes workers contend on its atomics.
	Telemetry *telemetry.Registry
	// FlowTelemetryLimit caps how many flows receive individually-named
	// instruments (runner_flow_<i>_*) on Telemetry. Flows beyond the cap
	// fold into shared runner_flow_overflow_* aggregates, so a 1000-flow
	// incast cannot explode registry cardinality. Zero selects
	// DefaultFlowTelemetryLimit; negative disables per-flow instruments
	// entirely (aggregates only).
	FlowTelemetryLimit int
}

// DefaultFlowTelemetryLimit is the per-flow instrument cap applied when
// Scenario.FlowTelemetryLimit is zero. 32 labeled flows cover every curated
// experiment; scale sweeps beyond it pay one fixed trio of overflow
// aggregates no matter how many flows they add.
const DefaultFlowTelemetryLimit = 32

// FlowResult holds everything recorded about one flow.
type FlowResult struct {
	Spec       FlowSpec
	SchemeName string
	Tput       *metrics.Timeseries // bits/sec
	RTT        *metrics.Timeseries // seconds (mean per bin; 0 where no samples)

	DeliveredBytes int64
	LostBytes      int64
	LostPackets    int64
	AvgTputBps     float64 // over the flow's active period
	AvgRTT         float64
	MinRTT         float64
	LossRate       float64
}

// Result is a completed scenario run.
type Result struct {
	Scenario    Scenario
	Flows       []*FlowResult
	Utilization float64 // delivered bits across flows / capacity over the run
	Bottleneck  netem.LinkStats
	MaxQueue    int
}

// queueBytes resolves the configured buffer size.
func (sc *Scenario) queueBytes() int {
	if sc.QueueBytes > 0 {
		return sc.QueueBytes
	}
	bdp := sc.QueueBDP
	if bdp <= 0 {
		bdp = 1
	}
	q := int(float64(netem.BDPBytes(sc.RateBps, sc.BaseRTT)) * bdp)
	if q < 2*transport.MSS {
		q = 2 * transport.MSS
	}
	return q
}

func (sc *Scenario) sampleInterval() float64 {
	if sc.SampleInterval > 0 {
		return sc.SampleInterval
	}
	return 0.1
}

// Run executes the scenario to completion.
func Run(sc Scenario) (*Result, error) {
	s := sim.New(sc.Seed)
	dumb := netem.NewDumbbell(s, netem.DumbbellConfig{
		RateBps:    sc.RateBps,
		BaseRTT:    sc.BaseRTT,
		QueueBytes: sc.queueBytes(),
		LossProb:   sc.LossProb,
		Discipline: sc.Discipline,
	})
	var flowMetrics *transport.Metrics
	if reg := sc.Telemetry; reg != nil {
		s.Instrument(reg)
		dumb.Bottleneck.Metrics = netem.NewLinkMetrics(reg)
		flowMetrics = transport.NewMetrics(reg)
		reg.Counter("runner_scenarios_total", "scenarios executed").Inc()
		// Milliseconds as a counter (not a seconds gauge) so per-run
		// registries merge commutatively.
		reg.Counter("runner_sim_milliseconds_total", "simulated virtual time executed").Add(int64(sc.Duration * 1000))
	}
	if sc.Probe != nil {
		sc.Probe(s, dumb)
	}
	if sc.Trace != nil {
		sc.Trace.Apply(s, dumb.Bottleneck, sc.Duration, true)
	}
	if sc.CrossBps > 0 {
		ct := &netem.CrossTraffic{Sim: s, Link: dumb.Bottleneck, MeanBps: sc.CrossBps, BurstMean: 4}
		ct.Start()
	}

	res := &Result{Scenario: sc}
	interval := sc.sampleInterval()
	bins := int(math.Ceil(sc.Duration/interval)) + 1

	// Registered before the per-flow finalizers so it runs after all of them
	// (defers are LIFO): by then every FlowResult carries its final byte
	// totals, ready to publish under the cardinality cap.
	if sc.Telemetry != nil {
		defer publishFlowTelemetry(&sc, res)
	}

	for i, spec := range sc.Flows {
		ctrl := spec.CC
		if ctrl == nil {
			var err error
			ctrl, err = cc.New(spec.Scheme)
			if err != nil {
				return nil, fmt.Errorf("flow %d: %w", i, err)
			}
		}
		path := dumb.FlowPath(spec.ExtraDelay)
		if sc.Jitter > 0 {
			path.Forward = append([]netem.Hop{&netem.JitterHop{Sim: s, Max: sc.Jitter}}, path.Forward...)
		}
		f := transport.NewFlow(s, transport.FlowConfig{
			ID: i, Path: path, CC: ctrl, Start: spec.Start, Duration: spec.Duration,
			Metrics: flowMetrics,
		})
		fr := &FlowResult{
			Spec:       spec,
			SchemeName: ctrl.Name(),
			Tput:       &metrics.Timeseries{Interval: interval, Values: make([]float64, bins)},
			RTT:        &metrics.Timeseries{Interval: interval, Values: make([]float64, bins)},
		}
		rttCount := make([]int, bins)
		var rttSum, rttN float64
		minRTT := math.Inf(1)
		f.OnAckHook = func(e transport.AckEvent) {
			bin := int(e.Now / interval)
			if bin >= 0 && bin < bins {
				fr.Tput.Values[bin] += float64(e.Bytes) * 8 / interval
				fr.RTT.Values[bin] += e.RTT
				rttCount[bin]++
			}
			rttSum += e.RTT
			rttN++
			if e.RTT < minRTT {
				minRTT = e.RTT
			}
		}
		flow := f
		f.OnStop = func(fl *transport.Flow) {
			fr.DeliveredBytes = fl.DeliveredBytes
			fr.LostBytes = fl.LostBytes
			fr.LostPackets = fl.LostPackets
		}
		res.Flows = append(res.Flows, fr)
		defer func(fr *FlowResult, counts []int, sum *float64, n *float64, min *float64, fl *transport.Flow) {
			for b := range fr.RTT.Values {
				if counts[b] > 0 {
					fr.RTT.Values[b] /= float64(counts[b])
				}
			}
			if *n > 0 {
				fr.AvgRTT = *sum / *n
				fr.MinRTT = *min
			}
			if fr.DeliveredBytes == 0 {
				fr.DeliveredBytes = fl.DeliveredBytes
				fr.LostBytes = fl.LostBytes
				fr.LostPackets = fl.LostPackets
			}
			active := fr.Spec.Duration
			if active <= 0 {
				active = sc.Duration - fr.Spec.Start
			}
			if active > 0 {
				fr.AvgTputBps = float64(fr.DeliveredBytes) * 8 / active
			}
			if tot := fr.DeliveredBytes + fr.LostBytes; tot > 0 {
				fr.LossRate = float64(fr.LostBytes) / float64(tot)
			}
		}(fr, rttCount, &rttSum, &rttN, &minRTT, flow)
		if sc.OnFlowCreated != nil {
			sc.OnFlowCreated(i, f)
		}
		f.Start()
	}

	s.Run(sc.Duration)

	res.Bottleneck = dumb.Bottleneck.Stats()
	res.MaxQueue = dumb.Bottleneck.MaxQueueBytes()
	var delivered int64
	for _, fr := range res.Flows {
		delivered += func() int64 {
			var sum float64
			for _, v := range fr.Tput.Values {
				sum += v * fr.Tput.Interval
			}
			return int64(sum / 8)
		}()
	}
	capBits := sc.RateBps * sc.Duration
	if sc.Trace != nil {
		capBits = sc.Trace.Mean() * sc.Duration
	}
	if capBits > 0 {
		res.Utilization = float64(delivered) * 8 / capBits
	}
	simMillis.Add(int64(sc.Duration * 1000))
	return res, nil
}

// publishFlowTelemetry records per-flow byte totals on the scenario's
// registry, individually named for the first FlowTelemetryLimit flows and
// folded into overflow aggregates beyond that. Registry cardinality is
// therefore O(min(flows, limit)), not O(flows): a 1000-flow incast adds the
// same handful of series as a 32-flow one.
func publishFlowTelemetry(sc *Scenario, res *Result) {
	reg := sc.Telemetry
	limit := sc.FlowTelemetryLimit
	if limit == 0 {
		limit = DefaultFlowTelemetryLimit
	}
	var overflow int64
	var overflowDelivered, overflowLost int64
	for i, fr := range res.Flows {
		if limit > 0 && i < limit {
			reg.Counter(fmt.Sprintf("runner_flow_%d_delivered_bytes_total", i),
				"bytes delivered by this flow").Add(fr.DeliveredBytes)
			reg.Counter(fmt.Sprintf("runner_flow_%d_lost_bytes_total", i),
				"bytes declared lost by this flow").Add(fr.LostBytes)
			continue
		}
		overflow++
		overflowDelivered += fr.DeliveredBytes
		overflowLost += fr.LostBytes
	}
	if overflow > 0 {
		reg.Counter("runner_flow_overflow_flows_total",
			"flows beyond the per-flow telemetry cap, folded into aggregates").Add(overflow)
		reg.Counter("runner_flow_overflow_delivered_bytes_total",
			"bytes delivered by flows beyond the per-flow telemetry cap").Add(overflowDelivered)
		reg.Counter("runner_flow_overflow_lost_bytes_total",
			"bytes lost by flows beyond the per-flow telemetry cap").Add(overflowLost)
	}
}

// MustRun panics on error; for tests and experiments with static configs.
func MustRun(sc Scenario) *Result {
	r, err := Run(sc)
	if err != nil {
		panic(err)
	}
	return r
}

// AvgTputWindow returns a flow's mean throughput between from and to.
func (fr *FlowResult) AvgTputWindow(from, to float64) float64 {
	return metrics.Mean(fr.Tput.Slice(from, to))
}
