package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

func batchScenario(seed int64) Scenario {
	return Scenario{
		Seed: seed, RateBps: 20e6, BaseRTT: 0.04, QueueBDP: 1,
		Duration: 3,
		Flows:    []FlowSpec{{Scheme: "cubic"}, {Scheme: "cubic", Start: 0.5}},
	}
}

// summarize flattens the deterministic parts of a result for comparison.
func summarize(r *Result) string {
	s := ""
	for _, fr := range r.Flows {
		s += fmt.Sprintf("%s d=%d l=%d tput=%.6f rtt=%.9f;",
			fr.SchemeName, fr.DeliveredBytes, fr.LostBytes, fr.AvgTputBps, fr.AvgRTT)
	}
	s += fmt.Sprintf("util=%.9f maxq=%d arr=%d", r.Utilization, r.MaxQueue, r.Bottleneck.Arrived)
	return s
}

func TestRunBatchMatchesSerialInOrder(t *testing.T) {
	var scs []Scenario
	for i := 0; i < 6; i++ {
		scs = append(scs, batchScenario(int64(100+i)))
	}
	serial := make([]string, len(scs))
	for i, sc := range scs {
		serial[i] = summarize(MustRun(sc))
	}
	par := MustRunBatch(scs, 4)
	if len(par) != len(scs) {
		t.Fatalf("got %d results, want %d", len(par), len(scs))
	}
	for i, r := range par {
		if got := summarize(r); got != serial[i] {
			t.Errorf("slot %d diverged from serial run:\n par: %s\n ser: %s", i, got, serial[i])
		}
	}
}

func TestRunBatchSameSeedIdentical(t *testing.T) {
	scs := []Scenario{batchScenario(7), batchScenario(7)}
	rs := MustRunBatch(scs, 2)
	if a, b := summarize(rs[0]), summarize(rs[1]); a != b {
		t.Fatalf("same-seed scenarios diverged:\n%s\n%s", a, b)
	}
}

func TestRunBatchPropagatesFirstErrorByIndex(t *testing.T) {
	scs := []Scenario{batchScenario(1), batchScenario(2), batchScenario(3)}
	scs[1].Flows = []FlowSpec{{Scheme: "no-such-scheme"}}
	scs[2].Flows = []FlowSpec{{Scheme: "also-missing"}}
	rs, err := RunBatch(scs, 3)
	if err == nil {
		t.Fatal("expected an error")
	}
	if want := "no-such-scheme"; !strings.Contains(err.Error(), want) {
		t.Fatalf("err %q should be from index 1 (%s)", err, want)
	}
	if rs[0] == nil {
		t.Error("successful slot 0 missing from partial results")
	}
	if rs[1] != nil || rs[2] != nil {
		t.Error("failed slots should be nil")
	}
}

func TestForEachCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachCtx(ctx, 1000, 2, func(i int) error {
		if ran.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("cancellation did not cut the batch short (ran %d)", n)
	}
}

func TestForEachSerialPath(t *testing.T) {
	var order []int
	err := ForEach(5, 1, func(i int) error {
		order = append(order, i) // safe: workers=1 runs inline
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path out of order: %v", order)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if w := Workers(0, 100); w < 1 {
		t.Fatalf("Workers(0, 100) = %d", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Fatalf("Workers(8, 3) = %d, want clamp to 3", w)
	}
	if w := Workers(2, 100); w != 2 {
		t.Fatalf("Workers(2, 100) = %d", w)
	}
}

// A failed Run must not credit its worker with the scenario's simulated
// time: the per-worker throughput counter would otherwise report virtual
// seconds that were never executed.
func TestRunBatchObservedNoSimCreditOnFailure(t *testing.T) {
	ok := batchScenario(11)
	bad := batchScenario(12)
	bad.Flows = []FlowSpec{{Scheme: "no-such-scheme"}}

	reg := telemetry.NewRegistry()
	// One worker, so all per-worker attribution lands on worker 0.
	_, err := RunBatchObserved(context.Background(), []Scenario{ok, bad}, 1, reg)
	if err == nil {
		t.Fatal("expected the failing scenario's error")
	}
	snap := reg.Snapshot()
	sim, found := snap.Get("runner_worker_0_sim_milliseconds_total")
	if !found {
		t.Fatal("worker 0 sim counter missing")
	}
	if want := int64(ok.Duration * 1000); sim.Count != want {
		t.Fatalf("worker 0 credited %d ms of sim time, want %d (only the successful scenario)", sim.Count, want)
	}
	// Completion counters still see both scenarios.
	scen, _ := snap.Get("runner_worker_0_scenarios_total")
	if scen.Count != 2 {
		t.Fatalf("worker 0 completed %d scenarios, want 2", scen.Count)
	}
	completed, _ := snap.Get("runner_scenarios_completed_total")
	if completed.Count != 2 {
		t.Fatalf("completed %d, want 2", completed.Count)
	}
}
