package runner

import (
	"testing"

	"repro/internal/netem"
)

// TestCoDelTamesCubicBufferbloat is the closed-loop AQM check: Cubic over a
// deep droptail buffer bloats the RTT; the same Cubic over CoDel holds the
// RTT near base while keeping most of the throughput.
func TestCoDelTamesCubicBufferbloat(t *testing.T) {
	base := MustRun(Scenario{
		Seed: 8, RateBps: 50e6, BaseRTT: 0.030, QueueBDP: 8, Duration: 30,
		Flows: []FlowSpec{{Scheme: "cubic"}},
	})
	codel := MustRun(Scenario{
		Seed: 8, RateBps: 50e6, BaseRTT: 0.030, QueueBDP: 8, Duration: 30,
		Discipline: netem.NewCoDel(),
		Flows:      []FlowSpec{{Scheme: "cubic"}},
	})
	if base.Flows[0].AvgRTT < 0.060 {
		t.Fatalf("droptail deep buffer did not bloat: %.1f ms", base.Flows[0].AvgRTT*1000)
	}
	if codel.Flows[0].AvgRTT > base.Flows[0].AvgRTT/2 {
		t.Fatalf("CoDel RTT %.1f ms not well below droptail %.1f ms",
			codel.Flows[0].AvgRTT*1000, base.Flows[0].AvgRTT*1000)
	}
	if codel.Utilization < 0.7 {
		t.Fatalf("CoDel utilization %.3f collapsed", codel.Utilization)
	}
}

// TestREDFairnessForCubic checks that RED's early dropping desynchronizes
// competing Cubic flows at least as well as droptail.
func TestREDFairnessForCubic(t *testing.T) {
	bdp := netem.BDPBytes(50e6, 0.030)
	red := &netem.RED{
		MinThresholdBytes: bdp / 4, MaxThresholdBytes: bdp,
		MaxProb: 0.1, Weight: 0.002,
	}
	res := MustRun(Scenario{
		Seed: 9, RateBps: 50e6, BaseRTT: 0.030, QueueBytes: 2 * bdp, Duration: 40,
		Discipline: red,
		Flows: []FlowSpec{
			{Scheme: "cubic"},
			{Scheme: "cubic", Start: 3},
		},
	})
	f1 := res.Flows[0].AvgTputWindow(20, 40)
	f2 := res.Flows[1].AvgTputWindow(20, 40)
	if res.Utilization < 0.7 {
		t.Fatalf("utilization %.3f under RED", res.Utilization)
	}
	if f1 <= 0 || f2 <= 0 {
		t.Fatalf("a flow starved under RED: %.1f / %.1f Mbps", f1/1e6, f2/1e6)
	}
	// The link clones the discipline (netem.Cloner), so the caller's
	// template must come back pristine — rerunning or batch-fanning this
	// Scenario must not inherit RNG wiring or EWMA state from this run.
	if red.Rand != nil {
		t.Fatal("link mutated the caller's RED template instead of cloning it")
	}
}
