package runner

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// fanIn builds an n-flow scenario cheap enough to run at 1000 flows: a slow
// link and a short duration keep the packet count tiny while still creating
// (and finishing) every flow.
func fanIn(n int) Scenario {
	sc := Scenario{
		Seed: 3, RateBps: 20e6, BaseRTT: 0.005, QueueBDP: 4, Duration: 0.1,
	}
	for i := 0; i < n; i++ {
		sc.Flows = append(sc.Flows, FlowSpec{Scheme: "reno", Start: 0.0001 * float64(i%100)})
	}
	return sc
}

func countByPrefix(reg *telemetry.Registry, prefix string) int {
	n := 0
	for _, m := range reg.Snapshot().Metrics {
		if strings.HasPrefix(m.Name, prefix) {
			n++
		}
	}
	return n
}

// TestFlowTelemetryCardinalityBounded: registry size must not scale with
// flow count. A 1000-flow incast gets the same number of series as a run at
// exactly the cap, with flows beyond it folded into overflow aggregates.
func TestFlowTelemetryCardinalityBounded(t *testing.T) {
	atCap := telemetry.NewRegistry()
	scA := fanIn(DefaultFlowTelemetryLimit)
	scA.Telemetry = atCap
	MustRun(scA)

	big := telemetry.NewRegistry()
	scB := fanIn(1000)
	scB.Telemetry = big
	MustRun(scB)

	nA := len(atCap.Snapshot().Metrics)
	nB := len(big.Snapshot().Metrics)
	// The big run may add only the three fixed overflow aggregates.
	if nB > nA+3 {
		t.Fatalf("1000-flow registry has %d series vs %d at the cap — per-flow cardinality is unbounded", nB, nA)
	}
	if got := countByPrefix(big, "runner_flow_"); got != 2*DefaultFlowTelemetryLimit+3 {
		t.Fatalf("per-flow series at 1000 flows: %d, want %d labeled + 3 overflow",
			got, 2*DefaultFlowTelemetryLimit)
	}
	for _, name := range []string{
		"runner_flow_overflow_flows_total",
		"runner_flow_overflow_delivered_bytes_total",
	} {
		if countByPrefix(big, name) != 1 {
			t.Errorf("missing overflow aggregate %s", name)
		}
	}
}

// TestFlowTelemetryLimitModes covers the explicit settings: a custom cap
// labels exactly that many flows, and a negative cap labels none.
func TestFlowTelemetryLimitModes(t *testing.T) {
	reg := telemetry.NewRegistry()
	sc := fanIn(10)
	sc.Telemetry = reg
	sc.FlowTelemetryLimit = 4
	MustRun(sc)
	if got := countByPrefix(reg, "runner_flow_0_"); got != 2 {
		t.Errorf("flow 0 series: %d, want 2", got)
	}
	if got := countByPrefix(reg, "runner_flow_4_"); got != 0 {
		t.Errorf("flow 4 labeled despite limit 4")
	}
	if got := countByPrefix(reg, "runner_flow_overflow_"); got != 3 {
		t.Errorf("overflow series: %d, want 3", got)
	}

	none := telemetry.NewRegistry()
	sc2 := fanIn(10)
	sc2.Telemetry = none
	sc2.FlowTelemetryLimit = -1
	MustRun(sc2)
	if got := countByPrefix(none, "runner_flow_overflow_"); got != 3 {
		t.Errorf("negative limit: overflow series %d, want 3", got)
	}
	total := countByPrefix(none, "runner_flow_")
	if total != 3 {
		t.Errorf("negative limit: %d runner_flow_ series, want only the 3 overflow aggregates", total)
	}
}

// TestFlowTelemetryConservation: labeled plus overflow byte totals must
// equal the per-flow results exactly — the cap folds flows, it does not
// drop bytes.
func TestFlowTelemetryConservation(t *testing.T) {
	reg := telemetry.NewRegistry()
	sc := fanIn(50)
	sc.Telemetry = reg
	sc.FlowTelemetryLimit = 8
	res := MustRun(sc)

	var want int64
	for _, fr := range res.Flows {
		want += fr.DeliveredBytes
	}
	var got int64
	for _, m := range reg.Snapshot().Metrics {
		if strings.HasSuffix(m.Name, "_delivered_bytes_total") && strings.HasPrefix(m.Name, "runner_flow_") {
			got += m.Count
		}
	}
	if got != want {
		t.Fatalf("telemetry delivered bytes %d != result total %d", got, want)
	}
}
