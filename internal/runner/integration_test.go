package runner

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// TestDistilledPolicyClosedLoop exercises the full neural pipeline the way
// deployment does: distill the reference policy into the MLP actor, load it
// into agents, and verify the closed-loop multi-flow behaviour survives the
// approximation — near-equal sharing and high utilization.
func TestDistilledPolicyClosedLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("distillation + multi-flow scenario")
	}
	cfg := core.DefaultConfig()
	opts := core.DefaultDistillOptions()
	opts.Samples = 12000
	opts.Epochs = 25
	opts.Hidden = []int{128, 64}
	net, loss := core.DistillPolicy(cfg, opts)
	// The reference law has hard clamps and a discontinuous loss guard, so
	// a compact net cannot fit it exactly; what matters is that the
	// closed-loop behaviour below survives the approximation.
	if loss > 0.05 {
		t.Fatalf("imitation MSE %v too high to deploy", loss)
	}

	mk := func() *core.Agent {
		return core.NewAgent(cfg, &core.MLPPolicy{Net: net})
	}
	res := MustRun(Scenario{
		Seed: 31, RateBps: 100e6, BaseRTT: 0.030, QueueBDP: 1, Duration: 60,
		Flows: []FlowSpec{
			{CC: mk(), Start: 0},
			{CC: mk(), Start: 10},
			{CC: mk(), Start: 20},
		},
	})
	var avgs []float64
	for _, fr := range res.Flows {
		avgs = append(avgs, fr.AvgTputWindow(40, 60))
	}
	jain := metrics.Jain(avgs)
	if jain < 0.90 {
		t.Fatalf("distilled-policy Jain %.3f, want ≥ 0.90 (avgs %v)", jain, avgs)
	}
	if res.Utilization < 0.85 {
		t.Fatalf("distilled-policy utilization %.3f", res.Utilization)
	}
}

// TestServedPolicyClosedLoop drives several flows through one shared
// inference service (the §4 deployment architecture) inside the simulator.
func TestServedPolicyClosedLoop(t *testing.T) {
	cfg := core.DefaultConfig()
	svc := core.NewService(cfg, nil)
	svc.BatchWindow = 0 // synchronous inside the single-threaded simulator

	mk := func() *core.Agent { return core.NewServedAgent(cfg, svc) }
	res := MustRun(Scenario{
		Seed: 33, RateBps: 100e6, BaseRTT: 0.030, QueueBDP: 1, Duration: 40,
		Flows: []FlowSpec{
			{CC: mk(), Start: 0},
			{CC: mk(), Start: 5},
		},
	})
	var avgs []float64
	for _, fr := range res.Flows {
		avgs = append(avgs, fr.AvgTputWindow(20, 40))
	}
	if jain := metrics.Jain(avgs); jain < 0.95 {
		t.Fatalf("served agents Jain %.3f", jain)
	}
	if svc.Requests == 0 {
		t.Fatal("the shared service was never used")
	}
}
