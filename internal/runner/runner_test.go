package runner

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func TestAllSchemesSingleFlow(t *testing.T) {
	// Every registered comparison scheme must drive a clean 100 Mbps link
	// to reasonable utilization without pathological loss or latency.
	for _, scheme := range []string{"reno", "cubic", "vegas", "bbr", "copa", "vivace", "aurora", "orca", "remy", "astraea"} {
		res := MustRun(Scenario{
			Seed: 1, RateBps: 100e6, BaseRTT: 0.030, QueueBDP: 1, Duration: 20,
			Flows: []FlowSpec{{Scheme: scheme}},
		})
		if res.Utilization < 0.6 {
			t.Errorf("%s utilization %.3f", scheme, res.Utilization)
		}
		fr := res.Flows[0]
		if fr.AvgRTT < 0.030 || fr.AvgRTT > 0.065 {
			t.Errorf("%s avg RTT %.1f ms outside [30, 65]", scheme, fr.AvgRTT*1000)
		}
		if fr.LossRate > 0.10 {
			t.Errorf("%s loss rate %.3f", scheme, fr.LossRate)
		}
	}
}

func TestUnknownSchemeErrors(t *testing.T) {
	_, err := Run(Scenario{
		RateBps: 1e6, BaseRTT: 0.01, Duration: 1,
		Flows: []FlowSpec{{Scheme: "nosuch"}},
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() *Result {
		return MustRun(Scenario{
			Seed: 99, RateBps: 50e6, BaseRTT: 0.030, QueueBDP: 1, Duration: 10,
			Flows: []FlowSpec{{Scheme: "cubic"}, {Scheme: "cubic", Start: 2}},
		})
	}
	a, b := run(), run()
	if a.Utilization != b.Utilization {
		t.Fatalf("utilization differs: %v vs %v", a.Utilization, b.Utilization)
	}
	for i := range a.Flows {
		if a.Flows[i].DeliveredBytes != b.Flows[i].DeliveredBytes {
			t.Fatalf("flow %d bytes differ", i)
		}
		for j := range a.Flows[i].Tput.Values {
			if a.Flows[i].Tput.Values[j] != b.Flows[i].Tput.Values[j] {
				t.Fatalf("flow %d tput series diverges at bin %d", i, j)
			}
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	run := func(seed int64) float64 {
		res := MustRun(Scenario{
			Seed: seed, RateBps: 50e6, BaseRTT: 0.030, QueueBDP: 1,
			LossProb: 0.001, Duration: 10,
			Flows: []FlowSpec{{Scheme: "cubic"}},
		})
		return float64(res.Flows[0].DeliveredBytes)
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical stochastic runs")
	}
}

func TestFlowTimings(t *testing.T) {
	res := MustRun(Scenario{
		Seed: 1, RateBps: 50e6, BaseRTT: 0.030, QueueBDP: 1, Duration: 20,
		Flows: []FlowSpec{{Scheme: "cubic", Start: 5, Duration: 10}},
	})
	fr := res.Flows[0]
	if fr.Tput.At(2) != 0 {
		t.Fatal("flow transmitted before start")
	}
	if fr.Tput.At(10) == 0 {
		t.Fatal("flow idle mid-lifetime")
	}
	if fr.Tput.At(18) != 0 {
		t.Fatal("flow transmitted after stop")
	}
}

func TestExtraDelayRaisesRTT(t *testing.T) {
	res := MustRun(Scenario{
		Seed: 1, RateBps: 50e6, BaseRTT: 0.030, QueueBDP: 4, Duration: 10,
		Flows: []FlowSpec{
			{Scheme: "vegas"},
			{Scheme: "vegas", ExtraDelay: 0.050},
		},
	})
	if res.Flows[1].MinRTT < res.Flows[0].MinRTT+0.045 {
		t.Fatalf("extra delay not applied: minRTTs %.1f vs %.1f ms",
			res.Flows[0].MinRTT*1000, res.Flows[1].MinRTT*1000)
	}
}

func TestTraceThrottlesThroughput(t *testing.T) {
	tr := trace.Step(5e6, 20e6, 2, 20)
	res := MustRun(Scenario{
		Seed: 1, RateBps: 20e6, BaseRTT: 0.020, QueueBDP: 2, Duration: 20,
		Trace: tr,
		Flows: []FlowSpec{{Scheme: "cubic"}},
	})
	avg := res.Flows[0].AvgTputBps
	if avg > 14e6 {
		t.Fatalf("trace-capped flow averaged %.1f Mbps above the %0.1f trace mean",
			avg/1e6, tr.Mean()/1e6)
	}
	if avg < 6e6 {
		t.Fatalf("flow underused trace-driven link: %.1f Mbps", avg/1e6)
	}
}

func TestCrossTrafficReducesForegroundShare(t *testing.T) {
	clean := MustRun(Scenario{
		Seed: 1, RateBps: 50e6, BaseRTT: 0.030, QueueBDP: 2, Duration: 15,
		Flows: []FlowSpec{{Scheme: "cubic"}},
	})
	loaded := MustRun(Scenario{
		Seed: 1, RateBps: 50e6, BaseRTT: 0.030, QueueBDP: 2, Duration: 15,
		CrossBps: 25e6,
		Flows:    []FlowSpec{{Scheme: "cubic"}},
	})
	if loaded.Flows[0].AvgTputBps > 0.9*clean.Flows[0].AvgTputBps {
		t.Fatalf("cross traffic had no effect: %.1f vs %.1f Mbps",
			loaded.Flows[0].AvgTputBps/1e6, clean.Flows[0].AvgTputBps/1e6)
	}
}

func TestAstraeaThreeFlowFairness(t *testing.T) {
	// The paper's headline: near-optimal Jain index on staggered flows.
	res := MustRun(Scenario{
		Seed: 2, RateBps: 100e6, BaseRTT: 0.030, QueueBDP: 1, Duration: 200,
		Flows: []FlowSpec{
			{Scheme: "astraea", Start: 0, Duration: 120},
			{Scheme: "astraea", Start: 40, Duration: 120},
			{Scheme: "astraea", Start: 80, Duration: 120},
		},
	})
	var series []*metrics.Timeseries
	for _, fr := range res.Flows {
		series = append(series, fr.Tput)
	}
	jain := metrics.Mean(metrics.JainOverTime(series, 1e6))
	if jain < 0.97 {
		t.Fatalf("Astraea mean Jain %.4f, want ≥ 0.97 (paper: 0.991)", jain)
	}
	if res.Utilization < 0.9 {
		t.Fatalf("utilization %.3f", res.Utilization)
	}
	// During the three-flow phase, every flow near 1/3 share.
	for i, fr := range res.Flows {
		avg := fr.AvgTputWindow(90, 115)
		if math.Abs(avg-100e6/3) > 8e6 {
			t.Errorf("flow %d at %.1f Mbps in 3-flow phase, want ≈33.3", i, avg/1e6)
		}
	}
}

func TestUtilizationAccounting(t *testing.T) {
	res := MustRun(Scenario{
		Seed: 1, RateBps: 100e6, BaseRTT: 0.030, QueueBDP: 1, Duration: 10,
		Flows: []FlowSpec{{Scheme: "bbr"}},
	})
	// Utilization must equal delivered bits over capacity (±rounding).
	var bits float64
	for _, v := range res.Flows[0].Tput.Values {
		bits += v * res.Flows[0].Tput.Interval
	}
	want := bits / (100e6 * 10)
	if math.Abs(res.Utilization-want) > 0.02 {
		t.Fatalf("utilization %.4f vs recomputed %.4f", res.Utilization, want)
	}
}

func TestRTTSeriesSane(t *testing.T) {
	res := MustRun(Scenario{
		Seed: 1, RateBps: 100e6, BaseRTT: 0.030, QueueBDP: 1, Duration: 10,
		Flows: []FlowSpec{{Scheme: "cubic"}},
	})
	fr := res.Flows[0]
	for i, v := range fr.RTT.Values {
		if v != 0 && (v < 0.030 || v > 0.070) {
			t.Fatalf("RTT sample %d = %v outside [base, base+buffer]", i, v)
		}
	}
	if fr.MinRTT < 0.030 || fr.MinRTT > 0.032 {
		t.Fatalf("MinRTT %v", fr.MinRTT)
	}
}
