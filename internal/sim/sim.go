// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives every other substrate in this repository: network links,
// transport senders, flow generators and the multi-flow training environment
// all schedule callbacks on a single virtual clock. Determinism is guaranteed
// by ordering events on (time, sequence number) and by funnelling all
// randomness through the simulator's seeded RNG.
//
// A Simulator is single-threaded and must only be driven from one goroutine,
// but independent Simulators are fully isolated from each other, so many
// scenarios can run concurrently (see internal/runner.RunBatch).
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"repro/internal/telemetry"
)

// event is a scheduled callback. Events with equal times fire in the order
// they were scheduled. Fired and cancelled events are recycled through the
// simulator's free list, so per-event heap allocation is amortized away on
// the hot path; callers hold Timer handles, never raw events.
type event struct {
	at  float64
	seq uint64
	fn  func()

	// gen increments every time the event is recycled; Timer handles carry
	// the generation they were issued for, making stale cancels no-ops.
	gen       uint64
	cancelled bool
	index     int
}

// Timer is a cancellable handle to a scheduled event. The zero Timer is
// valid and cancels nothing. Handles remain safe to use after their event
// fires: the underlying storage may be recycled for a later schedule, and a
// stale Cancel is a generation-checked no-op.
type Timer struct {
	e   *event
	gen uint64
}

// Cancel prevents the event's callback from running. Cancelling an already
// fired (or never scheduled) timer is a no-op.
func (t Timer) Cancel() {
	if t.e != nil && t.e.gen == t.gen {
		t.e.cancelled = true
	}
}

// Cancelled reports whether the event was cancelled before firing. It
// reports false once the event has fired or been recycled.
func (t Timer) Cancelled() bool {
	return t.e != nil && t.e.gen == t.gen && t.e.cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator is a single-threaded discrete-event simulator with a virtual
// clock measured in seconds.
type Simulator struct {
	now    float64
	seq    uint64
	events eventHeap
	free   []*event
	rng    *rand.Rand

	// Telemetry instruments; nil (no-op) unless Instrument was called.
	mDispatched *telemetry.Counter
	mFreeHit    *telemetry.Counter
	mFreeMiss   *telemetry.Counter
	mCancelled  *telemetry.Counter

	// Processed counts the number of events executed so far.
	Processed uint64

	// AfterEvent, when set, runs after every dispatched event callback
	// completes, with the clock still at the event's time. It exists for
	// observers that must see the simulation in a quiescent state between
	// events — invariant checkers above all (see internal/check) — and must
	// not schedule or cancel events. The cost when unset is one nil check
	// per event.
	AfterEvent func()
}

// New returns a simulator whose randomness derives from seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Instrument registers the simulator's event-loop counters on reg: events
// dispatched, free-list hits/misses on schedule, and cancelled events
// reaped. Counting costs one nil-check branch per operation when disabled
// and one atomic add when enabled; it never changes event order or timing,
// so instrumented and uninstrumented runs are byte-identical.
func (s *Simulator) Instrument(reg *telemetry.Registry) {
	s.mDispatched = reg.Counter("sim_events_dispatched_total", "events executed by the event loop")
	s.mFreeHit = reg.Counter("sim_event_freelist_hits_total", "event schedules served from the free list")
	s.mFreeMiss = reg.Counter("sim_event_freelist_misses_total", "event schedules that allocated a new event")
	s.mCancelled = reg.Counter("sim_timer_cancellations_total", "cancelled events reaped before firing")
}

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Rand returns the simulator's RNG. All stochastic components (random loss,
// Poisson arrivals, exploration noise during training) must draw from it so
// runs are reproducible from the scenario seed.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a logic error in the caller.
func (s *Simulator) At(t float64, fn func()) Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %.9f before now %.9f", t, s.now))
	}
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.at, e.seq, e.fn = t, s.seq, fn
		s.mFreeHit.Inc()
	} else {
		e = &event{at: t, seq: s.seq, fn: fn}
		s.mFreeMiss.Inc()
	}
	s.seq++
	heap.Push(&s.events, e)
	return Timer{e: e, gen: e.gen}
}

// After schedules fn to run d seconds from now.
func (s *Simulator) After(d float64, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// release returns a popped event to the free list. Bumping the generation
// first invalidates every outstanding Timer handle to it, so the storage can
// be handed out again immediately (even to events scheduled by the callback
// that is about to run).
func (s *Simulator) release(e *event) {
	e.gen++
	e.fn = nil
	e.cancelled = false
	s.free = append(s.free, e)
}

// Step executes the next pending event. It returns false when the queue is
// empty.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.cancelled {
			s.mCancelled.Inc()
			s.release(e)
			continue
		}
		s.now = e.at
		s.Processed++
		s.mDispatched.Inc()
		fn := e.fn
		s.release(e)
		fn()
		if s.AfterEvent != nil {
			s.AfterEvent()
		}
		return true
	}
	return false
}

// Run executes events until the clock passes until (exclusive) or the queue
// drains. The clock is left at until if the horizon was reached.
func (s *Simulator) Run(until float64) {
	for len(s.events) > 0 {
		next := s.events[0]
		if next.cancelled {
			s.mCancelled.Inc()
			s.release(heap.Pop(&s.events).(*event))
			continue
		}
		if next.at > until {
			break
		}
		heap.Pop(&s.events)
		s.now = next.at
		s.Processed++
		s.mDispatched.Inc()
		fn := next.fn
		s.release(next)
		fn()
		if s.AfterEvent != nil {
			s.AfterEvent()
		}
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of events waiting in the queue, including
// cancelled ones that have not been reaped yet.
func (s *Simulator) Pending() int { return len(s.events) }

// Ticker invokes fn every interval seconds starting at start, until the
// returned stop function is called.
func (s *Simulator) Ticker(start, interval float64, fn func()) (stop func()) {
	stopped := false
	var schedule func(t float64)
	schedule = func(t float64) {
		s.At(t, func() {
			if stopped {
				return
			}
			fn()
			if !stopped {
				schedule(t + interval)
			}
		})
	}
	schedule(start)
	return func() { stopped = true }
}
