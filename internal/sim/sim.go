// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives every other substrate in this repository: network links,
// transport senders, flow generators and the multi-flow training environment
// all schedule callbacks on a single virtual clock. Determinism is guaranteed
// by ordering events on (time, sequence number) and by funnelling all
// randomness through the simulator's seeded RNG.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled.
type Event struct {
	At  float64
	seq uint64
	Fn  func()

	cancelled bool
	index     int
}

// Cancel prevents the event's callback from running. Cancelling an already
// fired event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator is a single-threaded discrete-event simulator with a virtual
// clock measured in seconds.
type Simulator struct {
	now    float64
	seq    uint64
	events eventHeap
	rng    *rand.Rand

	// Processed counts the number of events executed so far.
	Processed uint64
}

// New returns a simulator whose randomness derives from seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Rand returns the simulator's RNG. All stochastic components (random loss,
// Poisson arrivals, exploration noise during training) must draw from it so
// runs are reproducible from the scenario seed.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a logic error in the caller.
func (s *Simulator) At(t float64, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %.9f before now %.9f", t, s.now))
	}
	e := &Event{At: t, seq: s.seq, Fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run d seconds from now.
func (s *Simulator) After(d float64, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step executes the next pending event. It returns false when the queue is
// empty.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*Event)
		if e.cancelled {
			continue
		}
		s.now = e.At
		s.Processed++
		e.Fn()
		return true
	}
	return false
}

// Run executes events until the clock passes until (exclusive) or the queue
// drains. The clock is left at until if the horizon was reached.
func (s *Simulator) Run(until float64) {
	for len(s.events) > 0 {
		next := s.events[0]
		if next.cancelled {
			heap.Pop(&s.events)
			continue
		}
		if next.At > until {
			break
		}
		heap.Pop(&s.events)
		s.now = next.At
		s.Processed++
		next.Fn()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of events waiting in the queue, including
// cancelled ones that have not been reaped yet.
func (s *Simulator) Pending() int { return len(s.events) }

// Ticker invokes fn every interval seconds starting at start, until the
// returned stop function is called.
func (s *Simulator) Ticker(start, interval float64, fn func()) (stop func()) {
	stopped := false
	var schedule func(t float64)
	schedule = func(t float64) {
		s.At(t, func() {
			if stopped {
				return
			}
			fn()
			if !stopped {
				schedule(t + interval)
			}
		})
	}
	schedule(start)
	return func() { stopped = true }
}
