package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(2.0, func() { got = append(got, 2) })
	s.At(1.0, func() { got = append(got, 1) })
	s.At(3.0, func() { got = append(got, 3) })
	s.Run(10)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(1.0, func() { got = append(got, i) })
	}
	s.Run(2)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of scheduling order: %v", got)
		}
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	s := New(1)
	var at float64
	s.After(0.5, func() { at = s.Now() })
	s.Run(1)
	if at != 0.5 {
		t.Fatalf("event ran at %v, want 0.5", at)
	}
	if s.Now() != 1 {
		t.Fatalf("clock %v after Run(1), want 1", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	ran := false
	e := s.At(1, func() { ran = true })
	e.Cancel()
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	s.Run(2)
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Cancelled() {
		t.Fatal("Cancelled() = true after the event was reaped and recycled")
	}
}

func TestStaleTimerHandlesAreNoOps(t *testing.T) {
	s := New(1)
	var zero Timer
	zero.Cancel() // zero Timer is valid and cancels nothing
	if zero.Cancelled() {
		t.Fatal("zero Timer reports cancelled")
	}

	fired := s.At(1, func() {})
	s.Run(2)
	// The fired event's storage is recycled for the next schedule; the stale
	// handle must not be able to cancel the new event.
	ran := false
	s.At(3, func() { ran = true })
	fired.Cancel()
	if fired.Cancelled() {
		t.Fatal("stale handle reports cancelled")
	}
	s.Run(4)
	if !ran {
		t.Fatal("stale Cancel killed a recycled event")
	}
}

func TestEventStorageRecycled(t *testing.T) {
	s := New(1)
	for round := 0; round < 100; round++ {
		for i := 0; i < 10; i++ {
			s.After(0.001*float64(i), func() {})
		}
		s.Run(s.Now() + 1)
	}
	if got := len(s.free); got < 10 {
		t.Fatalf("free list holds %d events after churn; recycling broken", got)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(0.5, func() {})
	})
	s.Run(2)
}

func TestRunHorizonExclusive(t *testing.T) {
	s := New(1)
	ran := false
	s.At(5, func() { ran = true })
	s.Run(4)
	if ran {
		t.Fatal("event beyond horizon ran")
	}
	if s.Now() != 4 {
		t.Fatalf("clock %v, want 4", s.Now())
	}
	s.Run(6)
	if !ran {
		t.Fatal("event within extended horizon did not run")
	}
}

func TestStep(t *testing.T) {
	s := New(1)
	n := 0
	s.At(1, func() { n++ })
	s.At(2, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !s.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	var times []float64
	stop := s.Ticker(0.5, 1.0, func() { times = append(times, s.Now()) })
	s.At(3.0, func() { stop() })
	s.Run(10)
	want := []float64{0.5, 1.5, 2.5}
	if len(times) != len(want) {
		t.Fatalf("ticker fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticker fired at %v, want %v", times, want)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 100 {
			s.After(0.01, recur)
		}
	}
	s.After(0, recur)
	s.Run(10)
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []float64 {
		s := New(seed)
		var vals []float64
		for i := 0; i < 50; i++ {
			s.After(s.Rand().Float64(), func() { vals = append(vals, s.Now()) })
		}
		s.Run(2)
		return vals
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any batch of events with arbitrary times, execution order is
// sorted by time with ties broken by insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(rawTimes []uint16) bool {
		if len(rawTimes) == 0 {
			return true
		}
		s := New(7)
		type rec struct {
			at  float64
			idx int
		}
		var fired []rec
		for i, rt := range rawTimes {
			at := float64(rt) / 100.0
			i := i
			s.At(at, func() { fired = append(fired, rec{at, i}) })
		}
		s.Run(1e9)
		if len(fired) != len(rawTimes) {
			return false
		}
		ok := sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].idx < fired[j].idx
		})
		return ok
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestProcessedCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 10; i++ {
		s.After(float64(i)*0.1, func() {})
	}
	s.Run(5)
	if s.Processed != 10 {
		t.Fatalf("Processed = %d, want 10", s.Processed)
	}
}
