// Package trace generates and plays back time-varying link-capacity traces.
// It substitutes for the Verizon LTE trace (Sprout) the paper replays with
// Mahimahi: a Markov-modulated synthetic cellular trace with millisecond-
// scale rate variation, plus constant / step / satellite profiles.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/netem"
	"repro/internal/sim"
)

// Trace is a piecewise-constant capacity schedule. Points must be sorted by
// time; the rate before the first point equals the first point's rate.
type Trace struct {
	Points []Point
}

// Point sets the capacity (bits/sec) from At (seconds) onward.
type Point struct {
	At      float64
	RateBps float64
}

// RateAt returns the capacity active at time t.
func (tr *Trace) RateAt(t float64) float64 {
	pts := tr.Points
	if len(pts) == 0 {
		return 0
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].At > t })
	if i == 0 {
		return pts[0].RateBps
	}
	return pts[i-1].RateBps
}

// Duration returns the time of the last point.
func (tr *Trace) Duration() float64 {
	if len(tr.Points) == 0 {
		return 0
	}
	return tr.Points[len(tr.Points)-1].At
}

// Mean returns the time-weighted mean rate over the trace duration.
func (tr *Trace) Mean() float64 {
	if len(tr.Points) < 2 {
		if len(tr.Points) == 1 {
			return tr.Points[0].RateBps
		}
		return 0
	}
	var area, span float64
	for i := 0; i < len(tr.Points)-1; i++ {
		dt := tr.Points[i+1].At - tr.Points[i].At
		area += tr.Points[i].RateBps * dt
		span += dt
	}
	if span == 0 {
		return tr.Points[0].RateBps
	}
	return area / span
}

// Apply schedules SetRateBps calls on link for every trace point, looping
// the trace until horizon if loop is true.
func (tr *Trace) Apply(s *sim.Simulator, link *netem.Link, horizon float64, loop bool) {
	if len(tr.Points) == 0 {
		return
	}
	dur := tr.Duration()
	base := 0.0
	for {
		for _, p := range tr.Points {
			t := base + p.At
			if t > horizon {
				return
			}
			rate := p.RateBps
			s.At(t, func() { link.SetRateBps(rate) })
		}
		if !loop || dur <= 0 {
			return
		}
		base += dur
		if base > horizon {
			return
		}
	}
}

// Constant returns a trace holding rateBps for dur seconds.
func Constant(rateBps, dur float64) *Trace {
	return &Trace{Points: []Point{{0, rateBps}, {dur, rateBps}}}
}

// Step returns a trace alternating between lo and hi every period seconds
// for dur seconds, starting at lo.
func Step(lo, hi, period, dur float64) *Trace {
	tr := &Trace{}
	rate := lo
	for t := 0.0; t <= dur; t += period {
		tr.Points = append(tr.Points, Point{t, rate})
		if rate == lo {
			rate = hi
		} else {
			rate = lo
		}
	}
	return tr
}

// CellularConfig tunes the synthetic LTE generator.
type CellularConfig struct {
	MeanBps     float64 // long-run average capacity
	MinBps      float64
	MaxBps      float64
	Interval    float64 // seconds between rate updates (ms-scale)
	Volatility  float64 // per-step log-rate noise stddev
	Reversion   float64 // mean-reversion strength toward MeanBps (0..1)
	OutageProb  float64 // probability per step of a deep fade
	OutageFloor float64 // rate during a fade
}

// DefaultCellular matches the character of the Verizon LTE downlink trace:
// mean around 9 Mbps, swings from near-zero to ~25 Mbps within tens of
// milliseconds.
func DefaultCellular() CellularConfig {
	return CellularConfig{
		MeanBps:     9e6,
		MinBps:      0.2e6,
		MaxBps:      25e6,
		Interval:    0.020,
		Volatility:  0.25,
		Reversion:   0.05,
		OutageProb:  0.005,
		OutageFloor: 0.1e6,
	}
}

// Cellular generates a mean-reverting geometric random walk trace of the
// given duration using rng.
func Cellular(cfg CellularConfig, dur float64, rng *rand.Rand) *Trace {
	tr := &Trace{}
	logMean := math.Log(cfg.MeanBps)
	x := logMean
	for t := 0.0; t <= dur; t += cfg.Interval {
		if rng.Float64() < cfg.OutageProb {
			tr.Points = append(tr.Points, Point{t, cfg.OutageFloor})
			continue
		}
		x += cfg.Reversion*(logMean-x) + cfg.Volatility*rng.NormFloat64()
		rate := math.Exp(x)
		if rate < cfg.MinBps {
			rate = cfg.MinBps
			x = math.Log(rate)
		}
		if rate > cfg.MaxBps {
			rate = cfg.MaxBps
			x = math.Log(rate)
		}
		tr.Points = append(tr.Points, Point{t, rate})
	}
	return tr
}

// maxTraceBins caps how many rate bins ParseMahimahi will materialize. The
// output holds one Point per bin up to the largest timestamp, so without a
// cap a single absurd timestamp (one short line of input) drives an
// allocation proportional to its value. 2^20 bins is over a day of trace at
// the default 100 ms granularity.
const maxTraceBins = 1 << 20

// ParseMahimahi reads a mahimahi-style trace: one integer per line, the
// millisecond timestamp at which a 1500-byte MTU packet can be delivered.
// The result is converted to a piecewise rate at granularity ms bins.
func ParseMahimahi(r io.Reader, binMS int) (*Trace, error) {
	if binMS <= 0 {
		binMS = 100
	}
	sc := bufio.NewScanner(r)
	counts := map[int]int{}
	maxBin := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ms, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("trace: bad line %q: %w", line, err)
		}
		if ms < 0 {
			return nil, fmt.Errorf("trace: negative timestamp %d ms", ms)
		}
		bin := ms / binMS
		if bin >= maxTraceBins {
			return nil, fmt.Errorf("trace: timestamp %d ms needs bin %d, beyond the %d-bin cap at %d ms bins",
				ms, bin, maxTraceBins, binMS)
		}
		counts[bin]++
		if bin > maxBin {
			maxBin = bin
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	tr := &Trace{}
	for b := 0; b <= maxBin; b++ {
		bits := float64(counts[b]) * 1500 * 8
		rate := bits / (float64(binMS) / 1000)
		tr.Points = append(tr.Points, Point{float64(b*binMS) / 1000, rate})
	}
	return tr, nil
}

// FormatMahimahi writes tr as a mahimahi packet-delivery schedule covering
// its duration.
func FormatMahimahi(w io.Writer, tr *Trace) error {
	dur := tr.Duration()
	bw := bufio.NewWriter(w)
	var credit float64
	for ms := 0; float64(ms)/1000 < dur; ms++ {
		t := float64(ms) / 1000
		credit += tr.RateAt(t) / 8 / 1000 // bytes deliverable this ms
		for credit >= 1500 {
			credit -= 1500
			if _, err := fmt.Fprintln(bw, ms); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
