package trace

import (
	"bytes"
	"math"
	"testing"
)

// FuzzTraceParse feeds arbitrary bytes to the mahimahi parser. Accepted
// inputs must yield a physically sensible trace: points strictly ordered in
// time, every rate finite and non-negative, and the whole thing re-playable
// through FormatMahimahi. Rejection is always fine; panics and unbounded
// allocations (the bug TestParseMahimahiRejectsHostileTimestamps pins) are
// not.
func FuzzTraceParse(f *testing.F) {
	f.Add([]byte(""), 100)
	f.Add([]byte("1\n2\n3\n"), 100)
	f.Add([]byte("# header\n10\n20\n\n30\n"), 50)
	f.Add([]byte("100\n100\n100\n205\n"), 100)
	f.Add([]byte("-5\n"), 100)
	f.Add([]byte("9000000000000000000\n"), 100)
	f.Add([]byte("not-a-number\n"), 0)

	f.Fuzz(func(t *testing.T, data []byte, binMS int) {
		tr, err := ParseMahimahi(bytes.NewReader(data), binMS)
		if err != nil {
			return
		}
		last := math.Inf(-1)
		for _, p := range tr.Points {
			if !(p.At > last) {
				t.Fatalf("points not strictly ordered: %v after %v", p.At, last)
			}
			last = p.At
			if p.RateBps < 0 || math.IsNaN(p.RateBps) || math.IsInf(p.RateBps, 0) {
				t.Fatalf("non-physical rate %v at t=%v", p.RateBps, p.At)
			}
		}
		if d := tr.Duration(); d > 0 && d < 10 {
			var buf bytes.Buffer
			if err := FormatMahimahi(&buf, tr); err != nil {
				t.Fatalf("accepted trace failed to format: %v", err)
			}
		}
	})
}
