package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

func TestRateAt(t *testing.T) {
	tr := &Trace{Points: []Point{{0, 10}, {1, 20}, {2, 5}}}
	cases := []struct{ t, want float64 }{
		{-1, 10}, {0, 10}, {0.5, 10}, {1, 20}, {1.5, 20}, {2, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := tr.RateAt(c.t); got != c.want {
			t.Errorf("RateAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := &Trace{}
	if tr.RateAt(1) != 0 || tr.Duration() != 0 || tr.Mean() != 0 {
		t.Fatal("empty trace should be all zeros")
	}
}

func TestConstant(t *testing.T) {
	tr := Constant(5e6, 10)
	if tr.Mean() != 5e6 {
		t.Fatalf("Mean = %v", tr.Mean())
	}
	if tr.Duration() != 10 {
		t.Fatalf("Duration = %v", tr.Duration())
	}
}

func TestStepMean(t *testing.T) {
	tr := Step(10, 30, 1, 10)
	m := tr.Mean()
	if m < 18 || m > 22 {
		t.Fatalf("step trace mean %v, want ≈20", m)
	}
}

func TestMeanTimeWeighted(t *testing.T) {
	// 10 for 3 s then 40 for 1 s → (30+40)/4 = 17.5
	tr := &Trace{Points: []Point{{0, 10}, {3, 40}, {4, 40}}}
	if m := tr.Mean(); math.Abs(m-17.5) > 1e-9 {
		t.Fatalf("Mean = %v, want 17.5", m)
	}
}

func TestApplyDrivesLink(t *testing.T) {
	s := sim.New(1)
	l := netem.NewLink(s, "l", netem.LinkConfig{RateBps: 1e6, Delay: 0})
	tr := &Trace{Points: []Point{{0, 2e6}, {1, 8e6}}}
	tr.Apply(s, l, 10, false)
	s.Run(0.5)
	if l.RateBps() != 2e6 {
		t.Fatalf("rate at 0.5s = %v", l.RateBps())
	}
	s.Run(1.5)
	if l.RateBps() != 8e6 {
		t.Fatalf("rate at 1.5s = %v", l.RateBps())
	}
}

func TestApplyLoops(t *testing.T) {
	s := sim.New(1)
	l := netem.NewLink(s, "l", netem.LinkConfig{RateBps: 1e6, Delay: 0})
	tr := &Trace{Points: []Point{{0, 2e6}, {0.5, 4e6}, {1, 2e6}}}
	tr.Apply(s, l, 5, true)
	s.Run(2.6) // second loop's 0.5 point fired at 2.5
	if l.RateBps() != 4e6 {
		t.Fatalf("rate at 2.6s = %v, want looped 4e6", l.RateBps())
	}
}

func TestCellularStaysInBounds(t *testing.T) {
	cfg := DefaultCellular()
	rng := rand.New(rand.NewSource(3))
	tr := Cellular(cfg, 60, rng)
	if len(tr.Points) < 100 {
		t.Fatalf("cellular trace too sparse: %d points", len(tr.Points))
	}
	for _, p := range tr.Points {
		if p.RateBps < cfg.OutageFloor-1 || p.RateBps > cfg.MaxBps+1 {
			t.Fatalf("rate %v out of [%v, %v]", p.RateBps, cfg.OutageFloor, cfg.MaxBps)
		}
	}
	m := tr.Mean()
	if m < cfg.MeanBps/4 || m > cfg.MaxBps {
		t.Fatalf("cellular mean %v implausible vs configured %v", m, cfg.MeanBps)
	}
}

func TestCellularVariability(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := Cellular(DefaultCellular(), 60, rng)
	// The trace must actually vary at ms scale (that's its purpose).
	changes := 0
	for i := 1; i < len(tr.Points); i++ {
		if tr.Points[i].RateBps != tr.Points[i-1].RateBps {
			changes++
		}
	}
	if float64(changes) < 0.9*float64(len(tr.Points)-1) {
		t.Fatalf("only %d/%d steps changed rate", changes, len(tr.Points)-1)
	}
}

func TestMahimahiRoundTrip(t *testing.T) {
	orig := Constant(12e6, 2) // 1000 packets/s
	var buf bytes.Buffer
	if err := FormatMahimahi(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseMahimahi(&buf, 100)
	if err != nil {
		t.Fatal(err)
	}
	m := parsed.Mean()
	if m < 11e6 || m > 13e6 {
		t.Fatalf("round-trip mean %v, want ≈12e6", m)
	}
}

func TestParseMahimahiRejectsGarbage(t *testing.T) {
	_, err := ParseMahimahi(strings.NewReader("12\nnot-a-number\n"), 100)
	if err == nil {
		t.Fatal("expected parse error")
	}
}

// Regression (found via FuzzTraceParse): the parser emits one Point per bin
// up to the largest timestamp, so a single huge timestamp used to drive an
// allocation proportional to its value, and negative timestamps were
// silently dropped from the output instead of rejected.
func TestParseMahimahiRejectsHostileTimestamps(t *testing.T) {
	if _, err := ParseMahimahi(strings.NewReader("9000000000000000000\n"), 100); err == nil {
		t.Fatal("accepted a timestamp far beyond the bin cap")
	}
	if _, err := ParseMahimahi(strings.NewReader("-5\n"), 100); err == nil {
		t.Fatal("accepted a negative timestamp")
	}
	// The cap must stay clear of real traces: an hour-long trace parses.
	if _, err := ParseMahimahi(strings.NewReader("3600000\n"), 100); err != nil {
		t.Fatalf("rejected an hour-long trace: %v", err)
	}
}

func TestParseMahimahiSkipsComments(t *testing.T) {
	tr, err := ParseMahimahi(strings.NewReader("# header\n10\n20\n\n30\n"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) == 0 {
		t.Fatal("no points parsed")
	}
}
