package serve

import (
	"bufio"
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/core"
)

// nopConn is a net.Conn that swallows writes — the sink for hot-path
// benchmarks that must not measure a real socket.
type nopConn struct{}

func (nopConn) Read([]byte) (int, error)         { return 0, nil }
func (nopConn) Write(p []byte) (int, error)      { return len(p), nil }
func (nopConn) Close() error                     { return nil }
func (nopConn) LocalAddr() net.Addr              { return nil }
func (nopConn) RemoteAddr() net.Addr             { return nil }
func (nopConn) SetDeadline(time.Time) error      { return nil }
func (nopConn) SetReadDeadline(time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(time.Time) error { return nil }

func benchState(dim int) []float64 {
	state := make([]float64, dim)
	for i := range state {
		state[i] = float64(i) * 0.25
	}
	return state
}

// BenchmarkWireEncode measures the append-style request+response encoders
// into reused arenas — the framed stream write path.
func BenchmarkWireEncode(b *testing.B) {
	state := benchState(core.DefaultConfig().StateDim())
	var reqBuf, respBuf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reqBuf = appendFlowRequest(reqBuf[:0], uint64(i), state, 42, true)
		respBuf = appendServedFrame(respBuf[:0], uint64(i), 0.5, FlagFallback, 7)
	}
	if len(reqBuf) == 0 || len(respBuf) == 0 {
		b.Fatal("encoders produced nothing")
	}
}

// BenchmarkWireDecode measures the reusable-buffer decoders — the framed
// stream read path: frame extraction, request decode into a reused state
// slice, flow-trailer read, response decode.
func BenchmarkWireDecode(b *testing.B) {
	state := benchState(core.DefaultConfig().StateDim())
	reqFrame := appendFlowRequest(nil, 99, state, 42, true)
	respFrame := appendServedFrame(nil, 99, 0.5, 0, 7)
	stream := append(append([]byte{}, reqFrame...), respFrame...)

	reader := bytes.NewReader(stream)
	br := bufio.NewReaderSize(reader, 1<<10)
	var rbuf []byte
	dst := make([]float64, 0, len(state))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reader.Reset(stream)
		br.Reset(reader)

		payload, err := readFrameInto(br, &rbuf)
		if err != nil {
			b.Fatal(err)
		}
		_, decoded, err := core.DecodeRequestInto(payload, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := requestFlow(payload, len(decoded)); !ok {
			b.Fatal("flow trailer lost")
		}
		payload, err = readFrameInto(br, &rbuf)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := decodeServedResponse(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWireCodecZeroAlloc pins the post-zero-copy allocation counts of the
// wire codec at exactly zero per op with reused buffers. A regression here
// is a regression in the serving hot path: fail loudly, don't benchmark
// quietly.
func TestWireCodecZeroAlloc(t *testing.T) {
	state := benchState(core.DefaultConfig().StateDim())
	var reqBuf, respBuf []byte
	// Warm the arenas so growth is excluded (that is what steady state means).
	reqBuf = appendFlowRequest(reqBuf[:0], 1, state, 42, true)
	respBuf = appendServedFrame(respBuf[:0], 1, 0.5, 0, 7)

	if n := testing.AllocsPerRun(200, func() {
		reqBuf = appendFlowRequest(reqBuf[:0], 2, state, 42, true)
	}); n != 0 {
		t.Errorf("appendFlowRequest: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		respBuf = appendServedFrame(respBuf[:0], 2, 0.5, FlagFallback, 7)
	}); n != 0 {
		t.Errorf("appendServedFrame: %v allocs/op, want 0", n)
	}

	reqPayload := reqBuf[4:] // strip the length prefix
	dst := make([]float64, 0, len(state))
	if n := testing.AllocsPerRun(200, func() {
		_, decoded, err := core.DecodeRequestInto(reqPayload, dst[:0])
		if err != nil || len(decoded) != len(state) {
			t.Fatal("decode failed")
		}
		if _, ok := requestFlow(reqPayload, len(decoded)); !ok {
			t.Fatal("flow trailer lost")
		}
	}); n != 0 {
		t.Errorf("DecodeRequestInto+requestFlow: %v allocs/op, want 0", n)
	}

	respPayload := respBuf[4:]
	if n := testing.AllocsPerRun(200, func() {
		if _, _, err := decodeServedResponse(respPayload); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("decodeServedResponse: %v allocs/op, want 0", n)
	}

	reader := bytes.NewReader(reqBuf)
	br := bufio.NewReaderSize(reader, 1<<10)
	var rbuf []byte
	if _, err := readFrameInto(br, &rbuf); err != nil { // warm rbuf
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		reader.Reset(reqBuf)
		br.Reset(reader)
		if _, err := readFrameInto(br, &rbuf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("readFrameInto: %v allocs/op, want 0", n)
	}
}

// TestStreamHotPathZeroAlloc pins the whole server-side framed request
// path — pooled request, decode into a reused state buffer, flow-hash
// admission, synchronous evaluation, response append into the connection
// arena, flush — at zero allocations per request in steady state.
func TestStreamHotPathZeroAlloc(t *testing.T) {
	cfg := core.DefaultConfig()
	svc := core.NewService(cfg, constPolicy{0.5})
	svc.BatchWindow = 0 // synchronous path: deterministic, single-goroutine
	srv := NewServer(svc, cfg, Options{Shards: 1, QueueDepth: 8192, Deadline: time.Minute})
	defer srv.Close()

	sc := &streamConn{conn: nopConn{}, seed: 1}
	payload := appendFlowRequest(nil, 7, benchState(cfg.StateDim()), 42, true)[4:]

	// Warm the pools: request objects, batch buffers, arenas, dirty lists.
	for i := 0; i < 1024; i++ {
		srv.handlePayload(payload, sc, nil, nil)
	}
	// Let the sweeper drain so the pool holds every warmed request object.
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.sweeps[0]) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweeper did not drain")
		}
		time.Sleep(time.Millisecond)
	}

	if n := testing.AllocsPerRun(500, func() {
		srv.handlePayload(payload, sc, nil, nil)
	}); n != 0 {
		t.Errorf("stream hot path: %v allocs/op, want 0", n)
	}
}

// BenchmarkStreamServePath is the companion benchmark: ns/op and allocs/op
// for the full server-side request path on the synchronous evaluator.
func BenchmarkStreamServePath(b *testing.B) {
	cfg := core.DefaultConfig()
	svc := core.NewService(cfg, constPolicy{0.5})
	svc.BatchWindow = 0
	srv := NewServer(svc, cfg, Options{Shards: 1, QueueDepth: 1 << 16, Deadline: time.Minute})
	defer srv.Close()

	sc := &streamConn{conn: nopConn{}, seed: 1}
	payload := appendFlowRequest(nil, 7, benchState(cfg.StateDim()), 42, true)[4:]
	for i := 0; i < 1024; i++ {
		srv.handlePayload(payload, sc, nil, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.handlePayload(payload, sc, nil, nil)
	}
}
