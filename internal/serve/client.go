package serve

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

// Client talks to a serve.Server over a stream transport (tcp or unix)
// with length-prefixed framing. It is safe for concurrent use: calls are
// pipelined over one connection and matched to responses by request ID,
// which is how a sender process multiplexes many flows over one socket.
type Client struct {
	conn net.Conn

	// Timeout bounds each Infer call (default core.DefaultInferTimeout;
	// 0 waits forever). Adjust before issuing calls.
	Timeout time.Duration

	wmu sync.Mutex // serializes request frames

	mu      sync.Mutex
	next    uint64
	calls   map[uint64]chan clientResult
	dead    error // sticky read-loop exit cause
	started bool
}

type clientResult struct {
	res Result
	err error
}

// Dial connects to a serve.Server stream endpoint.
func Dial(network, address string) (*Client, error) {
	switch network {
	case "tcp", "tcp4", "tcp6", "unix":
	default:
		return nil, fmt.Errorf("serve: dial: unsupported network %q (stream transports only)", network)
	}
	conn, err := net.Dial(network, address)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s %s: %w", network, address, err)
	}
	return &Client{conn: conn, Timeout: core.DefaultInferTimeout,
		calls: make(map[uint64]chan clientResult)}, nil
}

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 16<<10)
	for {
		payload, err := readFrame(br)
		if err != nil {
			c.mu.Lock()
			c.dead = core.ErrClientClosed
			for id, ch := range c.calls {
				ch <- clientResult{err: core.ErrClientClosed}
				delete(c.calls, id)
			}
			c.mu.Unlock()
			return
		}
		reqID, res, err := decodeServedResponse(payload)
		if err != nil {
			continue // malformed response payload: skip, stream stays framed
		}
		c.mu.Lock()
		if ch, ok := c.calls[reqID]; ok {
			ch <- clientResult{res: res}
			delete(c.calls, reqID)
		}
		c.mu.Unlock()
	}
}

// Infer sends one request and waits for its answer, at most c.Timeout. The
// returned Result says whether the action came from the policy or the
// fallback law, and which policy version stamped it.
func (c *Client) Infer(state []float64) (Result, error) {
	ch := make(chan clientResult, 1)
	c.mu.Lock()
	if c.dead != nil {
		c.mu.Unlock()
		return Result{}, c.dead
	}
	if !c.started {
		c.started = true
		go c.readLoop()
	}
	c.next++
	id := c.next
	c.calls[id] = ch
	c.mu.Unlock()

	frame := appendFrame(make([]byte, 0, 4+core.RequestSize(len(state))), core.EncodeRequest(id, state))
	c.wmu.Lock()
	_, err := c.conn.Write(frame)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		return Result{}, fmt.Errorf("serve: send request: %w", err)
	}

	var timeout <-chan time.Time
	if c.Timeout > 0 {
		t := time.NewTimer(c.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case r := <-ch:
		return r.res, r.err
	case <-timeout:
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		select {
		case r := <-ch: // response raced the timer; the buffer kept it
			return r.res, r.err
		default:
		}
		return Result{}, fmt.Errorf("serve: request %d after %v: %w", id, c.Timeout, core.ErrInferTimeout)
	}
}

// Close tears down the connection; outstanding Infer calls return
// core.ErrClientClosed.
func (c *Client) Close() error {
	return c.conn.Close()
}
