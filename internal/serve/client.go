package serve

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

// Client talks to a serve.Server over a stream transport (tcp or unix)
// with length-prefixed framing. It is safe for concurrent use: calls are
// pipelined over one connection and matched to responses by request ID,
// which is how a sender process multiplexes many flows over one socket.
// Requests issued through InferFlow carry the flow ID on the wire, so the
// server keeps each flow's requests ordered on one shard even when the
// flow's traffic spreads over several connections.
type Client struct {
	conn net.Conn

	// Timeout bounds each Infer call (default core.DefaultInferTimeout;
	// 0 waits forever). Adjust before issuing calls.
	Timeout time.Duration

	wmu  sync.Mutex // serializes request frames
	wbuf []byte     // reusable request frame buffer (guarded by wmu)

	chPool sync.Pool // of chan clientResult, cap 1

	mu      sync.Mutex
	next    uint64
	calls   map[uint64]chan clientResult
	dead    error // sticky read-loop exit cause
	started bool
}

type clientResult struct {
	res Result
	err error
}

// Dial connects to a serve.Server stream endpoint.
func Dial(network, address string) (*Client, error) {
	switch network {
	case "tcp", "tcp4", "tcp6", "unix":
	default:
		return nil, fmt.Errorf("serve: dial: unsupported network %q (stream transports only)", network)
	}
	conn, err := net.Dial(network, address)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s %s: %w", network, address, err)
	}
	return &Client{conn: conn, Timeout: core.DefaultInferTimeout,
		calls: make(map[uint64]chan clientResult)}, nil
}

func (c *Client) getCh() chan clientResult {
	if v := c.chPool.Get(); v != nil {
		return v.(chan clientResult)
	}
	return make(chan clientResult, 1)
}

// putCh recycles a result channel. Callers must guarantee the channel is
// empty and unreachable: the call entry was deleted from c.calls under mu
// (the read loop only sends while holding mu), and any buffered value was
// drained.
func (c *Client) putCh(ch chan clientResult) { c.chPool.Put(ch) }

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 16<<10)
	var rbuf []byte
	for {
		payload, err := readFrameInto(br, &rbuf)
		if err != nil {
			c.mu.Lock()
			c.dead = core.ErrClientClosed
			for id, ch := range c.calls {
				ch <- clientResult{err: core.ErrClientClosed}
				delete(c.calls, id)
			}
			c.mu.Unlock()
			return
		}
		reqID, res, err := decodeServedResponse(payload)
		if err != nil {
			continue // malformed response payload: skip, stream stays framed
		}
		c.mu.Lock()
		if ch, ok := c.calls[reqID]; ok {
			ch <- clientResult{res: res}
			delete(c.calls, reqID)
		}
		c.mu.Unlock()
	}
}

// Infer sends one request and waits for its answer, at most c.Timeout. The
// returned Result says whether the action came from the policy or the
// fallback law, and which policy version stamped it.
func (c *Client) Infer(state []float64) (Result, error) {
	return c.infer(state, 0, false)
}

// InferFlow is Infer with an explicit flow identity: the server hashes the
// flow ID to a shard, so all requests tagged with one flow are answered in
// submission order wherever they arrive.
func (c *Client) InferFlow(flow uint64, state []float64) (Result, error) {
	return c.infer(state, flow, true)
}

func (c *Client) infer(state []float64, flow uint64, tagged bool) (Result, error) {
	ch := c.getCh()
	c.mu.Lock()
	if c.dead != nil {
		c.mu.Unlock()
		c.putCh(ch)
		return Result{}, c.dead
	}
	if !c.started {
		c.started = true
		go c.readLoop()
	}
	c.next++
	id := c.next
	c.calls[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	c.wbuf = appendFlowRequest(c.wbuf[:0], id, state, flow, tagged)
	_, err := c.conn.Write(c.wbuf)
	c.wmu.Unlock()
	if err != nil {
		c.dropCall(id, ch)
		return Result{}, fmt.Errorf("serve: send request: %w", err)
	}

	var timeout <-chan time.Time
	if c.Timeout > 0 {
		t := time.NewTimer(c.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case r := <-ch:
		c.putCh(ch)
		return r.res, r.err
	case <-timeout:
		if r, ok := c.dropCall(id, ch); ok {
			// Response raced the timer; the buffer kept it.
			return r.res, r.err
		}
		return Result{}, fmt.Errorf("serve: request %d after %v: %w", id, c.Timeout, core.ErrInferTimeout)
	}
}

// dropCall unregisters a pending call and reclaims its channel, returning
// any result that landed before the entry was removed.
func (c *Client) dropCall(id uint64, ch chan clientResult) (clientResult, bool) {
	c.mu.Lock()
	delete(c.calls, id)
	c.mu.Unlock()
	select {
	case r := <-ch:
		c.putCh(ch)
		return r, true
	default:
		c.putCh(ch)
		return clientResult{}, false
	}
}

// Close tears down the connection; outstanding Infer calls return
// core.ErrClientClosed.
func (c *Client) Close() error {
	return c.conn.Close()
}
