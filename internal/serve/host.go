package serve

import "repro/internal/core"

// PolicyHost is the one seam through which a policy is swapped into a
// serving fleet and its version observed. Both *Server (the network-facing
// daemon) and *ShardedService (the bare shard set, useful in tests and
// embedded deployments) implement it, so callers that drive promotion —
// the Reloader, the closed-loop pilot, tests — target this interface
// instead of either concrete type.
//
// Contract: SetPolicy installs p on every shard without dropping, erroring,
// or splitting an in-flight request (batches already detached keep the
// policy they were detached with) and returns the new value of a single
// globally monotonic version counter; PolicyVersion reads that counter.
// Implementations must make the swap observable as one atomic event: a
// response stream never sees the version counter move backwards.
type PolicyHost interface {
	// SetPolicy swaps the served policy on every shard and returns the new
	// policy version.
	SetPolicy(p core.Policy) uint32
	// PolicyVersion returns the current policy version counter.
	PolicyVersion() uint32
}

// Compile-time checks: the two concrete hosts implement the seam.
var (
	_ PolicyHost = (*Server)(nil)
	_ PolicyHost = (*ShardedService)(nil)
)
