package serve

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
)

// newQuantTestActor builds a small random actor with the serving shape.
func newQuantTestActor(cfg core.Config, seed int64) *core.MLPPolicy {
	rng := rand.New(rand.NewSource(seed))
	return &core.MLPPolicy{Net: nn.NewMLP(rng, nn.ReLU, nn.Tanh, cfg.StateDim(), 16, 8, 1)}
}

// TestReloadQuantizesByDefault: a Reloader fresh from NewReloader compiles
// JSON snapshots to the fixed-point form — and because compilation is
// deterministic, the served actions are bitwise those of a locally
// quantized copy of the same weights.
func TestReloadQuantizesByDefault(t *testing.T) {
	cfg := core.DefaultConfig()
	fp := newQuantTestActor(cfg, 21)
	dir := t.TempDir()
	path := dir + "/actor.json"
	if err := core.SavePolicy(path, fp.Net); err != nil {
		t.Fatal(err)
	}

	boot, err := core.LoadServingPolicy(path, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	svc := core.NewService(cfg, boot)
	svc.BatchWindow = time.Millisecond
	srv := NewServer(svc, cfg, Options{Deadline: time.Second})
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rl := NewReloader(srv, path, cfg)
	if !rl.Quantize {
		t.Fatal("NewReloader should default Quantize to true")
	}

	// New snapshot: the reload must land its quantized compilation.
	next := newQuantTestActor(cfg, 22)
	if err := core.SavePolicy(path, next.Net); err != nil {
		t.Fatal(err)
	}
	if v, err := rl.Reload(); err != nil || v != 2 {
		t.Fatalf("reload: version %d, err %v", v, err)
	}

	want, err := core.QuantizeMLPPolicy(next, cfg)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 20; i++ {
		s := core.SampleCalibrationState(cfg, rng)
		res, err := client.Infer(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := want.Action(s); res.Action != got {
			t.Fatalf("served action %v, locally quantized %v (state %d)", res.Action, got, i)
		}
	}
}

// TestHotReloadQuantizedBlob: the poller path is format-agnostic — an
// operator can overwrite the JSON snapshot in place with a precompiled
// blob from astraea-quantize and the watcher swaps it in.
func TestHotReloadQuantizedBlob(t *testing.T) {
	cfg := core.DefaultConfig()
	fp := newQuantTestActor(cfg, 31)
	dir := t.TempDir()
	path := dir + "/actor"
	if err := core.SavePolicy(path, fp.Net); err != nil {
		t.Fatal(err)
	}

	boot, err := core.LoadServingPolicy(path, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	svc := core.NewService(cfg, boot)
	svc.BatchWindow = time.Millisecond
	srv := NewServer(svc, cfg, Options{Deadline: time.Second})
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rl := NewReloader(srv, path, cfg)
	rl.Interval = 10 * time.Millisecond
	rl.Watch()
	defer rl.Stop()

	next := newQuantTestActor(cfg, 32)
	qp, err := core.QuantizeMLPPolicy(next, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.SaveQuantizedPolicy(path, qp); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.PolicyVersion() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never picked up the blob")
		}
		time.Sleep(5 * time.Millisecond)
	}

	client, err := Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 20; i++ {
		s := core.SampleCalibrationState(cfg, rng)
		res, err := client.Infer(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := qp.Action(s); res.Action != got {
			t.Fatalf("served action %v, blob policy %v (state %d)", res.Action, got, i)
		}
	}
}
