package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Options configures a Server. The zero value selects production defaults.
type Options struct {
	// MaxInflight is the worker-pool size: the number of requests that may
	// be inside the inference service at once. Default 64.
	MaxInflight int
	// QueueDepth is the admission queue between transports and workers;
	// a request arriving with the queue full is shed with a fallback
	// answer. Default 4×MaxInflight.
	QueueDepth int
	// Deadline is the per-request budget measured from the moment the
	// request is read off the wire. A request the policy has not answered
	// within it receives the fallback action instead. Default 20ms.
	Deadline time.Duration
	// WriteTimeout bounds each response write so a stalled client cannot
	// park a worker. Default 5s.
	WriteTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 64
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.MaxInflight
	}
	if o.Deadline <= 0 {
		o.Deadline = 20 * time.Millisecond
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 5 * time.Second
	}
	return o
}

// request is one admitted inference request. Exactly one reply route is
// set: sc for stream transports, pc/from for datagram transports.
type request struct {
	reqID   uint64
	state   []float64
	arrived time.Time
	sc      *streamConn
	pc      net.PacketConn
	from    net.Addr
}

// streamConn wraps one accepted stream connection; wmu serializes response
// frames (workers and the shedding reader write concurrently).
type streamConn struct {
	conn net.Conn
	wmu  sync.Mutex
	dead bool // write failed; guarded by wmu
}

// Server fans network clients into one shared batching core.Service. It
// never spawns a goroutine per request: transports feed a bounded admission
// queue drained by a fixed worker pool, and overflow is answered
// immediately with the deterministic fallback action. See the package
// comment for the full contract.
type Server struct {
	svc      *core.Service
	fallback *core.ReferencePolicy
	opts     Options

	version atomic.Uint32

	queue    chan request
	workerWG sync.WaitGroup
	ioWG     sync.WaitGroup

	mu        sync.Mutex
	listeners []net.Listener
	pconns    []net.PacketConn
	conns     map[*streamConn]struct{}
	draining  bool
	closed    bool

	shutdownOnce sync.Once
	shutdownErr  error

	// Telemetry (nil-safe when uninstrumented).
	mRequests  *telemetry.Counter
	mResponses *telemetry.Counter
	mFallback  *telemetry.Counter
	mShed      *telemetry.Counter
	mDeadline  *telemetry.Counter
	mReadErr   *telemetry.Counter
	mWriteErr  *telemetry.Counter
	mConns     *telemetry.Counter
	gConns     *telemetry.Gauge
	gVersion   *telemetry.Gauge
	hLatency   *telemetry.Histogram
}

// NewServer builds a server around svc. The fallback law is the reference
// policy for cfg, used through its pure FallbackAction (safe concurrently).
// The policy version starts at 1; every successful SetPolicy increments it.
// Workers start immediately; call Listen to accept traffic.
func NewServer(svc *core.Service, cfg core.Config, opts Options) *Server {
	s := &Server{
		svc:      svc,
		fallback: core.NewReferencePolicy(cfg),
		opts:     opts.withDefaults(),
		conns:    make(map[*streamConn]struct{}),
	}
	s.version.Store(1)
	s.queue = make(chan request, s.opts.QueueDepth)
	for i := 0; i < s.opts.MaxInflight; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

// Instrument registers the serving metrics on reg. Call before Listen.
func (s *Server) Instrument(reg *telemetry.Registry) {
	s.mRequests = reg.Counter("serve_requests_total", "requests read off the wire")
	s.mResponses = reg.Counter("serve_responses_total", "responses written (incl. fallback)")
	s.mFallback = reg.Counter("serve_fallback_total", "responses answered by the fallback law")
	s.mShed = reg.Counter("serve_shed_total", "requests shed at admission (queue full)")
	s.mDeadline = reg.Counter("serve_deadline_miss_total", "requests that outran their deadline")
	s.mReadErr = reg.Counter("serve_read_errors_total", "malformed frames/datagrams and failed reads")
	s.mWriteErr = reg.Counter("serve_write_errors_total", "failed response writes")
	s.mConns = reg.Counter("serve_conns_total", "stream connections accepted")
	s.gConns = reg.Gauge("serve_conns_active", "open stream connections")
	s.gVersion = reg.Gauge("serve_policy_version", "version counter of the served policy")
	s.gVersion.Set(float64(s.version.Load()))
	s.hLatency = reg.Histogram("serve_e2e_latency_seconds", "wire-to-wire request latency",
		telemetry.ExponentialBuckets(1e-5, 4, 12)) // 10 µs .. 42 s
	reg.GaugeFunc("serve_queue_depth", "requests parked in the admission queue", func() float64 {
		return float64(len(s.queue))
	})
	s.svc.Instrument(reg)
}

// SetPolicy atomically swaps the served policy and bumps the version
// counter. In-flight batches keep the policy they were detached with, so no
// request is dropped or errored by a swap.
func (s *Server) SetPolicy(p core.Policy) uint32 {
	s.svc.SetPolicy(p)
	v := s.version.Add(1)
	s.gVersion.Set(float64(v))
	return v
}

// PolicyVersion returns the current policy version counter.
func (s *Server) PolicyVersion() uint32 { return s.version.Load() }

// Listen opens one serving endpoint and starts its I/O loop. Stream
// networks (tcp, tcp4, tcp6, unix) use length-prefixed framing; datagram
// networks (udp, udp4, udp6, unixgram) reuse the bare core codec, so
// existing core.ServiceClient senders keep working against this server.
// Returns the bound address (useful with port/path 0).
func (s *Server) Listen(network, address string) (net.Addr, error) {
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		return nil, errors.New("serve: server is shut down")
	}
	s.mu.Unlock()

	switch network {
	case "tcp", "tcp4", "tcp6", "unix":
		ln, err := net.Listen(network, address)
		if err != nil {
			return nil, fmt.Errorf("serve: listen %s %s: %w", network, address, err)
		}
		s.mu.Lock()
		if s.draining || s.closed { // lost a race with Shutdown
			s.mu.Unlock()
			ln.Close()
			return nil, errors.New("serve: server is shut down")
		}
		s.listeners = append(s.listeners, ln)
		s.mu.Unlock()
		s.ioWG.Add(1)
		go s.acceptLoop(ln)
		return ln.Addr(), nil
	case "udp", "udp4", "udp6", "unixgram":
		pc, err := net.ListenPacket(network, address)
		if err != nil {
			return nil, fmt.Errorf("serve: listen %s %s: %w", network, address, err)
		}
		s.mu.Lock()
		if s.draining || s.closed { // lost a race with Shutdown
			s.mu.Unlock()
			pc.Close()
			return nil, errors.New("serve: server is shut down")
		}
		s.pconns = append(s.pconns, pc)
		s.mu.Unlock()
		s.ioWG.Add(1)
		go s.packetLoop(pc)
		return pc.LocalAddr(), nil
	default:
		return nil, fmt.Errorf("serve: unsupported network %q", network)
	}
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.ioWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue // transient accept error (e.g. EMFILE): keep serving
		}
		sc := &streamConn{conn: conn}
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.mConns.Inc()
		s.gConns.Add(1)
		s.ioWG.Add(1)
		go s.connLoop(sc)
	}
}

// connLoop reads framed requests off one stream connection until the peer
// closes it (or a fatal read error). Malformed payloads and oversized
// frames are counted and skipped; framing keeps the stream aligned.
func (s *Server) connLoop(sc *streamConn) {
	defer s.ioWG.Done()
	defer func() {
		s.mu.Lock()
		if s.draining {
			// Drain in progress: stop reading but leave the connection open
			// and registered — workers may still owe it replies. doShutdown
			// closes it after the worker pool empties.
			s.mu.Unlock()
			return
		}
		delete(s.conns, sc)
		s.mu.Unlock()
		sc.conn.Close()
		s.gConns.Add(-1)
	}()
	br := bufio.NewReaderSize(sc.conn, 32<<10)
	for {
		payload, err := readFrame(br)
		if err != nil {
			var tooBig errFrameTooLarge
			if errors.As(err, &tooBig) {
				s.mReadErr.Inc()
				if discardFrame(br, uint32(tooBig)) == nil {
					continue
				}
				return
			}
			s.mu.Lock()
			stopping := s.draining || s.closed
			s.mu.Unlock()
			if !stopping && !errors.Is(err, io.EOF) {
				s.mReadErr.Inc()
			}
			return
		}
		reqID, state, err := core.DecodeRequest(payload)
		if err != nil {
			s.mReadErr.Inc()
			continue
		}
		s.mRequests.Inc()
		s.admit(request{reqID: reqID, state: state, arrived: time.Now(), sc: sc})
	}
}

// packetLoop reads bare-codec datagrams. During drain it stops reading (the
// socket stays open so queued replies can still go out).
func (s *Server) packetLoop(pc net.PacketConn) {
	defer s.ioWG.Done()
	buf := make([]byte, core.RequestSize(core.MaxStateDim))
	for {
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			s.mu.Lock()
			stop := s.draining || s.closed
			s.mu.Unlock()
			if stop || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		reqID, state, err := core.DecodeRequest(buf[:n])
		if err != nil {
			s.mReadErr.Inc()
			continue
		}
		s.mRequests.Inc()
		s.admit(request{reqID: reqID, state: state, arrived: time.Now(), pc: pc, from: from})
	}
}

// admit enqueues a request for the worker pool, or sheds it with an
// immediate fallback answer when the queue is full. Shedding runs on the
// transport goroutine: the fallback law is pure, so this is cheap and needs
// no coordination.
func (s *Server) admit(r request) {
	select {
	case s.queue <- r:
	default:
		s.mShed.Inc()
		s.mFallback.Inc()
		s.reply(r, s.fallback.FallbackAction(r.state), FlagFallback|FlagShed)
	}
}

// worker drains the admission queue: submit to the batching service, wait
// at most the remaining deadline, and fall back deterministically if the
// policy is late. The late real answer lands in the submission's buffered
// channel and is garbage-collected — never delivered twice.
func (s *Server) worker() {
	defer s.workerWG.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for r := range s.queue {
		rem := s.opts.Deadline - time.Since(r.arrived)
		if rem <= 0 {
			s.mDeadline.Inc()
			s.mFallback.Inc()
			s.reply(r, s.fallback.FallbackAction(r.state), FlagFallback|FlagDeadline)
			continue
		}
		ch := s.svc.Submit(r.state)
		timer.Reset(rem)
		select {
		case a := <-ch:
			if !timer.Stop() {
				<-timer.C
			}
			s.reply(r, a, 0)
		case <-timer.C:
			s.mDeadline.Inc()
			s.mFallback.Inc()
			s.reply(r, s.fallback.FallbackAction(r.state), FlagFallback|FlagDeadline)
		}
	}
}

// reply writes one response over the request's transport and records
// latency. Stream writes are serialized per connection and bounded by
// WriteTimeout; a failed stream write marks the connection dead (the reader
// will notice the close) rather than blocking further workers.
func (s *Server) reply(r request, action float64, flags uint32) {
	payload := encodeServedResponse(r.reqID, action, flags, s.version.Load())
	if r.sc != nil {
		frame := appendFrame(make([]byte, 0, 4+len(payload)), payload)
		r.sc.wmu.Lock()
		if !r.sc.dead {
			r.sc.conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
			if _, err := r.sc.conn.Write(frame); err != nil {
				r.sc.dead = true
				s.mWriteErr.Inc()
				r.sc.conn.Close()
			}
		}
		r.sc.wmu.Unlock()
	} else {
		if _, err := r.pc.WriteTo(payload, r.from); err != nil {
			s.mWriteErr.Inc()
		}
	}
	s.mResponses.Inc()
	s.hLatency.Observe(time.Since(r.arrived).Seconds())
}

// Shutdown drains the server: stop accepting new connections and datagrams,
// let requests in flight (including those still arriving on open stream
// connections) finish, then release the workers and flush the service. It
// returns nil on a clean drain. If ctx expires first, remaining connections
// are force-closed and ctx's error is returned. Shutdown is idempotent;
// concurrent calls share the first caller's outcome.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() { s.shutdownErr = s.doShutdown(ctx) })
	return s.shutdownErr
}

func (s *Server) doShutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	listeners := append([]net.Listener(nil), s.listeners...)
	pconns := append([]net.PacketConn(nil), s.pconns...)
	conns := make([]*streamConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()

	for _, ln := range listeners {
		ln.Close()
	}
	// Poke the transport readers out of their blocking reads; they see
	// draining and stop reading while the sockets stay open, so workers can
	// still flush replies for everything already admitted.
	for _, pc := range pconns {
		_ = pc.SetReadDeadline(time.Now())
	}
	for _, sc := range conns {
		_ = sc.conn.SetReadDeadline(time.Now())
	}

	ioDone := make(chan struct{})
	go func() {
		s.ioWG.Wait()
		close(ioDone)
	}()
	var forced error
	select {
	case <-ioDone:
	case <-ctx.Done():
		forced = ctx.Err()
		s.mu.Lock()
		for sc := range s.conns {
			sc.conn.Close()
		}
		s.mu.Unlock()
		<-ioDone
	}

	// All transport goroutines have exited: nothing can enqueue anymore.
	close(s.queue)
	s.workerWG.Wait()
	s.svc.Close()

	s.mu.Lock()
	s.closed = true
	for sc := range s.conns {
		sc.conn.Close()
		s.gConns.Add(-1)
	}
	s.conns = make(map[*streamConn]struct{})
	for _, pc := range pconns {
		pc.Close()
	}
	s.mu.Unlock()
	return forced
}

// Close shuts down immediately: open connections are cut rather than
// drained. Requests already admitted are still answered best-effort.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)
	return nil
}
