package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Options configures a Server. The zero value selects production defaults.
type Options struct {
	// Shards is how many policy shards to run: per-shard core.Service
	// instances, each with its own evaluator goroutine, private batch
	// queue, and cloned policy. Admission hashes the request's flow ID
	// (per-connection identity when untagged) to a shard, so one flow's
	// requests stay ordered on one evaluator. Default GOMAXPROCS, capped
	// at 16.
	Shards int
	// QueueDepth bounds the in-flight requests per shard; a request
	// arriving with its shard full is shed with a fallback answer.
	// Default 4×MaxInflight for compatibility, else 1024.
	QueueDepth int
	// MaxInflight is retained for compatibility with the pre-sharding
	// worker pool; it only feeds the QueueDepth default now.
	MaxInflight int
	// Deadline is the per-request budget measured from the moment the
	// request is read off the wire. A request the policy has not answered
	// within it receives the fallback action instead. Default 20ms.
	Deadline time.Duration
	// WriteTimeout bounds each response write so a stalled client cannot
	// park an evaluator for long. Default 5s.
	WriteTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards > 16 {
			o.Shards = 16
		}
	}
	if o.QueueDepth <= 0 {
		if o.MaxInflight > 0 {
			o.QueueDepth = 4 * o.MaxInflight
		} else {
			o.QueueDepth = 1024
		}
	}
	if o.Deadline <= 0 {
		o.Deadline = 20 * time.Millisecond
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 5 * time.Second
	}
	return o
}

// servedReq is one admitted inference request. Requests are pooled: the
// state buffer and the struct itself are recycled, so the steady-state
// framed request path performs no per-request allocation. Exactly one reply
// route is set: sc for stream transports, pc/from for datagram transports.
//
// Lifecycle: after admission the request is referenced by two parties — the
// shard evaluator (via core.Service.SubmitTo) and the shard's deadline
// sweeper. Whoever wins the answered CAS writes the response; both drop
// their reference through release, and the loser's drop recycles the
// request. A shed request never enters either and is recycled immediately.
type servedReq struct {
	srv      *Server
	reqID    uint64
	state    []float64
	arrived  time.Time
	deadline time.Time
	shard    int
	sc       *streamConn
	pc       net.PacketConn
	from     net.Addr
	answered atomic.Bool
	refs     atomic.Int32
}

// Complete implements core.Completion: the shard evaluator delivers the
// policy's action here. A request the sweeper already answered (deadline
// miss) is left alone — never delivered twice.
func (r *servedReq) Complete(action float64) {
	if r.answered.CompareAndSwap(false, true) {
		r.srv.reply(r, action, 0, true)
	}
	r.release()
}

func (r *servedReq) release() {
	if r.refs.Add(-1) == 0 {
		r.srv.putReq(r)
	}
}

// streamConn wraps one accepted stream connection. wmu serializes the write
// arena: evaluators append coalesced response frames to wbuf and flush once
// per batch (or at the size threshold), so a batch of responses costs one
// syscall per touched connection, not one per response. seed is the
// connection's flow identity for untagged requests.
type streamConn struct {
	conn net.Conn
	seed uint64

	wmu   sync.Mutex
	wbuf  []byte // pending response frames (the per-conn write arena)
	dirty bool   // wbuf has coalesced frames awaiting a batch flush
	dead  bool   // write failed; guarded by wmu
}

// flushThreshold flushes a connection's write arena early when coalescing
// has accumulated this many bytes.
const flushThreshold = 16 << 10

// sweepGranularity is the deadline sweeper's re-check period while parked
// on an unanswered request: it bounds how long an answered request can
// occupy a shard's in-flight slot, and the worst-case lateness of a
// deadline fallback.
const sweepGranularity = time.Millisecond

// dirtySet tracks the connections a shard's evaluator has coalesced
// responses into since its last batch flush. Two slices ping-pong so the
// steady state allocates nothing.
type dirtySet struct {
	mu    sync.Mutex
	conns []*streamConn
	spare []*streamConn
}

// connSeq seeds per-connection flow identities.
var connSeq atomic.Uint64

// Server fans network clients into a ShardedService: N per-shard batching
// core.Service instances with flow-ID-hashed admission. It never spawns a
// goroutine per request: transport readers admit directly into the owning
// shard (bounded by QueueDepth, overflow shed with an immediate fallback
// answer), the shard evaluator answers through the pooled request's
// Complete, and a per-shard sweeper answers anything the policy has not
// delivered by its deadline. See the package comment for the full contract.
type Server struct {
	sharded  *ShardedService
	fallback *core.ReferencePolicy
	opts     Options

	sweeps  []chan *servedReq
	dirty   []dirtySet
	sweepWG sync.WaitGroup
	ioWG    sync.WaitGroup

	reqPool sync.Pool

	mu        sync.Mutex
	listeners []net.Listener
	pconns    []net.PacketConn
	conns     map[*streamConn]struct{}
	draining  bool
	closed    bool

	shutdownOnce sync.Once
	shutdownErr  error

	// Telemetry (nil-safe when uninstrumented).
	mRequests  *telemetry.Counter
	mResponses *telemetry.Counter
	mFallback  *telemetry.Counter
	mShed      *telemetry.Counter
	mDeadline  *telemetry.Counter
	mReadErr   *telemetry.Counter
	mWriteErr  *telemetry.Counter
	mConns     *telemetry.Counter
	gConns     *telemetry.Gauge
	gVersion   *telemetry.Gauge
	hLatency   *telemetry.Histogram
}

// NewServer builds a server around svc, which becomes shard 0 of a
// ShardedService of opts.Shards shards (the remaining shards clone svc's
// policy and batching parameters). The fallback law is the reference policy
// for cfg, used through its pure FallbackAction (safe concurrently). The
// policy version starts at 1; every successful SetPolicy increments it.
// Shard evaluators and sweepers start immediately; call Listen to accept
// traffic.
func NewServer(svc *core.Service, cfg core.Config, opts Options) *Server {
	s := &Server{
		fallback: core.NewReferencePolicy(cfg),
		opts:     opts.withDefaults(),
		conns:    make(map[*streamConn]struct{}),
	}
	s.sharded = NewShardedService(svc, cfg, s.opts.Shards)
	n := s.sharded.NumShards()
	s.sweeps = make([]chan *servedReq, n)
	s.dirty = make([]dirtySet, n)
	for i := 0; i < n; i++ {
		s.sweeps[i] = make(chan *servedReq, s.opts.QueueDepth)
		idx := i
		s.sharded.Shard(i).AfterBatch = func() { s.flushShard(idx) }
		s.sweepWG.Add(1)
		go s.sweeper(idx)
	}
	return s
}

// Sharded exposes the underlying shard set (shard count, per-shard
// services) for tests and operational tooling.
func (s *Server) Sharded() *ShardedService { return s.sharded }

// Stats sums request and batch counts across all shards.
func (s *Server) Stats() (requests, batches int64) { return s.sharded.Stats() }

// Instrument registers the serving metrics on reg. Call before Listen.
func (s *Server) Instrument(reg *telemetry.Registry) {
	s.mRequests = reg.Counter("serve_requests_total", "requests read off the wire")
	s.mResponses = reg.Counter("serve_responses_total", "responses written (incl. fallback)")
	s.mFallback = reg.Counter("serve_fallback_total", "responses answered by the fallback law")
	s.mShed = reg.Counter("serve_shed_total", "requests shed at admission (shard queue full)")
	s.mDeadline = reg.Counter("serve_deadline_miss_total", "requests that outran their deadline")
	s.mReadErr = reg.Counter("serve_read_errors_total", "malformed frames/datagrams and failed reads")
	s.mWriteErr = reg.Counter("serve_write_errors_total", "failed response writes")
	s.mConns = reg.Counter("serve_conns_total", "stream connections accepted")
	s.gConns = reg.Gauge("serve_conns_active", "open stream connections")
	s.gVersion = reg.Gauge("serve_policy_version", "version counter of the served policy")
	s.gVersion.Set(float64(s.sharded.PolicyVersion()))
	reg.Gauge("serve_shards", "policy shards serving").Set(float64(s.sharded.NumShards()))
	s.hLatency = reg.Histogram("serve_e2e_latency_seconds", "wire-to-wire request latency",
		telemetry.ExponentialBuckets(1e-5, 4, 12)) // 10 µs .. 42 s
	reg.GaugeFunc("serve_queue_depth", "requests in flight across shard queues", func() float64 {
		total := 0
		for _, c := range s.sweeps {
			total += len(c)
		}
		return float64(total)
	})
	s.sharded.Instrument(reg)
}

// SetPolicy swaps the served policy on every shard (cloned per shard so no
// two evaluators share scratch state); the underlying ShardedService bumps
// the single global version counter — one atomic event for the whole fleet.
// In-flight batches keep the policy they were detached with, so no request
// is dropped or errored by a swap; responses are stamped with the counter
// value at write time, so the version a connection observes is monotonic.
func (s *Server) SetPolicy(p core.Policy) uint32 {
	v := s.sharded.SetPolicy(p)
	s.gVersion.Set(float64(v))
	return v
}

// PolicyVersion returns the current policy version counter.
func (s *Server) PolicyVersion() uint32 { return s.sharded.PolicyVersion() }

// Listen opens one serving endpoint and starts its I/O loop. Stream
// networks (tcp, tcp4, tcp6, unix) use length-prefixed framing; datagram
// networks (udp, udp4, udp6, unixgram) reuse the bare core codec, so
// existing core.ServiceClient senders keep working against this server.
// Returns the bound address (useful with port/path 0).
func (s *Server) Listen(network, address string) (net.Addr, error) {
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		return nil, errors.New("serve: server is shut down")
	}
	s.mu.Unlock()

	switch network {
	case "tcp", "tcp4", "tcp6", "unix":
		ln, err := net.Listen(network, address)
		if err != nil {
			return nil, fmt.Errorf("serve: listen %s %s: %w", network, address, err)
		}
		s.mu.Lock()
		if s.draining || s.closed { // lost a race with Shutdown
			s.mu.Unlock()
			ln.Close()
			return nil, errors.New("serve: server is shut down")
		}
		s.listeners = append(s.listeners, ln)
		s.mu.Unlock()
		s.ioWG.Add(1)
		go s.acceptLoop(ln)
		return ln.Addr(), nil
	case "udp", "udp4", "udp6", "unixgram":
		pc, err := net.ListenPacket(network, address)
		if err != nil {
			return nil, fmt.Errorf("serve: listen %s %s: %w", network, address, err)
		}
		s.mu.Lock()
		if s.draining || s.closed { // lost a race with Shutdown
			s.mu.Unlock()
			pc.Close()
			return nil, errors.New("serve: server is shut down")
		}
		s.pconns = append(s.pconns, pc)
		s.mu.Unlock()
		s.ioWG.Add(1)
		go s.packetLoop(pc)
		return pc.LocalAddr(), nil
	default:
		return nil, fmt.Errorf("serve: unsupported network %q", network)
	}
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.ioWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue // transient accept error (e.g. EMFILE): keep serving
		}
		sc := &streamConn{conn: conn, seed: connSeq.Add(1)}
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.mConns.Inc()
		s.gConns.Add(1)
		s.ioWG.Add(1)
		go s.connLoop(sc)
	}
}

// connLoop reads framed requests off one stream connection until the peer
// closes it (or a fatal read error). Malformed payloads and oversized
// frames are counted and skipped; framing keeps the stream aligned. The
// frame payload is read into a per-connection reusable buffer, so the
// steady-state read path allocates nothing.
func (s *Server) connLoop(sc *streamConn) {
	defer s.ioWG.Done()
	defer func() {
		s.mu.Lock()
		if s.draining {
			// Drain in progress: stop reading but leave the connection open
			// and registered — shards may still owe it replies. doShutdown
			// closes it after the shard queues empty.
			s.mu.Unlock()
			return
		}
		delete(s.conns, sc)
		s.mu.Unlock()
		sc.conn.Close()
		s.gConns.Add(-1)
	}()
	br := bufio.NewReaderSize(sc.conn, 64<<10)
	var rbuf []byte
	for {
		payload, err := readFrameInto(br, &rbuf)
		if err != nil {
			var tooBig errFrameTooLarge
			if errors.As(err, &tooBig) {
				s.mReadErr.Inc()
				if discardFrame(br, uint32(tooBig)) == nil {
					continue
				}
				return
			}
			s.mu.Lock()
			stopping := s.draining || s.closed
			s.mu.Unlock()
			if !stopping && !errors.Is(err, io.EOF) {
				s.mReadErr.Inc()
			}
			return
		}
		s.handlePayload(payload, sc, nil, nil)
	}
}

// packetLoop reads bare-codec datagrams. During drain it stops reading (the
// socket stays open so queued replies can still go out).
func (s *Server) packetLoop(pc net.PacketConn) {
	defer s.ioWG.Done()
	buf := make([]byte, core.RequestSize(core.MaxStateDim)+flowTrailerSize)
	for {
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			s.mu.Lock()
			stop := s.draining || s.closed
			s.mu.Unlock()
			if stop || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.handlePayload(buf[:n], nil, pc, from)
	}
}

// getReq fetches a pooled request object.
func (s *Server) getReq() *servedReq {
	if v := s.reqPool.Get(); v != nil {
		return v.(*servedReq)
	}
	return &servedReq{srv: s, state: make([]float64, 0, 64)}
}

// putReq recycles a request object; the state buffer keeps its capacity.
func (s *Server) putReq(r *servedReq) {
	r.sc, r.pc, r.from = nil, nil, nil
	s.reqPool.Put(r)
}

// handlePayload decodes one request payload (framed stream or bare
// datagram) into a pooled request and admits it to its shard. The flow key
// is the request's flow-ID trailer when present, else the connection's seed
// (stream) or the sender address (datagram) — so untagged senders get
// per-connection ordering and tagged flows get cross-connection ordering.
// A request whose shard queue is full is shed with an immediate fallback
// answer on the transport goroutine: the fallback law is pure, so this is
// cheap and needs no coordination.
func (s *Server) handlePayload(payload []byte, sc *streamConn, pc net.PacketConn, from net.Addr) {
	r := s.getReq()
	reqID, state, err := core.DecodeRequestInto(payload, r.state[:0])
	if err != nil {
		s.mReadErr.Inc()
		s.putReq(r)
		return
	}
	s.mRequests.Inc()
	r.reqID = reqID
	r.state = state
	r.sc, r.pc, r.from = sc, pc, from
	r.arrived = time.Now()
	r.deadline = r.arrived.Add(s.opts.Deadline)

	var key uint64
	if flow, tagged := requestFlow(payload, len(state)); tagged {
		key = flow
	} else if sc != nil {
		key = sc.seed
	} else {
		key = addrKey(from)
	}
	idx := s.sharded.ShardIndex(key)
	r.shard = idx
	r.answered.Store(false)
	r.refs.Store(2)
	select {
	case s.sweeps[idx] <- r:
	default:
		s.mShed.Inc()
		s.mFallback.Inc()
		s.reply(r, s.fallback.FallbackAction(r.state), FlagFallback|FlagShed, false)
		s.putReq(r)
		return
	}
	s.sharded.Shard(idx).SubmitTo(r.state, r)
}

// addrKey hashes a datagram sender address (FNV-1a over the concrete
// address bytes, avoiding the String allocation for the common types).
func addrKey(a net.Addr) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	switch v := a.(type) {
	case *net.UDPAddr:
		for _, b := range v.IP {
			h = (h ^ uint64(b)) * prime
		}
		h = (h ^ uint64(v.Port)) * prime
	case *net.UnixAddr:
		for i := 0; i < len(v.Name); i++ {
			h = (h ^ uint64(v.Name[i])) * prime
		}
	default:
		str := a.String()
		for i := 0; i < len(str); i++ {
			h = (h ^ uint64(str[i])) * prime
		}
	}
	return h
}

// sweeper is one shard's deadline watchdog: it walks admitted requests in
// arrival (hence deadline) order and answers any the evaluator has not
// delivered by its deadline with the fallback action. It re-checks at
// sweepGranularity while parked, so an answered request frees its in-flight
// slot promptly instead of holding it until the deadline.
func (s *Server) sweeper(idx int) {
	defer s.sweepWG.Done()
	for r := range s.sweeps[idx] {
		for !r.answered.Load() {
			d := time.Until(r.deadline)
			if d <= 0 {
				if r.answered.CompareAndSwap(false, true) {
					s.mDeadline.Inc()
					s.mFallback.Inc()
					s.reply(r, s.fallback.FallbackAction(r.state), FlagFallback|FlagDeadline, false)
				}
				break
			}
			if d > sweepGranularity {
				d = sweepGranularity
			}
			time.Sleep(d)
		}
		r.release()
	}
}

// reply writes one response over the request's transport and records
// latency. Stream responses append to the connection's write arena; with
// coalesce set (the evaluator path) the arena is flushed once per batch by
// the shard's AfterBatch hook, otherwise (fallback/shed answers) it is
// flushed immediately — the whole arena, so per-connection response order
// is preserved.
func (s *Server) reply(r *servedReq, action float64, flags uint32, coalesce bool) {
	if r.sc != nil {
		s.writeStream(r.sc, r.shard, r.reqID, action, flags, coalesce)
	} else {
		var buf [servedResponseSize]byte
		payload := appendServedResponse(buf[:0], r.reqID, action, flags, s.sharded.PolicyVersion())
		if _, err := r.pc.WriteTo(payload, r.from); err != nil {
			s.mWriteErr.Inc()
		}
	}
	s.mResponses.Inc()
	s.hLatency.Observe(time.Since(r.arrived).Seconds())
}

// writeStream appends one framed response to the connection's write arena.
// The version stamp is read under wmu at append time, so the sequence of
// versions on one connection is monotonic. The dirty flag is only ever
// set by a goroutine that will follow with an arena flush (the evaluator's
// AfterBatch, or the inline flush here), so coalesced bytes can never be
// stranded.
func (s *Server) writeStream(sc *streamConn, shardIdx int, reqID uint64, action float64, flags uint32, coalesce bool) {
	sc.wmu.Lock()
	if sc.dead {
		sc.wmu.Unlock()
		return
	}
	sc.wbuf = appendServedFrame(sc.wbuf, reqID, action, flags, s.sharded.PolicyVersion())
	if !coalesce || len(sc.wbuf) >= flushThreshold {
		s.flushConnLocked(sc)
		sc.wmu.Unlock()
		return
	}
	alreadyDirty := sc.dirty
	sc.dirty = true
	sc.wmu.Unlock()
	if !alreadyDirty {
		d := &s.dirty[shardIdx]
		d.mu.Lock()
		d.conns = append(d.conns, sc)
		d.mu.Unlock()
	}
}

// flushConnLocked writes and resets the connection's arena; callers hold
// wmu. A failed or timed-out write marks the connection dead (the reader
// will notice the close) rather than blocking shards indefinitely.
func (s *Server) flushConnLocked(sc *streamConn) {
	if len(sc.wbuf) == 0 || sc.dead {
		return
	}
	sc.conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	_, err := sc.conn.Write(sc.wbuf)
	sc.wbuf = sc.wbuf[:0]
	if err != nil {
		sc.dead = true
		s.mWriteErr.Inc()
		sc.conn.Close()
	}
}

// flushShard is shard idx's AfterBatch hook: flush every connection the
// evaluator coalesced responses into during the batch. One syscall per
// touched connection per batch is what turns the per-response write of the
// old design into line-rate framing.
func (s *Server) flushShard(idx int) {
	d := &s.dirty[idx]
	d.mu.Lock()
	conns := d.conns
	d.conns = d.spare[:0]
	d.mu.Unlock()
	for _, sc := range conns {
		sc.wmu.Lock()
		sc.dirty = false
		s.flushConnLocked(sc)
		sc.wmu.Unlock()
	}
	clear(conns)
	d.mu.Lock()
	d.spare = conns[:0]
	d.mu.Unlock()
}

// Shutdown drains the server: stop accepting new connections and datagrams,
// let requests in flight (including those still arriving on open stream
// connections) finish, then close the shard services and release the
// sweepers. It returns nil on a clean drain. If ctx expires first,
// remaining connections are force-closed and ctx's error is returned.
// Shutdown is idempotent; concurrent calls share the first caller's
// outcome.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() { s.shutdownErr = s.doShutdown(ctx) })
	return s.shutdownErr
}

func (s *Server) doShutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	listeners := append([]net.Listener(nil), s.listeners...)
	pconns := append([]net.PacketConn(nil), s.pconns...)
	conns := make([]*streamConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()

	for _, ln := range listeners {
		ln.Close()
	}
	// Poke the transport readers out of their blocking reads; they see
	// draining and stop reading while the sockets stay open, so shards can
	// still flush replies for everything already admitted.
	for _, pc := range pconns {
		_ = pc.SetReadDeadline(time.Now())
	}
	for _, sc := range conns {
		_ = sc.conn.SetReadDeadline(time.Now())
	}

	ioDone := make(chan struct{})
	go func() {
		s.ioWG.Wait()
		close(ioDone)
	}()
	var forced error
	select {
	case <-ioDone:
	case <-ctx.Done():
		forced = ctx.Err()
		s.mu.Lock()
		for sc := range s.conns {
			sc.conn.Close()
		}
		s.mu.Unlock()
		<-ioDone
	}

	// All transport goroutines have exited: nothing can admit anymore.
	// Closing the shard services completes every submitted request (the
	// evaluators drain), after which the sweepers see only answered
	// entries and exit quickly once their feeds close.
	s.sharded.Close()
	for _, c := range s.sweeps {
		close(c)
	}
	s.sweepWG.Wait()

	s.mu.Lock()
	s.closed = true
	for sc := range s.conns {
		sc.conn.Close()
		s.gConns.Add(-1)
	}
	s.conns = make(map[*streamConn]struct{})
	for _, pc := range pconns {
		pc.Close()
	}
	s.mu.Unlock()
	return forced
}

// Close shuts down immediately: open connections are cut rather than
// drained. Requests already admitted are still answered best-effort.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)
	return nil
}
