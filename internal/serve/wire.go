// Package serve is the production serving layer between a trained Astraea
// policy and sender traffic: a network-facing inference server that fans
// many client connections into the shared batching core.Service, with
// per-request deadlines, admission control with explicit shedding, a
// deterministic in-band fallback action, hot policy reload, and graceful
// drain. It is the deployment rendering of the shared inference service of
// §4 — the architectural property Fig. 16b measures — hardened the way
// deployment-oriented RL-CC systems require: a sender always receives a
// safe answer within a bounded time, whatever the model is doing.
package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/core"
)

// Stream transports (TCP, unix) carry the core wire codec inside
// length-prefixed frames:
//
//	frame:    [len uint32][payload]
//	request:  payload = core request codec  (reqID, state)
//	          + optional trailer [flowID uint64]
//	response: payload = core response codec (reqID, action)
//	          + trailer [flags uint32][version uint32]
//
// The response trailer is how the fallback answer travels in-band: a sender
// that understands it learns whether the action came from the live policy
// or the fallback law (and which policy version answered); a sender that
// only speaks the base codec still gets a usable action, because
// core.DecodeResponse ignores trailing bytes. Datagram transports reuse the
// same payloads without the frame prefix.
//
// The request trailer carries the flow identity for sharded admission: all
// requests tagged with one flow ID hash to one shard and are answered in
// order, whichever connection they arrive on. An untagged request inherits
// a per-connection flow identity, so plain senders (one flow per socket)
// keep strict ordering too. core.DecodeRequest ignores trailing bytes, so
// tagged requests remain readable by base-codec servers.

// Response flag bits.
const (
	// FlagFallback marks an action computed by the deterministic fallback
	// law rather than the served policy.
	FlagFallback uint32 = 1 << iota
	// FlagShed marks a request rejected at admission (queue full).
	FlagShed
	// FlagDeadline marks a request whose deadline expired before the
	// policy answered.
	FlagDeadline
)

// Result is one served answer as seen by a serve.Client.
type Result struct {
	Action  float64
	Flags   uint32
	Version uint32 // policy version that stamped the response
}

// Fallback reports whether the action came from the fallback law.
func (r Result) Fallback() bool { return r.Flags&FlagFallback != 0 }

// Shed reports whether the request was rejected at admission.
func (r Result) Shed() bool { return r.Flags&FlagShed != 0 }

// DeadlineMissed reports whether the request ran out of budget before the
// policy answered.
func (r Result) DeadlineMissed() bool { return r.Flags&FlagDeadline != 0 }

// servedResponseSize is the response payload size: base codec + trailer.
const servedResponseSize = core.ResponseSize + 8

// flowTrailerSize is the optional request trailer carrying the flow ID.
const flowTrailerSize = 8

// maxFramePayload bounds what either side will read in one frame: the
// largest request the core codec admits plus the flow trailer (responses
// are far smaller).
const maxFramePayload = 12 + 8*core.MaxStateDim + flowTrailerSize

// encodeServedResponse builds a response payload with the serve trailer.
func encodeServedResponse(reqID uint64, action float64, flags, version uint32) []byte {
	return appendServedResponse(make([]byte, 0, servedResponseSize), reqID, action, flags, version)
}

// appendServedResponse appends a response payload (base codec + serve
// trailer) to dst — the allocation-free form for reusable write arenas.
func appendServedResponse(dst []byte, reqID uint64, action float64, flags, version uint32) []byte {
	dst = core.AppendResponse(dst, reqID, action)
	dst = binary.LittleEndian.AppendUint32(dst, flags)
	return binary.LittleEndian.AppendUint32(dst, version)
}

// appendServedFrame appends one framed response to dst: length prefix, base
// codec, trailer — a single append chain into a per-connection arena.
func appendServedFrame(dst []byte, reqID uint64, action float64, flags, version uint32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, servedResponseSize)
	return appendServedResponse(dst, reqID, action, flags, version)
}

// requestFlow extracts the flow-ID trailer from a request payload whose
// core-codec portion decoded to dim state features. ok is false when the
// request carries no trailer.
func requestFlow(payload []byte, dim int) (flow uint64, ok bool) {
	base := core.RequestSize(dim)
	if len(payload) < base+flowTrailerSize {
		return 0, false
	}
	return binary.LittleEndian.Uint64(payload[base:]), true
}

// appendFlowRequest appends a framed, flow-tagged request to dst: length
// prefix, core request codec, flow trailer.
func appendFlowRequest(dst []byte, reqID uint64, state []float64, flow uint64, tagged bool) []byte {
	n := core.RequestSize(len(state))
	if tagged {
		n += flowTrailerSize
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = core.AppendRequest(dst, reqID, state)
	if tagged {
		dst = binary.LittleEndian.AppendUint64(dst, flow)
	}
	return dst
}

// decodeServedResponse parses a response payload. The trailer is optional
// (a plain core responder yields zero flags and version 0).
func decodeServedResponse(buf []byte) (reqID uint64, res Result, err error) {
	reqID, action, err := core.DecodeResponse(buf)
	if err != nil {
		return 0, Result{}, err
	}
	res = Result{Action: action}
	if len(buf) >= servedResponseSize {
		res.Flags = binary.LittleEndian.Uint32(buf[core.ResponseSize:])
		res.Version = binary.LittleEndian.Uint32(buf[core.ResponseSize+4:])
	}
	return reqID, res, nil
}

// appendFrame appends the length prefix and payload to dst, returning the
// extended slice: one buffer, one Write, so concurrent writers interleave
// whole frames, never bytes.
func appendFrame(dst, payload []byte) []byte {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// writeFrame writes one framed payload.
func writeFrame(w io.Writer, payload []byte) error {
	_, err := w.Write(appendFrame(make([]byte, 0, 4+len(payload)), payload))
	return err
}

// readFrame reads one frame payload. A frame longer than maxFramePayload is
// an error (the stream is still positioned at a frame boundary afterwards
// only if the caller discards the oversized body; see discardFrame).
func readFrame(r *bufio.Reader) ([]byte, error) {
	var scratch []byte
	return readFrameInto(r, &scratch)
}

// readFrameInto is readFrame with a caller-owned reusable buffer: the
// payload is read into *buf (grown as needed and written back), so a
// steady-state connection loop performs zero allocations per frame. The
// returned slice aliases *buf and is valid until the next call.
func readFrameInto(r *bufio.Reader, buf *[]byte) ([]byte, error) {
	// The header is read through *buf too: a stack array passed to
	// io.ReadFull escapes and costs an allocation per frame.
	if cap(*buf) < 4 {
		*buf = make([]byte, 4, 512)
	}
	hdr := (*buf)[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > maxFramePayload {
		return nil, errFrameTooLarge(n)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	payload := (*buf)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

type errFrameTooLarge uint32

func (e errFrameTooLarge) Error() string {
	return fmt.Sprintf("serve: frame of %d bytes exceeds limit %d", uint32(e), maxFramePayload)
}

// discardFrame skips n payload bytes so the stream stays frame-aligned
// after an oversized frame was announced.
func discardFrame(r *bufio.Reader, n uint32) error {
	_, err := io.CopyN(io.Discard, r, int64(n))
	return err
}
