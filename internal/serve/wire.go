// Package serve is the production serving layer between a trained Astraea
// policy and sender traffic: a network-facing inference server that fans
// many client connections into the shared batching core.Service, with
// per-request deadlines, admission control with explicit shedding, a
// deterministic in-band fallback action, hot policy reload, and graceful
// drain. It is the deployment rendering of the shared inference service of
// §4 — the architectural property Fig. 16b measures — hardened the way
// deployment-oriented RL-CC systems require: a sender always receives a
// safe answer within a bounded time, whatever the model is doing.
package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/core"
)

// Stream transports (TCP, unix) carry the core wire codec inside
// length-prefixed frames:
//
//	frame:    [len uint32][payload]
//	request:  payload = core request codec  (reqID, state)
//	response: payload = core response codec (reqID, action)
//	          + trailer [flags uint32][version uint32]
//
// The trailer is how the fallback answer travels in-band: a sender that
// understands it learns whether the action came from the live policy or the
// fallback law (and which policy version answered); a sender that only
// speaks the base codec still gets a usable action, because
// core.DecodeResponse ignores trailing bytes. Datagram transports reuse the
// same payloads without the frame prefix.

// Response flag bits.
const (
	// FlagFallback marks an action computed by the deterministic fallback
	// law rather than the served policy.
	FlagFallback uint32 = 1 << iota
	// FlagShed marks a request rejected at admission (queue full).
	FlagShed
	// FlagDeadline marks a request whose deadline expired before the
	// policy answered.
	FlagDeadline
)

// Result is one served answer as seen by a serve.Client.
type Result struct {
	Action  float64
	Flags   uint32
	Version uint32 // policy version that stamped the response
}

// Fallback reports whether the action came from the fallback law.
func (r Result) Fallback() bool { return r.Flags&FlagFallback != 0 }

// Shed reports whether the request was rejected at admission.
func (r Result) Shed() bool { return r.Flags&FlagShed != 0 }

// DeadlineMissed reports whether the request ran out of budget before the
// policy answered.
func (r Result) DeadlineMissed() bool { return r.Flags&FlagDeadline != 0 }

// servedResponseSize is the response payload size: base codec + trailer.
const servedResponseSize = core.ResponseSize + 8

// maxFramePayload bounds what either side will read in one frame: the
// largest request the core codec admits (responses are far smaller).
const maxFramePayload = 12 + 8*core.MaxStateDim

// encodeServedResponse builds a response payload with the serve trailer.
func encodeServedResponse(reqID uint64, action float64, flags, version uint32) []byte {
	buf := make([]byte, servedResponseSize)
	copy(buf, core.EncodeResponse(reqID, action))
	binary.LittleEndian.PutUint32(buf[core.ResponseSize:], flags)
	binary.LittleEndian.PutUint32(buf[core.ResponseSize+4:], version)
	return buf
}

// decodeServedResponse parses a response payload. The trailer is optional
// (a plain core responder yields zero flags and version 0).
func decodeServedResponse(buf []byte) (reqID uint64, res Result, err error) {
	reqID, action, err := core.DecodeResponse(buf)
	if err != nil {
		return 0, Result{}, err
	}
	res = Result{Action: action}
	if len(buf) >= servedResponseSize {
		res.Flags = binary.LittleEndian.Uint32(buf[core.ResponseSize:])
		res.Version = binary.LittleEndian.Uint32(buf[core.ResponseSize+4:])
	}
	return reqID, res, nil
}

// appendFrame appends the length prefix and payload to dst, returning the
// extended slice: one buffer, one Write, so concurrent writers interleave
// whole frames, never bytes.
func appendFrame(dst, payload []byte) []byte {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// writeFrame writes one framed payload.
func writeFrame(w io.Writer, payload []byte) error {
	_, err := w.Write(appendFrame(make([]byte, 0, 4+len(payload)), payload))
	return err
}

// readFrame reads one frame payload. A frame longer than maxFramePayload is
// an error (the stream is still positioned at a frame boundary afterwards
// only if the caller discards the oversized body; see discardFrame).
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFramePayload {
		return nil, errFrameTooLarge(n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

type errFrameTooLarge uint32

func (e errFrameTooLarge) Error() string {
	return fmt.Sprintf("serve: frame of %d bytes exceeds limit %d", uint32(e), maxFramePayload)
}

// discardFrame skips n payload bytes so the stream stays frame-aligned
// after an oversized frame was announced.
func discardFrame(r *bufio.Reader, n uint32) error {
	_, err := io.CopyN(io.Discard, r, int64(n))
	return err
}
