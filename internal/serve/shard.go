package serve

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// ShardedService owns N per-shard core.Service instances, each with its own
// evaluator goroutine and private batch queue. Admission hashes a flow key
// to a shard, so all requests for one flow are evaluated in order on one
// evaluator while independent flows spread across cores. One instance per
// shard also removes the policy-scratch serialization bottleneck: policies
// are cloned per shard (core.ClonePolicy), so N forward passes proceed
// concurrently.
//
// The shard count is fixed at construction. Policy swaps go through
// SetPolicy, which re-clones into every shard and bumps the single globally
// monotonic version counter that makes the swap observable as one atomic
// event — ShardedService owns that counter, so it satisfies PolicyHost on
// its own and Server merely delegates.
type ShardedService struct {
	shards  []*core.Service
	version atomic.Uint32
}

// NewShardedService builds n shards around template: template itself is
// shard 0 and shards 1..n-1 are new services with the template's batching
// parameters and an independent clone of its policy. n < 1 is treated as 1.
func NewShardedService(template *core.Service, cfg core.Config, n int) *ShardedService {
	if n < 1 {
		n = 1
	}
	ss := &ShardedService{shards: make([]*core.Service, n)}
	ss.version.Store(1)
	ss.shards[0] = template
	for i := 1; i < n; i++ {
		svc := core.NewService(cfg, core.ClonePolicy(template.Policy()))
		svc.BatchWindow = template.BatchWindow
		svc.MaxBatch = template.MaxBatch
		ss.shards[i] = svc
	}
	return ss
}

// NumShards returns the shard count.
func (ss *ShardedService) NumShards() int { return len(ss.shards) }

// Shard returns shard i.
func (ss *ShardedService) Shard(i int) *core.Service { return ss.shards[i] }

// ShardIndex maps a flow key to its shard. The key is finalized through a
// splitmix64 mix so adjacent flow IDs (the common case: small integers)
// still spread uniformly.
func (ss *ShardedService) ShardIndex(flowKey uint64) int {
	if len(ss.shards) == 1 {
		return 0
	}
	return int(mix64(flowKey) % uint64(len(ss.shards)))
}

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SetPolicy swaps the policy on every shard, cloning per shard so no two
// evaluators share scratch state, then bumps and returns the global version
// counter. Batches already detached keep the policy they were detached with
// (the core.Service guarantee), so no in-flight request is dropped or split
// by the swap.
func (ss *ShardedService) SetPolicy(p core.Policy) uint32 {
	ss.shards[0].SetPolicy(p)
	for _, svc := range ss.shards[1:] {
		svc.SetPolicy(core.ClonePolicy(p))
	}
	return ss.version.Add(1)
}

// PolicyVersion returns the current policy version counter. The counter
// starts at 1 and increments on every SetPolicy.
func (ss *ShardedService) PolicyVersion() uint32 { return ss.version.Load() }

// Instrument registers the batching telemetry once (on shard 0) and shares
// the instruments with every other shard, so the metrics aggregate across
// the fleet instead of colliding in the registry.
func (ss *ShardedService) Instrument(reg *telemetry.Registry) {
	ss.shards[0].Instrument(reg)
	for _, svc := range ss.shards[1:] {
		svc.ShareInstruments(ss.shards[0])
	}
}

// Stats sums request and batch counts across shards.
func (ss *ShardedService) Stats() (requests, batches int64) {
	for _, svc := range ss.shards {
		r, b := svc.Stats()
		requests += r
		batches += b
	}
	return requests, batches
}

// Close flushes and closes every shard. Each shard's Close waits for its
// evaluator to drain, so on return every submitted request has completed.
func (ss *ShardedService) Close() {
	for _, svc := range ss.shards {
		svc.Close()
	}
}
