package serve

import (
	"bufio"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// echoPolicy returns the first state feature, so a response proves which
// request (and which submission order) produced it.
type echoPolicy struct{}

func (echoPolicy) Action(state []float64) float64 {
	if len(state) == 0 {
		return 0
	}
	return state[0]
}

func TestShardIndexDeterministicAndSpread(t *testing.T) {
	cfg := core.DefaultConfig()
	ss := NewShardedService(core.NewService(cfg, constPolicy{0}), cfg, 4)
	defer ss.Close()

	counts := make([]int, ss.NumShards())
	for flow := uint64(0); flow < 4096; flow++ {
		i := ss.ShardIndex(flow)
		if j := ss.ShardIndex(flow); j != i {
			t.Fatalf("ShardIndex(%d) unstable: %d then %d", flow, i, j)
		}
		counts[i]++
	}
	// Adjacent small integers must spread: no shard starved or hogging.
	for i, c := range counts {
		if c < 4096/4/2 || c > 4096/4*2 {
			t.Fatalf("shard %d got %d of 4096 flows (want near %d): %v", i, c, 4096/4, counts)
		}
	}
}

func TestShardedServicePoliciesAreIndependent(t *testing.T) {
	cfg := core.DefaultConfig()
	ref := core.NewReferencePolicy(cfg)
	ss := NewShardedService(core.NewService(cfg, ref), cfg, 3)
	defer ss.Close()

	seen := map[core.Policy]bool{}
	for i := 0; i < ss.NumShards(); i++ {
		p := ss.Shard(i).Policy()
		if seen[p] {
			t.Fatalf("shard %d shares a policy instance with an earlier shard", i)
		}
		seen[p] = true
	}

	ss.SetPolicy(core.NewReferencePolicy(cfg))
	seen = map[core.Policy]bool{}
	for i := 0; i < ss.NumShards(); i++ {
		p := ss.Shard(i).Policy()
		if seen[p] {
			t.Fatalf("after SetPolicy, shard %d shares a policy instance", i)
		}
		seen[p] = true
	}
}

// TestFlowOrderingAcrossShards pipelines interleaved flow-tagged requests
// over raw connections against a 4-shard server and asserts the ordering
// guarantee: for any one flow, responses appear on its connection in
// submission order, even while other flows' responses interleave freely.
func TestFlowOrderingAcrossShards(t *testing.T) {
	_, addr := newTestServer(t, echoPolicy{}, Options{
		Shards:     4,
		QueueDepth: 8192,
		Deadline:   5 * time.Second, // answers must come from the policy, not the sweeper
	}, nil)

	const (
		flows   = 8
		perFlow = 200
	)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// reqID encodes (flow, seq) so the reader can reconstruct per-flow order.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf []byte
		for seq := 0; seq < perFlow; seq++ {
			buf = buf[:0]
			for flow := uint64(1); flow <= flows; flow++ {
				id := flow<<32 | uint64(seq)
				buf = appendFlowRequest(buf, id, []float64{float64(seq)}, flow, true)
			}
			if _, err := conn.Write(buf); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	nextSeq := make(map[uint64]uint64, flows)
	for got := 0; got < flows*perFlow; got++ {
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		payload, err := readFrame(br)
		if err != nil {
			t.Fatalf("read response %d: %v", got, err)
		}
		reqID, res, err := decodeServedResponse(payload)
		if err != nil {
			t.Fatalf("decode response %d: %v", got, err)
		}
		if res.Fallback() {
			t.Fatalf("request %x answered by fallback; ordering not exercised", reqID)
		}
		flow, seq := reqID>>32, reqID&0xffffffff
		if want := nextSeq[flow]; seq != want {
			t.Fatalf("flow %d: response seq %d arrived, want %d (out of order)", flow, seq, want)
		}
		if res.Action != float64(seq) {
			t.Fatalf("flow %d seq %d: action %v, want the echoed seq", flow, seq, res.Action)
		}
		nextSeq[flow] = seq + 1
	}
	wg.Wait()
}

// TestUntaggedPipelineKeepsConnectionOrder: requests without a flow trailer
// inherit the connection's identity, so a plain pipelined sender sees
// strict FIFO responses even on a multi-shard server.
func TestUntaggedPipelineKeepsConnectionOrder(t *testing.T) {
	_, addr := newTestServer(t, echoPolicy{}, Options{
		Shards:     4,
		QueueDepth: 4096,
		Deadline:   5 * time.Second,
	}, nil)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const n = 500
	go func() {
		var buf []byte
		for i := uint64(0); i < n; i++ {
			buf = appendFlowRequest(buf[:0], i, []float64{float64(i)}, 0, false)
			if _, err := conn.Write(buf); err != nil {
				return
			}
		}
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	for want := uint64(0); want < n; want++ {
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		payload, err := readFrame(br)
		if err != nil {
			t.Fatalf("read response %d: %v", want, err)
		}
		reqID, _, err := decodeServedResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		if reqID != want {
			t.Fatalf("response %d arrived out of order (want %d)", reqID, want)
		}
	}
}

// TestVersionMonotonicAcrossHotReload hammers SetPolicy while a client
// infers across all shards and asserts the versions observed on one
// connection never go backwards — the all-shard swap plus write-time
// stamping make the version counter a monotonic, connection-observable
// event.
func TestVersionMonotonicAcrossHotReload(t *testing.T) {
	srv, addr := newTestServer(t, constPolicy{0.5}, Options{
		Shards:     4,
		QueueDepth: 4096,
		Deadline:   5 * time.Second,
	}, nil)

	client, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const reloads = 30
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < reloads; i++ {
			srv.SetPolicy(constPolicy{float64(i)})
			time.Sleep(2 * time.Millisecond)
		}
	}()

	state := []float64{1}
	last := uint32(0)
	first := uint32(0)
	for i := 0; ; i++ {
		res, err := client.InferFlow(uint64(i%16), state) // rotate across shards
		if err != nil {
			t.Fatal(err)
		}
		if res.Fallback() {
			t.Fatalf("infer %d answered by fallback", i)
		}
		if res.Version < last {
			t.Fatalf("version went backwards: %d after %d", res.Version, last)
		}
		if i == 0 {
			first = res.Version
		}
		last = res.Version
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	// The reloader finished; one more request must observe the final version.
	res, err := client.Infer(state)
	if err != nil {
		t.Fatal(err)
	}
	if want := srv.PolicyVersion(); res.Version != want {
		t.Fatalf("post-reload version %d, want %d", res.Version, want)
	}
	if res.Version < reloads+1 {
		t.Fatalf("final version %d does not reflect %d reloads (first observed %d)", res.Version, reloads, first)
	}
	if res.Version < last {
		t.Fatalf("final version %d below last observed %d", res.Version, last)
	}
}
