package serve

import (
	"math"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/telemetry"
)

// sealedArtifactBytes builds a valid sealed generation artifact for a
// deterministic actor (zero weights, output bias → Action == tanh(bias))
// and returns its bytes plus the action it serves.
func sealedArtifactBytes(t *testing.T, bias float64, meta core.PolicyMeta) ([]byte, float64) {
	t.Helper()
	cfg := core.DefaultConfig()
	net := nn.NewMLP(rand.New(rand.NewSource(3)), nn.ReLU, nn.Tanh, cfg.StateDim(), 4, 1)
	for _, l := range net.Layers {
		for i := range l.W {
			l.W[i] = 0
		}
		for i := range l.B {
			l.B[i] = 0
		}
	}
	net.Layers[len(net.Layers)-1].B[0] = bias
	path := t.TempDir() + "/sealed.policy"
	if err := core.SaveSealedPolicy(path, net, meta); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, math.Tanh(bias)
}

// TestReloadFailureObservable is the regression test for reload-failure
// observability: a candidate artifact corrupted at any byte offset — or
// truncated — must leave the old version serving uninterrupted (clients keep
// getting answers, version counter parked) while every refused attempt
// increments policy_reload_failures_total. The same path then accepts the
// intact artifact, proving the reloader was one good file away the whole
// time.
func TestReloadFailureObservable(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/actor.json"
	wantOld := writePolicyFile(t, path, 0.8, 4)
	reg := telemetry.NewRegistry()
	srv, rl, addr := newReloadableServer(t, path, reg)

	good, wantNew := sealedArtifactBytes(t, -0.8, core.PolicyMeta{Generation: 3, Parent: 2})

	// Background load across every failed reload: the point of the counter
	// is that corruption is observable *without* service interruption.
	cfg := core.DefaultConfig()
	state := make([]float64, cfg.StateDim())
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var responses, clientErrs atomic.Int64
	for g := 0; g < 2; g++ {
		client, err := Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := client.Infer(state)
				if err != nil || (res.Action != wantOld && res.Action != wantNew) {
					clientErrs.Add(1)
					return
				}
				responses.Add(1)
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for responses.Load() < 20 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if responses.Load() < 20 {
		t.Fatal("load never ramped")
	}

	offsets := []int{0, 1, 8, len(good) / 3, len(good) / 2, len(good) - 1}
	attempts := 0
	for _, off := range offsets {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x20
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := rl.Reload(); err == nil {
			t.Fatalf("corruption at offset %d accepted", off)
		}
		attempts++
		if v := srv.PolicyVersion(); v != 1 {
			t.Fatalf("version moved to %d on corrupt reload (offset %d)", v, off)
		}
	}
	for _, cut := range []int{0, 7, len(good) / 2, len(good) - 1} {
		if err := os.WriteFile(path, good[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := rl.Reload(); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
		attempts++
	}
	if v := srv.PolicyVersion(); v != 1 {
		t.Fatalf("version = %d after refused reloads, want 1", v)
	}
	snap := reg.Snapshot()
	if m, _ := snap.Get("policy_reload_failures_total"); m.Count != int64(attempts) {
		t.Fatalf("policy_reload_failures_total = %d, want %d", m.Count, attempts)
	}
	if m, _ := snap.Get("serve_reloads_total"); m.Count != 0 {
		t.Fatalf("serve_reloads_total = %d before any good reload", m.Count)
	}

	// The intact artifact goes straight through the same path: version bumps,
	// generation gauge picks up the sealed metadata, no new failures.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	v, err := rl.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("version after good reload = %d, want 2", v)
	}
	close(stop)
	wg.Wait()
	if clientErrs.Load() != 0 {
		t.Fatalf("%d client errors across %d refused reloads", clientErrs.Load(), attempts)
	}
	snap = reg.Snapshot()
	if m, _ := snap.Get("policy_reload_failures_total"); m.Count != int64(attempts) {
		t.Fatalf("good reload moved the failure counter: %d", m.Count)
	}
	if m, _ := snap.Get("serve_policy_generation"); m.Value != 3 {
		t.Fatalf("serve_policy_generation = %v, want 3", m.Value)
	}

	client, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	res, err := client.Infer(state)
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != wantNew || res.Version != 2 {
		t.Fatalf("post-promotion res = %+v, want action %v version 2", res, wantNew)
	}
}

// TestShardedServiceAsPolicyHost: the bare shard set satisfies the PolicyHost
// seam — version counter semantics identical to the Server's, and a Reloader
// can drive it directly with no network server at all (the embedded-pilot
// configuration).
func TestShardedServiceAsPolicyHost(t *testing.T) {
	cfg := core.DefaultConfig()
	svc := core.NewService(cfg, core.NewReferencePolicy(cfg))
	ss := NewShardedService(svc, cfg, 4)
	defer ss.Close()

	var host PolicyHost = ss
	if v := host.PolicyVersion(); v != 1 {
		t.Fatalf("initial version = %d, want 1", v)
	}
	for i := 2; i <= 5; i++ {
		if v := host.SetPolicy(core.NewReferencePolicy(cfg)); v != uint32(i) {
			t.Fatalf("SetPolicy #%d returned %d", i-1, v)
		}
	}
	if v := host.PolicyVersion(); v != 5 {
		t.Fatalf("version = %d after 4 swaps, want 5", v)
	}

	// A Reloader targeting the bare shard set: good artifact swaps, corrupt
	// artifact is refused with the version parked.
	dir := t.TempDir()
	path := dir + "/gen.policy"
	data, _ := sealedArtifactBytes(t, 0.4, core.PolicyMeta{Generation: 9})
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rl := NewReloader(host, path, cfg)
	reg := telemetry.NewRegistry()
	rl.Instrument(reg)
	v, err := rl.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if v != 6 || host.PolicyVersion() != 6 {
		t.Fatalf("reload onto bare shards: version %d / %d, want 6", v, host.PolicyVersion())
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := rl.Reload(); err == nil {
		t.Fatal("truncated artifact accepted by bare-shard reloader")
	}
	if host.PolicyVersion() != 6 {
		t.Fatalf("version moved on refused reload: %d", host.PolicyVersion())
	}
	snap := reg.Snapshot()
	if m, _ := snap.Get("policy_reload_failures_total"); m.Count != 1 {
		t.Fatalf("failures = %d", m.Count)
	}
	if m, _ := snap.Get("serve_policy_generation"); m.Value != 9 {
		t.Fatalf("generation gauge = %v", m.Value)
	}
}
