package serve

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// LoadOptions configures one load-generation run against a serve.Server
// stream endpoint.
type LoadOptions struct {
	Network string // "tcp" or "unix"
	Address string

	// Rate is the target aggregate request rate (req/s). Default 1000.
	Rate float64
	// Duration of the run. Default 1s.
	Duration time.Duration
	// Conns is how many connections to spread load over. Default 4.
	Conns int
	// Outstanding is the per-connection pipelining depth. Default 16.
	Outstanding int
	// Timeout is the per-request client timeout. Default 2s.
	Timeout time.Duration
	// StateDim is the request payload width. Default the serving config's
	// stacked state dimension.
	StateDim int
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Rate <= 0 {
		o.Rate = 1000
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.Conns <= 0 {
		o.Conns = 4
	}
	if o.Outstanding <= 0 {
		o.Outstanding = 16
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.StateDim <= 0 {
		o.StateDim = core.DefaultConfig().StateDim()
	}
	return o
}

// LoadSummary is the result of a load run, JSON-shaped for the bench
// trajectory (scripts/bench-serve.sh writes it as BENCH_serve.json).
type LoadSummary struct {
	TargetRPS   float64 `json:"target_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	DurationSec float64 `json:"duration_sec"`

	Requests  int64 `json:"requests"`
	Responses int64 `json:"responses"`
	// Failed counts hard errors (timeouts, transport failures) — a
	// fallback answer is a success with a flag, not a failure.
	Failed       int64   `json:"failed"`
	Fallbacks    int64   `json:"fallbacks"`
	Shed         int64   `json:"shed"`
	DeadlineMiss int64   `json:"deadline_miss"`
	FallbackRate float64 `json:"fallback_rate"`

	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`

	// MinVersion/MaxVersion are the policy versions observed across
	// responses (they differ when a hot reload happened mid-run).
	MinVersion uint32 `json:"min_version"`
	MaxVersion uint32 `json:"max_version"`
}

// RunLoad drives the endpoint open-loop: requests are scheduled on a fixed
// global cadence of Rate per second, spread round-robin over
// Conns×Outstanding senders. A sender that falls behind schedule (slow
// responses) fires immediately on catch-up, so the offered load tracks the
// schedule as long as total outstanding capacity suffices; the achieved
// rate in the summary is the ground truth. Hard request errors are counted,
// not fatal; dial failures are.
func RunLoad(opts LoadOptions) (LoadSummary, error) {
	opts = opts.withDefaults()

	clients := make([]*Client, opts.Conns)
	for i := range clients {
		c, err := Dial(opts.Network, opts.Address)
		if err != nil {
			for _, c := range clients[:i] {
				c.Close()
			}
			return LoadSummary{}, err
		}
		c.Timeout = opts.Timeout
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	senders := opts.Conns * opts.Outstanding
	interval := time.Duration(float64(time.Second) / opts.Rate)
	total := int64(opts.Rate * opts.Duration.Seconds())
	if total < 1 {
		total = 1
	}

	var requests, responses, failed, fallbacks, shed, deadlineMiss atomic.Int64
	var minVer, maxVer atomic.Uint32
	minVer.Store(math.MaxUint32)
	latencies := make([][]time.Duration, senders)

	start := time.Now()
	var wg sync.WaitGroup
	for k := 0; k < senders; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			client := clients[k%opts.Conns]
			state := make([]float64, opts.StateDim)
			state[0] = 1 // a mildly realistic feature vector, not all-zero
			lats := make([]time.Duration, 0, int(total)/senders+1)
			for i := int64(k); i < total; i += int64(senders) {
				due := start.Add(time.Duration(i) * interval)
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				requests.Add(1)
				t0 := time.Now()
				res, err := client.Infer(state)
				if err != nil {
					failed.Add(1)
					continue
				}
				lats = append(lats, time.Since(t0))
				responses.Add(1)
				if res.Fallback() {
					fallbacks.Add(1)
				}
				if res.Shed() {
					shed.Add(1)
				}
				if res.DeadlineMissed() {
					deadlineMiss.Add(1)
				}
				for {
					v := minVer.Load()
					if res.Version >= v || minVer.CompareAndSwap(v, res.Version) {
						break
					}
				}
				for {
					v := maxVer.Load()
					if res.Version <= v || maxVer.CompareAndSwap(v, res.Version) {
						break
					}
				}
			}
			latencies[k] = lats
		}(k)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	sum := LoadSummary{
		TargetRPS:    opts.Rate,
		DurationSec:  elapsed.Seconds(),
		Requests:     requests.Load(),
		Responses:    responses.Load(),
		Failed:       failed.Load(),
		Fallbacks:    fallbacks.Load(),
		Shed:         shed.Load(),
		DeadlineMiss: deadlineMiss.Load(),
	}
	if elapsed > 0 {
		sum.AchievedRPS = float64(sum.Responses) / elapsed.Seconds()
	}
	if sum.Responses > 0 {
		sum.FallbackRate = float64(sum.Fallbacks) / float64(sum.Responses)
		sum.MinVersion = minVer.Load()
		sum.MaxVersion = maxVer.Load()
	}
	if len(all) > 0 {
		sum.P50Ms = quantileMs(all, 0.50)
		sum.P90Ms = quantileMs(all, 0.90)
		sum.P99Ms = quantileMs(all, 0.99)
		sum.MaxMs = float64(all[len(all)-1]) / float64(time.Millisecond)
	}
	return sum, nil
}

// quantileMs reads quantile q from sorted latencies, in milliseconds.
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// String renders the summary as a one-line human report.
func (s LoadSummary) String() string {
	return fmt.Sprintf("%.0f req/s achieved (target %.0f), %d ok / %d failed, fallback %.1f%% (shed %d, deadline %d), p50 %.2fms p90 %.2fms p99 %.2fms, versions %d..%d",
		s.AchievedRPS, s.TargetRPS, s.Responses, s.Failed,
		100*s.FallbackRate, s.Shed, s.DeadlineMiss, s.P50Ms, s.P90Ms, s.P99Ms, s.MinVersion, s.MaxVersion)
}
