package serve

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// LoadOptions configures one load-generation run against a serve.Server
// stream endpoint.
type LoadOptions struct {
	Network string // "tcp" or "unix"
	Address string

	// Rate is the target aggregate request rate (req/s) in open-loop mode.
	// Default 1000. Ignored when ClosedLoop is set.
	Rate float64
	// ClosedLoop switches to saturation mode: every sender keeps exactly
	// one request in flight back-to-back for the whole Duration, so the
	// offered load is whatever the server can absorb at Conns×Outstanding
	// concurrency. This is the mode the knee sweep (RunKnee) steps through.
	ClosedLoop bool
	// Duration of the run. Default 1s.
	Duration time.Duration
	// Conns is how many connections to spread load over. Default 4.
	Conns int
	// Outstanding is the per-connection pipelining depth. Default 16.
	Outstanding int
	// Timeout is the per-request client timeout. Default 2s.
	Timeout time.Duration
	// StateDim is the request payload width. Default the serving config's
	// stacked state dimension.
	StateDim int
	// TagFlows stamps each sender's requests with a distinct flow ID
	// (InferFlow), so load spreads across all server shards regardless of
	// how senders map to connections.
	TagFlows bool
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Rate <= 0 {
		o.Rate = 1000
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.Conns <= 0 {
		o.Conns = 4
	}
	if o.Outstanding <= 0 {
		o.Outstanding = 16
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.StateDim <= 0 {
		o.StateDim = core.DefaultConfig().StateDim()
	}
	return o
}

// LoadSummary is the result of a load run, JSON-shaped for the bench
// trajectory (scripts/bench-serve.sh writes it into BENCH_serve.json).
type LoadSummary struct {
	TargetRPS   float64 `json:"target_rps"` // 0 in closed-loop mode
	AchievedRPS float64 `json:"achieved_rps"`
	DurationSec float64 `json:"duration_sec"`
	Conns       int     `json:"conns"`
	Outstanding int     `json:"outstanding"`

	Requests  int64 `json:"requests"`
	Responses int64 `json:"responses"`
	// Failed counts hard errors (timeouts, transport failures) — a
	// fallback answer is a success with a flag, not a failure.
	Failed       int64   `json:"failed"`
	Fallbacks    int64   `json:"fallbacks"`
	Shed         int64   `json:"shed"`
	DeadlineMiss int64   `json:"deadline_miss"`
	FallbackRate float64 `json:"fallback_rate"`

	// Latencies are free of coordinated-omission bias: in open-loop mode
	// each sample is measured from the request's *intended* send time on
	// the fixed schedule, so a stalled server inflates the recorded
	// latency of the requests it delayed instead of silently thinning the
	// sample. MaxSchedLagMs reports how far the generator itself fell
	// behind its schedule (send-time minus intended-time, worst case) —
	// nonzero lag means the generator, not the server, was the bottleneck
	// and even the from-intended-time percentiles are a lower bound.
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
	MaxSchedLagMs float64 `json:"max_sched_lag_ms"`

	// MinVersion/MaxVersion are the policy versions observed across
	// responses (they differ when a hot reload happened mid-run).
	MinVersion uint32 `json:"min_version"`
	MaxVersion uint32 `json:"max_version"`
}

// RunLoad drives the endpoint with Conns×Outstanding senders. Open-loop
// (the default): requests are scheduled on a fixed global cadence of Rate
// per second and latency is measured from each request's intended send
// time, which keeps the percentiles honest under coordinated omission — a
// sender that falls behind schedule fires immediately on catch-up and the
// lost ground is reported as MaxSchedLagMs. Closed-loop (ClosedLoop set):
// every sender keeps one request in flight continuously, measuring the
// server's saturation throughput at this concurrency. Hard request errors
// are counted, not fatal; dial failures are.
func RunLoad(opts LoadOptions) (LoadSummary, error) {
	opts = opts.withDefaults()

	clients := make([]*Client, opts.Conns)
	for i := range clients {
		c, err := Dial(opts.Network, opts.Address)
		if err != nil {
			for _, c := range clients[:i] {
				c.Close()
			}
			return LoadSummary{}, err
		}
		c.Timeout = opts.Timeout
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	senders := opts.Conns * opts.Outstanding
	interval := time.Duration(float64(time.Second) / opts.Rate)
	total := int64(opts.Rate * opts.Duration.Seconds())
	if total < 1 {
		total = 1
	}

	var requests, responses, failed, fallbacks, shed, deadlineMiss atomic.Int64
	var maxLagNs atomic.Int64
	var minVer, maxVer atomic.Uint32
	minVer.Store(math.MaxUint32)
	latencies := make([][]time.Duration, senders)

	start := time.Now()
	stop := start.Add(opts.Duration)
	var wg sync.WaitGroup
	for k := 0; k < senders; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			client := clients[k%opts.Conns]
			flow := uint64(k + 1)
			state := make([]float64, opts.StateDim)
			state[0] = 1 // a mildly realistic feature vector, not all-zero
			var lats []time.Duration
			if !opts.ClosedLoop {
				lats = make([]time.Duration, 0, int(total)/senders+1)
			}

			record := func(res Result, lat time.Duration) {
				lats = append(lats, lat)
				responses.Add(1)
				if res.Fallback() {
					fallbacks.Add(1)
				}
				if res.Shed() {
					shed.Add(1)
				}
				if res.DeadlineMissed() {
					deadlineMiss.Add(1)
				}
				for {
					v := minVer.Load()
					if res.Version >= v || minVer.CompareAndSwap(v, res.Version) {
						break
					}
				}
				for {
					v := maxVer.Load()
					if res.Version <= v || maxVer.CompareAndSwap(v, res.Version) {
						break
					}
				}
			}
			send := func(state []float64) (Result, error) {
				if opts.TagFlows {
					return client.InferFlow(flow, state)
				}
				return client.Infer(state)
			}

			if opts.ClosedLoop {
				for time.Now().Before(stop) {
					requests.Add(1)
					t0 := time.Now()
					res, err := send(state)
					if err != nil {
						failed.Add(1)
						time.Sleep(time.Millisecond) // don't spin on a dead endpoint
						continue
					}
					record(res, time.Since(t0))
				}
			} else {
				for i := int64(k); i < total; i += int64(senders) {
					due := start.Add(time.Duration(i) * interval)
					if d := time.Until(due); d > 0 {
						time.Sleep(d)
					}
					requests.Add(1)
					if lag := int64(time.Since(due)); lag > 0 {
						for {
							cur := maxLagNs.Load()
							if lag <= cur || maxLagNs.CompareAndSwap(cur, lag) {
								break
							}
						}
					}
					res, err := send(state)
					if err != nil {
						failed.Add(1)
						continue
					}
					// Intended-time latency: includes any generator lag, so
					// a delayed request cannot hide the delay it suffered.
					record(res, time.Since(due))
				}
			}
			latencies[k] = lats
		}(k)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	sum := LoadSummary{
		DurationSec:   elapsed.Seconds(),
		Conns:         opts.Conns,
		Outstanding:   opts.Outstanding,
		Requests:      requests.Load(),
		Responses:     responses.Load(),
		Failed:        failed.Load(),
		Fallbacks:     fallbacks.Load(),
		Shed:          shed.Load(),
		DeadlineMiss:  deadlineMiss.Load(),
		MaxSchedLagMs: float64(maxLagNs.Load()) / float64(time.Millisecond),
	}
	if !opts.ClosedLoop {
		sum.TargetRPS = opts.Rate
	}
	if elapsed > 0 {
		sum.AchievedRPS = float64(sum.Responses) / elapsed.Seconds()
	}
	if sum.Responses > 0 {
		sum.FallbackRate = float64(sum.Fallbacks) / float64(sum.Responses)
		sum.MinVersion = minVer.Load()
		sum.MaxVersion = maxVer.Load()
	}
	if len(all) > 0 {
		sum.P50Ms = quantileMs(all, 0.50)
		sum.P90Ms = quantileMs(all, 0.90)
		sum.P99Ms = quantileMs(all, 0.99)
		sum.MaxMs = float64(all[len(all)-1]) / float64(time.Millisecond)
	}
	return sum, nil
}

// quantileMs reads quantile q from sorted latencies, in milliseconds.
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// String renders the summary as a one-line human report.
func (s LoadSummary) String() string {
	mode := fmt.Sprintf("target %.0f", s.TargetRPS)
	if s.TargetRPS == 0 {
		mode = fmt.Sprintf("closed-loop %d×%d", s.Conns, s.Outstanding)
	}
	return fmt.Sprintf("%.0f req/s achieved (%s), %d ok / %d failed, fallback %.1f%% (shed %d, deadline %d), p50 %.2fms p90 %.2fms p99 %.2fms, lag %.2fms, versions %d..%d",
		s.AchievedRPS, mode, s.Responses, s.Failed,
		100*s.FallbackRate, s.Shed, s.DeadlineMiss, s.P50Ms, s.P90Ms, s.P99Ms, s.MaxSchedLagMs, s.MinVersion, s.MaxVersion)
}

// KneeOptions configures a saturation sweep (RunKnee).
type KneeOptions struct {
	Network string
	Address string

	// Conns is the connection count for every step. Default 4.
	Conns int
	// StepDuration is how long each concurrency step runs. Default 2s.
	StepDuration time.Duration
	// MaxOutstanding caps the per-connection pipelining depth the sweep
	// will try. Default 128.
	MaxOutstanding int
	// Timeout, StateDim, TagFlows as in LoadOptions.
	Timeout  time.Duration
	StateDim int
	TagFlows bool
	// Log, when set, receives one progress line per step.
	Log func(string)
}

// KneeReport is the result of a saturation sweep: the throughput knee —
// the lowest concurrency that achieves (within kneeFraction of) the
// maximum observed throughput — plus every step for the full curve.
type KneeReport struct {
	Env BenchEnv `json:"env"`

	Conns           int     `json:"conns"`
	AchievedRPS     float64 `json:"achieved_rps"` // throughput at the knee
	P50Ms           float64 `json:"p50_ms"`       // latency at the knee
	P99Ms           float64 `json:"p99_ms"`
	KneeOutstanding int     `json:"knee_outstanding"`
	MaxRPS          float64 `json:"max_rps"` // best step anywhere on the curve

	Steps []LoadSummary `json:"steps"`
}

// kneeFraction: the knee is the cheapest step within this fraction of the
// best observed throughput — past it, doubling concurrency buys single-digit
// percent throughput at double the queueing delay.
const kneeFraction = 0.90

// RunKnee sweeps closed-loop load at doubling per-connection concurrency
// (1, 2, 4, ...) until throughput stops improving (two consecutive steps
// under a 5% gain) or MaxOutstanding is reached, then reports the knee:
// the lowest concurrency within kneeFraction of the best throughput, i.e.
// the point past which added load only buys queueing delay.
func RunKnee(opts KneeOptions) (KneeReport, error) {
	if opts.Conns <= 0 {
		opts.Conns = 4
	}
	if opts.StepDuration <= 0 {
		opts.StepDuration = 2 * time.Second
	}
	if opts.MaxOutstanding <= 0 {
		opts.MaxOutstanding = 128
	}

	rep := KneeReport{Env: CaptureEnv(), Conns: opts.Conns}
	best := 0.0
	dry := 0
	for out := 1; out <= opts.MaxOutstanding; out *= 2 {
		sum, err := RunLoad(LoadOptions{
			Network: opts.Network, Address: opts.Address,
			ClosedLoop: true, Duration: opts.StepDuration,
			Conns: opts.Conns, Outstanding: out,
			Timeout: opts.Timeout, StateDim: opts.StateDim,
			TagFlows: opts.TagFlows,
		})
		if err != nil {
			return rep, err
		}
		rep.Steps = append(rep.Steps, sum)
		if opts.Log != nil {
			opts.Log(fmt.Sprintf("outstanding %3d: %s", out, sum))
		}
		if sum.AchievedRPS > best*1.05 {
			dry = 0
		} else {
			dry++
		}
		if sum.AchievedRPS > best {
			best = sum.AchievedRPS
		}
		if dry >= 2 {
			break
		}
	}
	rep.MaxRPS = best
	for _, s := range rep.Steps {
		if s.AchievedRPS >= kneeFraction*best {
			rep.AchievedRPS = s.AchievedRPS
			rep.P50Ms = s.P50Ms
			rep.P99Ms = s.P99Ms
			rep.KneeOutstanding = s.Outstanding
			break
		}
	}
	return rep, nil
}

// BenchEnv is the environment provenance embedded in benchmark artifacts
// (BENCH_serve.json): enough to tell whether two recorded numbers are
// comparable at all.
type BenchEnv struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	CPUModel   string `json:"cpu_model,omitempty"`
	Commit     string `json:"commit,omitempty"` // filled by the caller (CLI flag / script)
	Shards     int    `json:"shards,omitempty"` // server shard count, when known
	Timestamp  string `json:"timestamp"`
}

// CaptureEnv snapshots the local environment. CPUModel comes from
// /proc/cpuinfo and is empty on platforms without it.
func CaptureEnv() BenchEnv {
	env := BenchEnv{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "model name") {
				if i := strings.IndexByte(line, ':'); i >= 0 {
					env.CPUModel = strings.TrimSpace(line[i+1:])
				}
				break
			}
		}
	}
	return env
}
