package serve

import (
	"encoding/json"
	"testing"
	"time"
)

func TestRunLoadAgainstHealthyServer(t *testing.T) {
	_, addr := newTestServer(t, constPolicy{0.5}, Options{Deadline: time.Second}, nil)
	sum, err := RunLoad(LoadOptions{
		Network:  "tcp",
		Address:  addr,
		Rate:     2000,
		Duration: 300 * time.Millisecond,
		Conns:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		t.Fatalf("failed requests: %d", sum.Failed)
	}
	if sum.Responses == 0 || sum.Responses != sum.Requests {
		t.Fatalf("requests %d responses %d", sum.Requests, sum.Responses)
	}
	if sum.AchievedRPS <= 0 || sum.P50Ms <= 0 || sum.P99Ms < sum.P50Ms {
		t.Fatalf("implausible summary: %+v", sum)
	}
	if sum.MinVersion != 1 || sum.MaxVersion != 1 {
		t.Fatalf("versions %d..%d, want 1..1", sum.MinVersion, sum.MaxVersion)
	}
	if sum.String() == "" {
		t.Fatal("empty human summary")
	}
	// The summary must stay JSON-encodable: bench-serve.sh persists it.
	if _, err := json.Marshal(sum); err != nil {
		t.Fatal(err)
	}
}

// TestRunLoadCountsFallbacks: against a slow policy with a tight deadline,
// the loadgen reports fallbacks, not failures — the contract that senders
// always get a safe answer.
func TestRunLoadCountsFallbacks(t *testing.T) {
	policy := &slowPolicy{delay: 100 * time.Millisecond, v: 0.5}
	_, addr := newTestServer(t, policy,
		Options{MaxInflight: 4, Deadline: 2 * time.Millisecond}, nil)
	sum, err := RunLoad(LoadOptions{
		Network:  "tcp",
		Address:  addr,
		Rate:     500,
		Duration: 200 * time.Millisecond,
		Conns:    2,
		Timeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		t.Fatalf("failed requests: %d (fallbacks should not be failures)", sum.Failed)
	}
	if sum.Fallbacks == 0 {
		t.Fatal("no fallbacks recorded against a slow policy")
	}
	if sum.FallbackRate <= 0 || sum.FallbackRate > 1 {
		t.Fatalf("fallback rate %v", sum.FallbackRate)
	}
}
