package serve

import (
	"encoding/json"
	"testing"
	"time"
)

func TestRunLoadAgainstHealthyServer(t *testing.T) {
	_, addr := newTestServer(t, constPolicy{0.5}, Options{Deadline: time.Second}, nil)
	sum, err := RunLoad(LoadOptions{
		Network:  "tcp",
		Address:  addr,
		Rate:     2000,
		Duration: 300 * time.Millisecond,
		Conns:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		t.Fatalf("failed requests: %d", sum.Failed)
	}
	if sum.Responses == 0 || sum.Responses != sum.Requests {
		t.Fatalf("requests %d responses %d", sum.Requests, sum.Responses)
	}
	if sum.AchievedRPS <= 0 || sum.P50Ms <= 0 || sum.P99Ms < sum.P50Ms {
		t.Fatalf("implausible summary: %+v", sum)
	}
	if sum.MinVersion != 1 || sum.MaxVersion != 1 {
		t.Fatalf("versions %d..%d, want 1..1", sum.MinVersion, sum.MaxVersion)
	}
	if sum.String() == "" {
		t.Fatal("empty human summary")
	}
	// The summary must stay JSON-encodable: bench-serve.sh persists it.
	if _, err := json.Marshal(sum); err != nil {
		t.Fatal(err)
	}
}

// TestRunLoadCountsFallbacks: against a slow policy with a tight deadline,
// the loadgen reports fallbacks, not failures — the contract that senders
// always get a safe answer.
func TestRunLoadCountsFallbacks(t *testing.T) {
	policy := &slowPolicy{delay: 100 * time.Millisecond, v: 0.5}
	_, addr := newTestServer(t, policy,
		Options{MaxInflight: 4, Deadline: 2 * time.Millisecond}, nil)
	sum, err := RunLoad(LoadOptions{
		Network:  "tcp",
		Address:  addr,
		Rate:     500,
		Duration: 200 * time.Millisecond,
		Conns:    2,
		Timeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		t.Fatalf("failed requests: %d (fallbacks should not be failures)", sum.Failed)
	}
	if sum.Fallbacks == 0 {
		t.Fatal("no fallbacks recorded against a slow policy")
	}
	if sum.FallbackRate <= 0 || sum.FallbackRate > 1 {
		t.Fatalf("fallback rate %v", sum.FallbackRate)
	}
}

// TestRunLoadClosedLoop: Rate is ignored, senders run back-to-back for the
// whole duration, and the summary reports saturation throughput.
func TestRunLoadClosedLoop(t *testing.T) {
	_, addr := newTestServer(t, constPolicy{0.5}, Options{Shards: 2, Deadline: time.Second}, nil)
	sum, err := RunLoad(LoadOptions{
		Network:     "tcp",
		Address:     addr,
		ClosedLoop:  true,
		Duration:    200 * time.Millisecond,
		Conns:       2,
		Outstanding: 4,
		TagFlows:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.TargetRPS != 0 {
		t.Fatalf("closed-loop summary reports target %v, want 0", sum.TargetRPS)
	}
	if sum.Failed != 0 || sum.Responses == 0 {
		t.Fatalf("responses %d, failed %d", sum.Responses, sum.Failed)
	}
	if sum.AchievedRPS <= 0 {
		t.Fatalf("achieved %v req/s under saturation", sum.AchievedRPS)
	}
	if sum.Conns != 2 || sum.Outstanding != 4 {
		t.Fatalf("concurrency not recorded: %+v", sum)
	}
}

// TestOpenLoopLatencyIncludesSchedulingLag: with one sender and a policy
// far slower than the schedule interval, the generator must fall behind and
// say so (MaxSchedLagMs), and the recorded latencies — measured from each
// request's *intended* send time — must absorb that lag instead of hiding
// it (the coordinated-omission correction).
func TestOpenLoopLatencyIncludesSchedulingLag(t *testing.T) {
	policy := &slowPolicy{delay: 30 * time.Millisecond, v: 0.5}
	_, addr := newTestServer(t, policy, Options{Deadline: time.Second}, nil)
	sum, err := RunLoad(LoadOptions{
		Network:     "tcp",
		Address:     addr,
		Rate:        200, // 5ms cadence against a 30ms server: hopeless
		Duration:    300 * time.Millisecond,
		Conns:       1,
		Outstanding: 1,
		Timeout:     10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		t.Fatalf("failed requests: %d", sum.Failed)
	}
	if sum.MaxSchedLagMs <= 0 {
		t.Fatal("generator kept schedule against a 6x-oversubscribed server; lag not measured")
	}
	// The worst latency must reflect accumulated schedule debt, not just
	// one service time: by the last request the sender is many intervals
	// behind, so from-intended-time latency far exceeds the 30ms service.
	if sum.MaxMs < 60 {
		t.Fatalf("max latency %.1fms hides scheduling lag (service time 30ms)", sum.MaxMs)
	}
}

// TestRunKneeFindsSaturation runs a miniature sweep and checks the knee
// invariants: a positive knee within the tried steps, at no more than the
// best observed throughput, with provenance captured.
func TestRunKneeFindsSaturation(t *testing.T) {
	_, addr := newTestServer(t, constPolicy{0.5}, Options{Shards: 2, QueueDepth: 4096, Deadline: time.Second}, nil)
	rep, err := RunKnee(KneeOptions{
		Network:        "tcp",
		Address:        addr,
		Conns:          2,
		StepDuration:   100 * time.Millisecond,
		MaxOutstanding: 8,
		TagFlows:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) == 0 {
		t.Fatal("no sweep steps recorded")
	}
	if rep.AchievedRPS <= 0 || rep.KneeOutstanding <= 0 {
		t.Fatalf("no knee found: %+v", rep)
	}
	if rep.AchievedRPS > rep.MaxRPS {
		t.Fatalf("knee %v req/s exceeds max %v", rep.AchievedRPS, rep.MaxRPS)
	}
	if rep.AchievedRPS < kneeFraction*rep.MaxRPS {
		t.Fatalf("knee %v req/s below %v of max %v", rep.AchievedRPS, kneeFraction, rep.MaxRPS)
	}
	if rep.Env.GoMaxProcs <= 0 || rep.Env.GoVersion == "" || rep.Env.Timestamp == "" {
		t.Fatalf("environment provenance missing: %+v", rep.Env)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatal(err)
	}
}
