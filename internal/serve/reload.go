package serve

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Reloader hot-swaps the served policy from a policy artifact on disk —
// JSON weights written by core.SavePolicy, a quantized blob written by
// core.SaveQuantizedPolicy / cmd/astraea-quantize, or a sealed generation
// artifact written by core.SaveSealedPolicy (the pilot's promotion format).
// Reload validates the file against the serving config before swapping (a
// half-trained, truncated, or wrong-dimension candidate is rejected — the
// previous policy keeps serving and policy_reload_failures_total counts the
// refusal), then bumps the host's version counter. Because all three writers
// are atomic (temp + fsync + rename via internal/ckpt), a watcher can never
// observe a torn file: every snapshot it picks up is one the trainer
// finished writing. Direct writes by anything else can still tear, which is
// exactly what the failure counter makes loudly observable.
//
// Two triggers share the same Reload path: an explicit call (the serve
// daemon wires SIGHUP to it) and the mtime/size poller started by Watch.
// The host is any PolicyHost — the network Server in the daemon, a bare
// ShardedService in tests and embedded pilots.
type Reloader struct {
	host PolicyHost
	path string
	cfg  core.Config

	// Interval is the Watch polling period (default 500ms).
	Interval time.Duration

	// Quantize selects the serving form for JSON weight snapshots: when
	// true (the default from NewReloader), each reload compiles the float
	// actor to its fixed-point form before swapping, so hot reloads serve
	// the same representation the daemon booted with. Precompiled blob
	// artifacts always serve quantized regardless. The serve daemon's
	// -float flag clears it to keep the float oracle path.
	Quantize bool

	mReloads  *telemetry.Counter
	mErrors   *telemetry.Counter
	mFailures *telemetry.Counter
	gGen      *telemetry.Gauge

	mu       sync.Mutex
	lastMod  time.Time
	lastSize int64
	watching bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewReloader builds a reloader for host serving the policy at path,
// validated against cfg. Reloads quantize JSON snapshots by default; clear
// Quantize before the first Reload/Watch to serve float weights as loaded.
func NewReloader(host PolicyHost, path string, cfg core.Config) *Reloader {
	r := &Reloader{host: host, path: path, cfg: cfg, Interval: 500 * time.Millisecond,
		Quantize: true,
		stop:     make(chan struct{}), done: make(chan struct{})}
	if st, err := os.Stat(path); err == nil {
		// Baseline: the daemon loaded this snapshot at boot; only a later
		// write should trigger a reload.
		r.lastMod, r.lastSize = st.ModTime(), st.Size()
	}
	return r
}

// Instrument registers reload telemetry on reg.
func (r *Reloader) Instrument(reg *telemetry.Registry) {
	r.mReloads = reg.Counter("serve_reloads_total", "successful policy hot reloads")
	r.mErrors = reg.Counter("serve_reload_errors_total", "rejected policy reloads (unreadable or invalid weights)")
	r.mFailures = reg.Counter("policy_reload_failures_total",
		"policy reload attempts that left the previous version serving (corrupt, truncated, or invalid candidate)")
	r.gGen = reg.Gauge("serve_policy_generation",
		"pilot generation of the served policy (sealed artifacts only; 0 before the first promotion)")
}

// Reload loads and validates the policy artifact (JSON weights, a quantized
// blob, or a sealed generation artifact — sniffed by format) and swaps it
// in, returning the new policy version. On error the served policy is
// unchanged: the failure is counted on both serve_reload_errors_total and
// policy_reload_failures_total and the version counter does not move, so a
// corrupt candidate is loudly observable without any service interruption.
func (r *Reloader) Reload() (uint32, error) {
	p, meta, err := core.LoadServingPolicyMeta(r.path, r.cfg, r.Quantize)
	if err != nil {
		r.mErrors.Inc()
		r.mFailures.Inc()
		return r.host.PolicyVersion(), fmt.Errorf("serve: reload %s: %w", r.path, err)
	}
	v := r.host.SetPolicy(p)
	if meta != nil {
		r.gGen.Set(float64(meta.Generation))
	}
	r.mReloads.Inc()
	return v, nil
}

// Watch starts the file poller: every Interval it stats the weights file
// and calls Reload when the mtime or size moved. Errors are counted and
// the previous policy keeps serving; the same changed file is not retried
// until it changes again (a broken snapshot should not hot-loop the
// loader). Stop terminates the poller.
func (r *Reloader) Watch() {
	r.mu.Lock()
	if r.watching {
		r.mu.Unlock()
		return
	}
	r.watching = true
	r.mu.Unlock()
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(r.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-ticker.C:
				r.poll()
			}
		}
	}()
}

func (r *Reloader) poll() {
	st, err := os.Stat(r.path)
	if err != nil {
		return // file temporarily absent (mid-rename): next tick sees it
	}
	r.mu.Lock()
	changed := !st.ModTime().Equal(r.lastMod) || st.Size() != r.lastSize
	if changed {
		r.lastMod, r.lastSize = st.ModTime(), st.Size()
	}
	r.mu.Unlock()
	if changed {
		_, _ = r.Reload() // errors are counted; old policy keeps serving
	}
}

// Stop terminates a Watch poller (safe if Watch was never started; Stop
// before Watch also prevents a later Watch from polling).
func (r *Reloader) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.mu.Lock()
	watching := r.watching
	r.mu.Unlock()
	if watching {
		<-r.done
	}
}
