package serve

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Reloader hot-swaps the served policy from a policy artifact on disk —
// JSON weights written by core.SavePolicy or a quantized blob written by
// core.SaveQuantizedPolicy / cmd/astraea-quantize. Reload validates the
// file against the serving config before swapping (a half-trained or
// wrong-dimension actor is rejected and the previous policy keeps serving),
// then bumps the server's version counter. Because both writers are atomic
// (temp + fsync + rename via internal/ckpt), a watcher can never observe a
// torn file: every snapshot it picks up is one the trainer finished
// writing.
//
// Two triggers share the same Reload path: an explicit call (the serve
// daemon wires SIGHUP to it) and the mtime/size poller started by Watch.
type Reloader struct {
	srv  *Server
	path string
	cfg  core.Config

	// Interval is the Watch polling period (default 500ms).
	Interval time.Duration

	// Quantize selects the serving form for JSON weight snapshots: when
	// true (the default from NewReloader), each reload compiles the float
	// actor to its fixed-point form before swapping, so hot reloads serve
	// the same representation the daemon booted with. Precompiled blob
	// artifacts always serve quantized regardless. The serve daemon's
	// -float flag clears it to keep the float oracle path.
	Quantize bool

	mReloads *telemetry.Counter
	mErrors  *telemetry.Counter

	mu       sync.Mutex
	lastMod  time.Time
	lastSize int64
	watching bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewReloader builds a reloader for srv serving the policy at path,
// validated against cfg. Reloads quantize JSON snapshots by default; clear
// Quantize before the first Reload/Watch to serve float weights as loaded.
func NewReloader(srv *Server, path string, cfg core.Config) *Reloader {
	r := &Reloader{srv: srv, path: path, cfg: cfg, Interval: 500 * time.Millisecond,
		Quantize: true,
		stop:     make(chan struct{}), done: make(chan struct{})}
	if st, err := os.Stat(path); err == nil {
		// Baseline: the daemon loaded this snapshot at boot; only a later
		// write should trigger a reload.
		r.lastMod, r.lastSize = st.ModTime(), st.Size()
	}
	return r
}

// Instrument registers reload telemetry on reg.
func (r *Reloader) Instrument(reg *telemetry.Registry) {
	r.mReloads = reg.Counter("serve_reloads_total", "successful policy hot reloads")
	r.mErrors = reg.Counter("serve_reload_errors_total", "rejected policy reloads (unreadable or invalid weights)")
}

// Reload loads and validates the policy artifact (JSON weights or a
// quantized blob, sniffed by format) and swaps it in, returning the new
// policy version. On error the served policy is unchanged.
func (r *Reloader) Reload() (uint32, error) {
	p, err := core.LoadServingPolicy(r.path, r.cfg, r.Quantize)
	if err != nil {
		r.mErrors.Inc()
		return r.srv.PolicyVersion(), fmt.Errorf("serve: reload %s: %w", r.path, err)
	}
	v := r.srv.SetPolicy(p)
	r.mReloads.Inc()
	return v, nil
}

// Watch starts the file poller: every Interval it stats the weights file
// and calls Reload when the mtime or size moved. Errors are counted and
// the previous policy keeps serving; the same changed file is not retried
// until it changes again (a broken snapshot should not hot-loop the
// loader). Stop terminates the poller.
func (r *Reloader) Watch() {
	r.mu.Lock()
	if r.watching {
		r.mu.Unlock()
		return
	}
	r.watching = true
	r.mu.Unlock()
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(r.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-ticker.C:
				r.poll()
			}
		}
	}()
}

func (r *Reloader) poll() {
	st, err := os.Stat(r.path)
	if err != nil {
		return // file temporarily absent (mid-rename): next tick sees it
	}
	r.mu.Lock()
	changed := !st.ModTime().Equal(r.lastMod) || st.Size() != r.lastSize
	if changed {
		r.lastMod, r.lastSize = st.ModTime(), st.Size()
	}
	r.mu.Unlock()
	if changed {
		_, _ = r.Reload() // errors are counted; old policy keeps serving
	}
}

// Stop terminates a Watch poller (safe if Watch was never started; Stop
// before Watch also prevents a later Watch from polling).
func (r *Reloader) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.mu.Lock()
	watching := r.watching
	r.mu.Unlock()
	if watching {
		<-r.done
	}
}
