package serve

import (
	"math"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/telemetry"
)

// writePolicyFile saves a deterministic actor to path: zero weights with an
// output bias, so Action == tanh(bias) on every input. Returns that action.
func writePolicyFile(t *testing.T, path string, bias float64, hidden int) float64 {
	t.Helper()
	cfg := core.DefaultConfig()
	net := nn.NewMLP(rand.New(rand.NewSource(1)), nn.ReLU, nn.Tanh, cfg.StateDim(), hidden, 1)
	for _, l := range net.Layers {
		for i := range l.W {
			l.W[i] = 0
		}
		for i := range l.B {
			l.B[i] = 0
		}
	}
	net.Layers[len(net.Layers)-1].B[0] = bias
	if err := core.SavePolicy(path, net); err != nil {
		t.Fatal(err)
	}
	return math.Tanh(bias)
}

// newReloadableServer boots a server from the weights at path.
func newReloadableServer(t *testing.T, path string, reg *telemetry.Registry) (*Server, *Reloader, string) {
	t.Helper()
	cfg := core.DefaultConfig()
	policy, err := core.LoadPolicy(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := core.NewService(cfg, policy)
	svc.BatchWindow = time.Millisecond
	srv := NewServer(svc, cfg, Options{Deadline: time.Second})
	if reg != nil {
		srv.Instrument(reg)
	}
	rl := NewReloader(srv, path, cfg)
	// These tests pin float-path reload semantics bitwise (actions must equal
	// math.Tanh of the bias exactly); reload_quant_test.go covers the
	// quantized default.
	rl.Quantize = false
	if reg != nil {
		rl.Instrument(reg)
	}
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rl.Stop(); srv.Close() })
	return srv, rl, addr.String()
}

// TestHotReloadMidRun is the acceptance test for hot reload: with client
// load in flight, swapping the weights file and reloading must bump the
// policy version and change the served action without a single dropped or
// errored request.
func TestHotReloadMidRun(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/actor.json"
	wantA := writePolicyFile(t, path, 1.0, 4)
	wantB := math.Tanh(-1.0)

	reg := telemetry.NewRegistry()
	srv, rl, addr := newReloadableServer(t, path, reg)

	cfg := core.DefaultConfig()
	state := make([]float64, cfg.StateDim())

	// Background load: 4 clients hammering Infer until told to stop.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var responses, errors atomic.Int64
	for g := 0; g < 4; g++ {
		client, err := Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := client.Infer(state)
				if err != nil {
					errors.Add(1)
					return
				}
				if res.Action != wantA && res.Action != wantB {
					errors.Add(1)
					return
				}
				responses.Add(1)
			}
		}()
	}

	// Let traffic flow, then swap the weights file and reload mid-run.
	deadline := time.Now().Add(10 * time.Second)
	for responses.Load() < 50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if responses.Load() < 50 {
		t.Fatal("load never ramped")
	}
	writePolicyFile(t, path, -1.0, 4)
	v, err := rl.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("version after reload = %d, want 2", v)
	}

	// More traffic on the new policy, then stop.
	post := responses.Load()
	for responses.Load() < post+50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if errors.Load() != 0 {
		t.Fatalf("%d requests dropped/errored across the reload", errors.Load())
	}

	// The served policy is now B, stamped with the new version.
	client, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	res, err := client.Infer(state)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || res.Action != wantB {
		t.Fatalf("post-reload res = %+v, want version 2 action %v", res, wantB)
	}
	if srv.PolicyVersion() != 2 {
		t.Fatalf("PolicyVersion = %d", srv.PolicyVersion())
	}
	snap := reg.Snapshot()
	if m, _ := snap.Get("serve_reloads_total"); m.Count != 1 {
		t.Fatalf("reloads = %d", m.Count)
	}
	if m, _ := snap.Get("serve_policy_version"); m.Value != 2 {
		t.Fatalf("policy_version gauge = %v", m.Value)
	}
	if err := srv.Shutdown(contextWithTimeout(t, 5*time.Second)); err != nil {
		t.Fatalf("drain after reload: %v", err)
	}
}

// TestReloadWatcher: the mtime/size poller picks up a new snapshot without
// an explicit trigger.
func TestReloadWatcher(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/actor.json"
	writePolicyFile(t, path, 0.5, 4)
	srv, rl, _ := newReloadableServer(t, path, nil)

	rl.Interval = 10 * time.Millisecond
	rl.Watch()
	// A different hidden width changes the file size, so the poll triggers
	// even on filesystems with coarse mtime granularity.
	writePolicyFile(t, path, -0.5, 6)
	deadline := time.Now().Add(10 * time.Second)
	for srv.PolicyVersion() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never picked up the new snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rl.Stop()
}

// TestReloadRejectsBadFile: an invalid snapshot is rejected, counted, and
// the previous policy keeps serving.
func TestReloadRejectsBadFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/actor.json"
	wantA := writePolicyFile(t, path, 1.0, 4)
	reg := telemetry.NewRegistry()
	srv, rl, addr := newReloadableServer(t, path, reg)

	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := rl.Reload(); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	if srv.PolicyVersion() != 1 {
		t.Fatalf("version moved on failed reload: %d", srv.PolicyVersion())
	}
	client, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	res, err := client.Infer(make([]float64, core.DefaultConfig().StateDim()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != wantA || res.Version != 1 {
		t.Fatalf("old policy not serving after failed reload: %+v", res)
	}
	snap := reg.Snapshot()
	if m, _ := snap.Get("serve_reload_errors_total"); m.Count != 1 {
		t.Fatalf("reload_errors = %d", m.Count)
	}
	// A wrong-dimension actor is rejected too (validated against cfg).
	cfg := core.DefaultConfig()
	net := nn.NewMLP(rand.New(rand.NewSource(2)), nn.ReLU, nn.Tanh, cfg.StateDim()+8, 4, 1)
	if err := core.SavePolicy(path, net); err != nil {
		t.Fatal(err)
	}
	if _, err := rl.Reload(); err == nil {
		t.Fatal("wrong-dimension snapshot accepted")
	}
}
