package serve

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

type constPolicy struct{ v float64 }

func (p constPolicy) Action([]float64) float64 { return p.v }

// slowPolicy stalls every Action call, inducing deadline misses.
type slowPolicy struct {
	delay time.Duration
	v     float64
	calls atomic.Int64
}

func (p *slowPolicy) Action([]float64) float64 {
	p.calls.Add(1)
	time.Sleep(p.delay)
	return p.v
}

// newTestServer builds a server over policy, listening on loopback TCP.
func newTestServer(t *testing.T, policy core.Policy, opts Options, reg *telemetry.Registry) (*Server, string) {
	t.Helper()
	cfg := core.DefaultConfig()
	svc := core.NewService(cfg, policy)
	svc.BatchWindow = time.Millisecond
	srv := NewServer(svc, cfg, opts)
	if reg != nil {
		srv.Instrument(reg)
	}
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func TestServeRoundTripTCP(t *testing.T) {
	_, addr := newTestServer(t, constPolicy{0.5}, Options{}, nil)
	client, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 3; i++ {
		res, err := client.Infer(make([]float64, 8))
		if err != nil {
			t.Fatal(err)
		}
		if res.Action != 0.5 || res.Flags != 0 || res.Version != 1 {
			t.Fatalf("res = %+v", res)
		}
	}
}

func TestServeRoundTripUnix(t *testing.T) {
	cfg := core.DefaultConfig()
	svc := core.NewService(cfg, constPolicy{-0.25})
	svc.BatchWindow = time.Millisecond
	srv := NewServer(svc, cfg, Options{})
	defer srv.Close()
	sock := t.TempDir() + "/serve.sock"
	if _, err := srv.Listen("unix", sock); err != nil {
		t.Skipf("unix stream unavailable: %v", err)
	}
	client, err := Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	res, err := client.Infer(make([]float64, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != -0.25 {
		t.Fatalf("res = %+v", res)
	}
}

// TestServeDatagramTransport keeps the legacy datagram path working against
// the new server: a core.ServiceClient (bare codec, no framing) gets a
// correct action; the serve trailer on the reply is invisible to it.
func TestServeDatagramTransport(t *testing.T) {
	cfg := core.DefaultConfig()
	svc := core.NewService(cfg, constPolicy{0.75})
	svc.BatchWindow = time.Millisecond
	srv := NewServer(svc, cfg, Options{})
	defer srv.Close()
	addr, err := srv.Listen("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.DialService("udp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	got, err := client.Infer(make([]float64, 8))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.75 {
		t.Fatalf("datagram Infer = %v", got)
	}
}

// TestDeadlineFallback is the headline guarantee: with a policy far slower
// than the deadline, every sender still gets an answer — the deterministic
// fallback action, flagged in-band, returned near the deadline rather than
// the policy's schedule — and the server's goroutine count stays bounded.
func TestDeadlineFallback(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	cfg := core.DefaultConfig()
	policy := &slowPolicy{delay: 200 * time.Millisecond, v: 0.9}
	reg := telemetry.NewRegistry()
	opts := Options{MaxInflight: 8, Deadline: 5 * time.Millisecond}
	srv, addr := newTestServer(t, policy, opts, reg)

	client, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	state := make([]float64, cfg.StateDim())
	wantFallback := core.NewReferencePolicy(cfg).FallbackAction(state)

	const n = 6
	var wg sync.WaitGroup
	results := make([]Result, n)
	errs := make([]error, n)
	starts := make([]time.Time, n)
	elapsed := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			starts[i] = time.Now()
			results[i], errs[i] = client.Infer(state)
			elapsed[i] = time.Since(starts[i])
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		r := results[i]
		if !r.Fallback() || !r.DeadlineMissed() {
			t.Fatalf("request %d not flagged as deadline fallback: %+v", i, r)
		}
		if r.Action != wantFallback {
			t.Fatalf("request %d action %v, want fallback %v", i, r.Action, wantFallback)
		}
		// The answer must arrive on the deadline's schedule, not the slow
		// policy's (200ms per call; generous margin for -race CI).
		if elapsed[i] >= 150*time.Millisecond {
			t.Fatalf("request %d took %v — answered by the policy, not the deadline", i, elapsed[i])
		}
	}

	// Bounded concurrency: no goroutine per request. Allow the fixed pool
	// (workers, IO loops, evaluator, timers) plus slack.
	if g := runtime.NumGoroutine(); g > baseGoroutines+opts.MaxInflight+24 {
		t.Fatalf("goroutines grew to %d from %d", g, baseGoroutines)
	}

	snap := reg.Snapshot()
	if m, _ := snap.Get("serve_deadline_miss_total"); m.Count != n {
		t.Fatalf("deadline_miss = %d, want %d", m.Count, n)
	}
	if m, _ := snap.Get("serve_fallback_total"); m.Count != n {
		t.Fatalf("fallback = %d, want %d", m.Count, n)
	}

	// Drain: the abandoned submissions still evaluate; Shutdown must wait
	// for them and exit cleanly.
	if err := srv.Shutdown(contextWithTimeout(t, 10*time.Second)); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if policy.calls.Load() == 0 {
		t.Fatal("slow policy never ran — requests were lost, not late")
	}
}

// TestShedFallback saturates a 1-worker/1-slot server: overflow must be
// answered immediately with a flagged fallback, never queued unboundedly
// and never errored.
func TestShedFallback(t *testing.T) {
	reg := telemetry.NewRegistry()
	policy := &slowPolicy{delay: 50 * time.Millisecond, v: 0.3}
	_, addr := newTestServer(t, policy,
		Options{MaxInflight: 1, QueueDepth: 1, Deadline: time.Second}, reg)

	client, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const n = 20
	var wg sync.WaitGroup
	var shedCount, okCount atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := client.Infer(make([]float64, 8))
			if err != nil {
				t.Errorf("infer: %v", err)
				return
			}
			if res.Shed() {
				if !res.Fallback() {
					t.Errorf("shed response without fallback flag: %+v", res)
				}
				shedCount.Add(1)
			} else {
				okCount.Add(1)
			}
		}()
	}
	wg.Wait()
	if shedCount.Load() == 0 {
		t.Fatal("no requests were shed despite a saturated pool")
	}
	if okCount.Load() == 0 {
		t.Fatal("every request was shed — admission accepts nothing")
	}
	snap := reg.Snapshot()
	if m, _ := snap.Get("serve_shed_total"); m.Count != shedCount.Load() {
		t.Fatalf("shed counter %d, clients saw %d", m.Count, shedCount.Load())
	}
}

// TestGracefulDrain: every request answered, then a clean shutdown with
// requests == responses and no hanging goroutines.
func TestGracefulDrain(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, addr := newTestServer(t, constPolicy{0.1}, Options{}, reg)

	client, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := client.Infer(make([]float64, 8)); err != nil {
			t.Fatal(err)
		}
	}
	client.Close()

	if err := srv.Shutdown(contextWithTimeout(t, 5*time.Second)); err != nil {
		t.Fatalf("drain not clean: %v", err)
	}
	snap := reg.Snapshot()
	req, _ := snap.Get("serve_requests_total")
	resp, _ := snap.Get("serve_responses_total")
	if req.Count != n || resp.Count != n {
		t.Fatalf("requests %d responses %d, want %d", req.Count, resp.Count, n)
	}
	// A second shutdown (or Close) is a no-op.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMalformedFramesDoNotKillConnection: oversized and malformed frames
// are counted and skipped; the same connection then serves a valid request.
func TestMalformedFramesDoNotKillConnection(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, addr := newTestServer(t, constPolicy{0.5}, Options{}, reg)
	client, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Hand-craft garbage through the client's connection: an oversized
	// frame announcement with a matching body, then a frame whose payload
	// is not a valid request.
	huge := make([]byte, maxFramePayload+8)
	if err := writeFrame(client.conn, huge); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(client.conn, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	res, err := client.Infer(make([]float64, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != 0.5 {
		t.Fatalf("Infer after garbage = %+v", res)
	}
	snap := reg.Snapshot()
	if m, _ := snap.Get("serve_read_errors_total"); m.Count < 2 {
		t.Fatalf("read errors %d, want >= 2", m.Count)
	}
}

func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}
