package transport

import (
	"math"
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

// recorderCC captures every event for assertions; it never changes the
// window unless configured.
type recorderCC struct {
	acks     []AckEvent
	losses   []LossEvent
	mtps     []MTPStats
	mtpEvery float64
	fixCwnd  float64
	pacing   float64
}

func (r *recorderCC) Name() string { return "recorder" }
func (r *recorderCC) Init(f *Flow) {
	// Pacing must be armed before parking the window at huge values, or
	// the first trySend bursts unpaced (the rate-based schemes follow the
	// same order).
	if r.pacing > 0 {
		f.SetPacingBps(r.pacing)
	}
	if r.fixCwnd > 0 {
		f.SetCwnd(r.fixCwnd)
	}
	if r.mtpEvery > 0 {
		f.ScheduleMTP(r.mtpEvery)
	}
}
func (r *recorderCC) OnAck(f *Flow, e AckEvent)   { r.acks = append(r.acks, e) }
func (r *recorderCC) OnLoss(f *Flow, e LossEvent) { r.losses = append(r.losses, e) }
func (r *recorderCC) OnMTP(f *Flow, st MTPStats) {
	r.mtps = append(r.mtps, st)
	f.ScheduleMTP(r.mtpEvery)
}

func testbed(seed int64, rate float64, rtt float64, queue int) (*sim.Simulator, *netem.Dumbbell) {
	s := sim.New(seed)
	d := netem.NewDumbbell(s, netem.DumbbellConfig{RateBps: rate, BaseRTT: rtt, QueueBytes: queue})
	return s, d
}

func TestAckClockAndRTT(t *testing.T) {
	s, d := testbed(1, 100e6, 0.030, 1<<20)
	cc := &recorderCC{fixCwnd: 10}
	f := NewFlow(s, FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc})
	f.Start()
	s.Run(1)
	if len(cc.acks) == 0 {
		t.Fatal("no acks")
	}
	first := cc.acks[0]
	// RTT = prop 30ms + serialization 0.12ms (1500B @100Mbps).
	if first.RTT < 0.030 || first.RTT > 0.032 {
		t.Fatalf("first RTT %v", first.RTT)
	}
	if f.MinRTT() < 0.030 || f.MinRTT() > 0.032 {
		t.Fatalf("MinRTT %v", f.MinRTT())
	}
	if f.SRTT() <= 0 {
		t.Fatal("SRTT not tracked")
	}
}

func TestCwndLimitsInflight(t *testing.T) {
	s, d := testbed(1, 100e6, 0.030, 1<<20)
	cc := &recorderCC{fixCwnd: 7}
	f := NewFlow(s, FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc})
	f.Start()
	s.Run(0.029) // before any ack returns
	if f.Inflight() != 7 {
		t.Fatalf("inflight %d, want 7 (cwnd-limited)", f.Inflight())
	}
}

func TestThroughputMatchesCwndOverRTT(t *testing.T) {
	s, d := testbed(1, 100e6, 0.030, 1<<20)
	cc := &recorderCC{fixCwnd: 100, mtpEvery: 0.1}
	f := NewFlow(s, FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc})
	f.Start()
	s.Run(5)
	// Expected rate = cwnd*MSS*8/RTT = 100*1500*8/0.030 = 40 Mbps.
	rate := float64(f.DeliveredBytes) * 8 / 5
	if rate < 36e6 || rate > 42e6 {
		t.Fatalf("rate %.1f Mbps, want ≈40", rate/1e6)
	}
}

func TestBottleneckCapsThroughput(t *testing.T) {
	s, d := testbed(1, 10e6, 0.030, 1<<20)
	cc := &recorderCC{fixCwnd: 10000, mtpEvery: 0.1}
	f := NewFlow(s, FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc})
	f.Start()
	s.Run(5)
	rate := float64(f.DeliveredBytes) * 8 / 5
	if rate > 10.2e6 {
		t.Fatalf("rate %.1f Mbps exceeds 10 Mbps link", rate/1e6)
	}
	if rate < 9e6 {
		t.Fatalf("rate %.1f Mbps underuses 10 Mbps link with giant cwnd", rate/1e6)
	}
}

func TestPacingSpreadsPackets(t *testing.T) {
	s, d := testbed(1, 100e6, 0.030, 1<<20)
	// Pace at 12 Mbps = 1 packet per ms with an effectively-infinite cwnd.
	cc := &recorderCC{fixCwnd: 1e9, pacing: 12e6}
	f := NewFlow(s, FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc})
	f.Start()
	s.Run(1.0)
	sent := f.SentBytes / MSS
	if sent < 950 || sent > 1050 {
		t.Fatalf("paced sender sent %d packets in 1s, want ≈1000", sent)
	}
}

func TestLossDetectionByReordering(t *testing.T) {
	// Tiny queue forces tail drops; dup-ack style detection should report
	// them without waiting for the RTO.
	s, d := testbed(1, 10e6, 0.030, 6000)
	cc := &recorderCC{fixCwnd: 50}
	f := NewFlow(s, FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc})
	f.Start()
	s.Run(2)
	if len(cc.losses) == 0 {
		t.Fatal("no loss events despite overflowing queue")
	}
	for _, l := range cc.losses {
		if l.Timeout {
			t.Fatal("losses should come from reordering detection, not RTO")
		}
	}
	if f.LostPackets == 0 || f.LostBytes == 0 {
		t.Fatal("loss counters not updated")
	}
}

func TestRTOFiresWhenLinkDies(t *testing.T) {
	s := sim.New(1)
	// 100% loss: no packet survives.
	d := netem.NewDumbbell(s, netem.DumbbellConfig{
		RateBps: 10e6, BaseRTT: 0.030, QueueBytes: 1 << 20, LossProb: 1.0,
	})
	cc := &recorderCC{fixCwnd: 10}
	f := NewFlow(s, FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc})
	f.Start()
	s.Run(5)
	if len(cc.losses) == 0 {
		t.Fatal("RTO never fired on a dead link")
	}
	if !cc.losses[0].Timeout {
		t.Fatal("first loss should be an RTO")
	}
}

func TestRTOBackoffDoubles(t *testing.T) {
	s := sim.New(1)
	d := netem.NewDumbbell(s, netem.DumbbellConfig{
		RateBps: 10e6, BaseRTT: 0.030, QueueBytes: 1 << 20, LossProb: 1.0,
	})
	cc := &recorderCC{fixCwnd: 4}
	f := NewFlow(s, FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc})
	f.Start()
	s.Run(16)
	if len(cc.losses) < 3 {
		t.Fatalf("want ≥3 RTOs, got %d", len(cc.losses))
	}
	gap1 := cc.losses[1].Now - cc.losses[0].Now
	gap2 := cc.losses[2].Now - cc.losses[1].Now
	if gap2 < gap1*1.5 {
		t.Fatalf("RTO backoff not doubling: gaps %.2fs then %.2fs", gap1, gap2)
	}
}

func TestMTPStatsAccounting(t *testing.T) {
	s, d := testbed(1, 100e6, 0.030, 1<<20)
	cc := &recorderCC{fixCwnd: 100, mtpEvery: 0.1}
	f := NewFlow(s, FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc})
	f.Start()
	s.Run(3)
	if len(cc.mtps) < 25 {
		t.Fatalf("MTP fired %d times in 3s at 100ms, want ≈29", len(cc.mtps))
	}
	var sumDelivered int
	for _, st := range cc.mtps {
		sumDelivered += st.DeliveredBytes
		if st.Duration <= 0 {
			t.Fatal("non-positive MTP duration")
		}
		if st.CwndPkts != 100 {
			t.Fatalf("cwnd in stats %v", st.CwndPkts)
		}
	}
	if int64(sumDelivered) > f.DeliveredBytes {
		t.Fatalf("MTP delivered sum %d exceeds flow total %d", sumDelivered, f.DeliveredBytes)
	}
	st := cc.mtps[len(cc.mtps)-1]
	if st.AvgRTT < 0.030 || st.AvgRTT > 0.040 {
		t.Fatalf("avg RTT %v", st.AvgRTT)
	}
	// The max filter is biased upward by the initial window burst.
	if st.MaxTputBps < 35e6 || st.MaxTputBps > 55e6 {
		t.Fatalf("max throughput %v, want ≈40-50e6", st.MaxTputBps)
	}
}

func TestFlowStartStop(t *testing.T) {
	s, d := testbed(1, 100e6, 0.030, 1<<20)
	cc := &recorderCC{fixCwnd: 10}
	stopped := false
	f := NewFlow(s, FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc, Start: 2, Duration: 3})
	f.OnStop = func(*Flow) { stopped = true }
	f.Start()
	s.Run(1.9)
	if f.Active() || f.SentBytes != 0 {
		t.Fatal("flow sent before its start time")
	}
	s.Run(4)
	if !f.Active() {
		t.Fatal("flow not active mid-lifetime")
	}
	s.Run(6)
	if f.Active() || !stopped {
		t.Fatal("flow still active after its duration")
	}
	sent := f.SentBytes
	s.Run(8)
	if f.SentBytes != sent {
		t.Fatal("flow kept sending after stop")
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	// Windows chosen so both flows together fit in BDP+queue: with giant
	// windows a droptail queue realistically locks the second flow out.
	s, d := testbed(1, 10e6, 0.030, 1<<20)
	cc1 := &recorderCC{fixCwnd: 300}
	cc2 := &recorderCC{fixCwnd: 300}
	f1 := NewFlow(s, FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc1})
	f2 := NewFlow(s, FlowConfig{ID: 1, Path: d.FlowPath(0), CC: cc2})
	f1.Start()
	f2.Start()
	s.Run(5)
	r1 := float64(f1.DeliveredBytes) * 8 / 5
	r2 := float64(f2.DeliveredBytes) * 8 / 5
	total := r1 + r2
	if total > 10.2e6 {
		t.Fatalf("combined %.1f Mbps exceeds link", total/1e6)
	}
	// With equal fixed windows and interleaved arrival, sharing is equal.
	if math.Abs(r1-r2)/total > 0.1 {
		t.Fatalf("equal-cwnd flows unequal: %.1f vs %.1f Mbps", r1/1e6, r2/1e6)
	}
}

func TestLateAckForLostPacketIgnored(t *testing.T) {
	// A packet declared lost whose ack arrives later must not corrupt
	// inflight accounting (inflight would go negative and unblock a burst).
	s, d := testbed(1, 10e6, 0.030, 4500)
	cc := &recorderCC{fixCwnd: 60}
	f := NewFlow(s, FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc})
	f.Start()
	s.Run(5)
	if f.Inflight() < 0 {
		t.Fatalf("negative inflight: %d", f.Inflight())
	}
}

func TestMinCwndEnforced(t *testing.T) {
	s, d := testbed(1, 100e6, 0.030, 1<<20)
	cc := &recorderCC{}
	f := NewFlow(s, FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc})
	f.Start()
	f.SetCwnd(0.001)
	if f.Cwnd() < 2 {
		t.Fatalf("cwnd %v below floor", f.Cwnd())
	}
}

func TestDefaultPacingTracksCwnd(t *testing.T) {
	s, d := testbed(1, 100e6, 0.030, 1<<20)
	cc := &recorderCC{fixCwnd: 100}
	f := NewFlow(s, FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc})
	f.Start()
	s.Run(1)
	f.DefaultPacing()
	want := 1.2 * 100 * MSS * 8 / f.SRTT()
	if math.Abs(f.PacingBps()-want)/want > 0.01 {
		t.Fatalf("DefaultPacing %v, want %v", f.PacingBps(), want)
	}
}
