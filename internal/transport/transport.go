// Package transport implements the end-host side of the emulation: a
// cwnd-limited, optionally paced bulk sender with per-packet ACKs,
// QUIC-style packet-number loss detection (reordering threshold 3), RTO, and
// monitor-time-period (MTP) statistics collection. Congestion-control
// algorithms plug in through the CongestionControl interface, receiving ACK,
// loss and MTP events and steering the flow through cwnd/pacing setters —
// the same control surface the paper's kernel module exposes.
package transport

import (
	"math"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// MSS is the sender's fixed segment size in bytes (wire size; headers are
// not modelled separately).
const MSS = 1500

// AckEvent describes one acknowledged packet.
type AckEvent struct {
	PktNum   int64
	Bytes    int
	RTT      float64 // sample from this packet
	Now      float64
	SRTT     float64 // smoothed estimate after incorporating this sample
	MinRTT   float64 // lifetime minimum
	Inflight int     // packets still outstanding after this ack
}

// LossEvent describes one or more packets declared lost.
type LossEvent struct {
	PktNum  int64 // highest lost packet number in this event
	Bytes   int   // total bytes declared lost
	Packets int
	Timeout bool // true when declared by RTO rather than reordering
	Now     float64
}

// MTPStats summarizes a monitor time period, mirroring the statistics the
// paper's state block consumes (§3.3).
type MTPStats struct {
	Start, End float64
	Duration   float64

	ThroughputBps  float64 // acked bytes over the period, in bits/sec
	DeliveredBytes int
	LostBytes      int
	LossRate       float64 // lost / (lost + delivered), by bytes

	AvgRTT     float64 // mean of RTT samples in the period (0 if none)
	MinRTT     float64 // lifetime minimum RTT
	MaxTputBps float64 // lifetime maximum per-MTP throughput

	CwndPkts     float64
	InflightPkts int
	PacingBps    float64
	SendRateBps  float64 // bytes put on the wire over the period
}

// CongestionControl is implemented by every scheme in internal/cc and by
// the Astraea agent.
type CongestionControl interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// Init is called once before the flow starts sending.
	Init(f *Flow)
	// OnAck fires for every acknowledged packet.
	OnAck(f *Flow, e AckEvent)
	// OnLoss fires once per loss event (a batch of packets declared lost
	// together produces a single event).
	OnLoss(f *Flow, e LossEvent)
	// OnMTP fires when a monitor period completes, if the scheme armed one
	// via Flow.ScheduleMTP.
	OnMTP(f *Flow, st MTPStats)
}

// sentRecord tracks one outstanding packet. Records live in the flow's
// ring, a circular window over the contiguous packet-number range
// [base, nextPktNum): packet numbers are dense and monotonic, so a ring
// index replaces the map+slice bookkeeping that used to cost one heap
// allocation and several map operations per packet (the dominant cost at
// hundreds of concurrent flows).
type sentRecord struct {
	bytes int
	state uint8
}

const (
	pktOutstanding uint8 = iota
	pktAcked
	pktLost
)

// Metrics is the transport telemetry bundle, typically shared by all flows
// of one scenario (counters are atomic). PacketsLost* count loss
// *declarations* — this transport models a bulk sender whose every packet
// carries new data, so a declared loss adjusts accounting and cwnd but no
// retransmission packet is emitted. A nil *Metrics is a valid no-op sink.
type Metrics struct {
	PacketsSent        *telemetry.Counter
	AcksReceived       *telemetry.Counter
	PacketsLostReorder *telemetry.Counter // declared by packet-threshold reordering
	PacketsLostTimeout *telemetry.Counter // declared by RTO expiry
	Timeouts           *telemetry.Counter // RTO fires that found packets outstanding
	RTT                *telemetry.Histogram
}

// RTTBuckets are the default upper bounds for the RTT sample histogram:
// 1 ms to ~8.2 s in powers of two, spanning datacenter to satellite paths.
func RTTBuckets() []float64 { return telemetry.ExponentialBuckets(0.001, 2, 14) }

// NewMetrics registers the transport instruments on reg and returns the
// bundle to pass via FlowConfig.Metrics. A nil reg yields a no-op bundle.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		PacketsSent:        reg.Counter("transport_packets_sent_total", "data packets put on the wire"),
		AcksReceived:       reg.Counter("transport_acks_received_total", "acknowledgements processed"),
		PacketsLostReorder: reg.Counter("transport_packets_lost_reorder_total", "packets declared lost by reordering detection"),
		PacketsLostTimeout: reg.Counter("transport_packets_lost_timeout_total", "packets declared lost by RTO"),
		Timeouts:           reg.Counter("transport_timeouts_total", "retransmission timeouts fired with packets outstanding"),
		RTT:                reg.Histogram("transport_rtt_seconds", "per-ack RTT samples", RTTBuckets()),
	}
}

// FlowConfig configures a flow.
type FlowConfig struct {
	ID    int
	Path  *netem.Path
	CC    CongestionControl
	Start float64
	// Duration stops the flow Start+Duration seconds in; zero means run
	// until the simulation ends.
	Duration float64
	// InitialCwnd in packets; defaults to 10 (RFC 6928).
	InitialCwnd float64
	// Metrics, when set, receives per-packet telemetry (see Metrics).
	Metrics *Metrics
}

// Flow is one bulk transfer.
type Flow struct {
	Sim *sim.Simulator
	ID  int
	CC  CongestionControl

	path *netem.Path

	cwnd      float64 // packets
	pacingBps float64 // 0 = unpaced (pure ack clocking)
	minCwnd   float64
	nextSend  float64
	sendTimer sim.Timer
	active    bool
	startAt   float64
	stopAt    float64

	nextPktNum int64
	// ring holds the records for packet numbers [base, nextPktNum); head is
	// the ring index of base. Capacity is a power of two and grows on
	// demand; acked/lost prefixes are compacted away so the window tracks
	// the true outstanding span.
	ring         []sentRecord
	base         int64
	head         int
	inflight     int
	largestAcked int64

	srtt, rttvar float64
	minRTT       float64
	lastAckAt    float64
	rtoTimer     sim.Timer
	rtoBackoff   float64

	// lifetime counters
	DeliveredBytes int64
	SentBytes      int64
	LostBytes      int64
	LostPackets    int64
	RTTSamples     int64

	// per-MTP window accounting
	mtpStart     float64
	mtpDelivered int
	mtpLost      int
	mtpSent      int
	mtpRTTSum    float64
	mtpRTTCount  int
	mtpTimer     sim.Timer
	maxTput      float64

	// deliverFn/ackFn hold the receiver/sender callbacks bound once at
	// construction; passing f.deliverToReceiver directly would allocate a
	// method-value closure per packet.
	deliverFn func(*netem.Packet)
	ackFn     func(*netem.Packet)

	// metrics is never nil (noopMetrics when uninstrumented), so hot paths
	// pay only the counters' internal nil checks.
	metrics *Metrics

	// OnSendHook observes every data packet put on the wire, after the
	// flow's counters are updated. The invariant checker uses it to mark
	// the flow dirty for incremental conservation checks.
	OnSendHook func(now float64, bytes int)
	// OnAckHook lets experiment recorders observe acks without interposing
	// on the CC.
	OnAckHook func(e AckEvent)
	// OnCwndHook observes every congestion-window change (after clamping).
	OnCwndHook func(now, cwnd float64)
	// OnLossHook observes loss events alongside the CC.
	OnLossHook func(e LossEvent)
	// OnStop runs when the flow's duration elapses.
	OnStop func(f *Flow)
}

// NewFlow builds a flow; call Start (or let the env do it) to begin.
func NewFlow(s *sim.Simulator, cfg FlowConfig) *Flow {
	icw := cfg.InitialCwnd
	if icw <= 0 {
		icw = 10
	}
	f := &Flow{
		Sim:          s,
		ID:           cfg.ID,
		CC:           cfg.CC,
		path:         cfg.Path,
		cwnd:         icw,
		minCwnd:      2,
		minRTT:       math.Inf(1),
		startAt:      cfg.Start,
		largestAcked: -1,
		rtoBackoff:   1,
	}
	if cfg.Duration > 0 {
		f.stopAt = cfg.Start + cfg.Duration
	}
	f.deliverFn = f.deliverToReceiver
	f.ackFn = f.onAckArrival
	f.metrics = cfg.Metrics
	if f.metrics == nil {
		f.metrics = noopMetrics
	}
	return f
}

// noopMetrics backs uninstrumented flows: all counters are nil, so every
// increment is a single-branch no-op.
var noopMetrics = &Metrics{}

// Start schedules flow launch at its configured start time.
func (f *Flow) Start() {
	f.Sim.At(f.startAt, func() {
		f.active = true
		f.mtpStart = f.Sim.Now()
		f.CC.Init(f)
		f.trySend()
		f.armRTO()
		if f.stopAt > 0 {
			f.Sim.At(f.stopAt, f.stop)
		}
	})
}

func (f *Flow) stop() {
	f.active = false
	f.sendTimer.Cancel()
	f.mtpTimer.Cancel()
	f.rtoTimer.Cancel()
	if f.OnStop != nil {
		f.OnStop(f)
	}
}

// Active reports whether the flow is currently sending.
func (f *Flow) Active() bool { return f.active }

// Cwnd returns the congestion window in packets.
func (f *Flow) Cwnd() float64 { return f.cwnd }

// SetCwnd sets the congestion window (packets), clamped to the minimum.
func (f *Flow) SetCwnd(w float64) {
	if w < f.minCwnd {
		w = f.minCwnd
	}
	f.cwnd = w
	if f.OnCwndHook != nil {
		f.OnCwndHook(f.Sim.Now(), w)
	}
	f.trySend()
}

// PacingBps returns the pacing rate in bits/sec (0 = unpaced).
func (f *Flow) PacingBps() float64 { return f.pacingBps }

// SetPacingBps sets the pacing rate in bits/sec; zero disables pacing.
func (f *Flow) SetPacingBps(r float64) {
	if r < 0 {
		r = 0
	}
	f.pacingBps = r
	f.trySend()
}

// DefaultPacing sets pacing to cwnd/sRTT (the paper's mapping from cwnd to
// pacing rate) with a small headroom factor.
func (f *Flow) DefaultPacing() {
	rtt := f.srtt
	if rtt <= 0 {
		rtt = f.minRTT
	}
	if rtt <= 0 || math.IsInf(rtt, 0) {
		f.SetPacingBps(0)
		return
	}
	f.SetPacingBps(1.2 * f.cwnd * MSS * 8 / rtt)
}

// Inflight returns outstanding packets.
func (f *Flow) Inflight() int { return f.inflight }

// SRTT returns the smoothed RTT (0 before the first sample).
func (f *Flow) SRTT() float64 { return f.srtt }

// MinRTT returns the lifetime minimum RTT (+Inf before the first sample).
func (f *Flow) MinRTT() float64 { return f.minRTT }

// MaxTputBps returns the largest per-MTP throughput observed.
func (f *Flow) MaxTputBps() float64 { return f.maxTput }

// ScheduleMTP arms (or re-arms) the monitor period timer to fire d seconds
// from now. CC schemes call this from Init and typically again from OnMTP.
func (f *Flow) ScheduleMTP(d float64) {
	f.mtpTimer.Cancel()
	f.mtpTimer = f.Sim.After(d, f.fireMTP)
}

func (f *Flow) fireMTP() {
	if !f.active {
		return
	}
	now := f.Sim.Now()
	dur := now - f.mtpStart
	if dur <= 0 {
		dur = 1e-9
	}
	st := MTPStats{
		Start:          f.mtpStart,
		End:            now,
		Duration:       dur,
		ThroughputBps:  float64(f.mtpDelivered) * 8 / dur,
		DeliveredBytes: f.mtpDelivered,
		LostBytes:      f.mtpLost,
		CwndPkts:       f.cwnd,
		InflightPkts:   f.inflight,
		PacingBps:      f.pacingBps,
		SendRateBps:    float64(f.mtpSent) * 8 / dur,
		MinRTT:         f.minRTTOrZero(),
	}
	if tot := f.mtpDelivered + f.mtpLost; tot > 0 {
		st.LossRate = float64(f.mtpLost) / float64(tot)
	}
	if f.mtpRTTCount > 0 {
		st.AvgRTT = f.mtpRTTSum / float64(f.mtpRTTCount)
	}
	if st.ThroughputBps > f.maxTput {
		f.maxTput = st.ThroughputBps
	}
	st.MaxTputBps = f.maxTput
	f.mtpStart = now
	f.mtpDelivered, f.mtpLost, f.mtpSent = 0, 0, 0
	f.mtpRTTSum, f.mtpRTTCount = 0, 0
	f.CC.OnMTP(f, st)
}

func (f *Flow) minRTTOrZero() float64 {
	if math.IsInf(f.minRTT, 0) {
		return 0
	}
	return f.minRTT
}

// maxUnpacedBurst bounds how many packets an unpaced flow may emit from a
// single trySend call. Rate-based schemes park cwnd at effectively-infinite
// values; without pacing armed yet, an unbounded loop here would spin the
// simulator. Ack clocking and the RTO re-invoke trySend, so the bound does
// not limit steady-state throughput.
const maxUnpacedBurst = 4096

func (f *Flow) trySend() {
	if !f.active {
		return
	}
	now := f.Sim.Now()
	burst := 0
	for float64(f.inflight)+1 <= f.cwnd+1e-9 {
		if f.pacingBps == 0 {
			burst++
			if burst > maxUnpacedBurst {
				// Stop here; acks or the RTO will resume sending. Re-arming
				// a zero-delay event instead would freeze virtual time.
				return
			}
		}
		if f.pacingBps > 0 && now < f.nextSend-1e-12 {
			f.sendTimer.Cancel()
			f.sendTimer = f.Sim.At(f.nextSend, f.trySend)
			return
		}
		f.sendPacket()
		if f.pacingBps > 0 {
			gap := MSS * 8 / f.pacingBps
			if f.nextSend < now {
				f.nextSend = now
			}
			f.nextSend += gap
		}
	}
}

// recordAt returns the record for packet num, or nil when the number is
// outside the tracked window (already compacted away, or never sent).
func (f *Flow) recordAt(num int64) *sentRecord {
	if num < f.base || num >= f.nextPktNum {
		return nil
	}
	return &f.ring[(f.head+int(num-f.base))&(len(f.ring)-1)]
}

// pushRecord appends the record for the packet about to carry number
// f.nextPktNum, growing the ring when the window is at capacity.
func (f *Flow) pushRecord(bytes int) {
	n := int(f.nextPktNum - f.base)
	if n >= len(f.ring) {
		f.growRing()
	}
	f.ring[(f.head+n)&(len(f.ring)-1)] = sentRecord{bytes: bytes}
}

func (f *Flow) growRing() {
	newCap := len(f.ring) * 2
	if newCap == 0 {
		newCap = 64
	}
	grown := make([]sentRecord, newCap)
	n := int(f.nextPktNum - f.base)
	for i := 0; i < n; i++ {
		grown[i] = f.ring[(f.head+i)&(len(f.ring)-1)]
	}
	f.ring, f.head = grown, 0
}

// compact advances the window past the prefix of records that are no
// longer outstanding, so the ring stays as small as the true in-flight
// span (plus any out-of-order holes).
func (f *Flow) compact() {
	mask := len(f.ring) - 1
	for f.base < f.nextPktNum && f.ring[f.head].state != pktOutstanding {
		f.head = (f.head + 1) & mask
		f.base++
	}
}

func (f *Flow) sendPacket() {
	num := f.nextPktNum
	now := f.Sim.Now()
	f.pushRecord(MSS)
	f.nextPktNum++
	f.inflight++
	f.SentBytes += MSS
	f.mtpSent += MSS
	f.metrics.PacketsSent.Inc()
	if f.OnSendHook != nil {
		f.OnSendHook(now, MSS)
	}
	p := netem.AcquirePacket()
	p.FlowID, p.Seq, p.Size, p.SentAt = f.ID, num, MSS, now
	netem.SendOver(p, f.path.Forward, f.deliverFn, dropSilently)
}

// dropSilently is the shared no-op drop callback: the sender learns about
// losses through reordering detection or RTO, not instantly.
func dropSilently(*netem.Packet, string) {}

// deliverToReceiver models the receiver: immediately ACK every packet back
// over the reverse path.
func (f *Flow) deliverToReceiver(p *netem.Packet) {
	ack := netem.AcquirePacket()
	ack.FlowID, ack.Seq, ack.Size, ack.Ack, ack.SentAt = f.ID, p.Seq, 40, true, p.SentAt
	netem.SendOver(ack, f.path.Reverse, f.ackFn, dropSilently)
}

func (f *Flow) onAckArrival(p *netem.Packet) {
	if !f.active {
		return
	}
	rec := f.recordAt(p.Seq)
	if rec == nil || rec.state != pktOutstanding {
		return // already acknowledged, or declared lost (no ack credit)
	}
	now := f.Sim.Now()
	ackedBytes := rec.bytes
	rec.state = pktAcked
	f.inflight--
	f.compact()

	rttSample := now - p.SentAt
	f.updateRTT(rttSample)
	f.metrics.AcksReceived.Inc()
	f.metrics.RTT.Observe(rttSample)
	f.DeliveredBytes += int64(ackedBytes)
	f.mtpDelivered += ackedBytes
	f.mtpRTTSum += rttSample
	f.mtpRTTCount++
	f.RTTSamples++
	f.lastAckAt = now
	f.rtoBackoff = 1
	if p.Seq > f.largestAcked {
		f.largestAcked = p.Seq
	}

	e := AckEvent{
		PktNum: p.Seq, Bytes: ackedBytes, RTT: rttSample, Now: now,
		SRTT: f.srtt, MinRTT: f.minRTTOrZero(), Inflight: f.inflight,
	}
	f.detectLosses()
	f.CC.OnAck(f, e)
	if f.OnAckHook != nil {
		f.OnAckHook(e)
	}
	f.armRTO()
	f.trySend()
}

func (f *Flow) updateRTT(sample float64) {
	if sample < f.minRTT {
		f.minRTT = sample
	}
	if f.srtt == 0 {
		f.srtt = sample
		f.rttvar = sample / 2
		return
	}
	const alpha, beta = 1.0 / 8, 1.0 / 4
	f.rttvar = (1-beta)*f.rttvar + beta*math.Abs(f.srtt-sample)
	f.srtt = (1-alpha)*f.srtt + alpha*sample
}

// detectLosses declares packets lost when 3 higher-numbered packets have
// been acknowledged (QUIC packet-threshold detection). It walks only the
// in-order prefix of outstanding packet numbers below the threshold.
func (f *Flow) detectLosses() {
	const reorderThreshold = 3
	threshold := f.largestAcked - reorderThreshold
	if threshold < 0 {
		return
	}
	var lostBytes, lostPkts int
	var highest int64
	mask := len(f.ring) - 1
	for f.base < f.nextPktNum && f.base <= threshold {
		rec := &f.ring[f.head]
		if rec.state == pktOutstanding {
			rec.state = pktLost
			lostBytes += rec.bytes
			lostPkts++
			highest = f.base
			f.inflight--
		}
		f.head = (f.head + 1) & mask
		f.base++
	}
	if lostPkts == 0 {
		return
	}
	f.LostBytes += int64(lostBytes)
	f.LostPackets += int64(lostPkts)
	f.mtpLost += lostBytes
	f.metrics.PacketsLostReorder.Add(int64(lostPkts))
	ev := LossEvent{PktNum: highest, Bytes: lostBytes, Packets: lostPkts, Now: f.Sim.Now()}
	f.CC.OnLoss(f, ev)
	if f.OnLossHook != nil {
		f.OnLossHook(ev)
	}
}

// LargestAcked exposes the highest acknowledged packet number, used by CC
// schemes to implement once-per-window reaction (fast-recovery style).
func (f *Flow) LargestAcked() int64 { return f.largestAcked }

// NextPktNum exposes the next packet number to be sent.
func (f *Flow) NextPktNum() int64 { return f.nextPktNum }

func (f *Flow) rto() float64 {
	if f.srtt == 0 {
		return 1.0 * f.rtoBackoff
	}
	rto := f.srtt + 4*f.rttvar
	if rto < 0.2 {
		rto = 0.2
	}
	return rto * f.rtoBackoff
}

func (f *Flow) armRTO() {
	f.rtoTimer.Cancel()
	if !f.active {
		return
	}
	f.rtoTimer = f.Sim.After(f.rto(), f.onRTO)
}

func (f *Flow) onRTO() {
	if !f.active {
		return
	}
	if f.inflight == 0 {
		// Nothing outstanding (cwnd-limited edge); try sending again.
		f.trySend()
		f.armRTO()
		return
	}
	// Declare everything outstanding lost.
	var lostBytes, lostPkts int
	var highest int64
	if n := int(f.nextPktNum - f.base); n > 0 {
		mask := len(f.ring) - 1
		for i := 0; i < n; i++ {
			rec := &f.ring[(f.head+i)&mask]
			if rec.state != pktOutstanding {
				continue
			}
			rec.state = pktLost
			lostBytes += rec.bytes
			lostPkts++
			highest = f.base + int64(i)
		}
		// The whole window is resolved; drop it in one step.
		f.head = (f.head + n) & mask
		f.base = f.nextPktNum
	}
	f.inflight = 0
	if lostPkts > 0 {
		f.LostBytes += int64(lostBytes)
		f.LostPackets += int64(lostPkts)
		f.mtpLost += lostBytes
		f.metrics.PacketsLostTimeout.Add(int64(lostPkts))
		f.metrics.Timeouts.Inc()
		ev := LossEvent{
			PktNum: highest, Bytes: lostBytes, Packets: lostPkts,
			Timeout: true, Now: f.Sim.Now(),
		}
		f.CC.OnLoss(f, ev)
		if f.OnLossHook != nil {
			f.OnLossHook(ev)
		}
	}
	f.rtoBackoff *= 2
	if f.rtoBackoff > 64 {
		f.rtoBackoff = 64
	}
	f.armRTO()
	f.trySend()
}
