package transport

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netem"
	"repro/internal/sim"
)

// chaosCC drives the flow with randomized cwnd/pacing decisions to stress
// accounting invariants.
type chaosCC struct {
	rng *rand.Rand
}

func (c *chaosCC) Name() string { return "chaos" }
func (c *chaosCC) Init(f *Flow) { f.ScheduleMTP(0.01) }
func (c *chaosCC) OnAck(f *Flow, e AckEvent) {
	if c.rng.Float64() < 0.1 {
		f.SetCwnd(f.Cwnd() * (0.5 + c.rng.Float64()))
	}
}
func (c *chaosCC) OnLoss(f *Flow, e LossEvent) {
	if c.rng.Float64() < 0.5 {
		f.SetCwnd(f.Cwnd() / 2)
	}
}
func (c *chaosCC) OnMTP(f *Flow, st MTPStats) {
	switch c.rng.Intn(4) {
	case 0:
		f.SetCwnd(c.rng.Float64() * 500)
	case 1:
		f.SetPacingBps(c.rng.Float64() * 200e6)
	case 2:
		f.SetPacingBps(0)
		f.SetCwnd(10 + c.rng.Float64()*100)
	}
	f.ScheduleMTP(0.005 + c.rng.Float64()*0.05)
}

// Property: under arbitrary controller behaviour and arbitrary link
// conditions, the flow's byte accounting stays consistent and inflight
// never goes negative.
func TestAccountingInvariantsUnderChaos(t *testing.T) {
	f := func(seed int64, rateU, lossU uint8) bool {
		rate := 1e6 + float64(rateU)*1e6     // 1..256 Mbps
		lossProb := float64(lossU%50) / 1000 // 0..4.9%
		s := sim.New(seed)
		d := netem.NewDumbbell(s, netem.DumbbellConfig{
			RateBps: rate, BaseRTT: 0.020,
			QueueBytes: 30000, LossProb: lossProb,
		})
		fl := NewFlow(s, FlowConfig{
			ID: 0, Path: d.FlowPath(0),
			CC: &chaosCC{rng: rand.New(rand.NewSource(seed))},
		})
		fl.Start()
		for i := 0; i < 40; i++ {
			s.Run(float64(i) * 0.25)
			if fl.Inflight() < 0 {
				t.Logf("negative inflight at t=%v", s.Now())
				return false
			}
		}
		// Conservation: every sent byte is delivered, lost, or in flight.
		accounted := fl.DeliveredBytes + fl.LostBytes + int64(fl.Inflight())*MSS
		if accounted != fl.SentBytes {
			t.Logf("sent %d != delivered %d + lost %d + inflight %d",
				fl.SentBytes, fl.DeliveredBytes, fl.LostBytes, int64(fl.Inflight())*MSS)
			return false
		}
		if fl.MinRTT() < 0.020 && fl.RTTSamples > 0 {
			t.Logf("minRTT %v below propagation delay", fl.MinRTT())
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: pacing rate bounds the send rate over any window.
func TestPacingBoundsSendRate(t *testing.T) {
	f := func(rateU uint8) bool {
		pacing := 1e6 + float64(rateU)*0.5e6
		s := sim.New(3)
		d := netem.NewDumbbell(s, netem.DumbbellConfig{
			RateBps: 1e9, BaseRTT: 0.010, QueueBytes: 1 << 30,
		})
		cc := &recorderCC{pacing: pacing, fixCwnd: 1e9}
		fl := NewFlow(s, FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc})
		fl.Start()
		s.Run(2)
		sendRate := float64(fl.SentBytes) * 8 / 2
		// Allow the initial burst plus 5% scheduling slack.
		return sendRate <= pacing*1.05+10*MSS*8
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(19))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the flow never delivers more than the link can carry.
func TestLinkCapacityIsRespected(t *testing.T) {
	f := func(rateU uint8) bool {
		rate := 5e6 + float64(rateU)*1e6
		s := sim.New(7)
		d := netem.NewDumbbell(s, netem.DumbbellConfig{
			RateBps: rate, BaseRTT: 0.020, QueueBytes: 1 << 20,
		})
		cc := &recorderCC{fixCwnd: 5000}
		fl := NewFlow(s, FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc})
		fl.Start()
		s.Run(3)
		return float64(fl.DeliveredBytes)*8/3 <= rate*1.01
	}
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
