// The generation store: the pilot's on-disk record of every policy it has
// promoted. Each promotion seals the candidate actor into an immutable
// artifact file (core.SaveSealedPolicy — CRC-guarded, atomic) named by its
// generation number, and a manifest records the lineage: which generation
// is serving, which one it descended from, and which ones were rolled
// back. Rollback is therefore instant and needs no trainer state: the
// previous sealed artifact is still on disk, pointer-swap the manifest and
// re-promote the file. History is bounded — pruning keeps the newest K
// generations plus the serving one and its parent (the rollback target),
// so a long-running pilot cannot fill the disk.

package pilot

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/nn"
)

// Generation statuses recorded in the manifest.
const (
	// StatusServing marks the generation the manifest points at.
	StatusServing = "serving"
	// StatusSuperseded marks a generation replaced by a newer promotion.
	StatusSuperseded = "superseded"
	// StatusRolledBack marks a generation evicted by a health regression;
	// the pilot never re-promotes a rolled-back generation.
	StatusRolledBack = "rolled-back"
)

// Generation is one sealed promotion in the store's lineage.
type Generation struct {
	Gen         uint64 `json:"gen"`
	Parent      uint64 `json:"parent"` // 0 = promoted over the reference policy
	File        string `json:"file"`   // artifact basename within the store dir
	CreatedUnix int64  `json:"created_unix"`
	Episodes    int    `json:"episodes,omitempty"`
	Status      string `json:"status"`
	Note        string `json:"note,omitempty"`
}

// manifest is the store's durable index, written atomically on every
// mutation so a crash never leaves the lineage ambiguous.
type manifest struct {
	Current     uint64       `json:"current"` // serving generation; 0 = none
	Next        uint64       `json:"next"`    // next generation number to assign
	Generations []Generation `json:"generations"`
}

// Store is the on-disk generation store. Not goroutine-safe: the supervisor
// goroutine owns it.
type Store struct {
	dir  string
	keep int
	m    manifest
}

const manifestName = "manifest.json"

// OpenStore opens (or initializes) the generation store in dir. After each
// commit, at most keep generations are retained on disk — the serving
// generation and its parent (the rollback target) are always among the
// survivors, so keep is effectively floored at 2.
func OpenStore(dir string, keep int) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pilot: store dir: %w", err)
	}
	s := &Store{dir: dir, keep: keep, m: manifest{Next: 1}}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("pilot: read manifest: %w", err)
	}
	if err := json.Unmarshal(data, &s.m); err != nil {
		return nil, fmt.Errorf("pilot: parse manifest: %w", err)
	}
	if s.m.Next < 1 {
		s.m.Next = 1
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Generations returns the recorded lineage (ascending generation order).
func (s *Store) Generations() []Generation {
	out := append([]Generation(nil), s.m.Generations...)
	sort.Slice(out, func(i, j int) bool { return out[i].Gen < out[j].Gen })
	return out
}

// Current returns the serving generation, or false when nothing has been
// promoted yet (the fleet is on the boot policy).
func (s *Store) Current() (Generation, bool) {
	return s.find(s.m.Current)
}

func (s *Store) find(gen uint64) (Generation, bool) {
	if gen == 0 {
		return Generation{}, false
	}
	for _, g := range s.m.Generations {
		if g.Gen == gen {
			return g, true
		}
	}
	return Generation{}, false
}

// Path returns the artifact path for a recorded generation.
func (s *Store) Path(g Generation) string { return filepath.Join(s.dir, g.File) }

// save writes the manifest atomically.
func (s *Store) save() error {
	data, err := json.MarshalIndent(&s.m, "", "  ")
	if err != nil {
		return fmt.Errorf("pilot: marshal manifest: %w", err)
	}
	return ckpt.WriteAtomic(filepath.Join(s.dir, manifestName), append(data, '\n'), 0o644)
}

// setStatus updates one generation's recorded status in place.
func (s *Store) setStatus(gen uint64, status string) {
	for i := range s.m.Generations {
		if s.m.Generations[i].Gen == gen {
			s.m.Generations[i].Status = status
		}
	}
}

// Commit seals net as the next generation: the artifact is written (atomic,
// CRC-sealed) before the manifest flips to it, so a crash between the two
// writes leaves the previous generation serving and an orphan file the next
// prune collects. meta's Generation/Parent/CreatedUnix are filled by the
// store; callers supply the provenance fields (Reward, Episodes, Note).
func (s *Store) Commit(net *nn.MLP, meta core.PolicyMeta, nowUnix int64) (Generation, error) {
	gen := s.m.Next
	g := Generation{
		Gen:         gen,
		Parent:      s.m.Current,
		File:        fmt.Sprintf("gen-%08d.policy", gen),
		CreatedUnix: nowUnix,
		Episodes:    meta.Episodes,
		Status:      StatusServing,
		Note:        meta.Note,
	}
	meta.Generation = gen
	meta.Parent = g.Parent
	meta.CreatedUnix = nowUnix
	if err := core.SaveSealedPolicy(s.Path(g), net, meta); err != nil {
		return Generation{}, err
	}
	s.setStatus(s.m.Current, StatusSuperseded)
	s.m.Generations = append(s.m.Generations, g)
	s.m.Current = gen
	s.m.Next = gen + 1
	s.prune()
	if err := s.save(); err != nil {
		return Generation{}, err
	}
	return g, nil
}

// Rollback flips the manifest back to the serving generation's parent and
// marks the evicted generation rolled-back. Returns the restored
// generation; ok is false when there is nothing to roll back to (the parent
// is the pre-pilot boot policy — the caller handles that case by
// re-promoting its reference artifact or restarting the daemon's boot
// policy). The evicted artifact file is kept (pruning will collect it) so
// a post-mortem can inspect what went wrong.
func (s *Store) Rollback() (Generation, bool, error) {
	cur, ok := s.find(s.m.Current)
	if !ok {
		return Generation{}, false, fmt.Errorf("pilot: rollback with no serving generation")
	}
	s.setStatus(cur.Gen, StatusRolledBack)
	parent, ok := s.find(cur.Parent)
	if !ok {
		// Rolled back past the first promotion: nothing of ours serves.
		s.m.Current = 0
		if err := s.save(); err != nil {
			return Generation{}, false, err
		}
		return Generation{}, false, nil
	}
	s.setStatus(parent.Gen, StatusServing)
	s.m.Current = parent.Gen
	if err := s.save(); err != nil {
		return Generation{}, false, err
	}
	return parent, true, nil
}

// prune bounds on-disk history at keep generations, deleting oldest first;
// the serving generation and its parent (the rollback target) are never
// deleted regardless of age, so the retained count is max(keep, protected).
// Pruned artifacts are deleted from disk and dropped from the manifest;
// deletion failures are ignored (a later prune retries).
func (s *Store) prune() {
	if len(s.m.Generations) == 0 {
		return
	}
	cur, _ := s.find(s.m.Current)
	protected := map[uint64]bool{s.m.Current: true, cur.Parent: true}
	sorted := s.Generations() // ascending
	excess := len(sorted) - s.keep
	kept := s.m.Generations[:0]
	for _, g := range sorted {
		if excess > 0 && !protected[g.Gen] {
			os.Remove(s.Path(g))
			excess--
			continue
		}
		kept = append(kept, g)
	}
	s.m.Generations = kept
}
