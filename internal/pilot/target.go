// Promotion targets: how a sealed generation artifact reaches the serving
// fleet, and how the fleet's health flows back. Two transports cover the
// deployment shapes this repo runs:
//
//   - HostTarget drives an in-process serve.PolicyHost through the
//     Reloader's validated zero-drop hot-swap path — the embedded shape
//     (pilot and server in one process) and the shape the e2e tests pin.
//   - FileTarget publishes the artifact to the weights file an external
//     astraea-serve -reload daemon watches, and reads health back off its
//     /metrics endpoint — the split-process shape CI's smoke runs.
//
// Both promote by atomically replacing the serving path with the sealed
// artifact bytes: the CRC seal means a torn or corrupt publish is refused
// by the loader on the other side (policy_reload_failures_total) while the
// incumbent keeps serving.

package pilot

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// Target is where promotions go and where health comes from. Promote
// installs the sealed artifact at path onto the fleet (atomically: on error
// the previous policy is still serving); Health reads the fleet's
// cumulative degradation counters.
type Target interface {
	Promote(path string, meta core.PolicyMeta) error
	Health() (HealthSample, error)
}

// publish atomically replaces dst with the artifact at src.
func publish(src, dst string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return fmt.Errorf("pilot: read artifact: %w", err)
	}
	return ckpt.WriteAtomic(dst, data, 0o644)
}

// HostTarget promotes onto an in-process PolicyHost via a serve.Reloader.
type HostTarget struct {
	reloader    *serve.Reloader
	reg         *telemetry.Registry
	servingPath string
}

// NewHostTarget builds the in-process target: promotions publish the
// artifact to servingPath and hot-swap host through a Reloader validated
// against cfg (quantize-on-promote enabled — the serving default). reg is
// both where the Reloader's counters register and where Health reads the
// serve_* counters back; it must be the registry the host is instrumented
// on.
func NewHostTarget(host serve.PolicyHost, servingPath string, cfg core.Config, reg *telemetry.Registry) *HostTarget {
	rl := serve.NewReloader(host, servingPath, cfg)
	rl.Instrument(reg)
	return &HostTarget{reloader: rl, reg: reg, servingPath: servingPath}
}

// Promote publishes the artifact and hot-swaps it in. On reload failure the
// incumbent keeps serving and the error is returned (and counted on
// policy_reload_failures_total by the Reloader).
func (t *HostTarget) Promote(path string, meta core.PolicyMeta) error {
	if err := publish(path, t.servingPath); err != nil {
		return err
	}
	_, err := t.reloader.Reload()
	return err
}

// Health reads the serving counters off the shared registry.
func (t *HostTarget) Health() (HealthSample, error) {
	snap := t.reg.Snapshot()
	var h HealthSample
	if m, ok := snap.Get("serve_requests_total"); ok {
		h.Requests = m.Count
	}
	if m, ok := snap.Get("serve_fallback_total"); ok {
		h.Fallbacks = m.Count
	}
	if m, ok := snap.Get("serve_deadline_miss_total"); ok {
		h.DeadlineMisses = m.Count
	}
	return h, nil
}

// FileTarget promotes to an external astraea-serve daemon: the artifact is
// published to the weights file the daemon's -reload watcher polls, and
// health is scraped from its /metrics endpoint.
type FileTarget struct {
	// ServingPath is the weights file the daemon watches.
	ServingPath string
	// MetricsURL is the daemon's /metrics endpoint (e.g.
	// "http://127.0.0.1:9090/metrics"). Empty disables confirmation and
	// makes Health return an error.
	MetricsURL string
	// ConfirmTimeout bounds how long Promote waits for the daemon's
	// serve_policy_generation gauge to reach the promoted generation
	// (0 = publish without confirmation). The wait covers the watcher's
	// poll interval plus the reload itself.
	ConfirmTimeout time.Duration
	// Client for scrapes; nil uses http.DefaultClient.
	Client *http.Client
}

// Promote publishes the artifact and, when confirmation is configured,
// waits for the daemon to report the new generation. A daemon that refuses
// the artifact (corrupt publish, wrong dimensions) keeps its old generation
// and the confirmation times out — promotion fails without ever breaking
// the fleet.
func (t *FileTarget) Promote(path string, meta core.PolicyMeta) error {
	if err := publish(path, t.ServingPath); err != nil {
		return err
	}
	if t.MetricsURL == "" || t.ConfirmTimeout <= 0 {
		return nil
	}
	deadline := time.Now().Add(t.ConfirmTimeout)
	for {
		vals, err := t.scrape()
		if err == nil {
			if gen, ok := vals["serve_policy_generation"]; ok && uint64(gen) == meta.Generation {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("pilot: daemon did not confirm generation %d within %s",
				meta.Generation, t.ConfirmTimeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Health scrapes the daemon's degradation counters.
func (t *FileTarget) Health() (HealthSample, error) {
	vals, err := t.scrape()
	if err != nil {
		return HealthSample{}, err
	}
	return HealthSample{
		Requests:       int64(vals["serve_requests_total"]),
		Fallbacks:      int64(vals["serve_fallback_total"]),
		DeadlineMisses: int64(vals["serve_deadline_miss_total"]),
	}, nil
}

// scrape fetches and parses the Prometheus text exposition into a
// name → value map (unlabeled series only, which is all this repo emits
// for counters and gauges).
func (t *FileTarget) scrape() (map[string]float64, error) {
	if t.MetricsURL == "" {
		return nil, fmt.Errorf("pilot: file target has no metrics URL")
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(t.MetricsURL)
	if err != nil {
		return nil, fmt.Errorf("pilot: scrape %s: %w", t.MetricsURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("pilot: scrape %s: status %s", t.MetricsURL, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, fmt.Errorf("pilot: scrape %s: %w", t.MetricsURL, err)
	}
	return parsePrometheus(string(body)), nil
}

// parsePrometheus extracts unlabeled `name value` samples from the text
// exposition format, skipping comments and labeled series.
func parsePrometheus(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.ContainsAny(fields[0], "{}") {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out
}
