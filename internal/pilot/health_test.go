package pilot

import "testing"

// TestHealthRegressedBoundary pins the rollback trigger arithmetic: the
// rate comparison is strict (exactly MaxDegradedRate is healthy), windows
// below MinRequests are inconclusive, and deadline misses ride inside the
// fallback count rather than double-counting.
func TestHealthRegressedBoundary(t *testing.T) {
	hp := HealthPolicy{ProbationSeconds: 5, IntervalSeconds: 0.5, MinRequests: 100, MaxDegradedRate: 0.20}
	base := HealthSample{Requests: 1000, Fallbacks: 10, DeadlineMisses: 5}
	cases := []struct {
		name string
		req  int64 // delta requests
		fb   int64 // delta fallbacks
		want bool
	}{
		{"healthy", 500, 10, false},
		{"exactly at rate", 500, 100, false}, // 0.20 is not > 0.20
		{"one over", 500, 101, true},
		{"all degraded", 200, 200, true},
		{"below min requests", 99, 99, false}, // inconclusive, even at 100%
		{"at min requests all degraded", 100, 100, true},
		{"idle window", 0, 0, false},
	}
	for _, tc := range cases {
		after := HealthSample{
			Requests:  base.Requests + tc.req,
			Fallbacks: base.Fallbacks + tc.fb,
		}
		if got := hp.Regressed(base, after); got != tc.want {
			t.Errorf("%s: Regressed = %v, want %v", tc.name, got, tc.want)
		}
	}
	// A counter that appears to move backwards (server restart) is
	// inconclusive, never a rollback.
	if hp.Regressed(base, HealthSample{Requests: 10, Fallbacks: 10}) {
		t.Error("counter reset judged as regression")
	}
}

// TestParsePrometheus: the scrape parser reads unlabeled counters and
// gauges, skipping comments, histograms' labeled buckets, and garbage.
func TestParsePrometheus(t *testing.T) {
	text := `# HELP serve_requests_total requests read off the wire
# TYPE serve_requests_total counter
serve_requests_total 12345
serve_policy_generation 7
serve_e2e_latency_seconds_bucket{le="0.001"} 42
serve_e2e_latency_seconds_sum 1.5
not a sample line
bad_value abc
`
	vals := parsePrometheus(text)
	if vals["serve_requests_total"] != 12345 {
		t.Fatalf("requests = %v", vals["serve_requests_total"])
	}
	if vals["serve_policy_generation"] != 7 {
		t.Fatalf("generation = %v", vals["serve_policy_generation"])
	}
	if _, ok := vals["serve_e2e_latency_seconds_bucket"]; ok {
		t.Fatal("labeled series parsed")
	}
	if vals["serve_e2e_latency_seconds_sum"] != 1.5 {
		t.Fatalf("sum = %v", vals["serve_e2e_latency_seconds_sum"])
	}
	if _, ok := vals["bad_value"]; ok {
		t.Fatal("unparseable value kept")
	}
}
