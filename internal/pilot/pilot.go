// Package pilot closes the learning loop: it supervises continuous
// training, gates candidate policies against the serving incumbent, and
// promotes survivors into the live fleet with instant rollback on
// regression. The state machine per round:
//
//	train N episodes ──► snapshot candidate ──► regression gate
//	     ▲                                          │pass        │fail
//	     │                                          ▼            │
//	     │                                   seal + promote      │
//	     │                                          │            │
//	     │                                    probation watch    │
//	     │                                     │healthy │regressed
//	     └─────────────────────────────────────┴────────┤
//	                                                    ▼
//	                                           rollback to parent
//
// Training runs on env.ParallelLearner (N parallel environment instances)
// with periodic atomic checkpoints and bounded rotation. The gate replays
// candidate and incumbent through the fixed tournament scenario suite and
// refuses any candidate below the utilization/fairness/delay floors
// (internal/tournament.RunGate). Promotion seals the candidate into a
// CRC-guarded generation artifact (internal/core.SaveSealedPolicy), records
// it in the generation store, and hot-swaps it through the serve reload
// path — zero dropped requests, quantize-on-promote. After promotion the
// fleet's own degradation telemetry is watched for a probation window; a
// regression rolls the manifest and the fleet back to the parent
// generation, which is still sealed on disk. Every decision is observable:
// pilot_generation, pilot_promotions_total, pilot_rollbacks_total,
// pilot_gate_failures_total.
package pilot

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/telemetry"
	"repro/internal/tournament"
)

// Options configures a Supervisor.
type Options struct {
	// Store is the generation store (required).
	Store *Store
	// Learner is the training loop (required). The supervisor owns it for
	// the duration of Run: it installs the AfterEpisode checkpoint hook.
	Learner *env.ParallelLearner
	// Target is the serving fleet (required).
	Target Target
	// Boot, when the store is empty, is sealed as the first generation and
	// promoted before training starts — it must be the policy the fleet is
	// serving now, so rollback always has a sealed artifact to land on.
	// Nil defaults to a snapshot of the learner's current actor.
	Boot *core.MLPPolicy
	// EpisodesPerRound is the gate cadence: episodes trained between
	// candidate evaluations (default 25).
	EpisodesPerRound int
	// Rounds is how many gate evaluations to run (default 1).
	Rounds int
	// Gate parameterizes the regression suite; zero value = defaults.
	Gate tournament.GateConfig
	// Health is the probation rule; zero value = DefaultHealthPolicy.
	Health HealthPolicy
	// CheckpointPath, when set, makes training crash-safe: the learner
	// state is checkpointed there every CheckpointEvery episodes (default
	// 25), with CheckpointKeep rotated copies; the copy behind each
	// promoted generation is pinned so rotation never deletes the promoted
	// lineage.
	CheckpointPath  string
	CheckpointEvery int
	CheckpointKeep  int
	// Registry receives pilot telemetry; nil disables.
	Registry *telemetry.Registry
	// Logf receives progress lines; nil discards.
	Logf func(format string, args ...any)
	// nowUnix is the clock for artifact metadata (tests inject; nil uses
	// time.Now).
	nowUnix func() int64
}

// Supervisor drives the closed loop. Build with New, run with Run.
type Supervisor struct {
	o Options

	// Telemetry (nil-safe when uninstrumented).
	gGeneration *telemetry.Gauge
	mRounds     *telemetry.Counter
	mGateFails  *telemetry.Counter
	mPromotions *telemetry.Counter
	mRollbacks  *telemetry.Counter
	mPromoteErr *telemetry.Counter
}

// New validates opts and builds a supervisor.
func New(opts Options) (*Supervisor, error) {
	if opts.Store == nil || opts.Learner == nil || opts.Target == nil {
		return nil, fmt.Errorf("pilot: Store, Learner, and Target are all required")
	}
	if opts.EpisodesPerRound <= 0 {
		opts.EpisodesPerRound = 25
	}
	if opts.Rounds <= 0 {
		opts.Rounds = 1
	}
	if opts.Health == (HealthPolicy{}) {
		opts.Health = DefaultHealthPolicy()
	}
	if err := opts.Health.validate(); err != nil {
		return nil, err
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 25
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.nowUnix == nil {
		opts.nowUnix = func() int64 { return time.Now().Unix() }
	}
	s := &Supervisor{o: opts}
	if reg := opts.Registry; reg != nil {
		s.gGeneration = reg.Gauge("pilot_generation", "generation currently promoted to the fleet")
		s.mRounds = reg.Counter("pilot_rounds_total", "training rounds completed")
		s.mGateFails = reg.Counter("pilot_gate_failures_total", "candidates refused by the regression gate")
		s.mPromotions = reg.Counter("pilot_promotions_total", "generations promoted to the fleet")
		s.mRollbacks = reg.Counter("pilot_rollbacks_total", "health-triggered rollbacks")
		s.mPromoteErr = reg.Counter("pilot_promote_errors_total", "promotions refused by the serving fleet")
	}
	return s, nil
}

// Run executes the closed loop: Rounds iterations of train → gate →
// promote → probation. Returns on completion, on ctx cancellation (the
// in-flight training round drains first), or on an unrecoverable error —
// gate refusals and health rollbacks are normal operation, not errors.
func (s *Supervisor) Run(ctx context.Context) error {
	o := s.o
	if err := s.ensureBoot(); err != nil {
		return err
	}
	s.installCheckpointHook(ctx)
	defer func() { o.Learner.AfterEpisode = nil }()

	for round := 1; round <= o.Rounds; round++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		o.Learner.Train(o.EpisodesPerRound)
		s.mRounds.Inc()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		candidate := o.Learner.SnapshotActor()
		incumbent, err := s.incumbentPolicy()
		if err != nil {
			return err
		}
		rep, err := tournament.RunGate(candidate, incumbent, o.Gate)
		if err != nil {
			return fmt.Errorf("pilot: gate: %w", err)
		}
		if !rep.Pass {
			s.mGateFails.Inc()
			o.Logf("round %d: gate refused candidate at episode %d: %v",
				round, o.Learner.Episodes, rep.Reasons)
			continue
		}
		o.Logf("round %d: gate passed (candidate score %.4f vs incumbent %.4f)",
			round, rep.Candidate.Score, rep.Incumbent.Score)

		g, err := s.promote(candidate, fmt.Sprintf("round %d gate %.4f vs %.4f",
			round, rep.Candidate.Score, rep.Incumbent.Score))
		if err != nil {
			// The fleet refused the artifact: the incumbent is still
			// serving. Repair the manifest and keep training.
			s.mPromoteErr.Inc()
			o.Logf("round %d: promotion refused: %v", round, err)
			if _, _, rbErr := o.Store.Rollback(); rbErr != nil {
				return rbErr
			}
			continue
		}
		o.Logf("round %d: promoted generation %d (episode %d)", round, g.Gen, o.Learner.Episodes)

		if s.probation(ctx) {
			if err := s.rollback(g); err != nil {
				return err
			}
		}
	}
	return nil
}

// ensureBoot seals and promotes the boot policy when the store is empty, so
// the lineage starts at a generation whose artifact is on disk and every
// later rollback has a landing place.
func (s *Supervisor) ensureBoot() error {
	if cur, ok := s.o.Store.Current(); ok {
		s.gGeneration.Set(float64(cur.Gen))
		return nil
	}
	boot := s.o.Boot
	if boot == nil {
		boot = s.o.Learner.SnapshotActor()
	}
	g, err := s.o.Store.Commit(boot.Net, core.PolicyMeta{
		Reward: s.o.Learner.Cfg.RewardName(), Note: "boot baseline",
	}, s.o.nowUnix())
	if err != nil {
		return err
	}
	if err := s.o.Target.Promote(s.o.Store.Path(g), core.PolicyMeta{Generation: g.Gen}); err != nil {
		return fmt.Errorf("pilot: boot promotion: %w", err)
	}
	s.mPromotions.Inc()
	s.gGeneration.Set(float64(g.Gen))
	s.o.Logf("sealed boot baseline as generation %d", g.Gen)
	return nil
}

// incumbentPolicy loads the serving generation's sealed actor (float form —
// the gate compares like against like; quantization happens at promotion).
func (s *Supervisor) incumbentPolicy() (core.Policy, error) {
	cur, ok := s.o.Store.Current()
	if !ok {
		return nil, fmt.Errorf("pilot: no serving generation")
	}
	p, _, err := core.LoadSealedPolicy(s.o.Store.Path(cur), s.o.Learner.Cfg)
	return p, err
}

// promote seals the candidate as the next generation, publishes it to the
// fleet, and pins the training checkpoint that produced it.
func (s *Supervisor) promote(candidate *core.MLPPolicy, note string) (Generation, error) {
	o := s.o
	g, err := o.Store.Commit(candidate.Net, core.PolicyMeta{
		Reward:   o.Learner.Cfg.RewardName(),
		Episodes: o.Learner.Episodes,
		Note:     note,
	}, o.nowUnix())
	if err != nil {
		return Generation{}, err
	}
	if err := o.Target.Promote(o.Store.Path(g), core.PolicyMeta{Generation: g.Gen, Parent: g.Parent}); err != nil {
		return Generation{}, err
	}
	if o.CheckpointPath != "" {
		// Pin the checkpoint series member behind this promotion so
		// rotation keeps the state an operator would resume from.
		member := ckpt.SeriesName(o.CheckpointPath, o.Learner.Episodes)
		if err := o.Learner.SaveCheckpoint(member); err != nil {
			return Generation{}, err
		}
		if err := ckpt.WritePin(o.CheckpointPath, member); err != nil {
			return Generation{}, err
		}
	}
	s.mPromotions.Inc()
	s.gGeneration.Set(float64(g.Gen))
	return g, nil
}

// probation watches the fleet's degradation counters for the health
// window; true means the new generation regressed and must be rolled back.
// Each interval is judged independently against the previous sample, so a
// regression surfaces within roughly one interval plus MinRequests of
// traffic. Health read errors end the watch inconclusively (healthy): a
// scrape outage must not trigger a policy rollback.
func (s *Supervisor) probation(ctx context.Context) bool {
	hp := s.o.Health
	if hp.ProbationSeconds <= 0 {
		return false
	}
	interval := time.Duration(hp.IntervalSeconds * float64(time.Second))
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	before, err := s.o.Target.Health()
	if err != nil {
		return false
	}
	deadline := time.Now().Add(time.Duration(hp.ProbationSeconds * float64(time.Second)))
	for time.Now().Before(deadline) {
		select {
		case <-ctx.Done():
			return false
		case <-time.After(interval):
		}
		after, err := s.o.Target.Health()
		if err != nil {
			return false
		}
		if hp.Regressed(before, after) {
			s.o.Logf("health regression: %+v -> %+v", before, after)
			return true
		}
		before = after
	}
	return false
}

// rollback restores the evicted generation's parent on disk and on the
// fleet — the parent's sealed artifact is re-published through the same
// promotion path, so the swap is as safe as the one it undoes.
func (s *Supervisor) rollback(bad Generation) error {
	prev, ok, err := s.o.Store.Rollback()
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("pilot: generation %d regressed but has no parent artifact to roll back to", bad.Gen)
	}
	if err := s.o.Target.Promote(s.o.Store.Path(prev), core.PolicyMeta{Generation: prev.Gen, Parent: prev.Parent}); err != nil {
		return fmt.Errorf("pilot: rollback to generation %d: %w", prev.Gen, err)
	}
	s.mRollbacks.Inc()
	s.gGeneration.Set(float64(prev.Gen))
	s.o.Logf("rolled back generation %d -> %d", bad.Gen, prev.Gen)
	return nil
}

// installCheckpointHook wires periodic crash-safe checkpointing (and ctx
// cancellation) into the training loop's per-episode hook.
func (s *Supervisor) installCheckpointHook(ctx context.Context) {
	o := s.o
	o.Learner.AfterEpisode = func(episodes int) {
		if ctx.Err() != nil {
			o.Learner.Stop()
			return
		}
		if o.CheckpointPath == "" || episodes%o.CheckpointEvery != 0 {
			return
		}
		if err := o.Learner.SaveCheckpoint(o.CheckpointPath); err != nil {
			o.Logf("checkpoint: %v", err)
			return
		}
		if o.CheckpointKeep > 0 {
			member := ckpt.SeriesName(o.CheckpointPath, episodes)
			if err := o.Learner.SaveCheckpoint(member); err != nil {
				o.Logf("checkpoint series: %v", err)
				return
			}
			if _, err := ckpt.PruneSeries(o.CheckpointPath, o.CheckpointKeep, ckpt.ReadPin(o.CheckpointPath)); err != nil {
				o.Logf("checkpoint prune: %v", err)
			}
		}
	}
}
