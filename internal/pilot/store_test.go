package pilot

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
)

func storeActor(t *testing.T, seed int64) *nn.MLP {
	t.Helper()
	cfg := core.DefaultConfig()
	return nn.NewMLP(rand.New(rand.NewSource(seed)), nn.ReLU, nn.Tanh, cfg.StateDim(), 4, 1)
}

// TestStoreLineage: commits chain generations, the manifest survives a
// reopen, rollback restores the parent and marks the evicted generation,
// and a rolled-back store commits the next generation onto the restored
// parent (the bad lineage is abandoned, not resumed).
func TestStoreLineage(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Current(); ok {
		t.Fatal("empty store has a current generation")
	}

	g1, err := s.Commit(storeActor(t, 1), core.PolicyMeta{Note: "boot"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := s.Commit(storeActor(t, 2), core.PolicyMeta{Episodes: 50}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Gen != 1 || g2.Gen != 2 || g2.Parent != 1 {
		t.Fatalf("lineage: %+v %+v", g1, g2)
	}

	// The sealed artifact is loadable and carries the store-assigned meta.
	_, meta, err := core.LoadSealedPolicy(s.Path(g2), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 2 || meta.Parent != 1 || meta.CreatedUnix != 2000 || meta.Episodes != 50 {
		t.Fatalf("artifact meta %+v", meta)
	}

	// Reopen: the manifest round-trips.
	s2, err := OpenStore(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	cur, ok := s2.Current()
	if !ok || cur.Gen != 2 || cur.Status != StatusServing {
		t.Fatalf("reopened current %+v ok=%v", cur, ok)
	}

	// Rollback: parent serves again, the evicted generation is marked, its
	// artifact file stays for post-mortem.
	prev, ok, err := s2.Rollback()
	if err != nil || !ok || prev.Gen != 1 {
		t.Fatalf("rollback: %+v ok=%v err=%v", prev, ok, err)
	}
	gens := s2.Generations()
	if gens[0].Status != StatusServing || gens[1].Status != StatusRolledBack {
		t.Fatalf("statuses after rollback: %+v", gens)
	}
	if _, err := os.Stat(s2.Path(gens[1])); err != nil {
		t.Fatalf("evicted artifact deleted: %v", err)
	}

	// The next commit descends from the restored parent, not the evicted
	// generation, and takes a fresh generation number.
	g3, err := s2.Commit(storeActor(t, 3), core.PolicyMeta{}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if g3.Gen != 3 || g3.Parent != 1 {
		t.Fatalf("post-rollback commit %+v", g3)
	}

	// Rolling back to before the first promotion reports no landing place.
	if _, ok, err := s2.Rollback(); err != nil || !ok {
		t.Fatalf("rollback to boot: ok=%v err=%v", ok, err)
	}
	if _, ok, err := s2.Rollback(); err != nil || ok {
		t.Fatalf("rollback past boot should report no parent: ok=%v err=%v", ok, err)
	}
}

// TestStorePruneBounded: history is bounded at keep generations, with the
// serving generation and its parent always surviving.
func TestStorePruneBounded(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	var all []Generation
	for i := 0; i < 6; i++ {
		g, err := s.Commit(storeActor(t, int64(i)), core.PolicyMeta{}, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, g)
	}
	gens := s.Generations()
	if len(gens) != 3 {
		t.Fatalf("kept %d generations, want 3: %+v", len(gens), gens)
	}
	// Newest three survive (6 serving, 5 its parent, 4 by keep budget).
	for i, want := range []uint64{4, 5, 6} {
		if gens[i].Gen != want {
			t.Fatalf("kept %+v", gens)
		}
	}
	// Pruned artifacts are gone from disk; kept ones remain.
	for _, g := range all[:3] {
		if _, err := os.Stat(s.Path(g)); !os.IsNotExist(err) {
			t.Fatalf("generation %d not pruned", g.Gen)
		}
	}
	for _, g := range gens {
		if _, err := os.Stat(s.Path(g)); err != nil {
			t.Fatalf("generation %d missing: %v", g.Gen, err)
		}
	}
	// The manifest on disk matches (prune persisted atomically).
	s2, err := OpenStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Generations(); len(got) != 3 {
		t.Fatalf("reopened kept %d", len(got))
	}
}

// TestStoreCorruptManifestRefused: a garbled manifest is a hard error, not
// a silent re-initialization that would orphan the lineage.
func TestStoreCorruptManifestRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, 3); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}
