package pilot

import (
	"context"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/rl"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/tournament"
)

// permissiveFloors always pass a functioning candidate (ratios near zero,
// RTT ceiling near infinite) — they isolate the promotion machinery from
// whether two tiny random-ish nets happen to tie on the suite.
func permissiveFloors() tournament.GateFloors {
	return tournament.GateFloors{UtilRatio: 1e-9, JainRatio: 1e-9, RTTRatio: 1e9}
}

func fastGate() tournament.GateConfig {
	return tournament.GateConfig{
		Families: []string{"steady"}, Flows: 3, Duration: 0.4, Seed: 7,
		Floors: permissiveFloors(),
	}
}

func pilotLearner(t *testing.T, seed int64) *env.ParallelLearner {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.BatchSize = 16
	dist := env.DefaultTrainingDistribution()
	dist.MaxFlows = 2
	dist.EpisodeDuration = 3
	rlCfg := rl.DefaultConfig(cfg.StateDim(), core.GlobalFeatureDim, 1)
	rlCfg.Hidden = []int{8, 8}
	rlCfg.Batch = 16
	return env.NewParallelLearnerRL(cfg, dist, rlCfg, 5000, seed, 2)
}

// pilotFleet is one live serving fleet for an e2e test: a real TCP server
// plus background clients that verify the two fleet invariants the pilot
// must never break — no request errors, and a per-connection policy version
// that never moves backwards.
type pilotFleet struct {
	srv       *serve.Server
	reg       *telemetry.Registry
	stop      chan struct{}
	wg        sync.WaitGroup
	responses atomic.Int64
	errors    atomic.Int64
	regressed atomic.Int64 // version went backwards on a connection
}

func startFleet(t *testing.T, clients int) *pilotFleet {
	t.Helper()
	cfg := core.DefaultConfig()
	svc := core.NewService(cfg, core.NewReferencePolicy(cfg))
	svc.BatchWindow = time.Millisecond
	f := &pilotFleet{
		reg:  telemetry.NewRegistry(),
		stop: make(chan struct{}),
	}
	f.srv = serve.NewServer(svc, cfg, serve.Options{Deadline: time.Second, Shards: 2})
	f.srv.Instrument(f.reg)
	addr, err := f.srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	state := make([]float64, cfg.StateDim())
	for i := 0; i < clients; i++ {
		client, err := serve.Dial("tcp", addr.String())
		if err != nil {
			t.Fatal(err)
		}
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			defer client.Close()
			var lastVersion uint32
			for {
				select {
				case <-f.stop:
					return
				default:
				}
				res, err := client.Infer(state)
				if err != nil {
					f.errors.Add(1)
					return
				}
				if res.Version < lastVersion {
					f.regressed.Add(1)
					return
				}
				lastVersion = res.Version
				f.responses.Add(1)
			}
		}()
	}
	t.Cleanup(func() { f.srv.Close() })
	return f
}

// finish stops the clients and asserts the fleet invariants held.
func (f *pilotFleet) finish(t *testing.T) {
	t.Helper()
	close(f.stop)
	f.wg.Wait()
	if n := f.errors.Load(); n != 0 {
		t.Fatalf("%d client requests errored during the pilot run", n)
	}
	if n := f.regressed.Load(); n != 0 {
		t.Fatalf("policy version moved backwards on %d connections", n)
	}
	if f.responses.Load() == 0 {
		t.Fatal("no traffic flowed")
	}
}

func (f *pilotFleet) counter(t *testing.T, name string) int64 {
	t.Helper()
	m, _ := f.reg.Snapshot().Get(name)
	return m.Count
}

func (f *pilotFleet) gauge(t *testing.T, name string) float64 {
	t.Helper()
	m, _ := f.reg.Snapshot().Get(name)
	return m.Value
}

// TestPilotPromotionEndToEnd is the happy path: train under live traffic,
// pass the gate, seal a generation, and hot-promote it to the fleet —
// version counter monotonic, zero dropped requests, generation telemetry
// advancing, checkpoint series pinned.
func TestPilotPromotionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop e2e")
	}
	fleet := startFleet(t, 3)
	dir := t.TempDir()
	servingPath := filepath.Join(dir, "serving.policy")
	ckptPath := filepath.Join(dir, "train.ckpt")

	store, err := OpenStore(filepath.Join(dir, "gens"), 4)
	if err != nil {
		t.Fatal(err)
	}
	learner := pilotLearner(t, 1)
	sup, err := New(Options{
		Store:            store,
		Learner:          learner,
		Target:           NewHostTarget(fleet.srv, servingPath, learner.Cfg, fleet.reg),
		EpisodesPerRound: 2,
		Rounds:           1,
		Gate:             fastGate(),
		// Probation that cannot trigger on a healthy in-process fleet.
		Health:          HealthPolicy{ProbationSeconds: 0.3, IntervalSeconds: 0.1, MinRequests: 25, MaxDegradedRate: 0.9},
		CheckpointPath:  ckptPath,
		CheckpointEvery: 1,
		CheckpointKeep:  2,
		Registry:        fleet.reg,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	fleet.finish(t)

	// Lineage: boot baseline (gen 1) then the trained candidate (gen 2).
	cur, ok := store.Current()
	if !ok || cur.Gen != 2 || cur.Parent != 1 {
		t.Fatalf("current generation %+v ok=%v", cur, ok)
	}
	// Fleet: two promotions over the boot version (1 → 2 → 3), and the
	// sealed metadata reached the serving telemetry.
	if v := fleet.srv.PolicyVersion(); v != 3 {
		t.Fatalf("policy version %d, want 3 (boot + 2 promotions)", v)
	}
	if g := fleet.gauge(t, "serve_policy_generation"); g != 2 {
		t.Fatalf("serve_policy_generation %v, want 2", g)
	}
	if g := fleet.gauge(t, "pilot_generation"); g != 2 {
		t.Fatalf("pilot_generation %v, want 2", g)
	}
	if n := fleet.counter(t, "pilot_promotions_total"); n != 2 {
		t.Fatalf("promotions %d, want 2", n)
	}
	if n := fleet.counter(t, "pilot_rollbacks_total"); n != 0 {
		t.Fatalf("unexpected rollbacks: %d", n)
	}
	if n := fleet.counter(t, "policy_reload_failures_total"); n != 0 {
		t.Fatalf("reload failures on clean promotions: %d", n)
	}
	// The promoted checkpoint is pinned so rotation preserves its lineage.
	// (The serving artifact is the quantized compile of gen 2's seal.)
	if pin := readPinForTest(ckptPath); pin == "" {
		t.Fatal("promotion did not pin its checkpoint")
	}
	// The served policy is the sealed candidate, quantize-on-promote.
	p, meta, err := core.LoadSealedPolicy(store.Path(cur), learner.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Episodes != learner.Episodes {
		t.Fatalf("sealed episodes %d, learner %d", meta.Episodes, learner.Episodes)
	}
	_ = p
}

// TestPilotGateRefusal: a candidate that cannot clear the floors is never
// promoted — the fleet stays on the boot generation, and the refusal is
// observable on pilot_gate_failures_total.
func TestPilotGateRefusal(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop e2e")
	}
	fleet := startFleet(t, 2)
	dir := t.TempDir()
	store, err := OpenStore(filepath.Join(dir, "gens"), 4)
	if err != nil {
		t.Fatal(err)
	}
	learner := pilotLearner(t, 2)
	gate := fastGate()
	gate.Floors = tournament.GateFloors{MinJain: 1.5} // Jain index cannot exceed 1
	sup, err := New(Options{
		Store: store, Learner: learner,
		Target:           NewHostTarget(fleet.srv, filepath.Join(dir, "serving.policy"), learner.Cfg, fleet.reg),
		EpisodesPerRound: 2, Rounds: 1,
		Gate:     gate,
		Health:   HealthPolicy{ProbationSeconds: 0.1, IntervalSeconds: 0.05, MinRequests: 1 << 30},
		Registry: fleet.reg,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	fleet.finish(t)

	cur, ok := store.Current()
	if !ok || cur.Gen != 1 || cur.Note != "boot baseline" {
		t.Fatalf("fleet moved off the boot generation: %+v", cur)
	}
	if n := fleet.counter(t, "pilot_gate_failures_total"); n != 1 {
		t.Fatalf("gate failures %d, want 1", n)
	}
	if n := fleet.counter(t, "pilot_promotions_total"); n != 1 { // boot only
		t.Fatalf("promotions %d, want 1 (boot only)", n)
	}
	if v := fleet.srv.PolicyVersion(); v != 2 { // boot promotion only
		t.Fatalf("policy version %d, want 2", v)
	}
}

// regressingTarget wraps a real target but scripts the health feed: the
// first sample is the promotion baseline, later samples show the fleet
// drowning in fallbacks. The promotion/rollback transport stays fully real.
type regressingTarget struct {
	inner Target
	mu    sync.Mutex
	calls int
}

func (rt *regressingTarget) Promote(path string, meta core.PolicyMeta) error {
	return rt.inner.Promote(path, meta)
}

func (rt *regressingTarget) Health() (HealthSample, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.calls++
	if rt.calls == 1 {
		return HealthSample{Requests: 1000, Fallbacks: 10}, nil
	}
	// Every later window: 500 more requests, 400 of them degraded.
	n := int64(rt.calls - 1)
	return HealthSample{Requests: 1000 + 500*n, Fallbacks: 10 + 400*n, DeadlineMisses: 300 * n}, nil
}

// TestPilotHealthRollback: a candidate that passes the gate but degrades
// the live fleet is rolled back automatically — the parent generation's
// sealed artifact is re-promoted (version moves forward, never back), the
// manifest marks the bad generation, and the rollback is observable on
// pilot_rollbacks_total and the generation gauges.
func TestPilotHealthRollback(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop e2e")
	}
	fleet := startFleet(t, 3)
	dir := t.TempDir()
	store, err := OpenStore(filepath.Join(dir, "gens"), 4)
	if err != nil {
		t.Fatal(err)
	}
	learner := pilotLearner(t, 3)
	host := NewHostTarget(fleet.srv, filepath.Join(dir, "serving.policy"), learner.Cfg, fleet.reg)
	sup, err := New(Options{
		Store: store, Learner: learner,
		Target:           &regressingTarget{inner: host},
		EpisodesPerRound: 2, Rounds: 1,
		Gate:     fastGate(),
		Health:   HealthPolicy{ProbationSeconds: 2, IntervalSeconds: 0.05, MinRequests: 50, MaxDegradedRate: 0.20},
		Registry: fleet.reg,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	fleet.finish(t)

	// The fleet is back on the boot generation; the bad one is marked.
	cur, ok := store.Current()
	if !ok || cur.Gen != 1 {
		t.Fatalf("current after rollback %+v ok=%v", cur, ok)
	}
	gens := store.Generations()
	if len(gens) != 2 || gens[1].Gen != 2 || gens[1].Status != StatusRolledBack {
		t.Fatalf("lineage after rollback: %+v", gens)
	}
	if n := fleet.counter(t, "pilot_rollbacks_total"); n != 1 {
		t.Fatalf("rollbacks %d, want 1", n)
	}
	// Boot(→2), candidate(→3), rollback re-promotion(→4): forward only.
	if v := fleet.srv.PolicyVersion(); v != 4 {
		t.Fatalf("policy version %d, want 4", v)
	}
	if g := fleet.gauge(t, "serve_policy_generation"); g != 1 {
		t.Fatalf("serve_policy_generation %v, want 1 after rollback", g)
	}
	if g := fleet.gauge(t, "pilot_generation"); g != 1 {
		t.Fatalf("pilot_generation %v, want 1 after rollback", g)
	}
}

// readPinForTest reads a checkpoint promotion pin without importing ckpt in
// every assertion site.
func readPinForTest(base string) string {
	return ckpt.ReadPin(base)
}
