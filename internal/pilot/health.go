// Post-promotion health: the last line of defense after the regression
// gate. The gate judges a candidate in simulation; the probation watch
// judges it in the serving fleet, on the live request stream. The signal is
// the server's own degradation telemetry — fallback answers (which include
// deadline misses and load shedding) as a fraction of requests served. A
// policy that makes the fleet miss deadlines shows up here within one
// probation window and is rolled back without human intervention.

package pilot

import "fmt"

// HealthSample is a point-in-time reading of the serving fleet's
// degradation counters. Samples are cumulative (monotonic counters);
// judgments are made on deltas between samples.
type HealthSample struct {
	// Requests is serve_requests_total.
	Requests int64
	// Fallbacks is serve_fallback_total: every request answered by the
	// fallback law instead of the policy — deadline misses and shed
	// requests both land here.
	Fallbacks int64
	// DeadlineMisses is serve_deadline_miss_total, the subset of Fallbacks
	// where the policy was too slow rather than the queue too full.
	DeadlineMisses int64
}

// HealthPolicy is the probation rule applied after every promotion.
type HealthPolicy struct {
	// Probation is how long the new generation is watched after promotion.
	ProbationSeconds float64 `json:"probation_seconds"`
	// IntervalSeconds is the sampling period within probation.
	IntervalSeconds float64 `json:"interval_seconds"`
	// MinRequests is the smallest request delta a judgment needs: below
	// it the window is inconclusive and probation continues. Guards
	// against declaring an idle fleet healthy or one unlucky request
	// unhealthy.
	MinRequests int64 `json:"min_requests"`
	// MaxDegradedRate is the rollback trigger: fallback answers as a
	// fraction of requests over the window. Deadline misses are a subset
	// of fallbacks, so a single ratio bounds both.
	MaxDegradedRate float64 `json:"max_degraded_rate"`
}

// DefaultHealthPolicy watches for 5 seconds, sampling every 500ms, and
// rolls back when more than 20% of requests (across at least 50) were
// answered by the fallback law.
func DefaultHealthPolicy() HealthPolicy {
	return HealthPolicy{ProbationSeconds: 5, IntervalSeconds: 0.5, MinRequests: 50, MaxDegradedRate: 0.20}
}

// Regressed judges the window between two samples: true when the fleet
// served enough requests to judge and too many of them degraded. Pure —
// the supervisor's rollback decision is this one function, so the exact
// boundary is unit-testable without a fleet.
func (hp HealthPolicy) Regressed(before, after HealthSample) bool {
	requests := after.Requests - before.Requests
	if requests < hp.MinRequests || requests <= 0 {
		return false // inconclusive window
	}
	degraded := after.Fallbacks - before.Fallbacks
	return float64(degraded)/float64(requests) > hp.MaxDegradedRate
}

func (hp HealthPolicy) validate() error {
	if hp.ProbationSeconds < 0 || hp.IntervalSeconds < 0 || hp.MaxDegradedRate < 0 {
		return fmt.Errorf("pilot: negative health policy field: %+v", hp)
	}
	return nil
}
