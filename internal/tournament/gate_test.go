package tournament

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
)

// --- Pure gate math (GateFloors.Evaluate) ---

// TestGateFloorsExactBoundary: every comparison is inclusive — a candidate
// sitting exactly on a floor passes it, and an epsilon past the floor fails.
func TestGateFloorsExactBoundary(t *testing.T) {
	f := GateFloors{UtilRatio: 0.95, JainRatio: 0.95, RTTRatio: 1.10, MinUtil: 0.5, MinJain: 0.8}
	inc := GateSide{Utilization: 0.90, Jain: 0.92, AvgRTT: 0.030}
	const eps = 1e-9

	exact := GateSide{
		Utilization: 0.95 * inc.Utilization,
		Jain:        0.95 * inc.Jain,
		AvgRTT:      1.10 * inc.AvgRTT,
	}
	if pass, reasons := f.Evaluate(exact, inc); !pass {
		t.Fatalf("exact-boundary candidate refused: %v", reasons)
	}

	// One axis at a time, one epsilon past its floor: exactly one reason.
	cases := []struct {
		name string
		mut  func(*GateSide)
	}{
		{"util ratio", func(s *GateSide) { s.Utilization -= eps }},
		{"jain ratio", func(s *GateSide) { s.Jain -= eps }},
		{"rtt ceiling", func(s *GateSide) { s.AvgRTT += eps }},
	}
	for _, tc := range cases {
		cand := exact
		tc.mut(&cand)
		pass, reasons := f.Evaluate(cand, inc)
		if pass {
			t.Errorf("%s: epsilon past the floor passed", tc.name)
		}
		if len(reasons) != 1 {
			t.Errorf("%s: %d reasons, want 1: %v", tc.name, len(reasons), reasons)
		}
	}

	// Absolute floors bind even when the incumbent is worse.
	weakInc := GateSide{Utilization: 0.1, Jain: 0.1, AvgRTT: 0.030}
	cand := GateSide{Utilization: 0.5, Jain: 0.8, AvgRTT: 0.030}
	if pass, reasons := f.Evaluate(cand, weakInc); !pass {
		t.Fatalf("candidate exactly on absolute floors refused: %v", reasons)
	}
	cand.Utilization = 0.5 - eps
	cand.Jain = 0.8 - eps
	pass, reasons := f.Evaluate(cand, weakInc)
	if pass || len(reasons) != 2 {
		t.Fatalf("absolute floors: pass=%v reasons=%v", pass, reasons)
	}
}

// TestGateFloorsEdgeCases: disabled checks never fire; an RTT-less
// incumbent skips the ceiling while an RTT-less candidate fails it; every
// missed floor is reported, not just the first.
func TestGateFloorsEdgeCases(t *testing.T) {
	// All checks disabled: anything passes.
	if pass, _ := (GateFloors{}).Evaluate(GateSide{}, GateSide{Utilization: 1, Jain: 1, AvgRTT: 0.01}); !pass {
		t.Fatal("disabled floors refused a candidate")
	}
	f := DefaultGateFloors()
	// Incumbent with no RTT: ceiling skipped, ratios still bind.
	inc := GateSide{Utilization: 0.9, Jain: 0.9}
	if pass, reasons := f.Evaluate(GateSide{Utilization: 0.9, Jain: 0.9}, inc); !pass {
		t.Fatalf("RTT-less incumbent: %v", reasons)
	}
	// Candidate with no RTT against a live incumbent: hard refusal.
	inc.AvgRTT = 0.030
	if pass, _ := f.Evaluate(GateSide{Utilization: 0.9, Jain: 0.9}, inc); pass {
		t.Fatal("candidate that acked nothing promoted")
	}
	// Everything wrong at once: all three ratio reasons reported.
	pass, reasons := f.Evaluate(GateSide{Utilization: 0.1, Jain: 0.1, AvgRTT: 1.0}, inc)
	if pass || len(reasons) != 3 {
		t.Fatalf("pass=%v reasons=%v", pass, reasons)
	}
}

// TestGateMixedCellsAggregation: floors judge suite means, so a candidate
// can lose one family outright and still promote by winning another —
// and the report's per-family cells expose exactly which ones it lost.
func TestGateMixedCellsAggregation(t *testing.T) {
	rep := &GateReport{Floors: DefaultGateFloors()}
	add := func(fam string, cand, inc Cell) {
		rep.Cells = append(rep.Cells, GateCell{Family: fam, Candidate: cand, Incumbent: inc})
		rep.Candidate.add(cand)
		rep.Incumbent.add(inc)
	}
	// Candidate loses "incast" on every axis but wins "steady" big.
	add("incast",
		Cell{Utilization: 0.70, Jain: 0.80, AvgRTT: 0.040},
		Cell{Utilization: 0.90, Jain: 0.95, AvgRTT: 0.030})
	add("steady",
		Cell{Utilization: 0.99, Jain: 0.99, AvgRTT: 0.020},
		Cell{Utilization: 0.80, Jain: 0.85, AvgRTT: 0.032})
	rep.Candidate.scale(0.5)
	rep.Incumbent.scale(0.5)
	pass, reasons := rep.Floors.Evaluate(rep.Candidate, rep.Incumbent)
	if !pass {
		t.Fatalf("mixed win/lose suite should pass on means: %v", reasons)
	}
	// Means are the plain averages of the cells.
	if got, want := rep.Candidate.Utilization, (0.70+0.99)/2; got != want {
		t.Fatalf("candidate mean util %v, want %v", got, want)
	}
	if got, want := rep.Incumbent.AvgRTT, (0.030+0.032)/2; got != want {
		t.Fatalf("incumbent mean rtt %v, want %v", got, want)
	}

	// Flip the wins to losses on both families: the suite mean now misses
	// the floors and the refusal names the axes.
	rep2 := &GateReport{Floors: DefaultGateFloors()}
	rep2.Cells = nil
	lose := Cell{Utilization: 0.40, Jain: 0.50, AvgRTT: 0.080}
	strong := Cell{Utilization: 0.90, Jain: 0.95, AvgRTT: 0.030}
	rep2.Candidate.add(lose)
	rep2.Candidate.add(lose)
	rep2.Incumbent.add(strong)
	rep2.Incumbent.add(strong)
	rep2.Candidate.scale(0.5)
	rep2.Incumbent.scale(0.5)
	pass, reasons = rep2.Floors.Evaluate(rep2.Candidate, rep2.Incumbent)
	if pass || len(reasons) != 3 {
		t.Fatalf("uniformly worse candidate: pass=%v reasons=%v", pass, reasons)
	}
}

// --- End-to-end gate runs ---

func gateActor(t *testing.T, seed int64) *core.MLPPolicy {
	t.Helper()
	cfg := core.DefaultConfig()
	return &core.MLPPolicy{Net: nn.NewMLP(rand.New(rand.NewSource(seed)), nn.ReLU, nn.Tanh,
		cfg.StateDim(), 8, 1)}
}

// TestRunGateSelfComparison: a policy gated against itself sees identical
// suites on both sides, so every floor is met exactly and the gate passes.
func TestRunGateSelfComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	p := gateActor(t, 11)
	cfg := GateConfig{Families: []string{"incast", "steady"}, Flows: 3, Duration: 0.4, Seed: 9}
	rep, err := RunGate(p, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("self-comparison refused: %v", rep.Reasons)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Candidate.Utilization != c.Incumbent.Utilization || c.Candidate.AvgRTT != c.Incumbent.AvgRTT {
			t.Fatalf("self-comparison cells diverge in %s: %+v vs %+v", c.Family, c.Candidate, c.Incumbent)
		}
	}
	if rep.Candidate != rep.Incumbent {
		t.Fatalf("suite means diverge: %+v vs %+v", rep.Candidate, rep.Incumbent)
	}
	// The report is JSON-serializable (the pilot logs it).
	if _, err := json.Marshal(rep); err != nil {
		t.Fatal(err)
	}
}

// TestRunGateWorkerIndependence: the verdict and every number in the report
// are byte-identical whether the suite runs serially or across 4 workers —
// the gate's decision must never depend on scheduling.
func TestRunGateWorkerIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	cand, inc := gateActor(t, 21), gateActor(t, 22)
	cfg := GateConfig{Families: []string{"incast", "oscillating"}, Flows: 3, Duration: 0.4, Seed: 5}
	cfg.Workers = 1
	rep1, err := RunGate(cand, inc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	rep4, err := RunGate(cand, inc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, rep4) {
		b1, _ := json.Marshal(rep1)
		b4, _ := json.Marshal(rep4)
		t.Fatalf("worker count changed the gate report:\n1: %s\n4: %s", b1, b4)
	}
}

// TestRunGateImpossibleFloor: an absolute floor no policy can reach refuses
// every candidate — the configuration CI uses to force a gate failure.
func TestRunGateImpossibleFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	p := gateActor(t, 31)
	cfg := GateConfig{Families: []string{"steady"}, Flows: 3, Duration: 0.4, Seed: 9,
		Floors: GateFloors{MinJain: 1.5}} // Jain index cannot exceed 1
	rep, err := RunGate(p, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || len(rep.Reasons) == 0 {
		t.Fatalf("impossible floor passed: %+v", rep)
	}
}

// TestRunGateValidation: nil policies and unknown families are refused.
func TestRunGateValidation(t *testing.T) {
	p := gateActor(t, 41)
	if _, err := RunGate(nil, p, GateConfig{}); err == nil {
		t.Fatal("nil candidate accepted")
	}
	if _, err := RunGate(p, nil, GateConfig{}); err == nil {
		t.Fatal("nil incumbent accepted")
	}
	if _, err := RunGate(p, p, GateConfig{Families: []string{"nope"}}); err == nil {
		t.Fatal("unknown family accepted")
	}
}
