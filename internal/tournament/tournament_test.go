package tournament

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/nn"
)

// small returns a grid trimmed for test wall-clock but still covering every
// registered scheme.
func small() Config {
	return Config{Families: []string{"incast", "oscillating"}, Flows: 3, Duration: 0.4, Seed: 9}
}

func TestTournamentCoversAllRegisteredSchemes(t *testing.T) {
	rep, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	all := cc.Names()
	if len(rep.Ranking) != len(all) {
		t.Fatalf("ranking has %d schemes, registry has %d", len(rep.Ranking), len(all))
	}
	ranked := make(map[string]bool, len(rep.Ranking))
	for i, st := range rep.Ranking {
		ranked[st.Scheme] = true
		if st.Rank != i+1 {
			t.Errorf("standing %d has rank %d", i, st.Rank)
		}
		if i > 0 && st.Score > rep.Ranking[i-1].Score {
			t.Errorf("ranking not sorted: %q (%.4f) after %q (%.4f)",
				st.Scheme, st.Score, rep.Ranking[i-1].Scheme, rep.Ranking[i-1].Score)
		}
	}
	for _, s := range all {
		if !ranked[s] {
			t.Errorf("registered scheme %q missing from ranking", s)
		}
	}
	if want := len(all) * len(rep.Families); len(rep.Cells) != want {
		t.Fatalf("cells: %d, want schemes × families = %d", len(rep.Cells), want)
	}
	for _, c := range rep.Cells {
		if c.Score < 0 || c.Score > 1 {
			t.Errorf("cell %s/%s score %.4f outside [0,1]", c.Scheme, c.Family, c.Score)
		}
	}
}

func TestTournamentDeterministic(t *testing.T) {
	cfg := small()
	cfg.Schemes = []string{"cubic", "bbr", "vegas"}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := small()
	cfg2.Schemes = []string{"cubic", "bbr", "vegas"}
	cfg2.Workers = 3
	b, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	var ja, jb bytes.Buffer
	if err := a.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatal("same config produced different reports across worker counts")
	}
}

func TestTournamentCheckedCellsHoldInvariants(t *testing.T) {
	cfg := small()
	cfg.Schemes = []string{"cubic", "reno"}
	cfg.Check = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if c.Violations != 0 {
			t.Errorf("cell %s/%s: %d invariant violations", c.Scheme, c.Family, c.Violations)
		}
	}
}

// savedActor writes a small random-but-valid policy file and returns its
// path (standing in for a fairness-lab trained actor).
func savedActor(t *testing.T, seed int64) string {
	t.Helper()
	cfg := core.DefaultConfig()
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewMLP(rng, nn.ReLU, nn.Tanh, cfg.StateDim(), 8, 1)
	path := filepath.Join(t.TempDir(), "actor.json")
	if err := core.SavePolicy(path, net); err != nil {
		t.Fatal(err)
	}
	return path
}

// An actor entry competes in every family under its own name, alongside the
// registered schemes, and lands in the ranking like any other entry.
func TestTournamentActorEntries(t *testing.T) {
	cfg := small()
	cfg.Schemes = []string{"cubic", "reno"}
	cfg.Actors = []ActorSpec{{Name: "lab-maxmin", Path: savedActor(t, 4)}}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * len(rep.Families); len(rep.Cells) != want {
		t.Fatalf("cells: %d, want entries × families = %d", len(rep.Cells), want)
	}
	if len(rep.Actors) != 1 || rep.Actors[0] != "lab-maxmin" {
		t.Fatalf("report actors = %v, want [lab-maxmin]", rep.Actors)
	}
	var actorCells int
	found := false
	for _, st := range rep.Ranking {
		if st.Scheme == "lab-maxmin" {
			found = true
			if len(st.ByFam) != len(rep.Families) {
				t.Errorf("actor scored %d families, want %d", len(st.ByFam), len(rep.Families))
			}
		}
	}
	if !found {
		t.Fatal("actor entry missing from ranking")
	}
	for _, c := range rep.Cells {
		if c.Scheme != "lab-maxmin" {
			continue
		}
		actorCells++
		if c.Score < 0 || c.Score > 1 {
			t.Errorf("actor cell %s score %.4f outside [0,1]", c.Family, c.Score)
		}
	}
	if actorCells != len(rep.Families) {
		t.Fatalf("actor has %d cells, want one per family (%d)", actorCells, len(rep.Families))
	}
}

// Actor cells must be byte-deterministic across worker counts, like scheme
// cells: each scenario gets its own policy clone, so concurrency must not
// leak through shared network scratch.
func TestTournamentActorDeterministic(t *testing.T) {
	path := savedActor(t, 6)
	run := func(workers int) []byte {
		cfg := small()
		cfg.Schemes = []string{"cubic"}
		cfg.Actors = []ActorSpec{{Name: "lab", Path: path}}
		cfg.Workers = workers
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := run(1), run(4); !bytes.Equal(a, b) {
		t.Fatal("actor cells differ across worker counts")
	}
}

func TestTournamentActorValidation(t *testing.T) {
	path := savedActor(t, 8)
	if _, err := Run(Config{Schemes: []string{"cubic"},
		Actors: []ActorSpec{{Name: "", Path: path}}}); err == nil {
		t.Error("actor with empty name accepted")
	}
	if _, err := Run(Config{Schemes: []string{"cubic"},
		Actors: []ActorSpec{{Name: "cubic", Path: path}}}); err == nil {
		t.Error("actor colliding with a scheme name accepted")
	}
	if _, err := Run(Config{Schemes: []string{"cubic"}, Actors: []ActorSpec{
		{Name: "a", Path: path}, {Name: "a", Path: path}}}); err == nil {
		t.Error("duplicate actor names accepted")
	}
	if _, err := Run(Config{Schemes: []string{"cubic"},
		Actors: []ActorSpec{{Name: "a", Path: filepath.Join(t.TempDir(), "missing.json")}}}); err == nil {
		t.Error("actor with unreadable weight file accepted")
	}
}

func TestTournamentRejectsUnknownInput(t *testing.T) {
	if _, err := Run(Config{Schemes: []string{"nope"}}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := Run(Config{Families: []string{"nope"}}); err == nil {
		t.Error("unknown family accepted")
	}
}
