package tournament

import (
	"bytes"
	"testing"

	"repro/internal/cc"
)

// small returns a grid trimmed for test wall-clock but still covering every
// registered scheme.
func small() Config {
	return Config{Families: []string{"incast", "oscillating"}, Flows: 3, Duration: 0.4, Seed: 9}
}

func TestTournamentCoversAllRegisteredSchemes(t *testing.T) {
	rep, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	all := cc.Names()
	if len(rep.Ranking) != len(all) {
		t.Fatalf("ranking has %d schemes, registry has %d", len(rep.Ranking), len(all))
	}
	ranked := make(map[string]bool, len(rep.Ranking))
	for i, st := range rep.Ranking {
		ranked[st.Scheme] = true
		if st.Rank != i+1 {
			t.Errorf("standing %d has rank %d", i, st.Rank)
		}
		if i > 0 && st.Score > rep.Ranking[i-1].Score {
			t.Errorf("ranking not sorted: %q (%.4f) after %q (%.4f)",
				st.Scheme, st.Score, rep.Ranking[i-1].Scheme, rep.Ranking[i-1].Score)
		}
	}
	for _, s := range all {
		if !ranked[s] {
			t.Errorf("registered scheme %q missing from ranking", s)
		}
	}
	if want := len(all) * len(rep.Families); len(rep.Cells) != want {
		t.Fatalf("cells: %d, want schemes × families = %d", len(rep.Cells), want)
	}
	for _, c := range rep.Cells {
		if c.Score < 0 || c.Score > 1 {
			t.Errorf("cell %s/%s score %.4f outside [0,1]", c.Scheme, c.Family, c.Score)
		}
	}
}

func TestTournamentDeterministic(t *testing.T) {
	cfg := small()
	cfg.Schemes = []string{"cubic", "bbr", "vegas"}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := small()
	cfg2.Schemes = []string{"cubic", "bbr", "vegas"}
	cfg2.Workers = 3
	b, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	var ja, jb bytes.Buffer
	if err := a.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatal("same config produced different reports across worker counts")
	}
}

func TestTournamentCheckedCellsHoldInvariants(t *testing.T) {
	cfg := small()
	cfg.Schemes = []string{"cubic", "reno"}
	cfg.Check = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if c.Violations != 0 {
			t.Errorf("cell %s/%s: %d invariant violations", c.Scheme, c.Family, c.Violations)
		}
	}
}

func TestTournamentRejectsUnknownInput(t *testing.T) {
	if _, err := Run(Config{Schemes: []string{"nope"}}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := Run(Config{Families: []string{"nope"}}); err == nil {
		t.Error("unknown family accepted")
	}
}
