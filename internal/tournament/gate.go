// The promotion regression gate. Before the closed-loop pilot promotes a
// freshly trained candidate actor into the serving fleet, the candidate and
// the incumbent each run the same fixed scenario suite — identical
// topologies, seeds, and flow schedules, exactly like two tournament
// entries — and the candidate must clear relative floors on the three
// Astraea objective axes (utilization, Jain fairness, delay) plus optional
// absolute minimums. A candidate that regresses the fleet is refused; the
// incumbent keeps serving and training continues.

package tournament

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/runner"
)

// GateFloors are the pass thresholds. Ratios compare the candidate's suite
// means against the incumbent's; absolute floors bind regardless of the
// incumbent. Comparisons are inclusive: a candidate exactly on a floor
// passes it.
type GateFloors struct {
	// UtilRatio: candidate mean utilization must be >= UtilRatio × the
	// incumbent's. <=0 disables the check.
	UtilRatio float64 `json:"util_ratio"`
	// JainRatio: candidate mean Jain index must be >= JainRatio × the
	// incumbent's. <=0 disables.
	JainRatio float64 `json:"jain_ratio"`
	// RTTRatio: candidate mean RTT must be <= RTTRatio × the incumbent's
	// (ceiling: values >1 allow some delay regression). <=0 disables.
	RTTRatio float64 `json:"rtt_ratio"`
	// MinUtil and MinJain are absolute floors on the candidate's suite
	// means, independent of the incumbent. 0 disables.
	MinUtil float64 `json:"min_util"`
	MinJain float64 `json:"min_jain"`
}

// DefaultGateFloors tolerates a 5% utilization or fairness giveback and a
// 10% delay regression — wide enough to absorb scenario-suite noise, tight
// enough that a genuinely worse policy is refused.
func DefaultGateFloors() GateFloors {
	return GateFloors{UtilRatio: 0.95, JainRatio: 0.95, RTTRatio: 1.10}
}

// GateConfig parameterizes one gate evaluation. The zero value selects all
// families, 8 flows, 5-second scenarios, and DefaultGateFloors.
type GateConfig struct {
	// Families of the fixed suite; empty means all (FamilyNames order).
	Families []string
	// Flows per scenario (default 8).
	Flows int
	// Duration of each scenario in seconds (default 5).
	Duration float64
	// Seed offsets every family's scenario seed; candidate and incumbent
	// always face the identical draw.
	Seed int64
	// Workers for the batch pool (<=0 selects GOMAXPROCS). Reports are
	// byte-identical for any worker count.
	Workers int
	// Floors to clear; the zero value selects DefaultGateFloors.
	Floors GateFloors
}

// GateSide aggregates one policy's suite: means across family cells.
type GateSide struct {
	Utilization float64 `json:"utilization"`
	Jain        float64 `json:"jain"`
	AvgRTT      float64 `json:"avg_rtt_seconds"`
	Score       float64 `json:"score"`
}

// GateCell pairs the two policies' runs of one family.
type GateCell struct {
	Family    string `json:"family"`
	Candidate Cell   `json:"candidate"`
	Incumbent Cell   `json:"incumbent"`
}

// GateReport is one completed gate evaluation.
type GateReport struct {
	Cells     []GateCell `json:"cells"`
	Candidate GateSide   `json:"candidate"`
	Incumbent GateSide   `json:"incumbent"`
	Floors    GateFloors `json:"floors"`
	Pass      bool       `json:"pass"`
	// Reasons lists every floor the candidate missed (empty on pass).
	Reasons []string `json:"reasons,omitempty"`
}

func (c *GateConfig) normalize() error {
	if len(c.Families) == 0 {
		c.Families = FamilyNames()
	}
	known := make(map[string]bool, len(families))
	for _, f := range families {
		known[f.name] = true
	}
	for _, name := range c.Families {
		if !known[name] {
			return fmt.Errorf("unknown family %q (have %v)", name, FamilyNames())
		}
	}
	if c.Flows <= 0 {
		c.Flows = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5
	}
	if c.Floors == (GateFloors{}) {
		c.Floors = DefaultGateFloors()
	}
	return nil
}

// RunGate runs candidate and incumbent through the fixed suite and judges
// the candidate against the floors. Both policies see identical scenarios;
// each scenario gets its own policy clone (forward passes share scratch
// buffers, and batch cells run concurrently).
func RunGate(candidate, incumbent core.Policy, cfg GateConfig) (*GateReport, error) {
	if candidate == nil || incumbent == nil {
		return nil, fmt.Errorf("tournament: gate needs both a candidate and an incumbent policy")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	byName := make(map[string]family, len(families))
	for _, f := range families {
		byName[f.name] = f
	}
	// The scenario skeleton is scheme-independent (topology, seed, flow
	// schedule); build it from any registered scheme, then swap every flow's
	// controller for an agent driving the policy under test. Order:
	// candidate cells first, then incumbent cells, family-major within each.
	skeleton := Config{Flows: cfg.Flows, Duration: cfg.Duration, Seed: cfg.Seed}
	var scenarios []runner.Scenario
	var baseRTTs []float64
	for _, p := range []core.Policy{candidate, incumbent} {
		for fi, famName := range cfg.Families {
			fam := byName[famName]
			seed := cfg.Seed + int64(fi)*1000
			sc := fam.build(skeleton, "cubic", seed)
			clone := core.ClonePolicy(p)
			for i := range sc.Flows {
				sc.Flows[i].Scheme = ""
				sc.Flows[i].CC = core.NewAgent(core.DefaultConfig(), clone)
			}
			scenarios = append(scenarios, sc)
			baseRTTs = append(baseRTTs, sc.BaseRTT)
		}
	}

	results, err := runner.RunBatch(scenarios, cfg.Workers)
	if err != nil {
		return nil, err
	}

	n := len(cfg.Families)
	rep := &GateReport{Floors: cfg.Floors}
	for fi, famName := range cfg.Families {
		cand := scoreResult(results[fi], "candidate", famName, baseRTTs[fi])
		inc := scoreResult(results[n+fi], "incumbent", famName, baseRTTs[n+fi])
		rep.Cells = append(rep.Cells, GateCell{Family: famName, Candidate: cand, Incumbent: inc})
		rep.Candidate.add(cand)
		rep.Incumbent.add(inc)
	}
	rep.Candidate.scale(1 / float64(n))
	rep.Incumbent.scale(1 / float64(n))
	rep.Pass, rep.Reasons = cfg.Floors.Evaluate(rep.Candidate, rep.Incumbent)
	return rep, nil
}

func (s *GateSide) add(c Cell) {
	s.Utilization += c.Utilization
	s.Jain += c.Jain
	s.AvgRTT += c.AvgRTT
	s.Score += c.Score
}

func (s *GateSide) scale(k float64) {
	s.Utilization *= k
	s.Jain *= k
	s.AvgRTT *= k
	s.Score *= k
}

// Evaluate judges a candidate's suite means against an incumbent's. All
// comparisons are inclusive (a candidate exactly on a floor passes), and
// every missed floor is reported, not just the first. The RTT ceiling is
// skipped when the incumbent recorded no RTT at all (nothing to regress
// against); an RTT-less candidate against an RTT-ful incumbent fails — a
// policy that acked nothing must never promote.
func (f GateFloors) Evaluate(cand, inc GateSide) (bool, []string) {
	var reasons []string
	if f.UtilRatio > 0 && cand.Utilization < f.UtilRatio*inc.Utilization {
		reasons = append(reasons, fmt.Sprintf("utilization %.4f below %.2f× incumbent %.4f",
			cand.Utilization, f.UtilRatio, inc.Utilization))
	}
	if f.JainRatio > 0 && cand.Jain < f.JainRatio*inc.Jain {
		reasons = append(reasons, fmt.Sprintf("jain %.4f below %.2f× incumbent %.4f",
			cand.Jain, f.JainRatio, inc.Jain))
	}
	if f.RTTRatio > 0 && inc.AvgRTT > 0 {
		if cand.AvgRTT <= 0 {
			reasons = append(reasons, "candidate recorded no RTT (no data acked)")
		} else if cand.AvgRTT > f.RTTRatio*inc.AvgRTT {
			reasons = append(reasons, fmt.Sprintf("avg RTT %.4fs above %.2f× incumbent %.4fs",
				cand.AvgRTT, f.RTTRatio, inc.AvgRTT))
		}
	}
	if f.MinUtil > 0 && cand.Utilization < f.MinUtil {
		reasons = append(reasons, fmt.Sprintf("utilization %.4f below absolute floor %.4f",
			cand.Utilization, f.MinUtil))
	}
	if f.MinJain > 0 && cand.Jain < f.MinJain {
		reasons = append(reasons, fmt.Sprintf("jain %.4f below absolute floor %.4f",
			cand.Jain, f.MinJain))
	}
	return len(reasons) == 0, reasons
}
