// Package tournament runs every congestion-control scheme through a fixed
// grid of scenario families and ranks them. Each family builds one
// deterministic scenario per scheme — identical topology, seed, and flow
// schedule, only the controller differs — so a cell isolates the scheme's
// contribution. Cells score Utilization × Jain fairness × an RTT penalty
// (BaseRTT/AvgRTT), the three axes the Astraea objective trades off; a
// scheme's standing is its mean score across families. The grid fans
// through runner.RunBatch, so wall-clock scales with cores and results are
// byte-identical for any worker count.
package tournament

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"

	"repro/internal/cc"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/trace"
)

// ActorSpec enters a pre-trained Astraea policy as a tournament competitor
// under its own name: every flow in the entry's cells runs a core.Agent
// driving the loaded actor network. This is how fairness-lab policies —
// trained under different reward strategies — compete head-to-head with the
// registered schemes and each other.
type ActorSpec struct {
	// Name labels the entry in cells and rankings (e.g. "maxmin").
	Name string
	// Path is a weight file readable by core.LoadPolicy.
	Path string
}

// Config parameterizes one tournament.
type Config struct {
	// Schemes to enter; empty means every registered scheme.
	Schemes []string
	// Actors are additional entries backed by trained policy files.
	Actors []ActorSpec
	// Families to run; empty means all (see FamilyNames).
	Families []string
	// Flows per scenario (default 8).
	Flows int
	// Duration of each scenario in seconds (default 5).
	Duration float64
	// Seed offsets every family's scenario seed; the same seed+family pair
	// yields the same network for every scheme.
	Seed int64
	// Workers for the batch pool (<=0 selects GOMAXPROCS).
	Workers int
	// Check attaches the invariant checker to every cell and reports the
	// violation count alongside the scores.
	Check bool

	// actorPolicies holds the loaded actor networks, index-aligned with
	// Actors (populated by normalize).
	actorPolicies []*core.MLPPolicy
}

// Cell is one scheme × family run, scored.
type Cell struct {
	Scheme      string  `json:"scheme"`
	Family      string  `json:"family"`
	Utilization float64 `json:"utilization"`
	Jain        float64 `json:"jain"`
	AvgRTT      float64 `json:"avg_rtt_seconds"`
	BaseRTT     float64 `json:"base_rtt_seconds"`
	LossRate    float64 `json:"loss_rate"`
	Score       float64 `json:"score"`
	Violations  int     `json:"violations,omitempty"`
}

// Standing is one scheme's aggregate position.
type Standing struct {
	Rank   int                `json:"rank"`
	Scheme string             `json:"scheme"`
	Score  float64            `json:"score"` // mean of cell scores
	ByFam  map[string]float64 `json:"by_family"`
}

// Report is a completed tournament. Schemes lists every entry — registered
// schemes first, then actor entries (also named in Actors).
type Report struct {
	Schemes  []string   `json:"schemes"`
	Actors   []string   `json:"actors,omitempty"`
	Families []string   `json:"families"`
	Flows    int        `json:"flows"`
	Duration float64    `json:"duration_seconds"`
	Seed     int64      `json:"seed"`
	Cells    []Cell     `json:"cells"`
	Ranking  []Standing `json:"ranking"`
}

// family builds the scenario a scheme competes on. Every flow runs the
// candidate scheme; the seed pins background randomness (loss, jitter) so
// schemes face identical conditions.
type family struct {
	name  string
	build func(cfg Config, scheme string, seed int64) runner.Scenario
}

// families in declaration order: the grid axis and the report column order.
var families = []family{
	{"incast", func(cfg Config, scheme string, seed int64) runner.Scenario {
		// Many-to-one fan-in on a fast shallow-RTT aggregation link: the
		// scaling workload of this PR, and where loss recovery is decided.
		return check.FixedIncast(seed, cfg.Flows, cfg.Duration, scheme)
	}},
	{"oscillating", func(cfg Config, scheme string, seed int64) runner.Scenario {
		sc := runner.Scenario{
			Seed: seed, RateBps: 40e6, BaseRTT: 0.020, QueueBDP: 2,
			Duration: cfg.Duration,
		}
		sc.Trace = trace.Step(10e6, sc.RateBps, 0.25, sc.Duration)
		addFlows(&sc, cfg.Flows, scheme)
		return sc
	}},
	{"steady", func(cfg Config, scheme string, seed int64) runner.Scenario {
		sc := runner.Scenario{
			Seed: seed, RateBps: 48e6, BaseRTT: 0.030, QueueBDP: 2,
			Duration: cfg.Duration,
		}
		addFlows(&sc, cfg.Flows, scheme)
		return sc
	}},
	{"lossy", func(cfg Config, scheme string, seed int64) runner.Scenario {
		sc := runner.Scenario{
			Seed: seed, RateBps: 24e6, BaseRTT: 0.040, QueueBDP: 1.5,
			LossProb: 0.005, Duration: cfg.Duration,
		}
		addFlows(&sc, cfg.Flows, scheme)
		return sc
	}},
}

func addFlows(sc *runner.Scenario, n int, scheme string) {
	for i := 0; i < n; i++ {
		sc.Flows = append(sc.Flows, runner.FlowSpec{
			Scheme: scheme,
			// Small stagger breaks synchronization artifacts without giving
			// any flow a meaningful head start.
			Start: 0.01 * float64(i%10),
		})
	}
}

// FamilyNames lists the scenario families in grid order.
func FamilyNames() []string {
	names := make([]string, len(families))
	for i, f := range families {
		names[i] = f.name
	}
	return names
}

func (c *Config) normalize() error {
	if len(c.Schemes) == 0 {
		c.Schemes = cc.Names()
	}
	for _, s := range c.Schemes {
		if _, err := cc.New(s); err != nil {
			return fmt.Errorf("scheme %q: %w", s, err)
		}
	}
	seen := make(map[string]bool, len(c.Schemes)+len(c.Actors))
	for _, s := range c.Schemes {
		seen[s] = true
	}
	c.actorPolicies = make([]*core.MLPPolicy, len(c.Actors))
	for i, a := range c.Actors {
		if a.Name == "" {
			return fmt.Errorf("actor %d (%s): empty entry name", i, a.Path)
		}
		if seen[a.Name] {
			return fmt.Errorf("actor %q collides with another entry", a.Name)
		}
		seen[a.Name] = true
		p, err := core.LoadPolicy(a.Path, core.DefaultConfig())
		if err != nil {
			return fmt.Errorf("actor %q: %w", a.Name, err)
		}
		c.actorPolicies[i] = p
	}
	if len(c.Families) == 0 {
		c.Families = FamilyNames()
	}
	known := make(map[string]bool, len(families))
	for _, f := range families {
		known[f.name] = true
	}
	for _, name := range c.Families {
		if !known[name] {
			return fmt.Errorf("unknown family %q (have %v)", name, FamilyNames())
		}
	}
	if c.Flows <= 0 {
		c.Flows = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5
	}
	return nil
}

// Run executes the scheme × family grid and returns the ranked report.
func Run(cfg Config) (*Report, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	byName := make(map[string]family, len(families))
	for _, f := range families {
		byName[f.name] = f
	}

	// entry is one competitor: a registered scheme, or a loaded actor
	// policy entered under its own name.
	type entry struct {
		name   string
		policy *core.MLPPolicy // nil for plain schemes
	}
	entries := make([]entry, 0, len(cfg.Schemes)+len(cfg.Actors))
	for _, s := range cfg.Schemes {
		entries = append(entries, entry{name: s})
	}
	for i, a := range cfg.Actors {
		entries = append(entries, entry{name: a.Name, policy: cfg.actorPolicies[i]})
	}

	type job struct {
		scheme, fam string
		baseRTT     float64
	}
	var jobs []job
	var scenarios []runner.Scenario
	var checkers []*check.Checker
	for fi, famName := range cfg.Families {
		fam := byName[famName]
		// Seed depends on the family, not the scheme: every scheme competes
		// on the identical draw.
		seed := cfg.Seed + int64(fi)*1000
		for _, e := range entries {
			// Actor entries reuse a registered scheme's scenario skeleton —
			// topology, seed, and flow schedule are scheme-independent —
			// then swap every flow's controller for an agent driving the
			// loaded policy. One policy clone per scenario: the MLP forward
			// pass shares scratch buffers, and batch cells run concurrently.
			buildScheme := e.name
			if e.policy != nil {
				buildScheme = cfg.Schemes[0]
			}
			sc := fam.build(cfg, buildScheme, seed)
			if e.policy != nil {
				p := core.ClonePolicy(e.policy)
				for i := range sc.Flows {
					sc.Flows[i].Scheme = ""
					sc.Flows[i].CC = core.NewAgent(core.DefaultConfig(), p)
				}
			}
			var ck *check.Checker
			if cfg.Check {
				ck = check.NewChecker()
				ck.Attach(&sc)
			}
			jobs = append(jobs, job{scheme: e.name, fam: famName, baseRTT: sc.BaseRTT})
			scenarios = append(scenarios, sc)
			checkers = append(checkers, ck)
		}
	}

	results, err := runner.RunBatch(scenarios, cfg.Workers)
	if err != nil {
		return nil, err
	}

	entryNames := make([]string, len(entries))
	for i, e := range entries {
		entryNames[i] = e.name
	}
	actorNames := make([]string, len(cfg.Actors))
	for i, a := range cfg.Actors {
		actorNames[i] = a.Name
	}
	rep := &Report{
		Schemes: entryNames, Actors: actorNames, Families: cfg.Families,
		Flows: cfg.Flows, Duration: cfg.Duration, Seed: cfg.Seed,
	}
	for i, res := range results {
		cell := scoreResult(res, jobs[i].scheme, jobs[i].fam, jobs[i].baseRTT)
		if ck := checkers[i]; ck != nil {
			ck.Finish(res)
			cell.Violations = ck.Total()
		}
		rep.Cells = append(rep.Cells, cell)
	}
	rep.rank()
	return rep, nil
}

// scoreResult folds one finished scenario into a scored cell — the single
// metric pipeline shared by the tournament grid and the regression gate, so
// a policy is judged by exactly the same arithmetic in both.
func scoreResult(res *runner.Result, scheme, fam string, baseRTT float64) Cell {
	cell := Cell{Scheme: scheme, Family: fam, BaseRTT: baseRTT}
	cell.Utilization = res.Utilization
	tputs := make([]float64, len(res.Flows))
	var delivered, lost int64
	var rttSum float64
	var rttN int
	for j, fr := range res.Flows {
		tputs[j] = fr.AvgTputBps
		delivered += fr.DeliveredBytes
		lost += fr.LostBytes
		if fr.AvgRTT > 0 {
			rttSum += fr.AvgRTT
			rttN++
		}
	}
	cell.Jain = metrics.Jain(tputs)
	if rttN > 0 {
		cell.AvgRTT = rttSum / float64(rttN)
	}
	if tot := delivered + lost; tot > 0 {
		cell.LossRate = float64(lost) / float64(tot)
	}
	cell.Score = score(cell)
	return cell
}

// score folds a cell into one number: throughput × fairness × delay, the
// Astraea reward axes. The RTT penalty is BaseRTT/AvgRTT — 1.0 for an empty
// queue, shrinking as standing queues inflate delay — clamped to [0,1] so
// sampling noise cannot reward a sub-propagation artifact.
func score(c Cell) float64 {
	if c.AvgRTT <= 0 {
		return 0 // no acked data: the scheme did not function at all
	}
	rttPenalty := c.BaseRTT / c.AvgRTT
	if rttPenalty > 1 {
		rttPenalty = 1
	}
	util := c.Utilization
	if util > 1 {
		util = 1
	}
	s := util * c.Jain * rttPenalty
	if math.IsNaN(s) || s < 0 {
		return 0
	}
	return s
}

// rank aggregates cells into per-scheme standings sorted by mean score
// (ties broken by name so the report is deterministic).
func (r *Report) rank() {
	agg := make(map[string]*Standing, len(r.Schemes))
	for _, s := range r.Schemes {
		agg[s] = &Standing{Scheme: s, ByFam: make(map[string]float64, len(r.Families))}
	}
	for _, c := range r.Cells {
		st := agg[c.Scheme]
		st.ByFam[c.Family] = c.Score
		st.Score += c.Score
	}
	n := float64(len(r.Families))
	r.Ranking = r.Ranking[:0]
	for _, s := range r.Schemes {
		st := agg[s]
		if n > 0 {
			st.Score /= n
		}
		r.Ranking = append(r.Ranking, *st)
	}
	sort.SliceStable(r.Ranking, func(i, j int) bool {
		if r.Ranking[i].Score != r.Ranking[j].Score {
			return r.Ranking[i].Score > r.Ranking[j].Score
		}
		return r.Ranking[i].Scheme < r.Ranking[j].Scheme
	})
	for i := range r.Ranking {
		r.Ranking[i].Rank = i + 1
	}
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable emits the ranked standings and the full cell grid as text.
func (r *Report) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "rank\tscheme\tscore")
	for _, fam := range r.Families {
		fmt.Fprintf(tw, "\t%s", fam)
	}
	fmt.Fprintln(tw)
	for _, st := range r.Ranking {
		fmt.Fprintf(tw, "%d\t%s\t%.4f", st.Rank, st.Scheme, st.Score)
		for _, fam := range r.Families {
			fmt.Fprintf(tw, "\t%.4f", st.ByFam[fam])
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "scheme\tfamily\tutil\tjain\tavg_rtt_ms\tloss\tscore\tviolations")
	for _, c := range r.Cells {
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.2f\t%.4f\t%.4f\t%d\n",
			c.Scheme, c.Family, c.Utilization, c.Jain, c.AvgRTT*1000, c.LossRate, c.Score, c.Violations)
	}
	return tw.Flush()
}
