package cc

import (
	"repro/internal/transport"
)

func init() { Register("aurora", func() transport.CongestionControl { return NewAurora(nil) }) }

// AuroraPolicy maps Aurora's observation vector to an action in (-1,1).
// The observation follows the Aurora paper: a history of (send ratio,
// latency ratio, latency gradient) triples.
type AuroraPolicy interface {
	Act(obs []float64) float64
}

// Aurora reproduces the single-agent RL controller of Jay et al. (ICML'19).
// It is rate-based: every monitor interval the policy emits an action a that
// scales the sending rate multiplicatively (the same mapping as Eq. 3 but on
// rate). Its reward (Eq. 1: 10*thr - 1000*lat - 2000*loss) makes the learned
// policy throughput-dominant: it keeps pushing rate until loss is heavy and
// is largely insensitive to queueing delay and to competing flows — the
// behaviour Figs. 1a, 14 and 19 document. The default policy here is a
// distilled deterministic rendering of that learned behaviour; a trained
// neural policy can be substituted through the AuroraPolicy interface.
type Aurora struct {
	policy  AuroraPolicy
	rateBps float64
	alpha   float64 // action-to-rate coefficient

	history []auroraObs
}

type auroraObs struct {
	sendRatio float64
	latRatio  float64
	latGrad   float64
}

// NewAurora builds an Aurora controller; a nil policy selects the distilled
// default.
func NewAurora(p AuroraPolicy) *Aurora {
	if p == nil {
		p = distilledAurora{}
	}
	return &Aurora{policy: p, rateBps: 4e6, alpha: 0.025}
}

// distilledAurora encodes the learned policy's closed-loop behaviour:
// maximize throughput, back off only under significant loss, shrug at
// latency (its latency penalty is dominated by the throughput term in the
// regimes the reward was trained on).
type distilledAurora struct{}

// Act implements AuroraPolicy. obs is the most recent (sendRatio, latRatio,
// latGrad) triple repeated over history; only the head matters here.
func (distilledAurora) Act(obs []float64) float64 {
	if len(obs) < 3 {
		return 1
	}
	sendRatio, _, latGrad := obs[0], obs[1], obs[2]
	// sendRatio = sent/delivered; > ~1.05 means ~5% loss.
	lossFrac := 0.0
	if sendRatio > 1 {
		lossFrac = 1 - 1/sendRatio
	}
	switch {
	case lossFrac > 0.12:
		return -1
	case lossFrac > 0.05:
		return -0.3
	case latGrad > 2.0: // extreme latency blowup finally registers
		return -0.05
	default:
		return 1 // full throttle
	}
}

// Name implements transport.CongestionControl.
func (a *Aurora) Name() string { return "aurora" }

// Init implements transport.CongestionControl.
func (a *Aurora) Init(f *transport.Flow) {
	f.SetPacingBps(a.rateBps)
	f.SetCwnd(1e9)
	f.ScheduleMTP(0.05)
}

// OnAck implements transport.CongestionControl.
func (a *Aurora) OnAck(f *transport.Flow, e transport.AckEvent) {}

// OnLoss implements transport.CongestionControl.
func (a *Aurora) OnLoss(f *transport.Flow, e transport.LossEvent) {}

// OnMTP implements transport.CongestionControl.
func (a *Aurora) OnMTP(f *transport.Flow, st transport.MTPStats) {
	sendRatio := 1.0
	if st.ThroughputBps > 0 {
		sendRatio = st.SendRateBps / st.ThroughputBps
	} else if st.SendRateBps > 0 {
		sendRatio = 10
	}
	latRatio := 1.0
	if st.MinRTT > 0 && st.AvgRTT > 0 {
		latRatio = st.AvgRTT / st.MinRTT
	}
	latGrad := 0.0
	if n := len(a.history); n > 0 && st.MinRTT > 0 {
		latGrad = (latRatio - a.history[n-1].latRatio)
	}
	a.history = append(a.history, auroraObs{sendRatio, latRatio, latGrad})
	if len(a.history) > 10 {
		a.history = a.history[1:]
	}

	obs := make([]float64, 0, 30)
	for i := len(a.history) - 1; i >= 0; i-- {
		h := a.history[i]
		obs = append(obs, h.sendRatio, h.latRatio, h.latGrad)
	}
	act := clamp(a.policy.Act(obs), -1, 1)
	if act >= 0 {
		a.rateBps *= 1 + 10*a.alpha*act
	} else {
		a.rateBps /= 1 - 10*a.alpha*act
	}
	if a.rateBps < 0.3e6 {
		a.rateBps = 0.3e6
	}
	f.SetPacingBps(a.rateBps)
	mi := f.SRTT()
	if mi <= 0 {
		mi = 0.05
	}
	f.ScheduleMTP(mi / 2)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
