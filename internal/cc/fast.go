package cc

import (
	"repro/internal/transport"
)

func init() { Register("fast", func() transport.CongestionControl { return NewFast() }) }

// Fast implements FAST TCP (Jin, Wei & Low, INFOCOM'04): a delay-based
// high-speed scheme that updates the window once per RTT toward the point
// where it keeps Alpha packets queued at the bottleneck:
//
//	w ← min(2w, (1-Gamma)·w + Gamma·(baseRTT/RTT·w + Alpha))
//
// Like Vegas it equalizes per-flow queue occupancy (Alpha packets each), so
// competing FAST flows share fairly; unlike Vegas the multiplicative update
// converges quickly on high-BDP paths.
type Fast struct {
	Alpha float64 // target queued packets per flow
	Gamma float64 // update smoothing

	// startup doubles the window per RTT until queueing appears; the
	// equation's steady growth of Alpha/2 packets per RTT would otherwise
	// take tens of seconds to fill a high-BDP pipe. Exit requires the
	// queueing estimate to exceed Alpha/2 on several consecutive acks, so
	// the transient bursts of the doubling itself do not end it early.
	startup      bool
	queuedStreak int
	lastUpdate   float64
	recoveryEnd  int64
	inRecovery   bool
}

// NewFast returns a FAST instance with moderate parameters (Alpha 20
// suits the 10-1000 Mbps range used in the experiments).
func NewFast() *Fast { return &Fast{Alpha: 20, Gamma: 0.5, startup: true} }

// Name implements transport.CongestionControl.
func (fa *Fast) Name() string { return "fast" }

// Init implements transport.CongestionControl.
func (fa *Fast) Init(f *transport.Flow) {}

// OnAck implements transport.CongestionControl.
func (fa *Fast) OnAck(f *transport.Flow, e transport.AckEvent) {
	if fa.inRecovery {
		if e.PktNum >= fa.recoveryEnd {
			fa.inRecovery = false
		} else {
			return
		}
	}
	if e.SRTT <= 0 || e.MinRTT <= 0 {
		return
	}
	w := f.Cwnd()
	if fa.startup {
		queued := w * (1 - e.MinRTT/e.SRTT)
		if queued >= fa.Alpha/2 {
			fa.queuedStreak++
		} else {
			fa.queuedStreak = 0
		}
		if fa.queuedStreak >= 8 {
			fa.startup = false
			f.SetPacingBps(0) // hand rate control back to ack clocking
		} else {
			f.SetCwnd(w + 1) // double per RTT
			// Pace the doubling so its bursts do not fake the queueing
			// signal that ends startup.
			f.DefaultPacing()
			return
		}
	}
	if e.Now-fa.lastUpdate < e.SRTT {
		return // once per RTT
	}
	fa.lastUpdate = e.Now
	target := (1-fa.Gamma)*w + fa.Gamma*(e.MinRTT/e.SRTT*w+fa.Alpha)
	if target > 2*w {
		target = 2 * w
	}
	f.SetCwnd(target)
}

// OnLoss implements transport.CongestionControl: FAST is delay-driven but
// halves on timeout as a safety valve.
func (fa *Fast) OnLoss(f *transport.Flow, e transport.LossEvent) {
	fa.startup = false
	if e.Timeout {
		f.SetCwnd(f.Cwnd() / 2)
		return
	}
	if fa.inRecovery && e.PktNum < fa.recoveryEnd {
		return
	}
	f.SetCwnd(f.Cwnd() * 0.875) // mild reduction; delay signal dominates
	fa.inRecovery = true
	fa.recoveryEnd = f.NextPktNum()
}

// OnMTP implements transport.CongestionControl; FAST is ack-driven.
func (fa *Fast) OnMTP(f *transport.Flow, st transport.MTPStats) {}
