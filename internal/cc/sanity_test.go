package cc

// Per-scheme sanity tests for the learning-based and delay-based baselines:
// window/rate bounds, reaction to loss, and reaction to RTT rise. These pin
// the control laws the comparison figures depend on — a scheme that stops
// backing off (or starts overreacting) would silently reshape every
// fairness and friendliness result.

import (
	"testing"

	"repro/internal/transport"
)

// --- Copa ---

func TestCopaTimeoutHalvesWindowLossIgnored(t *testing.T) {
	c := NewCopa()
	_, f := newTestFlow(c)
	f.SetCwnd(80)
	// Copa is delay-controlled: plain loss does not move the window.
	c.OnLoss(f, transport.LossEvent{PktNum: 5, Bytes: 1500, Packets: 1})
	if f.Cwnd() != 80 {
		t.Fatalf("cwnd after plain loss %v, want 80", f.Cwnd())
	}
	c.OnLoss(f, transport.LossEvent{Timeout: true})
	if f.Cwnd() != 40 {
		t.Fatalf("cwnd after timeout %v, want 40", f.Cwnd())
	}
}

func TestCopaRTTRiseShrinksWindowWithFloor(t *testing.T) {
	c := NewCopa()
	_, f := newTestFlow(c)
	f.SetCwnd(50)
	// Closed loop: every window packet contributes 2 ms of queueing delay on
	// a 10 ms path, so holding 50 packets means a 110 ms RTT. Copa's
	// inverse-delay target then sits far below 50, and the window must come
	// down toward it — never through the floor of 2.
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		w := f.Cwnd()
		rtt := 0.010 + 0.002*w
		c.OnAck(f, transport.AckEvent{
			Now: float64(i) * 0.001, RTT: rtt, SRTT: rtt, MinRTT: 0.010,
		})
		if f.Cwnd() < 2 {
			t.Fatalf("cwnd %v fell below the floor of 2", f.Cwnd())
		}
		if i >= n/2 {
			sum += f.Cwnd()
		}
	}
	if avg := sum / (n / 2); avg > 30 {
		t.Fatalf("mean cwnd %v over the second half did not shrink toward the delay target", avg)
	}
}

func TestCopaLowDelayGrowsWindow(t *testing.T) {
	c := NewCopa()
	_, f := newTestFlow(c)
	f.SetCwnd(10)
	// Near-empty queue: the inverse-delay target is huge, so the window must
	// climb.
	for i := 0; i < 200; i++ {
		c.OnAck(f, transport.AckEvent{
			Now: float64(i) * 0.001, RTT: 0.0101, SRTT: 0.010, MinRTT: 0.010,
		})
	}
	if f.Cwnd() <= 10 {
		t.Fatalf("cwnd %v did not grow on an empty queue", f.Cwnd())
	}
}

// --- Remy ---

func TestRemyLossBackoffOncePerWindow(t *testing.T) {
	r := NewRemy()
	_, f := newTestFlow(r)
	f.SetCwnd(100)
	r.OnLoss(f, transport.LossEvent{PktNum: 5, Bytes: 1500, Packets: 1})
	if f.Cwnd() != 70 {
		t.Fatalf("cwnd after loss %v, want 70", f.Cwnd())
	}
	// A second loss from the same window (PktNum below recovery end) must
	// not compound the backoff.
	r.OnLoss(f, transport.LossEvent{PktNum: 6, Bytes: 1500, Packets: 1})
	if f.Cwnd() != 70 {
		t.Fatalf("cwnd reduced twice in one window: %v", f.Cwnd())
	}
	r.OnLoss(f, transport.LossEvent{Timeout: true})
	if f.Cwnd() != 35 {
		t.Fatalf("cwnd after timeout %v, want 35", f.Cwnd())
	}
}

func TestRemyRTTRiseSelectsDecreaseRule(t *testing.T) {
	r := NewRemy()
	_, f := newTestFlow(r)
	f.SetCwnd(100)
	// rttRatio 2.0 lands in the heavy-queue rule (x0.8, -1).
	r.OnMTP(f, transport.MTPStats{MinRTT: 0.010, AvgRTT: 0.020, ThroughputBps: 5e6, Duration: 0.02})
	if f.Cwnd() != 100*0.8-1 {
		t.Fatalf("cwnd after heavy-queue rule %v, want 79", f.Cwnd())
	}
	// The same rule from a tiny window must respect the floor of 2.
	f.SetCwnd(2)
	r.OnMTP(f, transport.MTPStats{MinRTT: 0.010, AvgRTT: 0.020, ThroughputBps: 5e6, Duration: 0.02})
	if f.Cwnd() < 2 {
		t.Fatalf("cwnd %v fell below the floor of 2", f.Cwnd())
	}
}

func TestRemyEmptyQueueRampsUp(t *testing.T) {
	r := NewRemy()
	_, f := newTestFlow(r)
	f.SetCwnd(100)
	// rttRatio 1.05 lands in the headroom rule (x1.25, +3).
	r.OnMTP(f, transport.MTPStats{MinRTT: 0.010, AvgRTT: 0.0105, ThroughputBps: 5e6, Duration: 0.02})
	if f.Cwnd() != 100*1.25+3 {
		t.Fatalf("cwnd after headroom rule %v, want 128", f.Cwnd())
	}
}

func TestRemyHoldsWithoutRTTSignal(t *testing.T) {
	r := NewRemy()
	_, f := newTestFlow(r)
	f.SetCwnd(100)
	r.OnMTP(f, transport.MTPStats{MinRTT: 0, AvgRTT: 0, Duration: 0.02})
	if f.Cwnd() != 100 {
		t.Fatalf("cwnd moved without an RTT signal: %v", f.Cwnd())
	}
}

// --- Vivace ---

func TestVivaceRTTRiseLowersUtilityAndRate(t *testing.T) {
	v := NewVivace(DefaultVivaceConfig())
	_, f := newTestFlow(v)
	v.Init(f)
	rate0 := v.rateBps
	// Drive paired monitor intervals where latency keeps rising while the
	// up-probe is active: the latency penalty puts the gradient against
	// pushing harder, so the decided rate must come down, never below floor.
	avgRTT := 0.020
	for i := 0; i < 40; i++ {
		st := transport.MTPStats{
			Duration: 0.02, AvgRTT: avgRTT, MinRTT: 0.010,
			ThroughputBps: 5e6, LossRate: 0.3,
		}
		avgRTT += 0.004
		v.OnMTP(f, st)
		if v.rateBps < 0.12e6 {
			t.Fatalf("rate %v fell below the 0.12 Mbps floor", v.rateBps)
		}
	}
	if v.rateBps >= rate0 {
		t.Fatalf("rate %v did not drop under rising latency and loss (start %v)", v.rateBps, rate0)
	}
}

func TestVivaceIsRateBased(t *testing.T) {
	v := NewVivace(DefaultVivaceConfig())
	_, f := newTestFlow(v)
	v.Init(f)
	// The window must be parked far out of the way: Vivace controls pacing.
	if f.Cwnd() < 1e8 {
		t.Fatalf("cwnd %v; vivace should park the window out of the way", f.Cwnd())
	}
	if f.PacingBps() <= 0 {
		t.Fatal("vivace did not set a pacing rate")
	}
}

// --- Orca ---

func TestOrcaLossDelegatesToCubic(t *testing.T) {
	o := NewOrca(nil)
	_, f := newTestFlow(o)
	f.SetCwnd(100)
	o.OnLoss(f, transport.LossEvent{PktNum: 10, Bytes: 1500, Packets: 1})
	if f.Cwnd() != 70 {
		t.Fatalf("cwnd after loss %v, want 70 (cubic beta)", f.Cwnd())
	}
}

func TestOrcaOverlayReactsToRTTRise(t *testing.T) {
	o := NewOrca(nil)
	_, f := newTestFlow(o)
	f.SetCwnd(100)
	// Deep queue (latency ratio 2.5): the overlay shrinks the window.
	o.OnMTP(f, transport.MTPStats{
		MinRTT: 0.010, AvgRTT: 0.025, ThroughputBps: 9e6, MaxTputBps: 10e6,
	})
	if f.Cwnd() >= 100 {
		t.Fatalf("cwnd %v did not shrink on a deep queue", f.Cwnd())
	}
	// Healthy operating point: the overlay leaves Cubic alone.
	f.SetCwnd(100)
	o.OnMTP(f, transport.MTPStats{
		MinRTT: 0.010, AvgRTT: 0.011, ThroughputBps: 9.5e6, MaxTputBps: 10e6,
	})
	if f.Cwnd() != 100 {
		t.Fatalf("cwnd %v moved at a healthy operating point", f.Cwnd())
	}
	// Underutilized link with no queue: push.
	o.OnMTP(f, transport.MTPStats{
		MinRTT: 0.010, AvgRTT: 0.011, ThroughputBps: 5e6, MaxTputBps: 10e6,
	})
	if f.Cwnd() <= 100 {
		t.Fatalf("cwnd %v did not grow on an underutilized link", f.Cwnd())
	}
}

// --- Aurora ---

func TestAuroraBacksOffOnLossDownToFloor(t *testing.T) {
	a := NewAurora(nil)
	_, f := newTestFlow(a)
	a.Init(f)
	// Persistent heavy loss (send rate double the delivery rate): the policy
	// must keep backing off, bottoming out exactly at the rate floor.
	for i := 0; i < 100; i++ {
		a.OnMTP(f, transport.MTPStats{
			Duration: 0.02, ThroughputBps: 1e6, SendRateBps: 2e6,
			MinRTT: 0.010, AvgRTT: 0.012,
		})
		if a.rateBps < 0.3e6 {
			t.Fatalf("rate %v fell below the 0.3 Mbps floor", a.rateBps)
		}
	}
	if a.rateBps != 0.3e6 {
		t.Fatalf("rate %v did not reach the floor under persistent heavy loss", a.rateBps)
	}
}

func TestAuroraShrugsAtLatencyRise(t *testing.T) {
	a := NewAurora(nil)
	_, f := newTestFlow(a)
	a.Init(f)
	rate0 := a.rateBps
	// Loss-free intervals with steadily growing latency: Aurora's reward is
	// throughput-dominated, so it keeps pushing — the behaviour behind the
	// paper's Fig. 1a latency comparison. (A latency *blowup* with gradient
	// > 2 per interval is the only delay signal that registers.)
	avgRTT := 0.012
	for i := 0; i < 20; i++ {
		a.OnMTP(f, transport.MTPStats{
			Duration: 0.02, ThroughputBps: 5e6, SendRateBps: 5e6,
			MinRTT: 0.010, AvgRTT: avgRTT,
		})
		avgRTT += 0.002
	}
	if a.rateBps <= rate0 {
		t.Fatalf("rate %v backed off on latency alone (start %v)", a.rateBps, rate0)
	}
}
