package cc

import (
	"testing"

	"repro/internal/transport"
)

func TestCompoundRegistered(t *testing.T) {
	c := MustNew("compound")
	if c.Name() != "compound" {
		t.Fatal(c.Name())
	}
	a := MustNew("allegro")
	if a.Name() != "allegro" {
		t.Fatal(a.Name())
	}
}

func TestCompoundDelayComponentRetreats(t *testing.T) {
	c := NewCompound()
	_, f := newTestFlow(c)
	c.Init(f)
	c.ssthresh = 1 // skip slow start
	c.cwnd, c.dwnd = 50, 50
	c.apply(f)
	// Large queueing delay: diff = w*(1 - min/srtt)... expected-actual
	// large → dwnd shrinks.
	c.OnAck(f, transport.AckEvent{Now: 10, SRTT: 0.040, MinRTT: 0.010})
	if c.dwnd >= 50 {
		t.Fatalf("dwnd did not retreat under queueing: %v", c.dwnd)
	}
}

func TestCompoundDelayComponentGrowsOnIdleQueue(t *testing.T) {
	c := NewCompound()
	_, f := newTestFlow(c)
	c.Init(f)
	c.ssthresh = 1
	c.cwnd, c.dwnd = 50, 0
	c.apply(f)
	c.OnAck(f, transport.AckEvent{Now: 10, SRTT: 0.0101, MinRTT: 0.010})
	if c.dwnd <= 0 {
		t.Fatalf("dwnd did not grow on an empty queue: %v", c.dwnd)
	}
}

func TestCompoundHalvesOnLoss(t *testing.T) {
	c := NewCompound()
	_, f := newTestFlow(c)
	c.Init(f)
	c.cwnd, c.dwnd = 60, 40
	c.apply(f)
	c.OnLoss(f, transport.LossEvent{PktNum: 5, Bytes: 1500, Packets: 1})
	if w := f.Cwnd(); w < 49 || w > 51 {
		t.Fatalf("window after loss %v, want ≈50", w)
	}
}

func TestAllegroUtilityShape(t *testing.T) {
	a := NewAllegro()
	// Below the 5% knee: utility grows with rate, mild loss discount.
	if a.utility(50, 0.0) <= a.utility(25, 0.0) {
		t.Fatal("utility not increasing in rate")
	}
	// Above the knee: utility collapses (goes negative).
	if a.utility(50, 0.10) >= 0 {
		t.Fatalf("utility at 10%% loss = %v, want negative", a.utility(50, 0.10))
	}
	// Random loss below the knee is tolerated.
	if a.utility(50, 0.01) < 0.8*a.utility(50, 0) {
		t.Fatal("1% loss should barely dent Allegro's utility")
	}
}
