package cc

import (
	"repro/internal/transport"
)

func init() { Register("remy", func() transport.CongestionControl { return NewRemy() }) }

// remyRule is one entry of the RemyCC rule table: a region of observation
// space mapped to a window action (multiple, increment) and a minimum
// intersend gap expressed as a fraction of the minimum RTT.
type remyRule struct {
	// region bounds on rttRatio = srtt/minRTT
	rttRatioLo, rttRatioHi float64
	// region bounds on ackRateRatio = recent ack rate / best ack rate
	ackLo, ackHi float64

	windowMultiple  float64
	windowIncrement float64
	intersendFrac   float64 // pacing gap multiplier on minRTT/cwnd
}

// Remy emulates a RemyCC: a computer-generated rule table mapping congestion
// signals (RTT ratio, ack-rate ratio) to window actions. Remy tables are
// optimized offline for an assumed network range; outside it they behave
// conservatively, which matches the paper's observation that Remy achieves
// modest utilization on wide-area paths (Fig. 15). This hand-built table
// encodes the conservative, delay-sensitive character of published RemyCCs,
// plus a multiplicative loss backoff so the table cannot wedge itself into
// sustained overflow when the buffer caps the observable RTT ratio.
type Remy struct {
	table       []remyRule
	bestAckBps  float64
	recentBps   float64
	recoveryEnd int64
	inRecovery  bool
}

// NewRemy returns a Remy instance.
func NewRemy() *Remy {
	return &Remy{table: []remyRule{
		// Queue empty, plenty of headroom: multiplicative+additive ramp.
		{1.0, 1.15, 0, 2, 1.25, 3, 0.9},
		// Mild queueing, good ack rate: additive increase.
		{1.15, 1.4, 0.7, 2, 1.0, 1, 1.0},
		// Mild queueing, sagging ack rate: hold.
		{1.15, 1.4, 0, 0.7, 1.0, 0, 1.1},
		// Building queue: gentle decrease.
		{1.4, 1.8, 0, 2, 0.92, 0, 1.2},
		// Heavy queue: strong decrease.
		{1.8, 1e9, 0, 2, 0.8, -1, 1.5},
	}}
}

// Name implements transport.CongestionControl.
func (r *Remy) Name() string { return "remy" }

// Init implements transport.CongestionControl.
func (r *Remy) Init(f *transport.Flow) {
	f.ScheduleMTP(0.02)
}

// OnAck implements transport.CongestionControl.
func (r *Remy) OnAck(f *transport.Flow, e transport.AckEvent) {}

// OnLoss implements transport.CongestionControl: multiplicative backoff at
// most once per window, halving on timeout.
func (r *Remy) OnLoss(f *transport.Flow, e transport.LossEvent) {
	if e.Timeout {
		f.SetCwnd(f.Cwnd() / 2)
		return
	}
	if r.inRecovery && e.PktNum < r.recoveryEnd {
		return
	}
	f.SetCwnd(f.Cwnd() * 0.7)
	r.inRecovery = true
	r.recoveryEnd = f.NextPktNum()
}

// OnMTP implements transport.CongestionControl: rule evaluation once per
// RTT.
func (r *Remy) OnMTP(f *transport.Flow, st transport.MTPStats) {
	defer func() {
		next := f.SRTT()
		if next <= 0 {
			next = 0.02
		}
		f.ScheduleMTP(next)
	}()
	if r.inRecovery && f.LargestAcked() >= r.recoveryEnd {
		r.inRecovery = false
	}
	if st.MinRTT <= 0 || st.AvgRTT <= 0 {
		// No signal yet (e.g. started into a full queue): hold rather than
		// ramp blindly.
		return
	}
	if st.ThroughputBps > 0 {
		r.recentBps = 0.5*r.recentBps + 0.5*st.ThroughputBps
		if r.recentBps > r.bestAckBps {
			r.bestAckBps = r.recentBps
		}
	}
	rttRatio := st.AvgRTT / st.MinRTT
	ackRatio := 1.0
	if r.bestAckBps > 0 {
		ackRatio = r.recentBps / r.bestAckBps
	}
	for _, rule := range r.table {
		if rttRatio >= rule.rttRatioLo && rttRatio < rule.rttRatioHi &&
			ackRatio >= rule.ackLo && ackRatio < rule.ackHi {
			w := f.Cwnd()*rule.windowMultiple + rule.windowIncrement
			if w < 2 {
				w = 2
			}
			f.SetCwnd(w)
			if st.MinRTT > 0 {
				// Pace at cwnd per (intersendFrac * minRTT).
				f.SetPacingBps(f.Cwnd() * transport.MSS * 8 / (rule.intersendFrac * st.MinRTT))
			}
			return
		}
	}
}
