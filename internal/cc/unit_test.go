package cc

// Unit tests for scheme internals: window math, filters and gradients,
// independent of the full emulation loop.

import (
	"math"
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/transport"
)

// newTestFlow builds a started flow on a generous link so cwnd setters can
// be exercised directly.
func newTestFlow(cc transport.CongestionControl) (*sim.Simulator, *transport.Flow) {
	s := sim.New(1)
	d := netem.NewDumbbell(s, netem.DumbbellConfig{RateBps: 1e9, BaseRTT: 0.010, QueueBytes: 1 << 30})
	f := transport.NewFlow(s, transport.FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc})
	f.Start()
	s.Run(0.001)
	return s, f
}

func TestRenoHalvesOnLoss(t *testing.T) {
	r := NewReno()
	_, f := newTestFlow(r)
	f.SetCwnd(100)
	r.OnLoss(f, transport.LossEvent{PktNum: 50, Bytes: 1500, Packets: 1})
	if math.Abs(f.Cwnd()-50) > 1e-9 {
		t.Fatalf("cwnd after loss %v, want 50", f.Cwnd())
	}
	// Second loss within the same window: no further reduction.
	r.OnLoss(f, transport.LossEvent{PktNum: 51, Bytes: 1500, Packets: 1})
	if math.Abs(f.Cwnd()-50) > 1e-9 {
		t.Fatalf("cwnd reduced twice in one window: %v", f.Cwnd())
	}
}

func TestRenoTimeoutResetsToOne(t *testing.T) {
	r := NewReno()
	_, f := newTestFlow(r)
	f.SetCwnd(100)
	r.OnLoss(f, transport.LossEvent{Timeout: true})
	if f.Cwnd() > 2 {
		t.Fatalf("cwnd after RTO %v, want minimum", f.Cwnd())
	}
}

func TestRenoSlowStartGrowth(t *testing.T) {
	r := NewReno()
	_, f := newTestFlow(r)
	start := f.Cwnd()
	// Each ack in slow start adds one packet.
	for i := 0; i < 10; i++ {
		r.OnAck(f, transport.AckEvent{PktNum: int64(i), Bytes: 1500})
	}
	if f.Cwnd() != start+10 {
		t.Fatalf("slow start growth %v from %v", f.Cwnd(), start)
	}
}

func TestCubicBetaReduction(t *testing.T) {
	cu := NewCubic()
	_, f := newTestFlow(cu)
	f.SetCwnd(100)
	cu.OnLoss(f, transport.LossEvent{PktNum: 10, Bytes: 1500, Packets: 1})
	if math.Abs(f.Cwnd()-70) > 1e-9 {
		t.Fatalf("cwnd after loss %v, want 70 (beta 0.7)", f.Cwnd())
	}
}

func TestCubicRecoversTowardWmax(t *testing.T) {
	cu := NewCubic()
	_, f := newTestFlow(cu)
	cu.ssthresh = 1 // force congestion avoidance
	f.SetCwnd(100)
	cu.OnLoss(f, transport.LossEvent{PktNum: 10, Bytes: 1500, Packets: 1})
	cu.inRecovery = false
	w0 := f.Cwnd()
	// Feed acks over simulated time; the cubic function must pull the
	// window back toward the pre-loss maximum.
	for i := 0; i < 3000; i++ {
		cu.OnAck(f, transport.AckEvent{PktNum: int64(100 + i), Now: 0.001 * float64(i), SRTT: 0.01})
	}
	if f.Cwnd() <= w0 {
		t.Fatalf("cubic did not grow after reduction: %v -> %v", w0, f.Cwnd())
	}
	if f.Cwnd() < 85 {
		t.Fatalf("cubic recovery too slow: reached %v of Wmax 100", f.Cwnd())
	}
}

func TestVegasWindowReaction(t *testing.T) {
	v := NewVegas()
	_, f := newTestFlow(v)
	v.ssthresh = 1
	f.SetCwnd(100)
	// diff = cwnd*(srtt-base)/srtt; base 10 ms, srtt 10.2 ms → diff ≈ 1.96
	// (< alpha 2): increase.
	v.OnAck(f, transport.AckEvent{Now: 1, SRTT: 0.0102, MinRTT: 0.010})
	if f.Cwnd() != 101 {
		t.Fatalf("vegas under alpha should +1: %v", f.Cwnd())
	}
	// diff = 100*(0.012-0.010)/0.012 = 16.7 (> beta 4): decrease.
	v.OnAck(f, transport.AckEvent{Now: 2, SRTT: 0.012, MinRTT: 0.010})
	if f.Cwnd() != 100 {
		t.Fatalf("vegas over beta should -1: %v", f.Cwnd())
	}
	// Within [alpha, beta]: hold. diff = 100*(0.0103-0.01)/0.0103 ≈ 2.9.
	v.OnAck(f, transport.AckEvent{Now: 3, SRTT: 0.0103, MinRTT: 0.010})
	if f.Cwnd() != 100 {
		t.Fatalf("vegas in band should hold: %v", f.Cwnd())
	}
}

func TestBBRPacingGainCycle(t *testing.T) {
	// The PROBE_BW gains must include exactly one 1.25 probe and one 0.75
	// drain phase per 8-phase cycle.
	var probes, drains int
	for _, g := range bbrCycleGains {
		switch {
		case g > 1:
			probes++
		case g < 1:
			drains++
		}
	}
	if probes != 1 || drains != 1 {
		t.Fatalf("gain cycle %v", bbrCycleGains)
	}
}

func TestBBRMaxFilterWindow(t *testing.T) {
	var m maxFilter
	m.update(0, 10, 5)
	m.update(1, 30, 5)
	m.update(2, 20, 5)
	if m.max() != 30 {
		t.Fatalf("max %v", m.max())
	}
	// The 30 sample ages out of the 5s window.
	m.update(7, 5, 5)
	if m.max() != 20 {
		t.Fatalf("max after expiry %v, want 20", m.max())
	}
}

func TestVivaceGradientStepsRateUp(t *testing.T) {
	v := NewVivace(DefaultVivaceConfig())
	v.rateBps = 10e6
	// Higher utility on the up-probe: gradient positive, rate increases.
	v.uUp, v.uDown = 5.0, 4.0
	v.haveUp, v.haveDown = true, true
	v.decide()
	if v.rateBps <= 10e6 {
		t.Fatalf("positive gradient did not raise rate: %v", v.rateBps)
	}
}

func TestVivaceGradientStepsRateDown(t *testing.T) {
	v := NewVivace(DefaultVivaceConfig())
	v.rateBps = 10e6
	v.uUp, v.uDown = 4.0, 5.0
	v.haveUp, v.haveDown = true, true
	v.decide()
	if v.rateBps >= 10e6 {
		t.Fatalf("negative gradient did not lower rate: %v", v.rateBps)
	}
	if v.rateBps < 0.12e6 {
		t.Fatalf("rate below floor: %v", v.rateBps)
	}
}

func TestVivaceThetaEscalation(t *testing.T) {
	v := NewVivace(DefaultVivaceConfig())
	v.rateBps = 10e6
	theta0 := v.theta
	for i := 0; i < 3; i++ {
		v.uUp, v.uDown = 5.0, 4.0
		v.decide()
	}
	if v.theta <= theta0 {
		t.Fatalf("theta did not escalate on consistent gradients: %v", v.theta)
	}
	// A sign flip resets theta.
	v.uUp, v.uDown = 4.0, 5.0
	v.decide()
	if v.theta != theta0 {
		t.Fatalf("theta not reset on sign flip: %v", v.theta)
	}
}

func TestAuroraDistilledPolicyShape(t *testing.T) {
	p := distilledAurora{}
	// Clean network: full throttle.
	if a := p.Act([]float64{1.0, 1.0, 0}); a != 1 {
		t.Fatalf("clean network action %v", a)
	}
	// Heavy loss (send/deliver ratio 1.25 → 20% loss): back off.
	if a := p.Act([]float64{1.25, 1.5, 0}); a >= 0 {
		t.Fatalf("heavy-loss action %v", a)
	}
	// Moderate latency growth alone barely registers (the Eq. 1 reward is
	// throughput-dominated).
	if a := p.Act([]float64{1.0, 2.0, 0.5}); a < 0.5 {
		t.Fatalf("latency-only action %v; Aurora should stay aggressive", a)
	}
}

func TestOrcaDistilledPolicyShape(t *testing.T) {
	p := distilledOrca{}
	// Underutilized, no queue: push.
	if a := p.Act([]float64{0.5, 1.0, 0}); a <= 0 {
		t.Fatalf("underutilized action %v", a)
	}
	// Deep queue: back off.
	if a := p.Act([]float64{1.0, 2.5, 0}); a >= 0 {
		t.Fatalf("deep-queue action %v", a)
	}
	// Healthy: leave Cubic alone.
	if a := p.Act([]float64{0.95, 1.1, 0}); a != 0 {
		t.Fatalf("healthy action %v, want 0", a)
	}
}

func TestCopaVelocityDoubling(t *testing.T) {
	c := NewCopa()
	_, f := newTestFlow(c)
	f.SetCwnd(50)
	// Sustained same-direction updates across RTT boundaries double the
	// velocity.
	v0 := c.velocity
	for i := 0; i < 8; i++ {
		c.updateDirection(float64(i), 0.5, +1, f.Cwnd())
	}
	if c.velocity <= v0 {
		t.Fatalf("velocity did not double: %v", c.velocity)
	}
	// Direction flip resets it.
	c.updateDirection(100, 0.5, -1, f.Cwnd())
	if c.velocity != 1 {
		t.Fatalf("velocity not reset: %v", c.velocity)
	}
}

func TestRemyTableCoversSignalSpace(t *testing.T) {
	r := NewRemy()
	// Every plausible (rttRatio ≥ 1, ackRatio ∈ [0,1]) point must match a
	// rule — gaps would wedge the controller.
	for _, rr := range []float64{1.0, 1.1, 1.2, 1.39, 1.5, 1.79, 1.9, 3, 10} {
		for _, ar := range []float64{0, 0.3, 0.69, 0.71, 1.0} {
			found := false
			for _, rule := range r.table {
				if rr >= rule.rttRatioLo && rr < rule.rttRatioHi &&
					ar >= rule.ackLo && ar < rule.ackHi {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("no rule for rttRatio=%v ackRatio=%v", rr, ar)
			}
		}
	}
}
