package cc

import (
	"repro/internal/transport"
)

func init() { Register("reno", func() transport.CongestionControl { return NewReno() }) }

// Reno is the classical loss-based AIMD controller: slow start until
// ssthresh, then +1 packet per RTT; on a loss event, multiplicative decrease
// by half, at most once per window (NewReno-style fast recovery implemented
// with packet numbers).
type Reno struct {
	ssthresh    float64
	recoveryEnd int64
	inRecovery  bool
}

// NewReno returns a Reno instance.
func NewReno() *Reno { return &Reno{ssthresh: 1e9} }

// Name implements transport.CongestionControl.
func (r *Reno) Name() string { return "reno" }

// Init implements transport.CongestionControl.
func (r *Reno) Init(f *transport.Flow) {}

// OnAck implements transport.CongestionControl.
func (r *Reno) OnAck(f *transport.Flow, e transport.AckEvent) {
	if r.inRecovery {
		if e.PktNum >= r.recoveryEnd {
			r.inRecovery = false
		} else {
			return
		}
	}
	w := f.Cwnd()
	if w < r.ssthresh {
		f.SetCwnd(w + 1) // slow start: double per RTT
	} else {
		f.SetCwnd(w + 1/w) // congestion avoidance: +1 per RTT
	}
}

// OnLoss implements transport.CongestionControl.
func (r *Reno) OnLoss(f *transport.Flow, e transport.LossEvent) {
	if e.Timeout {
		r.ssthresh = f.Cwnd() / 2
		f.SetCwnd(1)
		r.inRecovery = true
		r.recoveryEnd = f.NextPktNum()
		return
	}
	if r.inRecovery && e.PktNum < r.recoveryEnd {
		return // one reduction per window
	}
	r.ssthresh = f.Cwnd() / 2
	if r.ssthresh < 2 {
		r.ssthresh = 2
	}
	f.SetCwnd(r.ssthresh)
	r.inRecovery = true
	r.recoveryEnd = f.NextPktNum()
}

// OnMTP implements transport.CongestionControl; Reno is purely ack-driven.
func (r *Reno) OnMTP(f *transport.Flow, st transport.MTPStats) {}
