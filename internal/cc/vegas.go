package cc

import (
	"repro/internal/transport"
)

func init() { Register("vegas", func() transport.CongestionControl { return NewVegas() }) }

// Vegas is the classical delay-based controller: it compares expected
// throughput (cwnd/baseRTT) against actual throughput (cwnd/RTT) and keeps
// the difference — the number of packets it estimates it has queued — within
// [alpha, beta], adjusting the window by one packet per RTT.
type Vegas struct {
	alpha, beta float64
	ssthresh    float64
	lastAdjust  float64
	recoveryEnd int64
	inRecovery  bool
}

// NewVegas returns a Vegas instance with the standard alpha=2, beta=4.
func NewVegas() *Vegas { return &Vegas{alpha: 2, beta: 4, ssthresh: 1e9} }

// Name implements transport.CongestionControl.
func (v *Vegas) Name() string { return "vegas" }

// Init implements transport.CongestionControl.
func (v *Vegas) Init(f *transport.Flow) {}

// OnAck implements transport.CongestionControl.
func (v *Vegas) OnAck(f *transport.Flow, e transport.AckEvent) {
	if v.inRecovery {
		if e.PktNum >= v.recoveryEnd {
			v.inRecovery = false
		} else {
			return
		}
	}
	w := f.Cwnd()
	base := e.MinRTT
	if base <= 0 || e.SRTT <= 0 {
		return
	}
	// Adjust once per RTT, not per ack.
	if e.Now-v.lastAdjust < e.SRTT {
		if w < v.ssthresh {
			f.SetCwnd(w + 0.5) // slower-than-Reno slow start, per Vegas
		}
		return
	}
	v.lastAdjust = e.Now
	diff := w * (e.SRTT - base) / e.SRTT // estimated queued packets
	switch {
	case w < v.ssthresh && diff < v.beta:
		f.SetCwnd(w + 1)
	case diff < v.alpha:
		f.SetCwnd(w + 1)
	case diff > v.beta:
		f.SetCwnd(w - 1)
	}
}

// OnLoss implements transport.CongestionControl.
func (v *Vegas) OnLoss(f *transport.Flow, e transport.LossEvent) {
	if e.Timeout {
		v.ssthresh = f.Cwnd() / 2
		f.SetCwnd(2)
		return
	}
	if v.inRecovery && e.PktNum < v.recoveryEnd {
		return
	}
	w := f.Cwnd() * 3 / 4
	v.ssthresh = w
	f.SetCwnd(w)
	v.inRecovery = true
	v.recoveryEnd = f.NextPktNum()
}

// OnMTP implements transport.CongestionControl; Vegas is ack-driven.
func (v *Vegas) OnMTP(f *transport.Flow, st transport.MTPStats) {}
