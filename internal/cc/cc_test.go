package cc

import (
	"testing"

	"repro/internal/transport"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{"allegro", "astraea", "aurora", "bbr", "compound", "copa", "cubic", "fast", "orca", "remy", "reno", "vegas", "vivace", "vivace-enhanced"}
	if len(names) != len(want) {
		t.Fatalf("registry has %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registry has %v, want %v", names, want)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("nosuch"); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew("nosuch")
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	Register("cubic", func() transport.CongestionControl { return NewCubic() })
}

func TestInstancesAreIndependent(t *testing.T) {
	a := MustNew("cubic")
	b := MustNew("cubic")
	if a == b {
		t.Fatal("factory returned a shared instance")
	}
}

func TestEachSchemeHasStableName(t *testing.T) {
	for _, n := range Names() {
		c := MustNew(n)
		// vivace-enhanced reports "vivace": it is the same algorithm with a
		// different knob setting.
		if c.Name() != n && !(n == "vivace-enhanced" && c.Name() == "vivace") {
			t.Errorf("scheme %q reports Name() = %q", n, c.Name())
		}
	}
}
