// Package cc implements the congestion-control algorithms the paper
// evaluates Astraea against: classical TCP (Reno, Cubic, Vegas), BBR, the
// delay-based Copa, the online-learning Vivace (PCC), the RL-based Aurora,
// the hybrid Orca, and a Remy-style rule table. Each scheme implements
// transport.CongestionControl. A registry maps names to factories so
// experiments and the CLI can instantiate schemes uniformly.
package cc

import (
	"fmt"
	"sort"

	"repro/internal/transport"
)

// Factory builds a fresh congestion controller instance. Each flow needs
// its own instance because controllers carry per-flow state.
type Factory func() transport.CongestionControl

var registry = map[string]Factory{}

// Register adds a named factory. It panics on duplicates: registration is
// an init-time programming act, not a runtime condition.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("cc: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New instantiates the named scheme.
func New(name string) (transport.CongestionControl, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("cc: unknown scheme %q (have %v)", name, Names())
	}
	return f(), nil
}

// MustNew is New for callers holding a known-good name (experiments, tests).
func MustNew(name string) transport.CongestionControl {
	c, err := New(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Names lists registered schemes, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
