package cc

import (
	"math"

	"repro/internal/transport"
)

func init() { Register("copa", func() transport.CongestionControl { return NewCopa() }) }

// Copa (Arun & Balakrishnan, NSDI'18) targets the rate 1/(delta * dq) where
// dq is the standing queueing delay, moving its window toward the target at
// a velocity that doubles when progress is consistent. It includes the
// competitive-mode switch that detects buffer-filling competitors and
// shrinks delta to compete, which is also the source of the instability the
// paper observes (§5.1.1).
type Copa struct {
	delta        float64
	baseDelta    float64
	velocity     float64
	direction    int // +1 up, -1 down, 0 unset
	sameDirCount int
	lastUpdate   float64
	lastCwnd     float64

	// competitive-mode detection state
	rttWindow  []rttSample
	modeSwitch bool
}

type rttSample struct {
	t   float64
	rtt float64
}

// NewCopa returns a Copa instance with the default delta of 0.5.
func NewCopa() *Copa {
	return &Copa{delta: 0.5, baseDelta: 0.5, velocity: 1}
}

// Name implements transport.CongestionControl.
func (c *Copa) Name() string { return "copa" }

// Init implements transport.CongestionControl.
func (c *Copa) Init(f *transport.Flow) {}

// OnAck implements transport.CongestionControl.
func (c *Copa) OnAck(f *transport.Flow, e transport.AckEvent) {
	if e.MinRTT <= 0 {
		return
	}
	now := e.Now
	c.rttWindow = append(c.rttWindow, rttSample{now, e.RTT})
	cut := 0
	for cut < len(c.rttWindow) && c.rttWindow[cut].t < now-4*e.SRTT {
		cut++
	}
	c.rttWindow = c.rttWindow[cut:]

	dq := e.RTT - e.MinRTT
	if dq < 1e-4 {
		dq = 1e-4
	}
	w := f.Cwnd()
	targetRatePkts := 1 / (c.delta * dq) // packets per second
	targetCwnd := targetRatePkts * e.SRTT

	step := c.velocity / (c.delta * w) // packets per ack, Copa's v/(delta*w)
	if w < targetCwnd {
		c.updateDirection(now, e.SRTT, +1, w)
		f.SetCwnd(w + step)
	} else {
		c.updateDirection(now, e.SRTT, -1, w)
		nw := w - step
		if nw < 2 {
			nw = 2
		}
		f.SetCwnd(nw)
	}
	c.detectMode(e)
	f.DefaultPacing()
}

func (c *Copa) updateDirection(now, srtt float64, dir int, w float64) {
	if now-c.lastUpdate < srtt {
		return
	}
	c.lastUpdate = now
	if dir == c.direction {
		c.sameDirCount++
		if c.sameDirCount >= 3 {
			c.velocity *= 2
			if c.velocity > w {
				c.velocity = w
			}
		}
	} else {
		c.direction = dir
		c.sameDirCount = 0
		c.velocity = 1
	}
}

// detectMode implements Copa's default/competitive switch: if the minimum
// queueing delay over the last few RTTs never drains near zero, a
// buffer-filling competitor is assumed and delta shrinks (more aggressive);
// it is restored once the queue drains again. The occasional erroneous
// switch is what yields Copa's throughput oscillations in Fig. 6.
func (c *Copa) detectMode(e transport.AckEvent) {
	if len(c.rttWindow) < 8 {
		return
	}
	minQ := math.Inf(1)
	maxQ := 0.0
	for _, s := range c.rttWindow {
		q := s.rtt - e.MinRTT
		if q < minQ {
			minQ = q
		}
		if q > maxQ {
			maxQ = q
		}
	}
	// Queue considered "nearly empty" if it dipped below 10% of its swing.
	if minQ > 0.1*maxQ && maxQ > 2e-3 {
		if !c.modeSwitch {
			c.modeSwitch = true
		}
		// competitive: delta decays toward a floor
		c.delta = math.Max(c.delta/2, 0.05)
	} else if c.modeSwitch {
		c.modeSwitch = false
		c.delta = c.baseDelta
	}
}

// OnLoss implements transport.CongestionControl: Copa reacts mildly to
// loss (it is primarily delay-controlled) but halves on timeout.
func (c *Copa) OnLoss(f *transport.Flow, e transport.LossEvent) {
	if e.Timeout {
		f.SetCwnd(f.Cwnd() / 2)
	}
}

// OnMTP implements transport.CongestionControl; Copa is ack-driven.
func (c *Copa) OnMTP(f *transport.Flow, st transport.MTPStats) {}
