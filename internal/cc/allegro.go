package cc

import (
	"math"

	"repro/internal/transport"
)

func init() { Register("allegro", func() transport.CongestionControl { return NewAllegro() }) }

// Allegro implements PCC-Allegro (Dong et al., NSDI'15), Vivace's
// predecessor: the same monitor-interval probing structure, but with the
// loss-only utility u = T*sigmoid(1 - L/0.05-ish) ... concretely the
// published utility u_i = x_i * (1 - 1/(1+e^{-100(L-0.05)})) * (1-L) - x_i*L,
// which tolerates up to ~5% loss before collapsing, and a coarser
// rate-doubling startup. Allegro ignores latency entirely, so it fills
// buffers like a loss-based scheme while resisting random loss.
type Allegro struct {
	rateBps float64
	eps     float64

	// probe bookkeeping identical in structure to Vivace's.
	curDir       int
	curRateMbps  float64
	prevDir      int
	prevRateMbps float64
	uUp, uDown   float64
	haveUp       bool
	haveDown     bool

	startup  bool
	lastSRTT float64
}

// NewAllegro returns an Allegro instance.
func NewAllegro() *Allegro {
	return &Allegro{rateBps: 2e6, eps: 0.05, startup: true}
}

// Name implements transport.CongestionControl.
func (a *Allegro) Name() string { return "allegro" }

// Init implements transport.CongestionControl.
func (a *Allegro) Init(f *transport.Flow) {
	a.curDir = 1
	a.curRateMbps = a.rateBps * (1 + a.eps) / 1e6
	f.SetPacingBps(a.rateBps * (1 + a.eps))
	f.SetCwnd(1e9)
	f.ScheduleMTP(0.05)
}

// OnAck implements transport.CongestionControl.
func (a *Allegro) OnAck(f *transport.Flow, e transport.AckEvent) { a.lastSRTT = e.SRTT }

// OnLoss implements transport.CongestionControl.
func (a *Allegro) OnLoss(f *transport.Flow, e transport.LossEvent) {}

// utility is Allegro's loss-only objective: throughput discounted by a
// sigmoid that collapses once loss exceeds ~5%.
func (a *Allegro) utility(xMbps, loss float64) float64 {
	sig := 1 / (1 + math.Exp(-100*(loss-0.05)))
	return xMbps*(1-sig)*(1-loss) - xMbps*loss
}

// OnMTP implements transport.CongestionControl.
func (a *Allegro) OnMTP(f *transport.Flow, st transport.MTPStats) {
	if a.startup {
		// Startup: double the rate each MI until utility regresses (loss
		// appears), then hand over to probing.
		if st.LossRate > 0.02 && st.DeliveredBytes > 0 {
			a.startup = false
			a.rateBps /= 2
		} else {
			a.rateBps *= 2
		}
		f.SetPacingBps(a.rateBps)
		a.prevDir = 0
		a.curDir = 1
		a.curRateMbps = a.rateBps / 1e6
		mi := a.lastSRTT
		if mi <= 0 {
			mi = 0.05
		}
		f.ScheduleMTP(mi)
		return
	}

	if a.prevDir != 0 {
		u := a.utility(a.prevRateMbps, st.LossRate)
		if a.prevDir > 0 {
			a.uUp, a.haveUp = u, true
		} else {
			a.uDown, a.haveDown = u, true
		}
		if a.haveUp && a.haveDown {
			switch {
			case a.uUp < 0 && a.uDown < 0:
				// Utility collapsed in both directions: loss is far past
				// the knee, so step down decisively (being latency-blind,
				// Allegro gets no earlier warning than overflow).
				a.rateBps *= 0.7
			case a.uUp >= a.uDown:
				a.rateBps *= 1 + a.eps
			default:
				a.rateBps /= 1 + a.eps
			}
			if a.rateBps < 0.12e6 {
				a.rateBps = 0.12e6
			}
			a.haveUp, a.haveDown = false, false
		}
	}
	a.prevDir, a.prevRateMbps = a.curDir, a.curRateMbps
	nextDir := -a.curDir
	if nextDir == 0 {
		nextDir = 1
	}
	probe := a.rateBps * (1 + float64(nextDir)*a.eps)
	a.curDir, a.curRateMbps = nextDir, probe/1e6
	f.SetPacingBps(probe)
	mi := a.lastSRTT
	if mi <= 0 {
		mi = 0.05
	}
	f.ScheduleMTP(mi)
}
