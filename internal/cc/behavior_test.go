package cc_test

// Behavioral tests: each congestion-control scheme must exhibit its
// defining closed-loop characteristics on the emulated bottleneck — the
// properties the paper's evaluation relies on.

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/runner"
)

func single(t *testing.T, scheme string, rate, rtt, bdp float64, dur float64) *runner.Result {
	t.Helper()
	return runner.MustRun(runner.Scenario{
		Seed: 42, RateBps: rate, BaseRTT: rtt, QueueBDP: bdp, Duration: dur,
		Flows: []runner.FlowSpec{{Scheme: scheme}},
	})
}

func TestHighUtilizationSchemes(t *testing.T) {
	for _, scheme := range []string{"cubic", "bbr", "orca", "astraea", "reno", "vegas", "remy"} {
		res := single(t, scheme, 100e6, 0.030, 1, 15)
		if res.Utilization < 0.85 {
			t.Errorf("%s utilization %.3f, want > 0.85", scheme, res.Utilization)
		}
	}
}

func TestDelayBasedSchemesKeepQueuesShort(t *testing.T) {
	// Vegas and Copa should hold average RTT well below the full-buffer
	// RTT (60 ms) on a 1 BDP buffer.
	for _, scheme := range []string{"vegas", "copa", "astraea"} {
		res := single(t, scheme, 100e6, 0.030, 1, 15)
		if rtt := res.Flows[0].AvgRTT; rtt > 0.045 {
			t.Errorf("%s avg RTT %.1f ms, want < 45 (delay-controlled)", scheme, rtt*1000)
		}
	}
}

func TestCubicFillsDeepBuffers(t *testing.T) {
	// Loss-based control holds a standing queue proportional to the
	// buffer: on 4 BDP, Cubic's average RTT should be far above base.
	res := single(t, "cubic", 100e6, 0.030, 4, 20)
	if rtt := res.Flows[0].AvgRTT; rtt < 0.060 {
		t.Errorf("cubic avg RTT %.1f ms on 4 BDP buffer, want > 60 (buffer-filling)", rtt*1000)
	}
}

func TestRenoSlowStartThenAIMD(t *testing.T) {
	res := single(t, "reno", 100e6, 0.030, 1, 15)
	// Reaches high rate quickly (slow start)...
	early := res.Flows[0].Tput.At(1.5)
	if early < 40e6 {
		t.Errorf("reno at t=1.5s only %.1f Mbps; slow start too slow", early/1e6)
	}
	// ...and sustains decent utilization with a loss rate typical of AIMD.
	if res.Flows[0].LossRate > 0.05 {
		t.Errorf("reno loss rate %.3f too high", res.Flows[0].LossRate)
	}
}

func TestBBRResilientToRandomLoss(t *testing.T) {
	// BBR ignores random loss; Cubic collapses. The satellite experiment
	// (Fig. 20) depends on this contrast.
	lossRes := runner.MustRun(runner.Scenario{
		Seed: 3, RateBps: 50e6, BaseRTT: 0.050, QueueBDP: 1, LossProb: 0.01,
		Duration: 20, Flows: []runner.FlowSpec{{Scheme: "bbr"}},
	})
	cubicRes := runner.MustRun(runner.Scenario{
		Seed: 3, RateBps: 50e6, BaseRTT: 0.050, QueueBDP: 1, LossProb: 0.01,
		Duration: 20, Flows: []runner.FlowSpec{{Scheme: "cubic"}},
	})
	if lossRes.Utilization < 0.7 {
		t.Errorf("bbr under 1%% loss: %.3f utilization, want > 0.7", lossRes.Utilization)
	}
	if cubicRes.Utilization > lossRes.Utilization {
		t.Errorf("cubic (%.3f) should underperform bbr (%.3f) under random loss",
			cubicRes.Utilization, lossRes.Utilization)
	}
}

func TestAuroraStarvesCompetitor(t *testing.T) {
	// Fig. 1a's core claim: an incumbent Aurora flow yields nothing.
	res := runner.MustRun(runner.Scenario{
		Seed: 4, RateBps: 80e6, BaseRTT: 0.060, QueueBytes: 4_800_000, Duration: 60,
		Flows: []runner.FlowSpec{
			{Scheme: "aurora", Start: 0},
			{Scheme: "aurora", Start: 20},
		},
	})
	f1 := res.Flows[0].AvgTputWindow(30, 60)
	f2 := res.Flows[1].AvgTputWindow(30, 60)
	if f2 > f1 {
		t.Fatalf("late Aurora flow overtook incumbent: %.1f vs %.1f Mbps", f2/1e6, f1/1e6)
	}
	if jain := metrics.Jain([]float64{f1, f2}); jain > 0.95 {
		t.Errorf("aurora flows too fair (Jain %.3f); the scheme should be bandwidth-hogging", jain)
	}
}

func TestVivaceConvergesSlowlyOnLongRTT(t *testing.T) {
	// Vivace needs 2 MIs ≈ 2 RTTs per decision: on a 120 ms path its ramp
	// to capacity takes many seconds (Fig. 1b), far slower than Astraea.
	viv := single(t, "vivace", 100e6, 0.120, 1, 30)
	ast := single(t, "astraea", 100e6, 0.120, 1, 30)
	vivAt10 := metrics.Mean(viv.Flows[0].Tput.Slice(8, 12))
	astAt10 := metrics.Mean(ast.Flows[0].Tput.Slice(8, 12))
	if vivAt10 > astAt10 {
		t.Errorf("vivace (%.1f Mbps) should ramp slower than astraea (%.1f Mbps) at t≈10s on 120ms RTT",
			vivAt10/1e6, astAt10/1e6)
	}
}

func TestEnhancedVivaceUnstableOnShortRTT(t *testing.T) {
	// Fig. 2b: the enlarged theta0 causes rate oscillation at 12 ms RTT.
	std := single(t, "vivace", 100e6, 0.012, 1, 30)
	enh := single(t, "vivace-enhanced", 100e6, 0.012, 1, 30)
	stdDev := metrics.StdDev(std.Flows[0].Tput.Slice(10, 30))
	enhDev := metrics.StdDev(enh.Flows[0].Tput.Slice(10, 30))
	if enhDev < stdDev {
		t.Errorf("enhanced vivace stddev %.1f Mbps not above standard %.1f on 12ms RTT",
			enhDev/1e6, stdDev/1e6)
	}
}

func TestOrcaSmoothsCubic(t *testing.T) {
	// Orca's overlay should reduce Cubic's latency (queue occupancy) on a
	// deep buffer while keeping utilization.
	cub := single(t, "cubic", 100e6, 0.030, 4, 20)
	orc := single(t, "orca", 100e6, 0.030, 4, 20)
	if orc.Utilization < 0.85 {
		t.Errorf("orca utilization %.3f", orc.Utilization)
	}
	if orc.Flows[0].AvgRTT > cub.Flows[0].AvgRTT {
		t.Errorf("orca RTT %.1f ms should be below cubic %.1f ms on deep buffer",
			orc.Flows[0].AvgRTT*1000, cub.Flows[0].AvgRTT*1000)
	}
}

func TestCopaLowLatency(t *testing.T) {
	res := single(t, "copa", 100e6, 0.030, 2, 20)
	if res.Flows[0].AvgRTT > 0.040 {
		t.Errorf("copa avg RTT %.1f ms, want < 40", res.Flows[0].AvgRTT*1000)
	}
	if res.Utilization < 0.7 {
		t.Errorf("copa utilization %.3f", res.Utilization)
	}
}

func TestFastHighBDPConvergence(t *testing.T) {
	// FAST's multiplicative delay update must fill a high-BDP path far
	// faster than Vegas' one-packet-per-RTT crawl.
	fast := single(t, "fast", 500e6, 0.080, 1, 20)
	if fast.Utilization < 0.85 {
		t.Errorf("fast utilization %.3f on 500 Mbps x 80 ms", fast.Utilization)
	}
	vegas := single(t, "vegas", 500e6, 0.080, 1, 20)
	if vegas.Utilization > fast.Utilization {
		t.Errorf("vegas (%.3f) outpaced fast (%.3f) on a high-BDP path",
			vegas.Utilization, fast.Utilization)
	}
	// And it stays delay-bounded.
	if fast.Flows[0].AvgRTT > 0.100 {
		t.Errorf("fast avg RTT %.1f ms", fast.Flows[0].AvgRTT*1000)
	}
}

func TestSchemesConvergeFromColdStart(t *testing.T) {
	// Every scheme must reach at least half capacity within 10 s on an
	// easy link — a liveness floor guarding against wedged controllers.
	for _, scheme := range []string{"reno", "cubic", "vegas", "bbr", "copa", "remy", "aurora", "vivace", "orca", "astraea", "fast", "compound", "allegro"} {
		res := single(t, scheme, 50e6, 0.040, 2, 12)
		late := metrics.Mean(res.Flows[0].Tput.Slice(8, 12))
		if late < 25e6 {
			t.Errorf("%s reached only %.1f Mbps of 50 by t=8-12s", scheme, late/1e6)
		}
	}
}

func TestCompoundHighUtilizationModestQueue(t *testing.T) {
	// Compound's delay component must deliver near-full utilization while
	// keeping the queue below what pure loss-based Cubic holds.
	comp := single(t, "compound", 100e6, 0.030, 4, 20)
	cub := single(t, "cubic", 100e6, 0.030, 4, 20)
	if comp.Utilization < 0.9 {
		t.Errorf("compound utilization %.3f", comp.Utilization)
	}
	if comp.Flows[0].AvgRTT >= cub.Flows[0].AvgRTT {
		t.Errorf("compound RTT %.1f ms not below cubic %.1f ms on deep buffer",
			comp.Flows[0].AvgRTT*1000, cub.Flows[0].AvgRTT*1000)
	}
}

func TestAllegroLossResilientButLatencyBlind(t *testing.T) {
	// Allegro tolerates random loss (sigmoid knee at ~5%) where Cubic
	// collapses, but unlike Vivace it has no latency term, so it parks a
	// deep standing queue.
	alg := runner.MustRun(runner.Scenario{
		Seed: 6, RateBps: 50e6, BaseRTT: 0.050, QueueBDP: 2, LossProb: 0.02,
		Duration: 20, Flows: []runner.FlowSpec{{Scheme: "allegro"}},
	})
	cub := runner.MustRun(runner.Scenario{
		Seed: 6, RateBps: 50e6, BaseRTT: 0.050, QueueBDP: 2, LossProb: 0.02,
		Duration: 20, Flows: []runner.FlowSpec{{Scheme: "cubic"}},
	})
	if alg.Utilization < 0.7 {
		t.Errorf("allegro under 2%% random loss: %.3f utilization", alg.Utilization)
	}
	if cub.Utilization > alg.Utilization {
		t.Errorf("cubic (%.3f) should collapse below allegro (%.3f) under random loss",
			cub.Utilization, alg.Utilization)
	}
	clean := single(t, "allegro", 100e6, 0.030, 2, 15)
	if clean.Flows[0].AvgRTT < 0.035 {
		t.Errorf("allegro avg RTT %.1f ms; being latency-blind it should hold a queue",
			clean.Flows[0].AvgRTT*1000)
	}
}

func TestTwoCubicFlowsEventuallyFair(t *testing.T) {
	res := runner.MustRun(runner.Scenario{
		Seed: 5, RateBps: 50e6, BaseRTT: 0.030, QueueBDP: 1, Duration: 60,
		Flows: []runner.FlowSpec{
			{Scheme: "cubic", Start: 0},
			{Scheme: "cubic", Start: 5},
		},
	})
	f1 := res.Flows[0].AvgTputWindow(30, 60)
	f2 := res.Flows[1].AvgTputWindow(30, 60)
	if jain := metrics.Jain([]float64{f1, f2}); jain < 0.8 {
		t.Errorf("two cubic flows Jain %.3f over 30s, want ≥ 0.8 (AIMD fairness)", jain)
	}
}
