package cc

import (
	"math"

	"repro/internal/transport"
)

func init() { Register("orca", func() transport.CongestionControl { return NewOrca(nil) }) }

// OrcaPolicy maps Orca's observation vector to an action in [-1, 1]; the
// overlay scales the underlying TCP window by 2^a.
type OrcaPolicy interface {
	Act(obs []float64) float64
}

// Orca couples classical TCP (Cubic underneath, per the paper's default)
// with an RL overlay that periodically rescales the kernel's cwnd by 2^a.
// The overlay smooths Cubic's sawtooth and drains queues, but — as the
// paper argues — its suppression of loss events can undermine AIMD's
// fairness guarantee, producing the unstable convergence of Fig. 6. The
// default policy is a distilled rendering of the learned overlay; a trained
// neural policy can be substituted through OrcaPolicy.
type Orca struct {
	under  *Cubic
	policy OrcaPolicy
	mtp    float64
}

// NewOrca builds an Orca controller over a fresh Cubic instance; nil policy
// selects the distilled default.
func NewOrca(p OrcaPolicy) *Orca {
	if p == nil {
		p = distilledOrca{}
	}
	return &Orca{under: NewCubic(), policy: p, mtp: 0.02}
}

// distilledOrca captures the learned overlay's closed-loop behaviour:
// push when the link is underused, back off when queueing grows, otherwise
// leave Cubic alone.
type distilledOrca struct{}

// Act implements OrcaPolicy; obs = [utilization, latencyRatio, lossRate].
func (distilledOrca) Act(obs []float64) float64 {
	util, latRatio, loss := obs[0], obs[1], obs[2]
	switch {
	case loss > 0.05:
		return -0.4
	case latRatio > 1.8:
		return -0.5 * math.Min(1, (latRatio-1.8)/2)
	case util < 0.85 && latRatio < 1.2:
		return 0.35
	default:
		return 0
	}
}

// Name implements transport.CongestionControl.
func (o *Orca) Name() string { return "orca" }

// Init implements transport.CongestionControl.
func (o *Orca) Init(f *transport.Flow) {
	o.under.Init(f)
	f.ScheduleMTP(o.mtp)
}

// OnAck implements transport.CongestionControl: the underlying Cubic owns
// per-ack growth.
func (o *Orca) OnAck(f *transport.Flow, e transport.AckEvent) { o.under.OnAck(f, e) }

// OnLoss implements transport.CongestionControl.
func (o *Orca) OnLoss(f *transport.Flow, e transport.LossEvent) { o.under.OnLoss(f, e) }

// OnMTP implements transport.CongestionControl: the RL overlay fires here.
func (o *Orca) OnMTP(f *transport.Flow, st transport.MTPStats) {
	util := 0.0
	if st.MaxTputBps > 0 {
		util = st.ThroughputBps / st.MaxTputBps
	}
	latRatio := 1.0
	if st.MinRTT > 0 && st.AvgRTT > 0 {
		latRatio = st.AvgRTT / st.MinRTT
	}
	a := clamp(o.policy.Act([]float64{util, latRatio, st.LossRate}), -1, 1)
	if a != 0 {
		f.SetCwnd(f.Cwnd() * math.Pow(2, a*o.mtpGain()))
	}
	f.ScheduleMTP(o.mtp)
}

// mtpGain scales the per-interval multiplier so that a sustained a = ±1
// roughly doubles/halves the window per RTT-scale horizon rather than per
// 20 ms tick.
func (o *Orca) mtpGain() float64 { return 0.25 }
