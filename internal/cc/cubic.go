package cc

import (
	"math"

	"repro/internal/transport"
)

func init() { Register("cubic", func() transport.CongestionControl { return NewCubic() }) }

// Cubic implements TCP CUBIC (RFC 8312 window growth): after a loss the
// window follows W(t) = C*(t-K)^3 + Wmax, with beta = 0.7 multiplicative
// decrease, fast convergence, and a TCP-friendly (Reno-equivalent) floor.
type Cubic struct {
	c    float64 // scaling constant (0.4)
	beta float64 // multiplicative decrease factor (0.7)

	wMax        float64
	wLastMax    float64
	epochStart  float64
	k           float64
	originPoint float64
	ackCount    float64
	tcpCwnd     float64
	ssthresh    float64

	recoveryEnd int64
	inRecovery  bool
}

// NewCubic returns a CUBIC instance with standard constants.
func NewCubic() *Cubic {
	return &Cubic{c: 0.4, beta: 0.7, ssthresh: 1e9, epochStart: -1}
}

// Name implements transport.CongestionControl.
func (cu *Cubic) Name() string { return "cubic" }

// Init implements transport.CongestionControl.
func (cu *Cubic) Init(f *transport.Flow) {}

// OnAck implements transport.CongestionControl.
func (cu *Cubic) OnAck(f *transport.Flow, e transport.AckEvent) {
	if cu.inRecovery {
		if e.PktNum >= cu.recoveryEnd {
			cu.inRecovery = false
		} else {
			return
		}
	}
	w := f.Cwnd()
	if w < cu.ssthresh {
		f.SetCwnd(w + 1)
		return
	}
	now := e.Now
	if cu.epochStart < 0 {
		cu.epochStart = now
		cu.ackCount = 1
		cu.tcpCwnd = w
		if w < cu.wLastMax {
			cu.k = math.Cbrt((cu.wLastMax - w) / cu.c)
			cu.originPoint = cu.wLastMax
		} else {
			cu.k = 0
			cu.originPoint = w
		}
	}
	t := now - cu.epochStart + e.SRTT // target one RTT ahead, per RFC 8312
	target := cu.originPoint + cu.c*math.Pow(t-cu.k, 3)

	// TCP-friendly region: emulate Reno's growth from the epoch start.
	cu.ackCount++
	cu.tcpCwnd += 3 * (1 - cu.beta) / (1 + cu.beta) / w
	if cu.tcpCwnd > target {
		target = cu.tcpCwnd
	}

	if target > w {
		// Spread the increase across the acks of one window.
		f.SetCwnd(w + (target-w)/w)
	} else {
		f.SetCwnd(w + 0.01/w) // minimal probing when at/above target
	}
}

// OnLoss implements transport.CongestionControl.
func (cu *Cubic) OnLoss(f *transport.Flow, e transport.LossEvent) {
	if e.Timeout {
		cu.reduce(f)
		cu.ssthresh = f.Cwnd()
		f.SetCwnd(2)
		return
	}
	if cu.inRecovery && e.PktNum < cu.recoveryEnd {
		return
	}
	cu.reduce(f)
	cu.inRecovery = true
	cu.recoveryEnd = f.NextPktNum()
}

func (cu *Cubic) reduce(f *transport.Flow) {
	w := f.Cwnd()
	cu.epochStart = -1
	if w < cu.wLastMax {
		// Fast convergence: release bandwidth faster for newcomers.
		cu.wLastMax = w * (1 + cu.beta) / 2
	} else {
		cu.wLastMax = w
	}
	cu.wMax = w
	newW := w * cu.beta
	cu.ssthresh = newW
	f.SetCwnd(newW)
}

// OnMTP implements transport.CongestionControl; CUBIC is ack-driven.
func (cu *Cubic) OnMTP(f *transport.Flow, st transport.MTPStats) {}
