package cc

import (
	"math"

	"repro/internal/transport"
)

func init() { Register("bbr", func() transport.CongestionControl { return NewBBR() }) }

// BBR implements a faithful-in-shape BBRv1: STARTUP with 2/ln2 gain, DRAIN,
// an 8-phase PROBE_BW pacing-gain cycle, PROBE_RTT every 10 s, a windowed
// max filter for bottleneck bandwidth and a windowed min filter for RTT. It
// reproduces BBR's characteristic behaviours the paper measures: high
// utilization, ~1.25x probing overshoot, standing queues of up to ~1 BDP in
// deep buffers, and aggressiveness against loss-based flows.
type BBR struct {
	state      int // 0 startup, 1 drain, 2 probe_bw, 3 probe_rtt
	pacingGain float64
	cwndGain   float64

	btlBw        maxFilter
	rtProp       float64
	rtPropStamp  float64
	probeRTTDone float64
	cycleIdx     int
	cycleStamp   float64

	fullBw      float64
	fullBwCount int
	priorCwnd   float64
}

var bbrCycleGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// blindStartupCwndCap bounds cwnd growth while the bandwidth filter is
// empty (no delivery feedback at all). 512 packets covers the largest
// startup BDP the emulated paths present (hundreds of Mbps × hundreds of
// ms would still be bootstrapped within a few feedback RTTs) while keeping
// a black-holed flow's blind bursts finite.
const blindStartupCwndCap = 512

// NewBBR returns a BBR instance.
func NewBBR() *BBR {
	return &BBR{
		state:      0,
		pacingGain: 2.885, // 2/ln2
		cwndGain:   2.885,
		rtProp:     math.Inf(1),
	}
}

// maxFilter keeps the maximum over a sliding window of samples.
type maxFilter struct {
	samples []struct {
		t float64
		v float64
	}
	window float64
}

func (m *maxFilter) update(t, v, window float64) {
	m.window = window
	m.samples = append(m.samples, struct{ t, v float64 }{t, v})
	cut := 0
	for cut < len(m.samples) && m.samples[cut].t < t-window {
		cut++
	}
	m.samples = m.samples[cut:]
}

func (m *maxFilter) max() float64 {
	best := 0.0
	for _, s := range m.samples {
		if s.v > best {
			best = s.v
		}
	}
	return best
}

// Name implements transport.CongestionControl.
func (b *BBR) Name() string { return "bbr" }

// Init implements transport.CongestionControl.
func (b *BBR) Init(f *transport.Flow) {
	f.ScheduleMTP(0.010) // delivery-rate sampling interval
}

// OnAck implements transport.CongestionControl.
func (b *BBR) OnAck(f *transport.Flow, e transport.AckEvent) {
	now := e.Now
	if e.RTT < b.rtProp || now-b.rtPropStamp > 10 {
		b.rtProp = e.RTT
		b.rtPropStamp = now
	}
}

// OnLoss implements transport.CongestionControl. BBRv1 ignores loss as a
// congestion signal.
func (b *BBR) OnLoss(f *transport.Flow, e transport.LossEvent) {}

// OnMTP implements transport.CongestionControl: delivery-rate samples feed
// the bandwidth filter and drive the state machine.
func (b *BBR) OnMTP(f *transport.Flow, st transport.MTPStats) {
	now := st.End
	if st.DeliveredBytes > 0 {
		b.btlBw.update(now, st.ThroughputBps, 10*math.Max(b.rtProp, 0.01))
	}
	bw := b.btlBw.max()
	rt := b.rtProp
	if math.IsInf(rt, 0) || rt <= 0 {
		rt = 0.1
	}

	switch b.state {
	case 0: // STARTUP: exit when bandwidth stops growing for 3 rounds
		if bw > b.fullBw*1.25 {
			b.fullBw = bw
			b.fullBwCount = 0
		} else if st.DeliveredBytes > 0 {
			b.fullBwCount++
			if b.fullBwCount >= 3 {
				b.state = 1
				b.pacingGain = 1 / 2.885
				b.cwndGain = 2
			}
		}
	case 1: // DRAIN: until inflight <= BDP
		bdpPkts := bw / 8 * rt / transport.MSS
		if float64(st.InflightPkts) <= bdpPkts {
			b.enterProbeBW(now)
		}
	case 2: // PROBE_BW: rotate gain cycle each rtProp
		if now-b.cycleStamp > rt {
			b.cycleIdx = (b.cycleIdx + 1) % 8
			b.cycleStamp = now
			b.pacingGain = bbrCycleGains[b.cycleIdx]
		}
		if now-b.rtPropStamp > 10 {
			b.state = 3
			b.priorCwnd = f.Cwnd()
			b.probeRTTDone = now + 0.2
			b.pacingGain = 1
		}
	case 3: // PROBE_RTT: cwnd=4 for 200ms
		f.SetCwnd(4)
		if now > b.probeRTTDone {
			b.rtPropStamp = now
			f.SetCwnd(b.priorCwnd)
			b.enterProbeBW(now)
		}
	}

	if bw > 0 && b.state != 3 {
		pacing := b.pacingGain * bw
		f.SetPacingBps(pacing)
		bdpPkts := bw / 8 * rt / transport.MSS
		cwnd := b.cwndGain * bdpPkts
		if b.state == 2 {
			cwnd = 2 * bdpPkts
		}
		if cwnd < 4 {
			cwnd = 4
		}
		f.SetCwnd(cwnd)
	} else if bw == 0 {
		// No samples yet: keep exponential startup via cwnd growth, but only
		// up to a bootstrap ceiling. Blind growth exists to bridge the gap
		// before the first ack on long paths; without the ceiling, a flow
		// whose packets all drop (incast black hole: queue permanently full)
		// would double its window every MTP forever, emitting unbounded
		// blind bursts that scale superlinearly with competing flow count.
		if w := f.Cwnd() * 1.5; w < blindStartupCwndCap {
			f.SetCwnd(w)
		}
	}
	f.ScheduleMTP(math.Max(0.005, math.Min(rt/4, 0.05)))
}

func (b *BBR) enterProbeBW(now float64) {
	b.state = 2
	b.cycleIdx = 2
	b.cycleStamp = now
	b.pacingGain = 1
	b.cwndGain = 2
}
