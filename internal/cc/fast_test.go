package cc

import (
	"math"
	"testing"

	"repro/internal/transport"
)

func TestFastEquilibrium(t *testing.T) {
	// At the fixed point, w·(1 - base/rtt) = Alpha: the flow keeps exactly
	// Alpha packets queued. Feed acks at a constant RTT implying 20 queued
	// packets for w=100 and check the window stays put.
	fa := NewFast()
	fa.startup = false
	_, f := newTestFlow(fa)
	f.SetCwnd(100)
	// base 10 ms; with 100 packets and Alpha=20 queued: rtt such that
	// w*(1-base/rtt)=20 → rtt = base/(1-0.2) = 12.5 ms.
	for i := 0; i < 10; i++ {
		fa.OnAck(f, transport.AckEvent{
			PktNum: int64(i), Now: float64(i), SRTT: 0.0125, MinRTT: 0.010,
		})
	}
	if math.Abs(f.Cwnd()-100) > 1 {
		t.Fatalf("cwnd %v moved off the fixed point", f.Cwnd())
	}
}

func TestFastGrowsWhenQueueEmpty(t *testing.T) {
	fa := NewFast()
	fa.startup = false
	_, f := newTestFlow(fa)
	f.SetCwnd(50)
	fa.OnAck(f, transport.AckEvent{Now: 1, SRTT: 0.0101, MinRTT: 0.010})
	if f.Cwnd() <= 50 {
		t.Fatalf("cwnd %v did not grow on an empty queue", f.Cwnd())
	}
}

func TestFastStartupDoublesThenExits(t *testing.T) {
	fa := NewFast()
	_, f := newTestFlow(fa)
	f.SetCwnd(10)
	// Empty queue: startup adds one packet per ack (doubling per RTT).
	fa.OnAck(f, transport.AckEvent{Now: 1, SRTT: 0.010, MinRTT: 0.010})
	if f.Cwnd() != 11 {
		t.Fatalf("startup growth: cwnd %v", f.Cwnd())
	}
	// Sustained queueing (w=50, half the window queued ≫ alpha/2 on many
	// consecutive acks) must end startup; a single spike must not.
	f.SetCwnd(50)
	fa.OnAck(f, transport.AckEvent{Now: 2, SRTT: 0.020, MinRTT: 0.010})
	if !fa.startup {
		t.Fatal("a single queueing spike ended startup")
	}
	for i := 0; i < 10; i++ {
		fa.OnAck(f, transport.AckEvent{Now: 2.1 + float64(i)*0.02, SRTT: 0.020, MinRTT: 0.010})
	}
	if fa.startup {
		t.Fatal("sustained queueing did not end startup")
	}
}

func TestFastShrinksWhenOverQueued(t *testing.T) {
	fa := NewFast()
	fa.startup = false
	_, f := newTestFlow(fa)
	f.SetCwnd(200)
	// rtt 20 ms vs base 10: queued = 100 ≫ Alpha.
	fa.OnAck(f, transport.AckEvent{Now: 1, SRTT: 0.020, MinRTT: 0.010})
	if f.Cwnd() >= 200 {
		t.Fatalf("cwnd %v did not shrink when over-queued", f.Cwnd())
	}
}

func TestFastDoublingCap(t *testing.T) {
	fa := NewFast()
	fa.Alpha = 1e6 // absurd target to provoke the cap
	fa.startup = false
	_, f := newTestFlow(fa)
	f.SetCwnd(10)
	fa.OnAck(f, transport.AckEvent{Now: 1, SRTT: 0.010, MinRTT: 0.010})
	if f.Cwnd() > 20.0001 {
		t.Fatalf("cwnd %v exceeded the 2x per-RTT cap", f.Cwnd())
	}
}

func TestFastOncePerRTT(t *testing.T) {
	fa := NewFast()
	fa.startup = false
	_, f := newTestFlow(fa)
	f.SetCwnd(50)
	fa.OnAck(f, transport.AckEvent{Now: 1, SRTT: 0.010, MinRTT: 0.010})
	w := f.Cwnd()
	// A second ack within the same RTT must not trigger another update.
	fa.OnAck(f, transport.AckEvent{Now: 1.001, SRTT: 0.010, MinRTT: 0.010})
	if f.Cwnd() != w {
		t.Fatalf("window updated twice within one RTT")
	}
}
