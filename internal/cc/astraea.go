package cc

import (
	"repro/internal/core"
	"repro/internal/transport"
)

func init() {
	Register("astraea", func() transport.CongestionControl {
		return core.NewAgent(core.DefaultConfig(), nil)
	})
}
