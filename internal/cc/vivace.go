package cc

import (
	"math"

	"repro/internal/transport"
)

func init() {
	Register("vivace", func() transport.CongestionControl { return NewVivace(DefaultVivaceConfig()) })
	Register("vivace-enhanced", func() transport.CongestionControl {
		cfg := DefaultVivaceConfig()
		cfg.Theta0 *= 12 // the paper's Fig. 2 "enhanced" variant: larger initial conversion factor
		return NewVivace(cfg)
	})
}

// VivaceConfig exposes the knobs the paper's §2 tuning experiment turns.
type VivaceConfig struct {
	// Theta0 is the initial conversion factor from utility gradient to rate
	// step (Mbps per utility-gradient unit). The paper's §2 experiment
	// enlarges it to make Vivace responsive — and unstable on short RTTs.
	Theta0 float64
	// Epsilon is the relative probe amplitude (rate*(1±epsilon)).
	Epsilon float64
	// LatencyCoeff (b) and LossCoeff (c) weight the utility terms of Eq. 2:
	// u = x^0.9 - b*x*dRTT/dT - c*x*L, with x in Mbps.
	LatencyCoeff float64
	LossCoeff    float64
	// InitialRateBps seeds the sending rate.
	InitialRateBps float64
}

// DefaultVivaceConfig returns the PCC-Vivace defaults used in the paper.
func DefaultVivaceConfig() VivaceConfig {
	return VivaceConfig{
		Theta0:         0.05,
		Epsilon:        0.05,
		LatencyCoeff:   900,
		LossCoeff:      11.25,
		InitialRateBps: 2e6,
	}
}

// Vivace implements PCC-Vivace's online gradient-ascent rate control. It
// runs paired monitor intervals (MIs) of about one RTT at rates r(1+eps)
// and r(1-eps), computes the utility gradient of Eq. 2 from the two
// observed utilities, and steps the rate by theta*gradient, with theta
// escalating on consistently-signed gradients and rate changes bounded by a
// dynamic change limit (omega). Because every decision costs two MIs ≈ two
// RTTs of probing, convergence is intrinsically slow on long-RTT paths
// (Fig. 1b), and a large Theta0 destabilizes it on short-RTT paths
// (Fig. 2b).
//
// MI accounting: ACK-carried statistics observed during MI k describe
// packets sent during MI k-1, so utilities are attributed one MI back, and
// x in the utility is the probe's sending rate (as in PCC's definition).
type Vivace struct {
	cfg VivaceConfig

	rateBps float64

	// Probe bookkeeping. At the OnMTP ending MI k, the ACK-derived stats
	// describe packets sent during MI k-1, so we remember two MIs of
	// (direction, rate): cur* is MI k (just ended), prev* is MI k-1 (what
	// the stats describe).
	curDir       int // +1 up, -1 down, 0 before first MI
	curRateMbps  float64
	prevDir      int
	prevRateMbps float64

	uUp, uDown       float64
	haveUp, haveDown bool
	lastAvgRTT       float64

	theta     float64
	consSign  int
	consCount int
	omega     float64 // max relative rate change

	lastSRTT float64
}

// NewVivace builds a Vivace controller.
func NewVivace(cfg VivaceConfig) *Vivace {
	return &Vivace{cfg: cfg, rateBps: cfg.InitialRateBps, theta: cfg.Theta0, omega: 0.05}
}

// Name implements transport.CongestionControl.
func (v *Vivace) Name() string { return "vivace" }

// Init implements transport.CongestionControl.
func (v *Vivace) Init(f *transport.Flow) {
	v.curDir = 1
	v.curRateMbps = v.rateBps * (1 + v.cfg.Epsilon) / 1e6
	f.SetPacingBps(v.rateBps * (1 + v.cfg.Epsilon))
	f.SetCwnd(1e9) // rate-controlled: the window never binds
	f.ScheduleMTP(0.05)
}

// OnAck implements transport.CongestionControl.
func (v *Vivace) OnAck(f *transport.Flow, e transport.AckEvent) {
	v.lastSRTT = e.SRTT
}

// OnLoss implements transport.CongestionControl; loss enters the utility
// through the MI statistics rather than as an immediate signal.
func (v *Vivace) OnLoss(f *transport.Flow, e transport.LossEvent) {}

// OnMTP implements transport.CongestionControl: each MTP is one monitor
// interval.
func (v *Vivace) OnMTP(f *transport.Flow, st transport.MTPStats) {
	// Attribute this MI's observed stats to the previous MI's probe.
	if v.prevDir != 0 {
		dRTT := 0.0
		if v.lastAvgRTT > 0 && st.AvgRTT > 0 && st.Duration > 0 {
			dRTT = (st.AvgRTT - v.lastAvgRTT) / st.Duration
		}
		if dRTT < 0 {
			dRTT = 0 // Vivace penalizes only latency increase
		}
		x := v.prevRateMbps
		u := math.Pow(math.Max(x, 1e-6), 0.9) -
			v.cfg.LatencyCoeff*x*dRTT -
			v.cfg.LossCoeff*x*st.LossRate
		if v.prevDir > 0 {
			v.uUp, v.haveUp = u, true
		} else {
			v.uDown, v.haveDown = u, true
		}
		if v.haveUp && v.haveDown {
			v.decide()
			v.haveUp, v.haveDown = false, false
		}
	}
	if st.AvgRTT > 0 {
		v.lastAvgRTT = st.AvgRTT
	}

	// Shift the history: the MI that just ended becomes the one the next
	// batch of stats will describe.
	v.prevDir, v.prevRateMbps = v.curDir, v.curRateMbps

	// Configure the next MI's probe with the alternated direction.
	nextDir := -v.curDir
	if nextDir == 0 {
		nextDir = 1
	}
	probeRate := v.rateBps * (1 + float64(nextDir)*v.cfg.Epsilon)
	v.curDir, v.curRateMbps = nextDir, probeRate/1e6
	f.SetPacingBps(probeRate)

	mi := v.lastSRTT
	if mi <= 0 {
		mi = 0.05
	}
	f.ScheduleMTP(mi)
}

// decide computes the gradient from the paired MIs and steps the rate.
func (v *Vivace) decide() {
	rMbps := v.rateBps / 1e6
	grad := (v.uUp - v.uDown) / (2 * v.cfg.Epsilon * math.Max(rMbps, 1e-6))
	sign := 0
	if grad > 0 {
		sign = 1
	} else if grad < 0 {
		sign = -1
	}
	if sign != 0 && sign == v.consSign {
		v.consCount++
		v.theta = v.cfg.Theta0 * float64(1+v.consCount) // confidence amplification
	} else {
		v.consSign = sign
		v.consCount = 0
		v.theta = v.cfg.Theta0
	}
	stepMbps := v.theta * grad
	// Dynamic change boundary omega: cap relative change, escalating when
	// the cap binds repeatedly and decaying otherwise.
	maxStep := v.omega * math.Max(rMbps, 0.5)
	if math.Abs(stepMbps) > maxStep {
		v.omega += 0.05
		if v.omega > 0.5 {
			v.omega = 0.5
		}
		if stepMbps > 0 {
			stepMbps = maxStep
		} else {
			stepMbps = -maxStep
		}
	} else {
		v.omega = math.Max(0.05, v.omega-0.01)
	}
	newRate := (rMbps + stepMbps) * 1e6
	if newRate < 0.12e6 {
		newRate = 0.12e6
	}
	v.rateBps = newRate
}
