package cc

import (
	"math"

	"repro/internal/transport"
)

func init() { Register("compound", func() transport.CongestionControl { return NewCompound() }) }

// Compound implements Compound TCP (Tan et al., INFOCOM'06): the congestion
// window is the sum of a loss-based component (Reno behaviour) and a
// delay-based component (dwnd) that grows aggressively while queueing delay
// is low and retreats as delay builds, giving high utilization on
// high-BDP paths while degrading to Reno under congestion.
type Compound struct {
	alpha, beta, k float64 // dwnd growth parameters (0.125, 0.5, 0.75)
	gamma          float64 // queueing packets threshold (30)

	cwnd float64 // loss-based component
	dwnd float64 // delay-based component

	ssthresh    float64
	lastAdjust  float64
	recoveryEnd int64
	inRecovery  bool
}

// NewCompound returns a Compound TCP instance with the published defaults.
func NewCompound() *Compound {
	return &Compound{alpha: 0.125, beta: 0.5, k: 0.75, gamma: 30, ssthresh: 1e9}
}

// Name implements transport.CongestionControl.
func (c *Compound) Name() string { return "compound" }

// Init implements transport.CongestionControl.
func (c *Compound) Init(f *transport.Flow) {
	c.cwnd = f.Cwnd()
	c.dwnd = 0
}

func (c *Compound) apply(f *transport.Flow) {
	w := c.cwnd + c.dwnd
	if w < 2 {
		w = 2
	}
	f.SetCwnd(w)
}

// OnAck implements transport.CongestionControl.
func (c *Compound) OnAck(f *transport.Flow, e transport.AckEvent) {
	if c.inRecovery {
		if e.PktNum >= c.recoveryEnd {
			c.inRecovery = false
		} else {
			return
		}
	}
	total := c.cwnd + c.dwnd
	if total < c.ssthresh {
		// Slow start grows the loss component.
		c.cwnd++
		c.apply(f)
		return
	}
	// Loss component: Reno's +1/w per ack.
	c.cwnd += 1 / total

	// Delay component adjusts once per RTT.
	if e.SRTT <= 0 || e.MinRTT <= 0 || e.Now-c.lastAdjust < e.SRTT {
		c.apply(f)
		return
	}
	c.lastAdjust = e.Now
	expected := total / e.MinRTT
	actual := total / e.SRTT
	diff := (expected - actual) * e.MinRTT // estimated queued packets
	if diff < c.gamma {
		// Low queueing: binomial increase alpha*w^k (minus the +1 the loss
		// part already took over this RTT).
		inc := c.alpha*math.Pow(total, c.k) - 1
		if inc < 0 {
			inc = 0
		}
		c.dwnd += inc
	} else {
		// Queue building: retreat the delay component.
		c.dwnd -= c.beta * diff
		if c.dwnd < 0 {
			c.dwnd = 0
		}
	}
	c.apply(f)
}

// OnLoss implements transport.CongestionControl.
func (c *Compound) OnLoss(f *transport.Flow, e transport.LossEvent) {
	if e.Timeout {
		c.ssthresh = (c.cwnd + c.dwnd) / 2
		c.cwnd, c.dwnd = 2, 0
		c.apply(f)
		return
	}
	if c.inRecovery && e.PktNum < c.recoveryEnd {
		return
	}
	total := c.cwnd + c.dwnd
	c.ssthresh = total / 2
	c.cwnd = c.cwnd / 2
	c.dwnd = c.dwnd / 2
	c.apply(f)
	c.inRecovery = true
	c.recoveryEnd = f.NextPktNum()
}

// OnMTP implements transport.CongestionControl; Compound is ack-driven.
func (c *Compound) OnMTP(f *transport.Flow, st transport.MTPStats) {}
