package ckpt

import (
	"bytes"
	"testing"
)

// FuzzCkptDecode hammers the container validator and the primitive decoder
// with arbitrary bytes. Open must never panic, and whenever it does accept
// an input, re-sealing the extracted payload must reproduce a container
// holding the identical payload (accept ⇒ round-trippable). The Decoder is
// driven through every primitive to exercise the sticky-error paths.
func FuzzCkptDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(Seal(nil))
	f.Add(Seal([]byte("payload")))
	var e Encoder
	e.Int(2)
	e.Float64s([]float64{1.5, -2.5})
	e.Bytes([]byte("tail"))
	e.Bool(true)
	f.Add(Seal(e.Payload()))
	corrupt := Seal([]byte("payload"))
	corrupt[len(corrupt)-1] ^= 0x01
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Open(data)
		if err == nil {
			again, err2 := Open(Seal(payload))
			if err2 != nil {
				t.Fatalf("re-sealed accepted payload rejected: %v", err2)
			}
			if !bytes.Equal(again, payload) {
				t.Fatalf("payload changed across seal/open round trip")
			}
		}

		d := NewDecoder(data)
		d.Uint64()
		d.Int64()
		d.Int()
		d.Bool()
		d.Float64()
		d.Float64s()
		d.Ints()
		d.Bytes()
		_ = d.Finish()
	})
}
