// Package ckpt implements the crash-safe checkpoint container used by the
// training pipeline: a versioned binary file with a CRC-32C integrity
// checksum, written atomically (temp file in the destination directory +
// fsync + rename) so that a crash — including kill -9 — at any instant
// leaves either the previous complete checkpoint or the new one at the
// configured path, never a partial file.
//
// The container is deliberately dumb: a magic string, a format version, a
// length-prefixed payload, and a trailing checksum over everything before
// it. What the payload means is the caller's business; Encoder/Decoder
// provide the little-endian primitives the nn/rl/env codecs are built from.
// Truncating or corrupting a checkpoint at any byte offset is detected and
// rejected by ReadFile — a loader never sees garbage.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// Magic identifies a checkpoint container.
const Magic = "ASTRCKPT"

// Version is the current container format version. Decoders reject other
// versions rather than guessing at payload layout.
const Version = 1

// headerLen is magic + version(uint32) + payload length(uint64).
const headerLen = len(Magic) + 4 + 8

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Seal wraps payload in the container format: header, payload, CRC trailer.
func Seal(payload []byte) []byte {
	out := make([]byte, 0, headerLen+len(payload)+4)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
}

// Open validates a sealed container and returns its payload. Any
// truncation, extension, or bit flip anywhere in data yields an error.
func Open(data []byte) ([]byte, error) {
	if len(data) < headerLen+4 {
		return nil, fmt.Errorf("ckpt: file too short (%d bytes) to be a checkpoint", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("ckpt: bad magic %q", data[:len(Magic)])
	}
	if v := binary.LittleEndian.Uint32(data[len(Magic):]); v != Version {
		return nil, fmt.Errorf("ckpt: unsupported format version %d (want %d)", v, Version)
	}
	plen := binary.LittleEndian.Uint64(data[len(Magic)+4:])
	if plen != uint64(len(data)-headerLen-4) {
		return nil, fmt.Errorf("ckpt: payload length %d does not match file size %d", plen, len(data))
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("ckpt: checksum mismatch (file %08x, computed %08x): checkpoint is corrupt", want, got)
	}
	return data[headerLen : headerLen+int(plen)], nil
}

// WriteFile seals payload and writes it atomically to path, returning the
// number of bytes the finished file occupies.
func WriteFile(path string, payload []byte) (int, error) {
	sealed := Seal(payload)
	if err := WriteAtomic(path, sealed, 0o644); err != nil {
		return 0, err
	}
	return len(sealed), nil
}

// ReadFile reads and validates a checkpoint written by WriteFile.
func ReadFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := Open(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return payload, nil
}

// WriteAtomic writes data to path through a temp file in the same
// directory, fsyncing the file before the rename and the directory after,
// so a crash at any point leaves either the old file or the complete new
// one. It is also the writer behind core.SavePolicy, closing the
// truncated-weights-on-crash window.
func WriteAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: create temp in %s: %w", dir, err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(fmt.Errorf("ckpt: write %s: %w", tmp, err))
	}
	if err := f.Chmod(perm); err != nil {
		return cleanup(fmt.Errorf("ckpt: chmod %s: %w", tmp, err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("ckpt: fsync %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: rename %s -> %s: %w", tmp, path, err)
	}
	// Persist the rename itself. Some filesystems reject directory fsync;
	// the rename is still atomic, so degrade silently there.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Encoder appends little-endian primitives to a growing payload. Slices and
// byte strings are length-prefixed, so a Decoder reading the same sequence
// of calls reconstructs the values exactly; float64s are stored as IEEE-754
// bits, making round trips bitwise.
type Encoder struct {
	buf []byte
}

// Payload returns the encoded bytes.
func (e *Encoder) Payload() []byte { return e.buf }

// Uint64 appends v.
func (e *Encoder) Uint64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// Int64 appends v.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Int appends v as an int64.
func (e *Encoder) Int(v int) { e.Int64(int64(v)) }

// Bool appends v as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float64 appends v's IEEE-754 bits.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Float64s appends a length-prefixed float64 slice.
func (e *Encoder) Float64s(v []float64) {
	e.Int(len(v))
	for _, x := range v {
		e.Float64(x)
	}
}

// Ints appends a length-prefixed int slice.
func (e *Encoder) Ints(v []int) {
	e.Int(len(v))
	for _, x := range v {
		e.Int(x)
	}
}

// Bytes appends a length-prefixed byte slice.
func (e *Encoder) Bytes(v []byte) {
	e.Int(len(v))
	e.buf = append(e.buf, v...)
}

// Int16s appends a length-prefixed int16 slice (2 bytes per element). Used
// by the quantized-policy codec, where weights are int16 by construction.
func (e *Encoder) Int16s(v []int16) {
	e.Int(len(v))
	for _, x := range v {
		e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(x))
	}
}

// Int32s appends a length-prefixed int32 slice (4 bytes per element).
func (e *Encoder) Int32s(v []int32) {
	e.Int(len(v))
	for _, x := range v {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(x))
	}
}

// maxLen caps decoded length prefixes: no single slice in a checkpoint
// legitimately exceeds this, and the cap keeps a corrupt-but-CRC-colliding
// length from driving a multi-gigabyte allocation.
const maxLen = 1 << 31

// Decoder reads back the primitive sequence an Encoder produced. Errors are
// sticky: after the first failure every subsequent read returns zero values
// and Err reports the failure, so codecs can decode straight-line and check
// once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder reads from payload.
func NewDecoder(payload []byte) *Decoder { return &Decoder{buf: payload} }

// Err returns the first decode failure, if any.
func (d *Decoder) Err() error { return d.err }

// Finish fails unless the payload was consumed exactly and without error.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("ckpt: %d trailing bytes after payload", len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail(fmt.Errorf("ckpt: payload truncated at offset %d (need %d bytes)", d.off, n))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint64 reads one uint64.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int64 reads one int64.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Int reads one int, rejecting values outside the platform int range.
func (d *Decoder) Int() int {
	v := d.Int64()
	if int64(int(v)) != v {
		d.fail(fmt.Errorf("ckpt: int value %d out of range", v))
		return 0
	}
	return int(v)
}

// Bool reads one byte as a bool.
func (d *Decoder) Bool() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("ckpt: invalid bool byte %d", b[0]))
		return false
	}
}

// Float64 reads one float64 from its IEEE-754 bits.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// length reads and bounds-checks a slice length prefix. Beyond the absolute
// cap, the prefix cannot promise more elements than bytes remaining.
func (d *Decoder) length(elemSize int) int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > maxLen || (elemSize > 0 && n > (len(d.buf)-d.off)/elemSize) {
		d.fail(fmt.Errorf("ckpt: implausible length %d at offset %d", n, d.off))
		return 0
	}
	return n
}

// Float64s reads a length-prefixed float64 slice (nil for length 0).
func (d *Decoder) Float64s() []float64 {
	n := d.length(8)
	if n == 0 {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.Float64()
	}
	if d.err != nil {
		return nil
	}
	return v
}

// Ints reads a length-prefixed int slice (nil for length 0).
func (d *Decoder) Ints() []int {
	n := d.length(8)
	if n == 0 {
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = d.Int()
	}
	if d.err != nil {
		return nil
	}
	return v
}

// Int16s reads a length-prefixed int16 slice (nil for length 0).
func (d *Decoder) Int16s() []int16 {
	n := d.length(2)
	if n == 0 {
		return nil
	}
	b := d.take(2 * n)
	if b == nil {
		return nil
	}
	v := make([]int16, n)
	for i := range v {
		v[i] = int16(binary.LittleEndian.Uint16(b[2*i:]))
	}
	return v
}

// Int32s reads a length-prefixed int32 slice (nil for length 0).
func (d *Decoder) Int32s() []int32 {
	n := d.length(4)
	if n == 0 {
		return nil
	}
	b := d.take(4 * n)
	if b == nil {
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		v[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return v
}

// Bytes reads a length-prefixed byte slice (nil for length 0).
func (d *Decoder) Bytes() []byte {
	n := d.length(1)
	if n == 0 {
		return nil
	}
	b := d.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
