// Checkpoint series rotation. A long training run that checkpoints every N
// episodes grows its directory without bound unless old snapshots are
// retired; this file implements the retention rule shared by
// astraea-train's -checkpoint-keep and the pilot's training loop: keep the
// newest K series members plus the pinned one (the checkpoint that produced
// the last promoted policy — the state an operator resumes from when a
// later trajectory goes bad), delete the rest.

package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// SeriesName returns the series member path for base at sequence number seq
// (typically the trainer's episode counter): base.00000025 for seq 25. The
// fixed width keeps lexical and numeric order identical for any realistic
// episode count.
func SeriesName(base string, seq int) string {
	return fmt.Sprintf("%s.%08d", base, seq)
}

// seriesSeq parses the sequence number of a series member of base, matching
// only names SeriesName produces: base + "." + digits.
func seriesSeq(base, name string) (int, bool) {
	suffix, ok := strings.CutPrefix(name, filepath.Base(base)+".")
	if !ok || suffix == "" {
		return 0, false
	}
	for i := 0; i < len(suffix); i++ {
		if suffix[i] < '0' || suffix[i] > '9' {
			return 0, false
		}
	}
	n, err := strconv.Atoi(suffix)
	if err != nil {
		return 0, false
	}
	return n, true
}

// PruneSeries enforces the retention rule over base's series: the keep
// newest members (by sequence number) survive, the member named by pinned
// (a path or basename; empty pins nothing) always survives, everything
// else is deleted. base itself — the resume target the trainer overwrites
// in place — is never touched. Returns the deleted paths. keep < 1 keeps
// only the pinned member.
func PruneSeries(base string, keep int, pinned string) ([]string, error) {
	if keep < 0 {
		keep = 0
	}
	dir := filepath.Dir(base)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: prune %s: %w", base, err)
	}
	type member struct {
		name string
		seq  int
	}
	var members []member
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := seriesSeq(base, e.Name()); ok {
			members = append(members, member{name: e.Name(), seq: seq})
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i].seq > members[j].seq })
	pinBase := filepath.Base(pinned)
	var removed []string
	for i, m := range members {
		if i < keep || (pinBase != "" && m.name == pinBase) {
			continue
		}
		path := filepath.Join(dir, m.name)
		if err := os.Remove(path); err != nil {
			return removed, fmt.Errorf("ckpt: prune %s: %w", path, err)
		}
		removed = append(removed, path)
	}
	return removed, nil
}

// PinPath is where the promotion pin for base's series is recorded: a one-
// line file naming the series member that produced the last promoted
// policy. The pilot writes it at promotion time; PruneSeries callers read
// it through ReadPin so rotation never deletes the promoted lineage.
func PinPath(base string) string { return base + ".promoted" }

// WritePin records member (a series path or basename) as base's promotion
// pin, atomically.
func WritePin(base, member string) error {
	return WriteAtomic(PinPath(base), []byte(filepath.Base(member)+"\n"), 0o644)
}

// ReadPin returns the pinned series member for base, or "" when no pin has
// been recorded.
func ReadPin(base string) string {
	data, err := os.ReadFile(PinPath(base))
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(data))
}
