package ckpt

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestSealOpenRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, {0x42}, bytes.Repeat([]byte{0xAB}, 1000)} {
		sealed := Seal(payload)
		got, err := Open(sealed)
		if err != nil {
			t.Fatalf("Open(%d-byte payload): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mutated in round trip")
		}
	}
}

// The headline durability property: a checkpoint truncated at ANY byte
// offset must be rejected — there is no prefix of a valid container that is
// itself valid.
func TestOpenRejectsTruncationAtEveryOffset(t *testing.T) {
	payload := make([]byte, 300)
	rnd := rand.New(rand.NewSource(1))
	rnd.Read(payload)
	sealed := Seal(payload)
	for n := 0; n < len(sealed); n++ {
		if _, err := Open(sealed[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes was accepted", n, len(sealed))
		}
	}
}

// Any single bit flip anywhere — header, payload, or trailer — must fail
// validation.
func TestOpenRejectsCorruptionAtEveryByte(t *testing.T) {
	payload := make([]byte, 300)
	rnd := rand.New(rand.NewSource(2))
	rnd.Read(payload)
	sealed := Seal(payload)
	for i := range sealed {
		mut := append([]byte(nil), sealed...)
		mut[i] ^= 1 << uint(rnd.Intn(8))
		if _, err := Open(mut); err == nil {
			t.Fatalf("bit flip at byte %d was accepted", i)
		}
	}
	// Appending trailing garbage must also fail (length prefix mismatch).
	if _, err := Open(append(append([]byte(nil), sealed...), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestOpenRejectsWrongMagicAndVersion(t *testing.T) {
	sealed := Seal([]byte("hello"))
	bad := append([]byte(nil), sealed...)
	bad[0] ^= 0xFF
	if _, err := Open(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("wrong magic: %v", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	payload := []byte("the complete learner state")
	n, err := WriteFile(path, payload)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(n) {
		t.Fatalf("reported %d bytes, stat says %v (%v)", n, fi, err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mutated through the file")
	}
	// Overwrite must leave exactly one file: the new checkpoint, no temp
	// litter.
	if _, err := WriteFile(path, []byte("newer state")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.ckpt" {
		t.Fatalf("unexpected directory contents after overwrite: %v", entries)
	}
	got, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "newer state" {
		t.Fatalf("read %q after overwrite", got)
	}
}

func TestWriteAtomicFailureKeepsOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.json")
	if err := WriteAtomic(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Writing into a nonexistent directory must fail without touching the
	// original.
	if err := WriteAtomic(filepath.Join(dir, "missing", "policy.json"), []byte("new"), 0o644); err == nil {
		t.Fatal("expected error for missing directory")
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "old" {
		t.Fatalf("original clobbered: %q, %v", got, err)
	}
}

// Property test over the primitive codec: a random sequence of typed values
// encodes and decodes to deep-equal results with the payload fully
// consumed.
func TestEncoderDecoderRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		type op struct {
			kind int
			val  any
		}
		var ops []op
		e := &Encoder{}
		for i := 0; i < 1+rnd.Intn(30); i++ {
			switch k := rnd.Intn(9); k {
			case 0:
				v := rnd.Uint64()
				e.Uint64(v)
				ops = append(ops, op{k, v})
			case 1:
				v := rnd.Int63() - rnd.Int63()
				e.Int64(v)
				ops = append(ops, op{k, v})
			case 2:
				v := rnd.Intn(2) == 1
				e.Bool(v)
				ops = append(ops, op{k, v})
			case 3:
				v := math.Float64frombits(rnd.Uint64()) // any bit pattern, incl. NaN payloads
				e.Float64(v)
				ops = append(ops, op{k, v})
			case 4:
				v := make([]float64, rnd.Intn(20))
				for j := range v {
					v[j] = rnd.NormFloat64()
				}
				e.Float64s(v)
				ops = append(ops, op{k, v})
			case 5:
				v := make([]byte, rnd.Intn(40))
				rnd.Read(v)
				e.Bytes(v)
				ops = append(ops, op{k, v})
			case 6:
				v := make([]int, rnd.Intn(15))
				for j := range v {
					v[j] = rnd.Intn(1000) - 500
				}
				e.Ints(v)
				ops = append(ops, op{k, v})
			case 7:
				v := make([]int16, rnd.Intn(25))
				for j := range v {
					v[j] = int16(rnd.Intn(1 << 16))
				}
				e.Int16s(v)
				ops = append(ops, op{k, v})
			case 8:
				v := make([]int32, rnd.Intn(25))
				for j := range v {
					v[j] = int32(rnd.Uint64())
				}
				e.Int32s(v)
				ops = append(ops, op{k, v})
			}
		}
		d := NewDecoder(e.Payload())
		for i, o := range ops {
			var got any
			switch o.kind {
			case 0:
				got = d.Uint64()
			case 1:
				got = d.Int64()
			case 2:
				got = d.Bool()
			case 3:
				// Compare bits: NaN != NaN under ==.
				if g, w := math.Float64bits(d.Float64()), math.Float64bits(o.val.(float64)); g != w {
					t.Fatalf("trial %d op %d: float bits %x != %x", trial, i, g, w)
				}
				continue
			case 4:
				got = d.Float64s()
				if len(got.([]float64)) == 0 && len(o.val.([]float64)) == 0 {
					continue
				}
			case 5:
				got = d.Bytes()
				if len(got.([]byte)) == 0 && len(o.val.([]byte)) == 0 {
					continue
				}
			case 6:
				got = d.Ints()
				if len(got.([]int)) == 0 && len(o.val.([]int)) == 0 {
					continue
				}
			case 7:
				got = d.Int16s()
				if len(got.([]int16)) == 0 && len(o.val.([]int16)) == 0 {
					continue
				}
			case 8:
				got = d.Int32s()
				if len(got.([]int32)) == 0 && len(o.val.([]int32)) == 0 {
					continue
				}
			}
			if !reflect.DeepEqual(got, o.val) {
				t.Fatalf("trial %d op %d (kind %d): %v != %v", trial, i, o.kind, got, o.val)
			}
		}
		if err := d.Finish(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestDecoderErrorsAreSticky(t *testing.T) {
	e := &Encoder{}
	e.Uint64(1)
	d := NewDecoder(e.Payload())
	d.Uint64()
	d.Uint64() // past the end
	if d.Err() == nil {
		t.Fatal("read past end did not error")
	}
	if v := d.Uint64(); v != 0 {
		t.Fatalf("post-error read returned %d, want zero value", v)
	}
	if err := d.Finish(); err == nil {
		t.Fatal("Finish cleared the sticky error")
	}
}

func TestDecoderRejectsImplausibleLength(t *testing.T) {
	e := &Encoder{}
	e.Int(1 << 40) // length prefix promising a terabyte
	d := NewDecoder(e.Payload())
	if v := d.Float64s(); v != nil || d.Err() == nil {
		t.Fatalf("implausible length accepted: %v, %v", v, d.Err())
	}
}

func TestFixedWidthSlicesRejectTruncation(t *testing.T) {
	e := &Encoder{}
	e.Int16s([]int16{1, -2, 3})
	e.Int32s([]int32{4, -5, 6})
	full := e.Payload()
	d := NewDecoder(full)
	d.Int16s()
	d.Int32s()
	if err := d.Finish(); err != nil {
		t.Fatalf("full payload: %v", err)
	}
	for cut := 1; cut < len(full); cut++ {
		d := NewDecoder(full[:len(full)-cut])
		d.Int16s()
		d.Int32s()
		if d.Err() == nil {
			t.Fatalf("truncation by %d bytes decoded cleanly", cut)
		}
	}
}

func TestFinishFlagsTrailingBytes(t *testing.T) {
	e := &Encoder{}
	e.Uint64(7)
	e.Uint64(8)
	d := NewDecoder(e.Payload())
	d.Uint64()
	if err := d.Finish(); err == nil {
		t.Fatal("trailing bytes not flagged")
	}
}
