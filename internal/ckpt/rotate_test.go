package ckpt

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestPruneSeriesRetention is the regression test for the -checkpoint-keep
// rule: the newest N series members survive, the pinned (promoted) member
// survives regardless of age, the resume target and unrelated files are
// untouched, and everything else is deleted.
func TestPruneSeriesRetention(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "train.ckpt")
	write := func(name string) {
		t.Helper()
		if err := os.WriteFile(name, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(base) // resume target, never a rotation victim
	for _, seq := range []int{25, 50, 75, 100, 125} {
		write(SeriesName(base, seq))
	}
	// Decoys that must survive: a different base, a non-numeric suffix.
	write(filepath.Join(dir, "other.ckpt.00000010"))
	write(base + ".bak")

	// Pin the oldest member (it produced the last promoted policy).
	if err := WritePin(base, SeriesName(base, 25)); err != nil {
		t.Fatal(err)
	}
	removed, err := PruneSeries(base, 2, ReadPin(base))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(removed)
	want := []string{SeriesName(base, 50), SeriesName(base, 75)}
	if len(removed) != len(want) || removed[0] != want[0] || removed[1] != want[1] {
		t.Fatalf("removed %v, want %v", removed, want)
	}
	for _, keep := range []string{
		base, SeriesName(base, 25), SeriesName(base, 100), SeriesName(base, 125),
		filepath.Join(dir, "other.ckpt.00000010"), base + ".bak", PinPath(base),
	} {
		if _, err := os.Stat(keep); err != nil {
			t.Fatalf("%s should have survived: %v", keep, err)
		}
	}
	for _, gone := range want {
		if _, err := os.Stat(gone); !os.IsNotExist(err) {
			t.Fatalf("%s should be deleted", gone)
		}
	}

	// Idempotent: a second prune removes nothing.
	removed, err = PruneSeries(base, 2, ReadPin(base))
	if err != nil || len(removed) != 0 {
		t.Fatalf("second prune removed %v err %v", removed, err)
	}
}

// TestPruneSeriesBoundaries: keep larger than the series removes nothing;
// keep 0 with no pin removes everything; an unpinned series keeps exactly N.
func TestPruneSeriesBoundaries(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "c.ckpt")
	for _, seq := range []int{1, 2, 3} {
		if err := os.WriteFile(SeriesName(base, seq), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if removed, err := PruneSeries(base, 10, ""); err != nil || len(removed) != 0 {
		t.Fatalf("keep>len removed %v err %v", removed, err)
	}
	if removed, err := PruneSeries(base, 2, ""); err != nil || len(removed) != 1 || removed[0] != SeriesName(base, 1) {
		t.Fatalf("keep 2 removed %v err %v", removed, err)
	}
	if removed, err := PruneSeries(base, 0, ""); err != nil || len(removed) != 2 {
		t.Fatalf("keep 0 removed %v err %v", removed, err)
	}
	// ReadPin on a never-pinned base is empty, not an error.
	if pin := ReadPin(base); pin != "" {
		t.Fatalf("unexpected pin %q", pin)
	}
}
