package check

import (
	"flag"
	"fmt"
	"sync"
	"testing"

	"repro/internal/netem"
	"repro/internal/runner"
	"repro/internal/transport"
)

// seedFlag reruns the sweep for a single generator seed, reproducing a
// failure exactly:
//
//	go test ./internal/check -run TestRandomScenarioInvariants -seed=17
var seedFlag = flag.Int64("seed", -1, "run only the random scenario generated from this seed")

// sweepSize is the number of seeded random scenarios the invariant sweep
// runs (seeds 0..sweepSize-1). ci.sh runs the sweep under -race.
const sweepSize = 220

// runSeed generates, instruments and runs one scenario, returning a
// description of every invariant violation.
func runSeed(seed int64) (violations []string, err error) {
	sc := NewGenerator(seed).Scenario()
	c := NewChecker()
	c.Attach(&sc)
	res, err := runner.Run(sc)
	if err != nil {
		return nil, fmt.Errorf("seed %d: %w", seed, err)
	}
	if c.Events() == 0 {
		return nil, fmt.Errorf("seed %d: checker inspected zero events — harness unhooked", seed)
	}
	for _, v := range c.Finish(res) {
		violations = append(violations, fmt.Sprintf("seed %d: %s", seed, v))
	}
	if n := c.Total(); n > len(violations) {
		violations = append(violations, fmt.Sprintf("seed %d: ... %d violations total", seed, n))
	}
	return violations, nil
}

func TestRandomScenarioInvariants(t *testing.T) {
	if *seedFlag >= 0 {
		vs, err := runSeed(*seedFlag)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vs {
			t.Error(v)
		}
		return
	}
	if testing.Short() {
		t.Skip("sweep is the long pole; run without -short")
	}

	var mu sync.Mutex
	var all []string
	err := runner.ForEach(sweepSize, 0, func(i int) error {
		vs, err := runSeed(int64(i))
		if err != nil {
			return err
		}
		if len(vs) > 0 {
			mu.Lock()
			all = append(all, vs...)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) > 0 {
		for i, v := range all {
			if i >= 40 {
				t.Errorf("... and %d more", len(all)-40)
				break
			}
			t.Error(v)
		}
		t.Fatalf("%d invariant violations across %d scenarios (rerun one with -seed=N)", len(all), sweepSize)
	}
}

// TestCheckerCatchesSabotage proves the harness itself can fail: with a
// deliberately overstated propagation floor, real RTT samples must trip the
// rtt-floor rule. A checker that stays silent under sabotage would make the
// whole sweep vacuous.
func TestCheckerCatchesSabotage(t *testing.T) {
	sc := runner.Scenario{
		Seed: 1, RateBps: 20e6, BaseRTT: 0.020, QueueBDP: 1, Duration: 3,
		Flows: []runner.FlowSpec{{Scheme: "cubic"}},
	}
	c := NewChecker()
	c.Attach(&sc)
	// Layer over the checker's own hook: after it registers the flow,
	// overstate the flow's propagation floor tenfold.
	inner := sc.OnFlowCreated
	sc.OnFlowCreated = func(i int, f *transport.Flow) {
		inner(i, f)
		c.flows[len(c.flows)-1].baseRTT *= 10
	}
	res := runner.MustRun(sc)
	c.Finish(res)
	if c.Total() == 0 {
		t.Fatal("checker recorded no violations against a sabotaged RTT floor")
	}
	found := false
	for _, v := range c.Violations() {
		if v.Rule == "rtt-floor" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected rtt-floor violations, got %v", c.Violations())
	}
}

// describeScenario renders every generated field by value (the Discipline
// is an interface holding a pointer, so plain %+v would compare addresses).
func describeScenario(sc runner.Scenario) string {
	var disc string
	switch d := sc.Discipline.(type) {
	case nil:
		disc = "droptail"
	case *netem.RED:
		disc = fmt.Sprintf("red{min:%d max:%d p:%v}", d.MinThresholdBytes, d.MaxThresholdBytes, d.MaxProb)
	case *netem.CoDel:
		disc = fmt.Sprintf("codel{target:%v interval:%v}", d.Target, d.Interval)
	default:
		disc = fmt.Sprintf("%T", d)
	}
	return fmt.Sprintf("seed=%d rate=%v rtt=%v qB=%d qBDP=%v loss=%v dur=%v jit=%v cross=%v disc=%s flows=%+v",
		sc.Seed, sc.RateBps, sc.BaseRTT, sc.QueueBytes, sc.QueueBDP, sc.LossProb,
		sc.Duration, sc.Jitter, sc.CrossBps, disc, sc.Flows)
}

// TestGeneratorDeterministic: the same seed must yield the same scenario,
// or -seed=N reproduction is a lie.
func TestGeneratorDeterministic(t *testing.T) {
	a := describeScenario(NewGenerator(42).Scenario())
	b := describeScenario(NewGenerator(42).Scenario())
	if a != b {
		t.Fatalf("same seed produced different scenarios:\n%s\n%s", a, b)
	}
	c := describeScenario(NewGenerator(43).Scenario())
	if a == c {
		t.Fatal("different seeds produced identical scenarios")
	}
}
