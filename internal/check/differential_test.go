package check

// Differential tests: the batch engine must be a pure speedup. Serial
// execution and runner.RunBatch at any worker count must produce
// bit-for-bit identical results on *randomly generated* grids — the
// curated figure tables elsewhere only cover the parameter corners the
// paper happened to pick.

import (
	"hash/fnv"
	"math"
	"testing"

	"repro/internal/netem"
	"repro/internal/runner"
)

// digest folds every numeric output of a result into one FNV-64 hash,
// using exact IEEE-754 bits so "close enough" can never pass.
func digest(res *runner.Result) uint64 {
	h := fnv.New64a()
	u64 := func(v uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	f64(res.Utilization)
	u64(uint64(res.MaxQueue))
	st := res.Bottleneck
	for _, v := range []int64{st.Arrived, st.Delivered, st.TailDrops, st.AQMDrops, st.RandomDrops, st.BytesOut} {
		u64(uint64(v))
	}
	for _, fr := range res.Flows {
		h.Write([]byte(fr.SchemeName))
		u64(uint64(fr.DeliveredBytes))
		u64(uint64(fr.LostBytes))
		u64(uint64(fr.LostPackets))
		f64(fr.AvgTputBps)
		f64(fr.AvgRTT)
		f64(fr.MinRTT)
		f64(fr.LossRate)
		for _, v := range fr.Tput.Values {
			f64(v)
		}
		for _, v := range fr.RTT.Values {
			f64(v)
		}
	}
	return h.Sum64()
}

// grid generates n random scenarios from consecutive generator seeds,
// trimmed to keep the differential suite fast.
func grid(baseSeed int64, n int) []runner.Scenario {
	scs := make([]runner.Scenario, n)
	for i := range scs {
		sc := NewGenerator(baseSeed + int64(i)).Scenario()
		if sc.Duration > 3 {
			sc.Duration = 3
		}
		scs[i] = sc
	}
	return scs
}

func TestSerialBatchByteIdenticalRandomGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a random grid three times; run without -short")
	}
	scs := grid(5000, 12)

	serial := make([]uint64, len(scs))
	for i, sc := range scs {
		serial[i] = digest(runner.MustRun(sc))
	}
	for _, workers := range []int{2, 5} {
		rs, err := runner.RunBatch(scs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range rs {
			if d := digest(r); d != serial[i] {
				t.Errorf("workers=%d scenario %d (seed %d): digest %x != serial %x",
					workers, i, scs[i].Seed, d, serial[i])
			}
		}
	}
}

// TestRunIsPureFunctionOfScenario: the same scenario run twice in the same
// process must be bitwise identical — no hidden process-global state may
// leak into results (the regression PR 1 fixed, now guarded on random
// scenarios rather than curated tables).
func TestRunIsPureFunctionOfScenario(t *testing.T) {
	for seed := int64(9000); seed < 9006; seed++ {
		sc := NewGenerator(seed).Scenario()
		if sc.Duration > 3 {
			sc.Duration = 3
		}
		a := digest(runner.MustRun(sc))
		b := digest(runner.MustRun(sc))
		if a != b {
			t.Errorf("seed %d: same scenario diverged across runs: %x vs %x", seed, a, b)
		}
	}
}

// TestAQMScenarioReuseDeterministic is the regression for the shared
// stateful-discipline bug this suite uncovered: a Scenario holding a *RED
// or *CoDel instance, run twice (or fanned across workers), used to bleed
// EWMA/drop-schedule state — and RED's RNG hook — between runs.
func TestAQMScenarioReuseDeterministic(t *testing.T) {
	for _, disc := range []netem.QueueDiscipline{
		&netem.RED{MinThresholdBytes: 8_000, MaxThresholdBytes: 30_000, MaxProb: 0.3},
		netem.NewCoDel(),
	} {
		sc := runner.Scenario{
			Seed: 77, RateBps: 10e6, BaseRTT: 0.030, QueueBytes: 60_000,
			Duration: 4, Discipline: disc,
			Flows: []runner.FlowSpec{{Scheme: "cubic"}, {Scheme: "reno", Start: 0.5}},
		}
		a := digest(runner.MustRun(sc))
		b := digest(runner.MustRun(sc))
		if a != b {
			t.Errorf("%T: scenario reuse diverged: %x vs %x", disc, a, b)
		}
		rs := runner.MustRunBatch([]runner.Scenario{sc, sc, sc}, 3)
		for i, r := range rs {
			if d := digest(r); d != a {
				t.Errorf("%T: batch slot %d diverged from serial: %x vs %x", disc, i, d, a)
			}
		}
	}
}

// TestCheckerDoesNotPerturbResults: attaching the invariant checker must
// not change a single output bit — otherwise running checked in CI and
// unchecked in experiments would validate a different system.
func TestCheckerDoesNotPerturbResults(t *testing.T) {
	for seed := int64(9100); seed < 9104; seed++ {
		plain := NewGenerator(seed).Scenario()
		if plain.Duration > 3 {
			plain.Duration = 3
		}
		checked := plain
		c := NewChecker()
		c.Attach(&checked)

		a := digest(runner.MustRun(plain))
		res := runner.MustRun(checked)
		if vs := c.Finish(res); len(vs) > 0 {
			t.Fatalf("seed %d: violations during perturbation test: %v", seed, vs)
		}
		if b := digest(res); a != b {
			t.Errorf("seed %d: checker perturbed results: %x vs %x", seed, a, b)
		}
	}
}
