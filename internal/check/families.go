package check

import (
	"math"

	"repro/internal/runner"
	"repro/internal/trace"
)

// Scenario families beyond the generic dumbbell draw: many-to-one incast
// fan-in (datacenter request/response traffic, the workload Tessler et al.
// evaluate RL congestion control against) and oscillating-bandwidth links
// (square-wave capacity, the adversarial variant of the cellular traces).
// Both families run through runner.Run like any other scenario, so they
// inherit the invariant checker, the differential harness, and the batch
// engine for free.

// IncastScenario draws a random many-to-one fan-in scenario: tens to
// hundreds of senders share one aggregation link, arriving within a short
// window, a fraction of them short "response" flows that stop early. Rates
// and RTTs are datacenter-shaped (fast link, sub-10ms propagation), and
// buffers are drawn shallow often enough that the full drop/RTO recovery
// machinery stays under test.
func (g *Generator) IncastScenario() runner.Scenario {
	r := g.rng
	sc := runner.Scenario{
		Seed:     r.Int63(),
		RateBps:  g.logUniform(50e6, 400e6),
		BaseRTT:  g.logUniform(0.0005, 0.010),
		Duration: 0.5 + r.Float64(),
	}
	if r.Float64() < 0.5 {
		// Shallow switch buffer: the defining incast failure mode.
		sc.QueueBDP = 0.5 + 1.5*r.Float64()
	} else {
		sc.QueueBDP = 2 + 6*r.Float64()
	}
	senders := 30 + r.Intn(271) // 30..300
	window := 0.002 + 0.010*r.Float64()
	for i := 0; i < senders; i++ {
		spec := runner.FlowSpec{
			Scheme: g.Schemes[r.Intn(len(g.Schemes))],
			Start:  r.Float64() * window,
		}
		if r.Float64() < 0.3 {
			// Short response flow: finishes (or times out) mid-run,
			// exercising teardown with packets still queued.
			spec.Duration = 0.05 + 0.3*r.Float64()
		}
		sc.Flows = append(sc.Flows, spec)
	}
	return sc
}

// OscillatingScenario draws a dumbbell whose bottleneck capacity follows a
// square wave: full rate for half a period, a deep dip (10–60% of rate)
// for the other half. Period spans sub-RTT flutter to multi-RTT swings, so
// schemes see both fast fading and sustained capacity loss.
func (g *Generator) OscillatingScenario() runner.Scenario {
	r := g.rng
	sc := runner.Scenario{
		Seed:     r.Int63(),
		RateBps:  g.logUniform(5e6, 60e6),
		BaseRTT:  g.logUniform(0.005, 0.100),
		Duration: 2 + 2*r.Float64(),
		QueueBDP: 0.5 + 3*r.Float64(),
	}
	lo := sc.RateBps * (0.1 + 0.5*r.Float64())
	period := g.logUniform(math.Max(sc.BaseRTT/2, 0.005), 1.0)
	sc.Trace = trace.Step(lo, sc.RateBps, period, sc.Duration)
	nFlows := 1 + r.Intn(4)
	for i := 0; i < nFlows; i++ {
		spec := runner.FlowSpec{
			Scheme: g.Schemes[r.Intn(len(g.Schemes))],
			Start:  r.Float64() * sc.Duration / 4,
		}
		if r.Float64() < 0.3 {
			spec.ExtraDelay = g.logUniform(0.001, 0.030)
		}
		sc.Flows = append(sc.Flows, spec)
	}
	return sc
}

// FixedIncast builds a deterministic many-to-one scenario: senders flows
// cycling through schemes (all one scheme when a single name is given),
// starting within a 10ms window on a 200 Mbps / 2 ms aggregation link.
// Benchmarks and the 500-flow CI run use it so their workload is pinned,
// not generator-drawn.
func FixedIncast(seed int64, senders int, duration float64, schemes ...string) runner.Scenario {
	if len(schemes) == 0 {
		schemes = []string{"cubic", "reno", "bbr", "vegas"}
	}
	sc := runner.Scenario{
		Seed:     seed,
		RateBps:  200e6,
		BaseRTT:  0.002,
		QueueBDP: 4,
		Duration: duration,
	}
	for i := 0; i < senders; i++ {
		sc.Flows = append(sc.Flows, runner.FlowSpec{
			Scheme: schemes[i%len(schemes)],
			Start:  0.001 * float64(i%10),
		})
	}
	return sc
}

// fairShareTolerance documents the metamorphic fair-share gate: scaling
// sender count at fixed capacity must keep the mean per-flow share within
// this fraction of the ideal capacity/n split.
const fairShareTolerance = 0.30
