package check

// Scale regression suite for the O(flows) fix pass (incremental invariant
// checking, the transport ring window, the link ring queue, BBR's blind-
// startup ceiling). Three gates:
//
//   - Golden digests pin small fixed incasts bit-for-bit: the scaling work
//     was pure mechanism, so results at 2 and 4 flows must match the
//     pre-fix tree exactly.
//   - A named 500-flow invariant run (TestIncast500FlowInvariants) that
//     ci.sh executes under -race.
//   - An allocation budget at 500 flows, far under the pre-fix cost so a
//     reintroduced per-packet allocation trips it immediately.
//
// Measured on the fix PR (500-flow 0.5 s incast, full checker attached):
// 690.7 ms / 2.08 M allocs / 229 MB before; 29.9 ms / ~80 k allocs /
// ~5 MB after (23× wall-clock, 26× allocs). Unchecked run: 31.5 ms, so
// incremental checking is now effectively free.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/runner"
)

// goldenIncastDigests pin FixedIncast(4242, n, 0.5) bit-for-bit. They were
// captured on the tree *before* the scaling fixes and survived every one of
// them unchanged — the fixes replace data structures and bound pathological
// growth, not behavior at small scale. Update them only with a deliberate,
// documented behavioral change.
var goldenIncastDigests = map[int]uint64{
	2: 0x864b3596c327edae,
	4: 0x4617998b85a82258,
}

func TestFixedIncastGoldenDigests(t *testing.T) {
	for n, want := range goldenIncastDigests {
		sc := FixedIncast(4242, n, 0.5)
		got := digest(runner.MustRun(sc))
		if got != want {
			t.Errorf("FixedIncast flows=%d: digest %#x != golden %#x — results changed bit-for-bit",
				n, got, want)
		}
	}
}

// TestIncast500FlowInvariants runs the full 500-flow fan-in with every
// invariant checked after every event. ci.sh runs exactly this test under
// -race; it is the workload the scaling pass was built for.
func TestIncast500FlowInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("500-flow run; skipped under -short")
	}
	sc := FixedIncast(4242, 500, 0.5)
	c := NewChecker()
	c.Attach(&sc)
	res := runner.MustRun(sc)
	if c.Events() == 0 {
		t.Fatal("checker inspected zero events — harness unhooked")
	}
	for _, v := range c.Finish(res) {
		t.Error(v)
	}
	if n := c.Total(); n > 0 {
		t.Fatalf("%d invariant violations at 500 flows", n)
	}
}

// incastAllocBudget caps heap allocations for one checked 500-flow incast.
// The pre-fix tree needed 2.08M (per-packet map entries in the transport
// window, queue reallocation under bursts, BBR blind-burst amplification);
// the fixed tree needs ~80k. The 250k budget leaves headroom for harness
// noise while sitting 8× below the regression.
const incastAllocBudget = 250_000

func TestIncastAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("500-flow run; skipped under -short")
	}
	allocs := testing.AllocsPerRun(1, func() {
		sc := FixedIncast(4242, 500, 0.5)
		c := NewChecker()
		c.Attach(&sc)
		if vs := c.Finish(runner.MustRun(sc)); len(vs) > 0 {
			t.Fatalf("violations: %v", vs)
		}
	})
	if allocs > incastAllocBudget {
		t.Fatalf("checked 500-flow incast allocated %.0f objects, budget %d — an O(packets) allocation is back",
			allocs, incastAllocBudget)
	}
}

// BenchmarkIncast measures the checked and unchecked 500-flow incast plus
// the Exhaustive (pre-fix O(flows) per event) checker for comparison:
//
//	flows=100 checked:    31.9 ms before the fix pass, 21.9 ms after
//	flows=500 checked:   690.7 ms before the fix pass, 29.9 ms after (23×)
//	flows=500 unchecked:  31.5 ms (checking adds ~0)
//	flows=500 exhaustive: the surviving O(flows·events) reference point
func BenchmarkIncast(b *testing.B) {
	run := func(b *testing.B, flows int, mode string) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc := FixedIncast(4242, flows, 0.5)
			switch mode {
			case "unchecked":
				runner.MustRun(sc)
			default:
				c := NewChecker()
				c.Exhaustive = mode == "exhaustive"
				c.Attach(&sc)
				if vs := c.Finish(runner.MustRun(sc)); len(vs) > 0 {
					b.Fatalf("violations: %v", vs)
				}
			}
		}
	}
	for _, flows := range []int{100, 500} {
		b.Run(fmt.Sprintf("flows=%d/checked", flows), func(b *testing.B) { run(b, flows, "checked") })
	}
	b.Run("flows=500/unchecked", func(b *testing.B) { run(b, 500, "unchecked") })
	b.Run("flows=500/exhaustive", func(b *testing.B) { run(b, 500, "exhaustive") })
}

// TestIncastScenarioInvariants sweeps the incast generator family: every
// seed must hold all invariants with hundreds of synchronized senders and
// short response flows tearing down mid-run.
func TestIncastScenarioInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("family sweep; run without -short")
	}
	sweepFamily(t, 40, func(seed int64) runner.Scenario {
		return NewGenerator(seed).IncastScenario()
	})
}

// TestOscillatingScenarioInvariants sweeps the square-wave capacity family.
func TestOscillatingScenarioInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("family sweep; run without -short")
	}
	sweepFamily(t, 40, func(seed int64) runner.Scenario {
		return NewGenerator(seed).OscillatingScenario()
	})
}

func sweepFamily(t *testing.T, n int, gen func(seed int64) runner.Scenario) {
	t.Helper()
	var mu sync.Mutex
	var all []string
	err := runner.ForEach(n, 0, func(i int) error {
		sc := gen(int64(i))
		c := NewChecker()
		c.Attach(&sc)
		res, err := runner.Run(sc)
		if err != nil {
			return fmt.Errorf("seed %d: %w", i, err)
		}
		if c.Events() == 0 {
			return fmt.Errorf("seed %d: checker inspected zero events", i)
		}
		vs := c.Finish(res)
		if len(vs) > 0 {
			mu.Lock()
			for _, v := range vs {
				all = append(all, fmt.Sprintf("seed %d: %s", i, v))
			}
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range all {
		if i >= 20 {
			t.Errorf("... and %d more", len(all)-20)
			break
		}
		t.Error(v)
	}
}

// TestFamilyGeneratorsDeterministic: -seed=N reproduction must hold for the
// new families exactly as it does for the generic scenario draw.
func TestFamilyGeneratorsDeterministic(t *testing.T) {
	for name, gen := range map[string]func(seed int64) runner.Scenario{
		"incast":      func(s int64) runner.Scenario { return NewGenerator(s).IncastScenario() },
		"oscillating": func(s int64) runner.Scenario { return NewGenerator(s).OscillatingScenario() },
	} {
		a := describeScenario(gen(42))
		if b := describeScenario(gen(42)); a != b {
			t.Errorf("%s: same seed produced different scenarios:\n%s\n%s", name, a, b)
		}
		if c := describeScenario(gen(43)); a == c {
			t.Errorf("%s: different seeds produced identical scenarios", name)
		}
	}
}
