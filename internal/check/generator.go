package check

import (
	"math"
	"math/rand"

	"repro/internal/cc"
	"repro/internal/netem"
	"repro/internal/runner"
	"repro/internal/transport"
)

// Generator samples random but well-formed scenarios from a seed. The same
// seed always yields the same scenario (the generator owns a private RNG
// and the scenario's own Seed is drawn from it), so any sweep failure is
// reproducible from the single integer that produced it.
//
// Distributions (see DESIGN.md §9): link rate and propagation delay are
// log-uniform — network parameters span orders of magnitude and a linear
// draw would almost never produce a slow or short path; buffers are drawn
// either in BDP multiples or as raw bytes down to the 2-MSS minimum; every
// registered CC algorithm is eligible for every flow slot, so scheme
// pairings the curated experiments never try (remy vs aurora, copa vs
// allegro, ...) appear constantly.
type Generator struct {
	rng *rand.Rand
	// Schemes is the algorithm pool flows draw from; defaults to every
	// registered scheme (cc.Names()).
	Schemes []string
}

// NewGenerator returns a generator whose draws derive entirely from seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), Schemes: cc.Names()}
}

// logUniform draws from [lo, hi) with log-uniform density.
func (g *Generator) logUniform(lo, hi float64) float64 {
	return lo * math.Exp(g.rng.Float64()*math.Log(hi/lo))
}

// Scenario draws one random scenario. Durations and rates are bounded so a
// single scenario stays cheap enough to run hundreds under the race
// detector.
func (g *Generator) Scenario() runner.Scenario {
	r := g.rng
	sc := runner.Scenario{
		Seed:     r.Int63(),
		RateBps:  g.logUniform(1.5e6, 30e6),
		BaseRTT:  g.logUniform(0.004, 0.150),
		Duration: 2 + 3*r.Float64(),
	}

	// Buffer: BDP-relative most of the time, raw bytes otherwise (which
	// exercises the 2-MSS floor and sub-BDP shallow buffers).
	if r.Float64() < 0.7 {
		sc.QueueBDP = 0.3 + 3.7*r.Float64()
	} else {
		sc.QueueBytes = 2*transport.MSS + r.Intn(200_000)
	}

	if r.Float64() < 0.4 {
		sc.LossProb = 0.02 * r.Float64()
	}
	if r.Float64() < 0.2 {
		sc.Jitter = 0.002 * r.Float64()
	}
	if r.Float64() < 0.2 {
		sc.CrossBps = 0.2 * sc.RateBps * r.Float64()
	}

	// Queue discipline: droptail mostly, RED and CoDel often enough that
	// their drop paths stay under test.
	switch p := r.Float64(); {
	case p < 0.15:
		q := sc.QueueBytes
		if q == 0 {
			// Resolve the BDP-relative buffer the same way the runner does
			// so RED's thresholds sit inside the real limit.
			q = int(float64(netem.BDPBytes(sc.RateBps, sc.BaseRTT)) * sc.QueueBDP)
			if q < 2*transport.MSS {
				q = 2 * transport.MSS
			}
		}
		sc.Discipline = &netem.RED{
			MinThresholdBytes: q / 4,
			MaxThresholdBytes: q / 2,
			MaxProb:           0.1 + 0.4*r.Float64(),
		}
	case p < 0.30:
		sc.Discipline = netem.NewCoDel()
	}

	nFlows := 1 + r.Intn(4)
	for i := 0; i < nFlows; i++ {
		spec := runner.FlowSpec{
			Scheme: g.Schemes[r.Intn(len(g.Schemes))],
			Start:  r.Float64() * sc.Duration / 3,
		}
		if r.Float64() < 0.4 {
			// Stop early: staggered departures exercise flow teardown with
			// packets still in flight.
			remain := sc.Duration - spec.Start
			spec.Duration = 0.5 + r.Float64()*math.Max(remain-0.5, 0.1)
		}
		if r.Float64() < 0.3 {
			spec.ExtraDelay = g.logUniform(0.001, 0.050)
		}
		sc.Flows = append(sc.Flows, spec)
	}
	return sc
}
