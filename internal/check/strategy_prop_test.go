package check

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// The reward-strategy property sweep: every registered strategy (plus alpha
// at several α) is hammered with sweepSize seeded random world observations
// and must satisfy the RewardStrategy contract — finite components, the
// shared Total bound, invariance to flow ordering, a preference (weak) for
// equal shares at fixed aggregate throughput, and exact zeros on degenerate
// inputs. Reproduce one failing seed with -seed=N.

// propStrategies returns the strategy instances under test, covering each
// registered family and the α spectrum's interesting points.
func propStrategies(t *testing.T) []core.RewardStrategy {
	t.Helper()
	names := []string{"paper", "aurora", "maxmin", "alpha:0", "alpha:1", "alpha:2", "alpha:8"}
	out := make([]core.RewardStrategy, 0, len(names))
	for _, n := range names {
		s, err := core.NewRewardStrategy(n)
		if err != nil {
			t.Fatalf("strategy %q: %v", n, err)
		}
		out = append(out, s)
	}
	return out
}

// propWorld draws one random world observation: a link and 1..6 flows with
// correlated histories, latencies and losses.
func propWorld(r *rand.Rand) ([]core.FlowObs, core.LinkInfo, core.Config) {
	cfg := core.DefaultConfig()
	cfg.Beta = 0.5 * r.Float64()
	link := core.LinkInfo{
		Bandwidth: math.Exp(r.Float64()*8) * 1e6,
		BaseOWD:   0.001 + 0.1*r.Float64(),
	}
	n := 1 + r.Intn(6)
	flows := make([]core.FlowObs, n)
	for i := range flows {
		share := r.Float64() * 1.5 * link.Bandwidth / float64(n)
		w := 1 + r.Intn(6)
		hist := make([]float64, w)
		for j := range hist {
			hist[j] = share * (0.5 + r.Float64())
		}
		flows[i] = core.FlowObs{
			TputBps:     share,
			TputHistory: hist,
			AvgLat:      2 * link.BaseOWD * (0.8 + 2*r.Float64()),
			PacingBps:   share * (0.8 + 0.4*r.Float64()),
		}
		if r.Float64() < 0.3 {
			flows[i].LossBps = share * 0.2 * r.Float64()
		}
	}
	return flows, link, cfg
}

func finiteComponents(rc core.RewardComponents) bool {
	for _, v := range []float64{rc.Thr, rc.Lat, rc.Loss, rc.Fair, rc.Stab, rc.Total} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func TestStrategyPropertySweep(t *testing.T) {
	strategies := propStrategies(t)
	seeds := make([]int64, 0, sweepSize)
	if *seedFlag >= 0 {
		seeds = append(seeds, *seedFlag)
	} else {
		for s := int64(0); s < sweepSize; s++ {
			seeds = append(seeds, s)
		}
	}
	for _, seed := range seeds {
		for _, strat := range strategies {
			r := rand.New(rand.NewSource(seed))
			flows, link, cfg := propWorld(r)
			rc := strat.Evaluate(cfg, flows, link)

			// Finite components, bounded total.
			if !finiteComponents(rc) {
				t.Fatalf("seed %d %s: non-finite components %+v", seed, strat.Name(), rc)
			}
			if rc.Total < -core.RewardBound || rc.Total > core.RewardBound {
				t.Fatalf("seed %d %s: Total %v outside ±%v", seed, strat.Name(), rc.Total, core.RewardBound)
			}

			// Permutation invariance: the reward is a function of the set of
			// flows, not their order. Tolerance covers float summation order.
			perm := make([]core.FlowObs, len(flows))
			for i, p := range r.Perm(len(flows)) {
				perm[i] = flows[p]
			}
			pc := strat.Evaluate(cfg, perm, link)
			for _, d := range []struct {
				name string
				a, b float64
			}{
				{"Thr", rc.Thr, pc.Thr}, {"Lat", rc.Lat, pc.Lat},
				{"Loss", rc.Loss, pc.Loss}, {"Fair", rc.Fair, pc.Fair},
				{"Stab", rc.Stab, pc.Stab}, {"Total", rc.Total, pc.Total},
			} {
				if math.Abs(d.a-d.b) > 1e-9*(1+math.Abs(d.a)) {
					t.Fatalf("seed %d %s: %s not permutation-invariant: %v vs %v",
						seed, strat.Name(), d.name, d.a, d.b)
				}
			}
		}
	}
}

func TestStrategyEqualSharesPreferred(t *testing.T) {
	// At fixed aggregate throughput (and identical latency/loss/history
	// shape), an equal split must score at least as well as an unequal one:
	// every strategy is at worst fairness-neutral (aurora), never
	// fairness-averse. Aggregate is kept ≥ 10% utilization so the α ≥ 1
	// share floor does not invert the comparison, and ≤ 95% so totals stay
	// inside the clamp where the ordering is observable.
	strategies := propStrategies(t)
	for seed := int64(0); seed < sweepSize; seed++ {
		r := rand.New(rand.NewSource(seed))
		link := core.LinkInfo{
			Bandwidth: math.Exp(r.Float64()*8) * 1e6,
			BaseOWD:   0.001 + 0.1*r.Float64(),
		}
		cfg := core.DefaultConfig()
		n := 2 + r.Intn(5)
		total := (0.1 + 0.85*r.Float64()) * link.Bandwidth

		// Unequal split of the same total via random weights.
		weights := make([]float64, n)
		var wsum float64
		for i := range weights {
			weights[i] = r.Float64() + 1e-6
			wsum += weights[i]
		}
		mk := func(tput float64) core.FlowObs {
			hist := []float64{tput, tput, tput}
			return core.FlowObs{TputBps: tput, TputHistory: hist,
				AvgLat: 2 * link.BaseOWD, PacingBps: tput}
		}
		equal := make([]core.FlowObs, n)
		unequal := make([]core.FlowObs, n)
		for i := 0; i < n; i++ {
			equal[i] = mk(total / float64(n))
			unequal[i] = mk(total * weights[i] / wsum)
		}
		for _, strat := range strategies {
			eq := strat.Evaluate(cfg, equal, link)
			un := strat.Evaluate(cfg, unequal, link)
			if eq.Total < un.Total-1e-12 {
				t.Fatalf("seed %d %s: equal split %v scored below unequal %v",
					seed, strat.Name(), eq.Total, un.Total)
			}
		}
	}
}

func TestStrategyDegenerateInputsAreZero(t *testing.T) {
	cfg := core.DefaultConfig()
	someFlows := []core.FlowObs{{TputBps: 1e6, TputHistory: []float64{1e6}, AvgLat: 0.03}}
	for _, strat := range propStrategies(t) {
		// No flows.
		if rc := strat.Evaluate(cfg, nil, core.LinkInfo{Bandwidth: 100e6, BaseOWD: 0.015}); rc != (core.RewardComponents{}) {
			t.Errorf("%s: zero flows gave %+v, want zeros", strat.Name(), rc)
		}
		// No capacity.
		if rc := strat.Evaluate(cfg, someFlows, core.LinkInfo{Bandwidth: 0, BaseOWD: 0.015}); rc != (core.RewardComponents{}) {
			t.Errorf("%s: zero bandwidth gave %+v, want zeros", strat.Name(), rc)
		}
		// No propagation floor: latency term must drop, everything finite.
		rc := strat.Evaluate(cfg, someFlows, core.LinkInfo{Bandwidth: 100e6, BaseOWD: 0})
		if rc.Lat != 0 || !finiteComponents(rc) {
			t.Errorf("%s: zero BaseOWD gave Lat=%v components=%+v", strat.Name(), rc.Lat, rc)
		}
	}
}
