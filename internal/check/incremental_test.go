package check

// Differential proof for the incremental checker: dirty-flow checking must
// reach the same verdict as the original check-every-flow-every-event scan.
// Equality is on the *set of violated rules* — the exhaustive scan
// re-observes a persistent breach on every subsequent event, so raw counts
// differ by design, but a rule either fired for a run or it did not.

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/transport"

	"repro/internal/netem"
)

// ruleSet reduces a checker's findings to the sorted set of violated rules.
func ruleSet(c *Checker) []string {
	seen := map[string]bool{}
	for _, v := range c.Violations() {
		seen[v.Rule] = true
	}
	rules := make([]string, 0, len(seen))
	for r := range seen {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	return rules
}

// runChecked runs sc under a fresh checker, mutate (optional) getting a
// chance to sabotage the wiring after Attach. Returns the finished checker.
func runChecked(sc runner.Scenario, exhaustive bool, mutate func(*runner.Scenario, *Checker)) (*Checker, error) {
	c := NewChecker()
	c.Exhaustive = exhaustive
	c.Attach(&sc)
	if mutate != nil {
		mutate(&sc, c)
	}
	res, err := runner.Run(sc)
	if err != nil {
		return nil, err
	}
	c.Finish(res)
	return c, nil
}

// TestIncrementalCheckerDifferential runs the full invariant sweep twice —
// incremental and exhaustive — and requires identical verdicts on every
// seed. This is the proof that replacing the O(flows) per-event scan was a
// pure optimization.
func TestIncrementalCheckerDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("double sweep; run without -short")
	}
	var mu sync.Mutex
	var diffs []string
	err := runner.ForEach(sweepSize, 0, func(i int) error {
		sc := NewGenerator(int64(i)).Scenario()
		inc, err := runChecked(sc, false, nil)
		if err != nil {
			return fmt.Errorf("seed %d: %w", i, err)
		}
		exh, err := runChecked(sc, true, nil)
		if err != nil {
			return fmt.Errorf("seed %d: %w", i, err)
		}
		a, b := ruleSet(inc), ruleSet(exh)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			mu.Lock()
			diffs = append(diffs, fmt.Sprintf("seed %d: incremental verdict %v != exhaustive %v", i, a, b))
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diffs {
		t.Error(d)
	}
}

// sabotagedIncast is a two-flow scenario where flow 0 stops halfway,
// leaving a window where no hook of its will ever fire again.
func sabotagedIncast() runner.Scenario {
	return runner.Scenario{
		Seed: 7, RateBps: 20e6, BaseRTT: 0.020, QueueBDP: 2, Duration: 2,
		Flows: []runner.FlowSpec{
			{Scheme: "cubic", Duration: 0.8},
			{Scheme: "reno"},
		},
	}
}

// corruptVia wires a sabotage that corrupts flow 0's conservation identity
// through the given trigger; both checker modes must convict.
func TestIncrementalCheckerCatchesHookedCorruption(t *testing.T) {
	// Corruption at an ack: the flow is dirty at that very event, so the
	// incremental checker must catch it during the run just like the
	// exhaustive one.
	for _, exhaustive := range []bool{false, true} {
		c, err := runChecked(sabotagedIncast(), exhaustive, func(sc *runner.Scenario, c *Checker) {
			prev := sc.OnFlowCreated
			sc.OnFlowCreated = func(i int, f *transport.Flow) {
				prev(i, f)
				if i != 0 {
					return
				}
				prevAck := f.OnAckHook
				f.OnAckHook = func(e transport.AckEvent) {
					f.DeliveredBytes += 7 // break conservation right before the check
					if prevAck != nil {
						prevAck(e)
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		rules := ruleSet(c)
		if fmt.Sprint(rules) != "[flow-conservation]" {
			t.Errorf("exhaustive=%v: verdict %v, want [flow-conservation]", exhaustive, rules)
		}
	}
}

func TestIncrementalCheckerCatchesHooklessCorruption(t *testing.T) {
	// Corruption with no hook at all: a raw simulator event mutates flow 0's
	// totals at t=1.5, after the flow stopped at t=0.8 — no send, ack, loss
	// or cwnd hook of flow 0 will ever run again, so dirty-marking can never
	// see it. The Finish sweep is what must convict; the exhaustive mode
	// convicts from the event stream. Same verdict either way.
	for _, exhaustive := range []bool{false, true} {
		var f0 *transport.Flow
		c, err := runChecked(sabotagedIncast(), exhaustive, func(sc *runner.Scenario, c *Checker) {
			prevFlow := sc.OnFlowCreated
			sc.OnFlowCreated = func(i int, f *transport.Flow) {
				prevFlow(i, f)
				if i == 0 {
					f0 = f
				}
			}
			prevProbe := sc.Probe
			sc.Probe = func(s *sim.Simulator, d *netem.Dumbbell) {
				prevProbe(s, d)
				s.After(1.5, func() { f0.DeliveredBytes += 12345 })
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		rules := ruleSet(c)
		if fmt.Sprint(rules) != "[flow-conservation]" {
			t.Errorf("exhaustive=%v: verdict %v, want [flow-conservation]", exhaustive, rules)
		}
	}
}
