// Package check is the property-based correctness harness for the
// emulation stack. It has two halves:
//
//   - A seeded random scenario generator (Generator) that samples link
//     rates, propagation delays, buffer sizes, queue disciplines, loss,
//     jitter, cross traffic, and 1–4 flows with staggered start/stop times
//     and congestion-control algorithms drawn from every registered scheme.
//
//   - An invariant checker (Checker) that attaches to a running simulation
//     through runner.Scenario hooks and asserts, after every simulator
//     event, the conservation and sanity properties the training signal
//     depends on: packets sent == delivered + dropped + in-flight, queue
//     occupancy within the configured buffer, a monotonically
//     non-decreasing clock, cwnd >= 1 segment, and per-sample RTT >= the
//     path's two-way propagation delay.
//
// The bitwise-determinism guarantees elsewhere in the repository prove
// runs are reproducible; this package is what argues they are *correct*,
// and it is the safety net every refactor of sim/netem/transport runs
// against. A failing sweep seed reproduces with
//
//	go test ./internal/check -run TestRandomScenarioInvariants -seed=N
package check

import (
	"fmt"
	"math"

	"repro/internal/netem"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Violation is one observed invariant breach.
type Violation struct {
	Rule   string  // stable rule identifier, e.g. "flow-conservation"
	Time   float64 // sim clock when observed
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%.6f [%s] %s", v.Time, v.Rule, v.Detail)
}

// maxRecorded caps stored violation details; a broken invariant typically
// fires every event thereafter, and thousands of copies of the same breach
// help nobody. The total count keeps counting.
const maxRecorded = 32

// Checker watches one scenario run and records invariant violations. Attach
// it before runner.Run; it is not safe to share across scenarios or
// goroutines (build one per run).
//
// Per-flow checks are incremental: a flow's conservation identity and cwnd
// floor can only change at its send/ack/loss/cwnd mutation points, all of
// which fire a transport hook, so the checker marks the flow dirty there
// and re-checks only dirty flows after each event. The cost per event is
// O(flows touched by the event) — almost always 0 or 1 — instead of the
// full-population scan that made event dispatch O(flows) and a whole run
// O(flows²). Finish closes the residual gap with one last full sweep:
// conservation breaches are persistent, so anything a hook-less mutation
// corrupted is still caught before the verdict. Set Exhaustive to restore
// the every-flow-every-event scan (differential tests and benchmarks).
type Checker struct {
	sim   *sim.Simulator
	links []*netem.Link
	flows []*checkedFlow
	dirty []*checkedFlow

	// Exhaustive re-checks every flow after every event (the original
	// O(flows) behavior) instead of only flows marked dirty by their hooks.
	// The verdict is identical either way — see TestIncrementalCheckerDifferential.
	Exhaustive bool

	lastNow    float64
	events     uint64
	total      int
	violations []Violation
}

type checkedFlow struct {
	id      int
	f       *transport.Flow
	baseRTT float64 // two-way propagation for this flow's path
	dirty   bool
}

// NewChecker returns an empty checker; wire it to a scenario with Attach.
func NewChecker() *Checker { return &Checker{} }

// Attach hooks the checker into sc, chaining any Probe, OnFlowCreated and
// per-flow ack hooks the scenario already carries. It must be called before
// the scenario runs.
func (c *Checker) Attach(sc *runner.Scenario) {
	prevProbe := sc.Probe
	prevFlow := sc.OnFlowCreated
	flowSpecs := sc.Flows
	baseRTT := sc.BaseRTT

	sc.Probe = func(s *sim.Simulator, d *netem.Dumbbell) {
		if prevProbe != nil {
			prevProbe(s, d)
		}
		c.sim = s
		c.links = append(c.links, d.Bottleneck)
		prevAfter := s.AfterEvent
		s.AfterEvent = func() {
			if prevAfter != nil {
				prevAfter()
			}
			c.onEvent()
		}
	}
	sc.OnFlowCreated = func(i int, f *transport.Flow) {
		if prevFlow != nil {
			prevFlow(i, f)
		}
		cf := &checkedFlow{id: i, f: f, baseRTT: baseRTT}
		if i < len(flowSpecs) {
			cf.baseRTT += flowSpecs[i].ExtraDelay
		}
		c.flows = append(c.flows, cf)
		prevAck := f.OnAckHook
		f.OnAckHook = func(e transport.AckEvent) {
			c.checkAck(cf, e)
			c.markDirty(cf)
			if prevAck != nil {
				prevAck(e)
			}
		}
		prevSend := f.OnSendHook
		f.OnSendHook = func(now float64, bytes int) {
			c.markDirty(cf)
			if prevSend != nil {
				prevSend(now, bytes)
			}
		}
		prevLoss := f.OnLossHook
		f.OnLossHook = func(e transport.LossEvent) {
			c.markDirty(cf)
			if prevLoss != nil {
				prevLoss(e)
			}
		}
		prevCwnd := f.OnCwndHook
		f.OnCwndHook = func(now, cwnd float64) {
			c.markDirty(cf)
			if prevCwnd != nil {
				prevCwnd(now, cwnd)
			}
		}
	}
}

// markDirty queues cf for re-checking at the end of the current event.
func (c *Checker) markDirty(cf *checkedFlow) {
	if !cf.dirty {
		cf.dirty = true
		c.dirty = append(c.dirty, cf)
	}
}

// record notes a violation, keeping at most maxRecorded details.
func (c *Checker) record(rule string, format string, args ...any) {
	c.total++
	if len(c.violations) < maxRecorded {
		now := 0.0
		if c.sim != nil {
			now = c.sim.Now()
		}
		c.violations = append(c.violations, Violation{
			Rule: rule, Time: now, Detail: fmt.Sprintf(format, args...),
		})
	}
}

// onEvent runs after every dispatched simulator event.
func (c *Checker) onEvent() {
	c.events++
	now := c.sim.Now()
	if now < c.lastNow {
		c.record("clock-monotonic", "clock moved backwards: %.9f after %.9f", now, c.lastNow)
	}
	c.lastNow = now

	for _, l := range c.links {
		q := l.QueueBytes()
		limit := l.Config().QueueBytes
		if q < 0 {
			c.record("queue-bound", "link %s queue occupancy negative: %d bytes", l.Name, q)
		}
		if q > limit {
			c.record("queue-bound", "link %s queue %d bytes exceeds configured buffer %d", l.Name, q, limit)
		}
		st := l.Stats()
		inService := int64(0)
		if l.InService() {
			inService = 1
		}
		accounted := st.Delivered + st.TailDrops + st.AQMDrops + st.RandomDrops +
			int64(l.QueueLen()) + inService
		if st.Arrived != accounted {
			c.record("link-conservation",
				"link %s: arrived %d != delivered %d + drops %d/%d/%d + queued %d + in-service %d",
				l.Name, st.Arrived, st.Delivered, st.TailDrops, st.AQMDrops, st.RandomDrops,
				l.QueueLen(), inService)
		}
	}

	if c.Exhaustive {
		for _, cf := range c.flows {
			c.checkFlow(cf)
		}
		for _, cf := range c.dirty {
			cf.dirty = false
		}
		c.dirty = c.dirty[:0]
		return
	}
	for _, cf := range c.dirty {
		c.checkFlow(cf)
		cf.dirty = false
	}
	c.dirty = c.dirty[:0]
}

// checkFlow asserts one flow's per-event invariants against its current
// state.
func (c *Checker) checkFlow(cf *checkedFlow) {
	f := cf.f
	w := f.Cwnd()
	if math.IsNaN(w) || w < 1 {
		c.record("cwnd-floor", "flow %d cwnd %v below 1 segment", cf.id, w)
	}
	inflight := f.Inflight()
	if inflight < 0 {
		c.record("flow-conservation", "flow %d inflight negative: %d", cf.id, inflight)
	}
	// Every sent byte is acknowledged, declared lost, or still
	// outstanding — nothing vanishes, nothing is double-counted.
	if got := f.DeliveredBytes + f.LostBytes + int64(inflight)*transport.MSS; f.SentBytes != got {
		c.record("flow-conservation",
			"flow %d: sent %d B != delivered %d + lost %d + inflight %d pkts",
			cf.id, f.SentBytes, f.DeliveredBytes, f.LostBytes, inflight)
	}
}

// checkAck validates one RTT sample: physics says a round trip can never
// beat the path's two-way propagation delay.
func (c *Checker) checkAck(cf *checkedFlow, e transport.AckEvent) {
	if e.RTT < cf.baseRTT-1e-9 {
		c.record("rtt-floor", "flow %d RTT sample %.6f below propagation floor %.6f",
			cf.id, e.RTT, cf.baseRTT)
	}
	if e.RTT < 0 || math.IsNaN(e.RTT) {
		c.record("rtt-floor", "flow %d RTT sample invalid: %v", cf.id, e.RTT)
	}
}

// Finish runs the end-of-run checks against the completed result and
// returns all recorded violations. Call it exactly once, after runner.Run.
func (c *Checker) Finish(res *runner.Result) []Violation {
	// One last exhaustive sweep: conservation and floor breaches are
	// persistent state properties, so a flow corrupted by a mutation that
	// bypassed every hook (which incremental checking would only notice at
	// its next hook) is still caught here.
	for _, cf := range c.flows {
		c.checkFlow(cf)
	}
	if res == nil {
		return c.violations
	}
	// Cumulative delivery can never exceed what the link could carry plus
	// sampling slack (the queue is empty at t=0, so there is no stored
	// credit to burst from).
	if res.Utilization < 0 || res.Utilization > 1.02 {
		c.record("utilization-range", "utilization %.4f outside [0, 1.02]", res.Utilization)
	}
	for i, fr := range res.Flows {
		if fr.LossRate < 0 || fr.LossRate > 1 {
			c.record("loss-rate-range", "flow %d loss rate %.4f outside [0,1]", i, fr.LossRate)
		}
		if fr.DeliveredBytes < 0 || fr.LostBytes < 0 {
			c.record("flow-conservation", "flow %d negative byte totals: delivered %d lost %d",
				i, fr.DeliveredBytes, fr.LostBytes)
		}
	}
	for _, l := range c.links {
		if res.MaxQueue > l.Config().QueueBytes {
			c.record("queue-bound", "high-water queue %d bytes exceeds buffer %d",
				res.MaxQueue, l.Config().QueueBytes)
		}
	}
	return c.violations
}

// Violations returns the recorded breaches so far (at most maxRecorded
// details; Total counts all).
func (c *Checker) Violations() []Violation { return c.violations }

// Total returns the number of violations observed, including ones beyond
// the recording cap.
func (c *Checker) Total() int { return c.total }

// Events returns how many simulator events the checker inspected. A sweep
// that asserts Events() > 0 can never pass vacuously because a refactor
// unhooked the checker.
func (c *Checker) Events() uint64 { return c.events }
