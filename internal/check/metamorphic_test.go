package check

// Metamorphic tests: relations that must hold between *pairs* of runs, so
// they need no hand-computed expected values — the simulator is its own
// oracle. These guard the emulation's physics, where a plain regression
// test would only pin today's (possibly wrong) numbers.

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/metrics"
	"repro/internal/runner"
)

// shares returns each flow's fraction of the total delivered throughput
// over the scenario's second half (past startup transients).
func shares(res *runner.Result) []float64 {
	dur := res.Scenario.Duration
	raw := make([]float64, len(res.Flows))
	var total float64
	for i, fr := range res.Flows {
		raw[i] = fr.AvgTputWindow(dur/2, dur)
		total += raw[i]
	}
	if total == 0 {
		return raw
	}
	for i := range raw {
		raw[i] /= total
	}
	return raw
}

// TestRateScalingPreservesShares: multiplying the link rate by k while the
// buffer stays at the same BDP multiple (so queue capacity scales with the
// traffic) must preserve the flows' *normalized* shares of throughput. The
// absolute numbers all change; the division of the link must not. Every
// case uses identical flows, so the flows are exchangeable — which index
// ends up ahead is phase-dependent and may legitimately flip under scaling
// — and the invariant is the sorted share distribution, not the per-index
// assignment.
func TestRateScalingPreservesShares(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run metamorphic test; run without -short")
	}
	cases := []struct {
		name  string
		flows []runner.FlowSpec
	}{
		{"2xcubic", []runner.FlowSpec{{Scheme: "cubic"}, {Scheme: "cubic", Start: 1}}},
		{"2xreno", []runner.FlowSpec{{Scheme: "reno"}, {Scheme: "reno", Start: 1}}},
		{"3xbbr", []runner.FlowSpec{{Scheme: "bbr"}, {Scheme: "bbr", Start: 0.5}, {Scheme: "bbr", Start: 1}}},
	}
	const k = 3.0
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			base := runner.Scenario{
				Seed: 11, RateBps: 12e6, BaseRTT: 0.030, QueueBDP: 1.5,
				Duration: 30, Flows: tc.flows,
			}
			scaled := base
			scaled.RateBps *= k

			resBase := runner.MustRun(base)
			resScaled := runner.MustRun(scaled)
			sBase, sScaled := shares(resBase), shares(resScaled)
			sort.Float64s(sBase)
			sort.Float64s(sScaled)
			for i := range sBase {
				if d := math.Abs(sBase[i] - sScaled[i]); d > 0.15 {
					t.Errorf("flow %d share moved %.3f -> %.3f (Δ%.3f) under x%.0f rate scaling",
						i, sBase[i], sScaled[i], d, k)
				}
			}
			if d := math.Abs(resBase.Utilization - resScaled.Utilization); d > 0.15 {
				t.Errorf("utilization moved %.3f -> %.3f under x%.0f rate scaling",
					resBase.Utilization, resScaled.Utilization, k)
			}
		})
	}
}

// TestAIMDFairnessOracle: two identical AIMD (Reno) flows on an equal-RTT
// dumbbell must converge to near-perfect fairness — Chiu & Jain proved it,
// so the emulator has no excuse. The oracle is metrics.JainOverTime over
// smoothed per-flow throughput.
func TestAIMDFairnessOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("60s-sim fairness oracle; run without -short")
	}
	res := runner.MustRun(runner.Scenario{
		Seed: 21, RateBps: 30e6, BaseRTT: 0.030, QueueBDP: 1, Duration: 60,
		Flows: []runner.FlowSpec{
			{Scheme: "reno", Start: 0},
			{Scheme: "reno", Start: 2},
		},
	})
	// Smooth over ~2 RTT-scale sawtooth periods so the index measures rate
	// allocation, not instantaneous phase offsets.
	series := []*metrics.Timeseries{
		metrics.Smooth(res.Flows[0].Tput, 4),
		metrics.Smooth(res.Flows[1].Tput, 4),
	}
	jain := metrics.JainOverTime(series, 1e5)
	if len(jain) == 0 {
		t.Fatal("no overlapping activity between the two flows")
	}
	tail := jain[len(jain)*2/3:]
	if m := metrics.Mean(tail); m < 0.95 {
		t.Errorf("two identical Reno flows: tail-mean Jain %.4f, want >= 0.95", m)
	}
}

// TestStaggeredStopsConserve: flows that stop mid-run with packets in
// flight must still satisfy every invariant — teardown is where accounting
// bugs hide.
func TestStaggeredStopsConserve(t *testing.T) {
	sc := runner.Scenario{
		Seed: 31, RateBps: 15e6, BaseRTT: 0.040, QueueBDP: 1, Duration: 8,
		Flows: []runner.FlowSpec{
			{Scheme: "cubic", Start: 0, Duration: 3},
			{Scheme: "bbr", Start: 1, Duration: 3},
			{Scheme: "vegas", Start: 2},
		},
	}
	c := NewChecker()
	c.Attach(&sc)
	res := runner.MustRun(sc)
	if vs := c.Finish(res); len(vs) > 0 {
		for _, v := range vs {
			t.Error(v)
		}
		t.Fatalf("%d invariant violations with staggered stops", c.Total())
	}
}

// TestSweepCoversAllSchemes: over the sweep's seed range the generator must
// actually draw every registered algorithm — otherwise "drawn from all
// registered algorithms" quietly rots as schemes are added.
func TestSweepCoversAllSchemes(t *testing.T) {
	seen := map[string]bool{}
	var pool []string
	for seed := int64(0); seed < sweepSize; seed++ {
		g := NewGenerator(seed)
		pool = g.Schemes
		for _, f := range g.Scenario().Flows {
			seen[f.Scheme] = true
		}
	}
	for _, s := range pool {
		if !seen[s] {
			t.Errorf("scheme %q never drawn across %d sweep seeds", s, sweepSize)
		}
	}
	if len(pool) < 10 {
		t.Fatalf("scheme pool suspiciously small: %v", pool)
	}
	_ = fmt.Sprint(pool)
}
