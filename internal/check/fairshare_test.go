package check

// Metamorphic fairness property: scaling the sender count at fixed
// aggregate capacity must rescale each flow's share to capacity/n — the
// bottleneck does not care how many ways its rate is split. A scheduler or
// transport bug that favors early flows (or starves late ones) breaks this
// even when every individual run looks plausible.
//
// Cubic's sawtooth never parks individual flows exactly on the fair share
// (measured spread at 16 flows: 0.69×–1.44× fair), so the per-flow gate is
// a no-starvation/no-domination band of ±2·fairShareTolerance while the
// population-level gates are tight: mean share within 10% of capacity/n
// (measured: exact) and Jain ≥ 0.93 (measured: ≥ 0.966).

import (
	"fmt"
	"testing"

	"repro/internal/metrics"
	"repro/internal/runner"
)

func TestMetamorphicFairShare(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run convergence test; run without -short")
	}
	const (
		rate     = 80e6
		duration = 10.0
		// Shares are measured after convergence, over the tail of the run.
		from = 4.0
	)
	for _, n := range []int{4, 8, 16} {
		t.Run(fmt.Sprintf("flows=%d", n), func(t *testing.T) {
			sc := runner.Scenario{
				Seed: 11, RateBps: rate, BaseRTT: 0.010, QueueBDP: 2,
				Duration: duration,
			}
			for i := 0; i < n; i++ {
				sc.Flows = append(sc.Flows, runner.FlowSpec{Scheme: "cubic"})
			}
			res := runner.MustRun(sc)

			fair := rate / float64(n)
			band := 2 * fairShareTolerance
			shares := make([]float64, n)
			var sum float64
			for i, fr := range res.Flows {
				shares[i] = fr.AvgTputWindow(from, duration)
				sum += shares[i]
				if dev := shares[i]/fair - 1; dev < -band || dev > band {
					t.Errorf("flow %d share %.2f Mbps deviates %+.0f%% from fair share %.2f Mbps",
						i, shares[i]/1e6, dev*100, fair/1e6)
				}
			}
			if mean := sum / float64(n); mean < fair*0.9 || mean > fair*1.1 {
				t.Errorf("mean share %.2f Mbps not within 10%% of fair share %.2f Mbps — "+
					"aggregate did not rescale with sender count", mean/1e6, fair/1e6)
			}
			if j := metrics.Jain(shares); j < 0.93 {
				t.Errorf("Jain index %.3f over converged window < 0.93", j)
			}
		})
	}
}
