package check

// Closed-loop equivalence sweep for the quantized inference path: the
// fixed-point compilation of a trained actor must be a drop-in replacement
// for the float network *inside the control loop*, not just on i.i.d.
// states. Over the same seeded random scenarios as the invariant sweep,
// each seed runs twice with all-Astraea flows — once on the float actor
// with a quantized shadow evaluating every decision state (per-decision
// divergence on the real closed-loop state distribution), once fully
// quantized under the invariant Checker — and the two runs' utilization
// and Jain fairness must agree within tolerance.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
)

// quantFixture distills one small actor (imitating the reference policy, so
// its closed-loop behaviour is sane) and compiles it, once per test binary.
var quantFixture struct {
	once sync.Once
	fp   *core.MLPPolicy
	qp   *core.QuantizedPolicy
	err  error
}

// quantPolicies returns the shared float actor and its quantized
// compilation. Callers must ClonePolicy before using either in a scenario:
// the sweep runs scenarios in parallel and policies keep private scratch.
func quantPolicies(t *testing.T) (*core.MLPPolicy, *core.QuantizedPolicy) {
	t.Helper()
	quantFixture.once.Do(func() {
		cfg := core.DefaultConfig()
		net, _ := core.DistillPolicy(cfg, core.DistillOptions{
			Samples: 6000, Epochs: 10, Batch: 64, LR: 0.003,
			Hidden: []int{64, 64}, Seed: 1,
		})
		fp := &core.MLPPolicy{Net: net}
		qp, err := core.QuantizeMLPPolicy(fp, cfg)
		quantFixture.fp, quantFixture.qp, quantFixture.err = fp, qp, err
	})
	if quantFixture.err != nil {
		t.Fatal(quantFixture.err)
	}
	return quantFixture.fp, quantFixture.qp
}

// quantSeedResult aggregates one seed's paired runs.
type quantSeedResult struct {
	worstDelta   float64 // max |float action − quantized action| on the float trajectory
	utilF, utilQ float64
	jainF, jainQ float64
	violations   []string
}

// jain computes Jain's fairness index over the flows' average throughputs.
func jain(res *runner.Result) float64 {
	var sum, sumSq float64
	for _, fr := range res.Flows {
		sum += fr.AvgTputBps
		sumSq += fr.AvgTputBps * fr.AvgTputBps
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(res.Flows)) * sumSq)
}

// astraeaScenario regenerates the seeded random scenario with every flow
// slot driven by an Astraea agent running mk()'s policy. Regenerating (vs
// copying) gives each run a fresh queue-discipline instance.
func astraeaScenario(seed int64, mk func(flow int) *core.Agent) runner.Scenario {
	sc := NewGenerator(seed).Scenario()
	if sc.Duration > 3 {
		sc.Duration = 3
	}
	for i := range sc.Flows {
		sc.Flows[i].Scheme = ""
		sc.Flows[i].CC = mk(i)
	}
	return sc
}

// runQuantSeed runs one seed's paired float/quantized scenarios.
func runQuantSeed(seed int64, fp *core.MLPPolicy, qp *core.QuantizedPolicy) (quantSeedResult, error) {
	cfg := core.DefaultConfig()
	var out quantSeedResult

	// Float-driven run with a quantized shadow: the trajectory is exactly
	// the float policy's, and every decision state it visits is also pushed
	// through a quantized clone, so divergence is measured on the state
	// distribution the deployed controller actually sees.
	scF := astraeaScenario(seed, func(int) *core.Agent {
		a := core.NewAgent(cfg, core.ClonePolicy(fp))
		shadow := core.ClonePolicy(qp)
		a.ActionOverride = func(state []float64, act float64) float64 {
			if d := math.Abs(shadow.Action(state) - act); d > out.worstDelta {
				out.worstDelta = d
			}
			return act
		}
		return a
	})
	resF, err := runner.Run(scF)
	if err != nil {
		return out, fmt.Errorf("seed %d float run: %w", seed, err)
	}

	// Fully quantized run under the invariant checker.
	scQ := astraeaScenario(seed, func(int) *core.Agent {
		return core.NewAgent(cfg, core.ClonePolicy(qp))
	})
	c := NewChecker()
	c.Attach(&scQ)
	resQ, err := runner.Run(scQ)
	if err != nil {
		return out, fmt.Errorf("seed %d quantized run: %w", seed, err)
	}
	if c.Events() == 0 {
		return out, fmt.Errorf("seed %d: checker inspected zero events — harness unhooked", seed)
	}
	for _, v := range c.Finish(resQ) {
		out.violations = append(out.violations, fmt.Sprintf("seed %d (quantized): %s", seed, v))
	}

	out.utilF, out.utilQ = resF.Utilization, resQ.Utilization
	out.jainF, out.jainQ = jain(resF), jain(resQ)
	return out, nil
}

// TestQuantizedClosedLoopEquivalence is the acceptance sweep for serving
// quantized by default: across the seeded scenario sweep, (1) per-decision
// divergence on float-driven trajectories stays bounded, (2) the quantized
// controller violates no simulator invariant, and (3) utilization and Jain
// fairness of the paired runs agree within gates — the control behaviour,
// not just the arithmetic, is preserved.
//
// Gate provenance (measured over the full 220-seed sweep): per-decision
// divergence max 0.111 (mean 0.059); |Δutilization| max 0.088, mean 0.003;
// |ΔJain| max 0.210, mean 0.005. A control experiment replacing the
// quantized run with the float policy plus a uniform +0.01 action
// perturbation moved utilization up to 0.109 and Jain up to 0.343 (means
// 0.004/0.012) on the same seeds — short multi-flow scenarios are
// chaotically sensitive to any action change, and quantization sits BELOW
// that noise floor on every aggregate. Per-seed gates carry ~1.5× margin
// over the measured max; the mean gates are the tight ones, catching
// systematic drift that per-seed chaos allowances cannot.
func TestQuantizedClosedLoopEquivalence(t *testing.T) {
	n := sweepSize
	if testing.Short() {
		n = 16
	}
	fp, qp := quantPolicies(t)

	var mu sync.Mutex
	var all []string
	var worstDelta, worstUtil, worstJain, sumUtil, sumJain float64
	err := runner.ForEach(n, 0, func(i int) error {
		r, err := runQuantSeed(int64(i), fp, qp)
		if err != nil {
			return err
		}
		dUtil := math.Abs(r.utilF - r.utilQ)
		dJain := math.Abs(r.jainF - r.jainQ)
		mu.Lock()
		defer mu.Unlock()
		all = append(all, r.violations...)
		if r.worstDelta > worstDelta {
			worstDelta = r.worstDelta
		}
		if dUtil > worstUtil {
			worstUtil = dUtil
		}
		if dJain > worstJain {
			worstJain = dJain
		}
		sumUtil += dUtil
		sumJain += dJain
		if r.worstDelta > 0.15 {
			all = append(all, fmt.Sprintf("seed %d: per-decision divergence %.5f > 0.15", i, r.worstDelta))
		}
		if dUtil > 0.15 {
			all = append(all, fmt.Sprintf("seed %d: utilization moved %.4f (float %.4f, quantized %.4f)",
				i, dUtil, r.utilF, r.utilQ))
		}
		if dJain > 0.35 {
			all = append(all, fmt.Sprintf("seed %d: Jain fairness moved %.4f (float %.4f, quantized %.4f)",
				i, dJain, r.jainF, r.jainQ))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	meanUtil, meanJain := sumUtil/float64(n), sumJain/float64(n)
	t.Logf("%d seeds: worst per-decision |Δaction| %.5f, |Δutilization| max %.4f mean %.4f, |ΔJain| max %.4f mean %.4f",
		n, worstDelta, worstUtil, meanUtil, worstJain, meanJain)
	if meanUtil > 0.01 {
		all = append(all, fmt.Sprintf("mean |Δutilization| %.4f > 0.01 — systematic throughput drift", meanUtil))
	}
	if meanJain > 0.02 {
		all = append(all, fmt.Sprintf("mean |ΔJain| %.4f > 0.02 — systematic fairness drift", meanJain))
	}
	if len(all) > 0 {
		for i, v := range all {
			if i >= 40 {
				t.Errorf("... and %d more", len(all)-40)
				break
			}
			t.Error(v)
		}
		t.Fatalf("%d equivalence failures across %d seeds", len(all), n)
	}
}
