// Binary checkpoint codec for networks and optimizers. Unlike the JSON
// weight files (which exist for deployment and interchange, and carry only
// W/B), this codec captures everything training needs to continue exactly:
// Adam first/second moments per parameter, the gradient accumulators, and
// the optimizer step counter. Float64s round-trip bitwise.

package nn

import (
	"fmt"

	"repro/internal/ckpt"
)

// Encode appends the network's complete training state to e.
func (m *MLP) Encode(e *ckpt.Encoder) {
	e.Int(len(m.Layers))
	for _, l := range m.Layers {
		e.Int(l.In)
		e.Int(l.Out)
		e.Int(int(l.Act))
		e.Float64s(l.W)
		e.Float64s(l.B)
		e.Float64s(l.mW)
		e.Float64s(l.vW)
		e.Float64s(l.mB)
		e.Float64s(l.vB)
		e.Float64s(l.gW)
		e.Float64s(l.gB)
	}
}

// DecodeMLP reads a network written by Encode, validating layer shapes so a
// corrupt payload fails here rather than at the first Forward.
func DecodeMLP(d *ckpt.Decoder) (*MLP, error) {
	nLayers := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if nLayers < 1 {
		return nil, fmt.Errorf("nn: decoded model has %d layers", nLayers)
	}
	m := &MLP{}
	prevOut := -1
	for li := 0; li < nLayers; li++ {
		l := &Dense{
			In:  d.Int(),
			Out: d.Int(),
			Act: Activation(d.Int()),
		}
		l.W = d.Float64s()
		l.B = d.Float64s()
		l.mW = d.Float64s()
		l.vW = d.Float64s()
		l.mB = d.Float64s()
		l.vB = d.Float64s()
		l.gW = d.Float64s()
		l.gB = d.Float64s()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if l.In < 1 || l.Out < 1 {
			return nil, fmt.Errorf("nn: layer %d has shape %dx%d", li, l.In, l.Out)
		}
		if l.Act != Linear && l.Act != ReLU && l.Act != Tanh {
			return nil, fmt.Errorf("nn: layer %d has unknown activation %d", li, int(l.Act))
		}
		if prevOut >= 0 && l.In != prevOut {
			return nil, fmt.Errorf("nn: layer %d input %d does not match previous output %d", li, l.In, prevOut)
		}
		prevOut = l.Out
		nW, nB := l.In*l.Out, l.Out
		for _, s := range [][]float64{l.W, l.mW, l.vW, l.gW} {
			if len(s) != nW {
				return nil, fmt.Errorf("nn: layer %d weight-shaped slice has %d values, want %d", li, len(s), nW)
			}
		}
		for _, s := range [][]float64{l.B, l.mB, l.vB, l.gB} {
			if len(s) != nB {
				return nil, fmt.Errorf("nn: layer %d bias-shaped slice has %d values, want %d", li, len(s), nB)
			}
		}
		m.Layers = append(m.Layers, l)
	}
	m.allocScratch()
	return m, nil
}

// Encode appends the optimizer's state — hyperparameters and the bias-
// correction step counter, whose loss would silently change every update
// after a resume.
func (a *Adam) Encode(e *ckpt.Encoder) {
	e.Float64(a.LR)
	e.Float64(a.Beta1)
	e.Float64(a.Beta2)
	e.Float64(a.Eps)
	e.Float64(a.MaxNorm)
	e.Int(a.t)
}

// DecodeAdam reads an optimizer written by Encode.
func DecodeAdam(d *ckpt.Decoder) (*Adam, error) {
	a := &Adam{
		LR:      d.Float64(),
		Beta1:   d.Float64(),
		Beta2:   d.Float64(),
		Eps:     d.Float64(),
		MaxNorm: d.Float64(),
		t:       d.Int(),
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if a.t < 0 {
		return nil, fmt.Errorf("nn: adam step counter %d is negative", a.t)
	}
	return a, nil
}
