package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ckpt"
)

// quantTestShapes covers the policy/critic shapes the repo actually uses
// plus degenerate ones (single layer, width 1, non-multiple-of-4 widths
// that exercise the unrolled loop's tail).
var quantTestShapes = [][]int{
	{40, 256, 128, 64, 1},
	{40, 64, 64, 1},
	{8, 16, 1},
	{3, 7, 5, 2},
	{1, 1},
	{5, 1},
}

func calSamples(rng *rand.Rand, n, dim int, amp float64) [][]float64 {
	out := make([][]float64, n)
	for k := range out {
		row := make([]float64, dim)
		for i := range row {
			row[i] = (2*rng.Float64() - 1) * amp
		}
		out[k] = row
	}
	return out
}

// TestQuantizeEquivalenceRandomNets is the round-trip property test: random
// float nets, quantized against a calibration sweep, must agree with the
// float oracle on fresh inputs drawn from the same distribution. The bound
// is loose enough for fixed-point rounding across four layers and tight
// enough that a scale or requantization bug (which produces O(1) errors)
// cannot pass.
func TestQuantizeEquivalenceRandomNets(t *testing.T) {
	for _, outAct := range []Activation{Tanh, Linear} {
		for si, shape := range quantTestShapes {
			rng := rand.New(rand.NewSource(int64(100*si + int(outAct))))
			m := NewMLP(rng, ReLU, outAct, shape...)
			cal := calSamples(rng, 256, shape[0], 4)
			q, err := Quantize(m, QuantizeOptions{Calibration: cal})
			if err != nil {
				t.Fatalf("shape %v: %v", shape, err)
			}

			// Tolerance scales with the float output magnitude seen in
			// calibration: the quantizer spends its int16 range on that
			// span, so absolute error is proportional to it.
			var span float64
			for _, s := range cal {
				for _, v := range m.Forward(s) {
					span = math.Max(span, math.Abs(v))
				}
			}
			tol := 0.02 * math.Max(span, 1)

			var worst float64
			for trial := 0; trial < 200; trial++ {
				x := calSamples(rng, 1, shape[0], 4)[0]
				want := m.Forward(x)
				got := q.Forward(x)
				if len(got) != len(want) {
					t.Fatalf("shape %v: output dim %d, want %d", shape, len(got), len(want))
				}
				for o := range want {
					d := math.Abs(got[o] - want[o])
					worst = math.Max(worst, d)
					if d > tol {
						t.Fatalf("shape %v out=%v trial %d: quantized %.6f vs float %.6f (|Δ|=%.6f > tol %.6f)",
							shape, outAct, trial, got[o], want[o], d, tol)
					}
				}
			}
			t.Logf("shape %v out=%v: worst |Δ|=%.3g (tol %.3g)", shape, outAct, worst, tol)
		}
	}
}

// TestQuantizedSaturatingExtremes drives inputs far outside the calibrated
// range — including infinities and NaN — and checks the fixed-point path
// saturates instead of wrapping: every output stays finite and within the
// representable span of its Q-format, and NaN quantizes to zero.
func TestQuantizedSaturatingExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP(rng, ReLU, Tanh, 12, 32, 16, 1)
	q, err := Quantize(m, QuantizeOptions{Calibration: calSamples(rng, 128, 12, 2)})
	if err != nil {
		t.Fatal(err)
	}
	hostile := [][]float64{
		make([]float64, 12),
		{1e12, -1e12, 1e12, -1e12, 1e12, -1e12, 1e12, -1e12, 1e12, -1e12, 1e12, -1e12},
		{math.Inf(1), math.Inf(-1), math.MaxFloat64, -math.MaxFloat64, 0, 0, 1e300, -1e300, math.Inf(1), math.Inf(-1), 0, 0},
		{math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()},
	}
	for i, x := range hostile {
		out := q.Forward(x)
		for o, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("hostile input %d output %d: %v", i, o, v)
			}
			if math.Abs(v) > 1.0001 { // tanh output layer: |out| ≤ 1 by table construction
				t.Fatalf("hostile input %d output %d: %v exceeds tanh range", i, o, v)
			}
		}
	}
	// NaN must quantize exactly like zero, not like a saturated extreme.
	zeros := q.Forward(hostile[0])[0]
	nans := q.Forward(hostile[3])[0]
	if zeros != nans {
		t.Fatalf("NaN input maps to %v, zero input to %v; want identical", nans, zeros)
	}
}

// TestQuantizedForwardZeroAllocs pins the hot path at zero allocations —
// the property that lets sharded evaluators run it per request without GC
// pressure.
func TestQuantizedForwardZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, ReLU, Tanh, 40, 256, 128, 64, 1)
	q, err := Quantize(m, QuantizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x := calSamples(rng, 1, 40, 4)[0]
	if n := testing.AllocsPerRun(100, func() { q.Forward(x) }); n != 0 {
		t.Fatalf("quantized Forward allocates %.1f times per op, want 0", n)
	}
}

// TestQuantizedCloneIndependence checks that clones share the compiled
// arrays (same results) but evaluate with private scratch — exercised
// concurrently so the race detector can prove the sharing is read-only.
func TestQuantizedCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMLP(rng, ReLU, Tanh, 16, 32, 1)
	q, err := Quantize(m, QuantizeOptions{Calibration: calSamples(rng, 64, 16, 2)})
	if err != nil {
		t.Fatal(err)
	}
	inputs := calSamples(rng, 64, 16, 2)
	want := make([]float64, len(inputs))
	for i, x := range inputs {
		want[i] = q.Forward(x)[0]
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		c := q.Clone()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, x := range inputs {
				if got := c.Forward(x)[0]; got != want[i] {
					t.Errorf("clone diverges on input %d: %v vs %v", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestQuantizedCodecRoundTrip: the integer pipeline must survive the blob
// codec bitwise — encode, seal, open, decode, and every output is exactly
// equal, not merely close.
func TestQuantizedCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, ReLU, Tanh, 40, 64, 32, 1)
	q, err := Quantize(m, QuantizeOptions{Calibration: calSamples(rng, 128, 40, 4)})
	if err != nil {
		t.Fatal(err)
	}
	blob := q.QuantizedBlob()
	q2, err := OpenQuantizedBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	if q2.InDim() != q.InDim() || q2.OutDim() != q.OutDim() || q2.NumLayers() != q.NumLayers() {
		t.Fatalf("round trip changed shape: %dx%d/%d vs %dx%d/%d",
			q2.InDim(), q2.OutDim(), q2.NumLayers(), q.InDim(), q.OutDim(), q.NumLayers())
	}
	if q2.ParamBytes() != q.ParamBytes() {
		t.Fatalf("round trip changed parameter footprint: %d vs %d", q2.ParamBytes(), q.ParamBytes())
	}
	for trial := 0; trial < 100; trial++ {
		x := calSamples(rng, 1, 40, 6)[0]
		if a, b := q.Forward(x)[0], q2.Forward(x)[0]; a != b {
			t.Fatalf("trial %d: decoded net diverges bitwise: %v vs %v", trial, b, a)
		}
	}
	// Corruption anywhere in the blob must be rejected by the container CRC.
	for _, off := range []int{0, 8, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[off] ^= 0x40
		if _, err := OpenQuantizedBlob(bad); err == nil {
			t.Fatalf("flipped byte %d accepted", off)
		}
	}
	if _, err := OpenQuantizedBlob(blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

// hostilePayload builds a syntactically valid quantized payload with the
// given field overrides, for decoder-rejection tests.
func hostileQuantPayload(mutate func(layers *[]int64, scales *[]float64, w *[]int16, b *[]int32)) []byte {
	// One 2x2 linear layer, benign constants.
	layers := []int64{2, 2, int64(Linear), 1 << 20, 20, 10}
	scales := []float64{16384, 16384}
	w := []int16{100, -100, 50, 25}
	b := []int32{1000, -1000}
	mutate(&layers, &scales, &w, &b)
	var e ckpt.Encoder
	e.Int64(quantFormatTag)
	e.Int(1)
	for _, v := range layers {
		e.Int64(v)
	}
	e.Float64s(scales)
	e.Int16s(w)
	e.Int32s(b)
	return e.Payload()
}

// TestDecodeQuantizedRejectsHostile enumerates the decoder's validation
// branches: each malformed payload must fail decode rather than reach
// Forward.
func TestDecodeQuantizedRejectsHostile(t *testing.T) {
	cases := map[string]func(l *[]int64, s *[]float64, w *[]int16, b *[]int32){
		"zero input dim":     func(l *[]int64, s *[]float64, w *[]int16, b *[]int32) { (*l)[0] = 0 },
		"huge dim":           func(l *[]int64, s *[]float64, w *[]int16, b *[]int32) { (*l)[0] = 1 << 20 },
		"unknown activation": func(l *[]int64, s *[]float64, w *[]int16, b *[]int32) { (*l)[2] = 9 },
		"negative mult":      func(l *[]int64, s *[]float64, w *[]int16, b *[]int32) { (*l)[3] = -1 },
		"oversized mult":     func(l *[]int64, s *[]float64, w *[]int16, b *[]int32) { (*l)[3] = 1 << 31 },
		"zero shift":         func(l *[]int64, s *[]float64, w *[]int16, b *[]int32) { (*l)[4] = 0 },
		"huge shift":         func(l *[]int64, s *[]float64, w *[]int16, b *[]int32) { (*l)[4] = 63 },
		"outBits range":      func(l *[]int64, s *[]float64, w *[]int16, b *[]int32) { (*l)[5] = 31 },
		"scale count":        func(l *[]int64, s *[]float64, w *[]int16, b *[]int32) { *s = (*s)[:1] },
		"NaN scale":          func(l *[]int64, s *[]float64, w *[]int16, b *[]int32) { (*s)[0] = math.NaN() },
		"negative scale":     func(l *[]int64, s *[]float64, w *[]int16, b *[]int32) { (*s)[0] = -1 },
		"weight count":       func(l *[]int64, s *[]float64, w *[]int16, b *[]int32) { *w = (*w)[:3] },
		"bias count":         func(l *[]int64, s *[]float64, w *[]int16, b *[]int32) { *b = append(*b, 0) },
		"accumulator bomb": func(l *[]int64, s *[]float64, w *[]int16, b *[]int32) {
			// Row L1 mass 2·32767 · 32768 > 2^31: the no-wrap inequality
			// must reject it even though every field is individually valid.
			(*w)[0], (*w)[1] = 32767, 32767
			(*b)[0] = math.MaxInt32
		},
	}
	for name, mutate := range cases {
		if _, err := DecodeQuantized(ckpt.NewDecoder(hostileQuantPayload(mutate))); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// The unmutated payload is valid — otherwise the cases above prove
	// nothing.
	if _, err := DecodeQuantized(ckpt.NewDecoder(hostileQuantPayload(func(*[]int64, *[]float64, *[]int16, *[]int32) {}))); err != nil {
		t.Fatalf("baseline payload rejected: %v", err)
	}
}

// TestQuantizedTanhLayerAgreesWithFloat pins the LUT path specifically: a
// pure tanh net over its full input range, where interpolation error is the
// only error source.
func TestQuantizedTanhLayerAgreesWithFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMLP(rng, Tanh, Tanh, 4, 8, 8, 1)
	q, err := Quantize(m, QuantizeOptions{Calibration: calSamples(rng, 128, 4, 3)})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		x := calSamples(rng, 1, 4, 3)[0]
		want := m.Forward(x)[0]
		got := q.Forward(x)[0]
		if d := math.Abs(got - want); d > 0.01 {
			t.Fatalf("trial %d: |Δ|=%.5f", trial, d)
		}
	}
}

// TestQuantizedSpeedup enforces the headline property — the fixed-point
// pass beats the float oracle by ≥4x on the paper's actor shape (the
// recorded run shows ~12x; see DESIGN.md §12). Skips under the race
// detector, where instrumentation swamps the contrast.
func TestQuantizedSpeedup(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("timing contrast is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, ReLU, Tanh, 40, 256, 128, 64, 1)
	q, err := Quantize(m, QuantizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x := calSamples(rng, 1, 40, 4)[0]
	fl := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Forward(x)
		}
	})
	qz := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.Forward(x)
		}
	})
	ratio := float64(fl.NsPerOp()) / float64(qz.NsPerOp())
	t.Logf("float %v/op, quantized %v/op: %.1fx", fl.NsPerOp(), qz.NsPerOp(), ratio)
	if ratio < 4 {
		t.Fatalf("quantized speedup %.2fx below the 4x floor (float %d ns/op, quantized %d ns/op)",
			ratio, fl.NsPerOp(), qz.NsPerOp())
	}
}

// TestMatvecKernelMatchesGeneric differentially tests the dispatched
// mat-vec kernel (SSE2 on amd64) against the portable reference on random
// tiles, including full-range values: all paths are exact arithmetic mod
// 2^32, so any partitioning of the sum must agree bitwise.
func TestMatvecKernelMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		rows4 := 1 + rng.Intn(8)
		cols16 := 16 * (1 + rng.Intn(8))
		w := make([]int16, 4*rows4*cols16)
		x := make([]int16, cols16)
		for i := range w {
			w[i] = int16(rng.Intn(1 << 16))
		}
		for i := range x {
			x[i] = int16(rng.Intn(1 << 16))
		}
		got := make([]int32, 4*rows4)
		want := make([]int32, 4*rows4)
		matvecQ15(w, x, got, rows4, cols16)
		matvecQ15Generic(w, x, want, rows4, cols16)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (rows4=%d cols16=%d) row %d: kernel %d, reference %d",
					trial, rows4, cols16, i, got[i], want[i])
			}
		}
	}
}

// TestMatvecKernelStaysInBounds surrounds the destination with canaries and
// verifies the kernel writes exactly its 4·rows4 int32s — nothing before,
// nothing after. Regression for an out-of-bounds store: Go's x86 assembler
// has no 32-bit XMM→memory move (MOVD assembles to an 8-byte MOVQ), so a
// per-row scalar store at offset 12 of each group silently wrote 4 bytes
// past the final accumulator and corrupted the adjacent heap object.
func TestMatvecKernelStaysInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const canary = int32(-0x21524111)
	for trial := 0; trial < 50; trial++ {
		rows4 := 1 + rng.Intn(8)
		cols16 := 16 * (1 + rng.Intn(8))
		w := make([]int16, 4*rows4*cols16)
		x := make([]int16, cols16)
		for i := range w {
			w[i] = int16(rng.Intn(1 << 16))
		}
		for i := range x {
			x[i] = int16(rng.Intn(1 << 16))
		}
		const pad = 8
		buf := make([]int32, pad+4*rows4+pad)
		for i := range buf {
			buf[i] = canary
		}
		matvecQ15(w, x, buf[pad:pad+4*rows4], rows4, cols16)
		for i := 0; i < pad; i++ {
			if buf[i] != canary {
				t.Fatalf("trial %d: kernel wrote before acc (offset %d)", trial, i-pad)
			}
			if buf[pad+4*rows4+i] != canary {
				t.Fatalf("trial %d: kernel wrote past acc (offset +%d)", trial, i)
			}
		}
	}
}

// FuzzQuantizedDecode is the fifth hardened-decoder fuzz target: any bytes
// either fail to decode or yield a network whose Forward runs without
// panicking on zero, extreme, and NaN inputs.
func FuzzQuantizedDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, ReLU, Tanh, 4, 8, 1)
	q, err := Quantize(m, QuantizeOptions{})
	if err != nil {
		f.Fatal(err)
	}
	var e ckpt.Encoder
	q.EncodeQuantized(&e)
	f.Add(append([]byte(nil), e.Payload()...))
	f.Add(q.QuantizedBlob())
	f.Add(hostileQuantPayload(func(*[]int64, *[]float64, *[]int16, *[]int32) {}))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, q := range decodeBoth(data) {
			x := make([]float64, q.InDim())
			q.Forward(x)
			for i := range x {
				if i%3 == 0 {
					x[i] = math.Inf(1)
				} else if i%3 == 1 {
					x[i] = math.NaN()
				} else {
					x[i] = -1e30
				}
			}
			out := q.Forward(x)
			for _, v := range out {
				if math.IsInf(v, 0) {
					t.Fatalf("decoded net emits %v", v)
				}
			}
		}
	})
}

// decodeBoth tries data as a bare payload and as a sealed blob, returning
// whichever forms decode.
func decodeBoth(data []byte) []*QuantizedMLP {
	var out []*QuantizedMLP
	if q, err := DecodeQuantized(ckpt.NewDecoder(data)); err == nil {
		out = append(out, q)
	}
	if q, err := OpenQuantizedBlob(data); err == nil {
		out = append(out, q)
	}
	return out
}
