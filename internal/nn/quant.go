// Fixed-point compilation of trained policies.
//
// Quantize compiles a float64 MLP into a QuantizedMLP: int16 weights, int32
// accumulators, and power-of-two activation scales chosen from a calibration
// sweep, with all per-layer rescaling folded into one integer multiply-shift.
// The compiled forward pass is branch-light, allocation-free, and fully
// deterministic (pure integer arithmetic plus a fixed tanh table), mirroring
// the in-kernel deployment of the original system (tcp_astraea.c runs the
// same policy shape in u32/u64 shift arithmetic).
//
// # Representation
//
// Inputs are quantized per feature: feature i is scaled by inScale[i] =
// 2^inputQBits / a_i, where a_i is the calibrated absolute maximum of that
// feature, and the compensating a_i factor is folded into the first layer's
// float weights before they are quantized. Every feature therefore spends
// the full int16 range on its own calibrated span, with 2x headroom before
// saturation.
//
// Hidden and output activations live in int16 with a per-layer Q-format
// chosen from calibrated ranges (2x margin, saturating beyond). A layer
// computes
//
//	acc  = Σ_i wq[o,i]·xq[i] + bq[o]            (int32, provably no wrap)
//	t    = (acc·mult + rnd) >> shift            (int64 requantization)
//	out  = act(sat16(t))                        (int16 lane)
//
// where mult/shift encode Sout/(sw·Sin) to 30 significant bits. ReLU is the
// branch-free mask v &^ (v>>31); Tanh is a 1025-entry Q12→Q14 interpolated
// lookup table covering [-8, 8] (beyond which tanh is 1 to within the
// output resolution).
//
// The multiply-accumulate work runs through a tiled kernel over weights
// padded to 16-column × 4-row tiles: SSE2 PMADDWD on amd64 (eight
// int16×int16→int32 pairwise products per instruction, baseline on every
// amd64 so no feature detection), a blocked-scalar loop elsewhere — the
// int16 layout is what makes that instruction applicable at all, and is
// where the ≥4× speedup over the float64 path comes from.
//
// # Why the int32 accumulator cannot wrap
//
// The per-layer weight scale sw is capped so that the worst-case row sum —
// every input pinned at the int16 extreme 32768 — plus the quantized bias
// and rounding slack stays within int31:
//
//	32768·(sw·maxRowL1 + in/2) + sw·Sin·maxB + 1 ≤ 2^31 − 1
//
// (the in/2 term bounds per-weight rounding, the +1 the bias rounding).
// DecodeQuantized re-checks the realized inequality Σ_i|wq[o,i]|·32768 +
// |bq[o]| ≤ 2^31−1 for every row, so the guarantee holds for hostile blobs
// too, not only for nets we quantized ourselves.
package nn

import (
	"fmt"
	"math"
)

// inputQBits is the Q-format of quantized inputs in calibrated units: a
// feature at its calibrated maximum maps to 2^inputQBits = 16384, leaving
// 2x headroom in int16 before saturation.
const inputQBits = 14

// tanhQBits is the fixed Q-format of the tanh lookup argument: Q12 spans
// [-8, 8) across the int16 range, and tanh saturates to ±1 within output
// resolution outside it.
const tanhQBits = 12

// tanhOutBits is the Q-format of tanh outputs: Q14 represents ±1.0 exactly
// as ±16384 with interpolation headroom in int16.
const tanhOutBits = 14

const (
	int16Min = -32768
	int16Max = 32767
	// accBound is the inclusive |accumulator| budget: int32 values never
	// exceed it, so the int32 sum cannot wrap.
	accBound = math.MaxInt32 - 1
)

// tanhTab holds tanh sampled at 1024 steps of 1/64 across [-8, 8] in Q14;
// entry 1024 closes the final interpolation interval.
var tanhTab = func() [1025]int16 {
	var t [1025]int16
	for k := range t {
		x := -8.0 + float64(k)/64.0
		t[k] = int16(math.Round(math.Tanh(x) * (1 << tanhOutBits)))
	}
	return t
}()

// quantLayer is one compiled layer: offsets into the flat weight/bias
// arrays plus the precomputed requantization constants.
type quantLayer struct {
	in, out       int
	padIn, padOut int // kernel dims: in padded to 16 cols, out to 4 rows
	act           Activation
	wOff, bOff    int   // offsets into the canonical (codec) arrays
	kOff          int   // offset into the padded kernel weight array
	mult          int64 // requantization multiplier, ∈ [0, 2^30]
	rnd           int64 // rounding bias, 1 << (shift-1)
	shift         uint8 // requantization shift, ∈ [1, 62]
	outBits       int8  // Q-format of this layer's int16 output
}

// QuantizedMLP is the fixed-point compiled form of a trained MLP: flat
// int16 weights, int32 biases, and precomputed per-layer requantization
// constants. Forward runs in pure integer arithmetic with zero allocations.
//
// The compiled arrays are immutable after Quantize/DecodeQuantized, so
// Clone shares them and duplicates only the scratch buffers; a QuantizedMLP
// is not safe for concurrent use, but clones evaluate independently.
type QuantizedMLP struct {
	layers  []quantLayer
	weights []int16 // canonical row-major weights (what the codec carries)
	biases  []int32
	inScale []float64 // per-feature input quantization scale
	outInv  float64   // final dequantization factor, 2^-outBits of last layer
	kernelW []int16   // padded row-major weights fed to the matvec kernel

	// scratch (per instance; everything above is shared across clones)
	bufA, bufB []int16
	acc        []int32
	out        []float64
}

// QuantizeOptions configures Quantize.
type QuantizeOptions struct {
	// Calibration supplies representative inputs used to size the
	// fixed-point ranges: per-feature input spans and per-layer activation
	// Q-formats. Every sample must have the network's input width. When
	// empty, a deterministic synthetic sweep over [-1,1] and [-8,8] is
	// used; callers that know the serving distribution (core does) should
	// pass real samples for tighter formats.
	Calibration [][]float64
}

// Quantize compiles m into its fixed-point form. m is read, not modified.
// The calibration sweep (opts.Calibration or a deterministic default) picks
// per-feature input scales and per-layer activation ranges with 2x
// saturation margin; weight scales are then capped so int32 accumulators
// provably cannot wrap (see the package comment for the inequality).
func Quantize(m *MLP, opts QuantizeOptions) (*QuantizedMLP, error) {
	if m == nil || len(m.Layers) == 0 {
		return nil, fmt.Errorf("nn: cannot quantize an empty model")
	}
	in := m.InDim()
	cal := opts.Calibration
	if len(cal) == 0 {
		cal = defaultCalibration(in)
	}
	for k, s := range cal {
		if len(s) != in {
			return nil, fmt.Errorf("nn: calibration sample %d has %d features, model wants %d", k, len(s), in)
		}
	}

	// Calibrated ranges: per-feature input maxima and per-layer output
	// maxima, from float forward passes.
	aIn := make([]float64, in)
	aOut := make([]float64, len(m.Layers))
	for _, s := range cal {
		for i, v := range s {
			if av := math.Abs(v); av > aIn[i] && !math.IsInf(av, 1) {
				aIn[i] = av
			}
		}
		m.Forward(s)
		for li := range m.Layers {
			for _, v := range m.acts[li+1] {
				if av := math.Abs(v); av > aOut[li] && !math.IsInf(av, 1) {
					aOut[li] = av
				}
			}
		}
	}

	q := &QuantizedMLP{inScale: make([]float64, in)}
	for i, a := range aIn {
		if a < 1e-9 {
			a = 1e-9 // dead feature: any scale works, avoid dividing by zero
		}
		q.inScale[i] = math.Ldexp(1, inputQBits) / a
	}

	// Compile layer by layer. Sin is the uniform scale of the current
	// layer's quantized input (a power of two by construction).
	sin := math.Ldexp(1, inputQBits)
	for li, l := range m.Layers {
		// Effective float weights: layer 0 folds the per-feature input
		// normalization (x_i quantized in units of a_i) into its columns.
		w := l.W
		if li == 0 {
			w = make([]float64, len(l.W))
			for o := 0; o < l.Out; o++ {
				for i := 0; i < l.In; i++ {
					w[o*l.In+i] = l.W[o*l.In+i] * math.Ldexp(1, inputQBits) / q.inScale[i]
				}
			}
		}

		var maxW, maxRowL1, maxB float64
		for o := 0; o < l.Out; o++ {
			var rowL1 float64
			for i := 0; i < l.In; i++ {
				av := math.Abs(w[o*l.In+i])
				rowL1 += av
				if av > maxW {
					maxW = av
				}
			}
			if rowL1 > maxRowL1 {
				maxRowL1 = rowL1
			}
		}
		for _, b := range l.B {
			if av := math.Abs(b); av > maxB {
				maxB = av
			}
		}

		// Weight scale: as large as int16 representation allows, capped so
		// the worst-case accumulator stays within int31 (no-wrap proof in
		// the package comment).
		sw := math.Inf(1)
		if maxW > 0 {
			sw = (int16Max - 1) / maxW
		}
		if den := 32768*maxRowL1 + sin*maxB; den > 0 {
			if lim := (float64(accBound) - 1 - 16384*float64(l.In)) / den; lim < sw {
				sw = lim
			}
		}
		if !(sw > 0) || math.IsInf(sw, 1) {
			sw = 1 // all-zero layer: representation is exact at any scale
		}

		wq := make([]int16, len(w))
		for i, v := range w {
			wq[i] = satRound16(v * sw)
		}
		bq := make([]int32, len(l.B))
		for o, b := range l.B {
			bq[o] = satRound32(b * sw * sin)
		}

		// Output representation and the requantization constants mapping
		// accumulator units (sw·Sin) onto it.
		var outBits int8
		var target float64
		if l.Act == Tanh {
			outBits = tanhOutBits
			target = math.Ldexp(1, tanhQBits) // LUT argument is Q12
		} else {
			outBits = chooseBits(2 * aOut[li])
			target = math.Ldexp(1, int(outBits))
		}
		mult, shift := requantParams(target / (sw * sin))

		q.layers = append(q.layers, quantLayer{
			in: l.In, out: l.Out, act: l.Act,
			wOff: len(q.weights), bOff: len(q.biases),
			mult: mult, rnd: int64(1) << (shift - 1), shift: shift,
			outBits: outBits,
		})
		q.weights = append(q.weights, wq...)
		q.biases = append(q.biases, bq...)
		sin = math.Ldexp(1, int(outBits))
	}

	q.finish()
	if err := q.checkAccBounds(); err != nil {
		return nil, err // unreachable by construction; kept as a hard guard
	}
	return q, nil
}

// finish derives the padded kernel layout, scratch buffers, and the output
// dequantization factor from the compiled canonical form. The matvec kernel
// consumes weights padded to 16-column × 4-row tiles; padding weights are
// zero, so whatever stale int16s sit in the padded tail of an activation
// buffer contribute exactly nothing.
func (q *QuantizedMLP) finish() {
	kernelLen, maxDim, maxAcc := 0, 0, 0
	for i := range q.layers {
		l := &q.layers[i]
		l.padIn = (l.in + 15) &^ 15
		l.padOut = (l.out + 3) &^ 3
		l.kOff = kernelLen
		kernelLen += l.padIn * l.padOut
		if l.padIn > maxDim {
			maxDim = l.padIn
		}
		if l.padOut > maxDim {
			maxDim = l.padOut
		}
		if l.padOut > maxAcc {
			maxAcc = l.padOut
		}
	}
	q.kernelW = make([]int16, kernelLen)
	for _, l := range q.layers {
		for o := 0; o < l.out; o++ {
			copy(q.kernelW[l.kOff+o*l.padIn:], q.weights[l.wOff+o*l.in:l.wOff+(o+1)*l.in])
		}
	}
	q.bufA = make([]int16, maxDim)
	q.bufB = make([]int16, maxDim)
	q.acc = make([]int32, maxAcc)
	q.out = make([]float64, q.layers[len(q.layers)-1].out)
	q.outInv = math.Ldexp(1, -int(q.layers[len(q.layers)-1].outBits))
}

// checkAccBounds verifies the realized no-wrap inequality for every output
// row: Σ|wq|·32768 + |bq| ≤ 2^31−1. Quantize guarantees it by construction;
// DecodeQuantized enforces it on hostile blobs.
func (q *QuantizedMLP) checkAccBounds() error {
	for li, l := range q.layers {
		for o := 0; o < l.out; o++ {
			var sum int64
			row := q.weights[l.wOff+o*l.in : l.wOff+(o+1)*l.in]
			for _, w := range row {
				if w < 0 {
					sum -= int64(w)
				} else {
					sum += int64(w)
				}
			}
			sum *= 32768
			b := int64(q.biases[l.bOff+o])
			if b < 0 {
				b = -b
			}
			if sum+b > math.MaxInt32 {
				return fmt.Errorf("nn: quantized layer %d row %d can overflow its accumulator (weight mass %d)", li, o, sum+b)
			}
		}
	}
	return nil
}

// InDim returns the input width.
func (q *QuantizedMLP) InDim() int { return q.layers[0].in }

// OutDim returns the output width.
func (q *QuantizedMLP) OutDim() int { return q.layers[len(q.layers)-1].out }

// NumLayers returns the layer count.
func (q *QuantizedMLP) NumLayers() int { return len(q.layers) }

// ParamBytes returns the byte footprint of the compiled parameters (int16
// weights + int32 biases), the number that decides cache residency under
// sharded serving.
func (q *QuantizedMLP) ParamBytes() int { return 2*len(q.weights) + 4*len(q.biases) }

// Clone returns an independently evaluable copy sharing the immutable
// compiled arrays; only the scratch buffers are duplicated. Use one clone
// per goroutine.
func (q *QuantizedMLP) Clone() *QuantizedMLP {
	c := *q
	c.bufA = make([]int16, len(q.bufA))
	c.bufB = make([]int16, len(q.bufB))
	c.acc = make([]int32, len(q.acc))
	c.out = make([]float64, len(q.out))
	return &c
}

// Forward evaluates the compiled network. The returned slice is scratch
// owned by the QuantizedMLP (valid until the next call); the pass performs
// no allocations. Inputs beyond 2x their calibrated range saturate; NaN
// quantizes to zero.
func (q *QuantizedMLP) Forward(x []float64) []float64 {
	if len(x) != q.layers[0].in {
		panic(fmt.Sprintf("nn: input dim %d, want %d", len(x), q.layers[0].in))
	}
	cur, nxt := q.bufA, q.bufB
	for i, v := range x {
		cur[i] = satRound16(v * q.inScale[i])
	}
	for li := range q.layers {
		l := &q.layers[li]
		// All multiply-accumulate work happens in the tiled int16×int16→
		// int32 kernel (PMADDWD on amd64, blocked scalar elsewhere); every
		// partial lane is bounded by its subset of the row's L1 budget, so
		// no intermediate can wrap (see checkAccBounds).
		matvecQ15(q.kernelW[l.kOff:], cur, q.acc, l.padOut>>2, l.padIn)
		bs := q.biases[l.bOff : l.bOff+l.out]
		for o := 0; o < l.out; o++ {
			acc := q.acc[o] + bs[o]
			t := (int64(acc)*l.mult + l.rnd) >> l.shift
			if t > int16Max {
				t = int16Max
			} else if t < int16Min {
				t = int16Min
			}
			v := int32(t)
			switch l.act {
			case ReLU:
				v &^= v >> 31
			case Tanh:
				v = tanhQ12(v)
			}
			nxt[o] = int16(v)
		}
		cur, nxt = nxt, cur
	}
	last := &q.layers[len(q.layers)-1]
	for o := 0; o < last.out; o++ {
		q.out[o] = float64(cur[o]) * q.outInv
	}
	return q.out
}

// tanhQ12 evaluates tanh on a Q12 argument (int16 range spans [-8, 8)) by
// linear interpolation over tanhTab, returning Q14.
func tanhQ12(v int32) int32 {
	u := v + 32768 // 0..65535
	idx := u >> 6  // 0..1023
	frac := u & 63
	lo := int32(tanhTab[idx])
	return lo + (int32(tanhTab[idx+1])-lo)*frac>>6
}

// satRound16 rounds to the nearest int16, saturating at the type bounds and
// mapping NaN to zero.
func satRound16(v float64) int16 {
	if !(v > float64(int16Min)) { // also catches NaN
		if v != v {
			return 0
		}
		return int16Min
	}
	if v > float64(int16Max) {
		return int16Max
	}
	return int16(math.Round(v))
}

// satRound32 rounds to the nearest int32, saturating one short of the type
// bounds (the bias budget in the accumulator inequality).
func satRound32(v float64) int32 {
	if !(v > float64(-accBound)) {
		if v != v {
			return 0
		}
		return -accBound
	}
	if v > float64(accBound) {
		return accBound
	}
	return int32(math.Round(v))
}

// chooseBits picks the largest Q-format whose span covers amax, clamped to
// the range the codec accepts.
func chooseBits(amax float64) int8 {
	if !(amax > 0) {
		return 15
	}
	b := int(math.Floor(math.Log2(float64(int16Max) / amax)))
	if b > 15 {
		b = 15
	}
	if b < -16 {
		b = -16
	}
	return int8(b)
}

// requantParams encodes ratio as mult/2^shift with mult ∈ [0, 2^30] and
// shift ∈ [1, 62], the fixed-point form of the accumulator→activation
// rescaling. Degenerate ratios (non-positive, NaN, or ≥ 2^29, which only a
// pathological net can produce) saturate deterministically; the int16 lane
// clamp bounds the damage.
func requantParams(ratio float64) (int64, uint8) {
	if !(ratio > 0) || math.IsInf(ratio, 1) {
		return 0, 1
	}
	frac, exp := math.Frexp(ratio) // ratio = frac·2^exp, frac ∈ [0.5, 1)
	shift := 30 - exp
	if shift < 1 {
		return math.MaxInt32, 1
	}
	mult := int64(math.Round(frac * (1 << 30)))
	for shift > 62 {
		mult >>= 1
		shift--
	}
	if mult == 0 {
		return 0, 1
	}
	return mult, uint8(shift)
}

// matvecQ15Generic is the portable tiled int16 mat-vec kernel: rows4 groups
// of four padded rows against one padded activation vector, int32 results.
// It is the reference the amd64 PMADDWD kernel is differentially tested
// against (both are exact integer arithmetic, so they agree bitwise), and
// the implementation used on other architectures. The four row accumulators
// share each loaded activation, so the scalar loop runs at roughly one load
// per multiply instead of two.
func matvecQ15Generic(w, x []int16, acc []int32, rows4, cols16 int) {
	for g := 0; g < rows4; g++ {
		base := g * 4 * cols16
		r0 := w[base : base+cols16]
		r1 := w[base+cols16 : base+2*cols16]
		r2 := w[base+2*cols16 : base+3*cols16]
		r3 := w[base+3*cols16 : base+4*cols16]
		xx := x[:cols16]
		var a0, a1, a2, a3 int32
		for i := range xx {
			xv := int32(xx[i])
			a0 += int32(r0[i]) * xv
			a1 += int32(r1[i]) * xv
			a2 += int32(r2[i]) * xv
			a3 += int32(r3[i]) * xv
		}
		acc[4*g] = a0
		acc[4*g+1] = a1
		acc[4*g+2] = a2
		acc[4*g+3] = a3
	}
}

// defaultCalibration synthesizes a deterministic input sweep for callers
// that do not know the serving distribution: xorshift-uniform samples at
// unit and 8x amplitude. core passes real sampled states instead.
func defaultCalibration(in int) [][]float64 {
	const n = 288
	s := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s>>11) / (1 << 53)
	}
	cal := make([][]float64, n)
	for k := range cal {
		amp := 1.0
		if k%4 == 3 {
			amp = 8
		}
		row := make([]float64, in)
		for i := range row {
			row[i] = (2*next() - 1) * amp
		}
		cal[k] = row
	}
	return cal
}
