package nn

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numericalGrad estimates dLoss/dW[i] for a scalar loss by central
// differences.
func numericalGrad(m *MLP, x, target []float64, layer, wi int) float64 {
	const h = 1e-6
	loss := func() float64 {
		out := m.Forward(x)
		var l float64
		for i := range out {
			d := out[i] - target[i]
			l += 0.5 * d * d
		}
		return l
	}
	orig := m.Layers[layer].W[wi]
	m.Layers[layer].W[wi] = orig + h
	lp := loss()
	m.Layers[layer].W[wi] = orig - h
	lm := loss()
	m.Layers[layer].W[wi] = orig
	return (lp - lm) / (2 * h)
}

func TestBackpropMatchesNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, ReLU, Tanh, 4, 8, 6, 2)
	x := []float64{0.3, -0.7, 1.2, 0.1}
	target := []float64{0.5, -0.2}

	out := m.Forward(x)
	dOut := make([]float64, len(out))
	for i := range out {
		dOut[i] = out[i] - target[i]
	}
	m.ZeroGrad()
	m.Forward(x)
	m.Backward(dOut)

	for layer := range m.Layers {
		l := m.Layers[layer]
		for _, wi := range []int{0, len(l.W) / 2, len(l.W) - 1} {
			want := numericalGrad(m, x, target, layer, wi)
			got := l.gW[wi]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Errorf("layer %d W[%d]: analytic %g numeric %g", layer, wi, got, want)
			}
		}
	}
}

func TestBackwardInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, Tanh, Linear, 3, 5, 1)
	x := []float64{0.2, -0.4, 0.9}

	out := m.Forward(x)
	m.ZeroGrad()
	dIn := m.Backward([]float64{1})
	_ = out

	const h = 1e-6
	for i := range x {
		xp := append([]float64(nil), x...)
		xp[i] += h
		up := m.Forward(xp)[0]
		xm := append([]float64(nil), x...)
		xm[i] -= h
		um := m.Forward(xm)[0]
		want := (up - um) / (2 * h)
		if math.Abs(dIn[i]-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("dIn[%d]: analytic %g numeric %g", i, dIn[i], want)
		}
	}
}

func TestAdamLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP(rng, Tanh, Linear, 2, 16, 1)
	opt := NewAdam(0.01)
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 2000; epoch++ {
		for i, x := range inputs {
			out := m.Forward(x)
			m.Backward([]float64{out[0] - targets[i]})
		}
		opt.Step(m, float64(len(inputs)))
	}
	for i, x := range inputs {
		got := m.Forward(x)[0]
		if math.Abs(got-targets[i]) > 0.1 {
			t.Errorf("XOR(%v) = %.3f, want %.0f", x, got, targets[i])
		}
	}
}

func TestAdamLearnsRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMLP(rng, ReLU, Linear, 1, 32, 1)
	opt := NewAdam(0.005)
	f := func(x float64) float64 { return math.Sin(3 * x) }
	var lastLoss float64
	for epoch := 0; epoch < 1500; epoch++ {
		var loss float64
		for i := 0; i < 32; i++ {
			x := rng.Float64()*2 - 1
			out := m.Forward([]float64{x})
			d := out[0] - f(x)
			loss += 0.5 * d * d
			m.Backward([]float64{d})
		}
		opt.Step(m, 32)
		lastLoss = loss / 32
	}
	if lastLoss > 0.01 {
		t.Errorf("final loss %g, want < 0.01", lastLoss)
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMLP(rng, ReLU, Tanh, 3, 4, 2)
	c := m.Clone()
	x := []float64{1, 2, 3}
	a := append([]float64(nil), m.Forward(x)...)
	b := append([]float64(nil), c.Forward(x)...)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clone output differs: %v vs %v", a, b)
		}
	}
	m.Layers[0].W[0] += 1
	b2 := c.Forward(x)
	for i := range b {
		if b[i] != b2[i] {
			t.Fatal("mutating original changed clone")
		}
	}
}

func TestSoftUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := NewMLP(rng, ReLU, Linear, 2, 3, 1)
	tgt := m.Clone()
	m.Layers[0].W[0] = 10
	tgt.Layers[0].W[0] = 0
	SoftUpdate(tgt, m, 0.1)
	if math.Abs(tgt.Layers[0].W[0]-1.0) > 1e-12 {
		t.Fatalf("soft update: got %g, want 1.0", tgt.Layers[0].W[0])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := NewMLP(rng, ReLU, Tanh, 5, 7, 3)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var m2 MLP
	if err := json.Unmarshal(data, &m2); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	a := append([]float64(nil), m.Forward(x)...)
	b := m2.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round-trip output differs at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestUnmarshalRejectsBadShapes(t *testing.T) {
	bad := `{"layers":[{"in":2,"out":3,"act":"relu","w":[1,2],"b":[0,0,0]}]}`
	var m MLP
	if err := json.Unmarshal([]byte(bad), &m); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
	badAct := `{"layers":[{"in":1,"out":1,"act":"softmax","w":[1],"b":[0]}]}`
	if err := json.Unmarshal([]byte(badAct), &m); err == nil {
		t.Fatal("expected unknown-activation error")
	}
}

// Regression (found via FuzzCodecRead): hostile shape fields used to slip
// past the weight-count check and then panic or OOM in allocScratch, and a
// mismatched layer chain decoded fine only to panic at the first Forward.
func TestUnmarshalRejectsHostileShapes(t *testing.T) {
	cases := map[string]string{
		"negative in": `{"layers":[{"in":-1,"out":0,"act":"relu","w":[],"b":[]}]}`,
		"zero out":    `{"layers":[{"in":1,"out":0,"act":"relu","w":[],"b":[]}]}`,
		// 2^32 x 2^32 overflows int to 0, "matching" the empty weight slice.
		"overflowing product": `{"layers":[{"in":4294967296,"out":4294967296,"act":"relu","w":[],"b":[]}]}`,
		"broken chain": `{"layers":[{"in":1,"out":2,"act":"relu","w":[1,1],"b":[0,0]},
			{"in":3,"out":1,"act":"linear","w":[1,1,1],"b":[0]}]}`,
	}
	for name, data := range cases {
		var m MLP
		if err := json.Unmarshal([]byte(data), &m); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Property: tanh output layer bounds every output to (-1, 1) for arbitrary
// inputs — the action block depends on this.
func TestTanhOutputBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	m := NewMLP(rng, ReLU, Tanh, 4, 8, 1)
	f := func(a, b, c, d float64) bool {
		// Constrain to the normalized feature range the state block emits;
		// astronomically large raw floats would overflow any finite net.
		squash := func(v float64) float64 { return math.Mod(v, 100) }
		out := m.Forward([]float64{squash(a), squash(b), squash(c), squash(d)})
		// float64 tanh saturates to exactly ±1 for |x| ≳ 19.
		return out[0] >= -1 && out[0] <= 1 && !math.IsNaN(out[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardPanicsOnWrongDim(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := NewMLP(rng, ReLU, Linear, 3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input dim")
		}
	}()
	m.Forward([]float64{1, 2})
}

func TestGradClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := NewMLP(rng, Linear, Linear, 1, 1)
	opt := NewAdam(0.1)
	opt.MaxNorm = 1
	m.Forward([]float64{1e6})
	m.Backward([]float64{1e6})
	before := m.Layers[0].W[0]
	opt.Step(m, 1)
	after := m.Layers[0].W[0]
	// With clipping and Adam, the step magnitude is bounded by ~LR.
	if math.Abs(after-before) > 0.2 {
		t.Fatalf("step %g too large despite clipping", after-before)
	}
}
