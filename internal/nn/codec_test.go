package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ckpt"
)

// randomTrainedMLP builds a random-architecture network and runs a few Adam
// steps so weights, moments, and the step counter are all non-trivial.
func randomTrainedMLP(rnd *rand.Rand) (*MLP, *Adam) {
	depth := 1 + rnd.Intn(3)
	sizes := []int{1 + rnd.Intn(6)}
	for i := 0; i < depth; i++ {
		sizes = append(sizes, 1+rnd.Intn(8))
	}
	acts := []Activation{Linear, ReLU, Tanh}
	m := NewMLP(rnd, acts[rnd.Intn(3)], acts[rnd.Intn(3)], sizes...)
	opt := NewAdam(0.001 + rnd.Float64()*0.01)
	in := make([]float64, sizes[0])
	dOut := make([]float64, sizes[len(sizes)-1])
	for step := 0; step < rnd.Intn(5); step++ {
		for i := range in {
			in[i] = rnd.NormFloat64()
		}
		for i := range dOut {
			dOut[i] = rnd.NormFloat64()
		}
		m.Forward(in)
		m.Backward(dOut)
		opt.Step(m, 1)
	}
	return m, opt
}

// mlpEqual compares every persistent field bitwise (scratch buffers
// excluded: a decoded network starts with clean scratch).
func mlpEqual(t *testing.T, a, b *MLP) {
	t.Helper()
	if len(a.Layers) != len(b.Layers) {
		t.Fatalf("layer count %d != %d", len(a.Layers), len(b.Layers))
	}
	for li, la := range a.Layers {
		lb := b.Layers[li]
		if la.In != lb.In || la.Out != lb.Out || la.Act != lb.Act {
			t.Fatalf("layer %d shape/act mismatch", li)
		}
		pairs := [][2][]float64{
			{la.W, lb.W}, {la.B, lb.B},
			{la.mW, lb.mW}, {la.vW, lb.vW},
			{la.mB, lb.mB}, {la.vB, lb.vB},
			{la.gW, lb.gW}, {la.gB, lb.gB},
		}
		for pi, p := range pairs {
			if len(p[0]) != len(p[1]) {
				t.Fatalf("layer %d slice %d length mismatch", li, pi)
			}
			for i := range p[0] {
				if math.Float64bits(p[0][i]) != math.Float64bits(p[1][i]) {
					t.Fatalf("layer %d slice %d index %d: %v != %v", li, pi, i, p[0][i], p[1][i])
				}
			}
		}
	}
}

// Property test: random networks round-trip through the binary codec with
// every persistent float bitwise intact — including the Adam moments the
// JSON path drops.
func TestMLPCodecRoundTripProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		m, opt := randomTrainedMLP(rnd)
		e := &ckpt.Encoder{}
		m.Encode(e)
		opt.Encode(e)
		d := ckpt.NewDecoder(e.Payload())
		m2, err := DecodeMLP(d)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt2, err := DecodeAdam(d)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := d.Finish(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		mlpEqual(t, m, m2)
		if *opt != *opt2 {
			t.Fatalf("trial %d: optimizer %+v != %+v", trial, opt, opt2)
		}

		// The restored pair must continue training identically: one more
		// Forward/Backward/Step on both sides, then bitwise re-compare.
		in := make([]float64, m.InDim())
		dOut := make([]float64, m.OutDim())
		for i := range in {
			in[i] = rnd.NormFloat64()
		}
		for i := range dOut {
			dOut[i] = rnd.NormFloat64()
		}
		m.Forward(in)
		m2.Forward(in)
		m.Backward(dOut)
		m2.Backward(dOut)
		opt.Step(m, 1)
		opt2.Step(m2, 1)
		mlpEqual(t, m, m2)
	}
}

// A payload describing inconsistent layer chaining or slice shapes must be
// rejected rather than assembled into a network that panics later.
func TestDecodeMLPRejectsBadShapes(t *testing.T) {
	rnd := rand.New(rand.NewSource(12))
	m := NewMLP(rnd, ReLU, Tanh, 3, 4, 2)

	// Mismatched layer chaining: encode two layers whose widths disagree.
	e := &ckpt.Encoder{}
	broken := NewMLP(rnd, ReLU, Tanh, 3, 4, 2)
	broken.Layers[1].In = 7 // no longer matches layer 0's Out=4
	broken.Layers[1].W = make([]float64, 7*2)
	broken.Layers[1].mW = make([]float64, 7*2)
	broken.Layers[1].vW = make([]float64, 7*2)
	broken.Layers[1].gW = make([]float64, 7*2)
	broken.Encode(e)
	if _, err := DecodeMLP(ckpt.NewDecoder(e.Payload())); err == nil {
		t.Fatal("mismatched layer chaining accepted")
	}

	// Weight slice length disagreeing with the declared shape.
	e = &ckpt.Encoder{}
	m.Encode(e)
	payload := e.Payload()
	// Re-encode with a clipped weight slice on layer 0.
	e2 := &ckpt.Encoder{}
	clipped := NewMLP(rnd, ReLU, Tanh, 3, 4, 2)
	clipped.Layers[0].W = clipped.Layers[0].W[:len(clipped.Layers[0].W)-1]
	clipped.Encode(e2)
	if _, err := DecodeMLP(ckpt.NewDecoder(e2.Payload())); err == nil {
		t.Fatal("short weight slice accepted")
	}

	// Truncated payload.
	if _, err := DecodeMLP(ckpt.NewDecoder(payload[:len(payload)/2])); err == nil {
		t.Fatal("truncated payload accepted")
	}
}
