//go:build !amd64

package nn

// matvecQ15 falls back to the portable blocked-scalar kernel on
// architectures without a hand-written SIMD path. Results are bitwise
// identical to the amd64 kernel (exact integer arithmetic either way).
func matvecQ15(w, x []int16, acc []int32, rows4, cols16 int) {
	matvecQ15Generic(w, x, acc, rows4, cols16)
}
