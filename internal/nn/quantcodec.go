// Binary codec for compiled quantized policies. The payload is the
// deployable artifact format emitted by cmd/astraea-quantize (inside a
// ckpt CRC container) and loaded by core.LoadQuantizedPolicy; it carries
// exactly what the integer forward pass needs — layer shapes, flat int16
// weights, int32 biases, requantization constants, and the per-feature
// input scales — never float training state.
//
// DecodeQuantized treats the payload as hostile: beyond shape and range
// checks it re-verifies the accumulator no-wrap inequality for every output
// row, so even a handcrafted blob cannot make Forward wrap an int32.

package nn

import (
	"fmt"

	"repro/internal/ckpt"
)

// quantFormatTag versions the quantized payload layout inside the ckpt
// container (which has its own magic/CRC); bump when the layout changes.
const quantFormatTag = int64(0x41515031) // "AQP1"

// maxQuantLayers bounds decoded layer counts; real policies have ≤ 5.
const maxQuantLayers = 64

// maxQuantDim bounds a single layer dimension.
const maxQuantDim = 1 << 15

// EncodeQuantized appends the compiled network to e.
func (q *QuantizedMLP) EncodeQuantized(e *ckpt.Encoder) {
	e.Int64(quantFormatTag)
	e.Int(len(q.layers))
	for _, l := range q.layers {
		e.Int(l.in)
		e.Int(l.out)
		e.Int(int(l.act))
		e.Int64(l.mult)
		e.Int(int(l.shift))
		e.Int(int(l.outBits))
	}
	e.Float64s(q.inScale)
	e.Int16s(q.weights)
	e.Int32s(q.biases)
}

// DecodeQuantized reads a compiled network written by EncodeQuantized,
// rejecting anything that could panic or wrap in Forward: bad shapes, an
// unknown activation, out-of-range requantization constants, non-finite
// input scales, and weight rows whose L1 mass breaks the int32 accumulator
// bound.
func DecodeQuantized(d *ckpt.Decoder) (*QuantizedMLP, error) {
	if tag := d.Int64(); d.Err() == nil && tag != quantFormatTag {
		return nil, fmt.Errorf("nn: not a quantized policy payload (tag %#x)", tag)
	}
	nLayers := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if nLayers < 1 || nLayers > maxQuantLayers {
		return nil, fmt.Errorf("nn: quantized model has %d layers (want 1..%d)", nLayers, maxQuantLayers)
	}
	q := &QuantizedMLP{}
	prevOut := -1
	wOff, bOff := 0, 0
	for li := 0; li < nLayers; li++ {
		in := d.Int()
		out := d.Int()
		act := Activation(d.Int())
		mult := d.Int64()
		shift := d.Int()
		outBits := d.Int()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if in < 1 || in > maxQuantDim || out < 1 || out > maxQuantDim {
			return nil, fmt.Errorf("nn: quantized layer %d has shape %dx%d", li, in, out)
		}
		if act != Linear && act != ReLU && act != Tanh {
			return nil, fmt.Errorf("nn: quantized layer %d has unknown activation %d", li, int(act))
		}
		if prevOut >= 0 && in != prevOut {
			return nil, fmt.Errorf("nn: quantized layer %d input %d does not match previous output %d", li, in, prevOut)
		}
		if mult < 0 || mult > 1<<30 {
			return nil, fmt.Errorf("nn: quantized layer %d multiplier %d out of range", li, mult)
		}
		if shift < 1 || shift > 62 {
			return nil, fmt.Errorf("nn: quantized layer %d shift %d out of range", li, shift)
		}
		if outBits < -16 || outBits > 15 {
			return nil, fmt.Errorf("nn: quantized layer %d output format Q%d out of range", li, outBits)
		}
		if act == Tanh && outBits != tanhOutBits {
			return nil, fmt.Errorf("nn: quantized tanh layer %d declares Q%d output, want Q%d", li, outBits, tanhOutBits)
		}
		prevOut = out
		q.layers = append(q.layers, quantLayer{
			in: in, out: out, act: act,
			wOff: wOff, bOff: bOff,
			mult: mult, rnd: int64(1) << (shift - 1), shift: uint8(shift),
			outBits: int8(outBits),
		})
		wOff += in * out
		bOff += out
	}
	q.inScale = d.Float64s()
	q.weights = d.Int16s()
	q.biases = d.Int32s()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if len(q.inScale) != q.layers[0].in {
		return nil, fmt.Errorf("nn: quantized model has %d input scales, want %d", len(q.inScale), q.layers[0].in)
	}
	for i, s := range q.inScale {
		if !(s > 0) || s > 1e30 {
			return nil, fmt.Errorf("nn: quantized input scale %d is %v", i, s)
		}
	}
	if len(q.weights) != wOff {
		return nil, fmt.Errorf("nn: quantized model has %d weights, want %d", len(q.weights), wOff)
	}
	if len(q.biases) != bOff {
		return nil, fmt.Errorf("nn: quantized model has %d biases, want %d", len(q.biases), bOff)
	}
	if err := q.checkAccBounds(); err != nil {
		return nil, err
	}
	q.finish()
	return q, nil
}

// QuantizedBlob seals the compiled network as a standalone versioned binary
// blob (ckpt container: magic, version, CRC-32C) — the deployable artifact
// format.
func (q *QuantizedMLP) QuantizedBlob() []byte {
	var e ckpt.Encoder
	q.EncodeQuantized(&e)
	return ckpt.Seal(e.Payload())
}

// OpenQuantizedBlob validates a blob written by QuantizedBlob and decodes
// the compiled network within.
func OpenQuantizedBlob(blob []byte) (*QuantizedMLP, error) {
	payload, err := ckpt.Open(blob)
	if err != nil {
		return nil, err
	}
	d := ckpt.NewDecoder(payload)
	q, err := DecodeQuantized(d)
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return q, nil
}
