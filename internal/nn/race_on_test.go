//go:build race

package nn

// raceDetectorEnabled lets wall-clock performance assertions skip under the
// race detector, whose instrumentation slowdown makes timing contrasts
// meaningless.
const raceDetectorEnabled = true
