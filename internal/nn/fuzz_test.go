package nn

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/ckpt"
)

// FuzzCodecRead throws arbitrary bytes at both weight decoders — the binary
// checkpoint codec and the JSON weight format. The property under test is
// "successful decode implies a usable network": any input either errors out
// or yields a model whose Forward runs without panicking. This is what
// found the hostile-shape holes in UnmarshalJSON (negative dims, int
// overflow in In*Out, mismatched layer chains) pinned by
// TestUnmarshalRejectsHostileShapes.
func FuzzCodecRead(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, ReLU, Tanh, 4, 8, 1)
	var e ckpt.Encoder
	m.Encode(&e)
	f.Add(e.Payload())
	if js, err := json.Marshal(m); err == nil {
		f.Add(js)
	}
	f.Add([]byte(`{"layers":[{"in":1,"out":1,"act":"linear","w":[2],"b":[1]}]}`))
	f.Add([]byte(`{"layers":[{"in":-1,"out":0,"act":"relu","w":[],"b":[]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeMLP(ckpt.NewDecoder(data)); err == nil {
			m.Forward(make([]float64, m.InDim()))
		}
		var net MLP
		if err := json.Unmarshal(data, &net); err == nil {
			net.Forward(make([]float64, net.InDim()))
		}
	})
}
