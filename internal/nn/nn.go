// Package nn is a compact pure-Go neural-network library sufficient for the
// paper's actor/critic models: fully-connected layers with ReLU/Tanh
// activations, mean-squared-error loss, reverse-mode gradients, the Adam
// optimizer, soft target-network updates, and JSON weight serialization. It
// substitutes for the TensorFlow models in the paper's prototype.
package nn

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer nonlinearity.
type Activation int

// Supported activations.
const (
	Linear Activation = iota
	ReLU
	Tanh
)

// String names the activation for weight-file headers and error messages.
func (a Activation) String() string {
	switch a {
	case Linear:
		return "linear"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	}
	return fmt.Sprintf("activation(%d)", int(a))
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Tanh:
		return math.Tanh(x)
	default:
		return x
	}
}

// derivFromOut computes the activation derivative given the activation
// output (both ReLU and Tanh permit this).
func (a Activation) derivFromOut(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	default:
		return 1
	}
}

// Dense is one fully-connected layer: out = act(W x + b).
type Dense struct {
	In, Out int
	Act     Activation
	W       []float64 // row-major [Out][In]
	B       []float64

	// Adam state
	mW, vW, mB, vB []float64
	// gradient accumulators
	gW, gB []float64
}

// NewDense builds a layer with He/Xavier-style initialization drawn from
// rng.
func NewDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, Act: act,
		W: make([]float64, in*out), B: make([]float64, out),
		mW: make([]float64, in*out), vW: make([]float64, in*out),
		mB: make([]float64, out), vB: make([]float64, out),
		gW: make([]float64, in*out), gB: make([]float64, out),
	}
	scale := math.Sqrt(2.0 / float64(in))
	if act == Tanh || act == Linear {
		scale = math.Sqrt(1.0 / float64(in))
	}
	for i := range d.W {
		d.W[i] = rng.NormFloat64() * scale
	}
	return d
}

// Forward computes the layer output and records x internally for Backward.
func (d *Dense) forward(x []float64, preact, out []float64) {
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		preact[o] = sum
		out[o] = d.Act.apply(sum)
	}
}

// MLP is a stack of Dense layers.
type MLP struct {
	Layers []*Dense

	// scratch per-layer activations for forward/backward; MLP is not safe
	// for concurrent use.
	acts    [][]float64 // acts[0] = input copy, acts[i] = output of layer i-1
	preacts [][]float64
	grads   [][]float64 // backward scratch, same shapes as acts
}

// NewMLP builds an MLP with the given layer sizes; sizes[0] is the input
// width. All hidden layers use hiddenAct; the output layer uses outAct.
func NewMLP(rng *rand.Rand, hiddenAct, outAct Activation, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		act := hiddenAct
		if i+2 == len(sizes) {
			act = outAct
		}
		m.Layers = append(m.Layers, NewDense(sizes[i], sizes[i+1], act, rng))
	}
	m.allocScratch()
	return m
}

func (m *MLP) allocScratch() {
	m.acts = make([][]float64, len(m.Layers)+1)
	m.preacts = make([][]float64, len(m.Layers))
	m.grads = make([][]float64, len(m.Layers)+1)
	m.acts[0] = make([]float64, m.Layers[0].In)
	m.grads[0] = make([]float64, m.Layers[0].In)
	for i, l := range m.Layers {
		m.acts[i+1] = make([]float64, l.Out)
		m.preacts[i] = make([]float64, l.Out)
		m.grads[i+1] = make([]float64, l.Out)
	}
}

// InDim returns the input width.
func (m *MLP) InDim() int { return m.Layers[0].In }

// OutDim returns the output width.
func (m *MLP) OutDim() int { return m.Layers[len(m.Layers)-1].Out }

// Forward runs the network and returns the output slice (owned by the MLP;
// copy it if you need it beyond the next call).
func (m *MLP) Forward(x []float64) []float64 {
	if len(x) != m.Layers[0].In {
		panic(fmt.Sprintf("nn: input dim %d, want %d", len(x), m.Layers[0].In))
	}
	copy(m.acts[0], x)
	for i, l := range m.Layers {
		l.forward(m.acts[i], m.preacts[i], m.acts[i+1])
	}
	return m.acts[len(m.Layers)]
}

// Backward accumulates parameter gradients for the last Forward call, given
// dLoss/dOutput, and returns dLoss/dInput. The returned slice is scratch
// owned by the MLP, valid until the next Backward call; copy it to retain.
func (m *MLP) Backward(dOut []float64) []float64 {
	n := len(m.Layers)
	grad := m.grads[n]
	copy(grad, dOut)
	for li := n - 1; li >= 0; li-- {
		l := m.Layers[li]
		in := m.acts[li]
		out := m.acts[li+1]
		next := m.grads[li]
		for i := range next {
			next[i] = 0
		}
		for o := 0; o < l.Out; o++ {
			// delta = grad * act'(out), computed in place in grad
			d := grad[o] * l.Act.derivFromOut(out[o])
			row := l.W[o*l.In : (o+1)*l.In]
			gRow := l.gW[o*l.In : (o+1)*l.In]
			l.gB[o] += d
			for i := 0; i < l.In; i++ {
				gRow[i] += d * in[i]
				next[i] += d * row[i]
			}
		}
		grad = next
	}
	return grad
}

// ZeroGrad clears accumulated gradients.
func (m *MLP) ZeroGrad() {
	for _, l := range m.Layers {
		for i := range l.gW {
			l.gW[i] = 0
		}
		for i := range l.gB {
			l.gB[i] = 0
		}
	}
}

// Adam applies one Adam update using the accumulated gradients divided by
// batchScale, then clears them.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	t       int
	MaxNorm float64 // gradient clipping by global norm; 0 disables
}

// NewAdam returns an Adam optimizer with standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, MaxNorm: 10}
}

// Step updates m's parameters from its accumulated gradients (averaged over
// batchScale samples) and zeroes the accumulators.
func (a *Adam) Step(m *MLP, batchScale float64) {
	if batchScale <= 0 {
		batchScale = 1
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))

	inv := 1 / batchScale
	clip := 1.0
	if a.MaxNorm > 0 {
		var norm float64
		for _, l := range m.Layers {
			for _, g := range l.gW {
				s := g * inv
				norm += s * s
			}
			for _, g := range l.gB {
				s := g * inv
				norm += s * s
			}
		}
		norm = math.Sqrt(norm)
		if norm > a.MaxNorm {
			clip = a.MaxNorm / norm
		}
	}

	scale := inv * clip
	upd := func(w, g, mm, vv []float64) {
		for i := range w {
			gi := g[i] * scale
			mm[i] = a.Beta1*mm[i] + (1-a.Beta1)*gi
			vv[i] = a.Beta2*vv[i] + (1-a.Beta2)*gi*gi
			mhat := mm[i] / bc1
			vhat := vv[i] / bc2
			w[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
			g[i] = 0
		}
	}
	for _, l := range m.Layers {
		upd(l.W, l.gW, l.mW, l.vW)
		upd(l.B, l.gB, l.mB, l.vB)
	}
}

// Clone returns a deep copy of the network (weights only; optimizer and
// gradient state reset).
func (m *MLP) Clone() *MLP {
	c := &MLP{}
	for _, l := range m.Layers {
		nl := &Dense{In: l.In, Out: l.Out, Act: l.Act,
			W:  append([]float64(nil), l.W...),
			B:  append([]float64(nil), l.B...),
			mW: make([]float64, len(l.W)), vW: make([]float64, len(l.W)),
			mB: make([]float64, len(l.B)), vB: make([]float64, len(l.B)),
			gW: make([]float64, len(l.W)), gB: make([]float64, len(l.B)),
		}
		c.Layers = append(c.Layers, nl)
	}
	c.allocScratch()
	return c
}

// SoftUpdate moves target's weights toward m's: target = (1-tau)*target +
// tau*m. Used for TD3 target networks.
func SoftUpdate(target, m *MLP, tau float64) {
	for li, l := range m.Layers {
		tl := target.Layers[li]
		for i := range l.W {
			tl.W[i] = (1-tau)*tl.W[i] + tau*l.W[i]
		}
		for i := range l.B {
			tl.B[i] = (1-tau)*tl.B[i] + tau*l.B[i]
		}
	}
}

// jsonModel is the serialized form.
type jsonModel struct {
	Layers []jsonLayer `json:"layers"`
}

type jsonLayer struct {
	In  int       `json:"in"`
	Out int       `json:"out"`
	Act string    `json:"act"`
	W   []float64 `json:"w"`
	B   []float64 `json:"b"`
}

// MarshalJSON implements json.Marshaler.
func (m *MLP) MarshalJSON() ([]byte, error) {
	jm := jsonModel{}
	for _, l := range m.Layers {
		jm.Layers = append(jm.Layers, jsonLayer{
			In: l.In, Out: l.Out, Act: l.Act.String(), W: l.W, B: l.B,
		})
	}
	return json.Marshal(jm)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *MLP) UnmarshalJSON(data []byte) error {
	var jm jsonModel
	if err := json.Unmarshal(data, &jm); err != nil {
		return err
	}
	if len(jm.Layers) == 0 {
		return fmt.Errorf("nn: model has no layers")
	}
	m.Layers = nil
	prevOut := -1
	for li, jl := range jm.Layers {
		var act Activation
		switch jl.Act {
		case "linear":
			act = Linear
		case "relu":
			act = ReLU
		case "tanh":
			act = Tanh
		default:
			return fmt.Errorf("nn: unknown activation %q", jl.Act)
		}
		// Shapes are attacker-controlled here: non-positive dims would panic
		// in allocScratch, and In*Out can overflow int so that a bogus huge
		// shape "matches" an empty weight slice and then drives a giant
		// allocation.
		if jl.In < 1 || jl.Out < 1 {
			return fmt.Errorf("nn: layer %d has non-positive shape %dx%d", li, jl.In, jl.Out)
		}
		if jl.In > math.MaxInt/jl.Out {
			return fmt.Errorf("nn: layer %d shape %dx%d overflows", li, jl.In, jl.Out)
		}
		if len(jl.W) != jl.In*jl.Out || len(jl.B) != jl.Out {
			return fmt.Errorf("nn: layer shape mismatch: %dx%d with %d weights, %d biases",
				jl.In, jl.Out, len(jl.W), len(jl.B))
		}
		if prevOut >= 0 && jl.In != prevOut {
			return fmt.Errorf("nn: layer %d input %d does not match previous output %d", li, jl.In, prevOut)
		}
		prevOut = jl.Out
		m.Layers = append(m.Layers, &Dense{
			In: jl.In, Out: jl.Out, Act: act,
			W: jl.W, B: jl.B,
			mW: make([]float64, len(jl.W)), vW: make([]float64, len(jl.W)),
			mB: make([]float64, len(jl.B)), vB: make([]float64, len(jl.B)),
			gW: make([]float64, len(jl.W)), gB: make([]float64, len(jl.B)),
		})
	}
	m.allocScratch()
	return nil
}
