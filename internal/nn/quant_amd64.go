//go:build amd64

package nn

// matvecQ15 dispatches to the SSE2 PMADDWD kernel (quant_amd64.s). PMADDWD
// is baseline amd64, so no feature detection is needed; it performs eight
// int16×int16 multiplies with pairwise int32 adds per instruction — the
// instruction quantized inference layouts exist for. Each SIMD lane
// accumulates a disjoint column subset of a row, so the row-L1 accumulator
// bound (checkAccBounds) covers every intermediate lane value too.
func matvecQ15(w, x []int16, acc []int32, rows4, cols16 int) {
	matvecQ15SSE(&w[0], &x[0], &acc[0], rows4, cols16)
}

//go:noescape
func matvecQ15SSE(w, x *int16, acc *int32, rows4, cols16 int)
