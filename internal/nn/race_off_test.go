//go:build !race

package nn

const raceDetectorEnabled = false
