//go:build amd64

#include "textflag.h"

// func matvecQ15SSE(w, x *int16, acc *int32, rows4, cols16 int)
//
// Tiled int16 matrix-vector product: rows4 groups of four weight rows
// (each cols16 int16s, cols16 a multiple of 16) against one activation
// vector, writing 4*rows4 int32 results to acc.
//
// Per 16-column step each row issues two PMADDWL (eight int16×int16
// products with pairwise int32 adds each) and two PADDD into its four-lane
// accumulator. Lanes accumulate disjoint column subsets, so the caller's
// row-L1 bound (Σ|w|·32768 + |b| ≤ 2^31−1) guarantees no lane ever wraps.
TEXT ·matvecQ15SSE(SB), NOSPLIT, $0-40
	MOVQ w+0(FP), SI
	MOVQ x+8(FP), DX
	MOVQ acc+16(FP), DI
	MOVQ rows4+24(FP), CX
	MOVQ cols16+32(FP), BX
	MOVQ BX, R8
	SHLQ $1, R8               // R8 = row stride in bytes

rowloop:
	PXOR X4, X4               // row 0 accumulator
	PXOR X5, X5               // row 1
	PXOR X6, X6               // row 2
	PXOR X7, X7               // row 3
	MOVQ DX, R9               // activation cursor
	MOVQ SI, R10              // row 0 cursor
	LEAQ (SI)(R8*1), R11      // row 1
	LEAQ (SI)(R8*2), R12      // row 2
	LEAQ (R11)(R8*2), R13     // row 3
	MOVQ BX, AX               // columns remaining

colloop:
	MOVOU (R9), X0            // x[0:8]
	MOVOU 16(R9), X1          // x[8:16]

	MOVOU (R10), X2
	PMADDWL X0, X2
	PADDD X2, X4
	MOVOU 16(R10), X2
	PMADDWL X1, X2
	PADDD X2, X4

	MOVOU (R11), X2
	PMADDWL X0, X2
	PADDD X2, X5
	MOVOU 16(R11), X2
	PMADDWL X1, X2
	PADDD X2, X5

	MOVOU (R12), X2
	PMADDWL X0, X2
	PADDD X2, X6
	MOVOU 16(R12), X2
	PMADDWL X1, X2
	PADDD X2, X6

	MOVOU (R13), X2
	PMADDWL X0, X2
	PADDD X2, X7
	MOVOU 16(R13), X2
	PMADDWL X1, X2
	PADDD X2, X7

	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	SUBQ $16, AX
	JNE  colloop

	// Transpose-reduce the four 4-lane accumulators into one register and
	// store all four row sums with a single 16-byte write. (Per-row 4-byte
	// stores are a trap here: Go's assembler has no 32-bit XMM store — MOVD
	// emits MOVQ, whose 8-byte write would run past the end of acc on the
	// final group.)
	MOVO      X4, X0
	PUNPCKLLQ X5, X0          // [a0 b0 a1 b1]
	PUNPCKHLQ X5, X4          // [a2 b2 a3 b3]
	PADDD     X0, X4          // [a02 b02 a13 b13]
	MOVO      X6, X1
	PUNPCKLLQ X7, X1          // [c0 d0 c1 d1]
	PUNPCKHLQ X7, X6          // [c2 d2 c3 d3]
	PADDD     X1, X6          // [c02 d02 c13 d13]
	MOVO      X4, X2
	PUNPCKLQDQ X6, X2         // [a02 b02 c02 d02]
	PUNPCKHQDQ X6, X4         // [a13 b13 c13 d13]
	PADDD     X2, X4          // [sumA sumB sumC sumD]
	MOVOU     X4, (DI)

	ADDQ $16, DI
	LEAQ (SI)(R8*4), SI       // advance four rows
	DECQ CX
	JNE  rowloop
	RET
