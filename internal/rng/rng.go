// Package rng provides the serializable random-number generator the
// checkpoint subsystem requires. math/rand.Rand hides its source state, so a
// training run seeded through it cannot be suspended and resumed with a
// bit-identical stream; this package supplies a PCG (XSL-RR 128/64)
// generator whose complete state is two uint64 words, wrapped so it still
// satisfies every *rand.Rand call site in the tree.
//
// The wrapper relies on the fact that every math/rand.Rand method used by
// the trainer (Float64, Int63, Intn, NormFloat64, ExpFloat64, Perm, ...) is
// a pure function of source draws: restoring the source state restores the
// stream exactly. The one exception is Rand.Read, which buffers partial
// words inside rand.Rand itself — resumable code must not use it.
package rng

import (
	"math/bits"
	"math/rand"
)

// PCG multiplier and increment (128-bit constants split into hi/lo words),
// the standard parameters of the pcg64 reference implementation.
const (
	mulHi = 2549297995355413924
	mulLo = 4865540595714422341
	incHi = 6364136223846793005
	incLo = 1442695040888963407
)

// source is the PCG XSL-RR 128/64 state. It implements rand.Source64.
type source struct {
	hi, lo uint64
}

// Seed implements rand.Source, expanding the 64-bit seed into the 128-bit
// state with splitmix64 so nearby seeds land in unrelated states.
func (s *source) Seed(seed int64) {
	x := uint64(seed)
	s.hi = splitmix64(&x)
	s.lo = splitmix64(&x)
}

// Uint64 implements rand.Source64: advance the 128-bit LCG, output XSL-RR.
func (s *source) Uint64() uint64 {
	carryHi, carryLo := bits.Mul64(s.lo, mulLo)
	carryHi += s.hi*mulLo + s.lo*mulHi
	lo, c := bits.Add64(carryLo, incLo, 0)
	hi, _ := bits.Add64(carryHi, incHi, c)
	s.hi, s.lo = hi, lo
	return bits.RotateLeft64(s.hi^s.lo, -int(s.hi>>58))
}

// Int63 implements rand.Source.
func (s *source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Rand is a math/rand.Rand backed by a serializable PCG source. The
// embedded *rand.Rand is handed to APIs that take one (nn.NewMLP,
// ReplayBuffer.Sample, TrainingDistribution.Sample); State/SetState expose
// the underlying generator for checkpointing.
type Rand struct {
	*rand.Rand
	src *source
}

// New returns a generator seeded from seed.
func New(seed int64) *Rand {
	s := &source{}
	s.Seed(seed)
	return &Rand{Rand: rand.New(s), src: s}
}

// State returns the generator's complete internal state.
func (r *Rand) State() (hi, lo uint64) {
	return r.src.hi, r.src.lo
}

// SetState restores a state previously captured by State. The stream
// continues exactly where the captured generator would have.
func (r *Rand) SetState(hi, lo uint64) {
	r.src.hi, r.src.lo = hi, lo
}

// Fold derives a sub-seed from (seed, stream): distinct streams yield
// decorrelated seeds even for identical base seeds. It replaces the
// correlated pattern of seeding several generators from one value (the
// trainer's exploration noise and the episode sampler must not share a
// stream).
func Fold(seed int64, stream uint64) int64 {
	x := uint64(seed) + stream*0x9e3779b97f4a7c15
	z := splitmix64(&x)
	z ^= splitmix64(&x)
	return int64(z >> 1)
}

// splitmix64 is the standard seed-expansion mixer: it advances *x by the
// golden-ratio increment and returns a finalized output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
