package rng

import (
	"math"
	"testing"
)

func TestDeterministicBySeed(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided on %d of 1000 draws", same)
	}
}

// The checkpoint contract: capturing State and restoring it into a fresh
// generator continues the exact stream, including through the rand.Rand
// wrapper methods the trainer uses (NormFloat64 draws a variable number of
// source words per call, so this exercises the pure-function property).
func TestStateRoundTripContinuesStream(t *testing.T) {
	r := New(7)
	for i := 0; i < 137; i++ {
		r.NormFloat64()
		r.Float64()
		r.Intn(100)
	}
	hi, lo := r.State()

	fresh := New(0)
	fresh.SetState(hi, lo)
	for i := 0; i < 1000; i++ {
		switch i % 4 {
		case 0:
			if a, b := r.NormFloat64(), fresh.NormFloat64(); a != b {
				t.Fatalf("NormFloat64 diverged at %d: %v vs %v", i, a, b)
			}
		case 1:
			if a, b := r.Float64(), fresh.Float64(); a != b {
				t.Fatalf("Float64 diverged at %d: %v vs %v", i, a, b)
			}
		case 2:
			if a, b := r.Int63(), fresh.Int63(); a != b {
				t.Fatalf("Int63 diverged at %d: %v vs %v", i, a, b)
			}
		case 3:
			if a, b := r.ExpFloat64(), fresh.ExpFloat64(); a != b {
				t.Fatalf("ExpFloat64 diverged at %d: %v vs %v", i, a, b)
			}
		}
	}
}

// Fold must decorrelate streams sharing a base seed: this is the fix for
// the trainer and episode sampler consuming correlated randomness.
func TestFoldSeparatesStreams(t *testing.T) {
	for _, seed := range []int64{0, 1, -1, 1 << 40} {
		a, b := New(Fold(seed, 1)), New(Fold(seed, 2))
		same := 0
		for i := 0; i < 1000; i++ {
			if a.Uint64() == b.Uint64() {
				same++
			}
		}
		if same > 0 {
			t.Fatalf("seed %d: streams 1 and 2 collided on %d of 1000 draws", seed, same)
		}
	}
	if Fold(5, 1) == Fold(5, 2) {
		t.Fatal("Fold ignores the stream id")
	}
	if Fold(5, 1) == Fold(6, 1) {
		t.Fatal("Fold ignores the seed")
	}
}

// Cheap sanity on distribution quality: mean and variance of Float64 over
// many draws should be near uniform's 1/2 and 1/12.
func TestUniformMoments(t *testing.T) {
	r := New(99)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Float64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Fatalf("variance %v far from 1/12", variance)
	}
}
