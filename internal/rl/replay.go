// Package rl implements the paper's multi-agent training algorithm
// (Algorithm 1): a deterministic-policy-gradient actor trained against a
// centralized critic that, MADDPG-style, consumes the global state of all
// active flows alongside the agent's local state and action. The TD3
// optimizations of Appendix A are included: twin critics with clipped
// double-Q learning, target networks with soft updates, delayed policy
// updates, and target policy smoothing.
package rl

import (
	"math/rand"
)

// Transition is one experience tuple (g, s, a, r, g', s', done) gathered by
// the environment's state block.
type Transition struct {
	Global     []float64 // aggregated global state g (critic input only)
	State      []float64 // local state s (actor input)
	Action     []float64
	Reward     float64
	NextGlobal []float64
	NextState  []float64
	Done       bool
}

// ReplayBuffer is a fixed-capacity ring of transitions with uniform
// sampling (the experience-replay memory of Appendix A).
type ReplayBuffer struct {
	buf  []Transition
	next int
	full bool
}

// NewReplayBuffer allocates a buffer holding up to capacity transitions.
func NewReplayBuffer(capacity int) *ReplayBuffer {
	if capacity <= 0 {
		panic("rl: replay capacity must be positive")
	}
	return &ReplayBuffer{buf: make([]Transition, capacity)}
}

// Add stores a transition, evicting the oldest when full.
func (rb *ReplayBuffer) Add(t Transition) {
	rb.buf[rb.next] = t
	rb.next++
	if rb.next == len(rb.buf) {
		rb.next = 0
		rb.full = true
	}
}

// Len returns the number of stored transitions.
func (rb *ReplayBuffer) Len() int {
	if rb.full {
		return len(rb.buf)
	}
	return rb.next
}

// Sample draws n transitions uniformly with replacement into out (resized
// as needed) and returns it. It panics on an empty buffer.
func (rb *ReplayBuffer) Sample(rng *rand.Rand, n int, out []Transition) []Transition {
	m := rb.Len()
	if m == 0 {
		panic("rl: sampling from empty replay buffer")
	}
	out = out[:0]
	for i := 0; i < n; i++ {
		out = append(out, rb.buf[rng.Intn(m)])
	}
	return out
}
