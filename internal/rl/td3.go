package rl

import (
	"math"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// Config sets the trainer's hyperparameters. Defaults follow Table 4 and
// Appendix A of the paper.
type Config struct {
	StateDim  int // local state width (actor input)
	GlobalDim int // global state width (critic extra input)
	ActionDim int

	Hidden []int // hidden layer sizes; paper uses 256/128/64

	ActorLR  float64
	CriticLR float64
	Gamma    float64
	Tau      float64 // soft target update rate
	Batch    int

	// TD3 specifics
	PolicyDelay  int     // actor updates once per this many critic updates
	TargetNoise  float64 // target policy smoothing stddev
	NoiseClip    float64
	ExploreNoise float64 // behaviour noise during data collection
}

// DefaultConfig returns the paper-aligned hyperparameters for the given
// dimensions.
func DefaultConfig(stateDim, globalDim, actionDim int) Config {
	return Config{
		StateDim: stateDim, GlobalDim: globalDim, ActionDim: actionDim,
		Hidden:  []int{256, 128, 64},
		ActorLR: 0.001, CriticLR: 0.001,
		Gamma: 0.98, Tau: 0.005, Batch: 192,
		PolicyDelay: 2, TargetNoise: 0.2, NoiseClip: 0.5, ExploreNoise: 0.1,
	}
}

// Trainer holds the actor, twin critics and their targets, and performs
// TD3/MADDPG updates from sampled transitions.
type Trainer struct {
	Cfg Config

	Actor   *nn.MLP
	Critic1 *nn.MLP
	Critic2 *nn.MLP

	actorTarget   *nn.MLP
	critic1Target *nn.MLP
	critic2Target *nn.MLP

	actorOpt   *nn.Adam
	critic1Opt *nn.Adam
	critic2Opt *nn.Adam

	rng     *rng.Rand
	updates int

	// Reusable scratch: the trainer is single-threaded, so per-call and
	// per-sample buffers are hoisted here to keep Update/Act allocation-free.
	batch  []Transition
	actBuf []float64
	ciBuf  []float64
	aNext  []float64
	negBuf []float64
	errBuf []float64 // 1-wide dLoss/dOutput for critic backward passes
	oneBuf []float64 // constant [1] for dQ/dInput

	// Telemetry instruments; nil (no-op) unless Instrument was called.
	mUpdates      *telemetry.Counter
	mActorUpdates *telemetry.Counter
	mReplayLen    *telemetry.Gauge
	mCriticLoss   *telemetry.Gauge

	// LastCriticLoss and LastActorObjective expose training diagnostics.
	LastCriticLoss     float64
	LastActorObjective float64
}

// Instrument registers training telemetry on reg: critic update steps,
// delayed actor updates, replay-buffer occupancy, and the latest critic
// TD-loss (a convergence signal long training runs watch via /metrics).
func (t *Trainer) Instrument(reg *telemetry.Registry) {
	t.mUpdates = reg.Counter("rl_update_steps_total", "critic gradient steps applied")
	t.mActorUpdates = reg.Counter("rl_actor_updates_total", "delayed actor updates applied")
	t.mReplayLen = reg.Gauge("rl_replay_occupancy", "transitions held in the replay buffer at the last update")
	t.mCriticLoss = reg.Gauge("rl_critic_loss", "mean TD loss of the latest critic update")
}

// NewTrainer builds the networks. The critic input is [global, state,
// action]; the actor input is [state] and its tanh output lies in (-1,1).
func NewTrainer(cfg Config, seed int64) *Trainer {
	r := rng.New(seed)
	actorSizes := append([]int{cfg.StateDim}, cfg.Hidden...)
	actorSizes = append(actorSizes, cfg.ActionDim)
	criticIn := cfg.GlobalDim + cfg.StateDim + cfg.ActionDim
	criticSizes := append([]int{criticIn}, cfg.Hidden...)
	criticSizes = append(criticSizes, 1)

	t := &Trainer{
		Cfg:        cfg,
		Actor:      nn.NewMLP(r.Rand, nn.ReLU, nn.Tanh, actorSizes...),
		Critic1:    nn.NewMLP(r.Rand, nn.ReLU, nn.Linear, criticSizes...),
		Critic2:    nn.NewMLP(r.Rand, nn.ReLU, nn.Linear, criticSizes...),
		actorOpt:   nn.NewAdam(cfg.ActorLR),
		critic1Opt: nn.NewAdam(cfg.CriticLR),
		critic2Opt: nn.NewAdam(cfg.CriticLR),
		rng:        r,
	}
	t.actorTarget = t.Actor.Clone()
	t.critic1Target = t.Critic1.Clone()
	t.critic2Target = t.Critic2.Clone()
	t.actBuf = make([]float64, cfg.ActionDim)
	t.aNext = make([]float64, cfg.ActionDim)
	t.negBuf = make([]float64, cfg.ActionDim)
	t.ciBuf = make([]float64, 0, criticIn)
	t.errBuf = make([]float64, 1)
	t.oneBuf = []float64{1}
	return t
}

// Act runs the current policy on state; with explore=true, Gaussian
// behaviour noise is added and the result clamped to [-1, 1]. The returned
// slice is scratch owned by the trainer, valid until the next Act call; copy
// it to retain (e.g. before storing in a replay transition).
func (t *Trainer) Act(state []float64, explore bool) []float64 {
	out := t.Actor.Forward(state)
	act := t.actBuf
	copy(act, out)
	if explore {
		for i := range act {
			act[i] += t.rng.NormFloat64() * t.Cfg.ExploreNoise
			if act[i] > 1 {
				act[i] = 1
			}
			if act[i] < -1 {
				act[i] = -1
			}
		}
	}
	return act
}

// criticInput concatenates [global, state, action] into the trainer's
// reusable buffer; the result is valid until the next call.
func (t *Trainer) criticInput(global, state, action []float64) []float64 {
	in := append(t.ciBuf[:0], global...)
	in = append(in, state...)
	in = append(in, action...)
	t.ciBuf = in[:0]
	return in
}

// Update performs one training step on a batch sampled from rb: both
// critics learn the clipped-double-Q temporal-difference target, and every
// PolicyDelay steps the actor ascends Critic1's value with soft target
// updates following.
func (t *Trainer) Update(rb *ReplayBuffer) {
	if rb.Len() < t.Cfg.Batch {
		return
	}
	t.batch = rb.Sample(t.rng.Rand, t.Cfg.Batch, t.batch)
	batch := t.batch

	// --- critic update ---
	t.Critic1.ZeroGrad()
	t.Critic2.ZeroGrad()
	var closs float64
	for _, tr := range batch {
		// Target action with smoothing noise.
		aNext := t.aNext
		copy(aNext, t.actorTarget.Forward(tr.NextState))
		for i := range aNext {
			noise := t.rng.NormFloat64() * t.Cfg.TargetNoise
			if noise > t.Cfg.NoiseClip {
				noise = t.Cfg.NoiseClip
			}
			if noise < -t.Cfg.NoiseClip {
				noise = -t.Cfg.NoiseClip
			}
			aNext[i] += noise
			if aNext[i] > 1 {
				aNext[i] = 1
			}
			if aNext[i] < -1 {
				aNext[i] = -1
			}
		}
		inNext := t.criticInput(tr.NextGlobal, tr.NextState, aNext)
		q1n := t.critic1Target.Forward(inNext)[0]
		q2n := t.critic2Target.Forward(inNext)[0]
		qn := math.Min(q1n, q2n)
		target := tr.Reward
		if !tr.Done {
			target += t.Cfg.Gamma * qn
		}

		in := t.criticInput(tr.Global, tr.State, tr.Action)
		q1 := t.Critic1.Forward(in)[0]
		t.errBuf[0] = q1 - target
		t.Critic1.Backward(t.errBuf)
		q2 := t.Critic2.Forward(in)[0]
		t.errBuf[0] = q2 - target
		t.Critic2.Backward(t.errBuf)
		d1, d2 := q1-target, q2-target
		closs += 0.5 * (d1*d1 + d2*d2)
	}
	n := float64(len(batch))
	t.critic1Opt.Step(t.Critic1, n)
	t.critic2Opt.Step(t.Critic2, n)
	t.LastCriticLoss = closs / n
	t.updates++
	t.mUpdates.Inc()
	t.mReplayLen.Set(float64(rb.Len()))
	t.mCriticLoss.Set(t.LastCriticLoss)

	// --- delayed actor update ---
	if t.updates%t.Cfg.PolicyDelay != 0 {
		return
	}
	t.Actor.ZeroGrad()
	var obj float64
	for _, tr := range batch {
		a := t.Actor.Forward(tr.State)
		in := t.criticInput(tr.Global, tr.State, a)
		q := t.Critic1.Forward(in)[0]
		obj += q
		// dQ/dInput → slice out dQ/dAction, ascend (so loss gradient is -1).
		t.Critic1.ZeroGrad()
		dIn := t.Critic1.Backward(t.oneBuf)
		dA := dIn[len(tr.Global)+len(tr.State):]
		neg := t.negBuf
		for i := range dA {
			neg[i] = -dA[i] // gradient ascent on Q
		}
		t.Actor.Backward(neg)
	}
	t.Critic1.ZeroGrad() // discard critic grads accumulated for dQ/dA
	t.actorOpt.Step(t.Actor, n)
	t.LastActorObjective = obj / n
	t.mActorUpdates.Inc()

	nn.SoftUpdate(t.actorTarget, t.Actor, t.Cfg.Tau)
	nn.SoftUpdate(t.critic1Target, t.Critic1, t.Cfg.Tau)
	nn.SoftUpdate(t.critic2Target, t.Critic2, t.Cfg.Tau)
}

// QValue exposes Critic1's estimate for diagnostics and tests.
func (t *Trainer) QValue(global, state, action []float64) float64 {
	return t.Critic1.Forward(t.criticInput(global, state, action))[0]
}
