// Checkpoint codecs for the trainer and the replay buffer. Together with
// the nn codec these capture every bit of state that influences future
// updates: all six networks (actor, twin critics, and their targets), the
// three Adam optimizers, the update counter that gates delayed policy
// updates, the sampling/noise RNG, and the replay ring.

package rl

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/nn"
)

// Encode appends the trainer's complete state to e.
func (t *Trainer) Encode(e *ckpt.Encoder) {
	// Config first: the decoder rebuilds the trainer from it, then
	// overwrites the freshly-initialized state with the recorded one.
	e.Int(t.Cfg.StateDim)
	e.Int(t.Cfg.GlobalDim)
	e.Int(t.Cfg.ActionDim)
	e.Ints(t.Cfg.Hidden)
	e.Float64(t.Cfg.ActorLR)
	e.Float64(t.Cfg.CriticLR)
	e.Float64(t.Cfg.Gamma)
	e.Float64(t.Cfg.Tau)
	e.Int(t.Cfg.Batch)
	e.Int(t.Cfg.PolicyDelay)
	e.Float64(t.Cfg.TargetNoise)
	e.Float64(t.Cfg.NoiseClip)
	e.Float64(t.Cfg.ExploreNoise)

	t.Actor.Encode(e)
	t.Critic1.Encode(e)
	t.Critic2.Encode(e)
	t.actorTarget.Encode(e)
	t.critic1Target.Encode(e)
	t.critic2Target.Encode(e)
	t.actorOpt.Encode(e)
	t.critic1Opt.Encode(e)
	t.critic2Opt.Encode(e)

	hi, lo := t.rng.State()
	e.Uint64(hi)
	e.Uint64(lo)
	e.Int(t.updates)
	e.Float64(t.LastCriticLoss)
	e.Float64(t.LastActorObjective)
}

// DecodeTrainer reads a trainer written by Encode. The restored trainer
// continues the exact update stream of the saved one: same batch samples,
// same noise draws, same delayed-actor schedule.
func DecodeTrainer(d *ckpt.Decoder) (*Trainer, error) {
	cfg := Config{
		StateDim:  d.Int(),
		GlobalDim: d.Int(),
		ActionDim: d.Int(),
		Hidden:    d.Ints(),
	}
	cfg.ActorLR = d.Float64()
	cfg.CriticLR = d.Float64()
	cfg.Gamma = d.Float64()
	cfg.Tau = d.Float64()
	cfg.Batch = d.Int()
	cfg.PolicyDelay = d.Int()
	cfg.TargetNoise = d.Float64()
	cfg.NoiseClip = d.Float64()
	cfg.ExploreNoise = d.Float64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if cfg.StateDim < 1 || cfg.ActionDim < 1 || cfg.GlobalDim < 0 || cfg.Batch < 1 || cfg.PolicyDelay < 1 {
		return nil, fmt.Errorf("rl: implausible decoded config %+v", cfg)
	}

	t := NewTrainer(cfg, 0) // allocates scratch; all stateful fields overwritten below
	nets := []**nn.MLP{
		&t.Actor, &t.Critic1, &t.Critic2,
		&t.actorTarget, &t.critic1Target, &t.critic2Target,
	}
	for i, slot := range nets {
		m, err := nn.DecodeMLP(d)
		if err != nil {
			return nil, fmt.Errorf("rl: network %d: %w", i, err)
		}
		*slot = m
	}
	if t.Actor.InDim() != cfg.StateDim || t.Actor.OutDim() != cfg.ActionDim {
		return nil, fmt.Errorf("rl: decoded actor is %dx%d, config wants %dx%d",
			t.Actor.InDim(), t.Actor.OutDim(), cfg.StateDim, cfg.ActionDim)
	}
	criticIn := cfg.GlobalDim + cfg.StateDim + cfg.ActionDim
	if t.Critic1.InDim() != criticIn || t.Critic1.OutDim() != 1 {
		return nil, fmt.Errorf("rl: decoded critic is %dx%d, config wants %dx1",
			t.Critic1.InDim(), t.Critic1.OutDim(), criticIn)
	}
	opts := []**nn.Adam{&t.actorOpt, &t.critic1Opt, &t.critic2Opt}
	for i, slot := range opts {
		a, err := nn.DecodeAdam(d)
		if err != nil {
			return nil, fmt.Errorf("rl: optimizer %d: %w", i, err)
		}
		*slot = a
	}
	hi, lo := d.Uint64(), d.Uint64()
	t.rng.SetState(hi, lo)
	t.updates = d.Int()
	t.LastCriticLoss = d.Float64()
	t.LastActorObjective = d.Float64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if t.updates < 0 {
		return nil, fmt.Errorf("rl: update counter %d is negative", t.updates)
	}
	return t, nil
}

// Encode appends the replay ring to e. Only live transitions are written
// (a freshly-started run's mostly-empty 200k-slot ring costs nothing), but
// ring geometry — capacity, write cursor, wrap flag — is preserved exactly
// so eviction order after a resume matches the uninterrupted run.
func (rb *ReplayBuffer) Encode(e *ckpt.Encoder) {
	e.Int(len(rb.buf))
	e.Int(rb.next)
	e.Bool(rb.full)
	live := rb.Len()
	e.Int(live)
	for i := 0; i < live; i++ {
		tr := &rb.buf[i]
		e.Float64s(tr.Global)
		e.Float64s(tr.State)
		e.Float64s(tr.Action)
		e.Float64(tr.Reward)
		e.Float64s(tr.NextGlobal)
		e.Float64s(tr.NextState)
		e.Bool(tr.Done)
	}
}

// DecodeReplayBuffer reads a buffer written by Encode.
func DecodeReplayBuffer(d *ckpt.Decoder) (*ReplayBuffer, error) {
	capacity := d.Int()
	next := d.Int()
	full := d.Bool()
	live := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if capacity < 1 {
		return nil, fmt.Errorf("rl: replay capacity %d", capacity)
	}
	if next < 0 || next >= capacity {
		return nil, fmt.Errorf("rl: replay cursor %d out of range [0,%d)", next, capacity)
	}
	wantLive := next
	if full {
		wantLive = capacity
	}
	if live != wantLive {
		return nil, fmt.Errorf("rl: replay has %d live transitions, geometry implies %d", live, wantLive)
	}
	rb := &ReplayBuffer{buf: make([]Transition, capacity), next: next, full: full}
	for i := 0; i < live; i++ {
		rb.buf[i] = Transition{
			Global:     d.Float64s(),
			State:      d.Float64s(),
			Action:     d.Float64s(),
			Reward:     d.Float64(),
			NextGlobal: d.Float64s(),
			NextState:  d.Float64s(),
			Done:       d.Bool(),
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return rb, nil
}
