package rl

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ckpt"
)

func randomTransition(rnd *rand.Rand, stateDim, globalDim int) Transition {
	vec := func(n int) []float64 {
		if n == 0 {
			return nil
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = rnd.NormFloat64()
		}
		return v
	}
	return Transition{
		Global:     vec(globalDim),
		State:      vec(stateDim),
		Action:     vec(1),
		Reward:     rnd.NormFloat64(),
		NextGlobal: vec(globalDim),
		NextState:  vec(stateDim),
		Done:       rnd.Intn(4) == 0,
	}
}

// Property test: replay rings of random fill levels — empty, partial, and
// wrapped — round-trip exactly, including eviction-cursor position.
func TestReplayCodecRoundTripProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		capacity := 1 + rnd.Intn(50)
		rb := NewReplayBuffer(capacity)
		adds := rnd.Intn(3 * capacity) // 0 .. beyond wrap
		for i := 0; i < adds; i++ {
			rb.Add(randomTransition(rnd, 1+rnd.Intn(4), rnd.Intn(3)))
		}
		e := &ckpt.Encoder{}
		rb.Encode(e)
		d := ckpt.NewDecoder(e.Payload())
		rb2, err := DecodeReplayBuffer(d)
		if err != nil {
			t.Fatalf("trial %d (cap %d, adds %d): %v", trial, capacity, adds, err)
		}
		if err := d.Finish(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rb2.Len() != rb.Len() || rb2.next != rb.next || rb2.full != rb.full || len(rb2.buf) != len(rb.buf) {
			t.Fatalf("trial %d: geometry mismatch", trial)
		}
		live := rb.Len()
		for i := 0; i < live; i++ {
			if !reflect.DeepEqual(rb.buf[i], rb2.buf[i]) {
				t.Fatalf("trial %d: transition %d mutated", trial, i)
			}
		}
	}
}

// Trainer round trip: a trainer that has performed real updates must decode
// into one that continues the exact update stream — same batch samples,
// same target noise, same delayed-actor schedule — yielding bitwise-equal
// actor weights after further updates on both sides.
func TestTrainerCodecRoundTripContinuesTraining(t *testing.T) {
	cfg := DefaultConfig(3, 2, 1)
	cfg.Hidden = []int{12, 8}
	cfg.Batch = 16
	tr := NewTrainer(cfg, 77)
	rb := NewReplayBuffer(500)
	rnd := rand.New(rand.NewSource(78))
	for i := 0; i < 200; i++ {
		rb.Add(randomTransition(rnd, 3, 2))
	}
	for i := 0; i < 25; i++ {
		tr.Update(rb)
	}

	e := &ckpt.Encoder{}
	tr.Encode(e)
	rb.Encode(e)
	d := ckpt.NewDecoder(e.Payload())
	tr2, err := DecodeTrainer(d)
	if err != nil {
		t.Fatal(err)
	}
	rb2, err := DecodeReplayBuffer(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr2.Cfg, cfg) {
		t.Fatalf("config mutated: %+v vs %+v", tr2.Cfg, cfg)
	}
	if tr2.updates != tr.updates {
		t.Fatalf("update counter %d != %d", tr2.updates, tr.updates)
	}

	// Continue both sides through more updates, including delayed actor
	// updates and soft target updates, then compare the actors bitwise.
	for i := 0; i < 25; i++ {
		tr.Update(rb)
		tr2.Update(rb2)
	}
	assertActorsBitwiseEqual(t, tr, tr2)
}

func assertActorsBitwiseEqual(t *testing.T, a, b *Trainer) {
	t.Helper()
	for li, la := range a.Actor.Layers {
		lb := b.Actor.Layers[li]
		for i := range la.W {
			if math.Float64bits(la.W[i]) != math.Float64bits(lb.W[i]) {
				t.Fatalf("actor layer %d weight %d: %v != %v", li, i, la.W[i], lb.W[i])
			}
		}
		for i := range la.B {
			if math.Float64bits(la.B[i]) != math.Float64bits(lb.B[i]) {
				t.Fatalf("actor layer %d bias %d: %v != %v", li, i, la.B[i], lb.B[i])
			}
		}
	}
}

func TestDecodeTrainerRejectsCorruptPayload(t *testing.T) {
	cfg := DefaultConfig(2, 1, 1)
	cfg.Hidden = []int{6}
	tr := NewTrainer(cfg, 5)
	e := &ckpt.Encoder{}
	tr.Encode(e)
	payload := e.Payload()
	// Truncation at several depths: inside the config, inside a network,
	// inside the optimizers.
	for _, n := range []int{0, 8, 40, len(payload) / 3, len(payload) - 8} {
		if _, err := DecodeTrainer(ckpt.NewDecoder(payload[:n])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestDecodeReplayRejectsBadGeometry(t *testing.T) {
	rb := NewReplayBuffer(8)
	rnd := rand.New(rand.NewSource(9))
	for i := 0; i < 5; i++ {
		rb.Add(randomTransition(rnd, 2, 1))
	}
	good := &ckpt.Encoder{}
	rb.Encode(good)

	// Claim more live transitions than the cursor implies.
	bad := &ckpt.Encoder{}
	bad.Int(8) // capacity
	bad.Int(5) // next
	bad.Bool(false)
	bad.Int(7) // live — inconsistent with next=5, full=false
	if _, err := DecodeReplayBuffer(ckpt.NewDecoder(bad.Payload())); err == nil {
		t.Fatal("inconsistent live count accepted")
	}

	// Cursor out of range.
	bad = &ckpt.Encoder{}
	bad.Int(8)
	bad.Int(9)
	bad.Bool(false)
	bad.Int(0)
	if _, err := DecodeReplayBuffer(ckpt.NewDecoder(bad.Payload())); err == nil {
		t.Fatal("out-of-range cursor accepted")
	}
}
