package rl

import (
	"math"
	"math/rand"
	"testing"
)

func TestReplayBufferRing(t *testing.T) {
	rb := NewReplayBuffer(3)
	if rb.Len() != 0 {
		t.Fatalf("empty buffer Len = %d", rb.Len())
	}
	for i := 0; i < 5; i++ {
		rb.Add(Transition{Reward: float64(i)})
	}
	if rb.Len() != 3 {
		t.Fatalf("Len = %d, want 3", rb.Len())
	}
	// Entries 2,3,4 should remain.
	rng := rand.New(rand.NewSource(1))
	seen := map[float64]bool{}
	for i := 0; i < 200; i++ {
		for _, tr := range rb.Sample(rng, 3, nil) {
			seen[tr.Reward] = true
		}
	}
	for _, old := range []float64{0, 1} {
		if seen[old] {
			t.Fatalf("evicted transition %v still sampled", old)
		}
	}
	for _, cur := range []float64{2, 3, 4} {
		if !seen[cur] {
			t.Fatalf("live transition %v never sampled", cur)
		}
	}
}

func TestReplaySampleEmptyPanics(t *testing.T) {
	rb := NewReplayBuffer(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rb.Sample(rand.New(rand.NewSource(1)), 1, nil)
}

func TestActBounds(t *testing.T) {
	cfg := DefaultConfig(4, 3, 1)
	cfg.Hidden = []int{16, 16}
	tr := NewTrainer(cfg, 1)
	for i := 0; i < 100; i++ {
		s := []float64{float64(i), -1, 0.5, 2}
		a := tr.Act(s, true)
		if a[0] < -1 || a[0] > 1 || math.IsNaN(a[0]) {
			t.Fatalf("action %v out of bounds", a)
		}
	}
}

// A one-step bandit: reward = 1 - (a - target(s))^2. The optimal policy is
// a = target(s). TD3 should steer the deterministic policy toward it.
func TestTD3SolvesContinuousBandit(t *testing.T) {
	cfg := DefaultConfig(1, 1, 1)
	cfg.Hidden = []int{32, 32}
	cfg.Batch = 64
	cfg.ExploreNoise = 0.3
	tr := NewTrainer(cfg, 42)
	rb := NewReplayBuffer(10000)
	rng := rand.New(rand.NewSource(7))

	target := func(s float64) float64 { return 0.6 * s }

	for step := 0; step < 3000; step++ {
		s := rng.Float64()*2 - 1
		// Act returns trainer-owned scratch; copy before storing in replay.
		a := append([]float64(nil), tr.Act([]float64{s}, true)...)
		r := 1 - (a[0]-target(s))*(a[0]-target(s))
		rb.Add(Transition{
			Global: []float64{s}, State: []float64{s}, Action: a,
			Reward: r, NextGlobal: []float64{s}, NextState: []float64{s},
			Done: true,
		})
		if rb.Len() >= cfg.Batch {
			tr.Update(rb)
		}
	}

	var worst float64
	for _, s := range []float64{-0.8, -0.4, 0, 0.4, 0.8} {
		a := tr.Act([]float64{s}, false)[0]
		if d := math.Abs(a - target(s)); d > worst {
			worst = d
		}
	}
	if worst > 0.25 {
		t.Fatalf("policy error %.3f, want < 0.25", worst)
	}
}

// The critic should learn Q values: with done transitions, Q(s,a) should
// approach r.
func TestCriticLossDecreases(t *testing.T) {
	cfg := DefaultConfig(2, 2, 1)
	cfg.Hidden = []int{24, 24}
	cfg.Batch = 32
	tr := NewTrainer(cfg, 3)
	rb := NewReplayBuffer(5000)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		s := []float64{rng.Float64(), rng.Float64()}
		a := []float64{rng.Float64()*2 - 1}
		r := s[0] + a[0]*0.5
		rb.Add(Transition{Global: s, State: s, Action: a, Reward: r,
			NextGlobal: s, NextState: s, Done: true})
	}
	var first, last float64
	for i := 0; i < 400; i++ {
		tr.Update(rb)
		if i == 20 {
			first = tr.LastCriticLoss
		}
		last = tr.LastCriticLoss
	}
	if !(last < first) {
		t.Fatalf("critic loss did not decrease: first %.4f last %.4f", first, last)
	}
	if last > 0.05 {
		t.Fatalf("critic loss %.4f still high", last)
	}
}

// MADDPG rationale check: a critic given the global state achieves lower
// TD error than one blinded to it, when the reward depends on global
// information the local state lacks.
func TestGlobalCriticBeatsLocalOnGlobalReward(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	makeData := func() []Transition {
		var data []Transition
		for i := 0; i < 2000; i++ {
			local := []float64{rng.Float64()}
			global := []float64{rng.Float64()*2 - 1} // e.g. competitor throughput
			a := []float64{rng.Float64()*2 - 1}
			// Reward depends strongly on the global component.
			r := global[0]*2 + 0.2*a[0]
			data = append(data, Transition{Global: global, State: local,
				Action: a, Reward: r, NextGlobal: global, NextState: local, Done: true})
		}
		return data
	}
	trainLoss := func(globalDim int, strip bool) float64 {
		cfg := DefaultConfig(1, globalDim, 1)
		cfg.Hidden = []int{24, 24}
		cfg.Batch = 64
		tr := NewTrainer(cfg, 11)
		rb := NewReplayBuffer(4000)
		for _, d := range makeData() {
			if strip {
				d.Global = nil
				d.NextGlobal = nil
			}
			rb.Add(d)
		}
		var last float64
		for i := 0; i < 300; i++ {
			tr.Update(rb)
			last = tr.LastCriticLoss
		}
		return last
	}
	withGlobal := trainLoss(1, false)
	withoutGlobal := trainLoss(0, true)
	if !(withGlobal < withoutGlobal/4) {
		t.Fatalf("global critic loss %.4f not clearly below local-only %.4f", withGlobal, withoutGlobal)
	}
}

func TestUpdateSkipsWhenBufferSmall(t *testing.T) {
	cfg := DefaultConfig(1, 1, 1)
	cfg.Hidden = []int{8}
	tr := NewTrainer(cfg, 1)
	rb := NewReplayBuffer(100)
	rb.Add(Transition{Global: []float64{0}, State: []float64{0},
		Action: []float64{0}, NextGlobal: []float64{0}, NextState: []float64{0}})
	before := tr.Actor.Forward([]float64{0.5})[0]
	tr.Update(rb) // batch 192 > 1: no-op
	after := tr.Actor.Forward([]float64{0.5})[0]
	if before != after {
		t.Fatal("Update modified networks despite insufficient data")
	}
}
