// Package flowtrace records per-flow control-plane event logs — window
// updates, pacing changes, losses, monitor-period statistics — and writes
// them as CSV for offline analysis. It is the debugging instrument a CC
// research library needs when a figure looks wrong: instead of rerunning
// with printf, attach a Tracer and inspect the decision timeline.
package flowtrace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind classifies trace events.
type Kind int

// Event kinds.
const (
	KindCwnd Kind = iota
	KindPacing
	KindLoss
	KindMTP
	KindCustom
)

// String names the event kind as it appears in the CSV export.
func (k Kind) String() string {
	switch k {
	case KindCwnd:
		return "cwnd"
	case KindPacing:
		return "pacing"
	case KindLoss:
		return "loss"
	case KindMTP:
		return "mtp"
	case KindCustom:
		return "custom"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one recorded occurrence.
type Event struct {
	At     float64
	FlowID int
	Kind   Kind
	Value  float64 // kind-specific scalar (new cwnd, pacing bps, lost bytes…)
	Label  string  // optional free-form annotation
}

// Tracer accumulates events. It is safe for concurrent use (parallel
// training workers may share one).
type Tracer struct {
	mu     sync.Mutex
	events []Event
	// Cap bounds memory; once reached, new events are dropped and Dropped
	// counts them. Zero means unbounded.
	Cap     int
	Dropped int64
}

// Record appends an event.
func (t *Tracer) Record(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.Cap > 0 && len(t.events) >= t.Cap {
		t.Dropped++
		return
	}
	t.events = append(t.events, e)
}

// Recordf is shorthand for a labelled custom event.
func (t *Tracer) Recordf(at float64, flowID int, value float64, format string, args ...any) {
	t.Record(Event{At: at, FlowID: flowID, Kind: KindCustom, Value: value,
		Label: fmt.Sprintf(format, args...)})
}

// Len returns the number of stored events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the stored events sorted by time (stable for
// equal times).
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	out := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Filter returns the events of one flow and kind, time-sorted.
func (t *Tracer) Filter(flowID int, kind Kind) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.FlowID == flowID && e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// WriteCSV emits all events as time-sorted CSV with a header.
func (t *Tracer) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "time_s,flow,kind,value,label\n"); err != nil {
		return err
	}
	for _, e := range t.Events() {
		label := strings.ReplaceAll(e.Label, ",", ";")
		line := strings.Join([]string{
			strconv.FormatFloat(e.At, 'f', 6, 64),
			strconv.Itoa(e.FlowID),
			e.Kind.String(),
			strconv.FormatFloat(e.Value, 'g', -1, 64),
			label,
		}, ",")
		if _, err := io.WriteString(w, line+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// Series extracts (times, values) for one flow/kind, for plotting.
func (t *Tracer) Series(flowID int, kind Kind) (times, values []float64) {
	for _, e := range t.Filter(flowID, kind) {
		times = append(times, e.At)
		values = append(values, e.Value)
	}
	return times, values
}
