package flowtrace

import (
	"repro/internal/transport"
)

// Attach subscribes tracer to a flow's control-plane hooks: window changes,
// losses and MTP statistics are recorded with the flow's ID. Existing hooks
// on the flow are chained, not replaced.
func Attach(tracer *Tracer, f *transport.Flow) {
	id := f.ID
	prevCwnd := f.OnCwndHook
	f.OnCwndHook = func(now, cwnd float64) {
		tracer.Record(Event{At: now, FlowID: id, Kind: KindCwnd, Value: cwnd})
		if prevCwnd != nil {
			prevCwnd(now, cwnd)
		}
	}
	prevLoss := f.OnLossHook
	f.OnLossHook = func(e transport.LossEvent) {
		label := ""
		if e.Timeout {
			label = "rto"
		}
		tracer.Record(Event{At: e.Now, FlowID: id, Kind: KindLoss,
			Value: float64(e.Bytes), Label: label})
		if prevLoss != nil {
			prevLoss(e)
		}
	}
}
