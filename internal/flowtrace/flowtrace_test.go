package flowtrace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecordAndSort(t *testing.T) {
	tr := &Tracer{}
	tr.Record(Event{At: 2, FlowID: 0, Kind: KindCwnd, Value: 20})
	tr.Record(Event{At: 1, FlowID: 0, Kind: KindCwnd, Value: 10})
	tr.Record(Event{At: 3, FlowID: 1, Kind: KindLoss, Value: 1500})
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len %d", len(evs))
	}
	if evs[0].At != 1 || evs[1].At != 2 || evs[2].At != 3 {
		t.Fatalf("not sorted: %+v", evs)
	}
}

func TestFilterAndSeries(t *testing.T) {
	tr := &Tracer{}
	for i := 0; i < 5; i++ {
		tr.Record(Event{At: float64(i), FlowID: i % 2, Kind: KindCwnd, Value: float64(i * 10)})
	}
	flow0 := tr.Filter(0, KindCwnd)
	if len(flow0) != 3 {
		t.Fatalf("flow0 events %d", len(flow0))
	}
	times, values := tr.Series(1, KindCwnd)
	if len(times) != 2 || values[0] != 10 || values[1] != 30 {
		t.Fatalf("series %v %v", times, values)
	}
}

func TestCapDropsAndCounts(t *testing.T) {
	tr := &Tracer{Cap: 2}
	for i := 0; i < 5; i++ {
		tr.Record(Event{At: float64(i)})
	}
	if tr.Len() != 2 {
		t.Fatalf("len %d", tr.Len())
	}
	if tr.Dropped != 3 {
		t.Fatalf("dropped %d", tr.Dropped)
	}
}

func TestWriteCSV(t *testing.T) {
	tr := &Tracer{}
	tr.Record(Event{At: 0.5, FlowID: 1, Kind: KindPacing, Value: 1e6, Label: "a,b"})
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "time_s,flow,kind,value,label\n") {
		t.Fatalf("header missing:\n%s", got)
	}
	if !strings.Contains(got, "0.500000,1,pacing,1e+06,a;b") {
		t.Fatalf("row malformed:\n%s", got)
	}
}

func TestRecordf(t *testing.T) {
	tr := &Tracer{}
	tr.Recordf(1, 2, 3.5, "mode=%s", "competitive")
	evs := tr.Events()
	if evs[0].Kind != KindCustom || evs[0].Label != "mode=competitive" {
		t.Fatalf("%+v", evs[0])
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := &Tracer{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Record(Event{At: float64(i), FlowID: w})
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("len %d", tr.Len())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindCwnd: "cwnd", KindPacing: "pacing", KindLoss: "loss",
		KindMTP: "mtp", KindCustom: "custom", Kind(99): "kind(99)",
	} {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
}
