package flowtrace

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/transport"
)

func TestAttachRecordsFlowEvents(t *testing.T) {
	s := sim.New(1)
	d := netem.NewDumbbell(s, netem.DumbbellConfig{
		RateBps: 20e6, BaseRTT: 0.030, QueueBytes: 6 * transport.MSS,
	})
	f := transport.NewFlow(s, transport.FlowConfig{ID: 3, Path: d.FlowPath(0), CC: cc.MustNew("cubic")})
	tr := &Tracer{}
	Attach(tr, f)
	f.Start()
	s.Run(10)

	cwnds := tr.Filter(3, KindCwnd)
	if len(cwnds) == 0 {
		t.Fatal("no cwnd events recorded")
	}
	losses := tr.Filter(3, KindLoss)
	if len(losses) == 0 {
		t.Fatal("no loss events recorded on a 6-packet buffer")
	}
	// Loss events must coincide with window reductions: for each loss, the
	// next cwnd sample should eventually be lower than the previous peak.
	firstLoss := losses[0].At
	var before, after float64
	for _, e := range cwnds {
		if e.At < firstLoss {
			before = e.Value
		}
		if e.At >= firstLoss && after == 0 {
			after = e.Value
		}
	}
	if after >= before {
		t.Fatalf("cwnd did not drop across the first loss: %.1f -> %.1f", before, after)
	}
}

func TestAttachChainsExistingHooks(t *testing.T) {
	s := sim.New(1)
	d := netem.NewDumbbell(s, netem.DumbbellConfig{RateBps: 20e6, BaseRTT: 0.030, QueueBytes: 1 << 20})
	f := transport.NewFlow(s, transport.FlowConfig{ID: 0, Path: d.FlowPath(0), CC: cc.MustNew("cubic")})
	prior := 0
	f.OnCwndHook = func(now, cwnd float64) { prior++ }
	tr := &Tracer{}
	Attach(tr, f)
	f.Start()
	s.Run(2)
	if prior == 0 {
		t.Fatal("pre-existing hook was not chained")
	}
	if tr.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
}
