package telemetry

import "testing"

// The hot-path benchmarks back the acceptance criterion that enabled
// instruments stay at 0 allocs/op, and measure the enabled-vs-disabled cost
// quoted in DESIGN.md §7. scripts/ci.sh runs them in its benchmark smoke
// pass so they cannot silently rot.

func BenchmarkCounterInc(b *testing.B) {
	b.ReportAllocs()
	c := NewRegistry().Counter("c_total", "")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	b.ReportAllocs()
	var c *Counter // what an uninstrumented run holds
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	b.ReportAllocs()
	h := NewRegistry().Histogram("h", "", ExponentialBuckets(0.001, 2, 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.030)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	b.ReportAllocs()
	var h *Histogram
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.030)
	}
}

func BenchmarkGaugeAdd(b *testing.B) {
	b.ReportAllocs()
	g := NewRegistry().Gauge("g", "")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Add(1)
	}
}

func BenchmarkSnapshotPrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 20; i++ {
		r.Counter(fmtName("c", i), "").Add(int64(i))
	}
	h := r.Histogram("h", "", ExponentialBuckets(0.001, 2, 16))
	h.Observe(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink discard
		_ = r.Snapshot().WritePrometheus(&sink)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func fmtName(prefix string, i int) string {
	return prefix + "_" + string(rune('a'+i%26)) + "_total"
}
