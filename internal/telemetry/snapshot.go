package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// MetricKind discriminates the entries of a Snapshot.
type MetricKind string

// The metric kinds a Snapshot can carry.
const (
	KindCounter   MetricKind = "counter"
	KindGauge     MetricKind = "gauge"
	KindHistogram MetricKind = "histogram"
)

// Metric is one exported metric: a point-in-time copy of a counter, gauge,
// or histogram. Exactly one of the value groups is meaningful, selected by
// Kind.
type Metric struct {
	Name string     `json:"name"`
	Help string     `json:"help,omitempty"`
	Kind MetricKind `json:"kind"`

	// Counter/gauge value. Counters store the integral count; gauges the
	// float value.
	Count int64   `json:"count,omitempty"`
	Value float64 `json:"value,omitempty"`

	// Histogram fields: cumulative counts per upper bound (Prometheus
	// semantics), the implicit +Inf count being the last entry of Counts.
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
}

// Snapshot is a consistent-enough copy of a registry: each metric is read
// atomically, though the set is not a cross-metric transaction (a writer
// racing the snapshot may land in one counter but not its sibling). Order
// follows registration order, so exports are stable run to run.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot copies every registered metric's current value. Safe to call
// concurrently with writers and on a nil registry (empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make([]any, len(names))
	for i, n := range names {
		metrics[i] = r.byName[n]
	}
	r.mu.Unlock()

	s := Snapshot{Metrics: make([]Metric, 0, len(names))}
	for _, m := range metrics {
		switch m := m.(type) {
		case *Counter:
			s.Metrics = append(s.Metrics, Metric{
				Name: m.name, Help: m.help, Kind: KindCounter, Count: m.Value(),
			})
		case *Gauge:
			s.Metrics = append(s.Metrics, Metric{
				Name: m.name, Help: m.help, Kind: KindGauge, Value: m.Value(),
			})
		case *gaugeFunc:
			s.Metrics = append(s.Metrics, Metric{
				Name: m.name, Help: m.help, Kind: KindGauge, Value: m.fn(),
			})
		case *Histogram:
			counts := make([]int64, len(m.bounds)+1)
			for i := range m.bounds {
				counts[i] = m.counts[i].Load()
			}
			counts[len(m.bounds)] = m.inf.Load()
			s.Metrics = append(s.Metrics, Metric{
				Name: m.name, Help: m.help, Kind: KindHistogram,
				Bounds: append([]float64(nil), m.bounds...),
				Counts: counts,
				Sum:    m.Sum(),
			})
		}
	}
	return s
}

// Merge folds other into the registry: counters add, histograms add
// bucket-wise (creating the histogram with other's bounds if absent), and
// gauges take other's value. Merging is commutative for counters and
// histograms, so folding per-scenario registries in completion order yields
// the same totals as submission order.
func (r *Registry) Merge(other Snapshot) {
	if r == nil {
		return
	}
	for _, m := range other.Metrics {
		switch m.Kind {
		case KindCounter:
			r.Counter(m.Name, m.Help).Add(m.Count)
		case KindGauge:
			r.Gauge(m.Name, m.Help).Set(m.Value)
		case KindHistogram:
			h := r.Histogram(m.Name, m.Help, m.Bounds)
			if len(h.bounds) != len(m.Bounds) || len(m.Counts) != len(m.Bounds)+1 {
				continue // shape mismatch: drop rather than corrupt
			}
			for i := range m.Bounds {
				h.counts[i].Add(m.Counts[i])
			}
			h.inf.Add(m.Counts[len(m.Bounds)])
			for {
				old := h.sumBits.Load()
				next := math.Float64bits(math.Float64frombits(old) + m.Sum)
				if h.sumBits.CompareAndSwap(old, next) {
					break
				}
			}
		}
	}
}

// Get returns the metric named name, or false if the snapshot has none.
func (s Snapshot) Get(name string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, cumulative histogram buckets
// with le labels, and _sum/_count series.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, m := range s.Metrics {
		if m.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.Name, escapeHelp(m.Help))
		}
		switch m.Kind {
		case KindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", m.Name, m.Name, m.Count)
		case KindGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", m.Name, m.Name, formatFloat(m.Value))
		case KindHistogram:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", m.Name)
			var cum int64
			for i, bound := range m.Bounds {
				cum += m.Counts[i]
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.Name, formatFloat(bound), cum)
			}
			if n := len(m.Bounds); n < len(m.Counts) {
				cum += m.Counts[n]
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.Name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", m.Name, formatFloat(m.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", m.Name, cum)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders floats the way Prometheus expects: shortest
// round-trippable decimal.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp applies the text-format escaping rules for HELP lines
// (backslash and newline); a raw newline would otherwise terminate the
// comment mid-string and corrupt the exposition.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
