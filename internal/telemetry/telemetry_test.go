package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Fatal("re-registering a counter must return the same instance")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	// A nil registry hands out nil instruments and empty snapshots.
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", []float64{1}) != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	r.GaugeFunc("x", "", func() float64 { return 1 })
	r.Merge(Snapshot{Metrics: []Metric{{Name: "x", Kind: KindCounter, Count: 1}}})
	if len(r.Snapshot().Metrics) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "hist", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got, want := h.Sum(), 556.5; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	m, ok := r.Snapshot().Get("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// Per-bucket (non-cumulative) counts: ≤1: 2 (0.5, 1), ≤10: 1 (5),
	// ≤100: 1 (50), +Inf: 1 (500).
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if m.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, m.Counts[i], w, m.Counts)
		}
	}
}

func TestHistogramUnsortedBucketsAreSorted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{100, 1, 10})
	h.Observe(5)
	m, _ := r.Snapshot().Get("h")
	if m.Bounds[0] != 1 || m.Bounds[1] != 10 || m.Bounds[2] != 100 {
		t.Fatalf("bounds not sorted: %v", m.Bounds)
	}
	if m.Counts[1] != 1 {
		t.Fatalf("observation landed in wrong bucket: %v", m.Counts)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter's name must panic")
		}
	}()
	r.Gauge("m", "")
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("fn", "lazy", func() float64 { return v })
	v = 42
	m, ok := r.Snapshot().Get("fn")
	if !ok || m.Value != 42 {
		t.Fatalf("gauge func snapshot = %+v, want value 42", m)
	}
}

func TestPrometheusExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "requests served").Add(3)
	r.Gauge("occupancy", "replay occupancy").Set(0.5)
	h := r.Histogram("rtt_seconds", "rtt", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE requests_total counter\nrequests_total 3\n",
		"# TYPE occupancy gauge\noccupancy 0.5\n",
		`rtt_seconds_bucket{le="0.01"} 1`,
		`rtt_seconds_bucket{le="0.1"} 2`,
		`rtt_seconds_bucket{le="+Inf"} 3`,
		"rtt_seconds_sum 5.055",
		"rtt_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONExportRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(7)
	r.Histogram("h", "", []float64{1}).Observe(2)
	var b bytes.Buffer
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(b.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	m, ok := s.Get("a_total")
	if !ok || m.Count != 7 {
		t.Fatalf("round-trip lost counter: %+v", m)
	}
}

func TestMergeAddsCountersAndHistograms(t *testing.T) {
	mk := func() *Registry {
		r := NewRegistry()
		r.Counter("events_total", "").Add(10)
		h := r.Histogram("lat", "", []float64{1, 2})
		h.Observe(0.5)
		h.Observe(3)
		return r
	}
	parent := NewRegistry()
	parent.Merge(mk().Snapshot())
	parent.Merge(mk().Snapshot())
	if got := parent.Counter("events_total", "").Value(); got != 20 {
		t.Fatalf("merged counter = %d, want 20", got)
	}
	m, _ := parent.Snapshot().Get("lat")
	if m.Counts[0] != 2 || m.Counts[2] != 2 || m.Sum != 7 {
		t.Fatalf("merged histogram wrong: %+v", m)
	}
}

// TestMergeOrderInvariance pins the property the batch engine relies on:
// folding per-scenario registries in any completion order produces
// identical totals.
func TestMergeOrderInvariance(t *testing.T) {
	snaps := make([]Snapshot, 5)
	for i := range snaps {
		r := NewRegistry()
		r.Counter("n_total", "").Add(int64(i + 1))
		r.Histogram("h", "", []float64{2}).Observe(float64(i))
		snaps[i] = r.Snapshot()
	}
	forward, backward := NewRegistry(), NewRegistry()
	for i := range snaps {
		forward.Merge(snaps[i])
		backward.Merge(snaps[len(snaps)-1-i])
	}
	var fb, bb bytes.Buffer
	if err := forward.Snapshot().WritePrometheus(&fb); err != nil {
		t.Fatal(err)
	}
	if err := backward.Snapshot().WritePrometheus(&bb); err != nil {
		t.Fatal(err)
	}
	if fb.String() != bb.String() {
		t.Fatalf("merge order changed totals:\n%s\nvs\n%s", fb.String(), bb.String())
	}
}

// TestConcurrentSharedShape exercises the pattern parallel batch workers
// produce — many goroutines incrementing the same counters, gauges, and
// histogram buckets while another snapshots — and is the package's -race
// regression.
func TestConcurrentSharedShape(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Same metric names from every worker: shared-shape contention.
			c := r.Counter("scenarios_total", "")
			g := r.Gauge("inflight", "")
			h := r.Histogram("wall_seconds", "", []float64{0.001, 0.01, 0.1, 1})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 50)
				g.Add(-1)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			var b bytes.Buffer
			_ = r.Snapshot().WritePrometheus(&b)
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("scenarios_total", "").Value(); got != workers*perWorker {
		t.Fatalf("lost increments: %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("wall_seconds", "", nil).Count(); got != workers*perWorker {
		t.Fatalf("lost observations: %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("inflight", "").Value(); got != 0 {
		t.Fatalf("gauge CAS lost updates: %v, want 0", got)
	}
}

// TestHotPathAllocFree asserts the acceptance criterion directly: counter
// increments and histogram observes must not allocate.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", ExponentialBuckets(0.001, 2, 16))
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.02) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
	var nilC *Counter
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilC.Inc(); nilH.Observe(1) }); n != 0 {
		t.Fatalf("disabled instruments allocate %v/op", n)
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "").Inc()
	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "up_total 1") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Fatalf("linear buckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Fatalf("exponential buckets = %v", exp)
	}
}

// HELP text containing backslashes or newlines must be escaped per the
// Prometheus text-format rules; a raw newline would terminate the comment
// mid-string and corrupt every line after it.
func TestPrometheusHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "first line\nsecond line with a \\ backslash").Inc()
	r.Gauge("after", "must still parse").Set(1)

	var b bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if want := `# HELP weird_total first line\nsecond line with a \\ backslash` + "\n"; !strings.Contains(out, want) {
		t.Fatalf("escaped HELP missing:\n%s", out)
	}
	// Every line must be a comment, a sample, or empty — no line may start
	// mid-help.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "weird_total") && !strings.HasPrefix(line, "after") {
			t.Fatalf("orphaned exposition line %q:\n%s", line, out)
		}
	}
}
