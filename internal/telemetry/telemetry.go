// Package telemetry is a zero-dependency runtime metrics layer: a Registry
// of atomic counters, gauges, and fixed-bucket histograms that is
// allocation-free on hot paths, snapshotable at any instant, and exportable
// as Prometheus text format or JSON.
//
// The design follows two rules the emulation substrate imposes:
//
//   - Registries are per-run, never process-global. A Scenario, a training
//     run, or a batch sweep owns its Registry and threads it down through
//     the layers it builds (simulator, links, flows, inference service).
//     Parallel batch workers therefore never contend on each other's
//     metrics, and an uninstrumented run carries no telemetry state at all.
//
//   - Every instrument is nil-safe: calling Inc, Add, Set, or Observe on a
//     nil *Counter/*Gauge/*Histogram is a no-op costing one predictable
//     branch. Instrumented code holds plain pointer fields that stay nil
//     when no registry is attached, so the disabled path needs no
//     indirection, no interface dispatch, and no build tags.
//
// Metric values use atomics throughout, so a registry shared on purpose
// (e.g. batch-level progress gauges, or many flows of one scenario feeding
// one RTT histogram) tolerates concurrent writers and concurrent Snapshot
// calls, including under the race detector.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op sink.
type Counter struct {
	v    atomic.Int64
	name string
	help string
}

// Inc adds 1. Safe (and free) on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative to keep the counter monotonic; this is
// not enforced on the hot path). Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the metric name the counter was registered under.
func (c *Counter) Name() string { return c.name }

// Gauge is an atomic float64 that can go up and down. The zero value is
// ready to use; a nil *Gauge is a no-op sink.
type Gauge struct {
	bits atomic.Uint64
	name string
	help string
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta with a CAS loop. Safe on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Name returns the metric name the gauge was registered under.
func (g *Gauge) Name() string { return g.name }

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// each bucket counts observations ≤ its upper bound, plus an implicit +Inf
// bucket). Buckets are fixed at registration so Observe never allocates; a
// nil *Histogram is a no-op sink.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Int64
	inf     atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
	name    string
	help    string
}

// Observe records v into its bucket. Allocation-free; safe on a nil
// receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Branchless-ish linear scan: bucket counts are small (≤ ~30) and the
	// common observation lands early, so this beats binary search in
	// practice and keeps the code allocation-free.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64 = h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Name returns the metric name the histogram was registered under.
func (h *Histogram) Name() string { return h.name }

// LinearBuckets returns count upper bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	b := make([]float64, count)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExponentialBuckets returns count upper bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, count int) []float64 {
	b := make([]float64, count)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// gaugeFunc is a lazily evaluated gauge: its value is computed at snapshot
// time. Used for quantities owned elsewhere (e.g. process-wide packet-pool
// statistics) that would be wasteful to push on every change.
type gaugeFunc struct {
	name string
	help string
	fn   func() float64
}

// Registry owns a named set of metrics. Registration (Counter, Gauge,
// Histogram, GaugeFunc) is mutex-guarded and idempotent by name; the
// returned instruments are lock-free. The zero Registry is not usable — use
// NewRegistry. All methods are nil-safe: a nil *Registry returns nil
// instruments, which are themselves no-op sinks, so call sites can thread
// an optional registry without branching.
type Registry struct {
	mu     sync.Mutex
	order  []string // registration order, for stable export
	byName map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]any)}
}

// Counter returns the counter registered under name, creating it on first
// use. Panics if name is already registered as a different metric type.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
		}
		return c
	}
	c := &Counter{name: name, help: help}
	r.byName[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Panics if name is already registered as a different metric type.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
		}
		return g
	}
	g := &Gauge{name: name, help: help}
	r.byName[name] = g
	r.order = append(r.order, name)
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds (sorted copies; +Inf is implicit) on first
// use. Later calls ignore buckets and return the existing histogram. Panics
// if name is registered as a different metric type or buckets is empty.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
		}
		return h
	}
	if len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket", name))
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	h := &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)),
		name:   name,
		help:   help,
	}
	r.byName[name] = h
	r.order = append(r.order, name)
	return h
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time. Re-registering the same name replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; !ok {
		r.order = append(r.order, name)
	}
	r.byName[name] = &gaugeFunc{name: name, help: help, fn: fn}
}
