package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
)

// Serve starts an HTTP server on addr exposing the standard net/http/pprof
// profiling handlers under /debug/pprof/ and the registry as Prometheus
// text under /metrics (live: each scrape takes a fresh snapshot). It
// returns the bound address (useful with ":0") and a shutdown function, or
// an error if the listener cannot be opened. The server runs until close is
// called; serving errors after a successful start are ignored, as they can
// only occur during shutdown.
func Serve(addr string, reg *Registry) (bound string, close func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.Snapshot().WritePrometheus(w)
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// WriteFile snapshots the registry to path, choosing the format from the
// extension: ".json" writes JSON, anything else Prometheus text.
func WriteFile(path string, reg *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	snap := reg.Snapshot()
	if strings.HasSuffix(path, ".json") {
		err = snap.WriteJSON(f)
	} else {
		err = snap.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
