package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJainKnownValues(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 1, 1}, 1},
		{[]float64{50, 50}, 1},
		{[]float64{1, 0}, 0.5},
		{[]float64{1, 0, 0, 0}, 0.25},
		{nil, 1},
		{[]float64{0, 0}, 1},
	}
	for _, c := range cases {
		if got := Jain(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jain(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

// Property: Jain ∈ [1/n, 1], scale-invariant, maximized at equality.
func TestJainProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		allZero := true
		for i, r := range raw {
			xs[i] = float64(r)
			if r != 0 {
				allZero = false
			}
		}
		if allZero {
			return Jain(xs) == 1
		}
		j := Jain(xs)
		n := float64(len(xs))
		if j < 1/n-1e-12 || j > 1+1e-12 {
			return false
		}
		// Scale invariance.
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 3.7
		}
		return math.Abs(Jain(scaled)-j) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", sd)
	}
	if StdDev([]float64{1}) != 0 || StdDev(nil) != 0 {
		t.Fatal("degenerate StdDev should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {50, 30}, {100, 50}, {25, 20}, {75, 40}, {-5, 10}, {110, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestCDF(t *testing.T) {
	vals, fracs := CDF([]float64{3, 1, 2})
	if vals[0] != 1 || vals[2] != 3 {
		t.Fatalf("CDF vals %v", vals)
	}
	if fracs[2] != 1 {
		t.Fatalf("last CDF frac %v", fracs[2])
	}
}

func seriesOf(interval float64, vals ...float64) *Timeseries {
	return &Timeseries{Interval: interval, Values: vals}
}

func TestTimeseriesAtAndSlice(t *testing.T) {
	ts := seriesOf(1, 10, 20, 30, 40)
	if ts.At(-1) != 0 || ts.At(100) != 0 {
		t.Fatal("out-of-range At should be 0")
	}
	if ts.At(2.5) != 30 {
		t.Fatalf("At(2.5) = %v", ts.At(2.5))
	}
	sl := ts.Slice(1, 3)
	if len(sl) != 2 || sl[0] != 20 || sl[1] != 30 {
		t.Fatalf("Slice(1,3) = %v", sl)
	}
	if ts.Slice(3, 1) != nil {
		t.Fatal("inverted Slice should be nil")
	}
}

func TestConvergenceTime(t *testing.T) {
	// Ramps to 50 at t=5, stays.
	vals := make([]float64, 20)
	for i := range vals {
		if i >= 5 {
			vals[i] = 50
		} else {
			vals[i] = float64(i) * 10
		}
	}
	ts := seriesOf(1, vals...)
	ct := ConvergenceTime(ts, 0, 50, 0.1, 2)
	if math.Abs(ct-5) > 1e-9 {
		t.Fatalf("ConvergenceTime = %v, want 5", ct)
	}
	// Relative to a later event.
	ct = ConvergenceTime(ts, 3, 50, 0.1, 2)
	if math.Abs(ct-2) > 1e-9 {
		t.Fatalf("ConvergenceTime from t=3 = %v, want 2", ct)
	}
}

func TestConvergenceNeverReached(t *testing.T) {
	ts := seriesOf(1, 10, 10, 10, 10)
	if ct := ConvergenceTime(ts, 0, 100, 0.1, 1); ct != -1 {
		t.Fatalf("want -1, got %v", ct)
	}
	if ct := ConvergenceTime(ts, 0, 0, 0.1, 1); ct != -1 {
		t.Fatal("zero target must return -1")
	}
}

func TestConvergenceRequiresHold(t *testing.T) {
	// Touches the target briefly at t=2 but only holds from t=6.
	ts := seriesOf(1, 0, 0, 50, 0, 0, 0, 50, 50, 50, 50)
	ct := ConvergenceTime(ts, 0, 50, 0.1, 3)
	if math.Abs(ct-6) > 1e-9 {
		t.Fatalf("ConvergenceTime = %v, want 6 (hold required)", ct)
	}
}

func TestStabilityAfterConvergence(t *testing.T) {
	vals := []float64{0, 0, 50, 50, 50, 50, 50, 50}
	ts := seriesOf(1, vals...)
	st := StabilityAfterConvergence(ts, 0, 50, 0.1, 2, 8)
	if st != 0 {
		t.Fatalf("flat series stability %v, want 0", st)
	}
	if st := StabilityAfterConvergence(seriesOf(1, 0, 0, 0), 0, 50, 0.1, 1, 3); st != -1 {
		t.Fatalf("unconverged stability %v, want -1", st)
	}
}

func TestSmooth(t *testing.T) {
	ts := seriesOf(1, 0, 100, 0, 100, 0, 100)
	sm := Smooth(ts, 2)
	for i := 1; i < len(sm.Values)-1; i++ {
		if sm.Values[i] < 20 || sm.Values[i] > 80 {
			t.Fatalf("smoothed[%d] = %v, want damped toward 50", i, sm.Values[i])
		}
	}
	// Smoothing preserves the mean approximately.
	if math.Abs(Mean(sm.Values)-Mean(ts.Values)) > 10 {
		t.Fatal("smoothing shifted the mean")
	}
}

func TestJainOverTime(t *testing.T) {
	a := seriesOf(1, 50, 50, 0, 100)
	b := seriesOf(1, 50, 25, 0, 0)
	jains := JainOverTime([]*Timeseries{a, b}, 1)
	// t0: equal → 1; t1: 50/25 → <1; t2: none active; t3: only one active.
	if len(jains) != 2 {
		t.Fatalf("JainOverTime returned %d points, want 2", len(jains))
	}
	if jains[0] != 1 {
		t.Fatalf("first Jain %v", jains[0])
	}
	if jains[1] >= 1 {
		t.Fatalf("unequal Jain %v should be < 1", jains[1])
	}
}

func TestTimes(t *testing.T) {
	ts := &Timeseries{Interval: 0.5, Start: 1, Values: []float64{1, 2, 3}}
	times := ts.Times()
	want := []float64{1, 1.5, 2}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("Times() = %v", times)
		}
	}
}
