// Package metrics computes the evaluation quantities the paper reports:
// Jain's fairness index, convergence time (time to reach ±10% of the ideal
// fair share), post-convergence stability (throughput standard deviation),
// link utilization, and CDF/percentile helpers.
package metrics

import (
	"math"
	"sort"
)

// Jain computes Jain's fairness index of the given allocations:
// (sum x)^2 / (n * sum x^2). It is 1 for equal shares and 1/n when one
// participant takes everything. Zero-only inputs return 1 (no contention).
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) by linear interpolation.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF returns (sorted values, cumulative fractions) suitable for plotting.
func CDF(xs []float64) (vals, fracs []float64) {
	vals = append([]float64(nil), xs...)
	sort.Float64s(vals)
	fracs = make([]float64, len(vals))
	for i := range vals {
		fracs[i] = float64(i+1) / float64(len(vals))
	}
	return vals, fracs
}

// Timeseries is a regularly-sampled scalar signal.
type Timeseries struct {
	Interval float64 // seconds between samples
	Start    float64
	Values   []float64
}

// At returns the sample covering time t (0 outside the series).
func (ts *Timeseries) At(t float64) float64 {
	i := int((t - ts.Start) / ts.Interval)
	if i < 0 || i >= len(ts.Values) {
		return 0
	}
	return ts.Values[i]
}

// Slice returns the samples within [from, to).
func (ts *Timeseries) Slice(from, to float64) []float64 {
	lo := int(math.Ceil((from - ts.Start) / ts.Interval))
	hi := int((to - ts.Start) / ts.Interval)
	if lo < 0 {
		lo = 0
	}
	if hi > len(ts.Values) {
		hi = len(ts.Values)
	}
	if lo >= hi {
		return nil
	}
	return ts.Values[lo:hi]
}

// Times returns the timestamp of each sample.
func (ts *Timeseries) Times() []float64 {
	out := make([]float64, len(ts.Values))
	for i := range out {
		out[i] = ts.Start + float64(i)*ts.Interval
	}
	return out
}

// Smooth returns a centered moving average of the series with the given
// window in seconds (at least one sample). Used before convergence
// detection so sawtooth schemes are judged on their average rate, as the
// paper does.
func Smooth(ts *Timeseries, window float64) *Timeseries {
	k := int(window / ts.Interval)
	if k < 1 {
		k = 1
	}
	half := k / 2
	out := &Timeseries{Interval: ts.Interval, Start: ts.Start, Values: make([]float64, len(ts.Values))}
	for i := range ts.Values {
		lo := i - half
		hi := i + half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(ts.Values) {
			hi = len(ts.Values) - 1
		}
		var s float64
		for j := lo; j <= hi; j++ {
			s += ts.Values[j]
		}
		out.Values[i] = s / float64(hi-lo+1)
	}
	return out
}

// ConvergenceTime measures how long after eventTime the series stays within
// tolerance (fractional, e.g. 0.1) of target for at least holdFor seconds.
// It returns the delay from eventTime to the start of the first such
// window, or -1 if the series never converges before the end.
func ConvergenceTime(ts *Timeseries, eventTime, target, tolerance, holdFor float64) float64 {
	if target <= 0 {
		return -1
	}
	hold := int(holdFor / ts.Interval)
	if hold < 1 {
		hold = 1
	}
	startIdx := int(math.Ceil((eventTime - ts.Start) / ts.Interval))
	if startIdx < 0 {
		startIdx = 0
	}
	run := 0
	for i := startIdx; i < len(ts.Values); i++ {
		if math.Abs(ts.Values[i]-target) <= tolerance*target {
			run++
			if run >= hold {
				t := ts.Start + float64(i-run+1)*ts.Interval
				return t - eventTime
			}
		} else {
			run = 0
		}
	}
	return -1
}

// StabilityAfterConvergence returns the standard deviation of the series
// between convergence (per ConvergenceTime) and endTime, or -1 if it never
// converged.
func StabilityAfterConvergence(ts *Timeseries, eventTime, target, tolerance, holdFor, endTime float64) float64 {
	ct := ConvergenceTime(ts, eventTime, target, tolerance, holdFor)
	if ct < 0 {
		return -1
	}
	vals := ts.Slice(eventTime+ct, endTime)
	if len(vals) < 2 {
		return -1
	}
	return StdDev(vals)
}

// JainOverTime computes the Jain index at each sample where at least two of
// the flows are active (value > activeEps), as the paper does for Fig. 7.
func JainOverTime(series []*Timeseries, activeEps float64) []float64 {
	if len(series) == 0 {
		return nil
	}
	n := len(series[0].Values)
	var out []float64
	for i := 0; i < n; i++ {
		var active []float64
		for _, ts := range series {
			if i < len(ts.Values) && ts.Values[i] > activeEps {
				active = append(active, ts.Values[i])
			}
		}
		if len(active) >= 2 {
			out = append(out, Jain(active))
		}
	}
	return out
}
