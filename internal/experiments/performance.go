package experiments

import (
	"fmt"

	"repro/internal/runner"
)

// ExpFigure14 reproduces the TCP-friendliness experiment: one evaluated
// flow competing with 1..4 Cubic flows on 100 Mbps / 30 ms / 1 BDP; the
// metric is the evaluated flow's throughput over the mean Cubic throughput
// (1.0 = perfectly friendly).
func ExpFigure14(o Opts) *Table {
	t := &Table{
		ID:      "fig14",
		Title:   "TCP friendliness: throughput ratio to competing Cubic flows",
		Columns: []string{"scheme", "vs1_cubic", "vs2_cubic", "vs3_cubic", "vs4_cubic"},
	}
	dur := o.scale(60.0)
	trials := o.trials()
	var evalSchemes []string
	for _, scheme := range Schemes {
		if scheme != "cubic" {
			evalSchemes = append(evalSchemes, scheme)
		}
	}
	var grid []runner.Scenario
	for _, scheme := range evalSchemes {
		for n := 1; n <= 4; n++ {
			for trial := 0; trial < trials; trial++ {
				flows := []runner.FlowSpec{{Scheme: scheme}}
				for i := 0; i < n; i++ {
					flows = append(flows, runner.FlowSpec{Scheme: "cubic"})
				}
				grid = append(grid, runner.Scenario{
					Seed: int64(1400 + trial*10 + n), RateBps: 100e6, BaseRTT: 0.030,
					QueueBDP: 1, Duration: dur,
					Flows: flows,
				})
			}
		}
	}
	results := runAll(o, grid)
	idx := 0
	for _, scheme := range evalSchemes {
		row := []string{scheme}
		for n := 1; n <= 4; n++ {
			var ratioSum float64
			for trial := 0; trial < trials; trial++ {
				res := results[idx]
				idx++
				eval := res.Flows[0].AvgTputWindow(dur/4, dur)
				var cubicSum float64
				for _, fr := range res.Flows[1:] {
					cubicSum += fr.AvgTputWindow(dur/4, dur)
				}
				cubicAvg := cubicSum / float64(n)
				if cubicAvg > 0 {
					ratioSum += eval / cubicAvg
				} else {
					ratioSum += 100
				}
			}
			row = append(row, f2(ratioSum/float64(trials)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Note = "paper: Aurora/BBR 10-60x (hostile); Vivace/Vegas < 1 (starved); Astraea acceptable, above delay-based but far below BBR/Aurora"
	return t
}

// ExpFigure15 substitutes for the wild-Internet deployment: emulated WAN
// paths with stochastic cross-traffic and jitter, one short-RTT
// (intra-continental) and one long-RTT (inter-continental) class. Reported
// as overall average throughput vs one-way delay.
func ExpFigure15(o Opts) []*Table {
	classes := []struct {
		id, title string
		rtt       float64
		rate      float64
		crossBps  float64
	}{
		{"fig15a", "Intra-continental WAN (emulated, 30 ms, cross-traffic)", 0.030, 500e6, 150e6},
		{"fig15b", "Inter-continental WAN (emulated, 150 ms, cross-traffic)", 0.150, 1000e6, 200e6},
	}
	dur := o.scale(60.0)
	trials := o.trials()
	var grid []runner.Scenario
	for _, cl := range classes {
		for _, scheme := range Schemes {
			for trial := 0; trial < trials; trial++ {
				grid = append(grid, runner.Scenario{
					Seed: int64(1500 + trial), RateBps: cl.rate, BaseRTT: cl.rtt,
					QueueBDP: 2, Duration: dur,
					CrossBps: cl.crossBps, Jitter: 0.001,
					Flows: []runner.FlowSpec{{Scheme: scheme}},
				})
			}
		}
	}
	results := runAll(o, grid)
	idx := 0
	var tables []*Table
	for _, cl := range classes {
		t := &Table{
			ID:      cl.id,
			Title:   cl.title,
			Columns: []string{"scheme", "tput_mbps", "owd_ms", "loss"},
		}
		for _, scheme := range Schemes {
			var tputSum, owdSum, lossSum float64
			for trial := 0; trial < trials; trial++ {
				fr := results[idx].Flows[0]
				idx++
				tputSum += fr.AvgTputBps
				owdSum += fr.AvgRTT / 2
				lossSum += fr.LossRate
			}
			n := float64(trials)
			t.Rows = append(t.Rows, []string{
				scheme, mbps(tputSum / n), f1(owdSum / n * 1000), f4(lossSum / n),
			})
		}
		t.Note = "paper: Astraea defines the high-throughput/low-delay frontier; BBR highest throughput with inflated delay; Remy/Aurora/Orca underutilize"
		tables = append(tables, t)
	}
	return tables
}

// ExpFigure19 reproduces the buffer-size sweep (Appendix B.1): 100 Mbps,
// 30 ms, buffers from 0.1 to 16 BDP; throughput, latency inflation and loss
// per scheme.
func ExpFigure19(o Opts) []*Table {
	bufs := []float64{0.1, 0.5, 1, 2, 4, 8, 16}
	mk := func(id, title string) *Table {
		cols := []string{"scheme"}
		for _, b := range bufs {
			cols = append(cols, fmt.Sprintf("buf%g", b))
		}
		return &Table{ID: id, Title: title, Columns: cols}
	}
	tThr := mk("fig19a", "Normalized throughput vs buffer size (x BDP)")
	tLat := mk("fig19b", "Latency inflation (avgRTT/baseRTT) vs buffer size")
	tLoss := mk("fig19c", "Loss rate vs buffer size")

	dur := o.scale(40.0)
	trials := o.trials()
	var grid []runner.Scenario
	for _, scheme := range Schemes {
		for _, b := range bufs {
			for trial := 0; trial < trials; trial++ {
				grid = append(grid, runner.Scenario{
					Seed: int64(1900 + trial), RateBps: 100e6, BaseRTT: 0.030,
					QueueBDP: b, Duration: dur,
					Flows: []runner.FlowSpec{{Scheme: scheme}},
				})
			}
		}
	}
	results := runAll(o, grid)
	idx := 0
	for _, scheme := range Schemes {
		rowT := []string{scheme}
		rowL := []string{scheme}
		rowX := []string{scheme}
		for range bufs {
			var uSum, lSum, xSum float64
			for trial := 0; trial < trials; trial++ {
				res := results[idx]
				idx++
				fr := res.Flows[0]
				uSum += res.Utilization
				if fr.AvgRTT > 0 {
					lSum += fr.AvgRTT / 0.030
				}
				xSum += fr.LossRate
			}
			n := float64(trials)
			rowT = append(rowT, f3(uSum/n))
			rowL = append(rowL, f2(lSum/n))
			rowX = append(rowX, f4(xSum/n))
		}
		tThr.Rows = append(tThr.Rows, rowT)
		tLat.Rows = append(tLat.Rows, rowL)
		tLoss.Rows = append(tLoss.Rows, rowX)
	}
	tThr.Note = "paper: Astraea near-full utilization from 0.1 BDP; Orca needs ≥0.8 BDP"
	tLat.Note = "paper: BBR/Aurora inflate latency with buffer depth; Astraea stays low"
	tLoss.Note = "paper: Astraea near-lossless from 0.1 BDP"
	return []*Table{tThr, tLat, tLoss}
}

// ExpFigure20 reproduces the satellite-link experiment (Appendix B.2):
// 42 Mbps, 800 ms RTT, 1 BDP, 0.74% stochastic loss.
func ExpFigure20(o Opts) *Table {
	t := &Table{
		ID:      "fig20",
		Title:   "Satellite link (42 Mbps, 800 ms, 0.74% random loss)",
		Columns: []string{"scheme", "tput_mbps", "norm_delay", "loss"},
	}
	dur := o.scale(100.0)
	trials := o.trials()
	grid := make([]runner.Scenario, 0, len(Schemes)*trials)
	for _, scheme := range Schemes {
		for trial := 0; trial < trials; trial++ {
			grid = append(grid, runner.Scenario{
				Seed: int64(2000 + trial), RateBps: 42e6, BaseRTT: 0.800,
				QueueBDP: 1, LossProb: 0.0074, Duration: dur,
				Flows: []runner.FlowSpec{{Scheme: scheme}},
			})
		}
	}
	results := runAll(o, grid)
	for si, scheme := range Schemes {
		var tputSum, delaySum, lossSum float64
		for trial := 0; trial < trials; trial++ {
			fr := results[si*trials+trial].Flows[0]
			tputSum += fr.AvgTputBps
			delaySum += fr.AvgRTT / 0.800
			lossSum += fr.LossRate
		}
		n := float64(trials)
		t.Rows = append(t.Rows, []string{
			scheme, mbps(tputSum / n), f2(delaySum / n), f4(lossSum / n),
		})
	}
	t.Note = "paper: loss-reactive Cubic/Vegas/Orca collapse; Vivace/Copa/Aurora ignore loss and win throughput; Astraea moderate throughput, low delay"
	return t
}

// ExpFigure22 reproduces the 10 Gbps WAN experiment (Appendix B.4):
// 10 Gbps, 10 ms base RTT.
func ExpFigure22(o Opts) *Table {
	t := &Table{
		ID:      "fig22",
		Title:   "High-speed WAN (10 Gbps, 10 ms)",
		Columns: []string{"scheme", "tput_mbps", "avg_rtt_ms"},
	}
	dur := o.scale(20.0)
	grid := make([]runner.Scenario, len(Schemes))
	for i, scheme := range Schemes {
		grid[i] = runner.Scenario{
			Seed: 22, RateBps: 10e9, BaseRTT: 0.010,
			QueueBDP: 1, Duration: dur,
			Flows: []runner.FlowSpec{{Scheme: scheme}},
		}
	}
	results := runAll(o, grid)
	for si, scheme := range Schemes {
		fr := results[si].Flows[0]
		t.Rows = append(t.Rows, []string{scheme, mbps(fr.AvgTputBps), f2(fr.AvgRTT * 1000)})
	}
	t.Note = "paper: Astraea outruns Orca and Vivace via fast convergence to link bandwidth, with low latency"
	return t
}
