package experiments

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/trace"
)

// fairnessPenaltyOf exposes Eq. 6's R_fair for the Fig. 4 analysis.
func fairnessPenaltyOf(tputs []float64) float64 {
	return core.FairnessPenalty(tputs)
}

// ExpFigure12 reproduces the convergence-time vs stability scatter of
// §5.2: per scheme, the mean time for an arriving flow to reach ±10% of its
// fair share and the post-convergence throughput standard deviation.
func ExpFigure12(o Opts) *Table {
	t := &Table{
		ID:      "fig12",
		Title:   "Convergence time vs stability (Fig. 6 scenario)",
		Columns: []string{"scheme", "conv_time_s", "stability_mbps", "jain", "utilization"},
	}
	for _, cs := range convergenceStatsAll(o, Schemes, 3) {
		scheme := cs.Scheme
		conv := "never"
		if cs.ConvTime >= 0 {
			conv = f3(cs.ConvTime)
		}
		stab := "-"
		if cs.Stab >= 0 {
			stab = f2(cs.Stab / 1e6)
		}
		t.Rows = append(t.Rows, []string{scheme, conv, stab, f3(cs.Jain), f3(cs.Util)})
	}
	t.Note = "paper: Astraea 0.408 s / 2.124 Mbps; Orca 1.497 s / 5.519; Vivace 3.438 s / 6.016"
	return t
}

// ExpFigure13 reproduces the cellular responsiveness timeseries: Astraea
// vs Vivace over the synthetic LTE trace (40 ms RTT, deep buffer).
func ExpFigure13(o Opts) []*Table {
	dur := o.scale(60.0)
	rng := rand.New(rand.NewSource(13))
	// The trace is read-only once built, so both scenarios share it safely
	// across concurrent simulators.
	tr := trace.Cellular(trace.DefaultCellular(), dur, rng)

	schemes := []string{"astraea", "vivace"}
	grid := make([]runner.Scenario, len(schemes))
	for i, scheme := range schemes {
		grid[i] = runner.Scenario{
			Seed: 13, RateBps: tr.RateAt(0), BaseRTT: 0.040,
			QueueBytes: 8_000_000, Duration: dur, Trace: tr,
			Flows: []runner.FlowSpec{{Scheme: scheme}},
		}
	}
	results := runAll(o, grid)
	var tables []*Table
	for si, scheme := range schemes {
		res := results[si]
		t := &Table{
			ID:      "fig13-" + scheme,
			Title:   "Cellular link adaptation: " + scheme + " (synthetic LTE trace)",
			Columns: []string{"time_s", "capacity_mbps", "tput_mbps", "rtt_ms"},
		}
		fr := res.Flows[0]
		for i := 0; i < len(fr.Tput.Values); i += 10 {
			tm := float64(i) * fr.Tput.Interval
			t.Rows = append(t.Rows, []string{
				f1(tm), mbps(tr.RateAt(tm)), mbps(fr.Tput.Values[i]), f1(fr.RTT.Values[i] * 1000),
			})
		}
		t.Note = "utilization=" + f3(res.Utilization) + " avgRTT(ms)=" + f1(fr.AvgRTT*1000)
		tables = append(tables, t)
	}
	return tables
}

// ExpFigure21 reproduces the cellular throughput-vs-normalized-delay
// statistics for every scheme over the LTE trace.
func ExpFigure21(o Opts) *Table {
	t := &Table{
		ID:      "fig21",
		Title:   "Cellular link (LTE trace): avg throughput vs normalized delay",
		Columns: []string{"scheme", "tput_mbps", "norm_delay", "loss"},
	}
	dur := o.scale(60.0)
	trials := o.trials()
	// One trace per trial, built once and shared read-only by every scheme
	// (the serial code rebuilt an identical trace per scheme × trial).
	traces := make([]*trace.Trace, trials)
	for trial := range traces {
		rng := rand.New(rand.NewSource(int64(2100 + trial)))
		traces[trial] = trace.Cellular(trace.DefaultCellular(), dur, rng)
	}
	grid := make([]runner.Scenario, 0, len(Schemes)*trials)
	for _, scheme := range Schemes {
		for trial := 0; trial < trials; trial++ {
			grid = append(grid, runner.Scenario{
				Seed: int64(trial), RateBps: traces[trial].RateAt(0), BaseRTT: 0.040,
				QueueBytes: 8_000_000, Duration: dur, Trace: traces[trial],
				Flows: []runner.FlowSpec{{Scheme: scheme}},
			})
		}
	}
	results := runAll(o, grid)
	for si, scheme := range Schemes {
		var tputSum, delaySum, lossSum float64
		for trial := 0; trial < trials; trial++ {
			fr := results[si*trials+trial].Flows[0]
			tputSum += fr.AvgTputBps
			if fr.MinRTT > 0 {
				delaySum += fr.AvgRTT / 0.040
			}
			lossSum += fr.LossRate
		}
		n := float64(trials)
		t.Rows = append(t.Rows, []string{
			scheme, mbps(tputSum / n), f2(delaySum / n), f4(lossSum / n),
		})
	}
	t.Note = "paper: Astraea holds high throughput with low latency inflation; Aurora/Vivace pay heavy delay; Copa/Vegas sacrifice utilization"
	return t
}

// ExpFigure4 reproduces the Jain-saturation analysis: two flows summing to
// 100 Mbps; compare the Jain index against Astraea's 1 - R_fair as their
// throughput gap widens. Pure computation — no simulation.
func ExpFigure4(o Opts) *Table {
	t := &Table{
		ID:      "fig4",
		Title:   "Jain index saturates near equality; Astraea's fairness reward does not",
		Columns: []string{"gap_mbps", "jain", "one_minus_rfair"},
	}
	for gap := 0.0; gap <= 100.0001; gap += 10 {
		a := (100 + gap) / 2
		b := (100 - gap) / 2
		jain := metrics.Jain([]float64{a, b})
		rfair := fairnessPenaltyOf([]float64{a, b})
		t.Rows = append(t.Rows, []string{f1(gap), f4(jain), f4(1 - rfair)})
	}
	t.Note = "paper: from gap 0→20 Mbps, Jain falls only 0.038 while Astraea's reward falls ~0.19"
	return t
}
