package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
)

// ExpFigure16 reproduces the overhead study (§5.4). Part (a) measures
// per-decision inference cost of the policy network; part (b) contrasts the
// paper's two serving architectures under concurrent flows: per-flow
// inference servers (each flow pays a full model evaluation under its own
// lock, as Orca's per-flow server instances do) versus Astraea's shared
// batch service.
func ExpFigure16(o Opts) []*Table {
	cfg := core.DefaultConfig()
	rng := rand.New(rand.NewSource(16))
	// A paper-sized actor (256/128/64) for realistic per-inference cost.
	net := nn.NewMLP(rng, nn.ReLU, nn.Tanh, cfg.StateDim(), 256, 128, 64, 1)
	policy := &core.MLPPolicy{Net: net}
	state := make([]float64, cfg.StateDim())
	for i := range state {
		state[i] = rng.Float64()
	}

	// Part (a): single-decision latency, float actor vs its fixed-point
	// compilation (the serving default; DESIGN.md §12).
	ta := &Table{
		ID:      "fig16a",
		Title:   "Per-decision inference cost (256/128/64 MLP actor)",
		Columns: []string{"metric", "value"},
	}
	qpolicy, err := core.QuantizeMLPPolicy(policy, cfg)
	if err != nil {
		panic(err) // shape is valid by construction
	}
	const reps = 2000
	start := time.Now()
	for i := 0; i < reps; i++ {
		policy.Action(state)
	}
	perInfer := time.Since(start) / reps
	start = time.Now()
	for i := 0; i < reps; i++ {
		qpolicy.Action(state)
	}
	perInferQ := time.Since(start) / reps
	ta.Rows = append(ta.Rows,
		[]string{"per_inference_float", perInfer.String()},
		[]string{"per_inference_quantized", perInferQ.String()},
		[]string{"quantized_speedup", f2(float64(perInfer) / float64(perInferQ))},
		[]string{"decisions_per_core_per_sec_float", fmt.Sprintf("%.0f", float64(time.Second)/float64(perInfer))},
		[]string{"decisions_per_core_per_sec_quantized", fmt.Sprintf("%.0f", float64(time.Second)/float64(perInferQ))},
		[]string{"decisions_needed_per_flow_per_sec(MTP 30ms)", "33"},
	)
	ta.Note = "paper: Astraea's C++ service cuts CPU 30% vs Orca; the quantized rows are this repo's deployment-form saving on top (part (b) contrasts the serving architectures)"

	// Part (b): serving architectures under concurrency.
	tb := &Table{
		ID:      "fig16b",
		Title:   "Scalability: total serving time for one decision round per flow",
		Columns: []string{"flows", "per_flow_servers", "batch_service", "speedup"},
	}
	for _, n := range []int{10, 50, 100, 500, 1000} {
		perFlow := timePerFlowServers(cfg, n, state, rng)
		batch := timeBatchService(o, cfg, policy, n, state)
		t := "-"
		if batch > 0 {
			t = f2(float64(perFlow) / float64(batch))
		}
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprint(n), perFlow.String(), batch.String(), t,
		})
	}
	tb.Note = "paper: Orca's per-flow servers scale linearly and exhaust an 80-core box before 1000 flows; the batch service scales sub-linearly"
	return []*Table{ta, tb}
}

// timePerFlowServers emulates the per-flow-server architecture: every flow
// owns a mutex-guarded model instance; a decision round evaluates each
// model, paying per-instance synchronization and cold caches.
func timePerFlowServers(cfg core.Config, n int, state []float64, rng *rand.Rand) time.Duration {
	type server struct {
		mu  sync.Mutex
		net *nn.MLP
	}
	servers := make([]*server, n)
	base := nn.NewMLP(rng, nn.ReLU, nn.Tanh, cfg.StateDim(), 256, 128, 64, 1)
	for i := range servers {
		servers[i] = &server{net: base.Clone()}
	}
	start := time.Now()
	var wg sync.WaitGroup
	for _, sv := range servers {
		wg.Add(1)
		go func(sv *server) {
			defer wg.Done()
			sv.mu.Lock()
			sv.net.Forward(state)
			sv.mu.Unlock()
		}(sv)
	}
	wg.Wait()
	return time.Since(start)
}

// timeBatchService routes the same decision round through one shared batch
// service. With telemetry attached, the service's batch-size and queue-wait
// histograms land in the experiment registry — the Fig. 16b observability.
func timeBatchService(o Opts, cfg core.Config, policy core.Policy, n int, state []float64) time.Duration {
	svc := core.NewService(cfg, policy)
	svc.BatchWindow = 500 * time.Microsecond
	svc.MaxBatch = n
	if o.Telemetry != nil {
		svc.Instrument(o.Telemetry)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc.Infer(state)
		}()
	}
	wg.Wait()
	svc.Close()
	return time.Since(start)
}
