package experiments

import (
	"repro/internal/runner"
)

// ExpCoexistenceMatrix extends the paper's TCP-friendliness study to every
// scheme pair: entry (row, col) is the bandwidth share the row scheme
// obtains when one row-flow and one col-flow share a 100 Mbps / 30 ms /
// 1 BDP bottleneck (0.5 = perfectly fair coexistence). It generalizes
// Fig. 14's Cubic column and makes cross-scheme aggression visible at a
// glance.
func ExpCoexistenceMatrix(o Opts) *Table {
	schemes := []string{"cubic", "vegas", "bbr", "copa", "vivace", "orca", "astraea"}
	t := &Table{
		ID:      "coexistence",
		Title:   "Pairwise coexistence: row scheme's bandwidth share vs column scheme",
		Columns: append([]string{"scheme"}, schemes...),
	}
	dur := o.scale(60.0)
	trials := o.trials()
	grid := make([]runner.Scenario, 0, len(schemes)*len(schemes)*trials)
	for _, row := range schemes {
		for _, col := range schemes {
			for trial := 0; trial < trials; trial++ {
				grid = append(grid, runner.Scenario{
					Seed: int64(2600 + trial), RateBps: 100e6, BaseRTT: 0.030,
					QueueBDP: 1, Duration: dur,
					Flows: []runner.FlowSpec{
						{Scheme: row},
						{Scheme: col},
					},
				})
			}
		}
	}
	results := runAll(o, grid)
	idx := 0
	for _, row := range schemes {
		cells := []string{row}
		for range schemes {
			var shareSum float64
			for trial := 0; trial < trials; trial++ {
				res := results[idx]
				idx++
				a := res.Flows[0].AvgTputWindow(dur/4, dur)
				b := res.Flows[1].AvgTputWindow(dur/4, dur)
				if a+b > 0 {
					shareSum += a / (a + b)
				} else {
					shareSum += 0.5
				}
			}
			cells = append(cells, f2(shareSum/float64(trials)))
		}
		t.Rows = append(t.Rows, cells)
	}
	t.Note = "0.50 = fair share; diagonal = intra-scheme fairness; row > 0.5 means the row scheme dominates the column scheme"
	return t
}
