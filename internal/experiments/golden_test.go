package experiments

import (
	"hash/fnv"
	"testing"
)

// tableDigest folds a table's identity, columns and cells into FNV-64a with
// positional separators (Note excluded: it may carry commentary).
func tableDigest(t *Table) uint64 {
	h := fnv.New64a()
	h.Write([]byte(t.ID))
	for _, c := range t.Columns {
		h.Write([]byte{0})
		h.Write([]byte(c))
	}
	for _, row := range t.Rows {
		h.Write([]byte{1})
		for _, cell := range row {
			h.Write([]byte{2})
			h.Write([]byte(cell))
		}
	}
	return h.Sum64()
}

// Pre-refactor golden digests, captured at commit 18e70a6 immediately before
// the RewardStrategy interface was extracted. The default (paper) strategy
// must keep these reward-consuming experiments digest-identical: any drift
// here means the refactor changed the numbers, not just the plumbing.
const (
	goldenFig4Digest  uint64 = 0x9ef89f636b8b1c1e
	goldenFig18Digest uint64 = 0xe0ae3827f7651edf
)

func TestFigure4GoldenDigest(t *testing.T) {
	if got := tableDigest(ExpFigure4(Opts{})); got != goldenFig4Digest {
		t.Fatalf("fig4 digest %#x, want pre-refactor golden %#x", got, goldenFig4Digest)
	}
}

func TestFigure18GoldenDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed golden")
	}
	got := tableDigest(ExpFigure18(Opts{Trials: 1, TimeScale: 0.25}))
	if got != goldenFig18Digest {
		t.Fatalf("fig18 digest %#x, want pre-refactor golden %#x", got, goldenFig18Digest)
	}
}
