package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// Experiment tests assert the qualitative shape of each result — who wins,
// in which direction — at reduced scale. Absolute numbers live in
// EXPERIMENTS.md from full-scale runs.

func quick() Opts { return Opts{Trials: 1, TimeScale: 0.25} }

func cell(t *testing.T, tb *Table, row int, col string) string {
	t.Helper()
	for i, c := range tb.Columns {
		if c == col {
			return tb.Rows[row][i]
		}
	}
	t.Fatalf("table %s has no column %q (have %v)", tb.ID, col, tb.Columns)
	return ""
}

func cellF(t *testing.T, tb *Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tb, row, col), 64)
	if err != nil {
		t.Fatalf("table %s cell %q not numeric: %v", tb.ID, col, err)
	}
	return v
}

func rowOf(t *testing.T, tb *Table, name string) int {
	t.Helper()
	for i, r := range tb.Rows {
		if r[0] == name {
			return i
		}
	}
	t.Fatalf("table %s has no row %q", tb.ID, name)
	return -1
}

func TestFigure1aAuroraUnfair(t *testing.T) {
	tb := ExpFigure1a(quick())
	if !strings.Contains(tb.Note, "share") {
		t.Fatalf("note: %s", tb.Note)
	}
	// The note carries the share; parse it out of the formatted text.
	var share, jain float64
	if _, err := fmtSscanf(tb.Note, &share, &jain); err != nil {
		t.Fatalf("cannot parse note %q: %v", tb.Note, err)
	}
	if share > 0.25 {
		t.Fatalf("second Aurora flow got %.2f of bandwidth; should be starved", share)
	}
}

// fmtSscanf pulls the two floats out of the Fig. 1a note.
func fmtSscanf(note string, share, jain *float64) (int, error) {
	cleaned := strings.NewReplacer("=", " ", ";", " ", ":", " ").Replace(note)
	fields := strings.Fields(cleaned)
	var got []float64
	for _, f := range fields {
		if v, err := strconv.ParseFloat(f, 64); err == nil {
			got = append(got, v)
		}
	}
	if len(got) < 2 {
		return 0, strconv.ErrSyntax
	}
	*share, *jain = got[0], got[len(got)-1]
	return 2, nil
}

func TestFigure4JainSaturates(t *testing.T) {
	tb := ExpFigure4(Opts{})
	// Row 0: gap 0; row 2: gap 20.
	jain0 := cellF(t, tb, 0, "jain")
	jain20 := cellF(t, tb, 2, "jain")
	rfair0 := cellF(t, tb, 0, "one_minus_rfair")
	rfair20 := cellF(t, tb, 2, "one_minus_rfair")
	if jain0 != 1 || rfair0 != 1 {
		t.Fatalf("equal split should score 1/1, got %v/%v", jain0, rfair0)
	}
	jainDrop := jain0 - jain20
	rfairDrop := rfair0 - rfair20
	if !(rfairDrop > 2*jainDrop) {
		t.Fatalf("R_fair drop %.3f not clearly above Jain drop %.3f (paper: 0.19 vs 0.038)",
			rfairDrop, jainDrop)
	}
	if jainDrop > 0.06 {
		t.Fatalf("Jain drop %.3f too large; saturation claim violated", jainDrop)
	}
}

func TestFigure17MonotoneAndOrderedEquilibria(t *testing.T) {
	tb := ExpFigure17(Opts{})
	delayCols := []string{"delay41ms", "delay44ms", "delay48ms", "delay56ms", "delay72ms"}
	prevEq := -1.0
	for r := range tb.Rows {
		prev := 2.0
		for _, c := range delayCols {
			a := cellF(t, tb, r, c)
			if a > prev+1e-9 {
				t.Fatalf("row %d: action not decreasing in delay", r)
			}
			prev = a
		}
		// Fairness requires the equilibrium delay to be ordered across
		// throughputs: at the shared queueing delay, the faster flow must
		// sit in its shrink region and the slower flow in its grow region,
		// i.e. equilibrium delay strictly decreasing with current
		// throughput. (See the table note on the paper's prose.)
		eq := cellF(t, tb, r, "equilibrium_ms")
		if prevEq > 0 && eq >= prevEq {
			t.Fatalf("equilibrium delay not strictly ordered across bandwidths: %v after %v", eq, prevEq)
		}
		prevEq = eq
	}
}

func TestFigure11MaxMinShape(t *testing.T) {
	tb := ExpFigure11(Opts{Trials: 1, TimeScale: 0.4})
	for r := range tb.Rows {
		fs1 := cellF(t, tb, r, "fs1_avg_mbps")
		fs1Ideal := cellF(t, tb, r, "fs1_ideal")
		fs2 := cellF(t, tb, r, "fs2_avg_mbps")
		fs2Ideal := cellF(t, tb, r, "fs2_ideal")
		if relErr(fs1, fs1Ideal) > 0.35 {
			t.Errorf("row %d: FS-1 %.1f vs ideal %.1f", r, fs1, fs1Ideal)
		}
		if relErr(fs2, fs2Ideal) > 0.35 {
			t.Errorf("row %d: FS-2 %.1f vs ideal %.1f", r, fs2, fs2Ideal)
		}
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

func TestFigure16BatchServiceWins(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("wall-clock contrast is not meaningful under the race detector")
	}
	tables := ExpFigure16(Opts{})
	tb := tables[1]
	// At 500+ flows the batch service must beat per-flow servers.
	last := len(tb.Rows) - 1
	speedup := cellF(t, tb, last, "speedup")
	if speedup < 1 {
		t.Fatalf("batch service slower than per-flow servers at scale: %vx", speedup)
	}
}

func TestFigure18FairnessRobustAcrossKnob(t *testing.T) {
	tb := ExpFigure18(Opts{Trials: 1, TimeScale: 0.25})
	for r := range tb.Rows {
		if j := cellF(t, tb, r, "jain"); j < 0.85 {
			t.Errorf("delta=%s Jain %.3f — fairness should be knob-robust", tb.Rows[r][0], j)
		}
	}
}

func TestFigure20SatelliteShape(t *testing.T) {
	tb := ExpFigure20(Opts{Trials: 1, TimeScale: 0.3})
	// Loss-reactive Cubic must deliver far less than loss-resilient BBR.
	cubic := cellF(t, tb, rowOf(t, tb, "cubic"), "tput_mbps")
	bbr := cellF(t, tb, rowOf(t, tb, "bbr"), "tput_mbps")
	astraea := cellF(t, tb, rowOf(t, tb, "astraea"), "tput_mbps")
	if cubic > bbr/2 {
		t.Errorf("cubic %.1f Mbps vs bbr %.1f on lossy satellite — cubic should collapse", cubic, bbr)
	}
	if astraea < cubic {
		t.Errorf("astraea %.1f below loss-reactive cubic %.1f", astraea, cubic)
	}
}

func TestFigure14FriendlinessOrdering(t *testing.T) {
	tb := ExpFigure14(Opts{Trials: 1, TimeScale: 0.4})
	aurora := cellF(t, tb, rowOf(t, tb, "aurora"), "vs1_cubic")
	astraea := cellF(t, tb, rowOf(t, tb, "astraea"), "vs1_cubic")
	vegas := cellF(t, tb, rowOf(t, tb, "vegas"), "vs1_cubic")
	if aurora < 3 {
		t.Errorf("aurora friendliness ratio %.1f; should be hostile (≫1)", aurora)
	}
	if astraea > aurora {
		t.Errorf("astraea (%.2f) should be less hostile than aurora (%.2f)", astraea, aurora)
	}
	if vegas > 1.5 {
		t.Errorf("vegas ratio %.2f; delay-based schemes lose to cubic", vegas)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID: "x", Title: "T", Columns: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}, {"333", "4"}},
		Note: "n",
	}
	s := tb.String()
	if !strings.Contains(s, "== x: T ==") || !strings.Contains(s, "-- n") {
		t.Fatalf("rendering:\n%s", s)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n333,4\n") {
		t.Fatalf("csv:\n%s", csv)
	}
}
