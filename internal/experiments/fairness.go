package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/transport"
)

// convStats bundles the convergence measurements of §5.1.1/§5.2 for one
// scheme on the canonical three-staggered-flows scenario.
type convStats struct {
	Scheme   string
	Jain     float64 // mean Jain index over timeslots with ≥2 active flows
	ConvTime float64 // mean time to ±10% of fair share after flow events (-1: never)
	Stab     float64 // mean post-convergence stddev of the newest flow
	Util     float64
}

// convergenceStatsAll runs the Fig. 6 scenario (100 Mbps, 30 ms, 1 BDP;
// flows staggered 40 s apart for 120 s each) for every listed scheme at
// once, averaged over the configured trials. The full scheme × trial grid
// is submitted to the batch engine up front.
func convergenceStatsAll(o Opts, schemes []string, nFlows int) []convStats {
	interval := o.scale(40.0)
	flowDur := o.scale(120.0)
	dur := float64(nFlows-1)*interval + flowDur
	trials := o.trials()

	grid := make([]runner.Scenario, 0, len(schemes)*trials)
	for _, scheme := range schemes {
		for trial := 0; trial < trials; trial++ {
			grid = append(grid, runner.Scenario{
				Seed: int64(1000 + trial), RateBps: 100e6, BaseRTT: 0.030,
				QueueBDP: 1, Duration: dur,
				Flows: staggeredFlows(scheme, nFlows, interval, flowDur),
			})
		}
	}
	results := runAll(o, grid)

	out := make([]convStats, len(schemes))
	for si, scheme := range schemes {
		var jainSum, convSum, stabSum, utilSum float64
		var convN, stabN int
		for trial := 0; trial < trials; trial++ {
			res := results[si*trials+trial]
			jains := metrics.JainOverTime(tputSeries(res), 1e6)
			jainSum += metrics.Mean(jains)
			utilSum += res.Utilization

			// Convergence of each arriving flow toward its fair share at the
			// moment all earlier flows are present. The rate is smoothed over
			// 1 s first so sawtooth schemes are judged on their average rate.
			for i := 1; i < nFlows; i++ {
				event := float64(i) * interval
				fair := 100e6 / float64(i+1)
				smoothed := metrics.Smooth(res.Flows[i].Tput, 1.0)
				ct := metrics.ConvergenceTime(smoothed, event, fair, 0.10, 0.5)
				if ct >= 0 {
					convSum += ct
					convN++
					end := event + interval
					if end > dur {
						end = dur
					}
					if st := metrics.StdDev(res.Flows[i].Tput.Slice(event+ct, end)); st > 0 {
						stabSum += st
						stabN++
					}
				}
			}
		}
		cs := convStats{Scheme: scheme}
		cs.Jain = jainSum / float64(trials)
		cs.Util = utilSum / float64(trials)
		if convN > 0 {
			cs.ConvTime = convSum / float64(convN)
		} else {
			cs.ConvTime = -1
		}
		if stabN > 0 {
			cs.Stab = stabSum / float64(stabN)
		} else {
			cs.Stab = -1
		}
		out[si] = cs
	}
	return out
}

// ExpFigure6 reproduces the temporal-convergence panels: per-scheme
// timeseries of three staggered flows on 100 Mbps / 30 ms / 1 BDP.
func ExpFigure6(o Opts) []*Table {
	interval := o.scale(40.0)
	flowDur := o.scale(120.0)
	dur := 2*interval + flowDur
	grid := make([]runner.Scenario, len(Schemes))
	for i, scheme := range Schemes {
		grid[i] = runner.Scenario{
			Seed: 6, RateBps: 100e6, BaseRTT: 0.030, QueueBDP: 1, Duration: dur,
			Flows: staggeredFlows(scheme, 3, interval, flowDur),
		}
	}
	results := runAll(o, grid)
	var tables []*Table
	for si, scheme := range Schemes {
		res := results[si]
		t := &Table{
			ID:      "fig6-" + scheme,
			Title:   fmt.Sprintf("Temporal convergence of %s (100 Mbps, 30 ms, 1 BDP)", scheme),
			Columns: []string{"time_s", "flow1_mbps", "flow2_mbps", "flow3_mbps"},
		}
		for i := 0; i < len(res.Flows[0].Tput.Values); i += 20 {
			tm := float64(i) * res.Flows[0].Tput.Interval
			t.Rows = append(t.Rows, []string{
				f1(tm),
				mbps(res.Flows[0].Tput.Values[i]),
				mbps(res.Flows[1].Tput.Values[i]),
				mbps(res.Flows[2].Tput.Values[i]),
			})
		}
		jains := metrics.JainOverTime(tputSeries(res), 1e6)
		t.Note = fmt.Sprintf("mean Jain while ≥2 flows active = %.3f, utilization = %.3f",
			metrics.Mean(jains), res.Utilization)
		tables = append(tables, t)
	}
	return tables
}

// ExpFigure7 reproduces the Jain-index CDF over repeated multi-flow trials.
func ExpFigure7(o Opts) *Table {
	t := &Table{
		ID:      "fig7",
		Title:   "CDF of Jain indices across timeslots (10 trials of the Fig. 6 scenario)",
		Columns: []string{"scheme", "p10", "p25", "p50", "p75", "p90", "mean"},
	}
	interval := o.scale(40.0)
	flowDur := o.scale(120.0)
	dur := 2*interval + flowDur
	trials := o.trials()
	grid := make([]runner.Scenario, 0, len(Schemes)*trials)
	for _, scheme := range Schemes {
		for trial := 0; trial < trials; trial++ {
			grid = append(grid, runner.Scenario{
				Seed: int64(700 + trial), RateBps: 100e6, BaseRTT: 0.030,
				QueueBDP: 1, Duration: dur,
				Flows: staggeredFlows(scheme, 3, interval, flowDur),
			})
		}
	}
	results := runAll(o, grid)
	for si, scheme := range Schemes {
		var all []float64
		for trial := 0; trial < trials; trial++ {
			all = append(all, metrics.JainOverTime(tputSeries(results[si*trials+trial]), 1e6)...)
		}
		t.Rows = append(t.Rows, []string{
			scheme,
			f3(metrics.Percentile(all, 10)), f3(metrics.Percentile(all, 25)),
			f3(metrics.Percentile(all, 50)), f3(metrics.Percentile(all, 75)),
			f3(metrics.Percentile(all, 90)), f3(metrics.Mean(all)),
		})
	}
	t.Note = "paper: Astraea holds near-full Jain index across virtually all timeslots"
	return t
}

// ExpFigure8 reproduces the RTT-fairness experiment: five long-running
// flows with base RTTs evenly spaced 40–200 ms sharing 100 Mbps; buffer is
// 1 BDP at 200 ms. Ideal sharing is 20 Mbps each.
func ExpFigure8(o Opts) *Table {
	t := &Table{
		ID:      "fig8",
		Title:   "RTT fairness: avg throughput (Mbps) of flows with RTT 40/80/120/160/200 ms",
		Columns: []string{"scheme", "rtt40", "rtt80", "rtt120", "rtt160", "rtt200", "jain"},
	}
	dur := o.scale(120.0)
	trials := o.trials()
	grid := make([]runner.Scenario, 0, len(Schemes)*trials)
	for _, scheme := range Schemes {
		for trial := 0; trial < trials; trial++ {
			flows := make([]runner.FlowSpec, 5)
			for i := range flows {
				extra := float64(i) * 0.040 // on top of the 40 ms base
				flows[i] = runner.FlowSpec{Scheme: scheme, ExtraDelay: extra}
			}
			grid = append(grid, runner.Scenario{
				Seed: int64(800 + trial), RateBps: 100e6, BaseRTT: 0.040,
				QueueBytes: netem.BDPBytes(100e6, 0.200), Duration: dur,
				Flows: flows,
			})
		}
	}
	results := runAll(o, grid)
	for si, scheme := range Schemes {
		sums := make([]float64, 5)
		for trial := 0; trial < trials; trial++ {
			for i, fr := range results[si*trials+trial].Flows {
				sums[i] += fr.AvgTputWindow(o.scale(20), dur)
			}
		}
		row := []string{scheme}
		var avgs []float64
		for i := range sums {
			avg := sums[i] / float64(o.trials())
			avgs = append(avgs, avg)
			row = append(row, mbps(avg))
		}
		row = append(row, f3(metrics.Jain(avgs)))
		t.Rows = append(t.Rows, row)
	}
	t.Note = "20 Mbps per flow is optimal; paper: Astraea comparable to Copa/Vivace, small-RTT flows slightly advantaged"
	return t
}

// ExpFigure9 reproduces the bandwidth × RTT fairness grid for Astraea.
func ExpFigure9(o Opts) *Table {
	t := &Table{
		ID:      "fig9",
		Title:   "Astraea Jain index across diverse network scenarios",
		Columns: []string{"bw_mbps", "rtt_ms", "flows", "jain"},
	}
	bws := []float64{20e6, 50e6, 100e6, 200e6}
	rtts := []float64{0.030, 0.060, 0.100, 0.150, 0.200}
	trials := o.trials()
	grid := make([]runner.Scenario, 0, len(bws)*len(rtts)*trials)
	for bi, bw := range bws {
		for ri, rtt := range rtts {
			n := 2 + (bi+ri)%5 // deterministic 2..6 flows, mirrors the random 2..8
			interval := o.scale(20.0)
			flowDur := o.scale(20.0) * float64(n)
			dur := float64(n-1)*interval + flowDur
			for trial := 0; trial < trials; trial++ {
				grid = append(grid, runner.Scenario{
					Seed: int64(900 + trial + bi*31 + ri*7), RateBps: bw, BaseRTT: rtt,
					QueueBDP: 1, Duration: dur,
					Flows: staggeredFlows("astraea", n, interval, flowDur),
				})
			}
		}
	}
	results := runAll(o, grid)
	idx := 0
	for bi, bw := range bws {
		for ri, rtt := range rtts {
			n := 2 + (bi+ri)%5
			var jainSum float64
			for trial := 0; trial < trials; trial++ {
				jainSum += metrics.Mean(metrics.JainOverTime(tputSeries(results[idx]), bw/100))
				idx++
			}
			t.Rows = append(t.Rows, []string{
				mbps(bw), f1(rtt * 1000), fmt.Sprint(n), f3(jainSum / float64(trials)),
			})
		}
	}
	t.Note = "paper: > 0.95 everywhere, mild degradation at 150-200 ms RTT and tiny BDPs"
	return t
}

// ExpFigure10 reproduces fairness under many competing flows: 600 Mbps,
// 20 ms, 10..50 Astraea flows.
func ExpFigure10(o Opts) *Table {
	t := &Table{
		ID:      "fig10",
		Title:   "Astraea fairness vs number of competing flows (600 Mbps, 20 ms)",
		Columns: []string{"flows", "jain", "utilization"},
	}
	ns := []int{10, 20, 30, 40, 50}
	trials := o.trials()
	if trials > 3 {
		trials = 3 // 50 flows × 10 trials would dominate total runtime
	}
	dur := o.scale(40.0)
	grid := make([]runner.Scenario, 0, len(ns)*trials)
	for _, n := range ns {
		for trial := 0; trial < trials; trial++ {
			flows := make([]runner.FlowSpec, n)
			for i := range flows {
				flows[i] = runner.FlowSpec{Scheme: "astraea", Start: float64(i%10) * 0.2}
			}
			grid = append(grid, runner.Scenario{
				Seed: int64(1100 + trial), RateBps: 600e6, BaseRTT: 0.020,
				QueueBDP: 1, Duration: dur,
				Flows: flows,
			})
		}
	}
	results := runAll(o, grid)
	for ni, n := range ns {
		var jainSum, utilSum float64
		for trial := 0; trial < trials; trial++ {
			res := results[ni*trials+trial]
			var avgs []float64
			for _, fr := range res.Flows {
				avgs = append(avgs, fr.AvgTputWindow(dur/2, dur))
			}
			jainSum += metrics.Jain(avgs)
			utilSum += res.Utilization
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), f3(jainSum / float64(trials)), f3(utilSum / float64(trials)),
		})
	}
	t.Note = "paper: high Jain maintained though trained with only 2-5 flows"
	return t
}

// ExpFigure10Large extends Fig. 10 the way the paper's §5.1.3 does ("up to
// 1000 flows using Linux TC"): very large flow counts need proportionally
// more capacity, or the per-flow fair share drops below the minimum
// congestion window and the experiment measures floor effects instead of
// the scheme. Capacity scales so each flow's share stays at ~6 Mbps.
func ExpFigure10Large(o Opts) *Table {
	t := &Table{
		ID:      "fig10-large",
		Title:   "Astraea fairness at large flow counts (capacity scaled, 20 ms)",
		Columns: []string{"flows", "bw_gbps", "jain", "utilization"},
	}
	ns := []int{100, 300, 1000}
	dur := o.scale(15.0)
	grid := make([]runner.Scenario, len(ns))
	for ni, n := range ns {
		bw := 6e6 * float64(n)
		flows := make([]runner.FlowSpec, n)
		for i := range flows {
			flows[i] = runner.FlowSpec{Scheme: "astraea", Start: float64(i%20) * 0.05}
		}
		// Delay-targeting control holds ~MSS/delta bytes queued per flow
		// (≈12 packets); at 6 Mbps per flow that exceeds a 1-BDP buffer by
		// construction for every n, so the large-N regime needs a buffer
		// sized for per-flow occupancy (4 BDP here), as the paper's
		// TC-based setup would have had.
		grid[ni] = runner.Scenario{
			Seed: 1150, RateBps: bw, BaseRTT: 0.020,
			QueueBDP: 4, Duration: dur,
			Flows: flows,
		}
	}
	results := runAll(o, grid)
	for ni, n := range ns {
		res := results[ni]
		var avgs []float64
		for _, fr := range res.Flows {
			avgs = append(avgs, fr.AvgTputWindow(dur/2, dur))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), f1(6e6 * float64(n) / 1e9), f3(metrics.Jain(avgs)), f3(res.Utilization),
		})
	}
	t.Note = "paper reports 'high fairness' up to 1000 flows (prose, no index given). Measured: high through " +
		"~300 flows; at 1000 the per-flow fair window nears the minimum congestion window and the standing " +
		"queue of a crowd becomes locally indistinguishable from a buffer-filling competitor, so the " +
		"competitive tolerance misfires and fairness degrades — an observability limit any local-state " +
		"delay-targeting policy shares."
	return t
}

// ExpFigure11 reproduces the multi-bottleneck topology of Fig. 11a: FS-1
// crosses Link1 (100 Mbps) only; FS-2 (2 flows) crosses Link1 then Link2
// (20 Mbps). As FS-1 grows past 8 flows, Link1 becomes the shared
// bottleneck and all flows converge to equal shares.
func ExpFigure11(o Opts) *Table {
	t := &Table{
		ID:      "fig11",
		Title:   "Multi-bottleneck fairness (Link1 100 Mbps shared; FS-2 also crosses Link2 20 Mbps)",
		Columns: []string{"fs1_flows", "fs1_avg_mbps", "fs2_avg_mbps", "fs1_ideal", "fs2_ideal"},
	}
	n1s := []int{2, 4, 6, 8, 10, 12}
	trials := o.trials()
	// Hand-built topology, not a Scenario: fan the flat n1 × trial job list
	// across the pool; each job writes only its own slots.
	fs1s := make([]float64, len(n1s)*trials)
	fs2s := make([]float64, len(n1s)*trials)
	forEach(o, len(n1s)*trials, func(j int) {
		n1, trial := n1s[j/trials], j%trials
		fs1s[j], fs2s[j] = runMultiBottleneck(o, int64(1200+trial), n1, 2)
	})
	for ni, n1 := range n1s {
		var fs1Sum, fs2Sum float64
		for trial := 0; trial < trials; trial++ {
			fs1Sum += fs1s[ni*trials+trial]
			fs2Sum += fs2s[ni*trials+trial]
		}
		fs1Avg := fs1Sum / float64(trials)
		fs2Avg := fs2Sum / float64(trials)
		// Ideal max-min allocation.
		var fs1Ideal, fs2Ideal float64
		perFlowIfShared := 100e6 / float64(n1+2)
		if perFlowIfShared > 10e6 {
			// Link2 (20 Mbps / 2 flows = 10 Mbps each) binds FS-2.
			fs2Ideal = 10e6
			fs1Ideal = (100e6 - 20e6) / float64(n1)
		} else {
			fs1Ideal = perFlowIfShared
			fs2Ideal = perFlowIfShared
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n1), mbps(fs1Avg), mbps(fs2Avg), mbps(fs1Ideal), mbps(fs2Ideal),
		})
	}
	t.Note = "paper: measured averages closely track the ideal max-min allocation"
	return t
}

// runMultiBottleneck executes one trial and returns the mean per-flow
// throughput of each flow set over the second half of the run.
func runMultiBottleneck(o Opts, seed int64, n1, n2 int) (fs1, fs2 float64) {
	s := sim.New(seed)
	dur := o.scale(60.0)
	mb := netem.NewMultiBottleneck(s, 100e6, 20e6, 0.030,
		netem.BDPBytes(100e6, 0.030)*2, netem.BDPBytes(20e6, 0.030)*2)

	type rec struct {
		bytes int64
		flow  *transport.Flow
	}
	mkFlow := func(id int, path *netem.Path) *rec {
		agent, err := newSchemeInstance("astraea")
		if err != nil {
			panic(err)
		}
		f := transport.NewFlow(s, transport.FlowConfig{ID: id, Path: path, CC: agent})
		r := &rec{flow: f}
		half := dur / 2
		f.OnAckHook = func(e transport.AckEvent) {
			if e.Now >= half {
				r.bytes += int64(e.Bytes)
			}
		}
		f.Start()
		return r
	}
	var set1, set2 []*rec
	for i := 0; i < n1; i++ {
		set1 = append(set1, mkFlow(i, mb.PathSet1()))
	}
	for i := 0; i < n2; i++ {
		set2 = append(set2, mkFlow(n1+i, mb.PathSet2()))
	}
	s.Run(dur)
	window := dur / 2
	var sum1, sum2 float64
	for _, r := range set1 {
		sum1 += float64(r.bytes) * 8 / window
	}
	for _, r := range set2 {
		sum2 += float64(r.bytes) * 8 / window
	}
	return sum1 / float64(n1), sum2 / float64(n2)
}
