//go:build race

package experiments

// raceDetectorEnabled lets wall-clock performance assertions skip under the
// race detector, whose ~10x instrumentation slowdown and altered goroutine
// scheduling make timing contrasts meaningless.
const raceDetectorEnabled = true
