package experiments

import (
	"testing"

	"repro/internal/runner"
	"repro/internal/telemetry"
)

// renderAll flattens a figure's tables into one comparable string.
func renderAll(tables []*Table) string {
	var s string
	for _, t := range tables {
		s += t.String() + "\n" + t.CSV() + "\n"
	}
	return s
}

// TestFigure6ParallelMatchesSerial is the determinism regression for the
// batch engine: the rendered Fig. 6 tables must be byte-identical whether
// the scenario grid runs serially or across four workers.
func TestFigure6ParallelMatchesSerial(t *testing.T) {
	o := Opts{Trials: 1, TimeScale: 0.1}
	o.Workers = 1
	serial := renderAll(ExpFigure6(o))
	o.Workers = 4
	parallel := renderAll(ExpFigure6(o))
	if serial != parallel {
		t.Fatalf("fig6 tables differ between workers=1 and workers=4:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestFigure6TelemetryDoesNotChangeTables pins the observability contract:
// attaching a telemetry registry must not perturb a single cell of the
// rendered tables, serial or parallel.
func TestFigure6TelemetryDoesNotChangeTables(t *testing.T) {
	o := Opts{Trials: 1, TimeScale: 0.1, Workers: 1}
	plain := renderAll(ExpFigure6(o))
	o.Telemetry = telemetry.NewRegistry()
	observedSerial := renderAll(ExpFigure6(o))
	if plain != observedSerial {
		t.Fatalf("fig6 tables differ with telemetry attached (serial):\n--- plain ---\n%s\n--- observed ---\n%s", plain, observedSerial)
	}
	o.Workers = 4
	o.Telemetry = telemetry.NewRegistry()
	observedParallel := renderAll(ExpFigure6(o))
	if plain != observedParallel {
		t.Fatalf("fig6 tables differ with telemetry attached (workers=4):\n--- plain ---\n%s\n--- observed ---\n%s", plain, observedParallel)
	}
}

// TestFigure6TelemetryTotalsDeterministic checks that the merged per-layer
// counters are identical for any worker count: each scenario accumulates
// into a private registry and the merge is commutative, so parallel
// scheduling must not change a single total. (Per-worker and wall-clock
// metrics are intentionally scheduling-dependent and excluded.)
func TestFigure6TelemetryTotalsDeterministic(t *testing.T) {
	run := func(workers int) telemetry.Snapshot {
		o := Opts{Trials: 1, TimeScale: 0.1, Workers: workers, Telemetry: telemetry.NewRegistry()}
		ExpFigure6(o)
		return o.Telemetry.Snapshot()
	}
	serial, parallel := run(1), run(4)
	for _, name := range []string{
		"sim_events_dispatched_total",
		"sim_event_freelist_hits_total",
		"sim_timer_cancellations_total",
		"netem_enqueued_total",
		"netem_drops_tail_total",
		"netem_delivered_total",
		"transport_packets_sent_total",
		"transport_acks_received_total",
		"transport_packets_lost_reorder_total",
		"runner_scenarios_total",
		"runner_sim_milliseconds_total",
	} {
		a, okA := serial.Get(name)
		b, okB := parallel.Get(name)
		if !okA || !okB {
			t.Fatalf("metric %s missing from snapshot (serial=%v parallel=%v)", name, okA, okB)
		}
		if a.Count != b.Count {
			t.Errorf("%s differs between workers=1 and workers=4: %v vs %v", name, a.Count, b.Count)
		}
	}
}

// TestSameSeedScenarioIsReproducible pins the pure-function contract the
// batch engine relies on: rerunning one scenario with the same seed yields
// identical flow summaries.
func TestSameSeedScenarioIsReproducible(t *testing.T) {
	sc := runner.Scenario{
		Seed: 42, RateBps: 50e6, BaseRTT: 0.040, QueueBDP: 1, Duration: 5,
		Flows: []runner.FlowSpec{{Scheme: "astraea"}, {Scheme: "cubic"}},
	}
	a := runner.MustRun(sc)
	b := runner.MustRun(sc)
	if len(a.Flows) != len(b.Flows) {
		t.Fatalf("flow counts differ: %d vs %d", len(a.Flows), len(b.Flows))
	}
	if a.Utilization != b.Utilization {
		t.Fatalf("utilization differs: %v vs %v", a.Utilization, b.Utilization)
	}
	for i := range a.Flows {
		fa, fb := a.Flows[i], b.Flows[i]
		if fa.AvgTputBps != fb.AvgTputBps || fa.AvgRTT != fb.AvgRTT ||
			fa.MinRTT != fb.MinRTT || fa.LossRate != fb.LossRate {
			t.Fatalf("flow %d summaries differ: %+v vs %+v", i, fa, fb)
		}
	}
}
