package experiments

import (
	"testing"

	"repro/internal/runner"
)

// renderAll flattens a figure's tables into one comparable string.
func renderAll(tables []*Table) string {
	var s string
	for _, t := range tables {
		s += t.String() + "\n" + t.CSV() + "\n"
	}
	return s
}

// TestFigure6ParallelMatchesSerial is the determinism regression for the
// batch engine: the rendered Fig. 6 tables must be byte-identical whether
// the scenario grid runs serially or across four workers.
func TestFigure6ParallelMatchesSerial(t *testing.T) {
	o := Opts{Trials: 1, TimeScale: 0.1}
	o.Workers = 1
	serial := renderAll(ExpFigure6(o))
	o.Workers = 4
	parallel := renderAll(ExpFigure6(o))
	if serial != parallel {
		t.Fatalf("fig6 tables differ between workers=1 and workers=4:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestSameSeedScenarioIsReproducible pins the pure-function contract the
// batch engine relies on: rerunning one scenario with the same seed yields
// identical flow summaries.
func TestSameSeedScenarioIsReproducible(t *testing.T) {
	sc := runner.Scenario{
		Seed: 42, RateBps: 50e6, BaseRTT: 0.040, QueueBDP: 1, Duration: 5,
		Flows: []runner.FlowSpec{{Scheme: "astraea"}, {Scheme: "cubic"}},
	}
	a := runner.MustRun(sc)
	b := runner.MustRun(sc)
	if len(a.Flows) != len(b.Flows) {
		t.Fatalf("flow counts differ: %d vs %d", len(a.Flows), len(b.Flows))
	}
	if a.Utilization != b.Utilization {
		t.Fatalf("utilization differs: %v vs %v", a.Utilization, b.Utilization)
	}
	for i := range a.Flows {
		fa, fb := a.Flows[i], b.Flows[i]
		if fa.AvgTputBps != fb.AvgTputBps || fa.AvgRTT != fb.AvgRTT ||
			fa.MinRTT != fb.MinRTT || fa.LossRate != fb.LossRate {
			t.Fatalf("flow %d summaries differ: %+v vs %+v", i, fa, fb)
		}
	}
}
