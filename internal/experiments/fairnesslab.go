// The fairness lab: the Fair-Aurora-style ablation over reward strategies.
// Each registered RewardStrategy trains its own short-budget learner under
// identical conditions (same seed, same network, same episode distribution),
// then the trained policies are evaluated head-to-head on a fixed scenario
// grid. The report ranks strategies on Jain-over-time fairness, convergence
// speed, and the throughput each fairness point costs — the question the
// strategy interface exists to answer.

package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/metrics"
	"repro/internal/rl"
	"repro/internal/rng"
	"repro/internal/runner"
)

// FairnessLabOptions sizes the ablation. The zero value is NOT runnable;
// use DefaultFairnessLabOptions and override.
type FairnessLabOptions struct {
	// Strategies to train and compare, by name (core.NewRewardStrategy).
	Strategies []string
	// Episodes is the training budget per strategy.
	Episodes int
	// Seed drives every learner and evaluation scenario; the whole lab is a
	// pure function of it.
	Seed int64
	// Workers bounds concurrent strategy training; <= 0 trains serially.
	Workers int
	// Hidden sizes the learner networks. Short-budget ablations need far
	// smaller actors than the paper default.
	Hidden []int
	// EvalDuration is the simulated seconds per evaluation scenario.
	EvalDuration float64
}

// DefaultFairnessLabOptions compares all four strategy families at a budget
// that trains in minutes on one machine.
func DefaultFairnessLabOptions() FairnessLabOptions {
	return FairnessLabOptions{
		Strategies:   []string{"paper", "aurora", "maxmin", "alpha:2"},
		Episodes:     8,
		Seed:         1,
		Workers:      4,
		Hidden:       []int{16, 12},
		EvalDuration: 16,
	}
}

// StrategyOutcome is one strategy's row in the lab report.
type StrategyOutcome struct {
	Strategy string `json:"strategy"`
	// FinalReward is the mean reward of the last trained episode (in the
	// strategy's own units — comparable in sign and bound, not in shape).
	FinalReward float64 `json:"final_reward"`
	// ConvergenceEpisodes counts episodes until the smoothed reward history
	// first reaches 90% of its total improvement (Fair-Aurora's convergence
	// speed metric, in units of training episodes).
	ConvergenceEpisodes int `json:"convergence_episodes"`
	// JainMean is the mean Jain index over time, averaged across the
	// evaluation grid (fairness while ≥2 flows are active).
	JainMean float64 `json:"jain_mean"`
	// Utilization is the mean bottleneck utilization across the grid.
	Utilization float64 `json:"utilization"`
	// ThroughputCost is the utilization given up per point of Jain gained,
	// measured against the highest-utilization strategy in this run (that
	// strategy itself reports 0).
	ThroughputCost float64 `json:"throughput_cost"`
	// Score = JainMean × Utilization, the ranking key: fairness bought by
	// throwing away the link is not rewarded.
	Score float64 `json:"score"`
	Rank  int     `json:"rank"`
	// RewardHistory and JainSeries (first grid scenario) support plotting.
	RewardHistory []float64 `json:"reward_history"`
	JainSeries    []float64 `json:"jain_series"`
}

// FairnessLabReport is the full ablation result, strategies in rank order.
type FairnessLabReport struct {
	Episodes      int               `json:"episodes"`
	Seed          int64             `json:"seed"`
	EvalScenarios int               `json:"eval_scenarios"`
	Outcomes      []StrategyOutcome `json:"outcomes"`

	// Actors holds each strategy's trained policy (by canonical name) so
	// callers can persist them — e.g. for a tournament between
	// differently-rewarded Astraea variants. Not serialized with the report.
	Actors map[string]*core.MLPPolicy `json:"-"`
}

// labLearner builds one strategy's short-budget learner.
func labLearner(opts FairnessLabOptions, reward string) *env.Learner {
	cfg := core.DefaultConfig()
	cfg.BatchSize = 48
	cfg.ModelUpdateInterval = 2
	cfg.ModelUpdateSteps = 4
	cfg.Reward = reward
	rlCfg := rl.DefaultConfig(cfg.StateDim(), core.GlobalFeatureDim, 1)
	rlCfg.Gamma = cfg.Gamma
	rlCfg.ActorLR = cfg.LearningRate
	rlCfg.CriticLR = cfg.LearningRate
	rlCfg.Batch = cfg.BatchSize
	rlCfg.Hidden = opts.Hidden
	dist := env.DefaultTrainingDistribution()
	dist.MinFlows, dist.MaxFlows = 2, 3
	dist.EpisodeDuration = 4
	// Every strategy trains from the same fold of the lab seed: identical
	// initial weights and episode draws, so outcome differences are the
	// objective's doing.
	return env.NewLearnerRL(cfg, dist, rlCfg, 4000, rng.Fold(opts.Seed, 77))
}

// labEvalGrid is the fixed head-to-head evaluation: staggered arrivals, an
// incast, and RTT heterogeneity — the three fairness stressors the paper
// evaluates separately.
func labEvalGrid(opts FairnessLabOptions, policy core.Policy) []runner.Scenario {
	dur := opts.EvalDuration
	agent := func(p core.Policy) runner.FlowSpec {
		return runner.FlowSpec{CC: core.NewAgent(core.DefaultConfig(), p)}
	}
	mk := func(rate, rtt float64, n int, stagger float64, extra []float64) runner.Scenario {
		// One policy clone per scenario: MLP forward passes share scratch
		// buffers, so concurrent scenarios must not share a network.
		p := core.ClonePolicy(policy)
		sc := runner.Scenario{
			Seed: opts.Seed, RateBps: rate, BaseRTT: rtt,
			QueueBDP: 2, Duration: dur,
		}
		for i := 0; i < n; i++ {
			fs := agent(p)
			fs.Start = float64(i) * stagger
			if extra != nil {
				fs.ExtraDelay = extra[i%len(extra)]
			}
			sc.Flows = append(sc.Flows, fs)
		}
		return sc
	}
	return []runner.Scenario{
		mk(60e6, 0.030, 3, dur/8, nil),             // staggered arrivals
		mk(100e6, 0.020, 4, 0, nil),                // incast
		mk(40e6, 0.050, 2, 0, []float64{0, 0.020}), // RTT heterogeneity
	}
}

// convergenceEpisodes returns 1-based episodes until the 3-episode smoothed
// reward first covers 90% of its total improvement. A history that never
// improves converges immediately (1); an empty history reports 0.
func convergenceEpisodes(hist []float64) int {
	if len(hist) == 0 {
		return 0
	}
	smooth := make([]float64, len(hist))
	for i := range hist {
		lo := i - 2
		if lo < 0 {
			lo = 0
		}
		var s float64
		for _, v := range hist[lo : i+1] {
			s += v
		}
		smooth[i] = s / float64(i+1-lo)
	}
	initial, final := smooth[0], smooth[len(smooth)-1]
	if final <= initial {
		return 1
	}
	target := initial + 0.9*(final-initial)
	for i, v := range smooth {
		if v >= target {
			return i + 1
		}
	}
	return len(smooth)
}

// RunFairnessLab trains one learner per strategy and evaluates the trained
// policies on the shared grid. Deterministic for a fixed options value.
func RunFairnessLab(opts FairnessLabOptions) (*FairnessLabReport, error) {
	if len(opts.Strategies) == 0 {
		return nil, fmt.Errorf("experiments: fairness lab needs at least one strategy")
	}
	if opts.Episodes < 1 {
		return nil, fmt.Errorf("experiments: fairness lab needs a positive episode budget")
	}
	for _, s := range opts.Strategies {
		if _, err := core.NewRewardStrategy(s); err != nil {
			return nil, err
		}
	}

	outcomes := make([]StrategyOutcome, len(opts.Strategies))
	actors := make([]*core.MLPPolicy, len(opts.Strategies))
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	err := runner.ForEach(len(opts.Strategies), workers, func(i int) error {
		strat := core.MustRewardStrategy(opts.Strategies[i])
		l := labLearner(opts, strat.Name())
		hist := l.Train(opts.Episodes)

		out := StrategyOutcome{
			Strategy:            strat.Name(),
			FinalReward:         hist[len(hist)-1],
			ConvergenceEpisodes: convergenceEpisodes(hist),
			RewardHistory:       append([]float64(nil), hist...),
		}
		var jainSum, utilSum float64
		grid := labEvalGrid(opts, l.Policy())
		for gi, sc := range grid {
			res, err := runner.Run(sc)
			if err != nil {
				return err
			}
			jains := metrics.JainOverTime(tputSeries(res), 1e6)
			jainSum += metrics.Mean(jains)
			utilSum += res.Utilization
			if gi == 0 {
				out.JainSeries = jains
			}
		}
		out.JainMean = jainSum / float64(len(grid))
		out.Utilization = utilSum / float64(len(grid))
		out.Score = out.JainMean * out.Utilization
		outcomes[i] = out
		actors[i] = l.Policy()
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Throughput cost per fairness point, against the most throughput-hungry
	// strategy of this run. ΔJain is floored so a strategy that buys no
	// fairness reports a large finite cost instead of dividing by ~zero.
	base := 0
	for i := range outcomes {
		if outcomes[i].Utilization > outcomes[base].Utilization {
			base = i
		}
	}
	for i := range outcomes {
		if i == base {
			continue
		}
		dJain := outcomes[i].JainMean - outcomes[base].JainMean
		if dJain < 1e-3 {
			dJain = 1e-3
		}
		cost := (outcomes[base].Utilization - outcomes[i].Utilization) / dJain
		if cost < 0 {
			cost = 0 // fairer and faster than the baseline: free fairness
		}
		outcomes[i].ThroughputCost = cost
	}

	sort.SliceStable(outcomes, func(a, b int) bool {
		return outcomes[a].Score > outcomes[b].Score
	})
	for i := range outcomes {
		outcomes[i].Rank = i + 1
	}
	byName := make(map[string]*core.MLPPolicy, len(actors))
	for i, a := range actors {
		byName[core.MustRewardStrategy(opts.Strategies[i]).Name()] = a
	}
	return &FairnessLabReport{
		Episodes:      opts.Episodes,
		Seed:          opts.Seed,
		EvalScenarios: len(labEvalGrid(opts, nil)),
		Outcomes:      outcomes,
		Actors:        byName,
	}, nil
}

// Table renders the report in the repository's standard table form.
func (r *FairnessLabReport) Table() *Table {
	t := &Table{
		ID:    "fairness_lab",
		Title: fmt.Sprintf("reward-strategy ablation (%d episodes/strategy, seed %d)", r.Episodes, r.Seed),
		Columns: []string{"rank", "strategy", "jain", "util", "conv_eps",
			"tput_cost", "final_reward", "score"},
		Note: "rank = Jain × utilization; tput_cost = utilization forgone per Jain point vs the most throughput-hungry strategy",
	}
	for _, o := range r.Outcomes {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(o.Rank), o.Strategy, f3(o.JainMean), f3(o.Utilization),
			fmt.Sprint(o.ConvergenceEpisodes), f3(o.ThroughputCost),
			fmt.Sprintf("%+.5f", o.FinalReward), f3(o.Score),
		})
	}
	return t
}

// JSON renders the report as indented JSON.
func (r *FairnessLabReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Strategies lists the outcome names in rank order (test convenience).
func (r *FairnessLabReport) Strategies() []string {
	out := make([]string, len(r.Outcomes))
	for i, o := range r.Outcomes {
		out[i] = o.Strategy
	}
	return out
}

// SanitizeStrategyFilename maps a strategy name to a filesystem-safe stem
// ("alpha:2" → "alpha_2") for saved actor weights.
func SanitizeStrategyFilename(name string) string {
	return strings.ReplaceAll(name, ":", "_")
}
