package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runner"
)

// astraeaThreeFlow runs the canonical scenario with custom-built agents.
func astraeaThreeFlow(o Opts, seed int64, mk func() *core.Agent) (jain, util, stab float64) {
	interval := o.scale(40.0)
	flowDur := o.scale(120.0)
	dur := 2*interval + flowDur
	res := o.run(runner.Scenario{
		Seed: seed, RateBps: 100e6, BaseRTT: 0.030, QueueBDP: 1, Duration: dur,
		Flows: []runner.FlowSpec{
			{CC: mk(), Start: 0, Duration: flowDur},
			{CC: mk(), Start: interval, Duration: flowDur},
			{CC: mk(), Start: 2 * interval, Duration: flowDur},
		},
	})
	jain = metrics.Mean(metrics.JainOverTime(tputSeries(res), 1e6))
	util = res.Utilization
	stab = metrics.StdDev(res.Flows[1].Tput.Slice(2*interval+o.scale(10), interval+flowDur)) / 1e6
	return
}

// ExpAblationAlpha sweeps the Eq. 3 action coefficient: larger alpha means
// faster exploitation around the current window but a less stable rate
// (§3.3's stated trade-off).
func ExpAblationAlpha(o Opts) *Table {
	t := &Table{
		ID:      "ablation-alpha",
		Title:   "Ablation: action coefficient alpha (Eq. 3 responsiveness/stability trade-off)",
		Columns: []string{"alpha", "jain", "utilization", "stability_mbps", "conv_time_s"},
	}
	alphas := []float64{0.01, 0.025, 0.05, 0.1, 0.2}
	trials := o.trials()
	type trialOut struct {
		jain, util, stab, conv float64
		converged              bool
	}
	outs := make([]trialOut, len(alphas)*trials)
	// Each job runs its trial's two scenarios (three-flow + two-flow
	// convergence); jobs fan across the pool and write only their own slot.
	forEach(o, len(outs), func(job int) {
		alpha, trial := alphas[job/trials], job%trials
		cfg := core.DefaultConfig()
		cfg.Alpha = alpha
		mk := func() *core.Agent { return core.NewAgent(cfg, nil) }
		out := &outs[job]
		out.jain, out.util, out.stab = astraeaThreeFlow(o, int64(3000+trial), mk)
		// Convergence of the second flow.
		interval := o.scale(40.0)
		flowDur := o.scale(120.0)
		res := o.run(runner.Scenario{
			Seed: int64(3100 + trial), RateBps: 100e6, BaseRTT: 0.030, QueueBDP: 1,
			Duration: interval + flowDur,
			Flows: []runner.FlowSpec{
				{CC: mk(), Start: 0, Duration: flowDur + interval},
				{CC: mk(), Start: interval, Duration: flowDur},
			},
		})
		sm := metrics.Smooth(res.Flows[1].Tput, 1.0)
		if ct := metrics.ConvergenceTime(sm, interval, 50e6, 0.10, 0.5); ct >= 0 {
			out.conv, out.converged = ct, true
		}
	})
	for ai, alpha := range alphas {
		var jainS, utilS, stabS, convS float64
		convN := 0
		for trial := 0; trial < trials; trial++ {
			out := outs[ai*trials+trial]
			jainS += out.jain
			utilS += out.util
			stabS += out.stab
			if out.converged {
				convS += out.conv
				convN++
			}
		}
		n := float64(trials)
		conv := "never"
		if convN > 0 {
			conv = f2(convS / float64(convN))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", alpha), f3(jainS / n), f3(utilS / n), f2(stabS / n), conv,
		})
	}
	t.Note = "expected: small alpha converges slowly; large alpha destabilizes (higher stddev)"
	return t
}

// ExpAblationDrain toggles the agent's periodic queue-drain windows, the
// deployment mechanism that refreshes every flow's base-RTT estimate.
// Without it, late-arriving flows keep a biased minRTT and fairness caps
// out well below optimal.
func ExpAblationDrain(o Opts) *Table {
	t := &Table{
		ID:      "ablation-drain",
		Title:   "Ablation: periodic queue-drain windows (minRTT refresh)",
		Columns: []string{"variant", "jain", "utilization", "stability_mbps"},
	}
	variants := []struct {
		name   string
		period int
	}{
		{"drain-on", 64},
		{"drain-off", 0},
	}
	trials := o.trials()
	jains := make([]float64, len(variants)*trials)
	utils := make([]float64, len(variants)*trials)
	stabs := make([]float64, len(variants)*trials)
	forEach(o, len(variants)*trials, func(job int) {
		v, trial := variants[job/trials], job%trials
		cfg := core.DefaultConfig()
		mk := func() *core.Agent {
			a := core.NewAgent(cfg, nil)
			a.DrainPeriod = v.period
			return a
		}
		jains[job], utils[job], stabs[job] = astraeaThreeFlow(o, int64(3200+trial), mk)
	})
	for vi, v := range variants {
		var jainS, utilS, stabS float64
		for trial := 0; trial < trials; trial++ {
			jainS += jains[vi*trials+trial]
			utilS += utils[vi*trials+trial]
			stabS += stabs[vi*trials+trial]
		}
		n := float64(trials)
		t.Rows = append(t.Rows, []string{v.name, f3(jainS / n), f3(utilS / n), f2(stabS / n)})
	}
	t.Note = "expected: drain-off trades a few points of Jain for marginally smoother throughput"
	return t
}

// ExpAblationHistory sweeps w, the stacked-history length of the state
// block. The reference policy reads only the newest frame, so behavioural
// differences here bound how much the history window costs/buys; the table
// also reports the induced state dimension the network must digest.
func ExpAblationHistory(o Opts) *Table {
	t := &Table{
		ID:      "ablation-history",
		Title:   "Ablation: state history length w",
		Columns: []string{"w", "state_dim", "jain", "utilization"},
	}
	ws := []int{1, 3, 5, 10}
	trials := o.trials()
	jains := make([]float64, len(ws)*trials)
	utils := make([]float64, len(ws)*trials)
	forEach(o, len(ws)*trials, func(job int) {
		w, trial := ws[job/trials], job%trials
		cfg := core.DefaultConfig()
		cfg.HistoryLen = w
		mk := func() *core.Agent { return core.NewAgent(cfg, nil) }
		jains[job], utils[job], _ = astraeaThreeFlow(o, int64(3300+trial), mk)
	})
	for wi, w := range ws {
		var jainS, utilS float64
		for trial := 0; trial < trials; trial++ {
			jainS += jains[wi*trials+trial]
			utilS += utils[wi*trials+trial]
		}
		n := float64(trials)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(w), fmt.Sprint(w * core.LocalFeatureDim),
			f3(jainS / n), f3(utilS / n),
		})
	}
	return t
}
