package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runner"
)

// ExpFigure17 reproduces the policy-interpretation sweep of §5.5: with
// max-observed throughput fixed at 200 Mbps and base RTT 40 ms, plot the
// policy action as a function of observed delay for flows at different
// current bandwidths, and report each bandwidth's delay equilibrium (the
// observed delay where the action crosses zero).
func ExpFigure17(o Opts) *Table {
	cfg := core.DefaultConfig()
	policy := core.NewReferencePolicy(cfg)
	t := &Table{
		ID:      "fig17",
		Title:   "State-action map: action vs observed delay (thrmax=200 Mbps, base RTT 40 ms)",
		Columns: []string{"flow_mbps", "delay41ms", "delay44ms", "delay48ms", "delay56ms", "delay72ms", "equilibrium_ms"},
	}
	delays := []float64{0.041, 0.044, 0.048, 0.056, 0.072}
	const thrMax = 200e6
	const baseRTT = 0.040
	for _, flowBps := range []float64{25e6, 50e6, 100e6, 150e6, 200e6} {
		row := []string{mbps(flowBps)}
		action := func(lat float64) float64 {
			ls := core.LocalState{
				TputRatio:     flowBps / thrMax,
				MaxTput:       thrMax / cfg.TputScale,
				LatRatio:      lat / baseRTT,
				MinLat:        baseRTT / cfg.LatScale,
				RelCwnd:       flowBps * lat / thrMax / baseRTT, // cwnd = rate*srtt
				InflightRatio: 1,
				PacingRatio:   flowBps / thrMax,
			}
			state := make([]float64, 0, cfg.StateDim())
			for w := 0; w < cfg.HistoryLen; w++ {
				state = append(state, ls.Vector()...)
			}
			return policy.Action(state)
		}
		for _, d := range delays {
			row = append(row, f3(action(d)))
		}
		// Bisect for the zero crossing (delay equilibrium).
		lo, hi := baseRTT+1e-5, baseRTT+0.2
		for i := 0; i < 60; i++ {
			mid := (lo + hi) / 2
			if action(mid) > 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		row = append(row, f2((lo+hi)/2*1000))
		t.Rows = append(t.Rows, row)
	}
	t.Note = "action decreases monotonically with delay; each throughput has a distinct equilibrium delay, so sharing one queue forces equal rates. " +
		"Direction note: the paper's prose says the equilibrium increases with flow bandwidth, but the bandwidth-transfer mechanism it describes " +
		"(at the shared delay, fast flows shrink and slow flows grow) requires the faster flow's zero crossing to sit at a LOWER delay, which is what this table shows."
	return t
}

// ExpFigure18 reproduces the fairness-coefficient sensitivity study
// (Appendix A): the c3 reward weight swept over [0.05, 0.35]. In our
// reproduction the analogous control surface of the distilled policy is
// Delta (the fairness-driving delay-target aggressiveness); we sweep it
// across the equivalent range and report the Fig. 6 scenario's Jain index.
func ExpFigure18(o Opts) *Table {
	t := &Table{
		ID:      "fig18",
		Title:   "Fairness-knob sensitivity: Jain index across policy aggressiveness",
		Columns: []string{"delta", "jain", "utilization"},
	}
	cfg := core.DefaultConfig()
	interval := o.scale(40.0)
	flowDur := o.scale(120.0)
	dur := 2*interval + flowDur
	deltas := []float64{0.02, 0.05, 0.08, 0.15, 0.25, 0.35}
	trials := o.trials()
	grid := make([]runner.Scenario, 0, len(deltas)*trials)
	for _, delta := range deltas {
		for trial := 0; trial < trials; trial++ {
			mk := func() *core.Agent {
				p := core.NewReferencePolicy(cfg)
				p.SetDelta(delta)
				return core.NewAgent(cfg, p)
			}
			grid = append(grid, runner.Scenario{
				Seed: int64(1800 + trial), RateBps: 100e6, BaseRTT: 0.030,
				QueueBDP: 1, Duration: dur,
				Flows: []runner.FlowSpec{
					{CC: mk(), Start: 0, Duration: flowDur},
					{CC: mk(), Start: interval, Duration: flowDur},
					{CC: mk(), Start: 2 * interval, Duration: flowDur},
				},
			})
		}
	}
	results := runAll(o, grid)
	for di, delta := range deltas {
		var jainSum, utilSum float64
		for trial := 0; trial < trials; trial++ {
			res := results[di*trials+trial]
			jainSum += metrics.Mean(metrics.JainOverTime(tputSeries(res), 1e6))
			utilSum += res.Utilization
		}
		n := float64(trials)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", delta), f3(jainSum / n), f3(utilSum / n),
		})
	}
	t.Note = "paper: Jain stays high across the whole coefficient range — fairness is not knife-edge tuned"
	return t
}
