package experiments

import (
	"fmt"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/transport"
)

// ExpParkingLot extends the multi-bottleneck study (Fig. 11) to the
// k-hop parking-lot topology: one long flow crosses k equal links, each
// also carrying one single-hop cross flow. The max-min allocation gives
// every flow half of a link regardless of k; a scheme that compounds its
// backoff per hop (as pure delay-summing control does) squeezes the long
// flow toward 1/(k+1) or worse as k grows.
func ExpParkingLot(o Opts) *Table {
	t := &Table{
		ID:      "parkinglot",
		Title:   "Parking-lot max-min: long-flow share across k hops (astraea, 50 Mbps links)",
		Columns: []string{"hops", "long_mbps", "short_avg_mbps", "maxmin_long"},
	}
	ks := []int{1, 2, 3, 4}
	trials := o.trials()
	longs := make([]float64, len(ks)*trials)
	shorts := make([]float64, len(ks)*trials)
	// Each job builds its own topology and simulator; jobs write only their
	// own slot, so they fan across the worker pool safely.
	forEach(o, len(longs), func(job int) {
		k, trial := ks[job/trials], job%trials
		longs[job], shorts[job] = runParkingLot(o, int64(2800+trial), k)
	})
	for ki, k := range ks {
		var longSum, shortSum float64
		for trial := 0; trial < trials; trial++ {
			longSum += longs[ki*trials+trial]
			shortSum += shorts[ki*trials+trial]
		}
		n := float64(trials)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), mbps(longSum / n), mbps(shortSum / n), mbps(25e6),
		})
	}
	t.Note = "max-min would give the long flow 25 Mbps at every k. Measured: Astraea's " +
		"delay-targeting tracks the PROPORTIONAL-FAIR allocation 50/(k+1) (16.7/12.5/10 at k=2/3/4) " +
		"almost exactly — the classical equilibrium of congestion control that responds to summed " +
		"per-hop delay (as TCP and Vegas do). The paper's Fig. 11 scenario cannot distinguish the " +
		"two allocations because its second bottleneck is uncontended at the crossover."
	return t
}

func runParkingLot(o Opts, seed int64, k int) (longMbps, shortAvgMbps float64) {
	s := sim.New(seed)
	dur := o.scale(60.0)
	pl := netem.NewParkingLot(s, k, 50e6, 0.030, netem.BDPBytes(50e6, 0.030)*2)

	half := dur / 2
	launch := func(id int, path *netem.Path) *int64 {
		agent, err := newSchemeInstance("astraea")
		if err != nil {
			panic(err)
		}
		f := transport.NewFlow(s, transport.FlowConfig{ID: id, Path: path, CC: agent})
		var bytes int64
		b := &bytes
		f.OnAckHook = func(e transport.AckEvent) {
			if e.Now >= half {
				*b += int64(e.Bytes)
			}
		}
		f.Start()
		return b
	}
	longBytes := launch(0, pl.LongPath())
	shortBytes := make([]*int64, k)
	for i := 0; i < k; i++ {
		shortBytes[i] = launch(1+i, pl.ShortPath(i))
	}
	s.Run(dur)

	window := dur - half
	longRate := float64(*longBytes) * 8 / window
	var shortSum float64
	for _, b := range shortBytes {
		shortSum += float64(*b) * 8 / window
	}
	return longRate, shortSum / float64(k)
}
