package experiments

import (
	"testing"

	"repro/internal/runner"
)

// Permanent quick-scale assertions for the extension experiments.

func TestParkingLotProportionalShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hop scenarios")
	}
	tb := ExpParkingLot(Opts{Trials: 1, TimeScale: 0.4})
	// k=1 must be near the fair 25 Mbps; the long flow's share must
	// decrease strictly with hop count and stay above half the
	// proportional-fair floor.
	long1 := cellF(t, tb, 0, "long_mbps")
	if long1 < 20 {
		t.Fatalf("k=1 long flow %.1f Mbps, want ≈25", long1)
	}
	prev := long1 + 1
	for r := range tb.Rows {
		long := cellF(t, tb, r, "long_mbps")
		if long >= prev {
			t.Fatalf("long-flow share not decreasing with hops: row %d", r)
		}
		prev = long
		k := float64(r + 1)
		propFair := 50 / (k + 1)
		if long < propFair*0.5 {
			t.Fatalf("k=%d long flow %.1f below half of proportional-fair %.1f", r+1, long, propFair)
		}
	}
}

func TestCoexistenceDiagonalFair(t *testing.T) {
	if testing.Short() {
		t.Skip("pairwise matrix")
	}
	// A cheap diagonal-only check: astraea and copa against themselves must
	// sit near 0.50 (the full matrix runs in BenchmarkCoexistence).
	for _, scheme := range []string{"astraea", "copa"} {
		share := pairShare(t, scheme, scheme)
		if share < 0.40 || share > 0.60 {
			t.Errorf("%s self-coexistence share %.2f, want ≈0.50", scheme, share)
		}
	}
	// And the aggression ordering: bbr must dominate astraea, astraea must
	// not dominate cubic.
	if s := pairShare(t, "bbr", "astraea"); s < 0.7 {
		t.Errorf("bbr share vs astraea %.2f; bbr should dominate", s)
	}
	if s := pairShare(t, "astraea", "cubic"); s > 0.5 {
		t.Errorf("astraea share vs cubic %.2f; astraea should not dominate cubic", s)
	}
}

func pairShare(t *testing.T, row, col string) float64 {
	t.Helper()
	const dur = 30.0
	res := runner.MustRun(runner.Scenario{
		Seed: 2601, RateBps: 100e6, BaseRTT: 0.030, QueueBDP: 1, Duration: dur,
		Flows: []runner.FlowSpec{{Scheme: row}, {Scheme: col}},
	})
	a := res.Flows[0].AvgTputWindow(dur/4, dur)
	b := res.Flows[1].AvgTputWindow(dur/4, dur)
	if a+b == 0 {
		return 0.5
	}
	return a / (a + b)
}

func TestFigure10LargeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("hundreds of flows")
	}
	// Large crowds need a few drain cycles (~2 s each) to converge, so the
	// duration cannot be scaled down as far as other quick tests.
	tb := ExpFigure10Large(Opts{Trials: 1, TimeScale: 0.6})
	if j := cellF(t, tb, 0, "jain"); j < 0.75 {
		t.Errorf("100-flow Jain %.3f", j)
	}
	for r := range tb.Rows {
		if u := cellF(t, tb, r, "utilization"); u < 0.9 {
			t.Errorf("row %d utilization %.3f", r, u)
		}
	}
}
