package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/runner"
)

// ExpFigure1a reproduces §2's Aurora unfairness demonstration: two flows on
// an 80 Mbps, 60 ms link with a deep (4.8 MB) buffer. The paper shows the
// incumbent Aurora flow keeping essentially all bandwidth.
func ExpFigure1a(o Opts) *Table {
	dur := o.scale(120.0)
	res := o.run(runner.Scenario{
		Seed: 1, RateBps: 80e6, BaseRTT: 0.060, QueueBytes: 4_800_000,
		Duration: dur,
		Flows: []runner.FlowSpec{
			{Scheme: "aurora", Start: 0},
			{Scheme: "aurora", Start: o.scale(30)},
		},
	})
	t := &Table{
		ID:      "fig1a",
		Title:   "Aurora is very unfair (80 Mbps, 60 ms RTT, deep buffer)",
		Columns: []string{"time_s", "flow1_mbps", "flow2_mbps"},
	}
	for i := 0; i < len(res.Flows[0].Tput.Values); i += 20 {
		tm := float64(i) * res.Flows[0].Tput.Interval
		t.Rows = append(t.Rows, []string{
			f1(tm), mbps(res.Flows[0].Tput.Values[i]), mbps(res.Flows[1].Tput.Values[i]),
		})
	}
	// Headline statistic: bandwidth share of the second flow while both run.
	from, to := o.scale(40.0), dur
	f1Avg := res.Flows[0].AvgTputWindow(from, to)
	f2Avg := res.Flows[1].AvgTputWindow(from, to)
	share := 0.0
	if f1Avg+f2Avg > 0 {
		share = f2Avg / (f1Avg + f2Avg)
	}
	t.Note = fmt.Sprintf("second flow's bandwidth share = %.3f (paper: near zero); Jain = %.3f",
		share, metrics.Jain([]float64{f1Avg, f2Avg}))
	return t
}

// ExpFigure1b reproduces Vivace's slow convergence: three staggered flows
// on a 100 Mbps, 120 ms link with 1 BDP buffer.
func ExpFigure1b(o Opts) *Table {
	return vivaceConvergence(o, "fig1b", "vivace",
		"Vivace converges slowly (120 ms RTT)", 0.120)
}

// ExpFigure2 reproduces the enhanced-Vivace tuning experiment: enlarging
// theta0 makes Vivace converge quickly at 120 ms (Fig. 2a) but destabilizes
// it at 12 ms (Fig. 2b).
func ExpFigure2(o Opts) []*Table {
	a := vivaceConvergence(o, "fig2a", "vivace-enhanced",
		"Enhanced Vivace converges quickly (120 ms RTT)", 0.120)
	b := vivaceConvergence(o, "fig2b", "vivace-enhanced",
		"Enhanced Vivace is unstable (12 ms RTT)", 0.012)
	return []*Table{a, b}
}

func vivaceConvergence(o Opts, id, scheme, title string, rtt float64) *Table {
	interval := o.scale(40.0)
	flowDur := o.scale(120.0)
	dur := 2*interval + flowDur
	res := o.run(runner.Scenario{
		Seed: 2, RateBps: 100e6, BaseRTT: rtt, QueueBDP: 1, Duration: dur,
		Flows: staggeredFlows(scheme, 3, interval, flowDur),
	})
	t := &Table{
		ID: id, Title: title,
		Columns: []string{"time_s", "flow1_mbps", "flow2_mbps", "flow3_mbps"},
	}
	for i := 0; i < len(res.Flows[0].Tput.Values); i += 20 {
		tm := float64(i) * res.Flows[0].Tput.Interval
		t.Rows = append(t.Rows, []string{
			f1(tm),
			mbps(res.Flows[0].Tput.Values[i]),
			mbps(res.Flows[1].Tput.Values[i]),
			mbps(res.Flows[2].Tput.Values[i]),
		})
	}
	// Statistics over the window where all three flows are active.
	from, to := 2*interval, interval+flowDur
	var avgs []float64
	for _, fr := range res.Flows {
		avgs = append(avgs, fr.AvgTputWindow(from, to))
	}
	stab := metrics.StdDev(res.Flows[2].Tput.Slice(from+o.scale(20), to))
	t.Note = fmt.Sprintf("all-active Jain = %.3f; newest-flow stddev = %.1f Mbps",
		metrics.Jain(avgs), stab/1e6)
	return t
}

// ExpTable1 derives the paper's qualitative comparison (Table 1) from
// measurements: a scheme gets fairness if its steady Jain exceeds 0.9, fast
// convergence if mean convergence time < 3 s, stability if the
// post-convergence stddev < 4 Mbps. The thresholds sit in the wide gaps the
// measurements leave between the scheme groups (≈1 s vs ≈10 s convergence;
// ≈2 vs ≈5 Mbps deviation), so the derived checkmarks are not knife-edge.
func ExpTable1(o Opts) *Table {
	t := &Table{
		ID:      "table1",
		Title:   "Comparison of learning-based algorithms (derived from measurement)",
		Columns: []string{"algorithm", "jain", "conv_time_s", "stddev_mbps", "fairness", "fast_conv", "stability"},
	}
	schemes := []string{"aurora", "vivace", "orca", "astraea"}
	for _, cs := range convergenceStatsAll(o, schemes, 3) {
		scheme := cs.Scheme
		mark := func(ok bool) string {
			if ok {
				return "yes"
			}
			return "no"
		}
		convOK := cs.ConvTime >= 0 && cs.ConvTime < 3
		t.Rows = append(t.Rows, []string{
			scheme, f3(cs.Jain), f2(cs.ConvTime), f1(cs.Stab / 1e6),
			mark(cs.Jain > 0.9), mark(convOK), mark(cs.Stab < 4e6 && cs.Stab >= 0),
		})
	}
	t.Note = "paper: Aurora fails fairness; Vivace fails fast convergence; Orca fails stability; Astraea passes all"
	return t
}
