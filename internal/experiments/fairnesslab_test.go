package experiments

import (
	"encoding/json"
	"reflect"
	"testing"
)

// tinyLab is the smallest lab that still trains and evaluates real policies.
func tinyLab() FairnessLabOptions {
	opts := DefaultFairnessLabOptions()
	opts.Strategies = []string{"paper", "aurora"}
	opts.Episodes = 1
	opts.Hidden = []int{8}
	opts.EvalDuration = 2
	return opts
}

func TestFairnessLabReportWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real learners")
	}
	rep, err := RunFairnessLab(tinyLab())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 2 {
		t.Fatalf("outcomes: %d, want 2", len(rep.Outcomes))
	}
	for i, o := range rep.Outcomes {
		if o.Rank != i+1 {
			t.Errorf("outcome %d has rank %d", i, o.Rank)
		}
		if i > 0 && o.Score > rep.Outcomes[i-1].Score {
			t.Errorf("outcomes not sorted by score: %.4f after %.4f", o.Score, rep.Outcomes[i-1].Score)
		}
		if o.JainMean < 0 || o.JainMean > 1 {
			t.Errorf("%s JainMean %.4f outside [0,1]", o.Strategy, o.JainMean)
		}
		if o.Utilization < 0 || o.Utilization > 1.5 {
			t.Errorf("%s Utilization %.4f implausible", o.Strategy, o.Utilization)
		}
		if o.ThroughputCost < 0 {
			t.Errorf("%s ThroughputCost %.4f negative", o.Strategy, o.ThroughputCost)
		}
		if o.ConvergenceEpisodes < 1 || o.ConvergenceEpisodes > rep.Episodes {
			t.Errorf("%s converged in %d episodes of %d", o.Strategy, o.ConvergenceEpisodes, rep.Episodes)
		}
		if len(o.RewardHistory) != rep.Episodes {
			t.Errorf("%s reward history has %d entries, want %d", o.Strategy, len(o.RewardHistory), rep.Episodes)
		}
		if len(o.JainSeries) == 0 {
			t.Errorf("%s has an empty Jain series", o.Strategy)
		}
	}
	for _, s := range []string{"paper", "aurora"} {
		if rep.Actors[s] == nil {
			t.Errorf("no trained actor recorded for %s", s)
		}
	}

	// The JSON view round-trips the outcomes and omits the actor networks.
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back FairnessLabReport
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Outcomes, rep.Outcomes) {
		t.Fatal("outcomes did not survive the JSON round-trip")
	}
	if back.Actors != nil {
		t.Fatal("actor networks leaked into the JSON report")
	}

	tbl := rep.Table()
	if len(tbl.Rows) != len(rep.Outcomes) {
		t.Fatalf("table has %d rows, want %d", len(tbl.Rows), len(rep.Outcomes))
	}
}

// The lab is a pure function of its options: worker count must not leak into
// any outcome.
func TestFairnessLabDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real learners twice")
	}
	serial := tinyLab()
	serial.Workers = 1
	a, err := RunFairnessLab(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallelOpts := tinyLab()
	parallelOpts.Workers = 2
	b, err := RunFairnessLab(parallelOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
		t.Fatal("lab outcomes differ across worker counts")
	}
}

func TestFairnessLabRejectsBadOptions(t *testing.T) {
	if _, err := RunFairnessLab(FairnessLabOptions{Episodes: 1}); err == nil {
		t.Error("lab with no strategies accepted")
	}
	opts := DefaultFairnessLabOptions()
	opts.Episodes = 0
	if _, err := RunFairnessLab(opts); err == nil {
		t.Error("lab with zero episode budget accepted")
	}
	opts = DefaultFairnessLabOptions()
	opts.Strategies = []string{"paper", "nope"}
	if _, err := RunFairnessLab(opts); err == nil {
		t.Error("lab with unknown strategy accepted")
	}
}

func TestConvergenceEpisodes(t *testing.T) {
	cases := []struct {
		name string
		hist []float64
		want int
	}{
		{"empty", nil, 0},
		{"single", []float64{0.5}, 1},
		{"never improves", []float64{1, 0.5, 0.2}, 1},
		// Step at episode 2; the 3-episode smoothing window reaches 90% of
		// the improvement only once the pre-step value falls out of it.
		{"step", []float64{0, 1, 1, 1}, 4},
		{"gradual", []float64{0, 0.25, 0.5, 0.75, 1}, 5},
	}
	for _, c := range cases {
		if got := convergenceEpisodes(c.hist); got != c.want {
			t.Errorf("%s: convergenceEpisodes = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestSanitizeStrategyFilename(t *testing.T) {
	if got := SanitizeStrategyFilename("alpha:2.5"); got != "alpha_2.5" {
		t.Errorf("sanitized to %q", got)
	}
	if got := SanitizeStrategyFilename("paper"); got != "paper" {
		t.Errorf("sanitized to %q", got)
	}
}
