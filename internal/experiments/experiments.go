// Package experiments reproduces every table and figure of the paper's
// evaluation (§2 motivation, §5 evaluation, Appendices A–B). Each ExpFigure
// / ExpTable function runs the corresponding workload on the emulation
// substrate and returns structured rows; cmd/figures renders them and the
// repository-root benchmarks wrap them for `go test -bench`.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cc"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// newSchemeInstance instantiates a registered scheme for experiments that
// wire flows manually (multi-bottleneck topology).
func newSchemeInstance(name string) (transport.CongestionControl, error) {
	return cc.New(name)
}

// Opts scales experiment cost. Full reproduces the paper's trial counts and
// durations; Quick shrinks both for CI and benchmarks.
type Opts struct {
	Trials int
	// TimeScale multiplies scenario durations (1.0 = paper's).
	TimeScale float64
	// Workers bounds how many scenarios run concurrently; <= 0 selects
	// GOMAXPROCS. Results are identical for any worker count: every
	// scenario is a pure function of its seed and config, and the batch
	// engine returns results in submission order.
	Workers int
	// Telemetry, when set, collects runtime metrics from every scenario
	// grid: live batch progress plus merged per-layer counters (see
	// runner.RunBatchObserved). Tables are byte-identical with or without
	// it.
	Telemetry *telemetry.Registry
}

// Quick returns CI-friendly settings.
func Quick() Opts { return Opts{Trials: 2, TimeScale: 0.35} }

// Full returns paper-faithful settings.
func Full() Opts { return Opts{Trials: 10, TimeScale: 1.0} }

func (o Opts) trials() int {
	if o.Trials <= 0 {
		return 1
	}
	return o.Trials
}

func (o Opts) scale(d float64) float64 {
	if o.TimeScale <= 0 {
		return d
	}
	return d * o.TimeScale
}

// runAll executes the scenario grid through the batch engine, in submission
// order. Experiments build their full grid up front, then aggregate by
// index; nested scheme × config × trial loops become index arithmetic.
func runAll(o Opts, grid []runner.Scenario) []*runner.Result {
	rs, err := runner.RunBatchObserved(context.Background(), grid, o.Workers, o.Telemetry)
	if err != nil {
		panic(err)
	}
	return rs
}

// run executes one scenario outside the batch engine (motivation and
// ablation experiments drive single runs directly), still attaching the
// shared telemetry registry. Runs inside one experiment may execute
// concurrently via forEach, but counter and histogram writes are atomic and
// commutative, so the merged totals stay deterministic.
func (o Opts) run(sc runner.Scenario) *runner.Result {
	sc.Telemetry = o.Telemetry
	return runner.MustRun(sc)
}

// forEach fans n hand-built jobs (multi-bottleneck topologies, parking-lot
// sims — anything that is not a plain Scenario) across the worker pool.
// Each job must be self-contained: build its own simulator, write only into
// its own result slot.
func forEach(o Opts, n int, fn func(i int)) {
	err := runner.ForEach(n, o.Workers, func(i int) error {
		fn(i)
		return nil
	})
	if err != nil {
		panic(err)
	}
}

// Schemes evaluated across the comparison figures, in presentation order.
var Schemes = []string{"cubic", "vegas", "bbr", "copa", "remy", "aurora", "vivace", "orca", "astraea"}

// Table is a rendered result: a titled grid of formatted cells.
type Table struct {
	ID      string // e.g. "fig6"
	Title   string
	Columns []string
	Rows    [][]string
	Note    string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "-- %s\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// mbps formats bits/sec as Mbps.
func mbps(v float64) string { return fmt.Sprintf("%.1f", v/1e6) }

// staggeredFlows builds the canonical Fig. 6 workload: n flows of scheme,
// started every interval seconds, each running for dur seconds.
func staggeredFlows(scheme string, n int, interval, dur float64) []runner.FlowSpec {
	specs := make([]runner.FlowSpec, n)
	for i := range specs {
		specs[i] = runner.FlowSpec{
			Scheme:   scheme,
			Start:    float64(i) * interval,
			Duration: dur,
		}
	}
	return specs
}

// tputSeries extracts the per-flow throughput series of a result.
func tputSeries(res *runner.Result) []*metrics.Timeseries {
	out := make([]*metrics.Timeseries, len(res.Flows))
	for i, fr := range res.Flows {
		out[i] = fr.Tput
	}
	return out
}
