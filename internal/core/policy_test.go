package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/nn"
)

// refState builds a stacked state for the reference policy from scenario
// quantities.
func refState(cfg Config, tputBps, maxTputBps, lat, minLat float64) []float64 {
	ls := LocalState{
		TputRatio:     tputBps / maxTputBps,
		MaxTput:       maxTputBps / cfg.TputScale,
		LatRatio:      lat / minLat,
		MinLat:        minLat / cfg.LatScale,
		RelCwnd:       tputBps * lat / (maxTputBps * minLat),
		InflightRatio: 1,
		PacingRatio:   tputBps / maxTputBps,
	}
	out := make([]float64, 0, cfg.StateDim())
	for i := 0; i < cfg.HistoryLen; i++ {
		out = append(out, ls.Vector()...)
	}
	return out
}

func TestReferencePolicyMonotoneInDelay(t *testing.T) {
	cfg := DefaultConfig()
	p := NewReferencePolicy(cfg)
	prev := 2.0
	for _, lat := range []float64{0.0305, 0.032, 0.035, 0.040, 0.050, 0.070} {
		a := p.Action(refState(cfg, 50e6, 100e6, lat, 0.030))
		if a > prev+1e-9 {
			t.Fatalf("action not monotone decreasing in delay: a(%v) = %v after %v", lat, a, prev)
		}
		prev = a
	}
}

func TestReferencePolicyProbesUpOnEmptyQueue(t *testing.T) {
	cfg := DefaultConfig()
	p := NewReferencePolicy(cfg)
	a := p.Action(refState(cfg, 20e6, 100e6, 0.0301, 0.030))
	if a < 0.5 {
		t.Fatalf("near-empty queue action %v, want strong increase", a)
	}
}

func TestReferencePolicyBacksOffUnderHeavyLoss(t *testing.T) {
	cfg := DefaultConfig()
	p := NewReferencePolicy(cfg)
	state := refState(cfg, 50e6, 100e6, 0.035, 0.030)
	state[5] = 0.5 // loss ratio feature of the newest frame
	if a := p.Action(state); a != -1 {
		t.Fatalf("heavy congestive loss action %v, want -1", a)
	}
}

func TestReferencePolicyFairnessDirection(t *testing.T) {
	// At a shared queueing delay, the flow above the fair rate must get a
	// lower action than the flow below it — this is the §5.5 mechanism
	// that transfers bandwidth from fast to slow flows.
	cfg := DefaultConfig()
	p := NewReferencePolicy(cfg)
	lat, minLat := 0.036, 0.030
	fast := p.Action(refState(cfg, 80e6, 100e6, lat, minLat))
	slow := p.Action(refState(cfg, 20e6, 100e6, lat, minLat))
	if !(slow > fast) {
		t.Fatalf("slow flow action %v not above fast flow action %v", slow, fast)
	}
}

func TestReferencePolicyEquilibriumScalesWithFlows(t *testing.T) {
	p := NewReferencePolicy(DefaultConfig())
	d1 := p.EquilibriumQueueDelay(1, 100e6)
	d3 := p.EquilibriumQueueDelay(3, 100e6)
	if d3 <= d1 {
		t.Fatalf("equilibrium queue with 3 flows (%v) should exceed 1 flow (%v)", d3, d1)
	}
	// Faster links need less queueing for the same flow count.
	if p.EquilibriumQueueDelay(1, 1e9) >= d1 {
		t.Fatal("equilibrium queue should shrink with capacity")
	}
}

func TestReferencePolicyNoSignal(t *testing.T) {
	cfg := DefaultConfig()
	p := NewReferencePolicy(cfg)
	if a := p.Action(make([]float64, cfg.StateDim())); a != 1 {
		t.Fatalf("no-signal action %v, want probe (1)", a)
	}
	if a := p.Action(nil); a != 0 {
		t.Fatalf("empty state action %v, want 0", a)
	}
}

func TestMLPPolicyClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// A linear output layer can exceed [-1,1]; the wrapper must clamp.
	net := nn.NewMLP(rng, nn.ReLU, nn.Linear, 4, 4, 1)
	for i := range net.Layers[1].B {
		net.Layers[1].B[i] = 50
	}
	p := &MLPPolicy{Net: net}
	if a := p.Action([]float64{1, 1, 1, 1}); a != 1 {
		t.Fatalf("unclamped action %v", a)
	}
}

func TestSaveLoadPolicy(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "actor.json")
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultConfig()
	net := nn.NewMLP(rng, nn.ReLU, nn.Tanh, cfg.StateDim(), 8, 1)
	if err := SavePolicy(path, net); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPolicy(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	state := refState(cfg, 50e6, 100e6, 0.036, 0.030)
	want := (&MLPPolicy{Net: net}).Action(state)
	if got := loaded.Action(state); got != want {
		t.Fatalf("loaded policy differs: %v vs %v", got, want)
	}
}

func TestLoadPolicyErrors(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := LoadPolicy("/nonexistent/actor.json", cfg); err == nil {
		t.Fatal("expected error for missing file")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPolicy(bad, cfg); err == nil {
		t.Fatal("expected error for corrupt file")
	}
}

// A structurally valid weight file whose input width does not match the
// config must be rejected at load time, not at the first Forward (which
// panics).
func TestLoadPolicyDimensionMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "narrow.json")
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(3))
	narrow := nn.NewMLP(rng, nn.ReLU, nn.Tanh, cfg.StateDim()-8, 8, 1)
	if err := SavePolicy(path, narrow); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPolicy(path, cfg); err == nil {
		t.Fatal("expected error for state-dim mismatch")
	}
	wide := nn.NewMLP(rng, nn.ReLU, nn.Tanh, cfg.StateDim(), 8, 2)
	if err := SavePolicy(path, wide); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPolicy(path, cfg); err == nil {
		t.Fatal("expected error for action-dim mismatch")
	}
}

// SavePolicy must be atomic: saving over an existing file either keeps the
// old contents or installs the complete new ones, and never leaves temp
// litter behind on success.
func TestSavePolicyAtomicOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "actor.json")
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(4))
	first := nn.NewMLP(rng, nn.ReLU, nn.Tanh, cfg.StateDim(), 8, 1)
	if err := SavePolicy(path, first); err != nil {
		t.Fatal(err)
	}
	second := nn.NewMLP(rng, nn.ReLU, nn.Tanh, cfg.StateDim(), 8, 1)
	if err := SavePolicy(path, second); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPolicy(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	state := refState(cfg, 50e6, 100e6, 0.036, 0.030)
	if got, want := loaded.Action(state), (&MLPPolicy{Net: second}).Action(state); got != want {
		t.Fatalf("loaded policy is not the latest save: %v vs %v", got, want)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after save, want just the policy: %v", len(entries), entries)
	}
}

func TestDistillPolicyImitatesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("distillation is seconds of CPU")
	}
	cfg := DefaultConfig()
	opts := DefaultDistillOptions()
	opts.Samples = 4000
	opts.Epochs = 12
	opts.Hidden = []int{64, 32}
	net, loss := DistillPolicy(cfg, opts)
	if loss > 0.05 {
		t.Fatalf("imitation MSE %v, want < 0.05", loss)
	}
	// The distilled network must preserve the fairness-critical ordering.
	p := &MLPPolicy{Net: net}
	lat, minLat := 0.036, 0.030
	fast := p.Action(refState(cfg, 80e6, 100e6, lat, minLat))
	slow := p.Action(refState(cfg, 20e6, 100e6, lat, minLat))
	if !(slow > fast) {
		t.Fatalf("distilled policy lost fairness ordering: slow %v fast %v", slow, fast)
	}
}
