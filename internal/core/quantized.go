// Quantized policy deployment: the glue between nn's fixed-point compiler
// and the serving stack. A trained actor (JSON float weights) is compiled
// with QuantizeMLPPolicy against a calibration sweep of plausible stacked
// states, persisted as a CRC-sealed binary blob (SaveQuantizedPolicy /
// cmd/astraea-quantize), and loaded back by LoadQuantizedPolicy or — format
// sniffed — by LoadServingPolicy, which is what the serve daemons use. The
// float path stays available behind LoadServingPolicy's quantize=false as
// the equivalence oracle (internal/check pins the two within tolerance on
// the 220-seed sweep).

package core

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/ckpt"
	"repro/internal/nn"
)

// QuantizedPolicy wraps a fixed-point compiled actor. It is the default
// serving form: ~4x smaller parameters than the float net and a forward
// pass that is several times faster (see DESIGN.md §12), with actions that
// match the float oracle within the closed-loop tolerance gates.
type QuantizedPolicy struct {
	Q *nn.QuantizedMLP
}

// Action implements Policy, clamping to the action range like MLPPolicy.
func (p *QuantizedPolicy) Action(state []float64) float64 {
	a := p.Q.Forward(state)[0]
	if a > 1 {
		a = 1
	}
	if a < -1 {
		a = -1
	}
	return a
}

// ClonePolicy implements PolicyCloner: the compiled arrays are immutable
// and shared; each clone gets private evaluation scratch, so sharded
// evaluators run clones concurrently without copies of the weights.
func (p *QuantizedPolicy) ClonePolicy() Policy {
	return &QuantizedPolicy{Q: p.Q.Clone()}
}

// calibrationStates builds the quantization calibration sweep: n plausible
// stacked states from the distillation sampler (fixed seed — quantizing the
// same net twice yields bitwise-identical artifacts) plus two corner
// states: all features at their operating bounds, and all zeros. The bounds
// frame keeps every per-feature range wide enough that no state the
// transport can produce saturates the input quantizer (the quantizer holds
// 2× headroom above the corner). Per feature the corner is its tightest
// real bound, because input resolution is 2^14 steps over the corner value:
// TputRatio ≤ 1 by construction (tput/thrmax); MaxTput 2 covers links to
// 2×TputScale; MinLat 8 covers 800 ms base RTTs; InflightRatio ≈ 1 except
// transiently after a cwnd cut. LatRatio, RelCwnd, LossRatio and
// PacingRatio have no physical bound short of the upstream featureCap
// clamp — startup states routinely push PacingRatio past small corners
// (pacing/thrmax with thrmax still tiny), so those four calibrate to the
// cap itself.
func calibrationStates(cfg Config, n int) [][]float64 {
	rng := rand.New(rand.NewSource(42))
	cal := make([][]float64, 0, n+2)
	for i := 0; i < n; i++ {
		cal = append(cal, sampleState(cfg, rng))
	}
	bounds := LocalState{
		TputRatio: 2, MaxTput: 2, LatRatio: featureCap, MinLat: 8,
		RelCwnd: featureCap, LossRatio: featureCap, InflightRatio: 4,
		PacingRatio: featureCap,
	}
	hi := make([]float64, 0, cfg.StateDim())
	for w := 0; w < cfg.HistoryLen; w++ {
		hi = append(hi, bounds.Vector()...)
	}
	return append(cal, hi, make([]float64, cfg.StateDim()))
}

// SampleCalibrationState draws one plausible stacked state from the
// distillation sampler — the distribution quantization calibrates against.
// Exposed for tools (cmd/astraea-quantize) that replay a sweep through both
// policy forms to report divergence before deploying an artifact.
func SampleCalibrationState(cfg Config, rng *rand.Rand) []float64 {
	return sampleState(cfg, rng)
}

// QuantizeMLPPolicy compiles a float actor into its fixed-point serving
// form, calibrated against sampled stacked states for cfg. The compilation
// is deterministic: the same weights and config always produce the same
// artifact.
func QuantizeMLPPolicy(p *MLPPolicy, cfg Config) (*QuantizedPolicy, error) {
	q, err := nn.Quantize(p.Net, nn.QuantizeOptions{Calibration: calibrationStates(cfg, 512)})
	if err != nil {
		return nil, fmt.Errorf("core: quantize policy: %w", err)
	}
	return &QuantizedPolicy{Q: q}, nil
}

// SaveQuantizedPolicy writes the compiled policy to path as a CRC-sealed
// binary blob, atomically — the deployable artifact cmd/astraea-quantize
// emits and astraea-serve hot-reloads.
func SaveQuantizedPolicy(path string, p *QuantizedPolicy) error {
	return ckpt.WriteAtomic(path, p.Q.QuantizedBlob(), 0o644)
}

// LoadQuantizedPolicyBytes decodes a quantized-policy blob (as written by
// SaveQuantizedPolicy) and validates its shape against cfg with the same
// rules and error text as LoadPolicy; name appears in errors.
func LoadQuantizedPolicyBytes(blob []byte, name string, cfg Config) (*QuantizedPolicy, error) {
	qm, err := nn.OpenQuantizedBlob(blob)
	if err != nil {
		return nil, fmt.Errorf("core: parse quantized policy %s: %w", name, err)
	}
	if err := validatePolicyShape(name, qm.InDim(), qm.OutDim(), cfg); err != nil {
		return nil, err
	}
	return &QuantizedPolicy{Q: qm}, nil
}

// LoadQuantizedPolicy reads a quantized-policy blob from path.
func LoadQuantizedPolicy(path string, cfg Config) (*QuantizedPolicy, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return LoadQuantizedPolicyBytes(blob, path, cfg)
}

// LoadServingPolicy loads a policy artifact for serving, sniffing the
// format: a ckpt-sealed blob loads as the compiled quantized policy it
// contains; JSON float weights load as an MLPPolicy and — when quantize is
// true, the serving default — are compiled on the spot, so operators can
// point the server at trainer output and still serve fixed-point.
// quantize=false keeps the float network as loaded (the equivalence
// oracle).
func LoadServingPolicy(path string, cfg Config, quantize bool) (Policy, error) {
	p, _, err := LoadServingPolicyMeta(path, cfg, quantize)
	return p, err
}

// LoadServingPolicyMeta is LoadServingPolicy extended with generation
// metadata: a sealed policy artifact (SaveSealedPolicy, the pilot's
// promotion format) returns its embedded PolicyMeta alongside the policy —
// compiled to the quantized serving form when quantize is true, the
// quantize-on-promote path. Plain JSON weights and quantized blobs carry no
// metadata and return nil.
func LoadServingPolicyMeta(path string, cfg Config, quantize bool) (Policy, *PolicyMeta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var mp *MLPPolicy
	var meta *PolicyMeta
	if len(data) >= len(ckpt.Magic) && string(data[:len(ckpt.Magic)]) == ckpt.Magic {
		// A ckpt container holds either a quantized blob or a sealed float
		// artifact; the payload's leading tag discriminates.
		payload, err := ckpt.Open(data)
		if err != nil {
			return nil, nil, fmt.Errorf("core: policy artifact %s: %w", path, err)
		}
		if tag := ckpt.NewDecoder(payload).Int64(); tag == sealedPolicyTag {
			if mp, meta, err = decodeSealedPolicy(payload, path, cfg); err != nil {
				return nil, nil, err
			}
		} else {
			qp, err := LoadQuantizedPolicyBytes(data, path, cfg)
			return qp, nil, err
		}
	} else if mp, err = parsePolicyWeights(data, path, cfg); err != nil {
		return nil, nil, err
	}
	if !quantize {
		return mp, meta, nil
	}
	qp, err := QuantizeMLPPolicy(mp, cfg)
	if err != nil {
		return nil, nil, err
	}
	return qp, meta, nil
}
