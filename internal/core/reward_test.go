package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

func flatObs(tput float64, w int) FlowObs {
	hist := make([]float64, w)
	for i := range hist {
		hist[i] = tput
	}
	return FlowObs{TputBps: tput, TputHistory: hist, AvgLat: 0.030}
}

func TestRewardIdealState(t *testing.T) {
	cfg := DefaultConfig()
	link := LinkInfo{Bandwidth: 100e6, BaseOWD: 0.015}
	// Two flows splitting the link perfectly, no queueing, no loss.
	rc := Reward(cfg, []FlowObs{flatObs(50e6, 5), flatObs(50e6, 5)}, link)
	if math.Abs(rc.Thr-1.0) > 1e-9 {
		t.Errorf("Rthr %v, want 1", rc.Thr)
	}
	if rc.Lat != 0 || rc.Loss != 0 || rc.Fair != 0 || rc.Stab != 0 {
		t.Errorf("ideal state has nonzero penalties: %+v", rc)
	}
	if math.Abs(rc.Total-cfg.C0) > 1e-9 {
		t.Errorf("Total %v, want c0 = %v", rc.Total, cfg.C0)
	}
}

func TestRewardBounded(t *testing.T) {
	cfg := DefaultConfig()
	link := LinkInfo{Bandwidth: 100e6, BaseOWD: 0.015}
	// Catastrophic state: all loss.
	bad := FlowObs{TputBps: 1e6, TputHistory: []float64{1e6}, AvgLat: 1.0,
		LossBps: 100e6, PacingBps: 100e6}
	rc := Reward(cfg, []FlowObs{bad}, link)
	if rc.Total < -0.1 || rc.Total > 0.1 {
		t.Fatalf("reward %v escaped (-0.1, 0.1)", rc.Total)
	}
}

func TestRewardEmpty(t *testing.T) {
	cfg := DefaultConfig()
	rc := Reward(cfg, nil, LinkInfo{Bandwidth: 100e6, BaseOWD: 0.015})
	if rc.Total != 0 {
		t.Fatalf("empty reward %v", rc.Total)
	}
	rc = Reward(cfg, []FlowObs{flatObs(1, 1)}, LinkInfo{})
	if rc.Total != 0 {
		t.Fatalf("zero-bandwidth reward %v", rc.Total)
	}
}

func TestLatencyToleranceKnee(t *testing.T) {
	cfg := DefaultConfig()
	link := LinkInfo{Bandwidth: 100e6, BaseOWD: 0.015} // base RTT 30 ms
	// Latency below (1+beta)*RTT: no penalty.
	within := flatObs(100e6, 5)
	within.AvgLat = 0.032
	within.PacingBps = 100e6
	if rc := Reward(cfg, []FlowObs{within}, link); rc.Lat != 0 {
		t.Fatalf("latency within tolerance penalized: %v", rc.Lat)
	}
	// Above the knee: penalized, monotonically in excess latency.
	above1 := within
	above1.AvgLat = 0.040
	above2 := within
	above2.AvgLat = 0.060
	r1 := Reward(cfg, []FlowObs{above1}, link).Lat
	r2 := Reward(cfg, []FlowObs{above2}, link).Lat
	if r1 <= 0 || r2 <= r1 {
		t.Fatalf("latency penalty not monotone: %v then %v", r1, r2)
	}
}

func TestFairnessTermSeparatesUnequalFlows(t *testing.T) {
	cfg := DefaultConfig()
	link := LinkInfo{Bandwidth: 100e6, BaseOWD: 0.015}
	equal := Reward(cfg, []FlowObs{flatObs(50e6, 5), flatObs(50e6, 5)}, link)
	unequal := Reward(cfg, []FlowObs{flatObs(90e6, 5), flatObs(10e6, 5)}, link)
	if unequal.Fair <= equal.Fair {
		t.Fatalf("unequal flows fairness penalty %v not above equal %v", unequal.Fair, equal.Fair)
	}
	if unequal.Total >= equal.Total {
		t.Fatalf("unequal allocation rewarded: %v >= %v", unequal.Total, equal.Total)
	}
}

func TestStabilityTermSeparatesOscillation(t *testing.T) {
	cfg := DefaultConfig()
	link := LinkInfo{Bandwidth: 100e6, BaseOWD: 0.015}
	smooth := flatObs(50e6, 5)
	oscillating := FlowObs{
		TputBps: 50e6, AvgLat: 0.030,
		TputHistory: []float64{20e6, 80e6, 20e6, 80e6, 50e6},
	}
	rs := Reward(cfg, []FlowObs{smooth, smooth}, link)
	ro := Reward(cfg, []FlowObs{oscillating, oscillating}, link)
	if ro.Stab <= rs.Stab {
		t.Fatalf("oscillation stability penalty %v not above smooth %v", ro.Stab, rs.Stab)
	}
}

// The Fig. 4 claim: near equality, Astraea's fairness penalty
// discriminates better than the Jain index.
func TestFairnessPenaltyMoreSensitiveThanJainNearEquality(t *testing.T) {
	jainDrop := 1 - metrics.Jain([]float64{60, 40}) // gap 20 on 100 total
	rfairDrop := FairnessPenalty([]float64{60, 40}) - FairnessPenalty([]float64{50, 50})
	if !(rfairDrop > jainDrop*2) {
		t.Fatalf("R_fair drop %v not clearly above Jain drop %v", rfairDrop, jainDrop)
	}
	// Paper's specific numbers: Jain falls ~0.038, 1-R_fair falls ~0.19... R_fair
	// rises by ~0.1 in our normalization (sqrt(ss/(n*sum^2))): check magnitudes.
	if jainDrop > 0.05 {
		t.Fatalf("Jain drop %v should be small (saturation)", jainDrop)
	}
}

// Property: R_fair is zero iff all equal, positive otherwise, and
// scale-invariant.
func TestFairnessPenaltyProperties(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		p := FairnessPenalty(xs)
		if a == b && b == c {
			return p < 1e-12
		}
		if p <= 0 {
			return false
		}
		scaled := []float64{xs[0] * 7, xs[1] * 7, xs[2] * 7}
		return math.Abs(FairnessPenalty(scaled)-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

// The documented edge contracts of Reward, one regression test per clause.

func TestRewardEdgeZeroTputWithLoss(t *testing.T) {
	cfg := DefaultConfig()
	link := LinkInfo{Bandwidth: 100e6, BaseOWD: 0.015}
	// A flow that delivered nothing but lost bytes hits the loss ratio's
	// supremum 1, not a division by zero.
	rc := Reward(cfg, []FlowObs{{TputBps: 0, LossBps: 5e6, AvgLat: 0.030}}, link)
	if rc.Loss != 1 {
		t.Fatalf("all-loss flow loss ratio %v, want 1", rc.Loss)
	}
	// Delivered nothing, lost nothing: zero contribution.
	rc = Reward(cfg, []FlowObs{{TputBps: 0, LossBps: 0, AvgLat: 0.030}}, link)
	if rc.Loss != 0 {
		t.Fatalf("idle flow loss ratio %v, want 0", rc.Loss)
	}
}

func TestRewardEdgeNoPropagationFloor(t *testing.T) {
	cfg := DefaultConfig()
	f := flatObs(50e6, 5)
	f.AvgLat = 10 // enormous queueing signal
	f.PacingBps = 100e6
	for _, owd := range []float64{0, -0.01} {
		rc := Reward(cfg, []FlowObs{f}, LinkInfo{Bandwidth: 100e6, BaseOWD: owd})
		if rc.Lat != 0 {
			t.Fatalf("BaseOWD=%v produced latency term %v, want 0", owd, rc.Lat)
		}
		if math.IsNaN(rc.Total) || math.IsInf(rc.Total, 0) {
			t.Fatalf("BaseOWD=%v produced non-finite total %v", owd, rc.Total)
		}
	}
}

func TestRewardEdgeDegenerateTolerance(t *testing.T) {
	// Beta = -1 makes the tolerance zero; the documented contract is that a
	// non-positive tolerance disables the latency term rather than treating
	// every measured RTT as excess queueing.
	cfg := DefaultConfig()
	cfg.Beta = -1
	f := flatObs(50e6, 5)
	f.AvgLat = 0.5
	f.PacingBps = 100e6
	rc := Reward(cfg, []FlowObs{f}, LinkInfo{Bandwidth: 100e6, BaseOWD: 0.015})
	if rc.Lat != 0 {
		t.Fatalf("zero tolerance produced latency term %v, want 0 (disabled)", rc.Lat)
	}
}

func TestRewardEdgeZeroWindowedAverage(t *testing.T) {
	cfg := DefaultConfig()
	link := LinkInfo{Bandwidth: 100e6, BaseOWD: 0.015}
	// All-zero history: the variation ratio has no scale, so the flow is
	// skipped by the stability term instead of dividing by zero.
	dead := FlowObs{TputBps: 0, TputHistory: []float64{0, 0, 0}, AvgLat: 0.030}
	rc := Reward(cfg, []FlowObs{dead, flatObs(50e6, 5)}, link)
	if rc.Stab != 0 {
		t.Fatalf("zero-average history produced stability term %v", rc.Stab)
	}
	for _, v := range []float64{rc.Thr, rc.Lat, rc.Loss, rc.Fair, rc.Stab, rc.Total} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite component: %+v", rc)
		}
	}
}

func TestRewardEdgeNegativeBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	rc := Reward(cfg, []FlowObs{flatObs(1e6, 3)}, LinkInfo{Bandwidth: -5, BaseOWD: 0.015})
	if rc != (RewardComponents{}) {
		t.Fatalf("negative bandwidth produced nonzero components: %+v", rc)
	}
}

func TestRewardThroughputMonotone(t *testing.T) {
	cfg := DefaultConfig()
	link := LinkInfo{Bandwidth: 100e6, BaseOWD: 0.015}
	lo := Reward(cfg, []FlowObs{flatObs(30e6, 5), flatObs(30e6, 5)}, link)
	hi := Reward(cfg, []FlowObs{flatObs(50e6, 5), flatObs(50e6, 5)}, link)
	if hi.Total <= lo.Total {
		t.Fatalf("fuller link not rewarded: %v vs %v", hi.Total, lo.Total)
	}
}
