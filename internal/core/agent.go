package core

import (
	"repro/internal/transport"
)

// ActionToCwnd applies Eq. 3: a multiplicative cwnd update scaled by the
// action-control coefficient alpha.
func ActionToCwnd(cwnd, action, alpha float64) float64 {
	if action >= 0 {
		return cwnd * (1 + alpha*action)
	}
	return cwnd / (1 - alpha*action)
}

// Agent is Astraea's deployment-phase congestion controller: each MTP it
// assembles the local state, queries the policy (directly or through a
// shared inference Service), and enforces the Eq. 3 window update with
// cwnd/sRTT pacing. Global information is used only during training, never
// here (§3.1, Evaluation).
type Agent struct {
	Cfg    Config
	policy Policy
	// Service, when set, routes inference through the shared batch service
	// instead of calling the policy synchronously.
	service *Service

	states *StateBlock

	// Startup mirrors kernel slow start: the window doubles per RTT until
	// the first queueing or loss signal, after which the policy takes over.
	// Without it a new flow would be limited to (1+alpha) growth per MTP
	// from the initial window, contradicting the sub-second convergence the
	// paper measures (Fig. 12).
	inStartup bool

	// Drain scheduling: every DrainPeriod MTPs the agent spends DrainLen
	// MTPs shrinking its window by DrainFactor per MTP, then restores it.
	// This periodically empties the bottleneck queue so every competing
	// flow re-observes the true base RTT — without it, a late-arriving
	// flow's minRTT permanently includes the incumbents' standing queue,
	// biasing delay-targeting control and capping achievable fairness (the
	// same reason BBR runs PROBE_RTT and Copa drains once per 5 RTT). It is
	// a deployment-side mechanism like pacing, independent of which policy
	// (reference or neural) is loaded.
	DrainPeriod  int
	DrainLen     int
	DrainFactor  float64
	mtpCount     int
	drainOffset  int
	preDrainCwnd float64

	// Hooks for the training environment.
	OnMTPState func(f *transport.Flow, st transport.MTPStats, ls LocalState)
	// ActionOverride, when non-nil, replaces the policy output (training
	// exploration injects noise this way).
	ActionOverride func(state []float64, policyAction float64) float64

	// LastAction and LastState expose the most recent decision.
	LastAction float64
	LastState  []float64
}

// NewAgent builds an agent around policy (nil selects the reference
// policy). The drain offset that staggers drain windows across flows is
// derived from the flow ID at Init time — never from process-global state,
// which would race under concurrent scenarios and make results depend on
// how many agents were created earlier in the process.
func NewAgent(cfg Config, policy Policy) *Agent {
	if policy == nil {
		policy = NewReferencePolicy(cfg)
	}
	return &Agent{
		Cfg: cfg, policy: policy, states: NewStateBlock(cfg), inStartup: true,
		DrainPeriod: 64, DrainLen: 3, DrainFactor: 0.85,
		drainOffset: -1,
	}
}

// NewServedAgent builds an agent whose inference goes through a shared
// batch Service.
func NewServedAgent(cfg Config, svc *Service) *Agent {
	a := NewAgent(cfg, nil)
	a.service = svc
	return a
}

// Name implements transport.CongestionControl.
func (a *Agent) Name() string { return "astraea" }

// StateInput returns the current stacked state vector (the training
// environment uses it as the s' of a closing transition).
func (a *Agent) StateInput() []float64 { return a.states.Input() }

// Init implements transport.CongestionControl.
func (a *Agent) Init(f *transport.Flow) {
	if a.drainOffset < 0 {
		// Stagger drain windows across flows deterministically: derive the
		// offset from the flow ID so it is a pure function of the scenario.
		// The +1 keeps flow 0 from landing on offset 0, which would open a
		// drain window during its first MTPs — mid-slow-start, with no
		// window worth restoring.
		id := f.ID
		if id < 0 {
			id = -id
		}
		a.drainOffset = ((id + 1) * 17) % 64
	}
	f.ScheduleMTP(a.Cfg.MTP)
}

// OnAck implements transport.CongestionControl: slow-start growth happens
// per ack while in startup.
func (a *Agent) OnAck(f *transport.Flow, e transport.AckEvent) {
	if a.inStartup {
		f.SetCwnd(f.Cwnd() + 1)
	}
}

// OnLoss implements transport.CongestionControl: any loss ends startup.
func (a *Agent) OnLoss(f *transport.Flow, e transport.LossEvent) {
	if a.inStartup {
		a.inStartup = false
		f.SetCwnd(f.Cwnd() / 2)
	}
}

// OnMTP implements transport.CongestionControl: the control decision.
func (a *Agent) OnMTP(f *transport.Flow, st transport.MTPStats) {
	ls := localStateFromMTP(a.Cfg, st)
	a.states.Push(ls)
	if a.OnMTPState != nil {
		a.OnMTPState(f, st, ls)
	}

	// Exit startup on the first sign of queueing.
	if a.inStartup && ls.LatRatio > 1.15 {
		a.inStartup = false
	}

	if !a.inStartup {
		a.mtpCount++
		state := a.states.Input()
		var action float64
		if a.service != nil {
			action = a.service.Infer(state)
		} else {
			action = a.policy.Action(state)
		}
		if a.ActionOverride != nil {
			action = a.ActionOverride(state, action)
		}
		if action > 1 {
			action = 1
		}
		if action < -1 {
			action = -1
		}
		a.LastAction = action
		a.LastState = state

		phase := -1
		if a.DrainPeriod > 0 {
			phase = (a.mtpCount + a.drainOffset) % a.DrainPeriod
		}
		switch {
		case phase >= 0 && phase < a.DrainLen:
			// Drain window: shrink decisively so the bottleneck queue can
			// empty; remember the window to restore afterwards.
			if phase == 0 {
				a.preDrainCwnd = f.Cwnd()
			}
			f.SetCwnd(f.Cwnd() * a.DrainFactor)
		case phase == a.DrainLen && a.preDrainCwnd > 0:
			// Restore to slightly below the pre-drain window and resume
			// policy control from there.
			f.SetCwnd(a.preDrainCwnd * 0.97)
			a.preDrainCwnd = 0
		default:
			f.SetCwnd(ActionToCwnd(f.Cwnd(), action, a.Cfg.Alpha))
		}
	}

	// Pacing at cwnd/sRTT (§3.3), capped at a multiple of the best
	// observed delivery rate: a runaway window must not translate into an
	// arbitrarily fast packet clock (the same guard BBR's pacing gain
	// provides), which matters during exploration-heavy training.
	if srtt := f.SRTT(); srtt > 0 {
		pacing := 1.1 * f.Cwnd() * transport.MSS * 8 / srtt
		if maxT := f.MaxTputBps(); maxT > 0 && pacing > 8*maxT {
			pacing = 8 * maxT
		}
		f.SetPacingBps(pacing)
	}
	f.ScheduleMTP(a.Cfg.MTP)
}
