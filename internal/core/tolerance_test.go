package core

import (
	"math"
	"testing"
)

// driveMode feeds the detector windows of constant latRatio decisions.
func driveMode(p *ReferencePolicy, latRatio float64, windows int) {
	for i := 0; i < windows*p.ModeWindow; i++ {
		p.observeMode(latRatio)
	}
}

func TestToleranceReducesDeltaUnderPersistentQueue(t *testing.T) {
	p := NewReferencePolicy(DefaultConfig())
	base := p.curDelta
	driveMode(p, 2.0, 2) // queue never drains: floor 2.0
	if p.curDelta >= base {
		t.Fatalf("delta %v did not shrink under persistent queue", p.curDelta)
	}
	if p.curDelta < p.MinDelta {
		t.Fatalf("delta %v below MinDelta %v", p.curDelta, p.MinDelta)
	}
}

func TestToleranceRecoversWhenQueueDrains(t *testing.T) {
	p := NewReferencePolicy(DefaultConfig())
	driveMode(p, 2.0, 2)
	reduced := p.curDelta
	driveMode(p, 1.0, 1) // queue drains each window
	if p.curDelta != p.Delta {
		t.Fatalf("delta %v did not recover from %v", p.curDelta, reduced)
	}
}

func TestToleranceContinuous(t *testing.T) {
	// The response must be graded, not a step: a slightly deeper floor
	// yields a slightly smaller delta.
	// Floors chosen within the graded region (before the MinDelta clamp).
	deltas := make([]float64, 0, 4)
	for _, floor := range []float64{1.18, 1.25, 1.32, 1.40} {
		p := NewReferencePolicy(DefaultConfig())
		driveMode(p, floor, 1)
		deltas = append(deltas, p.curDelta)
	}
	for i := 1; i < len(deltas); i++ {
		if deltas[i] >= deltas[i-1] {
			t.Fatalf("tolerance not strictly graded: %v", deltas)
		}
	}
}

func TestToleranceSymmetricAcrossIdenticalObservers(t *testing.T) {
	// Two flows observing the same shared floor must derive identical
	// deltas — the property that preserves intra-Astraea fairness.
	a := NewReferencePolicy(DefaultConfig())
	b := NewReferencePolicy(DefaultConfig())
	driveMode(a, 1.6, 3)
	driveMode(b, 1.6, 3)
	if a.curDelta != b.curDelta {
		t.Fatalf("identical observations, different deltas: %v vs %v", a.curDelta, b.curDelta)
	}
}

func TestToleranceBoundedSpiral(t *testing.T) {
	// Even an extreme persistent floor must not push delta below MinDelta
	// (the bound that prevents the multi-bottleneck self-amplification).
	p := NewReferencePolicy(DefaultConfig())
	driveMode(p, 50, 10)
	if p.curDelta != p.MinDelta {
		t.Fatalf("delta %v, want floor %v", p.curDelta, p.MinDelta)
	}
	// MinDelta within 3x of Delta keeps the aggression bounded.
	if p.Delta/p.MinDelta > 3.5 {
		t.Fatalf("tolerance range %v too wide; the spiral bound requires ≲3x", p.Delta/p.MinDelta)
	}
}

func TestToleranceShiftsActionUpward(t *testing.T) {
	// With the same observed state, a persistent-queue history must make
	// the policy more willing to hold rate (higher action) than a fresh
	// policy — the mechanism that prevents starvation vs Cubic.
	cfg := DefaultConfig()
	fresh := NewReferencePolicy(cfg)
	tolerant := NewReferencePolicy(cfg)
	state := refState(cfg, 10e6, 100e6, 0.055, 0.030) // deep shared queue, low share
	for i := 0; i < tolerant.ModeWindow+1; i++ {
		tolerant.Action(state)
	}
	aTolerant := tolerant.Action(state)
	aFresh := fresh.actionWithDelta(state, fresh.Delta)
	if !(aTolerant > aFresh) {
		t.Fatalf("tolerant action %v not above fresh %v", aTolerant, aFresh)
	}
	if math.IsNaN(aTolerant) {
		t.Fatal("NaN action")
	}
}
