package core
