package core

import (
	"sync"
	"testing"
	"time"
)

type constPolicy struct{ v float64 }

func (p constPolicy) Action([]float64) float64 { return p.v }

func TestServiceSynchronousMode(t *testing.T) {
	svc := NewService(DefaultConfig(), constPolicy{0.5})
	svc.BatchWindow = 0
	if got := svc.Infer([]float64{1}); got != 0.5 {
		t.Fatalf("Infer = %v", got)
	}
	if svc.Requests != 1 || svc.Batches != 1 {
		t.Fatalf("counters %d/%d", svc.Requests, svc.Batches)
	}
}

func TestServiceBatchesConcurrentRequests(t *testing.T) {
	svc := NewService(DefaultConfig(), constPolicy{0.25})
	svc.BatchWindow = 10 * time.Millisecond
	svc.MaxBatch = 1000
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := svc.Infer([]float64{1}); got != 0.25 {
				t.Errorf("Infer = %v", got)
			}
		}()
	}
	wg.Wait()
	if svc.Requests != n {
		t.Fatalf("requests %d", svc.Requests)
	}
	// The point of batching: far fewer batches than requests.
	if svc.Batches >= n/2 {
		t.Fatalf("batches %d for %d requests — batching ineffective", svc.Batches, n)
	}
}

func TestServiceMaxBatchFlushesEarly(t *testing.T) {
	svc := NewService(DefaultConfig(), constPolicy{1})
	svc.BatchWindow = time.Hour // never flush by timer
	svc.MaxBatch = 4
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc.Infer([]float64{1})
		}()
	}
	wg.Wait()
	if time.Since(start) > 5*time.Second {
		t.Fatal("MaxBatch flush did not trigger")
	}
}

func TestServiceClose(t *testing.T) {
	svc := NewService(DefaultConfig(), constPolicy{0.75})
	svc.Close()
	// After Close, Infer degrades to synchronous and must not hang.
	done := make(chan float64, 1)
	go func() { done <- svc.Infer([]float64{1}) }()
	select {
	case v := <-done:
		if v != 0.75 {
			t.Fatalf("post-close Infer = %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Infer hung after Close")
	}
}

// echoPolicy returns the first state feature, so every request can verify
// it received its own answer.
type echoPolicy struct{}

func (echoPolicy) Action(s []float64) float64 { return s[0] }

// TestServiceNoLostOrDuplicatedResponses is the correctness proof for
// evaluating batches off the service lock: many concurrent submitters with
// unique payloads must each receive exactly their own response, exactly
// once, across timer flushes, MaxBatch flushes, and a mid-run policy swap.
// Run under -race this also proves the bookkeeping/evaluator split is sound.
func TestServiceNoLostOrDuplicatedResponses(t *testing.T) {
	svc := NewService(DefaultConfig(), echoPolicy{})
	svc.BatchWindow = 500 * time.Microsecond
	svc.MaxBatch = 8
	defer svc.Close()

	const goroutines = 32
	const perG = 50
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				want := float64(g*perG + i + 1)
				if got := svc.Infer([]float64{want}); got != want {
					errs <- "got someone else's response"
					return
				}
			}
		}(g)
	}
	// Concurrent policy swaps to the identical law must be invisible.
	for i := 0; i < 10; i++ {
		svc.SetPolicy(echoPolicy{})
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	requests, _ := svc.Stats()
	if requests != goroutines*perG {
		t.Fatalf("requests %d, want %d", requests, goroutines*perG)
	}
}

// TestServiceSetPolicy checks the swap itself and that it applies to later
// requests.
func TestServiceSetPolicy(t *testing.T) {
	svc := NewService(DefaultConfig(), constPolicy{0.25})
	svc.BatchWindow = 0
	if got := svc.Infer([]float64{1}); got != 0.25 {
		t.Fatalf("pre-swap Infer = %v", got)
	}
	svc.SetPolicy(constPolicy{-0.75})
	if got := svc.Infer([]float64{1}); got != -0.75 {
		t.Fatalf("post-swap Infer = %v", got)
	}
	svc.SetPolicy(nil) // ignored, not a panic
	if got := svc.Infer([]float64{1}); got != -0.75 {
		t.Fatalf("nil swap changed policy: %v", got)
	}
}

// TestServiceSubmitAbandoned proves a caller can walk away from a Submit
// (the deadline path in internal/serve): the batch still evaluates and the
// service does not block delivering to the abandoned channel.
func TestServiceSubmitAbandoned(t *testing.T) {
	svc := NewService(DefaultConfig(), constPolicy{0.5})
	svc.BatchWindow = time.Millisecond
	_ = svc.Submit([]float64{1}) // abandoned: never received
	got := svc.Infer([]float64{2})
	if got != 0.5 {
		t.Fatalf("Infer after abandoned Submit = %v", got)
	}
	svc.Close() // must not hang on the undelivered buffered response
	requests, _ := svc.Stats()
	if requests != 2 {
		t.Fatalf("requests %d", requests)
	}
}

func TestServiceDefaultPolicy(t *testing.T) {
	cfg := DefaultConfig()
	svc := NewService(cfg, nil)
	svc.BatchWindow = 0
	// nil policy selects the reference policy; a no-signal state probes up.
	if got := svc.Infer(make([]float64, cfg.StateDim())); got != 1 {
		t.Fatalf("default-policy Infer = %v, want 1", got)
	}
}
