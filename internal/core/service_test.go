package core

import (
	"sync"
	"testing"
	"time"
)

type constPolicy struct{ v float64 }

func (p constPolicy) Action([]float64) float64 { return p.v }

func TestServiceSynchronousMode(t *testing.T) {
	svc := NewService(DefaultConfig(), constPolicy{0.5})
	svc.BatchWindow = 0
	if got := svc.Infer([]float64{1}); got != 0.5 {
		t.Fatalf("Infer = %v", got)
	}
	if svc.Requests != 1 || svc.Batches != 1 {
		t.Fatalf("counters %d/%d", svc.Requests, svc.Batches)
	}
}

func TestServiceBatchesConcurrentRequests(t *testing.T) {
	svc := NewService(DefaultConfig(), constPolicy{0.25})
	svc.BatchWindow = 10 * time.Millisecond
	svc.MaxBatch = 1000
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := svc.Infer([]float64{1}); got != 0.25 {
				t.Errorf("Infer = %v", got)
			}
		}()
	}
	wg.Wait()
	if svc.Requests != n {
		t.Fatalf("requests %d", svc.Requests)
	}
	// The point of batching: far fewer batches than requests.
	if svc.Batches >= n/2 {
		t.Fatalf("batches %d for %d requests — batching ineffective", svc.Batches, n)
	}
}

func TestServiceMaxBatchFlushesEarly(t *testing.T) {
	svc := NewService(DefaultConfig(), constPolicy{1})
	svc.BatchWindow = time.Hour // never flush by timer
	svc.MaxBatch = 4
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc.Infer([]float64{1})
		}()
	}
	wg.Wait()
	if time.Since(start) > 5*time.Second {
		t.Fatal("MaxBatch flush did not trigger")
	}
}

func TestServiceClose(t *testing.T) {
	svc := NewService(DefaultConfig(), constPolicy{0.75})
	svc.Close()
	// After Close, Infer degrades to synchronous and must not hang.
	done := make(chan float64, 1)
	go func() { done <- svc.Infer([]float64{1}) }()
	select {
	case v := <-done:
		if v != 0.75 {
			t.Fatalf("post-close Infer = %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Infer hung after Close")
	}
}

func TestServiceDefaultPolicy(t *testing.T) {
	cfg := DefaultConfig()
	svc := NewService(cfg, nil)
	svc.BatchWindow = 0
	// nil policy selects the reference policy; a no-signal state probes up.
	if got := svc.Infer(make([]float64, cfg.StateDim())); got != 1 {
		t.Fatalf("default-policy Infer = %v, want 1", got)
	}
}
