package core

import (
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// randObs draws one seeded FlowObs for the golden sweep. This generator is
// frozen: the pinned digest below was captured from the pre-refactor
// core.Reward over exactly these inputs, so any edit here invalidates the
// golden.
func randObs(r *rand.Rand, link LinkInfo) FlowObs {
	share := r.Float64() * 1.5 * link.Bandwidth
	w := 1 + r.Intn(6)
	hist := make([]float64, w)
	for i := range hist {
		hist[i] = share * (0.5 + r.Float64())
	}
	f := FlowObs{
		TputBps:     share,
		TputHistory: hist,
		AvgLat:      2 * link.BaseOWD * (0.8 + 2*r.Float64()),
		PacingBps:   share * (0.8 + 0.4*r.Float64()),
	}
	if r.Float64() < 0.3 {
		f.LossBps = share * 0.2 * r.Float64()
	}
	switch r.Intn(12) {
	case 0:
		f.TputBps = 0
	case 1:
		f.LossBps = 0
	case 2:
		f.TputBps, f.LossBps = 0, 0
	case 3:
		f.TputHistory = nil
	}
	return f
}

// rewardSweepDigest folds eval's components over 500 seeded scenarios
// (varying Beta, bandwidth, base delay, flow count, plus zero-bandwidth and
// zero-OWD edge seeds) into an FNV-64a digest of the raw IEEE-754 bits.
func rewardSweepDigest(eval func(Config, []FlowObs, LinkInfo) RewardComponents) uint64 {
	h := fnv.New64a()
	f64 := func(v float64) {
		u := math.Float64bits(v)
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	for seed := int64(0); seed < 500; seed++ {
		r := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.Beta = 0.4 * r.Float64()
		link := LinkInfo{
			Bandwidth: math.Exp(r.Float64()*8) * 1e6,
			BaseOWD:   0.001 + 0.1*r.Float64(),
		}
		switch seed % 25 {
		case 7:
			link.Bandwidth = 0
		case 13:
			link.BaseOWD = 0
		}
		n := r.Intn(7)
		flows := make([]FlowObs, n)
		for i := range flows {
			flows[i] = randObs(r, link)
		}
		rc := eval(cfg, flows, link)
		f64(rc.Thr)
		f64(rc.Lat)
		f64(rc.Loss)
		f64(rc.Fair)
		f64(rc.Stab)
		f64(rc.Total)
	}
	return h.Sum64()
}

// goldenRewardSweep is the digest of the pre-refactor core.Reward over the
// sweep above, captured at commit 18e70a6 before the strategy interface was
// extracted. Both the function and PaperStrategy must stay bitwise faithful
// to it.
const goldenRewardSweep uint64 = 0xf8928dfbf58a1c13

func TestRewardGoldenDigest(t *testing.T) {
	if got := rewardSweepDigest(Reward); got != goldenRewardSweep {
		t.Fatalf("core.Reward sweep digest %#x, want pre-refactor golden %#x", got, goldenRewardSweep)
	}
}

func TestPaperStrategyGoldenDigest(t *testing.T) {
	if got := rewardSweepDigest(PaperStrategy{}.Evaluate); got != goldenRewardSweep {
		t.Fatalf("PaperStrategy sweep digest %#x, want pre-refactor golden %#x", got, goldenRewardSweep)
	}
}

func TestNewRewardStrategyNames(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "paper"},
		{"paper", "paper"},
		{"aurora", "aurora"},
		{"maxmin", "maxmin"},
		{"alpha", "alpha:1"},
		{"alpha:1", "alpha:1"},
		{"alpha:0", "alpha:0"},
		{"alpha:2.5", "alpha:2.5"},
	}
	for _, c := range cases {
		s, err := NewRewardStrategy(c.in)
		if err != nil {
			t.Fatalf("NewRewardStrategy(%q): %v", c.in, err)
		}
		if s.Name() != c.want {
			t.Errorf("NewRewardStrategy(%q).Name() = %q, want %q", c.in, s.Name(), c.want)
		}
		// Canonical names must round-trip: checkpoints store Name() and
		// resolve it back at load time.
		s2, err := NewRewardStrategy(s.Name())
		if err != nil {
			t.Fatalf("round-trip %q: %v", s.Name(), err)
		}
		if s2.Name() != s.Name() {
			t.Errorf("round-trip %q -> %q", s.Name(), s2.Name())
		}
	}
}

func TestNewRewardStrategyRejects(t *testing.T) {
	for _, bad := range []string{
		"bbr", "paper:1", "aurora:2", "maxmin:x",
		"alpha:", "alpha:-1", "alpha:NaN", "alpha:+Inf", "alpha:two",
	} {
		if _, err := NewRewardStrategy(bad); err == nil {
			t.Errorf("NewRewardStrategy(%q) accepted, want error", bad)
		}
	}
}

func TestMustRewardStrategyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRewardStrategy on unknown name did not panic")
		}
	}()
	MustRewardStrategy("no-such-strategy")
}

func TestRewardStrategyNamesResolve(t *testing.T) {
	for _, name := range RewardStrategyNames() {
		if _, err := NewRewardStrategy(name); err != nil {
			t.Errorf("listed strategy %q does not resolve: %v", name, err)
		}
	}
}

func TestAuroraStrategyShape(t *testing.T) {
	cfg := DefaultConfig()
	link := LinkInfo{Bandwidth: 100e6, BaseOWD: 0.015}
	s := AuroraStrategy{}

	// No explicit fairness/stability terms.
	rc := s.Evaluate(cfg, []FlowObs{flatObs(90e6, 5), flatObs(10e6, 5)}, link)
	if rc.Fair != 0 || rc.Stab != 0 {
		t.Fatalf("aurora has fairness/stability terms: %+v", rc)
	}
	// Total matches the documented linear form.
	want := clampTotal(0.01 * (10*rc.Thr/2 - 5*rc.Lat - 20*rc.Loss))
	if rc.Total != want {
		t.Fatalf("aurora Total %v, want %v", rc.Total, want)
	}
	// Throughput-monotone.
	lo := s.Evaluate(cfg, []FlowObs{flatObs(30e6, 5)}, link)
	hi := s.Evaluate(cfg, []FlowObs{flatObs(60e6, 5)}, link)
	if hi.Total <= lo.Total {
		t.Fatalf("aurora not throughput-monotone: %v vs %v", hi.Total, lo.Total)
	}
	// Loss punishes hard (the 20x coefficient).
	lossy := flatObs(60e6, 5)
	lossy.LossBps = 30e6
	if rl := s.Evaluate(cfg, []FlowObs{lossy}, link); rl.Total >= hi.Total {
		t.Fatalf("aurora loss not penalized: %v vs %v", rl.Total, hi.Total)
	}
}

func TestMaxMinStrategyShortfall(t *testing.T) {
	cfg := DefaultConfig()
	link := LinkInfo{Bandwidth: 100e6, BaseOWD: 0.015}
	s := MaxMinStrategy{}

	equal := s.Evaluate(cfg, []FlowObs{flatObs(50e6, 5), flatObs(50e6, 5)}, link)
	if equal.Fair != 0 {
		t.Fatalf("equal shares have shortfall %v", equal.Fair)
	}
	starved := s.Evaluate(cfg, []FlowObs{flatObs(90e6, 5), flatObs(10e6, 5)}, link)
	// Fair share 50e6, worst 10e6 -> shortfall 0.8.
	if math.Abs(starved.Fair-0.8) > 1e-12 {
		t.Fatalf("shortfall %v, want 0.8", starved.Fair)
	}
	if starved.Total >= equal.Total {
		t.Fatalf("starving a flow not penalized: %v >= %v", starved.Total, equal.Total)
	}
	// The shortfall only looks at the worst flow: improving the best flow
	// alone does not reduce the penalty.
	richer := s.Evaluate(cfg, []FlowObs{flatObs(95e6, 5), flatObs(10e6, 5)}, link)
	if richer.Fair != starved.Fair {
		t.Fatalf("best-flow change moved the shortfall: %v vs %v", richer.Fair, starved.Fair)
	}
}

func TestAlphaFairSpectrum(t *testing.T) {
	cfg := DefaultConfig()
	link := LinkInfo{Bandwidth: 100e6, BaseOWD: 0.015}
	equal := []FlowObs{flatObs(60e6, 5), flatObs(60e6, 5)}
	unequalBig := []FlowObs{flatObs(95e6, 5), flatObs(10e6, 5)} // less aggregate, very skewed

	// α = 0 is throughput maximization: welfare equals utilization, no
	// fairness preference, so the bigger aggregate wins. Aggregates kept
	// below the clamp so the ordering is visible in Total.
	a0 := AlphaFairStrategy{Alpha: 0}
	smallEqual := []FlowObs{flatObs(35e6, 5), flatObs(35e6, 5)}
	smallSkewed := []FlowObs{flatObs(70e6, 5), flatObs(10e6, 5)}
	e0, u0 := a0.Evaluate(cfg, smallEqual, link), a0.Evaluate(cfg, smallSkewed, link)
	if e0.Fair != 0 || u0.Fair != 0 {
		t.Fatalf("alpha:0 has a fairness term: %v %v", e0.Fair, u0.Fair)
	}
	if u0.Total <= e0.Total {
		t.Fatalf("alpha:0 did not prefer the larger aggregate: %v vs %v", u0.Total, e0.Total)
	}

	// α = 1 (proportional fairness): positive Jensen gap for unequal shares.
	a1 := AlphaFairStrategy{Alpha: 1}
	if g := a1.Evaluate(cfg, unequalBig, link).Fair; g <= 0 {
		t.Fatalf("alpha:1 Jensen gap %v for unequal shares", g)
	}
	if g := a1.Evaluate(cfg, equal, link).Fair; g > 1e-12 {
		t.Fatalf("alpha:1 Jensen gap %v for equal shares", g)
	}

	// Large α approaches max-min: the equal allocation beats the bigger but
	// skewed one.
	a8 := AlphaFairStrategy{Alpha: 8}
	if e8, u8 := a8.Evaluate(cfg, equal, link), a8.Evaluate(cfg, unequalBig, link); u8.Total >= e8.Total {
		t.Fatalf("alpha:8 did not prefer equality: %v vs %v", u8.Total, e8.Total)
	}
}

func TestAlphaFairShareFloor(t *testing.T) {
	cfg := DefaultConfig()
	link := LinkInfo{Bandwidth: 100e6, BaseOWD: 0.015}
	// A completely silent flow must not drive welfare to -Inf.
	flows := []FlowObs{flatObs(99e6, 5), {TputBps: 0, AvgLat: 0.030}}
	for _, a := range []float64{1, 2, 8} {
		rc := AlphaFairStrategy{Alpha: a}.Evaluate(cfg, flows, link)
		for _, v := range []float64{rc.Thr, rc.Lat, rc.Loss, rc.Fair, rc.Stab, rc.Total} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("alpha:%v produced non-finite component: %+v", a, rc)
			}
		}
		if rc.Total != -RewardBound {
			// A starved flow under a strongly fairness-seeking objective
			// should be near the bottom of the reward range; at minimum it
			// must respect the clamp.
			if rc.Total < -RewardBound || rc.Total > RewardBound {
				t.Fatalf("alpha:%v Total %v escaped the bound", a, rc.Total)
			}
		}
	}
}

func TestDistillDeltaMapping(t *testing.T) {
	const base = 0.08
	cases := []struct {
		s    RewardStrategy
		want float64
	}{
		{PaperStrategy{}, base},
		{AuroraStrategy{}, base * 0.5},
		{MaxMinStrategy{}, base * 2},
		{AlphaFairStrategy{Alpha: 0}, base * 0.5},
		{AlphaFairStrategy{Alpha: 1}, base},
		{AlphaFairStrategy{Alpha: 5}, base * 2},
		{AlphaFairStrategy{Alpha: 100}, base * 2}, // capped
	}
	for _, c := range cases {
		if got := DistillDelta(c.s, base); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("DistillDelta(%s) = %v, want %v", c.s.Name(), got, c.want)
		}
	}
}

func TestDistillPaperBitIdentical(t *testing.T) {
	// The paper strategy must leave distillation untouched: same options,
	// same weights, bit for bit.
	opts := DistillOptions{Samples: 200, Epochs: 2, Batch: 32, LR: 0.003,
		Hidden: []int{8}, Seed: 3}
	optsPaper := opts
	optsPaper.Reward = "paper"
	cfg := DefaultConfig()
	a, lossA := DistillPolicy(cfg, opts)
	b, lossB := DistillPolicy(cfg, optsPaper)
	if lossA != lossB {
		t.Fatalf("paper distill loss differs: %v vs %v", lossA, lossB)
	}
	flat := func(m *nn.MLP) []float64 {
		var out []float64
		for _, l := range m.Layers {
			out = append(out, l.W...)
			out = append(out, l.B...)
		}
		return out
	}
	wa, wb := flat(a), flat(b)
	if len(wa) != len(wb) {
		t.Fatalf("weight count differs: %d vs %d", len(wa), len(wb))
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("weight %d differs: %v vs %v", i, wa[i], wb[i])
		}
	}
	// A non-paper strategy changes the target function, so the fit differs.
	optsMaxmin := opts
	optsMaxmin.Reward = "maxmin"
	c, _ := DistillPolicy(cfg, optsMaxmin)
	diff := false
	for i, w := range flat(c) {
		if w != wa[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("maxmin distillation produced identical weights to paper")
	}
}
