package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// RewardStrategy is the pluggable multi-flow reward of the training loop.
// The paper hard-codes Eqs. 4–8; Fair-Aurora's question — which fairness
// formulation buys the most fairness per unit throughput — needs the reward
// behind an interface so the trainer, the checkpoint format, and the
// ablation harness can swap formulations without touching the environment.
//
// Contract shared by every implementation:
//
//   - Evaluate is a pure function of its arguments (no retained state), so
//     strategies are safe to share across goroutines.
//   - Zero flows or non-positive link bandwidth return the zero
//     RewardComponents — never NaN or Inf.
//   - link.BaseOWD <= 0 drops the latency term (there is no propagation
//     floor to measure queueing against) rather than dividing by zero.
//   - Total is clamped to [-RewardBound, RewardBound]. A uniform bound
//     keeps the TD3 hyperparameters (critic scale, exploration noise)
//     transferable across strategies, which is what makes the fairness-lab
//     ablation a comparison of objectives rather than of learning rates.
type RewardStrategy interface {
	// Name returns the canonical strategy identifier, round-trippable
	// through NewRewardStrategy (registries, checkpoints, reports).
	Name() string
	// Evaluate scores one monitoring period's world observation.
	Evaluate(cfg Config, flows []FlowObs, link LinkInfo) RewardComponents
}

// RewardBound is the symmetric clamp every strategy applies to
// RewardComponents.Total (the paper's Eq. 8 bound).
const RewardBound = 0.1

// RewardStrategyNames lists the registered strategy families in report
// order. "alpha" accepts a parameter: "alpha:2" is α-fairness with α=2.
func RewardStrategyNames() []string {
	return []string{"paper", "aurora", "maxmin", "alpha"}
}

// NewRewardStrategy resolves a strategy name. The empty string is the paper
// default. "alpha" takes an optional ":<α>" suffix (default α=1,
// proportional fairness); α must be a finite value ≥ 0.
func NewRewardStrategy(name string) (RewardStrategy, error) {
	base, arg, hasArg := strings.Cut(name, ":")
	switch base {
	case "", "paper":
		if hasArg {
			return nil, fmt.Errorf("core: strategy %q takes no parameter", base)
		}
		return PaperStrategy{}, nil
	case "aurora":
		if hasArg {
			return nil, fmt.Errorf("core: strategy %q takes no parameter", base)
		}
		return AuroraStrategy{}, nil
	case "maxmin":
		if hasArg {
			return nil, fmt.Errorf("core: strategy %q takes no parameter", base)
		}
		return MaxMinStrategy{}, nil
	case "alpha":
		a := 1.0
		if hasArg {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return nil, fmt.Errorf("core: alpha parameter %q: %w", arg, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return nil, fmt.Errorf("core: alpha parameter %v out of range (need finite α ≥ 0)", v)
			}
			a = v
		}
		return AlphaFairStrategy{Alpha: a}, nil
	default:
		return nil, fmt.Errorf("core: unknown reward strategy %q (have %v)", name, RewardStrategyNames())
	}
}

// MustRewardStrategy is NewRewardStrategy for callers holding a
// pre-validated name (the environment after the CLI or checkpoint loader
// has vetted it). It panics on an unknown name: reaching here with one is
// a programming error, not a runtime condition.
func MustRewardStrategy(name string) RewardStrategy {
	s, err := NewRewardStrategy(name)
	if err != nil {
		panic(err)
	}
	return s
}

// clampTotal applies the shared Eq. 8 bound.
func clampTotal(v float64) float64 {
	if v > RewardBound {
		return RewardBound
	}
	if v < -RewardBound {
		return -RewardBound
	}
	return v
}

// PaperStrategy is the paper's Eqs. 4–8, bit-for-bit the pre-interface
// core.Reward (golden-digest pinned by TestPaperStrategyGoldenDigest).
type PaperStrategy struct{}

// Name implements RewardStrategy.
func (PaperStrategy) Name() string { return "paper" }

// Evaluate implements RewardStrategy by delegating to Reward.
func (PaperStrategy) Evaluate(cfg Config, flows []FlowObs, link LinkInfo) RewardComponents {
	return Reward(cfg, flows, link)
}

// lossFraction returns lost/(delivered+lost) bytes for one flow. A flow
// that moved no bytes at all contributes zero; a flow that only lost
// contributes one. Never NaN.
func lossFraction(f FlowObs) float64 {
	tot := f.TputBps + f.LossBps
	if tot <= 0 {
		return 0
	}
	return f.LossBps / tot
}

// queueRatio returns the mean tolerated-excess queueing ratio across flows:
// max(0, RTT - (1+Beta)·2·d0) / (2·d0). Zero when link.BaseOWD <= 0 (no
// propagation floor to measure against — the explicit form of the paper
// reward's tol > 0 guard).
func queueRatio(cfg Config, flows []FlowObs, link LinkInfo) float64 {
	if link.BaseOWD <= 0 || len(flows) == 0 {
		return 0
	}
	baseRTT := 2 * link.BaseOWD
	tol := (1 + cfg.Beta) * baseRTT
	var sum float64
	for _, f := range flows {
		if f.AvgLat > tol {
			sum += (f.AvgLat - tol) / baseRTT
		}
	}
	return sum / float64(len(flows))
}

// windowedTput is Eq. 7's per-flow windowed average, falling back to the
// instantaneous throughput when no history has accumulated yet.
func windowedTput(f FlowObs) float64 {
	if len(f.TputHistory) == 0 {
		return f.TputBps
	}
	return avgThr(f.TputHistory)
}

// AuroraStrategy is the Aurora/PCC-style per-flow linear reward
// (throughput minus delay minus loss, the 10/-1000/-2000 shape of the
// reference implementation) aggregated as the mean over flows and rescaled
// into the shared bound. It has no explicit fairness term: any fairness it
// produces must emerge from the environment, which is exactly the contrast
// the fairness lab measures.
//
// Per flow i with capacity share x_i = thr_i/c, queueing ratio q_i and loss
// fraction l_i:
//
//	r_i = 10·x_i − 5·q_i − 20·l_i,   Total = clamp(0.01 · mean_i r_i)
//
// Components: Thr and Loss as in Eq. 4, Lat = mean queueing ratio,
// Fair = Stab = 0 (no such terms exist in this objective).
type AuroraStrategy struct{}

// Name implements RewardStrategy.
func (AuroraStrategy) Name() string { return "aurora" }

// Evaluate implements RewardStrategy.
func (AuroraStrategy) Evaluate(cfg Config, flows []FlowObs, link LinkInfo) RewardComponents {
	var rc RewardComponents
	n := len(flows)
	if n == 0 || link.Bandwidth <= 0 {
		return rc
	}
	var sumThr, sumLoss float64
	for _, f := range flows {
		sumThr += f.TputBps
		sumLoss += lossFraction(f)
	}
	rc.Thr = sumThr / link.Bandwidth
	rc.Loss = sumLoss / float64(n)
	rc.Lat = queueRatio(cfg, flows, link)
	// mean r_i = 10·mean(x_i) − 5·mean(q_i) − 20·mean(l_i); mean(x_i) is
	// Thr/n (each flow's share of capacity, averaged).
	meanR := 10*rc.Thr/float64(n) - 5*rc.Lat - 20*rc.Loss
	rc.Total = clampTotal(0.01 * meanR)
	return rc
}

// maxMinWeight scales the worst-flow shortfall penalty. At 0.05 a flow
// starved to half its fair share costs a quarter of the full reward range —
// dominant over the throughput term (C0 = 0.1 · utilization) without
// saturating the clamp on its own.
const maxMinWeight = 0.05

// MaxMinStrategy rewards throughput and loss like the paper but replaces
// the spread-based fairness and stability terms with a single max-min
// penalty on the worst flow's shortfall from its fair share:
//
//	shortfall = max(0, c/n − min_i thravg_i) / (c/n) ∈ [0, 1]
//	Total = clamp(C0·Thr − C1·Lat − C2·Loss − 0.05·shortfall)
//
// Components: Fair carries the shortfall, Stab = 0.
type MaxMinStrategy struct{}

// Name implements RewardStrategy.
func (MaxMinStrategy) Name() string { return "maxmin" }

// Evaluate implements RewardStrategy.
func (MaxMinStrategy) Evaluate(cfg Config, flows []FlowObs, link LinkInfo) RewardComponents {
	var rc RewardComponents
	n := len(flows)
	if n == 0 || link.Bandwidth <= 0 {
		return rc
	}
	var sumThr, sumLoss float64
	worst := math.Inf(1)
	for _, f := range flows {
		sumThr += f.TputBps
		sumLoss += lossFraction(f)
		if w := windowedTput(f); w < worst {
			worst = w
		}
	}
	rc.Thr = sumThr / link.Bandwidth
	rc.Loss = sumLoss / float64(n)
	rc.Lat = queueRatio(cfg, flows, link)
	fairShare := link.Bandwidth / float64(n)
	if worst < fairShare {
		rc.Fair = (fairShare - worst) / fairShare
	}
	rc.Total = clampTotal(cfg.C0*rc.Thr - cfg.C1*rc.Lat - cfg.C2*rc.Loss - maxMinWeight*rc.Fair)
	return rc
}

// alphaShareFloor bounds per-flow normalized shares away from zero so the
// α ≥ 1 utilities (log, negative powers) stay finite: a silent flow scores
// the utility of 1/1000th of its fair share, not −∞.
const alphaShareFloor = 1e-3

// AlphaFairStrategy is the α-fair welfare objective over normalized shares
// x_i = thr_i·n/c (1.0 = the flow's full fair share):
//
//	U_α(x) = x^(1−α)/(1−α)  (α ≠ 1),   U_1(x) = ln x
//	W = mean_i U_α(max(x_i, 1e-3)),  Total = clamp(C0·W − C1·Lat − C2·Loss)
//
// α sweeps the classic spectrum: α = 0 is throughput maximization (W equals
// the paper's utilization term exactly, making C0·W scale-compatible),
// α = 1 proportional fairness, α → ∞ approaches max-min. Components: Fair
// carries the Jensen gap U_α(x̄) − W ≥ 0 — zero iff shares are equal, so it
// plays the role of the paper's spread term with the concavity the
// strategy's α dictates.
type AlphaFairStrategy struct {
	Alpha float64
}

// Name implements RewardStrategy. The parameter is part of the identity:
// a checkpoint trained at α=2 must not resume at α=1.
func (s AlphaFairStrategy) Name() string {
	return "alpha:" + strconv.FormatFloat(s.Alpha, 'g', -1, 64)
}

// utility is U_α with the share floor applied. The floor only engages for
// α ≥ 1, where U_α diverges at zero; for α < 1 the utility is finite at
// x = 0 and flooring would break concavity (a starved flow would score
// better than its actual share warrants, inverting the equal-beats-unequal
// property the sweep in internal/check pins down).
func (s AlphaFairStrategy) utility(x float64) float64 {
	if s.Alpha >= 1 && x < alphaShareFloor {
		x = alphaShareFloor
	}
	if s.Alpha == 1 {
		return math.Log(x)
	}
	return math.Pow(x, 1-s.Alpha) / (1 - s.Alpha)
}

// Evaluate implements RewardStrategy.
func (s AlphaFairStrategy) Evaluate(cfg Config, flows []FlowObs, link LinkInfo) RewardComponents {
	var rc RewardComponents
	n := len(flows)
	if n == 0 || link.Bandwidth <= 0 {
		return rc
	}
	fairShare := link.Bandwidth / float64(n)
	var sumThr, sumLoss, welfare, meanShare float64
	for _, f := range flows {
		sumThr += f.TputBps
		sumLoss += lossFraction(f)
		x := f.TputBps / fairShare
		welfare += s.utility(x)
		meanShare += x
	}
	welfare /= float64(n)
	meanShare /= float64(n)
	rc.Thr = sumThr / link.Bandwidth
	rc.Loss = sumLoss / float64(n)
	rc.Lat = queueRatio(cfg, flows, link)
	if s.Alpha > 0 {
		// Jensen gap: zero iff all shares are equal, grows with spread.
		if gap := s.utility(meanShare) - welfare; gap > 0 {
			rc.Fair = gap
		}
	}
	rc.Total = clampTotal(cfg.C0*welfare - cfg.C1*rc.Lat - cfg.C2*rc.Loss)
	return rc
}

// DistillDelta maps a reward strategy to the reference-policy
// aggressiveness (Delta) used when distilling a deployable actor for that
// strategy: Delta is the policy-side fairness control surface (§5.5 /
// Fig. 18 — the equilibrium standing queue per flow is n·MSS·8/(Δ·c), so a
// larger Δ holds a smaller per-flow queue and converges to equal shares
// faster at some throughput cost). The paper strategy keeps the base value
// so default distillation stays bit-identical; throughput-leaning
// objectives (aurora, α → 0) relax it, worst-flow-protective ones (maxmin,
// large α) tighten it, capped at 2× within the Fig. 18-validated range.
func DistillDelta(s RewardStrategy, base float64) float64 {
	switch st := s.(type) {
	case PaperStrategy:
		return base
	case AuroraStrategy:
		return base * 0.5
	case MaxMinStrategy:
		return base * 2
	case AlphaFairStrategy:
		m := 1.0
		if st.Alpha <= 1 {
			m = 0.5 + 0.5*st.Alpha // α=0 → 0.5, α=1 → 1
		} else {
			m = 1 + (st.Alpha-1)/4 // α=5 → 2
			if m > 2 {
				m = 2
			}
		}
		return base * m
	default:
		return base
	}
}
