package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/nn"
)

func sealedTestActor(t *testing.T, cfg Config, bias float64) *nn.MLP {
	t.Helper()
	net := nn.NewMLP(rand.New(rand.NewSource(7)), nn.ReLU, nn.Tanh, cfg.StateDim(), 6, 1)
	net.Layers[len(net.Layers)-1].B[0] = bias
	return net
}

// TestSealedPolicyRoundTrip: seal → load returns identical weights and the
// exact metadata, and the serving loader recognizes the format with and
// without quantize-on-load.
func TestSealedPolicyRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	net := sealedTestActor(t, cfg, 0.3)
	meta := PolicyMeta{Generation: 7, Parent: 6, CreatedUnix: 1700000000,
		Reward: "paper", Episodes: 420, Note: "gate 0.51 vs 0.49"}
	path := filepath.Join(t.TempDir(), "gen.policy")
	if err := SaveSealedPolicy(path, net, meta); err != nil {
		t.Fatal(err)
	}

	mp, got, err := LoadSealedPolicy(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *got != meta {
		t.Fatalf("meta round trip: got %+v want %+v", *got, meta)
	}
	state := make([]float64, cfg.StateDim())
	if a, b := mp.Action(state), (&MLPPolicy{Net: net}).Action(state); a != b {
		t.Fatalf("sealed weights diverge: %v vs %v", a, b)
	}

	// Serving loader, float oracle path: same policy plus metadata.
	p, m, err := LoadServingPolicyMeta(path, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.Generation != 7 {
		t.Fatalf("serving loader lost metadata: %+v", m)
	}
	if _, ok := p.(*MLPPolicy); !ok {
		t.Fatalf("quantize=false returned %T", p)
	}

	// Quantize-on-promote: the serving default compiles the sealed weights.
	p, m, err = LoadServingPolicyMeta(path, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.Generation != 7 || m.Parent != 6 {
		t.Fatalf("quantized load lost metadata: %+v", m)
	}
	if _, ok := p.(*QuantizedPolicy); !ok {
		t.Fatalf("quantize=true returned %T", p)
	}
	// LoadServingPolicy (no meta) accepts the same artifact.
	if _, err := LoadServingPolicy(path, cfg, true); err != nil {
		t.Fatal(err)
	}
}

// TestSealedPolicyCorruptionRejected: flipping any sampled byte or
// truncating the artifact must fail the load — the CRC guards the whole
// file, so a torn promotion can never be served.
func TestSealedPolicyCorruptionRejected(t *testing.T) {
	cfg := DefaultConfig()
	path := filepath.Join(t.TempDir(), "gen.policy")
	if err := SaveSealedPolicy(path, sealedTestActor(t, cfg, -0.2), PolicyMeta{Generation: 1}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	offsets := []int{0, 1, len(data) / 3, len(data) / 2, len(data) - 1}
	for _, off := range offsets {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		tmp := filepath.Join(t.TempDir(), "bad.policy")
		if err := os.WriteFile(tmp, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadSealedPolicy(tmp, cfg); err == nil {
			t.Fatalf("corruption at offset %d accepted", off)
		}
		if _, _, err := LoadServingPolicyMeta(tmp, cfg, true); err == nil {
			t.Fatalf("serving loader accepted corruption at offset %d", off)
		}
	}
	for _, cut := range []int{1, len(data) / 2, len(data) - 1} {
		tmp := filepath.Join(t.TempDir(), "short.policy")
		if err := os.WriteFile(tmp, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadSealedPolicy(tmp, cfg); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

// TestSealedPolicyDimensionValidated: a sealed artifact whose embedded actor
// does not match the serving config is refused with the shared shape error.
func TestSealedPolicyDimensionValidated(t *testing.T) {
	cfg := DefaultConfig()
	wrong := nn.NewMLP(rand.New(rand.NewSource(9)), nn.ReLU, nn.Tanh, cfg.StateDim()+8, 4, 1)
	path := filepath.Join(t.TempDir(), "gen.policy")
	if err := SaveSealedPolicy(path, wrong, PolicyMeta{Generation: 1}); err != nil {
		t.Fatal(err)
	}
	_, _, err := LoadSealedPolicy(path, cfg)
	if err == nil || !strings.Contains(err.Error(), "states") {
		t.Fatalf("wrong-dimension sealed artifact: err = %v", err)
	}
}
