package core

import (
	"math"
)

// FlowObs is the per-flow observation the reward block consumes for one
// MTP: current and windowed throughputs, latency, loss.
type FlowObs struct {
	TputBps     float64   // thr_i,t: throughput in the current MTP
	TputHistory []float64 // last w MTP throughputs, oldest first (including current)
	AvgLat      float64   // mean latency over the MTP
	LossBps     float64   // lost-byte rate over the MTP
	PacingBps   float64
}

// LinkInfo is the ground truth the reward normalizes against.
type LinkInfo struct {
	Bandwidth float64 // c, bits/sec
	BaseOWD   float64 // d0, seconds
}

// RewardComponents breaks Eq. 8 into its terms for tests, logging and the
// Fig. 4 / Fig. 18 experiments.
type RewardComponents struct {
	Thr   float64 // Eq. 4 throughput term
	Lat   float64 // Eq. 5 latency term
	Loss  float64 // Eq. 4 loss term
	Fair  float64 // Eq. 6 fairness term
	Stab  float64 // Eq. 6 stability term
	Total float64 // Eq. 8, bounded to (-0.1, 0.1)
}

// avgThr computes Eq. 7: the mean of a flow's last-w throughputs.
func avgThr(hist []float64) float64 {
	if len(hist) == 0 {
		return 0
	}
	var s float64
	for _, v := range hist {
		s += v
	}
	return s / float64(len(hist))
}

// Reward evaluates Eqs. 4–8 over all active flows. It is the evaluation
// behind PaperStrategy; new callers should go through a RewardStrategy.
//
// Edge contracts (each regression-tested in reward_test.go):
//
//   - Zero flows or link.Bandwidth <= 0 return the zero RewardComponents:
//     there is no capacity to normalize against, so the observation carries
//     no signal rather than an infinite one.
//   - A flow with TputBps == 0 and LossBps == 0 contributes zero to the
//     loss ratio (it moved nothing and lost nothing); TputBps == 0 with
//     LossBps > 0 contributes the ratio's supremum 1 (everything it sent
//     was lost) instead of dividing by zero.
//   - link.BaseOWD <= 0 drops the latency term entirely: with no
//     propagation floor, "queueing above tolerance" is undefined and the
//     normalization would divide by zero. (Historically this was implicit
//     in a tol > 0 comparison; the guard below is the explicit form.)
//   - A flow whose windowed average throughput is zero contributes nothing
//     to the stability term (its variation ratio has no scale).
func Reward(cfg Config, flows []FlowObs, link LinkInfo) RewardComponents {
	var rc RewardComponents
	n := len(flows)
	if n == 0 || link.Bandwidth <= 0 {
		return rc
	}

	// Eq. 4: throughput and loss.
	var sumThr, sumLossRatio, sumLat, sumPacing float64
	for _, f := range flows {
		sumThr += f.TputBps
		if f.TputBps > 0 {
			sumLossRatio += f.LossBps / f.TputBps
		} else if f.LossBps > 0 {
			sumLossRatio += 1
		}
		sumLat += f.AvgLat
		sumPacing += f.PacingBps
	}
	rc.Thr = sumThr / link.Bandwidth
	rc.Loss = sumLossRatio / float64(n)

	// Eq. 5: latency above the tolerated (1+beta)*d0, weighted by pacing
	// rate (normalized so the term stays comparable across link speeds).
	// BaseOWD > 0 is required twice over: the tolerance needs a propagation
	// floor and the normalization divides by it.
	if link.BaseOWD > 0 {
		avgLat := sumLat / float64(n)
		tol := (1 + cfg.Beta) * 2 * link.BaseOWD // latency here is an RTT measure
		if avgLat > tol && tol > 0 {
			rc.Lat = (avgLat - tol) * (sumPacing / float64(n)) / link.Bandwidth / link.BaseOWD
		}
	}

	// Eq. 6: fairness from the spread of windowed average throughputs
	// across flows, normalized by their sum.
	avg := make([]float64, n)
	var sumAvg float64
	for i, f := range flows {
		avg[i] = avgThr(f.TputHistory)
		sumAvg += avg[i]
	}
	if sumAvg > 0 && n > 1 {
		mean := sumAvg / float64(n)
		var ss float64
		for _, a := range avg {
			d := a - mean
			ss += d * d
		}
		rc.Fair = math.Sqrt(ss / (float64(n) * sumAvg * sumAvg))
	}

	// Eq. 6: stability from each flow's own throughput variation over the
	// window, averaged across flows.
	var stabSum float64
	for i, f := range flows {
		if avg[i] <= 0 || len(f.TputHistory) == 0 {
			continue
		}
		var ss float64
		for _, v := range f.TputHistory {
			d := v - avg[i]
			ss += d * d
		}
		stabSum += math.Sqrt(ss / (float64(len(f.TputHistory)) * avg[i] * avg[i]))
	}
	rc.Stab = stabSum / float64(n)

	// Eq. 8 with the shared [-RewardBound, RewardBound] clamp.
	rc.Total = clampTotal(cfg.C0*rc.Thr - cfg.C1*rc.Lat - cfg.C2*rc.Loss - cfg.C3*rc.Fair - cfg.C4*rc.Stab)
	return rc
}

// FairnessPenalty exposes R_fair alone for the Fig. 4 comparison against
// the Jain index.
func FairnessPenalty(avgTputs []float64) float64 {
	n := len(avgTputs)
	if n == 0 {
		return 0
	}
	var sum float64
	for _, v := range avgTputs {
		sum += v
	}
	if sum <= 0 {
		return 0
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range avgTputs {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / (float64(n) * sum * sum))
}
