// Sealed policy artifacts: the deployable unit of the closed-loop pilot
// (internal/pilot). A sealed artifact is a ckpt CRC container whose payload
// carries a PolicyMeta record — generation number, lineage, training
// provenance — followed by the float actor weights. It is what the pilot
// promotes to the serving fleet: the serving loaders sniff the format and
// compile the embedded weights to the quantized serving form on load
// (quantize-on-promote), and the metadata rides through to the
// serve_policy_generation telemetry, so every response-path version bump is
// attributable to a training generation.
//
// Plain JSON weights (SavePolicy) and quantized blobs (SaveQuantizedPolicy)
// remain first-class serving artifacts; sealing adds integrity (a torn or
// bit-flipped promotion is rejected by CRC before any field is parsed) and
// identity, both of which the promotion/rollback state machine depends on.

package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/nn"
)

// sealedPolicyTag is the payload discriminator of a sealed policy artifact
// inside the ckpt container, distinguishing it from the quantized blob
// payload (which leads with its own tag). Spells "POL1".
const sealedPolicyTag = int64(0x314C4F50)

// PolicyMeta identifies one promoted policy generation: where the weights
// came from and where they sit in the promotion lineage. It is embedded in
// sealed artifacts and recorded in the pilot's generation manifest.
type PolicyMeta struct {
	// Generation is the monotonically increasing promotion counter; 0 is
	// reserved for the pre-pilot incumbent (reference policy or hand-placed
	// weights).
	Generation uint64 `json:"generation"`
	// Parent is the generation that was serving when this one was sealed —
	// the rollback target.
	Parent uint64 `json:"parent"`
	// CreatedUnix is the seal time in Unix seconds.
	CreatedUnix int64 `json:"created_unix"`
	// Reward names the reward strategy the actor was trained under.
	Reward string `json:"reward,omitempty"`
	// Episodes is the trainer's episode counter at export time.
	Episodes int `json:"episodes,omitempty"`
	// Note carries free-form provenance (gate scores, trainer identity).
	Note string `json:"note,omitempty"`
}

// SaveSealedPolicy writes net and its metadata to path as a sealed artifact:
// ckpt container (magic, version, CRC-32C), payload = tag + meta JSON +
// weight JSON. The write is atomic, so a watcher (serve.Reloader) can never
// observe a torn artifact mid-promotion.
func SaveSealedPolicy(path string, net *nn.MLP, meta PolicyMeta) error {
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("core: marshal policy meta: %w", err)
	}
	weights, err := json.Marshal(net)
	if err != nil {
		return fmt.Errorf("core: marshal policy: %w", err)
	}
	e := &ckpt.Encoder{}
	e.Int64(sealedPolicyTag)
	e.Bytes(metaJSON)
	e.Bytes(weights)
	_, err = ckpt.WriteFile(path, e.Payload())
	return err
}

// decodeSealedPolicy parses a sealed-artifact payload (tag already
// verified by the caller's sniff) into the float policy and its metadata,
// validated against cfg like every other loader.
func decodeSealedPolicy(payload []byte, path string, cfg Config) (*MLPPolicy, *PolicyMeta, error) {
	d := ckpt.NewDecoder(payload)
	if tag := d.Int64(); d.Err() != nil || tag != sealedPolicyTag {
		return nil, nil, fmt.Errorf("core: %s is not a sealed policy artifact", path)
	}
	metaJSON := d.Bytes()
	weights := d.Bytes()
	if err := d.Err(); err != nil {
		return nil, nil, fmt.Errorf("core: sealed policy %s: %w", path, err)
	}
	if err := d.Finish(); err != nil {
		return nil, nil, fmt.Errorf("core: sealed policy %s: %w", path, err)
	}
	var meta PolicyMeta
	if err := json.Unmarshal(metaJSON, &meta); err != nil {
		return nil, nil, fmt.Errorf("core: sealed policy %s meta: %w", path, err)
	}
	mp, err := parsePolicyWeights(weights, path, cfg)
	if err != nil {
		return nil, nil, err
	}
	return mp, &meta, nil
}

// LoadSealedPolicy reads a sealed artifact written by SaveSealedPolicy and
// returns the float policy with its metadata. Corruption anywhere in the
// file — truncation, extension, any bit flip — is rejected by the container
// CRC before a single field is interpreted.
func LoadSealedPolicy(path string, cfg Config) (*MLPPolicy, *PolicyMeta, error) {
	payload, err := ckpt.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return decodeSealedPolicy(payload, path, cfg)
}
