package core

import (
	"repro/internal/transport"
)

// LocalState holds the eight per-MTP features of §3.3, normalized so the
// agent sees comparable values across network conditions.
type LocalState struct {
	TputRatio     float64 // thr / thrmax
	MaxTput       float64 // thrmax, scaled by TputScale
	LatRatio      float64 // lat / latmin
	MinLat        float64 // latmin, scaled by LatScale
	RelCwnd       float64 // cwnd / (thrmax * latmin), unitless
	LossRatio     float64 // lost-byte rate / thrmax
	InflightRatio float64 // pkts in flight / cwnd
	PacingRatio   float64 // pacing rate / thrmax
}

// featureCap bounds every normalized ratio feature. Without it, degenerate
// observations (e.g. no throughput seen yet, so thrmax is meaningless)
// produce features of arbitrary magnitude, which destabilizes critic
// training far more than the clamping distorts the policy's view.
const featureCap = 64.0

func capped(v float64) float64 {
	if v > featureCap {
		return featureCap
	}
	if v < -featureCap {
		return -featureCap
	}
	return v
}

// localStateFromMTP derives the feature vector from transport statistics.
func localStateFromMTP(cfg Config, st transport.MTPStats) LocalState {
	ls := LocalState{LatRatio: 1}
	maxT := st.MaxTputBps
	if maxT <= 0 {
		// No delivery observed yet: emit a neutral no-signal state rather
		// than dividing by a fictitious denominator.
		return ls
	}
	ls.TputRatio = capped(st.ThroughputBps / maxT)
	ls.MaxTput = capped(maxT / cfg.TputScale)
	if st.MinRTT > 0 && st.AvgRTT > 0 {
		ls.LatRatio = capped(st.AvgRTT / st.MinRTT)
	}
	ls.MinLat = capped(st.MinRTT / cfg.LatScale)
	cwndBytes := st.CwndPkts * transport.MSS
	if st.MinRTT > 0 {
		ls.RelCwnd = capped(cwndBytes * 8 / (maxT * st.MinRTT))
	}
	lossBps := float64(st.LostBytes) * 8 / st.Duration
	ls.LossRatio = capped(lossBps / maxT)
	if st.CwndPkts > 0 {
		ls.InflightRatio = capped(float64(st.InflightPkts) / st.CwndPkts)
	}
	ls.PacingRatio = capped(st.PacingBps / maxT)
	return ls
}

// Vector flattens the state in a fixed feature order.
func (ls LocalState) Vector() []float64 {
	return []float64{
		ls.TputRatio, ls.MaxTput, ls.LatRatio, ls.MinLat,
		ls.RelCwnd, ls.LossRatio, ls.InflightRatio, ls.PacingRatio,
	}
}

// StateBlock stacks the last w local states into the model input,
// zero-padded before w observations exist.
type StateBlock struct {
	cfg  Config
	hist []LocalState
}

// NewStateBlock allocates an empty history.
func NewStateBlock(cfg Config) *StateBlock {
	return &StateBlock{cfg: cfg}
}

// Push appends a state, evicting the oldest beyond w.
func (sb *StateBlock) Push(ls LocalState) {
	sb.hist = append(sb.hist, ls)
	if len(sb.hist) > sb.cfg.HistoryLen {
		sb.hist = sb.hist[1:]
	}
}

// Latest returns the most recent local state (zero value when empty).
func (sb *StateBlock) Latest() LocalState {
	if len(sb.hist) == 0 {
		return LocalState{LatRatio: 1}
	}
	return sb.hist[len(sb.hist)-1]
}

// History returns the stored states, oldest first.
func (sb *StateBlock) History() []LocalState { return sb.hist }

// Input assembles the stacked feature vector, newest frame first,
// zero-padding missing history.
func (sb *StateBlock) Input() []float64 {
	out := make([]float64, 0, sb.cfg.StateDim())
	for i := len(sb.hist) - 1; i >= 0; i-- {
		out = append(out, sb.hist[i].Vector()...)
	}
	for len(out) < sb.cfg.StateDim() {
		out = append(out, 0)
	}
	return out
}

// GlobalState mirrors Table 2: aggregated statistics over all active flows
// plus link ground truth, consumed only by the training-time critic.
type GlobalState struct {
	OvrTput   float64 // sum of current throughputs
	MinTput   float64
	MaxTput   float64
	AvgLat    float64
	MinCwnd   float64
	MaxCwnd   float64
	AvgCwnd   float64
	LossRatio float64
	NumFlows  int

	BaseOWD   float64 // d0: base one-way delay of the link
	BufBytes  float64
	Bandwidth float64 // c: link capacity, bits/sec
}

// Vector normalizes the global state for the critic: throughputs by the
// link capacity, latency by base RTT, cwnds by the BDP.
func (g GlobalState) Vector(cfg Config) []float64 {
	c := g.Bandwidth
	if c <= 0 {
		c = 1
	}
	rtt := 2 * g.BaseOWD
	if rtt <= 0 {
		rtt = 1
	}
	bdpBytes := c / 8 * rtt
	if bdpBytes <= 0 {
		bdpBytes = 1
	}
	return []float64{
		g.OvrTput / c,
		g.MinTput / c,
		g.MaxTput / c,
		g.AvgLat / rtt,
		g.MinCwnd * transport.MSS / bdpBytes,
		g.MaxCwnd * transport.MSS / bdpBytes,
		g.AvgCwnd * transport.MSS / bdpBytes,
		g.LossRatio,
		float64(g.NumFlows) / 10,
		g.BaseOWD / cfg.LatScale,
		g.BufBytes / bdpBytes,
		c / cfg.TputScale,
	}
}
