// Package core implements the Astraea congestion-control agent itself: the
// state block assembling the normalized local observation (§3.3), the
// action block applying the multiplicative cwnd update of Eq. 3, the reward
// block computing the global objective of Eqs. 4–8, the control policy
// (either the neural actor trained by internal/rl or the distilled
// reference policy characterized in §5.5/Fig. 17), and the batched
// inference service of §4.
package core

// Config carries Astraea's hyperparameters. Defaults follow Table 4 of the
// paper.
type Config struct {
	// HistoryLen is w, the number of stacked per-MTP states in the model
	// input.
	HistoryLen int
	// Alpha is the action-control coefficient of Eq. 3.
	Alpha float64
	// MTP is the monitoring time period in seconds.
	MTP float64
	// Beta is the tolerated queueing-delay fraction in the latency reward
	// term (Eq. 5 penalizes only latency above (1+Beta)*d0). The paper does
	// not publish its value; 0.1 keeps small standing queues free.
	Beta float64

	// Reward coefficients c0..c4 of Eq. 8.
	C0, C1, C2, C3, C4 float64

	// Reward names the RewardStrategy the training environment optimizes
	// (see NewRewardStrategy): "paper" (or empty, the Eqs. 4–8 default),
	// "aurora", "maxmin", or "alpha[:α]". It rides along in checkpoints so
	// a learner trained under one objective cannot silently resume under
	// another.
	Reward string

	// Gamma is the RL discount factor.
	Gamma float64
	// LearningRate for actor and critic.
	LearningRate float64
	// BatchSize for training updates.
	BatchSize int
	// ModelUpdateInterval (seconds of environment time per training round)
	// and ModelUpdateSteps (gradient steps per round).
	ModelUpdateInterval float64
	ModelUpdateSteps    int

	// Feature normalization scales: throughputs are divided by TputScale
	// (bits/sec) and latencies by LatScale (seconds) where the paper keeps
	// raw values (thrmax, latmin), so the network sees O(1) inputs.
	TputScale float64
	LatScale  float64
}

// DefaultConfig returns Table 4's values.
func DefaultConfig() Config {
	return Config{
		HistoryLen:          5,
		Alpha:               0.025,
		MTP:                 0.030,
		Beta:                0.1,
		C0:                  0.1,
		C1:                  0.02,
		C2:                  1,
		C3:                  0.02,
		C4:                  0.01,
		Gamma:               0.98,
		LearningRate:        0.001,
		BatchSize:           192,
		ModelUpdateInterval: 5,
		ModelUpdateSteps:    20,
		TputScale:           1e8, // 100 Mbps
		LatScale:            0.1, // 100 ms
	}
}

// LocalFeatureDim is the per-MTP local state width (the eight features of
// §3.3).
const LocalFeatureDim = 8

// GlobalFeatureDim is the global state width (the twelve fields of
// Table 2).
const GlobalFeatureDim = 12

// StateDim returns the stacked actor input width (w × 8).
func (c Config) StateDim() int { return c.HistoryLen * LocalFeatureDim }

// RewardName returns the canonical name of the configured reward strategy
// ("" normalizes to "paper", "alpha" to "alpha:1"). An unresolvable name is
// returned verbatim — validation belongs to the call sites that instantiate
// the strategy (CLI flag parsing, checkpoint loading), which report it as
// an error rather than a panic.
func (c Config) RewardName() string {
	if s, err := NewRewardStrategy(c.Reward); err == nil {
		return s.Name()
	}
	return c.Reward
}
