package core

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Service is the Astraea inference service of §4: one shared policy serving
// many senders, collecting requests over a short window and evaluating them
// as a batch. The paper implements it in C++ over TensorFlow with UNIX/UDP
// sockets; here the transport is an in-process channel, which preserves the
// architectural property Fig. 16b measures — one shared service scales
// sub-linearly with flow count, unlike per-flow inference servers.
//
// With BatchWindow == 0 the service degenerates to a synchronous mutex-
// guarded evaluation, which is what the single-threaded simulator uses; the
// batching path is exercised by the scalability benchmarks and tests.
type Service struct {
	policy Policy

	// BatchWindow is how long the server waits to accumulate a batch
	// (the paper uses 5 ms); MaxBatch flushes earlier when reached.
	BatchWindow time.Duration
	MaxBatch    int

	mu      sync.Mutex
	pending []inferReq
	timer   *time.Timer
	closed  bool

	// Telemetry instruments; nil (no-op) unless Instrument was called.
	mRequests  *telemetry.Counter
	mBatches   *telemetry.Counter
	mBatchSize *telemetry.Histogram
	mQueueWait *telemetry.Histogram

	// Batches and Requests count service activity for tests/benchmarks.
	// They are guarded by mu: read them through Stats whenever a batch
	// flush may still be in flight (the timer goroutine writes them).
	Batches  int64
	Requests int64
}

// Stats returns the request and batch counts under the service lock. Plain
// field reads are only safe once no concurrent Infer or timer flush can be
// running; Stats is always safe.
func (s *Service) Stats() (requests, batches int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Requests, s.Batches
}

type inferReq struct {
	state []float64
	resp  chan float64
	// enqueued records wall-clock arrival for the queue-wait histogram;
	// zero when the service is uninstrumented.
	enqueued time.Time
}

// NewService wraps policy (nil selects the reference policy for cfg).
func NewService(cfg Config, policy Policy) *Service {
	if policy == nil {
		policy = NewReferencePolicy(cfg)
	}
	return &Service{policy: policy, BatchWindow: 5 * time.Millisecond, MaxBatch: 256}
}

// Instrument registers the service's batching telemetry on reg: requests
// served, batches flushed, the batch-size distribution (the quantity behind
// Fig. 16b's sub-linear scaling), and how long requests waited for their
// batch. Queue wait is wall-clock (the batching window is real time, not
// simulated time).
func (s *Service) Instrument(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mRequests = reg.Counter("core_infer_requests_total", "inference requests served")
	s.mBatches = reg.Counter("core_infer_batches_total", "batches evaluated (size 1 on the synchronous path)")
	s.mBatchSize = reg.Histogram("core_infer_batch_size", "requests coalesced per batch",
		telemetry.ExponentialBuckets(1, 2, 11)) // 1..1024
	s.mQueueWait = reg.Histogram("core_infer_queue_wait_seconds", "wall-clock wait from request arrival to batch flush",
		telemetry.ExponentialBuckets(1e-5, 4, 10)) // 10 µs .. 2.6 s
}

// Infer evaluates one state, possibly batched with concurrent requests.
func (s *Service) Infer(state []float64) float64 {
	s.mu.Lock()
	s.Requests++
	s.mRequests.Inc()
	if s.BatchWindow == 0 || s.closed {
		// Synchronous path.
		s.Batches++
		s.mBatches.Inc()
		s.mBatchSize.Observe(1)
		a := s.policy.Action(state)
		s.mu.Unlock()
		return a
	}
	req := inferReq{state: state, resp: make(chan float64, 1)}
	if s.mQueueWait != nil {
		req.enqueued = time.Now()
	}
	s.pending = append(s.pending, req)
	if len(s.pending) >= s.MaxBatch {
		s.flushLocked()
		s.mu.Unlock()
		return <-req.resp
	}
	if s.timer == nil {
		s.timer = time.AfterFunc(s.BatchWindow, func() {
			s.mu.Lock()
			s.flushLocked()
			s.mu.Unlock()
		})
	}
	s.mu.Unlock()
	return <-req.resp
}

// flushLocked evaluates and answers all pending requests; callers hold mu.
func (s *Service) flushLocked() {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	if len(s.pending) == 0 {
		return
	}
	batch := s.pending
	s.pending = nil
	s.Batches++
	s.mBatches.Inc()
	s.mBatchSize.Observe(float64(len(batch)))
	now := time.Time{}
	if s.mQueueWait != nil {
		now = time.Now()
	}
	for _, r := range batch {
		if !r.enqueued.IsZero() {
			s.mQueueWait.Observe(now.Sub(r.enqueued).Seconds())
		}
		r.resp <- s.policy.Action(r.state)
	}
}

// Close flushes outstanding requests and makes further Infer calls
// synchronous.
func (s *Service) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.flushLocked()
}
