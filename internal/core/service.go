package core

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Service is the Astraea inference service of §4: one shared policy serving
// many senders, collecting requests over a short window and evaluating them
// as a batch. The paper implements it in C++ over TensorFlow with UNIX/UDP
// sockets; here the transport is an in-process channel, which preserves the
// architectural property Fig. 16b measures — one shared service scales
// sub-linearly with flow count, unlike per-flow inference servers.
//
// With BatchWindow == 0 the service degenerates to a synchronous mutex-
// guarded evaluation, which is what the single-threaded simulator uses; the
// batching path is exercised by the scalability benchmarks, the tests, and
// the network-facing server in internal/serve.
//
// Concurrency model: s.mu guards only queue bookkeeping (pending slice,
// timer, counters). Policy evaluation happens on a dedicated evaluator
// goroutine, never under s.mu and never on a submitter's goroutine, so new
// arrivals are accepted while a batch forwards through the network, and a
// caller of Submit can bound its own wait (see internal/serve deadlines)
// without getting conscripted into evaluating someone else's batch.
// Policies keep internal scratch state (nn.MLP is not goroutine-safe;
// ReferencePolicy has a mode detector), so all Action calls — batched and
// synchronous — are serialized by evalMu.
type Service struct {
	// BatchWindow is how long the server waits to accumulate a batch
	// (the paper uses 5 ms); MaxBatch flushes earlier when reached.
	BatchWindow time.Duration
	MaxBatch    int

	// AfterBatch, when non-nil, runs once after every evaluated batch
	// (including size-1 synchronous evaluations), on the goroutine that
	// evaluated it and outside every service lock. internal/serve uses it
	// to flush coalesced response writes. Set before the first Submit.
	AfterBatch func()

	mu         sync.Mutex
	policy     Policy
	pending    []inferReq
	timer      *time.Timer
	timerArmed bool
	closed     bool
	evalCh     chan evalBatch // lazily started; sends happen under mu
	evalOn     bool

	// freeMu guards the recycled batch slices. It is a separate lock
	// because the evaluator returns slices here and must never contend for
	// mu (flushLocked sends on evalCh while holding mu; an evaluator
	// blocked on mu would deadlock that send).
	freeMu      sync.Mutex
	freeBatches [][]inferReq

	// evalMu serializes all policy.Action calls (stateful policies).
	evalMu sync.Mutex
	evalWG sync.WaitGroup

	// Telemetry instruments; nil (no-op) unless Instrument was called.
	mRequests  *telemetry.Counter
	mBatches   *telemetry.Counter
	mBatchSize *telemetry.Histogram
	mQueueWait *telemetry.Histogram

	// Batches and Requests count service activity for tests/benchmarks.
	// They are guarded by mu: read them through Stats whenever a batch
	// flush may still be in flight (the timer goroutine writes them).
	Batches  int64
	Requests int64
}

// Stats returns the request and batch counts under the service lock. Plain
// field reads are only safe once no concurrent Infer or timer flush can be
// running; Stats is always safe.
func (s *Service) Stats() (requests, batches int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Requests, s.Batches
}

// Completion receives the action for one submitted request. It is the
// allocation-free alternative to Submit's response channel: the serving
// layer passes a pooled per-request object whose Complete method writes the
// framed response, so steady-state request handling needs no per-request
// channel. Complete runs on the evaluator goroutine (or the submitter's, on
// the synchronous path) and must not block for long — a stalled Complete
// stalls the whole shard.
type Completion interface {
	Complete(action float64)
}

type inferReq struct {
	state []float64
	resp  chan float64
	comp  Completion // non-nil selects the callback delivery path
	// enqueued records wall-clock arrival for the queue-wait histogram;
	// zero when the service is uninstrumented.
	enqueued time.Time
}

// deliver hands the action to whichever delivery route the request carries.
func (r *inferReq) deliver(action float64) {
	if r.comp != nil {
		r.comp.Complete(action)
	} else {
		r.resp <- action
	}
}

// evalBatch is one detached batch handed to the evaluator goroutine. The
// policy pointer is captured at detach time, so a SetPolicy racing a flush
// never splits a batch across two policies.
type evalBatch struct {
	batch     []inferReq
	policy    Policy
	queueWait *telemetry.Histogram
	after     func()
}

// NewService wraps policy (nil selects the reference policy for cfg).
func NewService(cfg Config, policy Policy) *Service {
	if policy == nil {
		policy = NewReferencePolicy(cfg)
	}
	return &Service{policy: policy, BatchWindow: 5 * time.Millisecond, MaxBatch: 256}
}

// SetPolicy atomically swaps the served policy. Batches already detached
// keep the policy they were detached with, so a swap never drops, errors,
// or splits an in-flight request — this is the primitive behind hot reload
// in internal/serve.
func (s *Service) SetPolicy(p Policy) {
	if p == nil {
		return
	}
	s.mu.Lock()
	s.policy = p
	s.mu.Unlock()
}

// Policy returns the currently served policy (the one the next detached
// batch will capture). The sharded server uses it to clone a template
// service's policy into sibling shards.
func (s *Service) Policy() Policy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.policy
}

// Instrument registers the service's batching telemetry on reg: requests
// served, batches flushed, the batch-size distribution (the quantity behind
// Fig. 16b's sub-linear scaling), and how long requests waited for their
// batch. Queue wait is wall-clock (the batching window is real time, not
// simulated time).
func (s *Service) Instrument(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mRequests = reg.Counter("core_infer_requests_total", "inference requests served")
	s.mBatches = reg.Counter("core_infer_batches_total", "batches evaluated (size 1 on the synchronous path)")
	s.mBatchSize = reg.Histogram("core_infer_batch_size", "requests coalesced per batch",
		telemetry.ExponentialBuckets(1, 2, 11)) // 1..1024
	s.mQueueWait = reg.Histogram("core_infer_queue_wait_seconds", "wall-clock wait from request arrival to batch flush",
		telemetry.ExponentialBuckets(1e-5, 4, 10)) // 10 µs .. 2.6 s
}

// ShareInstruments attaches src's already-registered instruments to s, so
// several shard services aggregate into one metric set (the telemetry
// registry panics on duplicate names, so only one shard can register; the
// counters are atomic and safe to share).
func (s *Service) ShareInstruments(src *Service) {
	src.mu.Lock()
	mReq, mBat, mSize, mWait := src.mRequests, src.mBatches, src.mBatchSize, src.mQueueWait
	src.mu.Unlock()
	s.mu.Lock()
	s.mRequests, s.mBatches, s.mBatchSize, s.mQueueWait = mReq, mBat, mSize, mWait
	s.mu.Unlock()
}

// Infer evaluates one state, possibly batched with concurrent requests.
func (s *Service) Infer(state []float64) float64 {
	return <-s.Submit(state)
}

// Submit enqueues one state for evaluation and returns the channel its
// action will be delivered on (buffered: an abandoned result never blocks
// the evaluator). Callers that must bound their wait — the deadline path in
// internal/serve — select on the channel and simply walk away on timeout;
// the request still evaluates with its batch, and the late answer is
// discarded by the buffer.
func (s *Service) Submit(state []float64) <-chan float64 {
	resp := make(chan float64, 1)
	s.submit(inferReq{state: state, resp: resp})
	return resp
}

// SubmitTo enqueues one state for evaluation with callback delivery: comp's
// Complete method receives the action instead of a channel. This is the
// zero-allocation path — the caller owns comp (typically a pooled request
// object) and state must stay valid until Complete runs. Every submitted
// request is completed exactly once, including across Close.
func (s *Service) SubmitTo(state []float64, comp Completion) {
	s.submit(inferReq{state: state, comp: comp})
}

func (s *Service) submit(req inferReq) {
	s.mu.Lock()
	s.Requests++
	s.mRequests.Inc()
	if s.BatchWindow == 0 || s.closed {
		// Synchronous path: evaluate on the caller's goroutine, but off
		// s.mu so concurrent submitters queue on evalMu, not on the
		// bookkeeping lock.
		s.Batches++
		s.mBatches.Inc()
		s.mBatchSize.Observe(1)
		p := s.policy
		after := s.AfterBatch
		s.mu.Unlock()
		s.evalMu.Lock()
		a := p.Action(req.state)
		s.evalMu.Unlock()
		req.deliver(a)
		if after != nil {
			after()
		}
		return
	}
	if s.mQueueWait != nil {
		req.enqueued = time.Now()
	}
	if s.pending == nil {
		s.pending = s.getBatchBuf()
	}
	s.pending = append(s.pending, req)
	if len(s.pending) >= s.MaxBatch {
		s.flushLocked()
	} else if !s.timerArmed {
		s.timerArmed = true
		if s.timer == nil {
			s.timer = time.AfterFunc(s.BatchWindow, func() {
				s.mu.Lock()
				s.timerArmed = false
				s.flushLocked()
				s.mu.Unlock()
			})
		} else {
			s.timer.Reset(s.BatchWindow)
		}
	}
	s.mu.Unlock()
}

// getBatchBuf returns a recycled batch slice (or a fresh one), so steady-
// state batching does not allocate per batch.
func (s *Service) getBatchBuf() []inferReq {
	s.freeMu.Lock()
	defer s.freeMu.Unlock()
	if n := len(s.freeBatches); n > 0 {
		b := s.freeBatches[n-1]
		s.freeBatches = s.freeBatches[:n-1]
		return b
	}
	return make([]inferReq, 0, 64)
}

// putBatchBuf clears and recycles a drained batch slice. Entries are zeroed
// so recycled slices never pin request states or completions for the GC.
func (s *Service) putBatchBuf(b []inferReq) {
	clear(b)
	s.freeMu.Lock()
	if len(s.freeBatches) < 8 {
		s.freeBatches = append(s.freeBatches, b[:0])
	}
	s.freeMu.Unlock()
}

// flushLocked detaches the pending batch and hands it to the evaluator
// goroutine; callers hold mu. The channel send happens under mu: if the
// evaluator is backlogged this blocks new arrivals, which is deliberate
// backpressure — upstream admission control (internal/serve) turns it into
// explicit shedding instead of an unbounded pending queue. The evaluator
// never takes mu, so the send always makes progress.
func (s *Service) flushLocked() {
	if s.timerArmed {
		s.timer.Stop()
		s.timerArmed = false
	}
	if len(s.pending) == 0 {
		return
	}
	batch := s.pending
	s.pending = nil
	s.Batches++
	s.mBatches.Inc()
	s.mBatchSize.Observe(float64(len(batch)))
	if !s.evalOn {
		s.evalOn = true
		s.evalCh = make(chan evalBatch, 4)
		s.evalWG.Add(1)
		go s.evaluator()
	}
	s.evalCh <- evalBatch{batch: batch, policy: s.policy, queueWait: s.mQueueWait, after: s.AfterBatch}
}

// evaluator drains detached batches until Close closes the feed channel.
func (s *Service) evaluator() {
	defer s.evalWG.Done()
	for eb := range s.evalCh {
		s.evaluate(eb)
	}
}

// evaluate answers every request of one batch. No lock except evalMu is
// held, so arrivals keep flowing into the next batch during the forward
// passes. The drained batch slice is recycled.
func (s *Service) evaluate(eb evalBatch) {
	now := time.Time{}
	if eb.queueWait != nil {
		now = time.Now()
	}
	s.evalMu.Lock()
	for i := range eb.batch {
		r := &eb.batch[i]
		if !r.enqueued.IsZero() {
			eb.queueWait.Observe(now.Sub(r.enqueued).Seconds())
		}
		r.deliver(eb.policy.Action(r.state))
	}
	s.evalMu.Unlock()
	if eb.after != nil {
		eb.after()
	}
	s.putBatchBuf(eb.batch)
}

// Close flushes outstanding requests, waits for their answers to be
// delivered, and makes further Infer calls synchronous. Safe to call more
// than once.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.flushLocked()
	if s.evalOn {
		// No sender can follow us: Submit takes the synchronous path once
		// closed is set, and any timer callback racing in will find an
		// empty pending slice and return before the send.
		close(s.evalCh)
	}
	s.mu.Unlock()
	s.evalWG.Wait()
}
