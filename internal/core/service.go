package core

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Service is the Astraea inference service of §4: one shared policy serving
// many senders, collecting requests over a short window and evaluating them
// as a batch. The paper implements it in C++ over TensorFlow with UNIX/UDP
// sockets; here the transport is an in-process channel, which preserves the
// architectural property Fig. 16b measures — one shared service scales
// sub-linearly with flow count, unlike per-flow inference servers.
//
// With BatchWindow == 0 the service degenerates to a synchronous mutex-
// guarded evaluation, which is what the single-threaded simulator uses; the
// batching path is exercised by the scalability benchmarks, the tests, and
// the network-facing server in internal/serve.
//
// Concurrency model: s.mu guards only queue bookkeeping (pending slice,
// timer, counters). Policy evaluation happens on a dedicated evaluator
// goroutine, never under s.mu and never on a submitter's goroutine, so new
// arrivals are accepted while a batch forwards through the network, and a
// caller of Submit can bound its own wait (see internal/serve deadlines)
// without getting conscripted into evaluating someone else's batch.
// Policies keep internal scratch state (nn.MLP is not goroutine-safe;
// ReferencePolicy has a mode detector), so all Action calls — batched and
// synchronous — are serialized by evalMu.
type Service struct {
	// BatchWindow is how long the server waits to accumulate a batch
	// (the paper uses 5 ms); MaxBatch flushes earlier when reached.
	BatchWindow time.Duration
	MaxBatch    int

	mu      sync.Mutex
	policy  Policy
	pending []inferReq
	timer   *time.Timer
	closed  bool
	evalCh  chan evalBatch // lazily started; sends happen under mu
	evalOn  bool

	// evalMu serializes all policy.Action calls (stateful policies).
	evalMu sync.Mutex
	evalWG sync.WaitGroup

	// Telemetry instruments; nil (no-op) unless Instrument was called.
	mRequests  *telemetry.Counter
	mBatches   *telemetry.Counter
	mBatchSize *telemetry.Histogram
	mQueueWait *telemetry.Histogram

	// Batches and Requests count service activity for tests/benchmarks.
	// They are guarded by mu: read them through Stats whenever a batch
	// flush may still be in flight (the timer goroutine writes them).
	Batches  int64
	Requests int64
}

// Stats returns the request and batch counts under the service lock. Plain
// field reads are only safe once no concurrent Infer or timer flush can be
// running; Stats is always safe.
func (s *Service) Stats() (requests, batches int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Requests, s.Batches
}

type inferReq struct {
	state []float64
	resp  chan float64
	// enqueued records wall-clock arrival for the queue-wait histogram;
	// zero when the service is uninstrumented.
	enqueued time.Time
}

// evalBatch is one detached batch handed to the evaluator goroutine. The
// policy pointer is captured at detach time, so a SetPolicy racing a flush
// never splits a batch across two policies.
type evalBatch struct {
	batch     []inferReq
	policy    Policy
	queueWait *telemetry.Histogram
}

// NewService wraps policy (nil selects the reference policy for cfg).
func NewService(cfg Config, policy Policy) *Service {
	if policy == nil {
		policy = NewReferencePolicy(cfg)
	}
	return &Service{policy: policy, BatchWindow: 5 * time.Millisecond, MaxBatch: 256}
}

// SetPolicy atomically swaps the served policy. Batches already detached
// keep the policy they were detached with, so a swap never drops, errors,
// or splits an in-flight request — this is the primitive behind hot reload
// in internal/serve.
func (s *Service) SetPolicy(p Policy) {
	if p == nil {
		return
	}
	s.mu.Lock()
	s.policy = p
	s.mu.Unlock()
}

// Instrument registers the service's batching telemetry on reg: requests
// served, batches flushed, the batch-size distribution (the quantity behind
// Fig. 16b's sub-linear scaling), and how long requests waited for their
// batch. Queue wait is wall-clock (the batching window is real time, not
// simulated time).
func (s *Service) Instrument(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mRequests = reg.Counter("core_infer_requests_total", "inference requests served")
	s.mBatches = reg.Counter("core_infer_batches_total", "batches evaluated (size 1 on the synchronous path)")
	s.mBatchSize = reg.Histogram("core_infer_batch_size", "requests coalesced per batch",
		telemetry.ExponentialBuckets(1, 2, 11)) // 1..1024
	s.mQueueWait = reg.Histogram("core_infer_queue_wait_seconds", "wall-clock wait from request arrival to batch flush",
		telemetry.ExponentialBuckets(1e-5, 4, 10)) // 10 µs .. 2.6 s
}

// Infer evaluates one state, possibly batched with concurrent requests.
func (s *Service) Infer(state []float64) float64 {
	return <-s.Submit(state)
}

// Submit enqueues one state for evaluation and returns the channel its
// action will be delivered on (buffered: an abandoned result never blocks
// the evaluator). Callers that must bound their wait — the deadline path in
// internal/serve — select on the channel and simply walk away on timeout;
// the request still evaluates with its batch, and the late answer is
// discarded by the buffer.
func (s *Service) Submit(state []float64) <-chan float64 {
	resp := make(chan float64, 1)
	s.mu.Lock()
	s.Requests++
	s.mRequests.Inc()
	if s.BatchWindow == 0 || s.closed {
		// Synchronous path: evaluate on the caller's goroutine, but off
		// s.mu so concurrent submitters queue on evalMu, not on the
		// bookkeeping lock.
		s.Batches++
		s.mBatches.Inc()
		s.mBatchSize.Observe(1)
		p := s.policy
		s.mu.Unlock()
		s.evalMu.Lock()
		a := p.Action(state)
		s.evalMu.Unlock()
		resp <- a
		return resp
	}
	req := inferReq{state: state, resp: resp}
	if s.mQueueWait != nil {
		req.enqueued = time.Now()
	}
	s.pending = append(s.pending, req)
	if len(s.pending) >= s.MaxBatch {
		s.flushLocked()
	} else if s.timer == nil {
		s.timer = time.AfterFunc(s.BatchWindow, func() {
			s.mu.Lock()
			s.flushLocked()
			s.mu.Unlock()
		})
	}
	s.mu.Unlock()
	return resp
}

// flushLocked detaches the pending batch and hands it to the evaluator
// goroutine; callers hold mu. The channel send happens under mu: if the
// evaluator is backlogged this blocks new arrivals, which is deliberate
// backpressure — upstream admission control (internal/serve) turns it into
// explicit shedding instead of an unbounded pending queue. The evaluator
// never takes mu, so the send always makes progress.
func (s *Service) flushLocked() {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	if len(s.pending) == 0 {
		return
	}
	batch := s.pending
	s.pending = nil
	s.Batches++
	s.mBatches.Inc()
	s.mBatchSize.Observe(float64(len(batch)))
	if !s.evalOn {
		s.evalOn = true
		s.evalCh = make(chan evalBatch, 4)
		s.evalWG.Add(1)
		go s.evaluator()
	}
	s.evalCh <- evalBatch{batch: batch, policy: s.policy, queueWait: s.mQueueWait}
}

// evaluator drains detached batches until Close closes the feed channel.
func (s *Service) evaluator() {
	defer s.evalWG.Done()
	for eb := range s.evalCh {
		s.evaluate(eb)
	}
}

// evaluate answers every request of one batch. No lock except evalMu is
// held, so arrivals keep flowing into the next batch during the forward
// passes.
func (s *Service) evaluate(eb evalBatch) {
	now := time.Time{}
	if eb.queueWait != nil {
		now = time.Now()
	}
	s.evalMu.Lock()
	defer s.evalMu.Unlock()
	for _, r := range eb.batch {
		if !r.enqueued.IsZero() {
			eb.queueWait.Observe(now.Sub(r.enqueued).Seconds())
		}
		r.resp <- eb.policy.Action(r.state)
	}
}

// Close flushes outstanding requests, waits for their answers to be
// delivered, and makes further Infer calls synchronous. Safe to call more
// than once.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.flushLocked()
	if s.evalOn {
		// No sender can follow us: Submit takes the synchronous path once
		// closed is set, and any timer callback racing in will find an
		// empty pending slice and return before the send.
		close(s.evalCh)
	}
	s.mu.Unlock()
	s.evalWG.Wait()
}
