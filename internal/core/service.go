package core

import (
	"sync"
	"time"
)

// Service is the Astraea inference service of §4: one shared policy serving
// many senders, collecting requests over a short window and evaluating them
// as a batch. The paper implements it in C++ over TensorFlow with UNIX/UDP
// sockets; here the transport is an in-process channel, which preserves the
// architectural property Fig. 16b measures — one shared service scales
// sub-linearly with flow count, unlike per-flow inference servers.
//
// With BatchWindow == 0 the service degenerates to a synchronous mutex-
// guarded evaluation, which is what the single-threaded simulator uses; the
// batching path is exercised by the scalability benchmarks and tests.
type Service struct {
	policy Policy

	// BatchWindow is how long the server waits to accumulate a batch
	// (the paper uses 5 ms); MaxBatch flushes earlier when reached.
	BatchWindow time.Duration
	MaxBatch    int

	mu      sync.Mutex
	pending []inferReq
	timer   *time.Timer
	closed  bool

	// Batches and Requests count service activity for tests/benchmarks.
	Batches  int64
	Requests int64
}

type inferReq struct {
	state []float64
	resp  chan float64
}

// NewService wraps policy (nil selects the reference policy for cfg).
func NewService(cfg Config, policy Policy) *Service {
	if policy == nil {
		policy = NewReferencePolicy(cfg)
	}
	return &Service{policy: policy, BatchWindow: 5 * time.Millisecond, MaxBatch: 256}
}

// Infer evaluates one state, possibly batched with concurrent requests.
func (s *Service) Infer(state []float64) float64 {
	s.mu.Lock()
	s.Requests++
	if s.BatchWindow == 0 || s.closed {
		// Synchronous path.
		s.Batches++
		a := s.policy.Action(state)
		s.mu.Unlock()
		return a
	}
	req := inferReq{state: state, resp: make(chan float64, 1)}
	s.pending = append(s.pending, req)
	if len(s.pending) >= s.MaxBatch {
		s.flushLocked()
		s.mu.Unlock()
		return <-req.resp
	}
	if s.timer == nil {
		s.timer = time.AfterFunc(s.BatchWindow, func() {
			s.mu.Lock()
			s.flushLocked()
			s.mu.Unlock()
		})
	}
	s.mu.Unlock()
	return <-req.resp
}

// flushLocked evaluates and answers all pending requests; callers hold mu.
func (s *Service) flushLocked() {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	if len(s.pending) == 0 {
		return
	}
	batch := s.pending
	s.pending = nil
	s.Batches++
	for _, r := range batch {
		r.resp <- s.policy.Action(r.state)
	}
}

// Close flushes outstanding requests and makes further Infer calls
// synchronous.
func (s *Service) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.flushLocked()
}
