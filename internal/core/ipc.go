package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the out-of-process transport of the inference
// service (§4): senders talk to a shared service over a UNIX datagram or
// UDP socket. The wire format is fixed-size little-endian float64s:
//
//	request:  [reqID uint64][n uint32][n × float64 state]
//	response: [reqID uint64][action float64]
//
// The in-process Service does the batching; this layer only moves bytes,
// exactly the split the paper's C++ implementation uses. The codec is
// exported because internal/serve reuses it verbatim inside length-prefixed
// frames on its stream transports (a response there may carry a trailer
// after the 16 codec bytes; DecodeResponse ignores trailing bytes, so the
// formats stay interoperable).

// MaxStateDim bounds the accepted request size (defensive: a datagram
// declaring a huge n must not cause a huge allocation).
const MaxStateDim = 4096

// RequestSize returns the encoded size of a request carrying dim features.
func RequestSize(dim int) int { return 12 + 8*dim }

// EncodeRequest serializes an inference request.
func EncodeRequest(reqID uint64, state []float64) []byte {
	return AppendRequest(make([]byte, 0, RequestSize(len(state))), reqID, state)
}

// AppendRequest appends the encoded request to dst and returns the extended
// slice — the allocation-free form of EncodeRequest for reusable buffers.
func AppendRequest(dst []byte, reqID uint64, state []float64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, reqID)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(state)))
	for _, v := range state {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeRequest parses a request datagram or frame payload.
func DecodeRequest(buf []byte) (reqID uint64, state []float64, err error) {
	return DecodeRequestInto(buf, nil)
}

// DecodeRequestInto is DecodeRequest with caller-owned state storage: the
// decoded state appends into dst (typically a recycled slice trimmed to
// length 0), so a steady-state reader allocates nothing once the buffer has
// grown to the request width. Bytes past the encoded request are ignored,
// which is how the serve-layer flow-ID trailer stays transparent here.
func DecodeRequestInto(buf []byte, dst []float64) (reqID uint64, state []float64, err error) {
	if len(buf) < 12 {
		return 0, nil, fmt.Errorf("core: request too short (%d bytes)", len(buf))
	}
	reqID = binary.LittleEndian.Uint64(buf[0:8])
	n := binary.LittleEndian.Uint32(buf[8:12])
	if n > MaxStateDim {
		return 0, nil, fmt.Errorf("core: state dim %d exceeds limit", n)
	}
	if len(buf) < 12+int(n)*8 {
		return 0, nil, fmt.Errorf("core: truncated request: %d bytes for dim %d", len(buf), n)
	}
	state = dst
	for i := 0; i < int(n); i++ {
		state = append(state, math.Float64frombits(binary.LittleEndian.Uint64(buf[12+8*i:])))
	}
	return reqID, state, nil
}

// ResponseSize is the encoded size of a response.
const ResponseSize = 16

// EncodeResponse serializes an inference response.
func EncodeResponse(reqID uint64, action float64) []byte {
	return AppendResponse(make([]byte, 0, ResponseSize), reqID, action)
}

// AppendResponse appends the encoded response to dst and returns the
// extended slice.
func AppendResponse(dst []byte, reqID uint64, action float64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, reqID)
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(action))
}

// DecodeResponse parses a response. Bytes past the first 16 are ignored, so
// the serve-layer trailer (flags, policy version) is transparent to clients
// that only understand the base codec.
func DecodeResponse(buf []byte) (reqID uint64, action float64, err error) {
	if len(buf) < ResponseSize {
		return 0, 0, fmt.Errorf("core: response too short (%d bytes)", len(buf))
	}
	return binary.LittleEndian.Uint64(buf[0:8]),
		math.Float64frombits(binary.LittleEndian.Uint64(buf[8:16])), nil
}

// ServiceServer exposes a Service over a packet connection (UDP or
// unixgram). Datagrams fan into a bounded worker pool: a reader goroutine
// decodes and enqueues, and a fixed number of workers call Service.Infer
// (blocking for the batch window) and send the reply. When the queue is
// full the datagram is dropped and counted — never an unbounded goroutine
// per request, so a flood degrades to drops (datagram semantics) instead of
// memory exhaustion.
type ServiceServer struct {
	Service *Service
	conn    net.PacketConn

	queue chan dgramReq
	drops atomic.Uint64

	wg     sync.WaitGroup
	closed chan struct{}
}

type dgramReq struct {
	reqID uint64
	state []float64
	from  net.Addr
}

// ListenAndServe starts serving on network/address (e.g. "udp",
// "127.0.0.1:0" or "unixgram", "/tmp/astraea.sock") until Close, with
// default worker-pool sizing.
func ListenAndServe(svc *Service, network, address string) (*ServiceServer, error) {
	return ListenAndServeWith(svc, network, address, 0, 0)
}

// ListenAndServeWith is ListenAndServe with explicit pool sizing: workers
// concurrent in-flight requests and queueDepth parked datagrams (both
// default when <= 0: 8×GOMAXPROCS workers, 4× that queue).
func ListenAndServeWith(svc *Service, network, address string, workers, queueDepth int) (*ServiceServer, error) {
	if workers <= 0 {
		workers = 8 * runtime.GOMAXPROCS(0)
	}
	if queueDepth <= 0 {
		queueDepth = 4 * workers
	}
	conn, err := net.ListenPacket(network, address)
	if err != nil {
		return nil, fmt.Errorf("core: listen %s %s: %w", network, address, err)
	}
	s := &ServiceServer{
		Service: svc,
		conn:    conn,
		queue:   make(chan dgramReq, queueDepth),
		closed:  make(chan struct{}),
	}
	s.wg.Add(1)
	go s.loop()
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *ServiceServer) Addr() net.Addr { return s.conn.LocalAddr() }

// Dropped returns how many datagrams were shed because the worker queue was
// full.
func (s *ServiceServer) Dropped() uint64 { return s.drops.Load() }

// loop is the single reader: it owns the receive buffer and the queue's
// send side (it closes the queue on exit, releasing the workers).
func (s *ServiceServer) loop() {
	defer s.wg.Done()
	defer close(s.queue)
	buf := make([]byte, RequestSize(MaxStateDim))
	for {
		n, from, err := s.conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			continue // transient read errors: drop the datagram, keep serving
		}
		reqID, state, err := DecodeRequest(buf[:n])
		if err != nil {
			continue // malformed datagram: drop (datagram semantics)
		}
		select {
		case s.queue <- dgramReq{reqID: reqID, state: state, from: from}:
		default:
			s.drops.Add(1) // pool saturated: shed, don't spawn
		}
	}
}

func (s *ServiceServer) worker() {
	defer s.wg.Done()
	for r := range s.queue {
		action := s.Service.Infer(r.state)
		// Best-effort reply: a lost datagram means the sender times out
		// and reuses its previous action, like any datagram protocol.
		_, _ = s.conn.WriteTo(EncodeResponse(r.reqID, action), r.from)
	}
}

// Close stops the server and flushes the underlying service. Queued
// requests still in the pool are answered best-effort (their replies fail
// once the socket is gone, which is indistinguishable from datagram loss).
func (s *ServiceServer) Close() error {
	close(s.closed)
	err := s.conn.Close()
	s.wg.Wait()
	s.Service.Close()
	return err
}

// DefaultInferTimeout bounds ServiceClient.Infer when the caller does not
// choose a timeout: datagrams are lossy, and an unanswered request must
// surface as an error, not a goroutine parked forever.
const DefaultInferTimeout = 5 * time.Second

// ErrInferTimeout is returned by ServiceClient.Infer when no response
// arrives within the client's Timeout (e.g. the request or reply datagram
// was lost, or the server is gone).
var ErrInferTimeout = errors.New("core: inference request timed out")

// ErrClientClosed is returned by ServiceClient.Infer when the connection
// closes (locally or by the peer) while the call is outstanding.
var ErrClientClosed = errors.New("core: connection closed with inference call outstanding")

type inferResult struct {
	action float64
	err    error
}

// ServiceClient issues inference requests to a remote ServiceServer.
type ServiceClient struct {
	conn      net.Conn
	localPath string // unixgram client socket file, removed on Close

	// Timeout bounds each Infer call (default DefaultInferTimeout, set by
	// DialService; 0 waits forever). Adjust before issuing calls.
	Timeout time.Duration

	mu    sync.Mutex
	next  uint64
	calls map[uint64]chan inferResult

	readOnce sync.Once
}

// clientSeq names unixgram client sockets uniquely within the process.
var clientSeq atomic.Uint64

// DialService connects to a server at network/address. For "unixgram" the
// client binds its own socket (next to the server's path) so the server
// has a return address; the socket file is removed on Close.
func DialService(network, address string) (*ServiceClient, error) {
	if network == "unixgram" {
		local := fmt.Sprintf("%s.client-%d-%d", address, os.Getpid(), clientSeq.Add(1))
		laddr := &net.UnixAddr{Name: local, Net: "unixgram"}
		raddr := &net.UnixAddr{Name: address, Net: "unixgram"}
		conn, err := net.DialUnix("unixgram", laddr, raddr)
		if err != nil {
			return nil, fmt.Errorf("core: dial unixgram %s: %w", address, err)
		}
		return &ServiceClient{conn: conn, localPath: local, Timeout: DefaultInferTimeout,
			calls: make(map[uint64]chan inferResult)}, nil
	}
	conn, err := net.Dial(network, address)
	if err != nil {
		return nil, fmt.Errorf("core: dial %s %s: %w", network, address, err)
	}
	return &ServiceClient{conn: conn, Timeout: DefaultInferTimeout,
		calls: make(map[uint64]chan inferResult)}, nil
}

func (c *ServiceClient) readLoop() {
	buf := make([]byte, 64)
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			// Connection closed: fail all waiters with a real error so no
			// caller mistakes a dead transport for action 0.
			c.mu.Lock()
			for id, ch := range c.calls {
				ch <- inferResult{err: ErrClientClosed}
				delete(c.calls, id)
			}
			c.mu.Unlock()
			return
		}
		reqID, action, err := DecodeResponse(buf[:n])
		if err != nil {
			continue
		}
		c.mu.Lock()
		if ch, ok := c.calls[reqID]; ok {
			ch <- inferResult{action: action}
			delete(c.calls, reqID)
		}
		c.mu.Unlock()
	}
}

// Infer sends one request and waits for its response, at most c.Timeout.
func (c *ServiceClient) Infer(state []float64) (float64, error) {
	c.readOnce.Do(func() { go c.readLoop() })
	ch := make(chan inferResult, 1)
	c.mu.Lock()
	c.next++
	id := c.next
	c.calls[id] = ch
	c.mu.Unlock()

	if _, err := c.conn.Write(EncodeRequest(id, state)); err != nil {
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		return 0, fmt.Errorf("core: send inference request: %w", err)
	}

	var timeout <-chan time.Time
	if c.Timeout > 0 {
		t := time.NewTimer(c.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case r := <-ch:
		return r.action, r.err
	case <-timeout:
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		// The response may have raced the timer: the channel is buffered,
		// so a delivered result is still there.
		select {
		case r := <-ch:
			return r.action, r.err
		default:
		}
		return 0, fmt.Errorf("core: request %d after %v: %w", id, c.Timeout, ErrInferTimeout)
	}
}

// Close tears down the client connection; outstanding Infer calls return
// ErrClientClosed.
func (c *ServiceClient) Close() error {
	err := c.conn.Close()
	if c.localPath != "" {
		os.Remove(c.localPath)
	}
	return err
}
