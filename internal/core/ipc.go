package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"os"
	"sync"
	"sync/atomic"
)

// This file implements the out-of-process transport of the inference
// service (§4): senders talk to a shared service over a UNIX datagram or
// UDP socket. The wire format is fixed-size little-endian float64s:
//
//	request:  [reqID uint64][n uint32][n × float64 state]
//	response: [reqID uint64][action float64]
//
// The in-process Service does the batching; this layer only moves bytes,
// exactly the split the paper's C++ implementation uses.

// maxStateDim bounds the accepted request size (defensive: a datagram
// declaring a huge n must not cause a huge allocation).
const maxStateDim = 4096

// encodeRequest serializes an inference request.
func encodeRequest(reqID uint64, state []float64) []byte {
	buf := make([]byte, 12+8*len(state))
	binary.LittleEndian.PutUint64(buf[0:8], reqID)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(state)))
	for i, v := range state {
		binary.LittleEndian.PutUint64(buf[12+8*i:], math.Float64bits(v))
	}
	return buf
}

// decodeRequest parses a request datagram.
func decodeRequest(buf []byte) (reqID uint64, state []float64, err error) {
	if len(buf) < 12 {
		return 0, nil, fmt.Errorf("core: request too short (%d bytes)", len(buf))
	}
	reqID = binary.LittleEndian.Uint64(buf[0:8])
	n := binary.LittleEndian.Uint32(buf[8:12])
	if n > maxStateDim {
		return 0, nil, fmt.Errorf("core: state dim %d exceeds limit", n)
	}
	if len(buf) < 12+int(n)*8 {
		return 0, nil, fmt.Errorf("core: truncated request: %d bytes for dim %d", len(buf), n)
	}
	state = make([]float64, n)
	for i := range state {
		state[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[12+8*i:]))
	}
	return reqID, state, nil
}

// encodeResponse serializes an inference response.
func encodeResponse(reqID uint64, action float64) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf[0:8], reqID)
	binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(action))
	return buf
}

// decodeResponse parses a response datagram.
func decodeResponse(buf []byte) (reqID uint64, action float64, err error) {
	if len(buf) < 16 {
		return 0, 0, fmt.Errorf("core: response too short (%d bytes)", len(buf))
	}
	return binary.LittleEndian.Uint64(buf[0:8]),
		math.Float64frombits(binary.LittleEndian.Uint64(buf[8:16])), nil
}

// ServiceServer exposes a Service over a packet connection (UDP or unixgram).
type ServiceServer struct {
	Service *Service
	conn    net.PacketConn

	wg     sync.WaitGroup
	closed chan struct{}
}

// ListenAndServe starts serving on network/address (e.g. "udp",
// "127.0.0.1:0" or "unixgram", "/tmp/astraea.sock") until Close.
func ListenAndServe(svc *Service, network, address string) (*ServiceServer, error) {
	conn, err := net.ListenPacket(network, address)
	if err != nil {
		return nil, fmt.Errorf("core: listen %s %s: %w", network, address, err)
	}
	s := &ServiceServer{Service: svc, conn: conn, closed: make(chan struct{})}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *ServiceServer) Addr() net.Addr { return s.conn.LocalAddr() }

func (s *ServiceServer) loop() {
	defer s.wg.Done()
	buf := make([]byte, 12+8*maxStateDim)
	for {
		n, from, err := s.conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			continue // transient read errors: drop the datagram, keep serving
		}
		reqID, state, err := decodeRequest(buf[:n])
		if err != nil {
			continue // malformed datagram: drop (datagram semantics)
		}
		s.wg.Add(1)
		go func(reqID uint64, state []float64, from net.Addr) {
			defer s.wg.Done()
			action := s.Service.Infer(state)
			// Best-effort reply: a lost datagram means the sender times out
			// and reuses its previous action, like any datagram protocol.
			_, _ = s.conn.WriteTo(encodeResponse(reqID, action), from)
		}(reqID, state, from)
	}
}

// Close stops the server and flushes the underlying service.
func (s *ServiceServer) Close() error {
	close(s.closed)
	err := s.conn.Close()
	s.Service.Close()
	s.wg.Wait()
	return err
}

// ServiceClient issues inference requests to a remote ServiceServer.
type ServiceClient struct {
	conn      net.Conn
	localPath string // unixgram client socket file, removed on Close

	mu    sync.Mutex
	next  uint64
	calls map[uint64]chan float64

	readOnce sync.Once
}

// clientSeq names unixgram client sockets uniquely within the process.
var clientSeq atomic.Uint64

// DialService connects to a server at network/address. For "unixgram" the
// client binds its own socket (next to the server's path) so the server
// has a return address; the socket file is removed on Close.
func DialService(network, address string) (*ServiceClient, error) {
	if network == "unixgram" {
		local := fmt.Sprintf("%s.client-%d-%d", address, os.Getpid(), clientSeq.Add(1))
		laddr := &net.UnixAddr{Name: local, Net: "unixgram"}
		raddr := &net.UnixAddr{Name: address, Net: "unixgram"}
		conn, err := net.DialUnix("unixgram", laddr, raddr)
		if err != nil {
			return nil, fmt.Errorf("core: dial unixgram %s: %w", address, err)
		}
		return &ServiceClient{conn: conn, localPath: local, calls: make(map[uint64]chan float64)}, nil
	}
	conn, err := net.Dial(network, address)
	if err != nil {
		return nil, fmt.Errorf("core: dial %s %s: %w", network, address, err)
	}
	return &ServiceClient{conn: conn, calls: make(map[uint64]chan float64)}, nil
}

func (c *ServiceClient) readLoop() {
	buf := make([]byte, 64)
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			// Connection closed: fail all waiters with a neutral action.
			c.mu.Lock()
			for id, ch := range c.calls {
				ch <- 0
				delete(c.calls, id)
			}
			c.mu.Unlock()
			return
		}
		reqID, action, err := decodeResponse(buf[:n])
		if err != nil {
			continue
		}
		c.mu.Lock()
		if ch, ok := c.calls[reqID]; ok {
			ch <- action
			delete(c.calls, reqID)
		}
		c.mu.Unlock()
	}
}

// Infer sends one request and waits for its response.
func (c *ServiceClient) Infer(state []float64) (float64, error) {
	c.readOnce.Do(func() { go c.readLoop() })
	ch := make(chan float64, 1)
	c.mu.Lock()
	c.next++
	id := c.next
	c.calls[id] = ch
	c.mu.Unlock()

	if _, err := c.conn.Write(encodeRequest(id, state)); err != nil {
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		return 0, fmt.Errorf("core: send inference request: %w", err)
	}
	return <-ch, nil
}

// Close tears down the client connection.
func (c *ServiceClient) Close() error {
	err := c.conn.Close()
	if c.localPath != "" {
		os.Remove(c.localPath)
	}
	return err
}
