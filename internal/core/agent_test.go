package core

import (
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/transport"
)

func runAgentOnLink(t *testing.T, agent *Agent, rate, rtt float64, queueBytes int, dur float64) *transport.Flow {
	t.Helper()
	s := sim.New(1)
	d := netem.NewDumbbell(s, netem.DumbbellConfig{RateBps: rate, BaseRTT: rtt, QueueBytes: queueBytes})
	f := transport.NewFlow(s, transport.FlowConfig{ID: 0, Path: d.FlowPath(0), CC: agent})
	f.Start()
	s.Run(dur)
	return f
}

func TestAgentReachesCapacity(t *testing.T) {
	cfg := DefaultConfig()
	agent := NewAgent(cfg, nil)
	f := runAgentOnLink(t, agent, 50e6, 0.040, netem.BDPBytes(50e6, 0.040), 15)
	rate := float64(f.DeliveredBytes) * 8 / 15
	if rate < 40e6 {
		t.Fatalf("agent reached %.1f Mbps of 50", rate/1e6)
	}
}

func TestAgentStartupEndsOnQueueing(t *testing.T) {
	cfg := DefaultConfig()
	agent := NewAgent(cfg, nil)
	if !agent.inStartup {
		t.Fatal("agent should begin in startup")
	}
	runAgentOnLink(t, agent, 50e6, 0.040, netem.BDPBytes(50e6, 0.040), 10)
	if agent.inStartup {
		t.Fatal("startup never exited on a saturated link")
	}
}

func TestAgentActionsRecorded(t *testing.T) {
	cfg := DefaultConfig()
	agent := NewAgent(cfg, nil)
	runAgentOnLink(t, agent, 50e6, 0.040, netem.BDPBytes(50e6, 0.040), 10)
	if agent.LastState == nil || len(agent.LastState) != cfg.StateDim() {
		t.Fatalf("LastState %v", agent.LastState)
	}
	if agent.LastAction < -1 || agent.LastAction > 1 {
		t.Fatalf("LastAction %v", agent.LastAction)
	}
}

func TestAgentActionOverride(t *testing.T) {
	cfg := DefaultConfig()
	agent := NewAgent(cfg, nil)
	agent.DrainPeriod = 0 // isolate the override
	calls := 0
	agent.ActionOverride = func(state []float64, a float64) float64 {
		calls++
		return -1
	}
	f := runAgentOnLink(t, agent, 50e6, 0.040, netem.BDPBytes(50e6, 0.040), 10)
	if calls == 0 {
		t.Fatal("override never invoked")
	}
	// Forced backoff must keep the window pinned near the floor.
	if f.Cwnd() > 20 {
		t.Fatalf("cwnd %v despite constant -1 actions", f.Cwnd())
	}
}

func TestAgentDrainWindowsReduceThenRestore(t *testing.T) {
	cfg := DefaultConfig()
	agent := NewAgent(cfg, nil)
	agent.DrainPeriod = 10
	agent.DrainLen = 2
	agent.drainOffset = 0

	var cwnds []float64
	agent.OnMTPState = func(f *transport.Flow, st transport.MTPStats, ls LocalState) {
		cwnds = append(cwnds, f.Cwnd())
	}
	runAgentOnLink(t, agent, 50e6, 0.040, netem.BDPBytes(50e6, 0.040), 20)
	// Look for periodic dips: min cwnd in steady state clearly below the max.
	if len(cwnds) < 100 {
		t.Fatalf("only %d MTPs", len(cwnds))
	}
	tail := cwnds[len(cwnds)-60:]
	lo, hi := tail[0], tail[0]
	for _, w := range tail {
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	if lo > hi*0.9 {
		t.Fatalf("no drain dips visible: cwnd range [%.1f, %.1f]", lo, hi)
	}
}

func TestServedAgentMatchesDirectAgent(t *testing.T) {
	cfg := DefaultConfig()
	svc := NewService(cfg, nil)
	svc.BatchWindow = 0 // synchronous inside the single-threaded simulator

	direct := NewAgent(cfg, nil)
	served := NewServedAgent(cfg, svc)
	// Equalize the drain offsets (they are assigned per-instance).
	served.drainOffset = direct.drainOffset

	fd := runAgentOnLink(t, direct, 50e6, 0.040, netem.BDPBytes(50e6, 0.040), 10)
	fs := runAgentOnLink(t, served, 50e6, 0.040, netem.BDPBytes(50e6, 0.040), 10)
	if fd.DeliveredBytes != fs.DeliveredBytes {
		t.Fatalf("served agent diverged: %d vs %d bytes", fs.DeliveredBytes, fd.DeliveredBytes)
	}
	if svc.Requests == 0 {
		t.Fatal("service was never consulted")
	}
}

func TestAgentLossEndsStartupAndHalves(t *testing.T) {
	cfg := DefaultConfig()
	agent := NewAgent(cfg, nil)
	// Tiny buffer: slow start overshoots and must react to the loss.
	f := runAgentOnLink(t, agent, 20e6, 0.040, 3*transport.MSS, 5)
	if agent.inStartup {
		t.Fatal("loss did not end startup")
	}
	if f.LostPackets == 0 {
		t.Fatal("expected losses on a 3-packet buffer")
	}
}
