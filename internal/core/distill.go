package core

import (
	"math/rand"

	"repro/internal/nn"
)

// DistillOptions controls supervised distillation of the reference policy
// into an actor network.
type DistillOptions struct {
	Samples int // training set size
	Epochs  int
	Batch   int
	LR      float64
	Hidden  []int
	Seed    int64
	// Reward names the RewardStrategy the distilled policy should serve
	// (see NewRewardStrategy; empty = paper default). The strategy selects
	// the reference policy's Delta via DistillDelta — the policy-side
	// fairness control surface — so a maxmin- or α-distilled actor holds a
	// tighter per-flow queue and an aurora-distilled one a looser, mirroring
	// what RL training under that objective converges to. The default is
	// bit-identical to the pre-strategy distillation (digest-pinned by the
	// fig18 golden test).
	Reward string
}

// DefaultDistillOptions returns settings that reach small imitation error
// in a few seconds of CPU time.
func DefaultDistillOptions() DistillOptions {
	return DistillOptions{
		Samples: 20000, Epochs: 30, Batch: 64, LR: 0.003,
		Hidden: []int{256, 128, 64}, Seed: 1,
	}
}

// sampleState draws a plausible stacked state vector from the training
// distribution of Table 3 (bandwidth 40–160 Mbps, RTT 10–140 ms, buffers
// 0.1–16 BDP), with the per-frame features correlated the way the
// transport produces them.
func sampleState(cfg Config, rng *rand.Rand) []float64 {
	maxTput := (40 + 120*rng.Float64()) * 1e6
	minLat := 0.010 + 0.130*rng.Float64()
	out := make([]float64, 0, cfg.StateDim())
	// One trajectory point perturbed slightly per history frame.
	latRatio := 1 + rng.Float64()*rng.Float64()*4 // skew toward small queues
	tputRatio := rng.Float64()
	relCwnd := tputRatio * latRatio * (0.5 + rng.Float64())
	loss := 0.0
	if rng.Float64() < 0.15 {
		loss = rng.Float64() * 0.3
	}
	for w := 0; w < cfg.HistoryLen; w++ {
		jitter := func(v, amp float64) float64 { return v * (1 + amp*(rng.Float64()-0.5)) }
		ls := LocalState{
			TputRatio:     clamp01(jitter(tputRatio, 0.1)),
			MaxTput:       maxTput / cfg.TputScale,
			LatRatio:      1 + (latRatio-1)*jitter(1, 0.2),
			MinLat:        minLat / cfg.LatScale,
			RelCwnd:       jitter(relCwnd, 0.1),
			LossRatio:     loss,
			InflightRatio: 0.8 + 0.2*rng.Float64(),
			PacingRatio:   clamp01(jitter(tputRatio, 0.2)),
		}
		out = append(out, ls.Vector()...)
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// DistillPolicy fits an MLP actor to the reference policy by supervised
// regression over states drawn from the Table 3 training distribution. It
// returns the network and its final mean-squared imitation error.
func DistillPolicy(cfg Config, opts DistillOptions) (*nn.MLP, float64) {
	rng := rand.New(rand.NewSource(opts.Seed))
	ref := NewReferencePolicy(cfg)
	// Strategy-aware target: tune the reference control law's
	// aggressiveness to the objective this actor will serve. The paper
	// strategy maps to the unchanged default Delta.
	ref.SetDelta(DistillDelta(MustRewardStrategy(opts.Reward), ref.Delta))

	sizes := append([]int{cfg.StateDim()}, opts.Hidden...)
	sizes = append(sizes, 1)
	net := nn.NewMLP(rng, nn.ReLU, nn.Tanh, sizes...)
	opt := nn.NewAdam(opts.LR)

	states := make([][]float64, opts.Samples)
	targets := make([]float64, opts.Samples)
	for i := range states {
		states[i] = sampleState(cfg, rng)
		// Distill the default-mode control law; the competitive-mode
		// escalation is deployment-side state the network does not carry.
		targets[i] = ref.actionWithDelta(states[i], ref.Delta)
	}

	var lastLoss float64
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		perm := rng.Perm(opts.Samples)
		var loss float64
		for b := 0; b < opts.Samples; b += opts.Batch {
			end := b + opts.Batch
			if end > opts.Samples {
				end = opts.Samples
			}
			for _, idx := range perm[b:end] {
				out := net.Forward(states[idx])
				d := out[0] - targets[idx]
				loss += 0.5 * d * d
				net.Backward([]float64{d})
			}
			opt.Step(net, float64(end-b))
		}
		lastLoss = loss / float64(opts.Samples)
	}
	return net, lastLoss
}
