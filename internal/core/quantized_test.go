package core

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/nn"
)

// testActor builds a small random actor with the serving shape for cfg.
func testActor(t *testing.T, cfg Config, seed int64) *MLPPolicy {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return &MLPPolicy{Net: nn.NewMLP(rng, nn.ReLU, nn.Tanh, cfg.StateDim(), 64, 32, 1)}
}

// TestQuantizedPolicyMatchesFloat pins open-loop action agreement between a
// float actor and its compiled form across the calibration distribution —
// the per-decision half of the equivalence story (internal/check covers the
// closed loop).
func TestQuantizedPolicyMatchesFloat(t *testing.T) {
	cfg := DefaultConfig()
	fp := testActor(t, cfg, 1)
	qp, err := QuantizeMLPPolicy(fp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	var worst float64
	for i := 0; i < 2000; i++ {
		s := sampleState(cfg, rng)
		d := math.Abs(qp.Action(s) - fp.Action(s))
		if d > worst {
			worst = d
		}
	}
	t.Logf("worst |Δaction| over 2000 sampled states: %.5f", worst)
	if worst > 0.02 {
		t.Fatalf("quantized policy diverges from float oracle by %.5f (> 0.02)", worst)
	}
}

// TestQuantizeIsDeterministic: same weights + config must compile to a
// byte-identical artifact, so redeploying a policy never produces a
// different blob hash.
func TestQuantizeIsDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	fp := testActor(t, cfg, 2)
	a, err := QuantizeMLPPolicy(fp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := QuantizeMLPPolicy(&MLPPolicy{Net: fp.Net.Clone()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Q.QuantizedBlob()) != string(b.Q.QuantizedBlob()) {
		t.Fatal("quantizing the same network twice produced different blobs")
	}
}

// TestQuantizedPolicySaveLoadBitwise round-trips the blob through disk and
// requires bitwise-identical actions (the pipeline is pure integer).
func TestQuantizedPolicySaveLoadBitwise(t *testing.T) {
	cfg := DefaultConfig()
	qp, err := QuantizeMLPPolicy(testActor(t, cfg, 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "actor.aqp")
	if err := SaveQuantizedPolicy(path, qp); err != nil {
		t.Fatal(err)
	}
	back, err := LoadQuantizedPolicy(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		s := sampleState(cfg, rng)
		if a, b := qp.Action(s), back.Action(s); a != b {
			t.Fatalf("loaded policy diverges bitwise: %v vs %v", b, a)
		}
	}
}

// TestQuantizedPolicyActionZeroAllocs pins the serving hot path.
func TestQuantizedPolicyActionZeroAllocs(t *testing.T) {
	cfg := DefaultConfig()
	qp, err := QuantizeMLPPolicy(testActor(t, cfg, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sampleState(cfg, rand.New(rand.NewSource(6)))
	if n := testing.AllocsPerRun(100, func() { qp.Action(s) }); n != 0 {
		t.Fatalf("Action allocates %.1f times per op, want 0", n)
	}
}

// TestQuantizedPolicyCloneConcurrent: clones must evaluate independently
// and identically — the property sharded serving relies on. Run under
// -race this also proves the shared compiled arrays are read-only.
func TestQuantizedPolicyCloneConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	qp, err := QuantizeMLPPolicy(testActor(t, cfg, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	states := make([][]float64, 64)
	rng := rand.New(rand.NewSource(8))
	want := make([]float64, len(states))
	for i := range states {
		states[i] = sampleState(cfg, rng)
		want[i] = qp.Action(states[i])
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		c := ClonePolicy(qp)
		if c == Policy(qp) {
			t.Fatal("ClonePolicy returned the original instance")
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, s := range states {
				if got := c.Action(s); got != want[i] {
					t.Errorf("clone diverges on state %d: %v vs %v", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestLoaderValidationParity is the bugfix regression: LoadPolicy and the
// quantized loader must reject a dimension-mismatched artifact with the
// IDENTICAL error text (modulo the artifact path), because they share
// validatePolicyShape. A drift here means an operator debugging a
// mis-deployed policy sees two different stories for one mistake.
func TestLoaderValidationParity(t *testing.T) {
	cfg := DefaultConfig()
	for name, shape := range map[string][]int{
		"wrong input width":  {cfg.StateDim() + 8, 16, 1},
		"wrong output arity": {cfg.StateDim(), 16, 2},
	} {
		rng := rand.New(rand.NewSource(9))
		net := nn.NewMLP(rng, nn.ReLU, nn.Tanh, shape...)

		dirF, dirQ := t.TempDir(), t.TempDir()
		pathF := filepath.Join(dirF, "actor")
		pathQ := filepath.Join(dirQ, "actor")
		if err := SavePolicy(pathF, net); err != nil {
			t.Fatal(err)
		}
		qm, err := nn.Quantize(net, nn.QuantizeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(pathQ, qm.QuantizedBlob(), 0o644); err != nil {
			t.Fatal(err)
		}

		_, errF := LoadPolicy(pathF, cfg)
		_, errQ := LoadQuantizedPolicy(pathQ, cfg)
		if errF == nil || errQ == nil {
			t.Fatalf("%s: float err %v, quantized err %v; want both non-nil", name, errF, errQ)
		}
		msgF := strings.ReplaceAll(errF.Error(), pathF, "PATH")
		msgQ := strings.ReplaceAll(errQ.Error(), pathQ, "PATH")
		if msgF != msgQ {
			t.Errorf("%s: loaders disagree on the error:\n  float:     %s\n  quantized: %s", name, msgF, msgQ)
		}
	}
}

// TestLoadServingPolicySniffsFormat covers the deployment entry point: blob
// → quantized, JSON + quantize → compiled on the spot, JSON + float flag →
// float oracle, garbage → error.
func TestLoadServingPolicySniffsFormat(t *testing.T) {
	cfg := DefaultConfig()
	fp := testActor(t, cfg, 10)
	dir := t.TempDir()

	jsonPath := filepath.Join(dir, "actor.json")
	if err := SavePolicy(jsonPath, fp.Net); err != nil {
		t.Fatal(err)
	}
	qp, err := QuantizeMLPPolicy(fp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	blobPath := filepath.Join(dir, "actor.aqp")
	if err := SaveQuantizedPolicy(blobPath, qp); err != nil {
		t.Fatal(err)
	}

	p, err := LoadServingPolicy(blobPath, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*QuantizedPolicy); !ok {
		t.Fatalf("blob loaded as %T, want *QuantizedPolicy", p)
	}
	p, err = LoadServingPolicy(jsonPath, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, ok := p.(*QuantizedPolicy)
	if !ok {
		t.Fatalf("JSON + quantize loaded as %T, want *QuantizedPolicy", p)
	}
	p, err = LoadServingPolicy(jsonPath, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*MLPPolicy); !ok {
		t.Fatalf("JSON + float loaded as %T, want *MLPPolicy", p)
	}

	// Quantize-on-load must equal the precompiled artifact bitwise
	// (deterministic compilation), so both deployment styles serve the
	// same actions.
	rng := rand.New(rand.NewSource(11))
	pre, err := LoadQuantizedPolicy(blobPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s := sampleState(cfg, rng)
		if a, b := pre.Action(s), fromJSON.Action(s); a != b {
			t.Fatalf("precompiled and quantize-on-load disagree: %v vs %v", b, a)
		}
	}

	badPath := filepath.Join(dir, "garbage")
	if err := os.WriteFile(badPath, []byte("not a policy"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadServingPolicy(badPath, cfg, true); err == nil {
		t.Fatal("garbage artifact accepted")
	}
}
