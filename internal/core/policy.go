package core

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"repro/internal/ckpt"
	"repro/internal/nn"
)

// Policy maps the stacked state vector (w × 8 features, newest frame first)
// to an action in [-1, 1].
type Policy interface {
	Action(state []float64) float64
}

// PolicyCloner is implemented by policies that can produce an independent
// instance of themselves. Policies keep internal scratch or detector state
// and serialize Action calls behind a service's evalMu; a sharded server
// runs N evaluators concurrently, so each shard needs its own instance.
type PolicyCloner interface {
	ClonePolicy() Policy
}

// ClonePolicy returns an independent instance of p when it implements
// PolicyCloner, and p itself otherwise. A policy without ClonePolicy that
// is shared across shards must be safe for concurrent Action calls.
func ClonePolicy(p Policy) Policy {
	if c, ok := p.(PolicyCloner); ok {
		return c.ClonePolicy()
	}
	return p
}

// MLPPolicy wraps a trained actor network.
type MLPPolicy struct {
	Net *nn.MLP
}

// ClonePolicy implements PolicyCloner: the weights are deep-copied and the
// clone gets its own forward-pass scratch (nn.MLP is not goroutine-safe).
func (p *MLPPolicy) ClonePolicy() Policy {
	return &MLPPolicy{Net: p.Net.Clone()}
}

// Action implements Policy.
func (p *MLPPolicy) Action(state []float64) float64 {
	out := p.Net.Forward(state)
	a := out[0]
	if a > 1 {
		a = 1
	}
	if a < -1 {
		a = -1
	}
	return a
}

// SavePolicy serializes an actor network to path as JSON weights. The file
// is written atomically (temp file + fsync + rename), so a crash mid-save
// leaves the previous weights rather than a truncated JSON that LoadPolicy
// would later reject.
func SavePolicy(path string, net *nn.MLP) error {
	data, err := json.MarshalIndent(net, "", " ")
	if err != nil {
		return fmt.Errorf("core: marshal policy: %w", err)
	}
	return ckpt.WriteAtomic(path, data, 0o644)
}

// validatePolicyShape checks a loaded actor's I/O widths against cfg. It is
// the single source of truth for dimension validation — LoadPolicy and the
// quantized loaders all reject a mismatched artifact with the identical
// error, so operators see one message regardless of which format was
// mis-deployed.
func validatePolicyShape(path string, inDim, outDim int, cfg Config) error {
	if want := cfg.StateDim(); inDim != want {
		return fmt.Errorf("core: policy %s expects %d-wide states, config produces %d (HistoryLen %d × %d features)",
			path, inDim, want, cfg.HistoryLen, LocalFeatureDim)
	}
	if outDim != 1 {
		return fmt.Errorf("core: policy %s emits %d outputs, want 1 action", path, outDim)
	}
	return nil
}

// parsePolicyWeights decodes JSON actor weights and validates them against
// cfg; path is used only in error messages.
func parsePolicyWeights(data []byte, path string, cfg Config) (*MLPPolicy, error) {
	var net nn.MLP
	if err := json.Unmarshal(data, &net); err != nil {
		return nil, fmt.Errorf("core: parse policy %s: %w", path, err)
	}
	if err := validatePolicyShape(path, net.InDim(), net.OutDim(), cfg); err != nil {
		return nil, err
	}
	return &MLPPolicy{Net: &net}, nil
}

// LoadPolicy reads JSON weights saved by SavePolicy and validates the
// network against cfg: an actor whose input width does not match
// cfg.StateDim(), or that does not emit exactly one action, is rejected
// with a clear error instead of panicking at its first Forward.
func LoadPolicy(path string, cfg Config) (*MLPPolicy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parsePolicyWeights(data, path, cfg)
}

// ReferencePolicy is the distilled rendering of the converged Astraea
// policy, encoding the structure §5.5 reports for the learned model: the
// action decreases monotonically with observed queueing delay, and each
// throughput level has a delay equilibrium (action = 0), so that competing
// flows — which share one queueing delay — are driven to equal rates. The
// closed-loop law targets the rate at which the flow's share of queueing
// delay matches Delta-scaled fairness, a Copa-style inverse-delay target
// that the reward of Eq. 8 makes optimal: it maximizes throughput while
// keeping the queue below the latency-tolerance knee and equalizing rates.
//
// In deployment the distilled policy is interchangeable with a trained
// MLPPolicy (DistillPolicy fits the network to it); experiments default to
// it for determinism.
type ReferencePolicy struct {
	Cfg Config
	// Delta is the inverse-delay aggressiveness: the equilibrium standing
	// queue with n flows on capacity C is n·MSS·8/(Delta·C) seconds.
	Delta float64
	// MinDelta floors the competitive-mode escalation below.
	MinDelta float64
	// Gain converts relative cwnd error into action.
	Gain float64
	// LossBackoff is the loss ratio above which the policy forces a = -1
	// (congestive collapse guard; random loss below it is ignored, keeping
	// the policy loss-resilient like the trained model).
	LossBackoff float64
	// ModeWindow is how many decisions the competitive-mode detector
	// observes before re-evaluating (it must exceed the agent's drain
	// period so Astraea's own drains register as queue-drain evidence).
	ModeWindow int

	// Competitive-tolerance state: pure delay-targeting starves against
	// buffer-filling competitors (Cubic, BBR), so — like Copa's competitive
	// mode and like the behaviour §5.3.1 reports for the trained model
	// ("more tolerance to latency inflation when occupying low bandwidth")
	// — the policy scales its delta down as the *never-drains floor* of
	// the queueing delay rises: each detector window records the minimum
	// latency ratio observed, and delta_eff = Delta / (1 + Tolerance *
	// (floor - drainedRatio)). The response is deliberately continuous: a
	// binary mode switch flips asymmetrically between identical flows
	// sitting near the threshold and wrecks fairness, whereas the floor is
	// a shared observable (one bottleneck queue), so identical flows derive
	// nearly identical deltas and intra-Astraea fairness is preserved at
	// every operating point.
	curDelta    float64
	minLatRatio float64
	seen        int
	// Tolerance is the slope of the delta reduction per unit of persistent
	// latency-ratio excess.
	Tolerance float64
}

// NewReferencePolicy returns the tuned reference policy.
func NewReferencePolicy(cfg Config) *ReferencePolicy {
	return &ReferencePolicy{
		Cfg: cfg, Delta: 0.08, MinDelta: 0.027, Gain: 4, LossBackoff: 0.08,
		ModeWindow: 80, Tolerance: 6,
		curDelta: 0.08, minLatRatio: math.Inf(1),
	}
}

// ClonePolicy implements PolicyCloner: tuning parameters are copied and the
// competitive-mode detector starts fresh (each shard observes its own
// request stream, so detector state is per-shard by construction).
func (rp *ReferencePolicy) ClonePolicy() Policy {
	c := *rp
	c.curDelta = rp.Delta
	c.seen = 0
	c.minLatRatio = math.Inf(1)
	return &c
}

// SetDelta changes the default aggressiveness (and resets the current
// mode), for sensitivity experiments.
func (rp *ReferencePolicy) SetDelta(d float64) {
	rp.Delta = d
	rp.curDelta = d
}

// observeMode updates the competitive-tolerance detector with one
// decision's latency ratio.
func (rp *ReferencePolicy) observeMode(latRatio float64) {
	if latRatio < rp.minLatRatio {
		rp.minLatRatio = latRatio
	}
	rp.seen++
	if rp.seen < rp.ModeWindow {
		return
	}
	const drainedRatio = 1.15
	excess := rp.minLatRatio - drainedRatio
	if excess < 0 {
		excess = 0
	}
	rp.curDelta = math.Max(rp.Delta/(1+rp.Tolerance*excess), rp.MinDelta)
	rp.seen = 0
	rp.minLatRatio = math.Inf(1)
}

// Action implements Policy. It decodes the newest frame of the stacked
// feature vector (layout per LocalState.Vector) and advances the
// competitive-mode detector.
func (rp *ReferencePolicy) Action(state []float64) float64 {
	if len(state) >= LocalFeatureDim && state[2] > 0 {
		rp.observeMode(state[2])
	}
	delta := rp.curDelta
	if delta <= 0 {
		delta = rp.Delta
	}
	return rp.actionWithDelta(state, delta)
}

// FallbackAction is the pure (stateless) rendering of the control law at
// the default delta: no mode detector, no internal state, so it is safe to
// call from any number of goroutines concurrently. The serving layer
// (internal/serve) returns it in-band when a request misses its deadline or
// is shed at admission — a deterministic safe answer beats blocking a
// sender on a slow or overloaded model.
func (rp *ReferencePolicy) FallbackAction(state []float64) float64 {
	return rp.actionWithDelta(state, rp.Delta)
}

// actionWithDelta is the pure (stateless) control law at a fixed delta; the
// distillation pipeline trains the neural actor against it at the default
// delta.
func (rp *ReferencePolicy) actionWithDelta(state []float64, delta float64) float64 {
	if len(state) < LocalFeatureDim {
		return 0
	}
	tputRatio := state[0]
	maxTput := state[1] * rp.Cfg.TputScale // bits/sec
	latRatio := state[2]
	minLat := state[3] * rp.Cfg.LatScale // seconds
	relCwnd := state[4]
	lossRatio := state[5]

	if maxTput <= 1 || minLat <= 0 {
		// No signal yet: probe upward.
		return 1
	}
	// Congestive-loss guard: heavy loss relative to delivery forces backoff.
	if lossRatio > rp.LossBackoff*math.Max(tputRatio, 0.1) {
		return -1
	}

	lat := latRatio * minLat
	dq := lat - minLat
	// Floor the queueing delay at a small fraction of the base RTT so the
	// target stays finite on an empty queue (where the policy probes up).
	minDq := 0.002 * minLat
	if minDq < 50e-6 {
		minDq = 50e-6
	}
	if dq < minDq {
		dq = minDq
	}

	// Target rate: inverse to queueing delay (packets/sec → bits/sec).
	targetBps := 1500 * 8 / (delta * dq)
	// Convert to a relative-cwnd target: cwnd*/(thrmax·latmin) = target/thrmax
	// up to the srtt/latmin factor, which cancels in the ratio below when
	// queues are modest.
	targetRel := targetBps / maxTput * latRatio // cwnd ≈ rate · srtt
	cur := relCwnd
	if cur <= 0 {
		return 1
	}
	a := rp.Gain * (targetRel/cur - 1)
	if a > 1 {
		a = 1
	}
	if a < -1 {
		a = -1
	}
	return a
}

// EquilibriumQueueDelay returns the standing queueing delay at which n
// flows on capacity c (bits/sec) reach action = 0 — exposed for tests and
// the Fig. 17 interpretation experiment.
func (rp *ReferencePolicy) EquilibriumQueueDelay(n int, cBps float64) float64 {
	return float64(n) * 1500 * 8 / (rp.Delta * cBps)
}
