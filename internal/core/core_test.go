package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/transport"
)

func TestDefaultConfigMatchesTable4(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.HistoryLen != 5 {
		t.Errorf("w = %d, want 5", cfg.HistoryLen)
	}
	if cfg.Alpha != 0.025 {
		t.Errorf("alpha = %v, want 0.025", cfg.Alpha)
	}
	if cfg.MTP != 0.030 {
		t.Errorf("MTP = %v, want 30 ms", cfg.MTP)
	}
	if cfg.Gamma != 0.98 {
		t.Errorf("gamma = %v, want 0.98", cfg.Gamma)
	}
	if cfg.BatchSize != 192 {
		t.Errorf("batch = %v, want 192", cfg.BatchSize)
	}
	if cfg.C0 != 0.1 || cfg.C1 != 0.02 || cfg.C2 != 1 || cfg.C3 != 0.02 || cfg.C4 != 0.01 {
		t.Errorf("reward coefficients %v %v %v %v %v", cfg.C0, cfg.C1, cfg.C2, cfg.C3, cfg.C4)
	}
	if cfg.LearningRate != 0.001 {
		t.Errorf("lr = %v", cfg.LearningRate)
	}
	if cfg.ModelUpdateInterval != 5 || cfg.ModelUpdateSteps != 20 {
		t.Errorf("update schedule %v/%v", cfg.ModelUpdateInterval, cfg.ModelUpdateSteps)
	}
	if cfg.StateDim() != 40 {
		t.Errorf("state dim %d, want 40 (5×8)", cfg.StateDim())
	}
}

func TestActionToCwnd(t *testing.T) {
	// Eq. 3: symmetric multiplicative update.
	w := 100.0
	up := ActionToCwnd(w, 1, 0.025)
	if math.Abs(up-102.5) > 1e-9 {
		t.Fatalf("up action: %v, want 102.5", up)
	}
	down := ActionToCwnd(w, -1, 0.025)
	if math.Abs(down-100/1.025) > 1e-9 {
		t.Fatalf("down action: %v, want %v", down, 100/1.025)
	}
	if ActionToCwnd(w, 0, 0.025) != w {
		t.Fatal("zero action must not change cwnd")
	}
}

// Property: Eq. 3 is inverse-symmetric — a then -a returns to the start.
func TestActionToCwndSymmetry(t *testing.T) {
	f := func(a float64) bool {
		a = math.Mod(math.Abs(a), 1)
		w := 100.0
		w2 := ActionToCwnd(ActionToCwnd(w, a, 0.025), -a, 0.025)
		return math.Abs(w2-w) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalStateFromMTP(t *testing.T) {
	cfg := DefaultConfig()
	st := transport.MTPStats{
		Duration: 0.03, ThroughputBps: 50e6, MaxTputBps: 100e6,
		AvgRTT: 0.045, MinRTT: 0.030,
		CwndPkts: 125, InflightPkts: 100, PacingBps: 55e6,
		LostBytes: 1500 * 10,
	}
	ls := localStateFromMTP(cfg, st)
	if math.Abs(ls.TputRatio-0.5) > 1e-9 {
		t.Errorf("TputRatio %v", ls.TputRatio)
	}
	if math.Abs(ls.MaxTput-1.0) > 1e-9 {
		t.Errorf("MaxTput %v (scaled by 100 Mbps)", ls.MaxTput)
	}
	if math.Abs(ls.LatRatio-1.5) > 1e-9 {
		t.Errorf("LatRatio %v", ls.LatRatio)
	}
	if math.Abs(ls.MinLat-0.3) > 1e-9 {
		t.Errorf("MinLat %v (scaled by 100 ms)", ls.MinLat)
	}
	// RelCwnd = cwndBits / (maxTput × minLat) = 125*1500*8/(1e8*0.03) = 0.5
	if math.Abs(ls.RelCwnd-0.5) > 1e-9 {
		t.Errorf("RelCwnd %v", ls.RelCwnd)
	}
	if math.Abs(ls.InflightRatio-0.8) > 1e-9 {
		t.Errorf("InflightRatio %v", ls.InflightRatio)
	}
	if math.Abs(ls.PacingRatio-0.55) > 1e-9 {
		t.Errorf("PacingRatio %v", ls.PacingRatio)
	}
	// LossRatio = 10*1500*8/0.03 / 1e8 = 0.04
	if math.Abs(ls.LossRatio-0.04) > 1e-9 {
		t.Errorf("LossRatio %v", ls.LossRatio)
	}
	if len(ls.Vector()) != LocalFeatureDim {
		t.Fatalf("vector dim %d", len(ls.Vector()))
	}
}

func TestStateBlockStacking(t *testing.T) {
	cfg := DefaultConfig()
	sb := NewStateBlock(cfg)
	in := sb.Input()
	if len(in) != cfg.StateDim() {
		t.Fatalf("empty input dim %d", len(in))
	}
	for _, v := range in {
		if v != 0 {
			t.Fatal("empty history should zero-pad")
		}
	}
	for i := 0; i < 7; i++ {
		sb.Push(LocalState{TputRatio: float64(i)})
	}
	if len(sb.History()) != cfg.HistoryLen {
		t.Fatalf("history kept %d frames, want %d", len(sb.History()), cfg.HistoryLen)
	}
	in = sb.Input()
	// Newest first: frame 0 is the state pushed last (TputRatio 6).
	if in[0] != 6 {
		t.Fatalf("newest frame first: in[0] = %v, want 6", in[0])
	}
	if in[LocalFeatureDim] != 5 {
		t.Fatalf("second frame: %v, want 5", in[LocalFeatureDim])
	}
	if sb.Latest().TputRatio != 6 {
		t.Fatalf("Latest %v", sb.Latest().TputRatio)
	}
}

func TestGlobalStateVector(t *testing.T) {
	cfg := DefaultConfig()
	g := GlobalState{
		OvrTput: 90e6, MinTput: 40e6, MaxTput: 50e6,
		AvgLat: 0.045, MinCwnd: 100, MaxCwnd: 150, AvgCwnd: 125,
		LossRatio: 0.01, NumFlows: 2,
		BaseOWD: 0.015, BufBytes: 375000, Bandwidth: 100e6,
	}
	v := g.Vector(cfg)
	if len(v) != GlobalFeatureDim {
		t.Fatalf("global dim %d, want %d", len(v), GlobalFeatureDim)
	}
	if math.Abs(v[0]-0.9) > 1e-9 {
		t.Errorf("normalized overall throughput %v", v[0])
	}
	if math.Abs(v[3]-1.5) > 1e-9 {
		t.Errorf("normalized latency %v, want 1.5 (45ms/30ms RTT)", v[3])
	}
	if math.Abs(v[8]-0.2) > 1e-9 {
		t.Errorf("numFlows feature %v", v[8])
	}
	// Degenerate global state must not produce NaN/Inf.
	var zero GlobalState
	for i, x := range zero.Vector(cfg) {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("zero global state feature %d = %v", i, x)
		}
	}
}
