package core

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/nn"
)

// FuzzLoadPolicy exercises the full deployment-side loading path: arbitrary
// bytes land on disk as a weights file, and LoadPolicy either rejects them
// with an error or returns a policy whose Action runs without panicking and
// respects the clamp (never outside [-1, 1]; NaN can only arise from
// arithmetic overflow inside a successfully validated net, which the clamp
// cannot catch, so only the range is asserted).
func FuzzLoadPolicy(f *testing.F) {
	cfg := DefaultConfig()
	// A short history keeps the valid seed inputs small (a default-width
	// actor serializes to tens of kilobytes, which cripples mutation
	// throughput) while exercising the identical validation paths.
	cfg.HistoryLen = 1
	rng := rand.New(rand.NewSource(3))
	actor := nn.NewMLP(rng, nn.ReLU, nn.Tanh, cfg.StateDim(), 16, 1)
	if js, err := json.Marshal(actor); err == nil {
		f.Add(js)
	}
	wrongDim := nn.NewMLP(rng, nn.ReLU, nn.Tanh, cfg.StateDim()+1, 4, 1)
	if js, err := json.Marshal(wrongDim); err == nil {
		f.Add(js)
	}
	f.Add([]byte(`{"layers":[]}`))
	f.Add([]byte(`{"layers":[{"in":-1,"out":0,"act":"relu","w":[],"b":[]}]}`))
	f.Add([]byte("not json"))

	dir, err := os.MkdirTemp("", "fuzz-loadpolicy-*")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { os.RemoveAll(dir) })
	path := filepath.Join(dir, "policy.json")

	f.Fuzz(func(t *testing.T, data []byte) {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		p, err := LoadPolicy(path, cfg)
		if err != nil {
			return
		}
		state := make([]float64, cfg.StateDim())
		for i := range state {
			state[i] = float64(i%7) * 0.25
		}
		a := p.Action(state)
		if a < -1 || a > 1 {
			t.Fatalf("action %v escaped the [-1,1] clamp", a)
		}
	})
}
