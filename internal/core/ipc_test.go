package core

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestWireFormatRoundTrip(t *testing.T) {
	state := []float64{0.1, -2.5, math.Pi, 0}
	buf := encodeRequest(42, state)
	id, got, err := decodeRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 || len(got) != len(state) {
		t.Fatalf("id=%d len=%d", id, len(got))
	}
	for i := range state {
		if got[i] != state[i] {
			t.Fatalf("state[%d] = %v", i, got[i])
		}
	}
	rbuf := encodeResponse(42, -0.75)
	rid, action, err := decodeResponse(rbuf)
	if err != nil || rid != 42 || action != -0.75 {
		t.Fatalf("response round trip: %v %v %v", rid, action, err)
	}
}

func TestDecodeRequestRejectsMalformed(t *testing.T) {
	if _, _, err := decodeRequest([]byte{1, 2, 3}); err == nil {
		t.Fatal("short request accepted")
	}
	// Claims a huge dimension.
	buf := encodeRequest(1, make([]float64, 4))
	buf[8] = 0xFF
	buf[9] = 0xFF
	buf[10] = 0xFF
	buf[11] = 0x7F
	if _, _, err := decodeRequest(buf); err == nil {
		t.Fatal("oversized dim accepted")
	}
	// Truncated payload.
	buf2 := encodeRequest(1, make([]float64, 4))[:20]
	if _, _, err := decodeRequest(buf2); err == nil {
		t.Fatal("truncated request accepted")
	}
	if _, _, err := decodeResponse([]byte{1}); err == nil {
		t.Fatal("short response accepted")
	}
}

func TestServiceOverUDP(t *testing.T) {
	cfg := DefaultConfig()
	svc := NewService(cfg, constPolicy{0.5})
	svc.BatchWindow = time.Millisecond
	srv, err := ListenAndServe(svc, "udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := DialService("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	state := make([]float64, cfg.StateDim())
	got, err := client.Infer(state)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Fatalf("Infer over UDP = %v", got)
	}
}

func TestServiceOverUDPConcurrentClients(t *testing.T) {
	cfg := DefaultConfig()
	svc := NewService(cfg, constPolicy{0.25})
	svc.BatchWindow = 2 * time.Millisecond
	svc.MaxBatch = 64
	srv, err := ListenAndServe(svc, "udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 16
	const perClient = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := DialService("udp", srv.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			state := make([]float64, cfg.StateDim())
			for i := 0; i < perClient; i++ {
				v, err := cl.Infer(state)
				if err != nil {
					errs <- err
					return
				}
				if v != 0.25 {
					errs <- errValue(v)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// UDP responses carry no happens-before edge from the flush goroutine,
	// so read the counters through the service lock.
	requests, batches := svc.Stats()
	if requests != clients*perClient {
		t.Fatalf("service saw %d requests, want %d", requests, clients*perClient)
	}
	// Batching across clients must have occurred.
	if batches >= requests {
		t.Fatalf("no batching: %d batches for %d requests", batches, requests)
	}
}

type errValue float64

func (e errValue) Error() string { return "unexpected action value" }

func TestServiceOverUnixgram(t *testing.T) {
	dir := t.TempDir()
	sock := dir + "/astraea.sock"
	cfg := DefaultConfig()
	svc := NewService(cfg, constPolicy{-0.5})
	svc.BatchWindow = time.Millisecond
	srv, err := ListenAndServe(svc, "unixgram", sock)
	if err != nil {
		t.Skipf("unixgram unavailable: %v", err)
	}
	defer srv.Close()

	client, err := DialService("unixgram", sock)
	if err != nil {
		t.Skipf("unixgram dial: %v", err)
	}
	defer client.Close()
	got, err := client.Infer(make([]float64, cfg.StateDim()))
	if err != nil {
		t.Fatal(err)
	}
	if got != -0.5 {
		t.Fatalf("Infer over unixgram = %v", got)
	}
}
