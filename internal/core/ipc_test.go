package core

import (
	"errors"
	"math"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

func TestWireFormatRoundTrip(t *testing.T) {
	state := []float64{0.1, -2.5, math.Pi, 0}
	buf := EncodeRequest(42, state)
	id, got, err := DecodeRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 || len(got) != len(state) {
		t.Fatalf("id=%d len=%d", id, len(got))
	}
	for i := range state {
		if got[i] != state[i] {
			t.Fatalf("state[%d] = %v", i, got[i])
		}
	}
	rbuf := EncodeResponse(42, -0.75)
	rid, action, err := DecodeResponse(rbuf)
	if err != nil || rid != 42 || action != -0.75 {
		t.Fatalf("response round trip: %v %v %v", rid, action, err)
	}
	// Trailing bytes after the base response (the serve-layer trailer) must
	// be transparent.
	rid, action, err = DecodeResponse(append(rbuf, 1, 2, 3, 4, 5, 6, 7, 8))
	if err != nil || rid != 42 || action != -0.75 {
		t.Fatalf("response with trailer: %v %v %v", rid, action, err)
	}
}

func TestDecodeRequestRejectsMalformed(t *testing.T) {
	if _, _, err := DecodeRequest([]byte{1, 2, 3}); err == nil {
		t.Fatal("short request accepted")
	}
	// Claims a huge dimension.
	buf := EncodeRequest(1, make([]float64, 4))
	buf[8] = 0xFF
	buf[9] = 0xFF
	buf[10] = 0xFF
	buf[11] = 0x7F
	if _, _, err := DecodeRequest(buf); err == nil {
		t.Fatal("oversized dim accepted")
	}
	// Truncated payload.
	buf2 := EncodeRequest(1, make([]float64, 4))[:20]
	if _, _, err := DecodeRequest(buf2); err == nil {
		t.Fatal("truncated request accepted")
	}
	if _, _, err := DecodeResponse([]byte{1}); err == nil {
		t.Fatal("short response accepted")
	}
}

func TestServiceOverUDP(t *testing.T) {
	cfg := DefaultConfig()
	svc := NewService(cfg, constPolicy{0.5})
	svc.BatchWindow = time.Millisecond
	srv, err := ListenAndServe(svc, "udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := DialService("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	state := make([]float64, cfg.StateDim())
	got, err := client.Infer(state)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Fatalf("Infer over UDP = %v", got)
	}
}

// runConcurrentClients drives the server at addr with several concurrent
// clients and verifies every response value.
func runConcurrentClients(t *testing.T, network, addr string, want float64, clients, perClient int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := DialService(network, addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			state := make([]float64, DefaultConfig().StateDim())
			for i := 0; i < perClient; i++ {
				v, err := cl.Infer(state)
				if err != nil {
					errs <- err
					return
				}
				if v != want {
					errs <- errValue(v)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServiceOverUDPConcurrentClients(t *testing.T) {
	cfg := DefaultConfig()
	svc := NewService(cfg, constPolicy{0.25})
	svc.BatchWindow = 2 * time.Millisecond
	svc.MaxBatch = 64
	srv, err := ListenAndServe(svc, "udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 16
	const perClient = 8
	runConcurrentClients(t, "udp", srv.Addr().String(), 0.25, clients, perClient)
	// UDP responses carry no happens-before edge from the flush goroutine,
	// so read the counters through the service lock.
	requests, batches := svc.Stats()
	if requests != clients*perClient {
		t.Fatalf("service saw %d requests, want %d", requests, clients*perClient)
	}
	// Batching across clients must have occurred.
	if batches >= requests {
		t.Fatalf("no batching: %d batches for %d requests", batches, requests)
	}
}

type errValue float64

func (e errValue) Error() string { return "unexpected action value" }

func TestServiceOverUnixgram(t *testing.T) {
	dir := t.TempDir()
	sock := dir + "/astraea.sock"
	cfg := DefaultConfig()
	svc := NewService(cfg, constPolicy{-0.5})
	svc.BatchWindow = time.Millisecond
	srv, err := ListenAndServe(svc, "unixgram", sock)
	if err != nil {
		t.Skipf("unixgram unavailable: %v", err)
	}
	defer srv.Close()

	client, err := DialService("unixgram", sock)
	if err != nil {
		t.Skipf("unixgram dial: %v", err)
	}
	defer client.Close()
	got, err := client.Infer(make([]float64, cfg.StateDim()))
	if err != nil {
		t.Fatal(err)
	}
	if got != -0.5 {
		t.Fatalf("Infer over unixgram = %v", got)
	}
}

func TestServiceOverUnixgramConcurrentClients(t *testing.T) {
	dir := t.TempDir()
	sock := dir + "/astraea.sock"
	svc := NewService(DefaultConfig(), constPolicy{0.75})
	svc.BatchWindow = 2 * time.Millisecond
	srv, err := ListenAndServe(svc, "unixgram", sock)
	if err != nil {
		t.Skipf("unixgram unavailable: %v", err)
	}
	defer srv.Close()
	runConcurrentClients(t, "unixgram", sock, 0.75, 8, 8)
}

func TestUnixgramClientSocketCleanup(t *testing.T) {
	dir := t.TempDir()
	sock := dir + "/astraea.sock"
	svc := NewService(DefaultConfig(), constPolicy{0})
	svc.BatchWindow = time.Millisecond
	srv, err := ListenAndServe(svc, "unixgram", sock)
	if err != nil {
		t.Skipf("unixgram unavailable: %v", err)
	}
	defer srv.Close()

	client, err := DialService("unixgram", sock)
	if err != nil {
		t.Skipf("unixgram dial: %v", err)
	}
	if _, err := os.Stat(client.localPath); err != nil {
		t.Fatalf("client socket file missing while open: %v", err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(client.localPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("client socket file not removed on Close: %v", err)
	}
}

// TestClientInferTimeout is the regression test for the lost-datagram hang:
// a server that never answers must produce ErrInferTimeout, not a caller
// parked forever.
func TestClientInferTimeout(t *testing.T) {
	// A bound UDP socket that reads nothing: every request datagram is
	// accepted by the kernel and never answered.
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	client, err := DialService("udp", sink.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Timeout = 50 * time.Millisecond

	start := time.Now()
	_, err = client.Infer(make([]float64, 4))
	if !errors.Is(err, ErrInferTimeout) {
		t.Fatalf("err = %v, want ErrInferTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

// TestClientCloseFailsOutstanding: closing the connection with a call in
// flight must surface ErrClientClosed — the old behaviour returned (0, nil),
// indistinguishable from a real action.
func TestClientCloseFailsOutstanding(t *testing.T) {
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	client, err := DialService("udp", sink.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	client.Timeout = 0 // wait forever: only the close may release the call

	res := make(chan error, 1)
	go func() {
		_, err := client.Infer(make([]float64, 4))
		res <- err
	}()
	// Let the request get written and the reader parked.
	time.Sleep(20 * time.Millisecond)
	client.Close()
	select {
	case err := <-res:
		if !errors.Is(err, ErrClientClosed) {
			t.Fatalf("err = %v, want ErrClientClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Infer still blocked after Close")
	}
}

// slowPolicy stalls every Action call, simulating an expensive model.
type slowPolicy struct {
	delay time.Duration
	v     float64
}

func (p slowPolicy) Action([]float64) float64 {
	time.Sleep(p.delay)
	return p.v
}

// TestServerShedsWhenPoolSaturated floods a 1-worker/1-slot server and
// checks the overflow is counted as drops rather than spawning goroutines.
func TestServerShedsWhenPoolSaturated(t *testing.T) {
	svc := NewService(DefaultConfig(), slowPolicy{delay: 20 * time.Millisecond})
	svc.BatchWindow = time.Millisecond
	srv, err := ListenAndServeWith(svc, "udp", "127.0.0.1:0", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := EncodeRequest(1, make([]float64, 4))
	for i := 0; i < 200; i++ {
		if _, err := conn.Write(req); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Dropped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no drops recorded under flood")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerSurvivesMalformedDatagrams sends oversized-dim and truncated
// frames and then verifies the server still answers a valid request.
func TestServerSurvivesMalformedDatagrams(t *testing.T) {
	cfg := DefaultConfig()
	svc := NewService(cfg, constPolicy{0.5})
	svc.BatchWindow = time.Millisecond
	srv, err := ListenAndServe(svc, "udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	raw, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Oversized declared dimension.
	over := EncodeRequest(7, make([]float64, 4))
	over[8], over[9], over[10], over[11] = 0xFF, 0xFF, 0xFF, 0x7F
	// Truncated payload, and pure garbage.
	trunc := EncodeRequest(8, make([]float64, 8))[:24]
	for _, b := range [][]byte{over, trunc, {1, 2}, {}} {
		if len(b) == 0 {
			continue // zero-length UDP writes are valid but pointless here
		}
		if _, err := raw.Write(b); err != nil {
			t.Fatal(err)
		}
	}

	client, err := DialService("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Timeout = 2 * time.Second
	got, err := client.Infer(make([]float64, cfg.StateDim()))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Fatalf("Infer after malformed flood = %v", got)
	}
}

// TestServerCloseWithRequestsInFlight closes the server while a slow policy
// still holds requests; Close must not hang or panic, and the abandoned
// client call must time out cleanly.
func TestServerCloseWithRequestsInFlight(t *testing.T) {
	svc := NewService(DefaultConfig(), slowPolicy{delay: 100 * time.Millisecond, v: 0.5})
	svc.BatchWindow = time.Millisecond
	srv, err := ListenAndServe(svc, "udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	client, err := DialService("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Timeout = 500 * time.Millisecond

	res := make(chan error, 1)
	go func() {
		_, err := client.Infer(make([]float64, 4))
		res <- err
	}()
	time.Sleep(20 * time.Millisecond) // request reaches the worker pool

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("server Close hung with requests in flight")
	}
	select {
	case err := <-res:
		// Either the reply raced out before the socket died (nil) or the
		// reply was lost and the client timed out; both are datagram-legal.
		if err != nil && !errors.Is(err, ErrInferTimeout) && !errors.Is(err, ErrClientClosed) {
			t.Fatalf("unexpected client error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client call never completed after server close")
	}
}
