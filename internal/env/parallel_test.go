package env

import (
	"testing"

	"repro/internal/core"
)

func TestParallelLearnerCollectsAndTrains(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel training loop")
	}
	cfg := core.DefaultConfig()
	cfg.BatchSize = 64
	dist := DefaultTrainingDistribution()
	dist.MaxFlows = 2
	dist.EpisodeDuration = 6

	p := NewParallelLearner(cfg, dist, 1, 3)
	p.Trainer.Cfg.Batch = 64
	hist := p.Train(6)
	if len(hist) != 6 {
		t.Fatalf("history %d entries, want 6", len(hist))
	}
	if p.Replay.Len() == 0 {
		t.Fatal("no experience gathered")
	}
	if p.Trainer.LastCriticLoss == 0 {
		t.Fatal("no updates ran")
	}
	// The deployed policy must produce bounded actions.
	pol := p.Policy()
	a := pol.Action(make([]float64, cfg.StateDim()))
	if a < -1 || a > 1 {
		t.Fatalf("policy action %v", a)
	}
}

func TestParallelLearnerSingleWorkerFloor(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.BatchSize = 32
	dist := DefaultTrainingDistribution()
	dist.MaxFlows = 2
	dist.EpisodeDuration = 4
	p := NewParallelLearner(cfg, dist, 2, 0) // clamps to 1 worker
	if p.Workers != 1 {
		t.Fatalf("workers %d", p.Workers)
	}
	hist := p.Train(2)
	if len(hist) != 2 {
		t.Fatalf("history %v", hist)
	}
}
