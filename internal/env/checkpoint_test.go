package env

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/rl"
	"repro/internal/rng"
)

// tinyLearner builds a learner small enough to train real episodes in test
// time while still exercising every piece of checkpointed state: episodes
// run long enough for update rounds, the batch is small enough that the
// replay fills within one episode, and PolicyDelay makes the delayed-actor
// schedule observable across the checkpoint boundary.
func tinyLearner(seed int64) *Learner {
	cfg := core.DefaultConfig()
	cfg.BatchSize = 48
	cfg.ModelUpdateInterval = 2
	cfg.ModelUpdateSteps = 4
	rlCfg := rl.DefaultConfig(cfg.StateDim(), core.GlobalFeatureDim, 1)
	rlCfg.Gamma = cfg.Gamma
	rlCfg.ActorLR = cfg.LearningRate
	rlCfg.CriticLR = cfg.LearningRate
	rlCfg.Batch = cfg.BatchSize
	rlCfg.Hidden = []int{16, 12}
	dist := DefaultTrainingDistribution()
	dist.MinFlows, dist.MaxFlows = 2, 2
	dist.EpisodeDuration = 4
	return &Learner{
		Cfg:     cfg,
		Dist:    dist,
		Trainer: rl.NewTrainer(rlCfg, rng.Fold(seed, streamTrainer)),
		Replay:  rl.NewReplayBuffer(4000),
		rng:     rng.New(rng.Fold(seed, streamEpisode)),
	}
}

func actorBits(l *Learner) []uint64 {
	var bits []uint64
	for _, layer := range l.Trainer.Actor.Layers {
		for _, w := range layer.W {
			bits = append(bits, math.Float64bits(w))
		}
		for _, b := range layer.B {
			bits = append(bits, math.Float64bits(b))
		}
	}
	return bits
}

// The tentpole guarantee: training N episodes, checkpointing, restoring
// into a fresh learner (standing in for a fresh process — the checkpoint
// file is the only carried-over state), and training N more yields actor
// weights bitwise-identical to an uninterrupted 2N-episode run.
func TestResumeDeterminismBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real episodes")
	}
	const n = 2
	path := filepath.Join(t.TempDir(), "train.ckpt")

	interrupted := tinyLearner(7)
	interrupted.Train(n)
	if err := interrupted.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	resumed, err := LoadLearner(path)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Episodes != n {
		t.Fatalf("resumed at episode %d, want %d", resumed.Episodes, n)
	}
	resumed.Train(n)

	uninterrupted := tinyLearner(7)
	uninterrupted.Train(2 * n)

	got, want := actorBits(resumed), actorBits(uninterrupted)
	if len(got) != len(want) {
		t.Fatalf("actor has %d parameters resumed, %d uninterrupted", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("actor parameter %d differs after resume: %x != %x", i, got[i], want[i])
		}
	}
	if len(resumed.RewardHistory) != 2*n {
		t.Fatalf("resumed reward history has %d entries, want %d", len(resumed.RewardHistory), 2*n)
	}
	for i, r := range resumed.RewardHistory {
		if r != uninterrupted.RewardHistory[i] {
			t.Fatalf("reward history diverged at episode %d: %v != %v", i, r, uninterrupted.RewardHistory[i])
		}
	}
	if resumed.Trainer.LastCriticLoss != uninterrupted.Trainer.LastCriticLoss {
		t.Fatalf("critic loss diverged: %v != %v",
			resumed.Trainer.LastCriticLoss, uninterrupted.Trainer.LastCriticLoss)
	}
}

// A learner checkpoint survives the full save/load cycle with its replay
// buffer, counters, and RNG intact — verified by checking that two loads of
// the same file train identically.
func TestLoadLearnerIsPure(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real episodes")
	}
	path := filepath.Join(t.TempDir(), "train.ckpt")
	l := tinyLearner(3)
	l.Train(1)
	if err := l.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	a, err := LoadLearner(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadLearner(path)
	if err != nil {
		t.Fatal(err)
	}
	a.Train(1)
	b.Train(1)
	ab, bb := actorBits(a), actorBits(b)
	for i := range ab {
		if ab[i] != bb[i] {
			t.Fatalf("two loads of one checkpoint trained differently at parameter %d", i)
		}
	}
}

// Truncating a checkpoint at any byte offset must be rejected outright:
// sampled offsets cover the header, the config JSON, the network weights,
// the replay region, and the trailer. (The exhaustive every-offset property
// is proven on the container in internal/ckpt; this verifies the learner
// loader surfaces it.)
func TestLoadLearnerRejectsTruncation(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a real episode")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "train.ckpt")
	l := tinyLearner(5)
	l.Train(1)
	if err := l.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	offsets := []int{0, 1, 7, 8, 11, 19, 20, 100, len(data) / 4, len(data) / 2, len(data) - 5, len(data) - 1}
	for i := 0; i < 64; i++ {
		offsets = append(offsets, (i*2654435761)%len(data)) // deterministic spread
	}
	trunc := filepath.Join(dir, "trunc.ckpt")
	for _, n := range offsets {
		if err := os.WriteFile(trunc, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadLearner(trunc); err == nil {
			t.Fatalf("checkpoint truncated to %d of %d bytes was loaded", n, len(data))
		}
	}
	// Corruption: flip one bit in the middle of the payload.
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0x10
	if err := os.WriteFile(trunc, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLearner(trunc); err == nil {
		t.Fatal("corrupted checkpoint was loaded")
	}
}
