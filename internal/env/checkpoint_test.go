package env

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/rl"
)

// tinyLearner builds a learner small enough to train real episodes in test
// time while still exercising every piece of checkpointed state: episodes
// run long enough for update rounds, the batch is small enough that the
// replay fills within one episode, and PolicyDelay makes the delayed-actor
// schedule observable across the checkpoint boundary. reward names the
// strategy ("" = paper).
func tinyLearner(seed int64, reward string) *Learner {
	cfg := core.DefaultConfig()
	cfg.BatchSize = 48
	cfg.ModelUpdateInterval = 2
	cfg.ModelUpdateSteps = 4
	cfg.Reward = reward
	rlCfg := rl.DefaultConfig(cfg.StateDim(), core.GlobalFeatureDim, 1)
	rlCfg.Gamma = cfg.Gamma
	rlCfg.ActorLR = cfg.LearningRate
	rlCfg.CriticLR = cfg.LearningRate
	rlCfg.Batch = cfg.BatchSize
	rlCfg.Hidden = []int{16, 12}
	dist := DefaultTrainingDistribution()
	dist.MinFlows, dist.MaxFlows = 2, 2
	dist.EpisodeDuration = 4
	return NewLearnerRL(cfg, dist, rlCfg, 4000, seed)
}

func actorBits(l *Learner) []uint64 {
	var bits []uint64
	for _, layer := range l.Trainer.Actor.Layers {
		for _, w := range layer.W {
			bits = append(bits, math.Float64bits(w))
		}
		for _, b := range layer.B {
			bits = append(bits, math.Float64bits(b))
		}
	}
	return bits
}

// The tentpole guarantee: training N episodes, checkpointing, restoring
// into a fresh learner (standing in for a fresh process — the checkpoint
// file is the only carried-over state), and training N more yields actor
// weights bitwise-identical to an uninterrupted 2N-episode run. The
// guarantee is strategy-independent: a learner trained under a non-default
// reward strategy must resume exactly as faithfully as the paper default.
func TestResumeDeterminismBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real episodes")
	}
	for _, reward := range []string{"", "maxmin"} {
		reward := reward
		name := reward
		if name == "" {
			name = "paper"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const n = 2
			path := filepath.Join(t.TempDir(), "train.ckpt")

			interrupted := tinyLearner(7, reward)
			interrupted.Train(n)
			if err := interrupted.SaveCheckpoint(path); err != nil {
				t.Fatal(err)
			}
			resumed, err := LoadLearner(path)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Episodes != n {
				t.Fatalf("resumed at episode %d, want %d", resumed.Episodes, n)
			}
			if got := resumed.StrategyName(); got != core.MustRewardStrategy(reward).Name() {
				t.Fatalf("resumed strategy %q, want %q", got, core.MustRewardStrategy(reward).Name())
			}
			resumed.Train(n)

			uninterrupted := tinyLearner(7, reward)
			uninterrupted.Train(2 * n)

			got, want := actorBits(resumed), actorBits(uninterrupted)
			if len(got) != len(want) {
				t.Fatalf("actor has %d parameters resumed, %d uninterrupted", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("actor parameter %d differs after resume: %x != %x", i, got[i], want[i])
				}
			}
			if len(resumed.RewardHistory) != 2*n {
				t.Fatalf("resumed reward history has %d entries, want %d", len(resumed.RewardHistory), 2*n)
			}
			for i, r := range resumed.RewardHistory {
				if r != uninterrupted.RewardHistory[i] {
					t.Fatalf("reward history diverged at episode %d: %v != %v", i, r, uninterrupted.RewardHistory[i])
				}
			}
			if resumed.Trainer.LastCriticLoss != uninterrupted.Trainer.LastCriticLoss {
				t.Fatalf("critic loss diverged: %v != %v",
					resumed.Trainer.LastCriticLoss, uninterrupted.Trainer.LastCriticLoss)
			}
		})
	}
}

// Distinct strategies must produce distinct training trajectories from the
// same seed — otherwise the strategy plumbing is dead code and the fairness
// lab compares noise.
func TestStrategiesDivergeTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real episodes")
	}
	paper := tinyLearner(7, "")
	paper.Train(1)
	aurora := tinyLearner(7, "aurora")
	aurora.Train(1)
	if paper.RewardHistory[0] == aurora.RewardHistory[0] {
		t.Fatalf("paper and aurora episode rewards identical (%v): strategy not reaching the environment",
			paper.RewardHistory[0])
	}
}

// A checkpoint records its reward strategy and refuses to resume under a
// different one: the loader rejects a tampered or stale strategy field, and
// the byte layout pins where the identity lives.
func TestCheckpointStrategyMismatchRefused(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a real episode")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "train.ckpt")
	l := tinyLearner(11, "alpha:2")
	l.Train(1)
	if err := l.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	// Control: the untouched checkpoint loads and carries its identity.
	ok, err := LoadLearner(path)
	if err != nil {
		t.Fatal(err)
	}
	if ok.StrategyName() != "alpha:2" {
		t.Fatalf("loaded strategy %q, want alpha:2", ok.StrategyName())
	}

	// Rewrite the explicit strategy-identity field (the last occurrence of
	// the name — the first lives inside the config JSON) to a different
	// registered strategy: the loader must refuse the mismatch rather than
	// train against the wrong objective. An equal-length replacement keeps
	// the field layout valid; re-wrapping through ckpt.WriteFile refreshes
	// the container CRC so only the semantic check can reject it.
	payload, err := ckpt.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.LastIndex(payload, []byte("alpha:2"))
	if idx < 0 {
		t.Fatal("strategy name not found in checkpoint payload")
	}
	copy(payload[idx:], []byte("alpha:3")) // same length, different identity
	mut := filepath.Join(dir, "mut.ckpt")
	if _, err := ckpt.WriteFile(mut, payload); err != nil {
		t.Fatal(err)
	}
	_, err = LoadLearner(mut)
	if err == nil {
		t.Fatal("checkpoint with mismatched strategy identity was loaded")
	}
	if !strings.Contains(err.Error(), "refusing to resume") {
		t.Fatalf("mismatch error %q does not explain the refusal", err)
	}

	// An unresolvable name in the identity field is refused even before the
	// cross-check against the config.
	copy(payload[idx:], []byte("badbad!"))
	mut2 := filepath.Join(dir, "mut2.ckpt")
	if _, err := ckpt.WriteFile(mut2, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLearner(mut2); err == nil {
		t.Fatal("checkpoint with unknown strategy name was loaded")
	}
}

// A learner checkpoint survives the full save/load cycle with its replay
// buffer, counters, and RNG intact — verified by checking that two loads of
// the same file train identically.
func TestLoadLearnerIsPure(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real episodes")
	}
	path := filepath.Join(t.TempDir(), "train.ckpt")
	l := tinyLearner(3, "")
	l.Train(1)
	if err := l.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	a, err := LoadLearner(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadLearner(path)
	if err != nil {
		t.Fatal(err)
	}
	a.Train(1)
	b.Train(1)
	ab, bb := actorBits(a), actorBits(b)
	for i := range ab {
		if ab[i] != bb[i] {
			t.Fatalf("two loads of one checkpoint trained differently at parameter %d", i)
		}
	}
}

// Truncating a checkpoint at any byte offset must be rejected outright:
// sampled offsets cover the header, the config JSON, the network weights,
// the replay region, and the trailer. (The exhaustive every-offset property
// is proven on the container in internal/ckpt; this verifies the learner
// loader surfaces it.)
func TestLoadLearnerRejectsTruncation(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a real episode")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "train.ckpt")
	l := tinyLearner(5, "")
	l.Train(1)
	if err := l.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	offsets := []int{0, 1, 7, 8, 11, 19, 20, 100, len(data) / 4, len(data) / 2, len(data) - 5, len(data) - 1}
	for i := 0; i < 64; i++ {
		offsets = append(offsets, (i*2654435761)%len(data)) // deterministic spread
	}
	trunc := filepath.Join(dir, "trunc.ckpt")
	for _, n := range offsets {
		if err := os.WriteFile(trunc, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadLearner(trunc); err == nil {
			t.Fatalf("checkpoint truncated to %d of %d bytes was loaded", n, len(data))
		}
	}
	// Corruption: flip one bit in the middle of the payload.
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0x10
	if err := os.WriteFile(trunc, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLearner(trunc); err == nil {
		t.Fatal("corrupted checkpoint was loaded")
	}
}
