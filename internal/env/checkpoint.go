// Crash-safe training checkpoints (the durable half of the §3.4 training
// loop). SaveCheckpoint captures everything that determines the learner's
// future behaviour — networks with optimizer state, the replay ring, the
// episode/update counters, the reward history, and the episode-sampling RNG
// — so that LoadLearner in a fresh process continues the exact training
// trajectory: N episodes, a checkpoint, a restart, and N more episodes
// produce actor weights bitwise-identical to an uninterrupted 2N-episode
// run. That guarantee holds for the serial Learner; ParallelLearner's
// completion order is scheduling-dependent, so deterministic resume
// requires the serial path.

package env

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/rl"
	"repro/internal/rng"
)

// SaveCheckpoint writes the learner's complete state to path atomically:
// the file either keeps its previous contents or holds the new checkpoint,
// even across kill -9. Telemetry (ckpt_last_write_seconds,
// ckpt_bytes_written_total) is updated when Instrument was called.
func (l *Learner) SaveCheckpoint(path string) error {
	start := time.Now()
	e := &ckpt.Encoder{}
	cfgJSON, err := json.Marshal(l.Cfg)
	if err != nil {
		return fmt.Errorf("env: marshal config: %w", err)
	}
	distJSON, err := json.Marshal(l.Dist)
	if err != nil {
		return fmt.Errorf("env: marshal training distribution: %w", err)
	}
	e.Bytes(cfgJSON)
	e.Bytes(distJSON)
	// The reward-strategy identity is recorded explicitly (not only inside
	// the config JSON) so LoadLearner can refuse a strategy mismatch with a
	// first-class error before any training state is interpreted: a learner
	// trained under one objective must never silently resume under another.
	e.Bytes([]byte(l.Cfg.RewardName()))
	l.Trainer.Encode(e)
	l.Replay.Encode(e)
	e.Int(l.Episodes)
	e.Float64s(l.RewardHistory)
	hi, lo := l.rng.State()
	e.Uint64(hi)
	e.Uint64(lo)

	n, err := ckpt.WriteFile(path, e.Payload())
	if err != nil {
		return err
	}
	l.mCkptSecs.Set(time.Since(start).Seconds())
	l.mCkptByte.Add(int64(n))
	return nil
}

// LoadLearner restores a learner from a checkpoint written by
// SaveCheckpoint. A truncated or corrupted file is rejected outright (CRC
// validation happens before any field is decoded); a structurally invalid
// payload fails with a field-level error rather than loading partial state.
func LoadLearner(path string) (*Learner, error) {
	payload, err := ckpt.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d := ckpt.NewDecoder(payload)
	cfgJSON := d.Bytes()
	distJSON := d.Bytes()
	strategyName := string(d.Bytes())
	if err := d.Err(); err != nil {
		return nil, err
	}
	var cfg core.Config
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return nil, fmt.Errorf("env: checkpoint config: %w", err)
	}
	var dist TrainingDistribution
	if err := json.Unmarshal(distJSON, &dist); err != nil {
		return nil, fmt.Errorf("env: checkpoint training distribution: %w", err)
	}
	// Strategy identity: the recorded name must resolve to a registered
	// strategy and agree with the config it rode in with. Either failure is
	// a refusal, not a fallback — resuming under a different objective
	// would silently re-point the critic at a different reward surface.
	if _, err := core.NewRewardStrategy(strategyName); err != nil {
		return nil, fmt.Errorf("env: checkpoint reward strategy: %w", err)
	}
	if got := cfg.RewardName(); got != strategyName {
		return nil, fmt.Errorf("env: checkpoint trained under reward strategy %q but its config says %q — refusing to resume",
			strategyName, got)
	}
	trainer, err := rl.DecodeTrainer(d)
	if err != nil {
		return nil, fmt.Errorf("env: checkpoint trainer: %w", err)
	}
	if trainer.Cfg.StateDim != cfg.StateDim() {
		return nil, fmt.Errorf("env: checkpoint actor input %d does not match config state dim %d",
			trainer.Cfg.StateDim, cfg.StateDim())
	}
	replay, err := rl.DecodeReplayBuffer(d)
	if err != nil {
		return nil, fmt.Errorf("env: checkpoint replay: %w", err)
	}
	l := &Learner{
		Cfg:     cfg,
		Dist:    dist,
		Trainer: trainer,
		Replay:  replay,
		rng:     rng.New(0),
	}
	l.Episodes = d.Int()
	l.RewardHistory = d.Float64s()
	hi, lo := d.Uint64(), d.Uint64()
	l.rng.SetState(hi, lo)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	if l.Episodes < 0 || len(l.RewardHistory) != l.Episodes {
		return nil, fmt.Errorf("env: checkpoint has %d episodes but %d reward entries",
			l.Episodes, len(l.RewardHistory))
	}
	return l, nil
}
