// Crash-safe training checkpoints (the durable half of the §3.4 training
// loop). SaveCheckpoint captures everything that determines the learner's
// future behaviour — networks with optimizer state, the replay ring, the
// episode/update counters, the reward history, and the episode-sampling RNG
// — so that LoadLearner in a fresh process continues the exact training
// trajectory: N episodes, a checkpoint, a restart, and N more episodes
// produce actor weights bitwise-identical to an uninterrupted 2N-episode
// run. That guarantee holds for the serial Learner; ParallelLearner's
// completion order is scheduling-dependent, so its checkpoints (same
// on-disk format, see parallel.go) resume the trajectory statistically,
// not bitwise.

package env

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/rl"
	"repro/internal/rng"
)

// learnerState is the decoded content of a training checkpoint — the fields
// shared by the serial Learner and the ParallelLearner, in their on-disk
// order. Both learner kinds encode to and decode from this one layout, so a
// checkpoint written by either can seed either (a serial run can hand off
// to a parallel pilot and vice versa).
type learnerState struct {
	Cfg           core.Config
	Dist          TrainingDistribution
	Trainer       *rl.Trainer
	Replay        *rl.ReplayBuffer
	Episodes      int
	RewardHistory []float64
	RngHi, RngLo  uint64
}

// encodeLearnerState appends the shared checkpoint payload to e.
func encodeLearnerState(e *ckpt.Encoder, s *learnerState) error {
	cfgJSON, err := json.Marshal(s.Cfg)
	if err != nil {
		return fmt.Errorf("env: marshal config: %w", err)
	}
	distJSON, err := json.Marshal(s.Dist)
	if err != nil {
		return fmt.Errorf("env: marshal training distribution: %w", err)
	}
	e.Bytes(cfgJSON)
	e.Bytes(distJSON)
	// The reward-strategy identity is recorded explicitly (not only inside
	// the config JSON) so decoding can refuse a strategy mismatch with a
	// first-class error before any training state is interpreted: a learner
	// trained under one objective must never silently resume under another.
	e.Bytes([]byte(s.Cfg.RewardName()))
	s.Trainer.Encode(e)
	s.Replay.Encode(e)
	e.Int(s.Episodes)
	e.Float64s(s.RewardHistory)
	e.Uint64(s.RngHi)
	e.Uint64(s.RngLo)
	return nil
}

// decodeLearnerState parses and validates the shared checkpoint payload. A
// structurally invalid payload fails with a field-level error rather than
// yielding partial state.
func decodeLearnerState(payload []byte) (*learnerState, error) {
	d := ckpt.NewDecoder(payload)
	cfgJSON := d.Bytes()
	distJSON := d.Bytes()
	strategyName := string(d.Bytes())
	if err := d.Err(); err != nil {
		return nil, err
	}
	s := &learnerState{}
	if err := json.Unmarshal(cfgJSON, &s.Cfg); err != nil {
		return nil, fmt.Errorf("env: checkpoint config: %w", err)
	}
	if err := json.Unmarshal(distJSON, &s.Dist); err != nil {
		return nil, fmt.Errorf("env: checkpoint training distribution: %w", err)
	}
	// Strategy identity: the recorded name must resolve to a registered
	// strategy and agree with the config it rode in with. Either failure is
	// a refusal, not a fallback — resuming under a different objective
	// would silently re-point the critic at a different reward surface.
	if _, err := core.NewRewardStrategy(strategyName); err != nil {
		return nil, fmt.Errorf("env: checkpoint reward strategy: %w", err)
	}
	if got := s.Cfg.RewardName(); got != strategyName {
		return nil, fmt.Errorf("env: checkpoint trained under reward strategy %q but its config says %q — refusing to resume",
			strategyName, got)
	}
	trainer, err := rl.DecodeTrainer(d)
	if err != nil {
		return nil, fmt.Errorf("env: checkpoint trainer: %w", err)
	}
	if trainer.Cfg.StateDim != s.Cfg.StateDim() {
		return nil, fmt.Errorf("env: checkpoint actor input %d does not match config state dim %d",
			trainer.Cfg.StateDim, s.Cfg.StateDim())
	}
	s.Trainer = trainer
	s.Replay, err = rl.DecodeReplayBuffer(d)
	if err != nil {
		return nil, fmt.Errorf("env: checkpoint replay: %w", err)
	}
	s.Episodes = d.Int()
	s.RewardHistory = d.Float64s()
	s.RngHi, s.RngLo = d.Uint64(), d.Uint64()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	if s.Episodes < 0 || len(s.RewardHistory) != s.Episodes {
		return nil, fmt.Errorf("env: checkpoint has %d episodes but %d reward entries",
			s.Episodes, len(s.RewardHistory))
	}
	return s, nil
}

// SaveCheckpoint writes the learner's complete state to path atomically:
// the file either keeps its previous contents or holds the new checkpoint,
// even across kill -9. Telemetry (ckpt_last_write_seconds,
// ckpt_bytes_written_total) is updated when Instrument was called.
func (l *Learner) SaveCheckpoint(path string) error {
	start := time.Now()
	e := &ckpt.Encoder{}
	hi, lo := l.rng.State()
	if err := encodeLearnerState(e, &learnerState{
		Cfg: l.Cfg, Dist: l.Dist, Trainer: l.Trainer, Replay: l.Replay,
		Episodes: l.Episodes, RewardHistory: l.RewardHistory, RngHi: hi, RngLo: lo,
	}); err != nil {
		return err
	}
	n, err := ckpt.WriteFile(path, e.Payload())
	if err != nil {
		return err
	}
	l.mCkptSecs.Set(time.Since(start).Seconds())
	l.mCkptByte.Add(int64(n))
	return nil
}

// LoadLearner restores a learner from a checkpoint written by
// SaveCheckpoint. A truncated or corrupted file is rejected outright (CRC
// validation happens before any field is decoded).
func LoadLearner(path string) (*Learner, error) {
	payload, err := ckpt.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := decodeLearnerState(payload)
	if err != nil {
		return nil, err
	}
	l := &Learner{
		Cfg:           s.Cfg,
		Dist:          s.Dist,
		Trainer:       s.Trainer,
		Replay:        s.Replay,
		rng:           rng.New(0),
		Episodes:      s.Episodes,
		RewardHistory: s.RewardHistory,
	}
	l.rng.SetState(s.RngHi, s.RngLo)
	return l, nil
}
