// Package env implements the paper's multi-flow training environment
// (§3.2): a Flow Generator that launches concurrent flows with randomized
// (optionally Poisson) arrivals and heterogeneous RTTs over an emulated
// bottleneck, and a Controller whose Observer gathers world observations
// from all active flows into the global state of Table 2 while its Enforcer
// relays actions back to the flows. Episodes yield (g, s, a, g', s', r)
// transitions for the multi-agent trainer in internal/rl.
package env

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/rl"
	"repro/internal/sim"
	"repro/internal/transport"
)

// TrainingDistribution is Table 3: the ranges episode link parameters are
// drawn from.
type TrainingDistribution struct {
	BwMinBps, BwMaxBps   float64
	RTTMin, RTTMax       float64 // seconds
	BufMinBDP, BufMaxBDP float64
	MinFlows, MaxFlows   int
	// ExtraRTTMax adds up to this much per-flow one-way delay for RTT
	// heterogeneity (§4: "assign multiple running flows ... with different
	// RTTs").
	ExtraRTTMax float64
	// EpisodeDuration in seconds (default 30).
	EpisodeDuration float64
}

// DefaultTrainingDistribution returns Table 3's ranges with 2–5 flows.
func DefaultTrainingDistribution() TrainingDistribution {
	return TrainingDistribution{
		BwMinBps: 40e6, BwMaxBps: 160e6,
		RTTMin: 0.010, RTTMax: 0.140,
		BufMinBDP: 0.1, BufMaxBDP: 16,
		MinFlows: 2, MaxFlows: 5,
		ExtraRTTMax:     0.020,
		EpisodeDuration: 30,
	}
}

// Sample draws one episode's link configuration.
func (d TrainingDistribution) Sample(rng *rand.Rand) EpisodeConfig {
	bw := d.BwMinBps + rng.Float64()*(d.BwMaxBps-d.BwMinBps)
	rtt := d.RTTMin + rng.Float64()*(d.RTTMax-d.RTTMin)
	// Buffer factor sampled log-uniformly: the [0.1, 16] range spans two
	// orders of magnitude.
	logLo, logHi := math.Log(d.BufMinBDP), math.Log(d.BufMaxBDP)
	buf := math.Exp(logLo + rng.Float64()*(logHi-logLo))
	n := d.MinFlows
	if d.MaxFlows > d.MinFlows {
		n += rng.Intn(d.MaxFlows - d.MinFlows + 1)
	}
	dur := d.EpisodeDuration
	if dur <= 0 {
		dur = 30
	}
	cfg := EpisodeConfig{
		RateBps: bw, BaseRTT: rtt, BufBDP: buf,
		Duration: dur,
	}
	for i := 0; i < n; i++ {
		cfg.Flows = append(cfg.Flows, FlowPlan{
			Start:      rng.Float64() * 5,
			ExtraDelay: rng.Float64() * d.ExtraRTTMax,
		})
	}
	return cfg
}

// FlowPlan schedules one training flow.
type FlowPlan struct {
	Start      float64
	Duration   float64 // zero = until episode end
	ExtraDelay float64
}

// EpisodeConfig fully describes one training episode.
type EpisodeConfig struct {
	RateBps  float64
	BaseRTT  float64
	BufBDP   float64
	LossProb float64
	Duration float64
	Flows    []FlowPlan
}

// PoissonArrivals rewrites the flow start times as a Poisson process with
// the given mean inter-arrival gap, as the paper recommends to avoid
// overfitting to deterministic patterns.
func (c *EpisodeConfig) PoissonArrivals(rng *rand.Rand, meanGap float64) {
	t := 0.0
	for i := range c.Flows {
		c.Flows[i].Start = t
		t += rng.ExpFloat64() * meanGap
	}
}

// flowTracker is the Observer's per-flow record: the latest MTP statistics
// and the w-deep throughput history the reward block needs.
type flowTracker struct {
	flow     *transport.Flow
	agent    *core.Agent
	last     transport.MTPStats
	haveMTP  bool
	tputHist []float64

	pending *rl.Transition // transition awaiting its next-state half
}

// Observer assembles global states and rewards across all active flows.
// In the paper this is a message-passing component; in-process it reads the
// trackers directly, preserving the same information flow.
type Observer struct {
	cfg      core.Config
	strategy core.RewardStrategy
	link     LinkFacts
	trackers []*flowTracker
}

// LinkFacts is the environment ground truth included in the global state
// (Table 2's d0, buf, c).
type LinkFacts struct {
	Bandwidth float64
	BaseOWD   float64
	BufBytes  float64
}

// GlobalState builds the Table 2 aggregate over currently-active flows.
func (o *Observer) GlobalState() core.GlobalState {
	g := core.GlobalState{
		BaseOWD:   o.link.BaseOWD,
		BufBytes:  o.link.BufBytes,
		Bandwidth: o.link.Bandwidth,
	}
	var latSum, lossSum float64
	first := true
	for _, tr := range o.trackers {
		if !tr.flow.Active() || !tr.haveMTP {
			continue
		}
		st := tr.last
		g.NumFlows++
		g.OvrTput += st.ThroughputBps
		if first || st.ThroughputBps < g.MinTput {
			g.MinTput = st.ThroughputBps
		}
		if st.ThroughputBps > g.MaxTput {
			g.MaxTput = st.ThroughputBps
		}
		if first || st.CwndPkts < g.MinCwnd {
			g.MinCwnd = st.CwndPkts
		}
		if st.CwndPkts > g.MaxCwnd {
			g.MaxCwnd = st.CwndPkts
		}
		g.AvgCwnd += st.CwndPkts
		latSum += st.AvgRTT
		lossSum += st.LossRate
		first = false
	}
	if g.NumFlows > 0 {
		g.AvgCwnd /= float64(g.NumFlows)
		g.AvgLat = latSum / float64(g.NumFlows)
		g.LossRatio = lossSum / float64(g.NumFlows)
	}
	return g
}

// Reward evaluates the configured reward strategy (cfg.Reward; the paper's
// Eqs. 4–8 by default) over the current world observation.
func (o *Observer) Reward() core.RewardComponents {
	var obs []core.FlowObs
	for _, tr := range o.trackers {
		if !tr.flow.Active() || !tr.haveMTP {
			continue
		}
		st := tr.last
		obs = append(obs, core.FlowObs{
			TputBps:     st.ThroughputBps,
			TputHistory: tr.tputHist,
			AvgLat:      st.AvgRTT,
			LossBps:     float64(st.LostBytes) * 8 / st.Duration,
			PacingBps:   st.PacingBps,
		})
	}
	if o.strategy == nil {
		o.strategy = core.MustRewardStrategy(o.cfg.Reward)
	}
	return o.strategy.Evaluate(o.cfg, obs, core.LinkInfo{
		Bandwidth: o.link.Bandwidth,
		BaseOWD:   o.link.BaseOWD,
	})
}

// EpisodeResult summarizes a finished episode.
type EpisodeResult struct {
	Transitions int
	AvgReward   float64
	Components  core.RewardComponents // time-averaged
	Duration    float64
}

// Exploration configures behaviour noise during episode collection.
type Exploration struct {
	Stddev float64
}

// RunEpisode executes cfg, driving every flow with an Astraea agent whose
// actions come from policy (through the Enforcer), optionally perturbed by
// exploration noise drawn from the episode RNG. Completed transitions are
// appended to rb when it is non-nil. onStep, when set, observes each
// (agent index, transition) as it completes.
func RunEpisode(cfg EpisodeConfig, agentCfg core.Config, policy core.Policy,
	seed int64, rb *rl.ReplayBuffer, explore *Exploration,
	onStep func(i int, tr rl.Transition)) EpisodeResult {

	s := sim.New(seed)
	bufBytes := int(cfg.RateBps / 8 * cfg.BaseRTT * cfg.BufBDP)
	if bufBytes < 2*transport.MSS {
		bufBytes = 2 * transport.MSS
	}
	dumb := netem.NewDumbbell(s, netem.DumbbellConfig{
		RateBps: cfg.RateBps, BaseRTT: cfg.BaseRTT,
		QueueBytes: bufBytes, LossProb: cfg.LossProb,
	})

	obs := &Observer{
		cfg: agentCfg,
		// Resolve once per episode; MustRewardStrategy is the contract that
		// agentCfg.Reward was validated upstream (CLI flag parsing,
		// NewLearner, or the checkpoint loader).
		strategy: core.MustRewardStrategy(agentCfg.Reward),
		link: LinkFacts{
			Bandwidth: cfg.RateBps,
			BaseOWD:   cfg.BaseRTT / 2,
			BufBytes:  float64(bufBytes),
		},
	}

	var rewardSum float64
	var rewardN int
	var compSum core.RewardComponents

	for i, plan := range cfg.Flows {
		agent := core.NewAgent(agentCfg, policy)
		fl := transport.NewFlow(s, transport.FlowConfig{
			ID: i, Path: dumb.FlowPath(plan.ExtraDelay), CC: agent,
			Start: plan.Start, Duration: plan.Duration,
		})
		tracker := &flowTracker{flow: fl, agent: agent}
		obs.trackers = append(obs.trackers, tracker)

		idx := i
		if explore != nil {
			agent.ActionOverride = func(state []float64, a float64) float64 {
				a += s.Rand().NormFloat64() * explore.Stddev
				if a > 1 {
					a = 1
				}
				if a < -1 {
					a = -1
				}
				return a
			}
		}
		agent.OnMTPState = func(f *transport.Flow, st transport.MTPStats, ls core.LocalState) {
			// Observer bookkeeping (world observation update).
			tracker.last = st
			tracker.haveMTP = true
			tracker.tputHist = append(tracker.tputHist, st.ThroughputBps)
			if len(tracker.tputHist) > agentCfg.HistoryLen {
				tracker.tputHist = tracker.tputHist[1:]
			}

			g := obs.GlobalState()
			rc := obs.Reward()
			rewardSum += rc.Total
			rewardN++
			compSum.Thr += rc.Thr
			compSum.Lat += rc.Lat
			compSum.Loss += rc.Loss
			compSum.Fair += rc.Fair
			compSum.Stab += rc.Stab

			gVec := g.Vector(agentCfg)
			sVec := agent.LastState
			// Complete the pending transition with this step's state as s'.
			if tracker.pending != nil {
				tracker.pending.NextGlobal = gVec
				tracker.pending.NextState = append([]float64(nil), currentInput(agent)...)
				tracker.pending.Reward = rc.Total
				if rb != nil {
					rb.Add(*tracker.pending)
				}
				if onStep != nil {
					onStep(idx, *tracker.pending)
				}
				tracker.pending = nil
			}
			// Open the next transition once the agent has acted (LastState
			// is set after startup ends).
			if sVec != nil {
				tracker.pending = &rl.Transition{
					Global: gVec,
					State:  append([]float64(nil), sVec...),
					Action: []float64{agent.LastAction},
				}
			}
		}
		fl.Start()
	}

	s.Run(cfg.Duration)

	res := EpisodeResult{Duration: cfg.Duration}
	if rewardN > 0 {
		res.AvgReward = rewardSum / float64(rewardN)
		res.Components = core.RewardComponents{
			Thr:  compSum.Thr / float64(rewardN),
			Lat:  compSum.Lat / float64(rewardN),
			Loss: compSum.Loss / float64(rewardN),
			Fair: compSum.Fair / float64(rewardN),
			Stab: compSum.Stab / float64(rewardN),
		}
	}
	if rb != nil {
		res.Transitions = rb.Len()
	}
	return res
}

// currentInput rebuilds the agent's current stacked input (s' for the
// transition that just closed).
func currentInput(a *core.Agent) []float64 {
	return a.StateInput()
}
