package env

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/rl"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// ParallelLearner runs several training-environment instances concurrently
// (Appendix A: the paper's evaluation model is trained with 4 instances
// sharing the same actor and critic networks). Worker goroutines simulate
// episodes against snapshots of the current policy and stream transitions
// back; the learner goroutine owns the replay buffer and the networks and
// applies the update schedule after each completed episode.
type ParallelLearner struct {
	Cfg     core.Config
	Dist    TrainingDistribution
	Trainer *rl.Trainer
	Replay  *rl.ReplayBuffer
	Workers int

	rng *rng.Rand

	// AfterEpisode, when set, is invoked by the learner goroutine inside
	// Train after each episode's update steps complete, with the total
	// episode count. It runs on the goroutine that owns the networks, so it
	// may call SnapshotActor, SaveCheckpoint, and Stop safely — this is the
	// pilot's cadence hook for checkpointing and candidate export. Keep it
	// fast: workers idle while it runs.
	AfterEpisode func(episodes int)

	// stopped makes Train return early (after draining episodes already
	// dispatched) — set by Stop from any goroutine.
	stopped atomic.Bool

	// Telemetry instruments; nil (no-op) unless Instrument was called.
	mEpisodes *telemetry.Counter
	mReward   *telemetry.Gauge
	mCkptSecs *telemetry.Gauge
	mCkptByte *telemetry.Counter

	// Episodes counts completed episodes (completion order); RewardHistory
	// records each episode's average reward for convergence inspection.
	Episodes      int
	RewardHistory []float64
}

// Instrument registers training-progress telemetry on reg (episode count
// and latest episode reward) and forwards reg to the TD3 trainer. Call
// before Train; the learner goroutine owns all writes, so a live /metrics
// scrape during training is race-free.
func (p *ParallelLearner) Instrument(reg *telemetry.Registry) {
	p.mEpisodes = reg.Counter("env_episodes_total", "training episodes completed")
	p.mReward = reg.Gauge("env_episode_reward", "average reward of the latest episode")
	p.mCkptSecs = reg.Gauge("ckpt_last_write_seconds", "wall time of the latest checkpoint write")
	p.mCkptByte = reg.Counter("ckpt_bytes_written_total", "bytes of checkpoint data written")
	p.Trainer.Instrument(reg)
}

// StrategyName reports the reward strategy this learner trains under.
func (p *ParallelLearner) StrategyName() string { return p.Cfg.RewardName() }

// NewParallelLearner builds the learner with the given worker count
// (minimum 1). As with NewLearner, cfg.Reward must name a registered
// reward strategy; unknown names panic at construction.
func NewParallelLearner(cfg core.Config, dist TrainingDistribution, seed int64, workers int) *ParallelLearner {
	rlCfg := rl.DefaultConfig(cfg.StateDim(), core.GlobalFeatureDim, 1)
	rlCfg.Gamma = cfg.Gamma
	rlCfg.ActorLR = cfg.LearningRate
	rlCfg.CriticLR = cfg.LearningRate
	rlCfg.Batch = cfg.BatchSize
	return NewParallelLearnerRL(cfg, dist, rlCfg, 200000, seed, workers)
}

// NewParallelLearnerRL is NewParallelLearner with the TD3 configuration and
// replay capacity exposed: the pilot's smoke tests (and any short-budget
// experiment) need networks far smaller than the paper's 256/128/64
// default to converge on anything inside a CI time box.
func NewParallelLearnerRL(cfg core.Config, dist TrainingDistribution, rlCfg rl.Config, replayCap int, seed int64, workers int) *ParallelLearner {
	core.MustRewardStrategy(cfg.Reward)
	if workers < 1 {
		workers = 1
	}
	return &ParallelLearner{
		Cfg:     cfg,
		Dist:    dist,
		Trainer: rl.NewTrainer(rlCfg, rng.Fold(seed, streamTrainer)),
		Replay:  rl.NewReplayBuffer(replayCap),
		Workers: workers,
		rng:     rng.New(rng.Fold(seed, streamEpisode)),
	}
}

type episodeOutcome struct {
	result      EpisodeResult
	transitions []rl.Transition
}

// Train runs the requested number of episodes across the workers and
// returns the per-episode reward history (completion order).
func (p *ParallelLearner) Train(episodes int) []float64 {
	type job struct {
		cfg  EpisodeConfig
		seed int64
		// policy is a snapshot of the actor at dispatch time; each worker
		// needs its own network because MLP forward passes share scratch
		// buffers.
		policy core.Policy
	}
	jobs := make(chan job)
	outcomes := make(chan episodeOutcome)

	var wg sync.WaitGroup
	for w := 0; w < p.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				var buf []rl.Transition
				res := RunEpisode(j.cfg, p.Cfg, j.policy, j.seed, nil,
					&Exploration{Stddev: 0.1},
					func(i int, tr rl.Transition) { buf = append(buf, tr) })
				outcomes <- episodeOutcome{result: res, transitions: buf}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	dispatch := func() job {
		cfg := p.Dist.Sample(p.rng.Rand)
		if p.rng.Float64() < 0.5 {
			cfg.PoissonArrivals(p.rng.Rand, 2.0)
		}
		return job{
			cfg: cfg, seed: p.rng.Int63(),
			policy: &core.MLPPolicy{Net: p.Trainer.Actor.Clone()},
		}
	}

	// Prime one job per worker, then refill as outcomes come back. A
	// learner that was stopped (and not reset) dispatches nothing.
	outstanding := 0
	dispatched := 0
	for ; dispatched < p.Workers && dispatched < episodes && !p.stopped.Load(); dispatched++ {
		jobs <- dispatch()
		outstanding++
	}
	for outstanding > 0 {
		out := <-outcomes
		outstanding--
		p.Episodes++
		p.RewardHistory = append(p.RewardHistory, out.result.AvgReward)
		p.mEpisodes.Inc()
		p.mReward.Set(out.result.AvgReward)
		for _, tr := range out.transitions {
			p.Replay.Add(tr)
		}
		rounds := int(out.result.durationOr(30) / p.Cfg.ModelUpdateInterval)
		if rounds < 1 {
			rounds = 1
		}
		for r := 0; r < rounds; r++ {
			for s := 0; s < p.Cfg.ModelUpdateSteps; s++ {
				p.Trainer.Update(p.Replay)
			}
		}
		if p.AfterEpisode != nil {
			p.AfterEpisode(p.Episodes)
		}
		if dispatched < episodes && !p.stopped.Load() {
			jobs <- dispatch()
			dispatched++
			outstanding++
		}
	}
	close(jobs)
	wg.Wait()
	return p.RewardHistory
}

// Stop makes the current (or next) Train call return early: no new episodes
// are dispatched, episodes already running drain normally and still feed
// the replay buffer and update schedule. Safe from any goroutine, including
// the AfterEpisode hook itself. Stop is sticky until ResetStop.
func (p *ParallelLearner) Stop() { p.stopped.Store(true) }

// ResetStop clears a previous Stop so Train can be called again.
func (p *ParallelLearner) ResetStop() { p.stopped.Store(false) }

// SnapshotActor clones the current actor into a standalone deployable
// policy — the candidate the pilot hands to the regression gate. It must
// only be called from the goroutine that owns the networks: outside Train,
// or inside the AfterEpisode hook.
func (p *ParallelLearner) SnapshotActor() *core.MLPPolicy {
	return &core.MLPPolicy{Net: p.Trainer.Actor.Clone()}
}

// SaveCheckpoint writes the learner's state to path atomically, in the same
// on-disk format as Learner.SaveCheckpoint — either learner kind can resume
// from it. Unlike the serial learner's guarantee, a resumed parallel run
// continues the trajectory statistically, not bitwise: episode completion
// order is scheduling-dependent. Must be called from the owning goroutine
// (outside Train, or inside AfterEpisode).
func (p *ParallelLearner) SaveCheckpoint(path string) error {
	start := time.Now()
	e := &ckpt.Encoder{}
	hi, lo := p.rng.State()
	if err := encodeLearnerState(e, &learnerState{
		Cfg: p.Cfg, Dist: p.Dist, Trainer: p.Trainer, Replay: p.Replay,
		Episodes: p.Episodes, RewardHistory: p.RewardHistory, RngHi: hi, RngLo: lo,
	}); err != nil {
		return err
	}
	n, err := ckpt.WriteFile(path, e.Payload())
	if err != nil {
		return err
	}
	p.mCkptSecs.Set(time.Since(start).Seconds())
	p.mCkptByte.Add(int64(n))
	return nil
}

// LoadParallelLearner restores a parallel learner from a checkpoint written
// by either learner kind's SaveCheckpoint.
func LoadParallelLearner(path string, workers int) (*ParallelLearner, error) {
	payload, err := ckpt.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := decodeLearnerState(payload)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	p := &ParallelLearner{
		Cfg:           s.Cfg,
		Dist:          s.Dist,
		Trainer:       s.Trainer,
		Replay:        s.Replay,
		Workers:       workers,
		rng:           rng.New(0),
		Episodes:      s.Episodes,
		RewardHistory: s.RewardHistory,
	}
	p.rng.SetState(s.RngHi, s.RngLo)
	return p, nil
}

// durationOr reports the episode's duration with a fallback for results
// that never ran.
func (r EpisodeResult) durationOr(def float64) float64 {
	if r.Duration > 0 {
		return r.Duration
	}
	return def
}

// Policy returns the current actor wrapped for deployment.
func (p *ParallelLearner) Policy() *core.MLPPolicy {
	return &core.MLPPolicy{Net: p.Trainer.Actor}
}
