package env

import (
	"sync"

	"repro/internal/core"
	"repro/internal/rl"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// ParallelLearner runs several training-environment instances concurrently
// (Appendix A: the paper's evaluation model is trained with 4 instances
// sharing the same actor and critic networks). Worker goroutines simulate
// episodes against snapshots of the current policy and stream transitions
// back; the learner goroutine owns the replay buffer and the networks and
// applies the update schedule after each completed episode.
type ParallelLearner struct {
	Cfg     core.Config
	Dist    TrainingDistribution
	Trainer *rl.Trainer
	Replay  *rl.ReplayBuffer
	Workers int

	rng *rng.Rand

	// Telemetry instruments; nil (no-op) unless Instrument was called.
	mEpisodes *telemetry.Counter
	mReward   *telemetry.Gauge

	// Episodes counts completed episodes (completion order); RewardHistory
	// records each episode's average reward for convergence inspection.
	Episodes      int
	RewardHistory []float64
}

// Instrument registers training-progress telemetry on reg (episode count
// and latest episode reward) and forwards reg to the TD3 trainer. Call
// before Train; the learner goroutine owns all writes, so a live /metrics
// scrape during training is race-free.
func (p *ParallelLearner) Instrument(reg *telemetry.Registry) {
	p.mEpisodes = reg.Counter("env_episodes_total", "training episodes completed")
	p.mReward = reg.Gauge("env_episode_reward", "average reward of the latest episode")
	p.Trainer.Instrument(reg)
}

// NewParallelLearner builds the learner with the given worker count
// (minimum 1). As with NewLearner, cfg.Reward must name a registered
// reward strategy; unknown names panic at construction.
func NewParallelLearner(cfg core.Config, dist TrainingDistribution, seed int64, workers int) *ParallelLearner {
	core.MustRewardStrategy(cfg.Reward)
	if workers < 1 {
		workers = 1
	}
	rlCfg := rl.DefaultConfig(cfg.StateDim(), core.GlobalFeatureDim, 1)
	rlCfg.Gamma = cfg.Gamma
	rlCfg.ActorLR = cfg.LearningRate
	rlCfg.CriticLR = cfg.LearningRate
	rlCfg.Batch = cfg.BatchSize
	return &ParallelLearner{
		Cfg:     cfg,
		Dist:    dist,
		Trainer: rl.NewTrainer(rlCfg, rng.Fold(seed, streamTrainer)),
		Replay:  rl.NewReplayBuffer(200000),
		Workers: workers,
		rng:     rng.New(rng.Fold(seed, streamEpisode)),
	}
}

type episodeOutcome struct {
	result      EpisodeResult
	transitions []rl.Transition
}

// Train runs the requested number of episodes across the workers and
// returns the per-episode reward history (completion order).
func (p *ParallelLearner) Train(episodes int) []float64 {
	type job struct {
		cfg  EpisodeConfig
		seed int64
		// policy is a snapshot of the actor at dispatch time; each worker
		// needs its own network because MLP forward passes share scratch
		// buffers.
		policy core.Policy
	}
	jobs := make(chan job)
	outcomes := make(chan episodeOutcome)

	var wg sync.WaitGroup
	for w := 0; w < p.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				var buf []rl.Transition
				res := RunEpisode(j.cfg, p.Cfg, j.policy, j.seed, nil,
					&Exploration{Stddev: 0.1},
					func(i int, tr rl.Transition) { buf = append(buf, tr) })
				outcomes <- episodeOutcome{result: res, transitions: buf}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	dispatch := func() job {
		cfg := p.Dist.Sample(p.rng.Rand)
		if p.rng.Float64() < 0.5 {
			cfg.PoissonArrivals(p.rng.Rand, 2.0)
		}
		return job{
			cfg: cfg, seed: p.rng.Int63(),
			policy: &core.MLPPolicy{Net: p.Trainer.Actor.Clone()},
		}
	}

	// Prime one job per worker, then refill as outcomes come back.
	outstanding := 0
	dispatched := 0
	for ; dispatched < p.Workers && dispatched < episodes; dispatched++ {
		jobs <- dispatch()
		outstanding++
	}
	for outstanding > 0 {
		out := <-outcomes
		outstanding--
		p.Episodes++
		p.RewardHistory = append(p.RewardHistory, out.result.AvgReward)
		p.mEpisodes.Inc()
		p.mReward.Set(out.result.AvgReward)
		for _, tr := range out.transitions {
			p.Replay.Add(tr)
		}
		rounds := int(out.result.durationOr(30) / p.Cfg.ModelUpdateInterval)
		if rounds < 1 {
			rounds = 1
		}
		for r := 0; r < rounds; r++ {
			for s := 0; s < p.Cfg.ModelUpdateSteps; s++ {
				p.Trainer.Update(p.Replay)
			}
		}
		if dispatched < episodes {
			jobs <- dispatch()
			dispatched++
			outstanding++
		}
	}
	close(jobs)
	wg.Wait()
	return p.RewardHistory
}

// durationOr reports the episode's duration with a fallback for results
// that never ran.
func (r EpisodeResult) durationOr(def float64) float64 {
	if r.Duration > 0 {
		return r.Duration
	}
	return def
}

// Policy returns the current actor wrapped for deployment.
func (p *ParallelLearner) Policy() *core.MLPPolicy {
	return &core.MLPPolicy{Net: p.Trainer.Actor}
}
