package env

import (
	"repro/internal/core"
	"repro/internal/rl"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// Sub-seed streams: the trainer (network init, batch sampling, noise) and
// the episode sampler (scenario draws, arrival processes, per-episode sim
// seeds) must consume decorrelated streams even though the user supplies
// one seed. Seeding both from the same value — as earlier revisions did —
// correlates exploration noise with scenario draws.
const (
	streamTrainer = 1
	streamEpisode = 2
)

// Learner is the centralized trainer of §3.1/§3.4: it owns the shared
// actor/critic networks, collects experience from episodes run under the
// current policy (with exploration noise), and performs TD3/MADDPG updates
// — ModelUpdateSteps gradient steps per ModelUpdateInterval of environment
// time, mirroring the paper's schedule.
type Learner struct {
	Cfg     core.Config
	Dist    TrainingDistribution
	Trainer *rl.Trainer
	Replay  *rl.ReplayBuffer

	rng *rng.Rand

	// Telemetry instruments; nil (no-op) unless Instrument was called.
	mEpisodes *telemetry.Counter
	mReward   *telemetry.Gauge
	mCkptSecs *telemetry.Gauge
	mCkptByte *telemetry.Counter

	// Episodes counts completed episodes; RewardHistory records each
	// episode's average reward for convergence inspection.
	Episodes      int
	RewardHistory []float64
}

// Instrument registers training-progress telemetry on reg (episode count
// and latest episode reward) and forwards reg to the TD3 trainer for its
// update-step and replay metrics.
func (l *Learner) Instrument(reg *telemetry.Registry) {
	l.mEpisodes = reg.Counter("env_episodes_total", "training episodes completed")
	l.mReward = reg.Gauge("env_episode_reward", "average reward of the latest episode")
	l.mCkptSecs = reg.Gauge("ckpt_last_write_seconds", "wall time of the latest checkpoint write")
	l.mCkptByte = reg.Counter("ckpt_bytes_written_total", "bytes of checkpoint data written")
	l.Trainer.Instrument(reg)
}

// NewLearner builds a learner with fresh networks. cfg.Reward must name a
// registered reward strategy (empty = paper default); an unknown name
// panics here, at construction, rather than mid-episode — CLI entry points
// validate the flag with core.NewRewardStrategy first and report a proper
// error.
func NewLearner(cfg core.Config, dist TrainingDistribution, seed int64) *Learner {
	rlCfg := rl.DefaultConfig(cfg.StateDim(), core.GlobalFeatureDim, 1)
	rlCfg.Gamma = cfg.Gamma
	rlCfg.ActorLR = cfg.LearningRate
	rlCfg.CriticLR = cfg.LearningRate
	rlCfg.Batch = cfg.BatchSize
	return NewLearnerRL(cfg, dist, rlCfg, 200000, seed)
}

// NewLearnerRL is NewLearner with the TD3 configuration and replay capacity
// exposed: the fairness lab trains many short-budget learners and needs
// networks far smaller than the paper's 256/128/64 default.
func NewLearnerRL(cfg core.Config, dist TrainingDistribution, rlCfg rl.Config, replayCap int, seed int64) *Learner {
	core.MustRewardStrategy(cfg.Reward) // fail at construction, not mid-episode
	return &Learner{
		Cfg:     cfg,
		Dist:    dist,
		Trainer: rl.NewTrainer(rlCfg, rng.Fold(seed, streamTrainer)),
		Replay:  rl.NewReplayBuffer(replayCap),
		rng:     rng.New(rng.Fold(seed, streamEpisode)),
	}
}

// StrategyName returns the canonical name of the reward strategy this
// learner optimizes (the identity recorded in checkpoints).
func (l *Learner) StrategyName() string { return l.Cfg.RewardName() }

// Policy returns the current actor wrapped as a deployment policy.
func (l *Learner) Policy() *core.MLPPolicy {
	return &core.MLPPolicy{Net: l.Trainer.Actor}
}

// RunEpisodeAndTrain samples an episode from the training distribution,
// collects experience under the current policy with exploration, then runs
// the update schedule (ModelUpdateSteps gradient steps per
// ModelUpdateInterval of episode time).
func (l *Learner) RunEpisodeAndTrain() EpisodeResult {
	epCfg := l.Dist.Sample(l.rng.Rand)
	if l.rng.Float64() < 0.5 {
		epCfg.PoissonArrivals(l.rng.Rand, 2.0)
	}
	res := RunEpisode(epCfg, l.Cfg, l.Policy(), l.rng.Int63(), l.Replay,
		&Exploration{Stddev: 0.1}, nil)
	l.Episodes++
	l.RewardHistory = append(l.RewardHistory, res.AvgReward)
	l.mEpisodes.Inc()
	l.mReward.Set(res.AvgReward)

	rounds := int(epCfg.Duration / l.Cfg.ModelUpdateInterval)
	if rounds < 1 {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		for s := 0; s < l.Cfg.ModelUpdateSteps; s++ {
			l.Trainer.Update(l.Replay)
		}
	}
	return res
}

// Train runs episodes until the given count and returns the reward history.
func (l *Learner) Train(episodes int) []float64 {
	for i := 0; i < episodes; i++ {
		l.RunEpisodeAndTrain()
	}
	return l.RewardHistory
}
