package env

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/rl"
)

// TestTrainingNumericalStability is a regression test for critic
// divergence: an untrained, exploring policy produces extreme network
// states (runaway windows, heavy loss), and the state-block feature
// clamping plus gradient clipping must keep TD learning numerically sane.
// Before the clamps, critic losses reached 1e9 within a few episodes.
func TestTrainingNumericalStability(t *testing.T) {
	if testing.Short() {
		t.Skip("training episodes")
	}
	cfg := core.DefaultConfig()
	rlCfg := rl.DefaultConfig(cfg.StateDim(), core.GlobalFeatureDim, 1)
	rlCfg.Hidden = []int{64, 48}
	rlCfg.Batch = 96
	tr := rl.NewTrainer(rlCfg, 5)
	rb := rl.NewReplayBuffer(100000)

	ep := EpisodeConfig{
		RateBps: 60e6, BaseRTT: 0.040, BufBDP: 1, Duration: 8,
		Flows: []FlowPlan{{Start: 0}, {Start: 1}},
	}
	for i := 0; i < 8; i++ {
		pol := &core.MLPPolicy{Net: tr.Actor}
		res := RunEpisode(ep, cfg, pol, int64(100+i), rb, &Exploration{Stddev: 0.15}, nil)
		for s := 0; s < 40; s++ {
			tr.Update(rb)
		}
		if math.Abs(res.AvgReward) > 0.1 {
			t.Fatalf("episode %d reward %v escaped the Eq. 8 bound", i, res.AvgReward)
		}
		if math.IsNaN(tr.LastCriticLoss) || tr.LastCriticLoss > 1e4 {
			t.Fatalf("episode %d critic loss %v diverged", i, tr.LastCriticLoss)
		}
	}
	// The actor must remain usable: bounded actions on arbitrary states.
	state := make([]float64, cfg.StateDim())
	for i := range state {
		state[i] = float64(i%7) - 3
	}
	a := tr.Act(state, false)
	if a[0] < -1 || a[0] > 1 || math.IsNaN(a[0]) {
		t.Fatalf("post-training action %v", a)
	}
}
