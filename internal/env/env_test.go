package env

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/rl"
)

func TestTrainingDistributionRanges(t *testing.T) {
	d := DefaultTrainingDistribution()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		cfg := d.Sample(rng)
		if cfg.RateBps < d.BwMinBps || cfg.RateBps > d.BwMaxBps {
			t.Fatalf("bandwidth %v outside Table 3 range", cfg.RateBps)
		}
		if cfg.BaseRTT < d.RTTMin || cfg.BaseRTT > d.RTTMax {
			t.Fatalf("RTT %v outside Table 3 range", cfg.BaseRTT)
		}
		if cfg.BufBDP < d.BufMinBDP || cfg.BufBDP > d.BufMaxBDP {
			t.Fatalf("buffer %v outside Table 3 range", cfg.BufBDP)
		}
		if n := len(cfg.Flows); n < 2 || n > 5 {
			t.Fatalf("flow count %d outside 2..5", n)
		}
	}
}

func TestBufferFactorLogUniform(t *testing.T) {
	d := DefaultTrainingDistribution()
	rng := rand.New(rand.NewSource(2))
	below1 := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if d.Sample(rng).BufBDP < 1.26 { // geometric midpoint of [0.1, 16]
			below1++
		}
	}
	frac := float64(below1) / n
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("log-uniform buffer sampling skewed: %.2f below midpoint", frac)
	}
}

func TestPoissonArrivals(t *testing.T) {
	cfg := EpisodeConfig{Flows: make([]FlowPlan, 200)}
	rng := rand.New(rand.NewSource(3))
	cfg.PoissonArrivals(rng, 2.0)
	if cfg.Flows[0].Start != 0 {
		t.Fatal("first arrival should be at 0")
	}
	var gaps []float64
	for i := 1; i < len(cfg.Flows); i++ {
		g := cfg.Flows[i].Start - cfg.Flows[i-1].Start
		if g < 0 {
			t.Fatal("arrivals not monotone")
		}
		gaps = append(gaps, g)
	}
	var mean float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	if mean < 1.5 || mean > 2.5 {
		t.Fatalf("mean gap %v, want ≈2", mean)
	}
}

func TestRunEpisodeProducesTransitions(t *testing.T) {
	cfg := EpisodeConfig{
		RateBps: 50e6, BaseRTT: 0.030, BufBDP: 1, Duration: 8,
		Flows: []FlowPlan{{Start: 0}, {Start: 1}},
	}
	agentCfg := core.DefaultConfig()
	rb := rl.NewReplayBuffer(100000)
	var seen []rl.Transition
	res := RunEpisode(cfg, agentCfg, nil, 7, rb, nil, func(i int, tr rl.Transition) {
		seen = append(seen, tr)
	})
	if rb.Len() == 0 {
		t.Fatal("no transitions collected")
	}
	if len(seen) != rb.Len() {
		t.Fatalf("onStep saw %d, buffer has %d", len(seen), rb.Len())
	}
	for _, tr := range seen[:10] {
		if len(tr.State) != agentCfg.StateDim() || len(tr.NextState) != agentCfg.StateDim() {
			t.Fatalf("state dims %d/%d", len(tr.State), len(tr.NextState))
		}
		if len(tr.Global) != core.GlobalFeatureDim {
			t.Fatalf("global dim %d", len(tr.Global))
		}
		if len(tr.Action) != 1 || tr.Action[0] < -1 || tr.Action[0] > 1 {
			t.Fatalf("action %v", tr.Action)
		}
		if math.Abs(tr.Reward) > 0.1 {
			t.Fatalf("reward %v outside bound", tr.Reward)
		}
	}
	if res.AvgReward == 0 {
		t.Fatal("episode reported zero average reward despite activity")
	}
}

func TestEpisodeRewardReflectsQuality(t *testing.T) {
	// The reference policy (fair, efficient) must out-reward a pathological
	// always-shrink policy on the same episode.
	cfg := EpisodeConfig{
		RateBps: 50e6, BaseRTT: 0.030, BufBDP: 1, Duration: 8,
		Flows: []FlowPlan{{Start: 0}, {Start: 0.5}},
	}
	agentCfg := core.DefaultConfig()
	good := RunEpisode(cfg, agentCfg, nil, 5, nil, nil, nil)
	bad := RunEpisode(cfg, agentCfg, alwaysAction(-1), 5, nil, nil, nil)
	if good.AvgReward <= bad.AvgReward {
		t.Fatalf("reference policy reward %v not above always-shrink %v",
			good.AvgReward, bad.AvgReward)
	}
	if good.Components.Thr <= bad.Components.Thr {
		t.Fatalf("throughput component %v vs %v", good.Components.Thr, bad.Components.Thr)
	}
}

type alwaysAction float64

func (a alwaysAction) Action([]float64) float64 { return float64(a) }

func TestExplorationPerturbsActions(t *testing.T) {
	cfg := EpisodeConfig{
		RateBps: 50e6, BaseRTT: 0.030, BufBDP: 1, Duration: 5,
		Flows: []FlowPlan{{Start: 0}, {Start: 0.5}},
	}
	agentCfg := core.DefaultConfig()
	rb := rl.NewReplayBuffer(100000)
	RunEpisode(cfg, agentCfg, alwaysAction(0), 9, rb, &Exploration{Stddev: 0.2}, nil)
	rng := rand.New(rand.NewSource(1))
	nonZero := 0
	sample := rb.Sample(rng, 100, nil)
	for _, tr := range sample {
		if tr.Action[0] != 0 {
			nonZero++
		}
	}
	if nonZero < 80 {
		t.Fatalf("exploration noise absent: %d/100 perturbed", nonZero)
	}
}

func TestObserverGlobalStateAggregation(t *testing.T) {
	cfg := EpisodeConfig{
		RateBps: 50e6, BaseRTT: 0.030, BufBDP: 1, Duration: 6,
		Flows: []FlowPlan{{Start: 0}, {Start: 0}},
	}
	agentCfg := core.DefaultConfig()
	var lastGlobal []float64
	RunEpisode(cfg, agentCfg, nil, 11, nil, nil, func(i int, tr rl.Transition) {
		lastGlobal = tr.Global
	})
	if lastGlobal == nil {
		t.Fatal("no global states observed")
	}
	// With both flows active at steady state, overall utilization feature
	// should be near 1 and flow count 2 (feature = n/10).
	if lastGlobal[0] < 0.5 || lastGlobal[0] > 1.3 {
		t.Fatalf("overall-throughput feature %v", lastGlobal[0])
	}
	if math.Abs(lastGlobal[8]-0.2) > 1e-9 {
		t.Fatalf("numFlows feature %v, want 0.2", lastGlobal[8])
	}
}

func TestLearnerEpisodeLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("training loop")
	}
	cfg := core.DefaultConfig()
	cfg.BatchSize = 64
	dist := DefaultTrainingDistribution()
	dist.MaxFlows = 2
	dist.EpisodeDuration = 10
	learner := NewLearner(cfg, dist, 1)
	learner.Trainer.Cfg.Batch = 64
	hist := learner.Train(2)
	if len(hist) != 2 {
		t.Fatalf("history %v", hist)
	}
	if learner.Replay.Len() == 0 {
		t.Fatal("learner collected no experience")
	}
	if learner.Trainer.LastCriticLoss == 0 && learner.Replay.Len() >= cfg.BatchSize {
		t.Fatal("no training updates ran despite sufficient data")
	}
}
