package env

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/rl"
	"repro/internal/telemetry"
)

// smallParallelLearner builds a pilot-scale learner: tiny networks, short
// episodes, small replay — fast enough for the race detector.
func smallParallelLearner(t *testing.T, seed int64, workers int) *ParallelLearner {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.BatchSize = 16
	dist := DefaultTrainingDistribution()
	dist.MaxFlows = 2
	dist.EpisodeDuration = 4
	rlCfg := rl.DefaultConfig(cfg.StateDim(), core.GlobalFeatureDim, 1)
	rlCfg.Hidden = []int{8, 8}
	rlCfg.Batch = 16
	return NewParallelLearnerRL(cfg, dist, rlCfg, 5000, seed, workers)
}

// TestParallelLearnerHookAndSnapshot: AfterEpisode fires once per episode
// on the owning goroutine, SnapshotActor taken inside the hook is a true
// clone (later training does not mutate it), and Stop from inside the hook
// halts dispatch while draining episodes already in flight.
func TestParallelLearnerHookAndSnapshot(t *testing.T) {
	p := smallParallelLearner(t, 1, 2)
	var fired []int
	var snap *core.MLPPolicy
	var snapAction float64
	state := make([]float64, p.Cfg.StateDim())
	p.AfterEpisode = func(episodes int) {
		fired = append(fired, episodes)
		if episodes == 2 {
			snap = p.SnapshotActor()
			snapAction = snap.Action(state)
			p.Stop()
		}
	}
	hist := p.Train(50)
	// Stop at episode 2 with 2 workers: at most one extra in-flight episode
	// drains after the hook halts dispatch.
	if len(hist) < 2 || len(hist) > 4 {
		t.Fatalf("Stop drained to %d episodes, want 2..4", len(hist))
	}
	if len(fired) != len(hist) {
		t.Fatalf("hook fired %d times for %d episodes", len(fired), len(hist))
	}
	for i, ep := range fired {
		if ep != i+1 {
			t.Fatalf("hook sequence %v", fired)
		}
	}
	if snap == nil {
		t.Fatal("no snapshot taken")
	}
	if got := snap.Action(state); got != snapAction {
		t.Fatalf("snapshot mutated by later training: %v vs %v", got, snapAction)
	}

	// Sticky: a second Train without ResetStop dispatches nothing new.
	before := p.Episodes
	p.Train(10)
	if p.Episodes != before {
		t.Fatalf("stopped learner trained %d more episodes", p.Episodes-before)
	}
	p.ResetStop()
	p.AfterEpisode = nil
	p.Train(1)
	if p.Episodes != before+1 {
		t.Fatalf("ResetStop: episodes %d, want %d", p.Episodes, before+1)
	}
}

// TestParallelLearnerCheckpointRoundTrip: the parallel learner writes the
// same checkpoint format as the serial learner — a round trip restores the
// actor bitwise, the counters, and the replay length, and the serial
// LoadLearner accepts the same file (shared lineage).
func TestParallelLearnerCheckpointRoundTrip(t *testing.T) {
	p := smallParallelLearner(t, 3, 2)
	reg := telemetry.NewRegistry()
	p.Instrument(reg)
	p.Train(3)
	path := filepath.Join(t.TempDir(), "par.ckpt")
	if err := p.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if m, _ := reg.Snapshot().Get("ckpt_bytes_written_total"); m.Count == 0 {
		t.Fatal("checkpoint telemetry not recorded")
	}

	q, err := LoadParallelLearner(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if q.Workers != 4 {
		t.Fatalf("workers %d", q.Workers)
	}
	if q.Episodes != p.Episodes || len(q.RewardHistory) != len(p.RewardHistory) {
		t.Fatalf("counters: %d/%d vs %d/%d", q.Episodes, len(q.RewardHistory), p.Episodes, len(p.RewardHistory))
	}
	if q.Replay.Len() != p.Replay.Len() {
		t.Fatalf("replay %d vs %d", q.Replay.Len(), p.Replay.Len())
	}
	state := make([]float64, p.Cfg.StateDim())
	for i := range state {
		state[i] = 0.1 * float64(i)
	}
	if a, b := q.Policy().Action(state), p.Policy().Action(state); a != b {
		t.Fatalf("restored actor diverges: %v vs %v", a, b)
	}

	// Cross-kind: the serial learner resumes from a parallel checkpoint.
	l, err := LoadLearner(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.Episodes != p.Episodes {
		t.Fatalf("serial resume episodes %d", l.Episodes)
	}
	// And continues training without issue.
	l.RunEpisodeAndTrain()
	if l.Episodes != p.Episodes+1 {
		t.Fatalf("serial continuation episodes %d", l.Episodes)
	}
}
